// Table 6 — average F1 (%) for approximate pattern matching on the Amazon
// analog across four query scenarios (Exact / Noisy-E / Noisy-L / Combined),
// comparing the baselines NAGA, G-Finder, TSpan-1/3 and strong simulation
// against FSim_s / FSim_dp with seed-expansion match generation.
// Also prints the §5.4 per-query timing note and a Figure 10-style example
// match.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "exact/strong_simulation.h"
#include "pattern/gfinder.h"
#include "pattern/gray.h"
#include "pattern/match_types.h"
#include "pattern/naga.h"
#include "pattern/query_generator.h"
#include "pattern/seed_expansion.h"
#include "pattern/tspan.h"

using namespace fsim;

namespace {

constexpr int kNumQueries = 20;
constexpr double kNoise = 0.33;

enum Scenario { kExact, kNoisyE, kNoisyL, kCombined, kNumScenarios };

struct AlgoResult {
  double f1_sum[kNumScenarios] = {0, 0, 0, 0};
  int no_result[kNumScenarios] = {0, 0, 0, 0};
  double seconds = 0.0;
};

Mapping FSimMatch(const Graph& query, const Graph& data, SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kIndicator;
  config.epsilon = 0.01;
  auto scores = ComputeFSim(query, data, config);
  if (!scores.ok()) return {};
  // NAGA-style match generation: expand from the best seeds, keep the most
  // internally consistent match.
  return SeedExpansionMatchBest(query, data, *scores, /*num_seeds=*/5);
}

double StrongSimF1(const Graph& query, const Graph& data,
                   const std::vector<NodeId>& truth, bool* no_result) {
  StrongSimOptions opts;
  opts.max_ball_size = 800;
  auto matches = StrongSimulation(query, data, opts);  // exact criterion
  if (matches.empty()) {
    // No exact match (the usual situation under noise): fall back to the
    // best partially-covering balls, Ma et al.'s criterion relaxed to 60%.
    opts.min_coverage = 0.6;
    opts.max_results = 12;
    opts.max_centers = 300;
    matches = StrongSimulation(query, data, opts);
  }
  if (matches.empty()) {
    *no_result = true;
    return 0.0;
  }
  // A ball match is set-valued; extract the functional match it induces
  // (Ma et al.'s "maximum perfect subgraph") by consistency-driven
  // expansion over the ball's per-query-node candidate sets, and score the
  // best of the tightest balls.
  double best = 0.0;
  size_t considered = 0;
  for (const auto& match : matches) {
    if (++considered > 12) break;
    std::vector<std::vector<char>> allowed(query.NumNodes(),
                                           std::vector<char>(data.NumNodes(), 0));
    for (NodeId q = 0; q < query.NumNodes(); ++q) {
      for (NodeId v : match.query_matches[q]) allowed[q][v] = 1;
    }
    Mapping mapping = SeedExpansionMatchBest(
        query, data,
        [&](NodeId q, NodeId v) {
          return allowed[q][v] ? 1.0 : 0.0;
        },
        /*num_seeds=*/3);
    best = std::max(best, EvaluateMapping(mapping, truth).f1);
  }
  return best;
}

double TSpanF1(const Graph& query, const Graph& data,
               const std::vector<NodeId>& truth, uint32_t max_missing,
               bool* no_result) {
  TSpanOptions opts;
  opts.max_missing_edges = max_missing;
  opts.step_budget = 4000000;
  auto matches = TSpanMatchAll(query, data, opts, /*max_matches=*/20);
  if (matches.empty()) {
    *no_result = true;
    return 0.0;
  }
  double best = 0.0;
  for (const auto& m : matches) {
    best = std::max(best, EvaluateMapping(m, truth).f1);
  }
  return best;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 6: average F1 (%) of pattern matching per query scenario "
      "(Amazon analog)\nmeasured [paper]; '-' = no results returned");
  Graph data = MakeDatasetByName("amazon");
  std::printf("data: %zu nodes, %zu edges; %d queries of size 3-10, noise "
              "up to %.0f%%\n\n",
              data.NumNodes(), data.NumEdges(), kNumQueries, kNoise * 100);

  enum Algo { kNaga, kGFinder, kGRay, kTSpan1, kTSpan3, kStrong, kFSimS,
              kFSimDp, kNumAlgos };
  const char* algo_names[] = {"NAGA",  "G-Finder", "G-Ray*", "TSpan-1",
                              "TSpan-3", "StrongSim", "FSim_s", "FSim_dp"};
  // Paper's Table 6 rows (Exact, Noisy-E, Noisy-L, Combined), -1 = "-".
  // G-Ray (marked *) is an extra baseline beyond the paper's table — the
  // proximity-family representative its §6 cites — so it has no paper row.
  const double paper[kNumAlgos][kNumScenarios] = {
      {30.2, 30.5, 20.6, 21.2},   // NAGA
      {100, 49.2, 40.7, 40.9},    // G-Finder
      {-1, -1, -1, -1},           // G-Ray (extension)
      {100, 71.0, -1, -1},        // TSpan-1
      {100, 95.8, -1, -1},        // TSpan-3
      {100, 50.0, 33.3, 29.2},    // strong simulation
      {100, 84.0, 75.1, 76.6},    // FSim_s
      {100, 65.7, 73.2, 66.7},    // FSim_dp
  };

  AlgoResult results[kNumAlgos];
  Rng rng(0x7AB1E6);
  for (int qi = 0; qi < kNumQueries; ++qi) {
    const uint32_t size = static_cast<uint32_t>(3 + rng.NextBounded(8));
    PatternQuery base = ExtractQuery(data, size, &rng);
    // "noise up to 33%": per-query levels drawn from {0, 16.5%, 33%} — some
    // queries stay clean, which is what lets exact methods keep partial
    // scores in the paper's noisy columns.
    const double level_e = static_cast<double>(rng.NextBounded(3)) * kNoise / 2.0;
    const double level_l = static_cast<double>(rng.NextBounded(3)) * kNoise / 2.0;
    PatternQuery noisy_e =
        level_e > 0 ? AddStructuralNoise(base, level_e, &rng) : base;
    PatternQuery noisy_l =
        level_l > 0 ? AddLabelNoise(base, level_l, &rng) : base;
    PatternQuery combined =
        level_l > 0 ? AddLabelNoise(noisy_e, level_l, &rng) : noisy_e;
    const PatternQuery* queries[kNumScenarios] = {&base, &noisy_e, &noisy_l,
                                                  &combined};
    for (int sc = 0; sc < kNumScenarios; ++sc) {
      const PatternQuery& q = *queries[sc];
      for (int algo = 0; algo < kNumAlgos; ++algo) {
        Timer timer;
        double f1 = 0.0;
        bool none = false;
        switch (algo) {
          case kNaga:
            f1 = EvaluateMapping(NagaMatch(q.query, data), q.ground_truth).f1;
            break;
          case kGFinder:
            f1 = EvaluateMapping(GFinderMatch(q.query, data),
                                 q.ground_truth).f1;
            break;
          case kGRay:
            f1 = EvaluateMapping(GRayMatch(q.query, data),
                                 q.ground_truth).f1;
            break;
          case kTSpan1:
          case kTSpan3:
            f1 = TSpanF1(q.query, data, q.ground_truth,
                         algo == kTSpan1 ? 1 : 3, &none);
            break;
          case kStrong:
            f1 = StrongSimF1(q.query, data, q.ground_truth, &none);
            break;
          case kFSimS:
            f1 = EvaluateMapping(FSimMatch(q.query, data, SimVariant::kSimple),
                                 q.ground_truth).f1;
            break;
          case kFSimDp:
            f1 = EvaluateMapping(
                     FSimMatch(q.query, data, SimVariant::kDegreePreserving),
                     q.ground_truth).f1;
            break;
        }
        results[algo].seconds += timer.Seconds();
        results[algo].f1_sum[sc] += f1;
        results[algo].no_result[sc] += none ? 1 : 0;
      }
    }
  }

  TablePrinter table({"algorithm", "Exact", "Noisy-E", "Noisy-L", "Combined",
                      "avg s/query"});
  for (int algo = 0; algo < kNumAlgos; ++algo) {
    std::vector<std::string> cells = {algo_names[algo]};
    for (int sc = 0; sc < kNumScenarios; ++sc) {
      char buf[48];
      if (results[algo].no_result[sc] == kNumQueries) {
        std::snprintf(buf, sizeof(buf), "- [%s]",
                      paper[algo][sc] < 0 ? "-" : "x");
      } else if (paper[algo][sc] < 0) {
        std::snprintf(buf, sizeof(buf), "%.1f [-]",
                      100.0 * results[algo].f1_sum[sc] / kNumQueries);
      } else {
        std::snprintf(buf, sizeof(buf), "%.1f [%.1f]",
                      100.0 * results[algo].f1_sum[sc] / kNumQueries,
                      paper[algo][sc]);
      }
      cells.emplace_back(buf);
    }
    char tbuf[24];
    std::snprintf(tbuf, sizeof(tbuf), "%.3f",
                  results[algo].seconds / (kNumQueries * kNumScenarios));
    cells.emplace_back(tbuf);
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): everyone is perfect on Exact except NAGA; "
      "TSpan-3 wins Noisy-E;\nTSpan has no results under label noise; FSim_s "
      "degrades most gracefully overall and beats\nFSim_dp; strong "
      "simulation collapses under noise. §5.4 timing note: FSim ~0.25s per "
      "query\nvs 1.2s exact simulation and >70s TSpan on the full-size "
      "data.\n");

  // ---- Figure 10-style qualitative example. ----
  bench::PrintHeader("Figure 10 (qualitative): a noisy query's top-1 match");
  Rng demo_rng(0xF16);
  PatternQuery q1 = ExtractQuery(data, 6, &demo_rng);
  PatternQuery q2 = AddStructuralNoise(q1, kNoise, &demo_rng);
  Mapping exact_map = FSimMatch(q1.query, data, SimVariant::kSimple);
  Mapping noisy_map = FSimMatch(q2.query, data, SimVariant::kSimple);
  std::printf("query Q1 (exact):  F1 = %.2f\n",
              EvaluateMapping(exact_map, q1.ground_truth).f1);
  std::printf("query Q2 (noisy):  F1 = %.2f  (strong simulation returns %s "
              "result)\n",
              EvaluateMapping(noisy_map, q2.ground_truth).f1,
              [&] {
                StrongSimOptions opts;
                opts.max_results = 1;
                opts.max_ball_size = 800;
                return StrongSimulation(q2.query, data, opts).empty()
                           ? "no"
                           : "a";
              }());
  for (NodeId q = 0; q < q2.query.NumNodes(); ++q) {
    std::printf("  Q2 node %u (%.*s) -> data %u%s\n", q,
                static_cast<int>(q2.query.LabelName(q).size()),
                q2.query.LabelName(q).data(), noisy_map[q],
                noisy_map[q] == q2.ground_truth[q] ? " [correct]" : "");
  }
  return 0;
}
