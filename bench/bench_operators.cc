// google-benchmark micro-benchmarks of the framework's hot paths: the
// greedy vs Hungarian realizations of the injective mapping operators (the
// ablation behind the paper's complexity claim in §4.2), the per-direction
// operator evaluation, and the flat pair-map lookups that dominate
// Algorithm 1's inner loop.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/flat_pair_map.h"
#include "common/random.h"
#include "core/operators.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace fsim {
namespace {

std::vector<WeightedEdge> RandomEdges(size_t n, Rng* rng) {
  std::vector<WeightedEdge> edges;
  edges.reserve(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      edges.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j),
                       rng->NextDouble()});
    }
  }
  return edges;
}

void BM_GreedyMatching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  auto edges = RandomEdges(n, &rng);
  MatchingScratch scratch;
  for (auto _ : state) {
    scratch.edges = edges;
    benchmark::DoNotOptimize(
        GreedyMaxWeightMatching(&scratch, n, n));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_GreedyMatching)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_HungarianMatching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (auto& row : w) {
    for (auto& x : row) x = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianMaxWeightMatching(w));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_HungarianMatching)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_DirectionScore(benchmark::State& state) {
  const SimVariant variant = static_cast<SimVariant>(state.range(0));
  const size_t deg = static_cast<size_t>(state.range(1));
  Rng rng(7);
  std::vector<double> scores(deg * deg);
  for (auto& s : scores) s = rng.NextDouble();
  std::vector<NodeId> s1(deg), s2(deg);
  for (size_t i = 0; i < deg; ++i) s1[i] = s2[i] = static_cast<NodeId>(i);
  auto lookup = [&](NodeId x, NodeId y) { return scores[x * deg + y]; };
  MatchingScratch scratch;
  const OperatorConfig op = OperatorsForVariant(variant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectionScore(op, MatchingAlgo::kGreedy, s1,
                                            s2, lookup, &scratch));
  }
}
BENCHMARK(BM_DirectionScore)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 16, 64}})
    ->ArgNames({"variant", "deg"});

void BM_FlatPairMapLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  FlatPairMap map(n);
  Rng rng(3);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.Next();
    map.Insert(keys[i], static_cast<uint32_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(keys[i]));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_FlatPairMapLookup)->Arg(1024)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace fsim

BENCHMARK_MAIN();
