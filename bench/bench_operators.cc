// google-benchmark micro-benchmarks of the framework's hot paths: the
// greedy vs Hungarian realizations of the injective mapping operators (the
// ablation behind the paper's complexity claim in §4.2), the per-direction
// operator evaluation, the flat pair-map lookups that dominate
// Algorithm 1's inner loop, and the isolated stages of the vectorized tile
// kernels (core/simd/) — panel/work-list build (the θ-compat bitset tests),
// the masked-gather accumulate pass, and the normalize reduction — per
// kernel level, through the kernel table only (no intrinsics here; the
// simd-isolation lint rule keeps those in src/core/simd/).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/flat_pair_map.h"
#include "common/random.h"
#include "core/operators.h"
#include "core/simd/cpu_features.h"
#include "core/simd/kernels.h"
#include "core/simd/tile_panel.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace fsim {
namespace {

std::vector<WeightedEdge> RandomEdges(size_t n, Rng* rng) {
  std::vector<WeightedEdge> edges;
  edges.reserve(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      edges.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j),
                       rng->NextDouble()});
    }
  }
  return edges;
}

void BM_GreedyMatching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  auto edges = RandomEdges(n, &rng);
  MatchingScratch scratch;
  for (auto _ : state) {
    scratch.edges = edges;
    benchmark::DoNotOptimize(
        GreedyMaxWeightMatching(&scratch, n, n));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_GreedyMatching)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_HungarianMatching(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(42);
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (auto& row : w) {
    for (auto& x : row) x = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianMaxWeightMatching(w));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_HungarianMatching)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_DirectionScore(benchmark::State& state) {
  const SimVariant variant = static_cast<SimVariant>(state.range(0));
  const size_t deg = static_cast<size_t>(state.range(1));
  Rng rng(7);
  std::vector<double> scores(deg * deg);
  for (auto& s : scores) s = rng.NextDouble();
  std::vector<NodeId> s1(deg), s2(deg);
  for (size_t i = 0; i < deg; ++i) s1[i] = s2[i] = static_cast<NodeId>(i);
  auto lookup = [&](NodeId x, NodeId y) { return scores[x * deg + y]; };
  MatchingScratch scratch;
  const OperatorConfig op = OperatorsForVariant(variant);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectionScore(op, MatchingAlgo::kGreedy, s1,
                                            s2, lookup, &scratch));
  }
}
BENCHMARK(BM_DirectionScore)
    ->ArgsProduct({{0, 1, 2, 3}, {4, 16, 64}})
    ->ArgNames({"variant", "deg"});

// ---------------------------------------------------------------------------
// Tile-kernel stages (core/simd/). A synthetic yeast-shaped workload: one
// 256-entry tile, Poisson-ish degrees around 6 across 13 label classes,
// half the class pairs θ-compatible — the shape the dense engine feeds the
// kernels at, without the engine around it.

constexpr uint32_t kBenchClasses = 13;
constexpr uint32_t kBenchTile = 256;

/// Backing store for the GroupedNeighborhood views BuildTilePanelSet pulls.
struct SyntheticNeighborhoods {
  std::vector<std::vector<ClassGroup>> groups;
  std::vector<std::vector<NodeId>> nodes;
  std::vector<std::vector<uint32_t>> pos;
  // θ-compat bitsets (ClassCompatView rows).
  std::vector<uint64_t> bits;
  size_t words = 0;

  GroupedNeighborhood View(NodeId v) const {
    return {groups[v], nodes[v].data(), pos[v].data(), nullptr,
            nodes[v].size()};
  }
  ClassCompatView Compat() const { return {bits.data(), words}; }
};

const SyntheticNeighborhoods& BenchNeighborhoods() {
  static const SyntheticNeighborhoods store = [] {
    SyntheticNeighborhoods s;
    Rng rng(271828);
    s.groups.resize(kBenchTile);
    s.nodes.resize(kBenchTile);
    s.pos.resize(kBenchTile);
    for (uint32_t v = 0; v < kBenchTile; ++v) {
      const uint32_t deg = 2 + static_cast<uint32_t>(rng.NextBounded(9));
      // Grouped (class, id) order with the original-position permutation,
      // mimicking DenseIndex's GroupedAdjacency layout.
      std::vector<std::pair<uint32_t, uint32_t>> by_class(deg);
      for (uint32_t k = 0; k < deg; ++k) {
        by_class[k] = {static_cast<uint32_t>(rng.NextBounded(kBenchClasses)),
                       k};
      }
      std::sort(by_class.begin(), by_class.end());
      uint32_t run_begin = 0;
      for (uint32_t k = 0; k < deg; ++k) {
        s.nodes[v].push_back(
            static_cast<NodeId>(rng.NextBounded(kBenchTile)));
        s.pos[v].push_back(by_class[k].second);
        if (k + 1 == deg || by_class[k + 1].first != by_class[k].first) {
          s.groups[v].push_back({static_cast<LabelId>(by_class[k].first),
                                 run_begin, k + 1});
          run_begin = k + 1;
        }
      }
    }
    s.words = (kBenchClasses + 63) / 64;
    s.bits.assign(kBenchClasses * s.words, 0);
    for (uint32_t a = 0; a < kBenchClasses; ++a) {
      for (uint32_t b = 0; b < kBenchClasses; ++b) {
        if ((a + b) % 2 == 0) {  // half the pairs compatible
          s.bits[a * s.words + (b >> 6)] |= uint64_t{1} << (b & 63);
        }
      }
    }
    return s;
  }();
  return store;
}

const simd::TilePanelSet& BenchPanelSet() {
  static const simd::TilePanelSet set = [] {
    const SyntheticNeighborhoods& s = BenchNeighborhoods();
    return simd::BuildTilePanelSet(
        kBenchTile, kBenchTile, kBenchClasses, s.Compat(), /*with_inv=*/true,
        [&s](NodeId v) { return s.View(v); });
  }();
  return set;
}

/// The kernel table for a benchmark level arg (0 scalar, 1 AVX2,
/// 2 AVX-512), or nullptr when the host/build lacks it.
const simd::SimdKernels* BenchKernels(int level) {
  switch (level) {
    case 0: return &simd::ScalarKernels();
    case 1:
      return simd::HostCpuFeatures().Avx2Usable() ? simd::Avx2Kernels()
                                                  : nullptr;
    default:
      return simd::HostCpuFeatures().Avx512Usable() ? simd::Avx512Kernels()
                                                    : nullptr;
  }
}

/// Panel + work-list build: the per-run θ-compat bitset tests and nibble
/// packing (amortized across the whole solve in the engine; isolated here).
void BM_TilePanelBuild(benchmark::State& state) {
  const SyntheticNeighborhoods& s = BenchNeighborhoods();
  for (auto _ : state) {
    simd::TilePanelSet set = simd::BuildTilePanelSet(
        kBenchTile, kBenchTile, kBenchClasses, s.Compat(), /*with_inv=*/true,
        [&s](NodeId v) { return s.View(v); });
    benchmark::DoNotOptimize(set.tiles.size());
  }
}
BENCHMARK(BM_TilePanelBuild)->Unit(benchmark::kMicrosecond);

/// The accumulate stage: one row's masked-gather max pass over every class
/// work list of the tile (the s-variant inner loop).
void BM_TileRowPass(benchmark::State& state) {
  const simd::SimdKernels* kern = BenchKernels(static_cast<int>(state.range(0)));
  if (kern == nullptr) {
    state.SkipWithError("kernel level unavailable on this host/build");
    return;
  }
  const simd::TilePanel& panel = BenchPanelSet().tiles[0];
  Rng rng(99);
  AlignedVector<double> prev(kBenchTile);
  for (double& v : prev) v = rng.NextDouble();
  std::vector<double> acc(panel.entries);
  for (auto _ : state) {
    for (uint32_t a = 0; a < kBenchClasses; ++a) {
      const auto items = panel.WorkList(static_cast<LabelId>(a));
      kern->tile_row_pass(items.data(), items.size(), panel.ids.data(),
                          prev.data(), acc.data());
    }
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_TileRowPass)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("level")
    ->Unit(benchmark::kMicrosecond);

/// The accumulate stage with column maxima (the b-variant inner loop).
void BM_TileRowPassColmax(benchmark::State& state) {
  const simd::SimdKernels* kern = BenchKernels(static_cast<int>(state.range(0)));
  if (kern == nullptr) {
    state.SkipWithError("kernel level unavailable on this host/build");
    return;
  }
  const simd::TilePanel& panel = BenchPanelSet().tiles[0];
  Rng rng(99);
  AlignedVector<double> prev(kBenchTile);
  for (double& v : prev) v = rng.NextDouble();
  std::vector<double> acc(panel.entries);
  AlignedVector<double> colmax(panel.SlotCount());
  for (auto _ : state) {
    kern->fill(colmax.data(), colmax.size(), 0.0);
    for (uint32_t a = 0; a < kBenchClasses; ++a) {
      const auto items = panel.WorkList(static_cast<LabelId>(a));
      kern->tile_row_pass_colmax(items.data(), items.size(),
                                 panel.ids.data(), prev.data(), acc.data(),
                                 colmax.data());
    }
    benchmark::DoNotOptimize(colmax.data());
  }
}
BENCHMARK(BM_TileRowPassColmax)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("level")
    ->Unit(benchmark::kMicrosecond);

/// The reduction stage: per-entry Ωχ normalization of the tile sums.
void BM_TileNormalize(benchmark::State& state) {
  const simd::SimdKernels* kern = BenchKernels(static_cast<int>(state.range(0)));
  if (kern == nullptr) {
    state.SkipWithError("kernel level unavailable on this host/build");
    return;
  }
  const simd::TilePanel& panel = BenchPanelSet().tiles[0];
  Rng rng(7);
  std::vector<double> sums(panel.entries);
  for (double& v : sums) v = rng.NextDouble() * 8.0;
  std::vector<double> out(panel.entries);
  for (auto _ : state) {
    kern->normalize_tile(sums.data(), panel.sizes.data(), panel.entries,
                         /*omega_kind=*/2, /*m1=*/6.0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TileNormalize)
    ->Arg(0)->Arg(1)->Arg(2)
    ->ArgName("level")
    ->Unit(benchmark::kMicrosecond);

void BM_FlatPairMapLookup(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  FlatPairMap map(n);
  Rng rng(3);
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = rng.Next();
    map.Insert(keys[i], static_cast<uint32_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(keys[i]));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_FlatPairMapLookup)->Arg(1024)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace fsim

BENCHMARK_MAIN();
