// Incremental maintenance vs full recomputation (DESIGN.md §6 extension):
// after one edge edit, how much work does the localized repair of
// core/incremental.h do, compared to re-running Algorithm 1 from scratch?
//
// For each dataset and θ setting, a converged IncrementalFSim absorbs a
// deterministic stream of mixed insert/delete edits; we report the median
// and mean per-edit latency with its phase split (O(deg) graph patch,
// neighbor-index span re-stage, worklist propagation) against the
// from-scratch solve time, and verify the repaired scores against a full
// recompute at the end of the stream. The per-dataset numbers are also
// written to BENCH_incremental.json so CI can track the edit-path latency
// per PR alongside BENCH_fsim.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/incremental.h"

using namespace fsim;

namespace {

struct StreamReport {
  double full_solve_s = 0.0;
  double median_edit_ms = 0.0;
  double avg_edit_ms = 0.0;
  double max_edit_ms = 0.0;
  // Mean per-edit phase split (milliseconds).
  double avg_graph_patch_ms = 0.0;
  double avg_index_patch_ms = 0.0;
  double avg_propagate_ms = 0.0;
  double avg_recomputed = 0.0;
  double avg_seeded = 0.0;
  double final_max_diff = 0.0;
  size_t full_evals = 0;  // pair evaluations of one from-scratch solve
  size_t edits = 0;
  int num_threads = 1;
  bool used_neighbor_index = false;
};

StreamReport RunStream(const Graph& g, double theta, int num_edits,
                       uint64_t seed, int num_threads) {
  FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
  config.theta = theta;
  config.epsilon = 1e-4;
  config.pair_limit = bench::kBenchPairLimit;
  config.num_threads = num_threads;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-6;

  StreamReport report;
  report.num_threads = num_threads;
  Timer solve_timer;
  auto inc = IncrementalFSim::Create(g, g, config, options);
  report.full_solve_s = solve_timer.Seconds();
  if (!inc.ok()) {
    std::fprintf(stderr, "fatal: %s\n", inc.status().ToString().c_str());
    std::abort();
  }
  report.used_neighbor_index = inc->uses_neighbor_index();

  Rng rng(seed);
  std::vector<double> edit_ms;
  double total_recomputed = 0.0;
  double total_seeded = 0.0;
  double total_graph_patch_s = 0.0;
  double total_index_patch_s = 0.0;
  double total_propagate_s = 0.0;
  for (int e = 0; e < num_edits; ++e) {
    // Create copies the input, so "g vs g" becomes an ordinary two-graph
    // run whose sides evolve independently; alternate the edited side.
    const int graph_index = (e % 2) + 1;
    const DynamicGraph& target = graph_index == 1 ? inc->g1() : inc->g2();
    const NodeId n = static_cast<NodeId>(target.NumNodes());
    NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    NodeId to = static_cast<NodeId>(rng.NextBounded(n));
    if (from == to) continue;
    Timer edit_timer;
    Status status = target.HasEdge(from, to)
                        ? inc->RemoveEdge(graph_index, from, to)
                        : inc->InsertEdge(graph_index, from, to);
    const double ms = edit_timer.Seconds() * 1e3;
    if (!status.ok()) {
      std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
      std::abort();
    }
    ++report.edits;
    edit_ms.push_back(ms);
    report.max_edit_ms = std::max(report.max_edit_ms, ms);
    const EditStats& stats = inc->last_edit_stats();
    total_recomputed += static_cast<double>(stats.recomputed);
    total_seeded += static_cast<double>(stats.seeded_pairs);
    total_graph_patch_s += stats.graph_rebuild_seconds;
    total_index_patch_s += stats.index_patch_seconds;
    total_propagate_s += stats.propagate_seconds;
  }
  if (report.edits > 0) {
    const double n_edits = static_cast<double>(report.edits);
    double total_ms = 0.0;
    for (double ms : edit_ms) total_ms += ms;
    report.avg_edit_ms = total_ms / n_edits;
    std::sort(edit_ms.begin(), edit_ms.end());
    report.median_edit_ms = edit_ms[edit_ms.size() / 2];
    report.avg_graph_patch_ms = total_graph_patch_s * 1e3 / n_edits;
    report.avg_index_patch_ms = total_index_patch_s * 1e3 / n_edits;
    report.avg_propagate_ms = total_propagate_s * 1e3 / n_edits;
    report.avg_recomputed = total_recomputed / n_edits;
    report.avg_seeded = total_seeded / n_edits;
  }

  // End-of-stream verification against a from-scratch solve.
  auto full = ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(), config);
  if (full.ok()) {
    for (size_t i = 0; i < full->keys().size(); ++i) {
      const NodeId u = PairFirst(full->keys()[i]);
      const NodeId v = PairSecond(full->keys()[i]);
      report.final_max_diff =
          std::max(report.final_max_diff,
                   std::abs(full->values()[i] - inc->Score(u, v)));
    }
    report.full_evals = full->NumPairs() * full->stats().iterations;
  }
  return report;
}

/// {"streams": {name: {...}}} — the edit-path companion of BENCH_fsim.json.
bool WriteBenchJson(const std::string& path,
                    const std::vector<std::pair<std::string, StreamReport>>&
                        reports) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"streams\": {\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    const StreamReport& r = reports[i].second;
    std::fprintf(
        f,
        "    \"%s\": {\"full_solve_seconds\": %.6f, "
        "\"median_edit_ms\": %.4f, \"avg_edit_ms\": %.4f, "
        "\"max_edit_ms\": %.4f, \"avg_graph_patch_ms\": %.5f, "
        "\"avg_index_patch_ms\": %.5f, \"avg_propagate_ms\": %.4f, "
        "\"avg_recomputed\": %.1f, \"edits\": %zu, \"num_threads\": %d, "
        "\"used_neighbor_index\": %s, \"end_drift\": %.3e}%s\n",
        reports[i].first.c_str(), r.full_solve_s, r.median_edit_ms,
        r.avg_edit_ms, r.max_edit_ms, r.avg_graph_patch_ms,
        r.avg_index_patch_ms, r.avg_propagate_ms, r.avg_recomputed, r.edits,
        r.num_threads, r.used_neighbor_index ? "true" : "false",
        r.final_max_diff, i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Incremental FSim maintenance vs full recomputation "
      "(FSim_bj, 50 mixed insert/delete edits per stream)");
  TablePrinter table({"dataset", "theta", "thr", "full solve", "med edit",
                      "graph+index", "propagate", "avg evals", "evals saved",
                      "time speedup", "end drift"});
  std::vector<std::pair<std::string, StreamReport>> reports;
  // The smallest dataset (yeast) sweeps every thread count so CI tracks the
  // parallel propagate's scaling; the larger streams run at t=1 only to
  // keep the binary's runtime bounded (their propagate path is identical).
  const std::vector<int> thread_counts = bench::BenchThreadCounts();
  for (const char* name : {"yeast", "nell", "gp"}) {
    Graph g = MakeDatasetByName(name);
    for (double theta : {1.0}) {
      for (int t : thread_counts) {
        if (t > 1 && std::string(name) != "yeast") continue;
        StreamReport r = RunStream(g, theta, 50, 0xED17, t);
        char stream_key[64];
        if (t == 1) {
          // Unsuffixed at t=1 so the perf-gate history stays continuous
          // with pre-sweep entries.
          std::snprintf(stream_key, sizeof(stream_key), "%s/theta%g", name,
                        theta);
        } else {
          std::snprintf(stream_key, sizeof(stream_key), "%s/theta%g/t%d",
                        name, theta, t);
        }
        reports.emplace_back(stream_key, r);
        char threads[8], med_ms[24], patch[32], prop[24], recomputed[24],
            evals[24], speedup[24], drift[24];
        std::snprintf(threads, sizeof(threads), "%d", t);
        std::snprintf(med_ms, sizeof(med_ms), "%.2fms", r.median_edit_ms);
        std::snprintf(patch, sizeof(patch), "%.3fms",
                      r.avg_graph_patch_ms + r.avg_index_patch_ms);
        std::snprintf(prop, sizeof(prop), "%.2fms", r.avg_propagate_ms);
        std::snprintf(recomputed, sizeof(recomputed), "%.0f",
                      r.avg_recomputed);
        std::snprintf(evals, sizeof(evals), "%.0fx",
                      static_cast<double>(r.full_evals) /
                          std::max(r.avg_recomputed, 1.0));
        std::snprintf(speedup, sizeof(speedup), "%.0fx",
                      r.full_solve_s * 1e3 / std::max(r.avg_edit_ms, 1e-9));
        std::snprintf(drift, sizeof(drift), "%.1e", r.final_max_diff);
        table.AddRow({name, theta == 0.0 ? "0" : "1", threads,
                      bench::FormatSeconds(r.full_solve_s), med_ms, patch,
                      prop, recomputed, evals, speedup, drift});
      }
    }
  }
  table.Print();
  if (!WriteBenchJson("BENCH_incremental.json", reports)) {
    std::fprintf(stderr, "warning: could not write BENCH_incremental.json\n");
  } else {
    std::printf("wrote BENCH_incremental.json\n");
  }
  std::printf(
      "expected: the graph patch and index re-stage are O(deg) — their cost "
      "must not move with |V|+|E| — and repair re-evaluates a small fraction "
      "of the pair evaluations a from-scratch solve performs (evals saved). "
      "Drift reflects both solvers' epsilon residuals plus greedy-matching "
      "tie divergence; the Hungarian-matching property tests bound it at "
      "~1e-6.\n");
  return 0;
}
