// Incremental maintenance vs full recomputation (DESIGN.md §6 extension):
// after one edge edit, how much work does the localized repair of
// core/incremental.h do, compared to re-running Algorithm 1 from scratch?
//
// For each dataset and θ setting, a converged IncrementalFSim absorbs a
// deterministic stream of mixed insert/delete edits; we report the average
// repair cost (seeded pairs, recomputations, milliseconds) against the
// from-scratch solve time, and verify the repaired scores against a full
// recompute at the end of the stream.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/incremental.h"

using namespace fsim;

namespace {

struct StreamReport {
  double full_solve_s = 0.0;
  double avg_edit_ms = 0.0;
  double max_edit_ms = 0.0;
  double avg_recomputed = 0.0;
  double avg_seeded = 0.0;
  double final_max_diff = 0.0;
  size_t full_evals = 0;  // pair evaluations of one from-scratch solve
  size_t edits = 0;
};

StreamReport RunStream(const Graph& g, double theta, int num_edits,
                       uint64_t seed) {
  FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
  config.theta = theta;
  config.epsilon = 1e-4;
  config.pair_limit = bench::kBenchPairLimit;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-6;

  StreamReport report;
  Timer solve_timer;
  auto inc = IncrementalFSim::Create(g, g, config, options);
  report.full_solve_s = solve_timer.Seconds();
  if (!inc.ok()) {
    std::fprintf(stderr, "fatal: %s\n", inc.status().ToString().c_str());
    std::abort();
  }

  Rng rng(seed);
  double total_ms = 0.0;
  double total_recomputed = 0.0;
  double total_seeded = 0.0;
  for (int e = 0; e < num_edits; ++e) {
    // Create copies the input, so "g vs g" becomes an ordinary two-graph
    // run whose sides evolve independently; alternate the edited side.
    const int graph_index = (e % 2) + 1;
    const Graph& target = graph_index == 1 ? inc->g1() : inc->g2();
    const NodeId n = static_cast<NodeId>(target.NumNodes());
    NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    NodeId to = static_cast<NodeId>(rng.NextBounded(n));
    if (from == to) continue;
    Timer edit_timer;
    Status status = target.HasEdge(from, to)
                        ? inc->RemoveEdge(graph_index, from, to)
                        : inc->InsertEdge(graph_index, from, to);
    const double ms = edit_timer.Seconds() * 1e3;
    if (!status.ok()) {
      std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
      std::abort();
    }
    ++report.edits;
    total_ms += ms;
    report.max_edit_ms = std::max(report.max_edit_ms, ms);
    total_recomputed += static_cast<double>(inc->last_edit_stats().recomputed);
    total_seeded += static_cast<double>(inc->last_edit_stats().seeded_pairs);
  }
  if (report.edits > 0) {
    report.avg_edit_ms = total_ms / static_cast<double>(report.edits);
    report.avg_recomputed =
        total_recomputed / static_cast<double>(report.edits);
    report.avg_seeded = total_seeded / static_cast<double>(report.edits);
  }

  // End-of-stream verification against a from-scratch solve.
  auto full = ComputeFSim(inc->g1(), inc->g2(), config);
  if (full.ok()) {
    for (size_t i = 0; i < full->keys().size(); ++i) {
      const NodeId u = PairFirst(full->keys()[i]);
      const NodeId v = PairSecond(full->keys()[i]);
      report.final_max_diff =
          std::max(report.final_max_diff,
                   std::abs(full->values()[i] - inc->Score(u, v)));
    }
    report.full_evals = full->NumPairs() * full->stats().iterations;
  }
  return report;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Incremental FSim maintenance vs full recomputation "
      "(FSim_bj, 20 mixed insert/delete edits per stream)");
  TablePrinter table({"dataset", "theta", "full solve", "avg edit",
                      "avg evals", "evals saved", "time speedup",
                      "end drift"});
  for (const char* name : {"yeast", "nell", "gp"}) {
    Graph g = MakeDatasetByName(name);
    for (double theta : {1.0}) {
      StreamReport r = RunStream(g, theta, 20, 0xED17);
      char avg_ms[24], recomputed[24], evals[24], speedup[24], drift[24];
      std::snprintf(avg_ms, sizeof(avg_ms), "%.1fms", r.avg_edit_ms);
      std::snprintf(recomputed, sizeof(recomputed), "%.0f", r.avg_recomputed);
      std::snprintf(evals, sizeof(evals), "%.0fx",
                    static_cast<double>(r.full_evals) /
                        std::max(r.avg_recomputed, 1.0));
      std::snprintf(speedup, sizeof(speedup), "%.0fx",
                    r.full_solve_s * 1e3 / std::max(r.avg_edit_ms, 1e-9));
      std::snprintf(drift, sizeof(drift), "%.1e", r.final_max_diff);
      table.AddRow({name, theta == 0.0 ? "0" : "1",
                    bench::FormatSeconds(r.full_solve_s), avg_ms, recomputed,
                    evals, speedup, drift});
    }
  }
  table.Print();
  std::printf(
      "expected: repair re-evaluates a small fraction of the pair "
      "evaluations a from-scratch solve performs (evals saved); realized "
      "wall-clock gains are smaller because each changed pair also scans "
      "its dependents. Drift reflects both solvers' epsilon residuals plus "
      "greedy-matching tie divergence; the Hungarian-matching property "
      "tests bound it at ~1e-6.\n");
  return 0;
}
