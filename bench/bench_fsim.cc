// google-benchmark end-to-end timings of ComputeFSim per variant and
// optimization setting on the Yeast analog (the smallest Table 4 dataset) —
// the per-iteration engine cost behind Figures 7 and 8. The main()
// additionally times the build/iterate phases per variant with the
// pair-graph CSR neighbor index enabled vs the hash-lookup fallback and
// writes BENCH_fsim.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/dense_engine.h"
#include "core/fsim_engine.h"
#include "datasets/dataset_registry.h"

namespace fsim {
namespace {

const Graph& Yeast() {
  static const Graph g = MakeDatasetByName("yeast");
  return g;
}

FSimConfig BaseConfig(SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kJaroWinkler;
  config.epsilon = 0.01;
  return config;
}

void BM_FSimVariant(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(static_cast<SimVariant>(state.range(0)));
  config.theta = 1.0;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimVariant)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->ArgName("variant")
    ->Unit(benchmark::kMillisecond);

void BM_FSimOptimization(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kBijective);
  config.theta = state.range(0) == 0 ? 0.0 : 1.0;
  config.upper_bound = state.range(1) != 0;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimOptimization)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"theta1", "ub"})
    ->Unit(benchmark::kMillisecond);

void BM_FSimMatchingAlgo(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kBijective);
  config.theta = 1.0;
  config.matching = state.range(0) == 0 ? MatchingAlgo::kGreedy
                                        : MatchingAlgo::kHungarian;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimMatchingAlgo)
    ->Arg(0)->Arg(1)
    ->ArgName("hungarian")
    ->Unit(benchmark::kMillisecond);

/// Phase-timing comparison: per χ variant, one run on the CSR neighbor
/// index and one on the hash-lookup fallback, with the scores
/// cross-checked. Written to BENCH_fsim.json.
void RunPhaseTimings() {
  const Graph& g = Yeast();
  bench::PhaseTimingsJson json;
  std::printf("\nvariant  path      build      iterate    speedup\n");
  for (SimVariant variant :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config = BaseConfig(variant);
    config.theta = 1.0;

    config.neighbor_index_budget_bytes = 1ULL << 30;
    auto indexed = ComputeFSim(g, g, config);
    config.neighbor_index_budget_bytes = 0;
    auto fallback = ComputeFSim(g, g, config);
    if (!indexed.ok() || !fallback.ok()) {
      std::fprintf(stderr, "fatal: phase-timing run failed\n");
      std::abort();
    }
    double max_diff = 0.0;
    for (size_t i = 0; i < indexed->values().size(); ++i) {
      max_diff = std::max(max_diff, std::abs(indexed->values()[i] -
                                             fallback->values()[i]));
    }
    if (!indexed->stats().used_neighbor_index || max_diff > 1e-12) {
      std::fprintf(stderr,
                   "fatal: indexed/fallback mismatch (indexed=%d diff=%g)\n",
                   indexed->stats().used_neighbor_index, max_diff);
      std::abort();
    }

    const char* name = SimVariantName(variant);
    json.Add(std::string(name) + "/indexed", indexed->stats());
    json.Add(std::string(name) + "/fallback", fallback->stats());
    std::printf("%-8s indexed   %-10s %-10s %.2fx\n", name,
                bench::FormatSeconds(indexed->stats().build_seconds).c_str(),
                bench::FormatSeconds(indexed->stats().iterate_seconds).c_str(),
                fallback->stats().iterate_seconds /
                    indexed->stats().iterate_seconds);
    std::printf("%-8s fallback  %-10s %-10s\n", name,
                bench::FormatSeconds(fallback->stats().build_seconds).c_str(),
                bench::FormatSeconds(fallback->stats().iterate_seconds).c_str());
  }
  // Dense engine: label-class index (core/dense_index.h) vs the per-visit
  // lookup fallback on the yeast-scale labeled config, cross-checked over
  // the full |V|² matrix. Recorded under the "dense" section.
  std::printf("\ndense    path      build      iterate    speedup\n");
  for (SimVariant variant :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config = BaseConfig(variant);
    config.theta = 1.0;

    config.neighbor_index_budget_bytes = 1ULL << 30;
    auto indexed = ComputeFSimDense(g, g, config);
    config.neighbor_index_budget_bytes = 0;
    auto fallback = ComputeFSimDense(g, g, config);
    if (!indexed.ok() || !fallback.ok()) {
      std::fprintf(stderr, "fatal: dense phase-timing run failed\n");
      std::abort();
    }
    double max_diff = 0.0;
    for (size_t i = 0; i < indexed->values().size(); ++i) {
      max_diff = std::max(max_diff, std::abs(indexed->values()[i] -
                                             fallback->values()[i]));
    }
    if (!indexed->stats().used_neighbor_index || max_diff > 1e-12) {
      std::fprintf(
          stderr,
          "fatal: dense indexed/fallback mismatch (indexed=%d diff=%g)\n",
          indexed->stats().used_neighbor_index, max_diff);
      std::abort();
    }

    const char* name = SimVariantName(variant);
    json.AddDense(std::string(name) + "/indexed", indexed->stats());
    json.AddDense(std::string(name) + "/fallback", fallback->stats());
    std::printf("%-8s indexed   %-10s %-10s %.2fx\n", name,
                bench::FormatSeconds(indexed->stats().build_seconds).c_str(),
                bench::FormatSeconds(indexed->stats().iterate_seconds).c_str(),
                fallback->stats().iterate_seconds /
                    indexed->stats().iterate_seconds);
    std::printf("%-8s fallback  %-10s %-10s\n", name,
                bench::FormatSeconds(fallback->stats().build_seconds).c_str(),
                bench::FormatSeconds(fallback->stats().iterate_seconds).c_str());
  }

  if (!json.WriteFile("BENCH_fsim.json")) {
    std::fprintf(stderr, "fatal: cannot write BENCH_fsim.json\n");
    std::abort();
  }
  std::printf("\nwrote BENCH_fsim.json\n");
}

}  // namespace
}  // namespace fsim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fsim::RunPhaseTimings();
  return 0;
}
