// google-benchmark end-to-end timings of ComputeFSim per variant and
// optimization setting on the Yeast analog (the smallest Table 4 dataset) —
// the per-iteration engine cost behind Figures 7 and 8. The main()
// additionally times the build/iterate phases per variant with the
// pair-graph CSR neighbor index enabled vs the hash-lookup fallback and
// writes BENCH_fsim.json for the perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dense_engine.h"
#include "core/fsim_engine.h"
#include "core/simd/cpu_features.h"
#include "core/simd/dispatch.h"
#include "datasets/dataset_registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsim {
namespace {

const Graph& Yeast() {
  static const Graph g = MakeDatasetByName("yeast");
  return g;
}

FSimConfig BaseConfig(SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kJaroWinkler;
  config.epsilon = 0.01;
  return config;
}

void BM_FSimVariant(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(static_cast<SimVariant>(state.range(0)));
  config.theta = 1.0;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimVariant)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->ArgName("variant")
    ->Unit(benchmark::kMillisecond);

void BM_FSimOptimization(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kBijective);
  config.theta = state.range(0) == 0 ? 0.0 : 1.0;
  config.upper_bound = state.range(1) != 0;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimOptimization)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"theta1", "ub"})
    ->Unit(benchmark::kMillisecond);

void BM_FSimMatchingAlgo(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kBijective);
  config.theta = 1.0;
  config.matching = state.range(0) == 0 ? MatchingAlgo::kGreedy
                                        : MatchingAlgo::kHungarian;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimMatchingAlgo)
    ->Arg(0)->Arg(1)
    ->ArgName("hungarian")
    ->Unit(benchmark::kMillisecond);

/// Re-validates the PR 1–5 tuning constants under multicore contention at
/// `num_threads` workers (the sweep's max) and renders the measurements as
/// the "tuning" JSON section of BENCH_fsim.json. Each knob is swept on the
/// yeast θ=1 FSim_dp run around its shipped default; "chosen" records the
/// default so a future PR that retunes leaves an audit trail. The dense
/// 8×256 v-tile is timed at 1 vs N threads (tile shape is compile-time, so
/// the check is that the tiled kernel still scales rather than a re-sweep).
std::string RunTuningSweep(int num_threads) {
  const Graph& g = Yeast();
  std::string out = "{\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "    \"num_threads\": %d,\n", num_threads);
  out += buf;

  FSimConfig base = BaseConfig(SimVariant::kDegreePreserving);
  base.theta = 1.0;
  base.neighbor_index_budget_bytes = 1ULL << 30;
  base.num_threads = num_threads;
  auto timed_iterate = [&](const FSimConfig& config) {
    auto scores = ComputeFSim(g, g, config);
    if (!scores.ok()) {
      std::fprintf(stderr, "fatal: tuning-sweep run failed\n");
      std::abort();
    }
    return scores->stats().iterate_seconds;
  };

  std::printf("\ntuning sweep (dp, theta=1, t=%d)\n", num_threads);
  out += "    \"iterate_grain\": {";
  for (size_t grain : {size_t{16}, size_t{64}, size_t{256}}) {
    FSimConfig config = base;
    config.iterate_grain = grain;
    const double s = timed_iterate(config);
    std::snprintf(buf, sizeof(buf), "%s\"%zu\": %.6f",
                  grain == 16 ? "" : ", ", grain, s);
    out += buf;
    std::printf("  iterate_grain=%-4zu iterate=%s\n", grain,
                bench::FormatSeconds(s).c_str());
  }
  std::snprintf(buf, sizeof(buf), ", \"chosen\": %zu},\n",
                FSimConfig().iterate_grain);
  out += buf;

  out += "    \"frontier_density_threshold\": {";
  for (double density : {0.25, 0.5, 0.75}) {
    FSimConfig config = base;
    config.active_set = ActiveSetMode::kTolerance;
    config.frontier_tolerance = config.epsilon / 10.0;
    config.frontier_density_threshold = density;
    const double s = timed_iterate(config);
    std::snprintf(buf, sizeof(buf), "%s\"%.2f\": %.6f",
                  density == 0.25 ? "" : ", ", density, s);
    out += buf;
    std::printf("  frontier_density_threshold=%.2f iterate=%s\n", density,
                bench::FormatSeconds(s).c_str());
  }
  std::snprintf(buf, sizeof(buf), ", \"chosen\": %.2f},\n",
                FSimConfig().frontier_density_threshold);
  out += buf;

  out += "    \"active_set_activation_fraction\": {";
  for (double fraction : {0.0, 0.125, 0.5}) {
    FSimConfig config = base;
    config.active_set_activation_fraction = fraction;
    const double s = timed_iterate(config);
    std::snprintf(buf, sizeof(buf), "%s\"%.3f\": %.6f",
                  fraction == 0.0 ? "" : ", ", fraction, s);
    out += buf;
    std::printf("  active_set_activation_fraction=%.3f iterate=%s\n",
                fraction, bench::FormatSeconds(s).c_str());
  }
  std::snprintf(buf, sizeof(buf), ", \"chosen\": %.3f},\n",
                FSimConfig().active_set_activation_fraction);
  out += buf;

  // Dense 8×256 v-tile at 1 vs N threads (ComputeFSimDense inherits the
  // pool through config.num_threads).
  double dense_s[2] = {0.0, 0.0};
  for (int pass = 0; pass < 2; ++pass) {
    FSimConfig config = BaseConfig(SimVariant::kDegreePreserving);
    config.theta = 1.0;
    config.neighbor_index_budget_bytes = 1ULL << 30;
    config.num_threads = pass == 0 ? 1 : num_threads;
    auto dense = ComputeFSimDense(g, g, config);
    if (!dense.ok()) {
      std::fprintf(stderr, "fatal: tuning-sweep dense run failed\n");
      std::abort();
    }
    dense_s[pass] = dense->stats().iterate_seconds;
  }
  std::snprintf(buf, sizeof(buf),
                "    \"dense_vtile_8x256\": {\"t1\": %.6f, \"t%d\": %.6f}\n",
                dense_s[0], num_threads, dense_s[1]);
  out += buf;
  std::printf("  dense v-tile: t1=%s t%d=%s\n",
              bench::FormatSeconds(dense_s[0]).c_str(), num_threads,
              bench::FormatSeconds(dense_s[1]).c_str());
  out += "  }";
  return out;
}

/// Scalar-vs-vectorized dense iterate per max-family variant (s and b),
/// t=1 and t=N, rendered as the raw "simd" JSON section. Every timing is
/// the min over kSimdReps runs (the CI container's run-to-run variance
/// swamps single-shot numbers), every vector run is cross-checked
/// bit-identical against the forced-scalar run, and "host_level" records
/// what FSIM_SIMD=auto resolves to on the runner. Levels the host or the
/// build lacks are simply absent from the section; the history gate's
/// rolling medians then track `<level>_t<N>_s` as ordinary
/// lower-is-better series while `speedup_*` leaves stay informational.
std::string RunSimdSweep(int num_threads) {
  const Graph& g = Yeast();
  constexpr int kSimdReps = 3;
  const char* kSavedEnv = std::getenv("FSIM_SIMD");
  const std::string saved_env = kSavedEnv ? kSavedEnv : "";

  std::vector<const char*> levels = {"off"};
  if (simd::Avx2Kernels() != nullptr &&
      simd::HostCpuFeatures().Avx2Usable()) {
    levels.push_back("avx2");
  }
  if (simd::Avx512Kernels() != nullptr &&
      simd::HostCpuFeatures().Avx512Usable()) {
    levels.push_back("avx512");
  }

  std::string out = "{\n";
  char buf[192];
  std::snprintf(buf, sizeof(buf), "    \"host_level\": \"%s\",\n",
                simd::SimdLevelName(simd::ResolveSimdLevel(SimdMode::kAuto)));
  out += buf;

  std::printf("\nsimd     variant  threads");
  for (const char* level : levels) std::printf("  %-10s", level);
  std::printf("\n");

  bool first_variant = true;
  for (SimVariant variant : {SimVariant::kSimple, SimVariant::kBi}) {
    const char* name = SimVariantName(variant);
    out += std::string(first_variant ? "" : ",\n") + "    \"" + name +
           "\": {";
    first_variant = false;
    bool first_field = true;
    for (int pass = 0; pass < 2; ++pass) {
      const int threads = pass == 0 ? 1 : num_threads;
      if (pass == 1 && num_threads <= 1) break;
      std::printf("simd     %-8s %-7d", name, threads);
      std::vector<double> baseline;  // forced-scalar values
      double off_seconds = 0.0;
      for (const char* level : levels) {
        double best = 0.0;
        for (int rep = 0; rep < kSimdReps; ++rep) {
          FSimConfig config = BaseConfig(variant);
          config.theta = 1.0;
          config.neighbor_index_budget_bytes = 1ULL << 30;
          config.num_threads = threads;
          setenv("FSIM_SIMD", level, 1);
          auto dense = ComputeFSimDense(g, g, config);
          if (kSavedEnv) {
            setenv("FSIM_SIMD", saved_env.c_str(), 1);
          } else {
            unsetenv("FSIM_SIMD");
          }
          if (!dense.ok()) {
            std::fprintf(stderr, "fatal: simd sweep run failed (%s/%s)\n",
                         name, level);
            std::abort();
          }
          const double s = dense->stats().iterate_seconds;
          if (rep == 0 || s < best) best = s;
          if (rep == 0) {
            if (baseline.empty()) {
              baseline.assign(dense->values().begin(),
                              dense->values().end());
            } else {
              // The panel path's bit-identity contract, enforced where the
              // headline numbers are produced.
              for (size_t i = 0; i < baseline.size(); ++i) {
                if (dense->values()[i] != baseline[i]) {
                  std::fprintf(
                      stderr,
                      "fatal: %s/%s not bit-identical to scalar at [%zu]\n",
                      name, level, i);
                  std::abort();
                }
              }
            }
          }
        }
        if (std::string(level) == "off") off_seconds = best;
        std::snprintf(buf, sizeof(buf), "%s\"%s_t%d_s\": %.6f",
                      first_field ? "" : ", ", level, threads, best);
        out += buf;
        first_field = false;
        if (std::string(level) != "off" && off_seconds > 0.0) {
          std::snprintf(buf, sizeof(buf), ", \"speedup_%s_t%d\": %.3f",
                        level, threads, off_seconds / best);
          out += buf;
        }
        std::printf("  %-10s", bench::FormatSeconds(best).c_str());
      }
      std::printf("\n");
    }
    out += "}";
  }
  out += "\n  }";
  return out;
}

/// Guard: the trace layer is compiled into every engine phase, so its
/// disarmed cost must stay invisible. Measures (1) the unit cost of a
/// disarmed FSIM_TRACE_SPAN (one relaxed atomic load + a dead store),
/// (2) how many spans a yeast θ=1 FSim_dp solve actually creates (armed
/// run, counting ring events + drops), and (3) the disarmed iterate time
/// itself, then bounds overhead as span_cost x span_count / iterate_ns.
/// Aborts above 2%; the measurement lands in BENCH_fsim.json under
/// "trace_overhead" so the history keeps the trajectory.
std::string RunTraceOverheadGuard() {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kDegreePreserving);
  config.theta = 1.0;
  config.neighbor_index_budget_bytes = 1ULL << 30;

  constexpr size_t kSpans = 4'000'000;
  const uint64_t unit_start = obs::MonotonicNanos();
  for (size_t i = 0; i < kSpans; ++i) {
    FSIM_TRACE_SPAN("bench.disarmed");
  }
  const uint64_t unit_stop = obs::MonotonicNanos();
  const double span_ns =
      static_cast<double>(unit_stop - unit_start) / static_cast<double>(kSpans);

  obs::ArmTracing();
  auto armed = ComputeFSim(g, g, config);
  obs::DisarmTracing();
  if (!armed.ok()) {
    std::fprintf(stderr, "fatal: armed trace-overhead run failed\n");
    std::abort();
  }
  const uint64_t span_count = obs::TraceEventCount() + obs::TraceDroppedCount();

  auto disarmed = ComputeFSim(g, g, config);
  if (!disarmed.ok()) {
    std::fprintf(stderr, "fatal: disarmed trace-overhead run failed\n");
    std::abort();
  }
  const double iterate_ns = disarmed->stats().iterate_seconds * 1e9;
  const double overhead =
      span_ns * static_cast<double>(span_count) / iterate_ns;

  std::printf(
      "\ntrace overhead (dp, theta=1, disarmed): %.2fns/span x %llu spans "
      "= %.4f%% of iterate (bound: <2%%)\n",
      span_ns, static_cast<unsigned long long>(span_count), overhead * 100.0);
  if (overhead >= 0.02) {
    std::fprintf(stderr,
                 "fatal: disarmed tracing overhead %.4f%% exceeds the 2%% "
                 "budget\n",
                 overhead * 100.0);
    std::abort();
  }

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"span_ns\": %.4f, \"span_count\": %llu, "
                "\"iterate_s\": %.6f, \"overhead_fraction\": %.6f}",
                span_ns, static_cast<unsigned long long>(span_count),
                disarmed->stats().iterate_seconds, overhead);
  return buf;
}

/// Phase-timing comparison per χ variant, written to BENCH_fsim.json:
///  * "indexed"   — the default engine (CSR index + exact active set),
///  * "fullsweep" — active set off (the PR 1 indexed path, the baseline the
///                  active-set speedup is measured against),
///  * "tol"       — tolerance-mode active set (frontier_tolerance = ε/10,
///                  error bound tol·(1+w)/(1-w) = 0.9·ε — the frontier
///                  slack stays below the termination tolerance itself),
///  * "fallback"  — hash-lookup path (no index, hence full sweeps).
/// indexed/fullsweep/fallback are cross-checked bit-identical; tol is
/// cross-checked against its documented error bound plus the termination
/// residual slack 2·ε·w/(1-w) (the two runs may stop at different sweeps).
void RunPhaseTimings() {
  const Graph& g = Yeast();
  bench::PhaseTimingsJson json;
  std::printf(
      "\nvariant  path       build      iterate    vs fullsweep  frozen\n");
  for (SimVariant variant :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config = BaseConfig(variant);
    config.theta = 1.0;
    const double w = config.w_out + config.w_in;

    config.neighbor_index_budget_bytes = 1ULL << 30;
    auto indexed = ComputeFSim(g, g, config);
    config.active_set = ActiveSetMode::kOff;
    auto fullsweep = ComputeFSim(g, g, config);
    config.active_set = ActiveSetMode::kTolerance;
    config.frontier_tolerance = config.epsilon / 10.0;
    auto tol = ComputeFSim(g, g, config);
    config.active_set = ActiveSetMode::kExact;
    config.neighbor_index_budget_bytes = 0;
    auto fallback = ComputeFSim(g, g, config);
    if (!indexed.ok() || !fullsweep.ok() || !tol.ok() || !fallback.ok()) {
      std::fprintf(stderr, "fatal: phase-timing run failed\n");
      std::abort();
    }
    auto max_diff_vs_fallback = [&](const FSimScores& scores) {
      double max_diff = 0.0;
      for (size_t i = 0; i < scores.values().size(); ++i) {
        max_diff = std::max(max_diff, std::abs(scores.values()[i] -
                                               fallback->values()[i]));
      }
      return max_diff;
    };
    const double exact_diff = std::max(max_diff_vs_fallback(*indexed),
                                       max_diff_vs_fallback(*fullsweep));
    if (!indexed->stats().used_neighbor_index || exact_diff > 1e-12) {
      std::fprintf(stderr,
                   "fatal: indexed/fallback mismatch (indexed=%d diff=%g)\n",
                   indexed->stats().used_neighbor_index, exact_diff);
      std::abort();
    }
    const double tol_bound =
        config.frontier_tolerance * (1.0 + w) / (1.0 - w) +
        2.0 * config.epsilon * w / (1.0 - w);
    const double tol_diff = max_diff_vs_fallback(*tol);
    if (tol_diff > tol_bound) {
      std::fprintf(stderr, "fatal: tolerance run outside bound (%g > %g)\n",
                   tol_diff, tol_bound);
      std::abort();
    }

    const char* name = SimVariantName(variant);
    json.Add(std::string(name) + "/indexed", indexed->stats());
    json.Add(std::string(name) + "/fullsweep", fullsweep->stats());
    json.Add(std::string(name) + "/tol", tol->stats());
    json.Add(std::string(name) + "/fallback", fallback->stats());
    auto row = [&](const char* path, const FSimStats& s) {
      std::printf("%-8s %-10s %-10s %-10s %.2fx         %.2f\n", name, path,
                  bench::FormatSeconds(s.build_seconds).c_str(),
                  bench::FormatSeconds(s.iterate_seconds).c_str(),
                  fullsweep->stats().iterate_seconds / s.iterate_seconds,
                  s.frozen_fraction);
    };
    row("indexed", indexed->stats());
    row("fullsweep", fullsweep->stats());
    row("tol", tol->stats());
    row("fallback", fallback->stats());
    std::printf("%-8s tol frontier:", name);
    for (size_t a : tol->stats().active_pairs_history) {
      std::printf(" %zu", a);
    }
    std::printf("\n");
  }
  // Dense engine: label-class index (core/dense_index.h) vs the per-visit
  // lookup fallback on the yeast-scale labeled config, cross-checked over
  // the full |V|² matrix. Recorded under the "dense" section.
  std::printf("\ndense    path      build      iterate    speedup\n");
  for (SimVariant variant :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config = BaseConfig(variant);
    config.theta = 1.0;

    config.neighbor_index_budget_bytes = 1ULL << 30;
    auto indexed = ComputeFSimDense(g, g, config);
    config.neighbor_index_budget_bytes = 0;
    auto fallback = ComputeFSimDense(g, g, config);
    if (!indexed.ok() || !fallback.ok()) {
      std::fprintf(stderr, "fatal: dense phase-timing run failed\n");
      std::abort();
    }
    double max_diff = 0.0;
    for (size_t i = 0; i < indexed->values().size(); ++i) {
      max_diff = std::max(max_diff, std::abs(indexed->values()[i] -
                                             fallback->values()[i]));
    }
    if (!indexed->stats().used_neighbor_index || max_diff > 1e-12) {
      std::fprintf(
          stderr,
          "fatal: dense indexed/fallback mismatch (indexed=%d diff=%g)\n",
          indexed->stats().used_neighbor_index, max_diff);
      std::abort();
    }

    const char* name = SimVariantName(variant);
    json.AddDense(std::string(name) + "/indexed", indexed->stats());
    json.AddDense(std::string(name) + "/fallback", fallback->stats());
    std::printf("%-8s indexed   %-10s %-10s %.2fx\n", name,
                bench::FormatSeconds(indexed->stats().build_seconds).c_str(),
                bench::FormatSeconds(indexed->stats().iterate_seconds).c_str(),
                fallback->stats().iterate_seconds /
                    indexed->stats().iterate_seconds);
    std::printf("%-8s fallback  %-10s %-10s\n", name,
                bench::FormatSeconds(fallback->stats().build_seconds).c_str(),
                bench::FormatSeconds(fallback->stats().iterate_seconds).c_str());
  }

  // Thread-count sweep: the indexed (exact active set) and tolerance paths
  // at every BenchThreadCounts() count > 1. The t=1 records above keep
  // their unsuffixed names so the perf-gate history stays continuous;
  // multi-thread runs get distinct "/tN" names and record num_threads so
  // the gate never compares across thread counts. Exact-mode results are
  // cross-checked bit-identical to the single-thread run (the scheduler's
  // determinism contract); tolerance mode re-checks its error bound.
  const std::vector<int> thread_counts = bench::BenchThreadCounts();
  if (thread_counts.size() > 1) {
    std::printf("\nvariant  path     threads  iterate    vs t=1\n");
    for (SimVariant variant :
         {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
          SimVariant::kBijective}) {
      FSimConfig config = BaseConfig(variant);
      config.theta = 1.0;
      config.neighbor_index_budget_bytes = 1ULL << 30;
      const double w = config.w_out + config.w_in;
      auto base_indexed = ComputeFSim(g, g, config);
      config.active_set = ActiveSetMode::kTolerance;
      config.frontier_tolerance = config.epsilon / 10.0;
      auto base_tol = ComputeFSim(g, g, config);
      if (!base_indexed.ok() || !base_tol.ok()) {
        std::fprintf(stderr, "fatal: thread-sweep baseline failed\n");
        std::abort();
      }
      const char* name = SimVariantName(variant);
      for (int t : thread_counts) {
        if (t <= 1) continue;
        config.num_threads = t;
        config.active_set = ActiveSetMode::kExact;
        auto indexed = ComputeFSim(g, g, config);
        config.active_set = ActiveSetMode::kTolerance;
        auto tol = ComputeFSim(g, g, config);
        if (!indexed.ok() || !tol.ok()) {
          std::fprintf(stderr, "fatal: thread-sweep run failed (t=%d)\n", t);
          std::abort();
        }
        for (size_t i = 0; i < indexed->values().size(); ++i) {
          if (indexed->values()[i] != base_indexed->values()[i]) {
            std::fprintf(stderr,
                         "fatal: t=%d exact run not bit-identical to t=1\n",
                         t);
            std::abort();
          }
        }
        const double tol_bound =
            config.frontier_tolerance * (1.0 + w) / (1.0 - w) +
            2.0 * config.epsilon * w / (1.0 - w);
        double tol_diff = 0.0;
        for (size_t i = 0; i < tol->values().size(); ++i) {
          tol_diff = std::max(tol_diff, std::abs(tol->values()[i] -
                                                 base_indexed->values()[i]));
        }
        if (tol_diff > tol_bound) {
          std::fprintf(stderr,
                       "fatal: t=%d tolerance run outside bound (%g > %g)\n",
                       t, tol_diff, tol_bound);
          std::abort();
        }
        char suffix[16];
        std::snprintf(suffix, sizeof(suffix), "/t%d", t);
        json.Add(std::string(name) + "/indexed" + suffix, indexed->stats(), t);
        json.Add(std::string(name) + "/tol" + suffix, tol->stats(), t);
        std::printf("%-8s indexed  %-8d %-10s %.2fx\n", name, t,
                    bench::FormatSeconds(indexed->stats().iterate_seconds)
                        .c_str(),
                    base_indexed->stats().iterate_seconds /
                        indexed->stats().iterate_seconds);
        std::printf("%-8s tol      %-8d %-10s %.2fx\n", name, t,
                    bench::FormatSeconds(tol->stats().iterate_seconds).c_str(),
                    base_tol->stats().iterate_seconds /
                        tol->stats().iterate_seconds);
      }
    }
    json.SetTuningJson(RunTuningSweep(thread_counts.back()));
  }
  json.AddRawSection(
      "simd", RunSimdSweep(thread_counts.empty() ? 1 : thread_counts.back()));
  json.AddRawSection("trace_overhead", RunTraceOverheadGuard());

  if (!json.WriteFile("BENCH_fsim.json")) {
    std::fprintf(stderr, "fatal: cannot write BENCH_fsim.json\n");
    std::abort();
  }
  std::printf("\nwrote BENCH_fsim.json\n");
}

}  // namespace
}  // namespace fsim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  fsim::RunPhaseTimings();
  return 0;
}
