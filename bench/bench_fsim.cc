// google-benchmark end-to-end timings of ComputeFSim per variant and
// optimization setting on the Yeast analog (the smallest Table 4 dataset) —
// the per-iteration engine cost behind Figures 7 and 8.
#include <benchmark/benchmark.h>

#include "core/fsim_engine.h"
#include "datasets/dataset_registry.h"

namespace fsim {
namespace {

const Graph& Yeast() {
  static const Graph g = MakeDatasetByName("yeast");
  return g;
}

FSimConfig BaseConfig(SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kJaroWinkler;
  config.epsilon = 0.01;
  return config;
}

void BM_FSimVariant(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(static_cast<SimVariant>(state.range(0)));
  config.theta = 1.0;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimVariant)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->ArgName("variant")
    ->Unit(benchmark::kMillisecond);

void BM_FSimOptimization(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kBijective);
  config.theta = state.range(0) == 0 ? 0.0 : 1.0;
  config.upper_bound = state.range(1) != 0;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimOptimization)
    ->ArgsProduct({{0, 1}, {0, 1}})
    ->ArgNames({"theta1", "ub"})
    ->Unit(benchmark::kMillisecond);

void BM_FSimMatchingAlgo(benchmark::State& state) {
  const Graph& g = Yeast();
  FSimConfig config = BaseConfig(SimVariant::kBijective);
  config.theta = 1.0;
  config.matching = state.range(0) == 0 ? MatchingAlgo::kGreedy
                                        : MatchingAlgo::kHungarian;
  for (auto _ : state) {
    auto scores = ComputeFSim(g, g, config);
    benchmark::DoNotOptimize(scores.ok());
  }
}
BENCHMARK(BM_FSimMatchingAlgo)
    ->Arg(0)->Arg(1)
    ->ArgName("hungarian")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace fsim

BENCHMARK_MAIN();
