// Figure 4 — sensitivity of FSimχ to the framework parameters on the NELL
// analog:
//  (a) varying the label-constraint threshold θ from 0 to 1: Pearson
//      coefficient of FSimχ{θ} against the θ=0 baseline, computed over the
//      same-label pairs (the pair set every θ maintains, so the comparison
//      set is fixed across the sweep). Paper: decreasing but > 0.8 at θ=1.
//  (b) varying w* = 1 - w+ - w- from 0.1 to 1: coefficient of FSimχ vs
//      FSimχ{θ=1} over all pairs; pairs the θ=1 run does not maintain
//      evaluate to their label-term-only value w* · L(u,v) (zero neighbor
//      contribution). Paper: increasing, ~0.85 at w* = 0.2, ≈1 past 0.6.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/metrics.h"
#include "label/label_similarity.h"

using namespace fsim;

namespace {

/// Pearson over same-label pairs of `a` (both runs maintain them at any θ).
double CorrelateSameLabel(const Graph& g, const FSimScores& a,
                          const FSimScores& b) {
  std::vector<double> xs, ys;
  const auto& keys = a.keys();
  const auto& values = a.values();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    if (g.Label(u) != g.Label(v)) continue;
    xs.push_back(values[i]);
    ys.push_back(b.Score(u, v));
  }
  return PearsonCorrelation(xs, ys);
}

/// Pearson over all pairs of `all`; pairs missing from `constrained` count
/// as their label-term-only value wstar * L(u,v).
double CorrelateWithLabelFallback(const Graph& g, const FSimScores& all,
                                  const FSimScores& constrained,
                                  const LabelSimilarityCache& lsim,
                                  double wstar) {
  std::vector<double> xs, ys;
  const auto& keys = all.keys();
  const auto& values = all.values();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    xs.push_back(values[i]);
    ys.push_back(constrained.Contains(u, v)
                     ? constrained.Score(u, v)
                     : wstar * lsim.Sim(g.Label(u), g.Label(v)));
  }
  return PearsonCorrelation(xs, ys);
}

}  // namespace

int main() {
  Graph nell = MakeDatasetByName("nell");
  LabelSimilarityCache lsim(*nell.dict(), LabelSimKind::kJaroWinkler);
  const SimVariant variants[] = {SimVariant::kSimple,
                                 SimVariant::kDegreePreserving,
                                 SimVariant::kBi, SimVariant::kBijective};

  bench::PrintHeader(
      "Figure 4(a): Pearson coefficient vs theta (baseline theta=0, "
      "w+=w-=0.4)");
  {
    TablePrinter table({"theta", "FSim_s", "FSim_dp", "FSim_b", "FSim_bj"});
    std::vector<FSimScores> baselines;
    for (SimVariant v : variants) {
      auto run = bench::RunFSim(nell, nell, bench::PaperDefaults(v));
      baselines.push_back(std::move(run->scores));
    }
    for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      char tbuf[16];
      std::snprintf(tbuf, sizeof(tbuf), "%.1f", theta);
      std::vector<std::string> cells = {tbuf};
      for (int v = 0; v < 4; ++v) {
        FSimConfig config = bench::PaperDefaults(variants[v]);
        config.theta = theta;
        auto run = bench::RunFSim(nell, nell, config);
        const double r = CorrelateSameLabel(nell, run->scores, baselines[v]);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.3f", r);
        cells.emplace_back(buf);
      }
      table.AddRow(cells);
    }
    table.Print();
    std::printf("expected shape: decreasing in theta, still high at theta=1 "
                "(paper: > 0.8)\n");
  }

  bench::PrintHeader(
      "Figure 4(b): Pearson coefficient of FSim vs FSim{theta=1}, varying "
      "w* = 1 - w+ - w-");
  {
    TablePrinter table({"w*", "FSim_s", "FSim_dp", "FSim_b", "FSim_bj"});
    for (double wstar : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const double w = (1.0 - wstar) / 2.0;
      char tbuf[16];
      std::snprintf(tbuf, sizeof(tbuf), "%.1f", wstar);
      std::vector<std::string> cells = {tbuf};
      for (SimVariant variant : variants) {
        FSimConfig base = bench::PaperDefaults(variant);
        base.w_out = w;
        base.w_in = w;
        FSimConfig constrained = base;
        constrained.theta = 1.0;
        auto run_base = bench::RunFSim(nell, nell, base);
        auto run_constrained = bench::RunFSim(nell, nell, constrained);
        const double r = CorrelateWithLabelFallback(
            nell, run_base->scores, run_constrained->scores, lsim, wstar);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.3f", r);
        cells.emplace_back(buf);
      }
      table.AddRow(cells);
    }
    table.Print();
    std::printf("expected shape: increasing in w*, ~1 beyond 0.6 (paper)\n");
  }
  return 0;
}
