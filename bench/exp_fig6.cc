// Figure 6 — sensitivity of upper-bound updating (§3.4) on the NELL analog:
//  (a) varying the pruning threshold β (α fixed at 0.2): Pearson of
//      FSim_bj{ub} vs FSim_bj and FSim_bj{ub,θ=1} vs FSim_bj{θ=1}.
//      Paper: decreasing, still > 0.9 at β = 0.5.
//  (b) varying the approximation ratio α (β fixed at 0.5). Paper: the θ=1
//      curve increases with α; both are already > 0.9 at α = 0.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/metrics.h"

using namespace fsim;

namespace {

FSimScores RunBj(const Graph& g, double theta, bool ub, double alpha,
                 double beta) {
  FSimConfig config =
      fsim::bench::PaperDefaults(SimVariant::kBijective);
  config.theta = theta;
  config.upper_bound = ub;
  config.alpha = alpha;
  config.beta = beta;
  auto run = fsim::bench::RunFSim(g, g, config);
  return std::move(run->scores);
}

}  // namespace

int main() {
  Graph nell = MakeDatasetByName("nell");
  FSimScores base0 = RunBj(nell, 0.0, false, 0, 0);
  FSimScores base1 = RunBj(nell, 1.0, false, 0, 0);

  bench::PrintHeader(
      "Figure 6(a): varying beta (alpha = 0.2) — correlation of the pruned "
      "run vs the unpruned run");
  {
    TablePrinter table(
        {"beta", "FSim_bj{ub}", "FSim_bj{ub,theta=1}", "pruned pairs"});
    for (double beta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      FSimScores ub0 = RunBj(nell, 0.0, true, 0.2, beta);
      FSimScores ub1 = RunBj(nell, 1.0, true, 0.2, beta);
      char bbuf[16], c0[16], c1[16], p[32];
      std::snprintf(bbuf, sizeof(bbuf), "%.1f", beta);
      std::snprintf(c0, sizeof(c0), "%.3f", CorrelateScores(base0, ub0));
      std::snprintf(c1, sizeof(c1), "%.3f", CorrelateScores(base1, ub1));
      std::snprintf(p, sizeof(p), "%zu", ub0.stats().pruned_pairs);
      table.AddRow({bbuf, c0, c1, p});
    }
    table.Print();
    std::printf("expected shape: decreasing in beta, > 0.9 at beta=0.5 "
                "(paper)\n");
  }

  bench::PrintHeader(
      "Figure 6(b): varying alpha (beta = 0.5) — approximated lookups for "
      "pruned pairs");
  {
    TablePrinter table({"alpha", "FSim_bj{ub}", "FSim_bj{ub,theta=1}"});
    for (double alpha : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
      FSimScores ub0 = RunBj(nell, 0.0, true, alpha, 0.5);
      FSimScores ub1 = RunBj(nell, 1.0, true, alpha, 0.5);
      char abuf[16], c0[16], c1[16];
      std::snprintf(abuf, sizeof(abuf), "%.2f", alpha);
      std::snprintf(c0, sizeof(c0), "%.3f", CorrelateScores(base0, ub0));
      std::snprintf(c1, sizeof(c1), "%.3f", CorrelateScores(base1, ub1));
      table.AddRow({abuf, c0, c1});
    }
    table.Print();
    std::printf("expected shape: theta=1 curve increases with alpha; "
                "alpha=0 already > 0.9 (the paper's default)\n");
  }
  return 0;
}
