// Figure 8 — running time of FSim_bj on all eight dataset analogs under the
// four optimization settings: plain, {ub}, {theta=1}, {ub,theta=1}.
// Configurations whose candidate set exceeds the bench pair budget are
// reported as "skip", mirroring the paper's omission of out-of-memory runs
// (plain FSim_bj did not complete on the large datasets there either).
// Paper: ub alone ~5x faster than plain; theta=1 up to 3 orders of
// magnitude faster; {ub,theta=1} completes everywhere.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace fsim;

int main() {
  bench::PrintHeader(
      "Figure 8: FSim_bj running time (s) per dataset and optimization");
  TablePrinter table({"dataset", "plain", "{ub}", "{theta=1}",
                      "{ub,theta=1}", "|V|", "|E|"});
  for (const auto& spec : AllDatasetSpecs()) {
    Graph g = MakeDataset(spec);
    std::vector<std::string> cells = {spec.name};
    struct Setting {
      double theta;
      bool ub;
    };
    const Setting settings[] = {
        {0.0, false}, {0.0, true}, {1.0, false}, {1.0, true}};
    for (const Setting& s : settings) {
      FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
      config.theta = s.theta;
      config.upper_bound = s.ub;
      config.beta = 0.5;
      config.alpha = 0.0;
      auto run = bench::RunFSim(g, g, config);
      cells.push_back(run ? bench::FormatSeconds(run->seconds) : "skip");
    }
    char vbuf[24], ebuf[24];
    std::snprintf(vbuf, sizeof(vbuf), "%zu", g.NumNodes());
    std::snprintf(ebuf, sizeof(ebuf), "%zu", g.NumEdges());
    cells.emplace_back(vbuf);
    cells.emplace_back(ebuf);
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): {ub} ~5x faster than plain; {theta=1} up "
      "to 1000x faster;\n{ub,theta=1} is the only setting completing on "
      "every dataset ('skip' = over the pair budget,\nthe single-core "
      "analog of the paper's out-of-memory omissions)\n");
  return 0;
}
