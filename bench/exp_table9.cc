// Table 9 — F1 (%) of RDF-style graph alignment across evolving versions
// (G1-G2 and G1-G3), comparing k-bisimulation (k = 2, 4), exact
// bisimulation, Olap, GSANA, FINAL and EWS against FSim_b / FSim_bj argmax
// alignment. Ground truth: node i of G1 is node i of G2/G3 (stable-URI
// identity). Paper: FSim_b 97.6/96.9, FSim_bj 96.5/95.6, EWS 70.8/65.3,
// FINAL 55.2/52.7, Olap ~38, 2-bisim 19.9/53.0, GSANA ~12-15, 4-bisim ~9-11,
// exact bisimulation 0.
#include <cstdio>
#include <functional>

#include "align/alignment.h"
#include "align/ews_align.h"
#include "align/final_align.h"
#include "align/gsana_align.h"
#include "align/version_generator.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

using namespace fsim;

namespace {

Alignment FSimAlign(const Graph& g1, const Graph& g2, SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kIndicator;  // case-study setting
  config.theta = 1.0;
  config.epsilon = 0.01;
  auto run = fsim::bench::RunFSim(g1, g2, config);
  return FSimAlignment(run->scores, g1.NumNodes());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 9: alignment F1 (%) across graph versions, measured [paper]");
  VersionOptions opts;
  opts.base_nodes = 1500;
  opts.base_edges = 3500;
  // Real RDF versions churn (curation), they don't just grow: without churn
  // every percolation/anchor baseline aligns near-perfectly and the paper's
  // separations disappear.
  opts.rewire_fraction = 0.08;
  VersionedGraphs versions = MakeVersionedGraphs(opts);
  std::printf("G1: %zu/%zu  G2: %zu/%zu  G3: %zu/%zu (nodes/edges)\n\n",
              versions.base.NumNodes(), versions.base.NumEdges(),
              versions.v2.NumNodes(), versions.v2.NumEdges(),
              versions.v3.NumNodes(), versions.v3.NumEdges());

  struct Algo {
    const char* name;
    double paper_g12;
    double paper_g13;
    std::function<Alignment(const Graph&, const Graph&)> run;
  };
  const std::vector<Algo> algos = {
      {"2-bisim", 19.9, 53.0,
       [](const Graph& a, const Graph& b) { return KBisimAlignment(a, b, 2); }},
      {"4-bisim", 9.1, 10.9,
       [](const Graph& a, const Graph& b) { return KBisimAlignment(a, b, 4); }},
      {"bisim (exact)", 0.0, 0.0,
       [](const Graph& a, const Graph& b) { return BisimAlignment(a, b); }},
      {"Olap", 37.9, 37.6,
       [](const Graph& a, const Graph& b) { return OlapAlignment(a, b); }},
      {"GSANA", 11.8, 14.9,
       [](const Graph& a, const Graph& b) { return GsanaAlignment(a, b); }},
      {"FINAL", 55.2, 52.7,
       [](const Graph& a, const Graph& b) { return FinalAlignment(a, b); }},
      {"EWS", 70.8, 65.3,
       [](const Graph& a, const Graph& b) { return EwsAlignment(a, b); }},
      {"FSim_b", 97.6, 96.9,
       [](const Graph& a, const Graph& b) {
         return FSimAlign(a, b, SimVariant::kBi);
       }},
      {"FSim_bj", 96.5, 95.6,
       [](const Graph& a, const Graph& b) {
         return FSimAlign(a, b, SimVariant::kBijective);
       }},
  };

  TablePrinter table({"algorithm", "G1-G2", "G1-G3", "time G1-G2"});
  for (const auto& algo : algos) {
    Timer timer;
    const double f12 =
        100.0 * AlignmentF1(algo.run(versions.base, versions.v2),
                            versions.base.NumNodes());
    const double t12 = timer.Seconds();
    const double f13 =
        100.0 * AlignmentF1(algo.run(versions.base, versions.v3),
                            versions.base.NumNodes());
    char c12[48], c13[48];
    std::snprintf(c12, sizeof(c12), "%.1f [%.1f]", f12, algo.paper_g12);
    std::snprintf(c13, sizeof(c13), "%.1f [%.1f]", f13, algo.paper_g13);
    table.AddRow({algo.name, c12, c13, bench::FormatSeconds(t12)});
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): FSim_b and FSim_bj far ahead (>95); EWS "
      "next; FINAL mid;\nOlap beats fixed-k bisimulation; exact bisimulation "
      "collapses to ~0; FSim_b edges out\nFSim_bj, making it the better "
      "alignment candidate (strength S2).\n");
  return 0;
}
