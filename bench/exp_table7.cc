// Table 7 — top-5 venues most similar to "WWW" on the DBIS analog, for
// PCRW, PathSim, JoinSim, nSimGram, FSim_b and FSim_bj. The DBIS artifact
// probed here: WWW also appears under the duplicate ids WWW1..WWW3, and a
// good measure surfaces the duplicates. Paper: FSim_bj is the only
// algorithm placing all three duplicates in its top-5.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datasets/dbis.h"
#include "measures/metapath.h"
#include "measures/qgram.h"

using namespace fsim;

namespace {

/// Ranks venues (excluding the subject itself at rank 0 — the paper keeps
/// the subject as rank 1, so we do too) by a score callback, descending.
std::vector<uint32_t> RankVenues(const DbisGraph& dbis, uint32_t subject,
                                 const std::function<double(uint32_t)>& score) {
  std::vector<uint32_t> order;
  for (uint32_t v = 0; v < dbis.venues.size(); ++v) order.push_back(v);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     const double sa = a == subject ? 1e30 : score(a);
                     const double sb = b == subject ? 1e30 : score(b);
                     return sa > sb;
                   });
  return order;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 7: top-5 venues most similar to WWW per algorithm (DBIS "
      "analog)");
  DbisGraph dbis = MakeDbis();
  std::printf("network: %zu venues, %zu papers, %zu authors; WWW duplicates: "
              "WWW1..WWW%zu\n\n",
              dbis.venues.size(), dbis.papers.size(), dbis.authors.size(),
              dbis.flagship_dups.size());

  Timer meta_timer;
  MetaPathScores meta = ComputeMetaPathScores(dbis);
  const double meta_seconds = meta_timer.Seconds();

  Timer qgram_timer;
  auto profiles = QGramProfiles(dbis.graph, 3);
  const double qgram_seconds = qgram_timer.Seconds();

  auto run_fsim = [&](SimVariant variant) {
    FSimConfig config;
    config.variant = variant;
    config.w_out = 0.4;
    config.w_in = 0.4;
    config.label_sim = LabelSimKind::kIndicator;  // case-study setting
    config.theta = 1.0;
    config.epsilon = 0.01;
    return bench::RunFSim(dbis.graph, dbis.graph, config);
  };
  auto fsim_b = run_fsim(SimVariant::kBi);
  auto fsim_bj = run_fsim(SimVariant::kBijective);

  const uint32_t www = dbis.flagship;
  const NodeId www_node = dbis.venues[www];
  struct AlgoRanking {
    const char* name;
    std::vector<uint32_t> order;
  };
  std::vector<AlgoRanking> rankings;
  rankings.push_back({"PCRW", RankVenues(dbis, www, [&](uint32_t v) {
                        return meta.pcrw.At(www, v);
                      })});
  rankings.push_back({"PathSim", RankVenues(dbis, www, [&](uint32_t v) {
                        return meta.pathsim.At(www, v);
                      })});
  rankings.push_back({"JoinSim", RankVenues(dbis, www, [&](uint32_t v) {
                        return meta.joinsim.At(www, v);
                      })});
  rankings.push_back({"nSimGram", RankVenues(dbis, www, [&](uint32_t v) {
                        return QGramSimilarity(profiles[www_node],
                                               profiles[dbis.venues[v]]);
                      })});
  rankings.push_back({"FSim_b", RankVenues(dbis, www, [&](uint32_t v) {
                        return fsim_b->scores.Score(www_node, dbis.venues[v]);
                      })});
  rankings.push_back({"FSim_bj", RankVenues(dbis, www, [&](uint32_t v) {
                        return fsim_bj->scores.Score(www_node,
                                                     dbis.venues[v]);
                      })});

  TablePrinter table({"rank", "PCRW", "PathSim", "JoinSim", "nSimGram",
                      "FSim_b", "FSim_bj"});
  for (int rank = 0; rank < 5; ++rank) {
    std::vector<std::string> cells = {std::to_string(rank + 1)};
    for (const auto& algo : rankings) {
      cells.push_back(dbis.venue_names[algo.order[rank]]);
    }
    table.AddRow(cells);
  }
  table.Print();

  std::printf("\nduplicates (WWW1..WWW3) in each top-5: ");
  for (const auto& algo : rankings) {
    int dups = 0;
    for (int rank = 0; rank < 5; ++rank) {
      for (uint32_t dup : dbis.flagship_dups) {
        if (algo.order[rank] == dup) ++dups;
      }
    }
    std::printf("%s=%d ", algo.name, dups);
  }
  std::printf(
      "\nexpected shape (paper Table 7): FSim_bj surfaces all three "
      "duplicates; the 1-hop\nmeta-path measures find at most some of "
      "them.\n");
  std::printf(
      "\n§5.4 timing: meta-path baselines %.2fs, q-gram profiles %.2fs, "
      "FSim_b %.2fs, FSim_bj %.2fs\n",
      meta_seconds, qgram_seconds, fsim_b->seconds, fsim_bj->seconds);
  return 0;
}
