// google-benchmark micro-benchmarks for the extension subsystems: splitter-
// queue partition refinement vs signature-based refinement (the hash-free
// vs hashed trade-off), binary graph encode/decode throughput vs the text
// format, Kendall τ-b vs Pearson, and single-edge edit copies.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "eval/metrics.h"
#include "exact/partition_refinement.h"
#include "exact/signatures.h"
#include "graph/binary_io.h"
#include "graph/edits.h"
#include "graph/generators.h"
#include "graph/graph_io.h"

namespace fsim {
namespace {

Graph BenchGraph(uint32_t n, uint32_t labels) {
  LabelingOptions lo;
  lo.num_labels = labels;
  lo.skew = 0.8;
  return ErdosRenyi(n, 4ULL * n, lo, 0xBE7C4);
}

void BM_PartitionRefinementSet(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    Partition p = BisimulationPartition(g);
    benchmark::DoNotOptimize(p.num_blocks);
  }
}
BENCHMARK(BM_PartitionRefinementSet)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_PartitionRefinementCounting(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    Partition p =
        CoarsestStablePartition(g, RefinementSemantics::kCounting, true);
    benchmark::DoNotOptimize(p.num_blocks);
  }
}
BENCHMARK(BM_PartitionRefinementCounting)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_SignatureRefinement(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  for (auto _ : state) {
    auto classes = BisimulationClasses(g, g, /*use_in_neighbors=*/true);
    benchmark::DoNotOptimize(classes.first.size());
  }
}
BENCHMARK(BM_SignatureRefinement)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_BinaryEncode(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string blob = GraphToBinary(g);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryEncode)->Arg(4000)->Arg(16000);

void BM_BinaryDecode(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  const std::string blob = GraphToBinary(g);
  for (auto _ : state) {
    auto loaded = GraphFromBinary(blob);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BinaryDecode)->Arg(4000)->Arg(16000);

void BM_TextDecode(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  const std::string text = GraphToString(g);
  for (auto _ : state) {
    auto loaded = LoadGraphFromString(text);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(text.size()) *
                          static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TextDecode)->Arg(4000)->Arg(16000);

void BM_EdgeEditCopy(benchmark::State& state) {
  Graph g = BenchGraph(static_cast<uint32_t>(state.range(0)), 8);
  Rng rng(0xED6E);
  for (auto _ : state) {
    NodeId from = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    NodeId to = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    auto edited = g.HasEdge(from, to) ? WithEdgeRemoved(g, from, to)
                                      : WithEdgeAdded(g, from, to);
    benchmark::DoNotOptimize(edited.ok());
  }
}
BENCHMARK(BM_EdgeEditCopy)->Arg(1000)->Arg(8000);

void BM_KendallTau(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(0x7AU);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(rng.NextBounded(1000));
    y[i] = x[i] + static_cast<double>(rng.NextBounded(100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(KendallTau(x, y));
  }
}
BENCHMARK(BM_KendallTau)->Arg(1000)->Arg(100000);

void BM_Pearson(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(0x7BU);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonCorrelation(x, y));
  }
}
BENCHMARK(BM_Pearson)->Arg(1000)->Arg(100000);

}  // namespace
}  // namespace fsim

BENCHMARK_MAIN();
