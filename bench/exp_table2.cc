// Table 2 — exact ✓/✗ and fractional FSimχ scores for the Figure 1 example
// (node u against candidates v1..v4, all four variants). The paper's
// published fractional values are printed alongside the measured ones; they
// were produced with unstated parameters, so the comparison is qualitative:
// the ✓/✗ pattern must match exactly, the ✗ scores must stay high but < 1.
//
// Also asserts the Figure 3(b) strictness lattice on the example.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "exact/exact_simulation.h"
#include "graph/graph_builder.h"

using namespace fsim;

namespace {

struct Figure1 {
  Graph pattern;
  Graph data;
  NodeId u = 0;
  NodeId v1, v2, v3, v4;
};

Figure1 MakeFigure1() {
  Figure1 fig;
  GraphBuilder pb;
  NodeId u = pb.AddNode("circle");
  pb.AddEdge(u, pb.AddNode("hex"));
  pb.AddEdge(u, pb.AddNode("hex"));
  pb.AddEdge(u, pb.AddNode("pent"));
  fig.pattern = std::move(pb).BuildOrDie();
  GraphBuilder db(fig.pattern.dict());
  fig.v1 = db.AddNode("circle");
  db.AddEdge(fig.v1, db.AddNode("hex"));
  fig.v2 = db.AddNode("circle");
  db.AddEdge(fig.v2, db.AddNode("hex"));
  db.AddEdge(fig.v2, db.AddNode("pent"));
  fig.v3 = db.AddNode("circle");
  db.AddEdge(fig.v3, db.AddNode("hex"));
  db.AddEdge(fig.v3, db.AddNode("hex"));
  db.AddEdge(fig.v3, db.AddNode("pent"));
  db.AddEdge(fig.v3, db.AddNode("square"));
  fig.v4 = db.AddNode("circle");
  db.AddEdge(fig.v4, db.AddNode("hex"));
  db.AddEdge(fig.v4, db.AddNode("hex"));
  db.AddEdge(fig.v4, db.AddNode("pent"));
  fig.data = std::move(db).BuildOrDie();
  return fig;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 2: u vs v1..v4 on Figure 1 — exact result and FSim score\n"
      "paper values in [brackets] (parameters unpublished; compare shape)");

  Figure1 fig = MakeFigure1();
  const SimVariant variants[] = {SimVariant::kSimple,
                                 SimVariant::kDegreePreserving,
                                 SimVariant::kBi, SimVariant::kBijective};
  const char* row_names[] = {"s-simulation", "dp-simulation", "b-simulation",
                             "bj-simulation"};
  const double paper[4][4] = {{0.85, 1.00, 1.00, 1.00},
                              {0.72, 0.85, 1.00, 1.00},
                              {0.78, 1.00, 0.93, 1.00},
                              {0.72, 0.81, 0.94, 1.00}};
  const bool paper_exact[4][4] = {{false, true, true, true},
                                  {false, false, true, true},
                                  {false, true, false, true},
                                  {false, false, false, true}};

  TablePrinter table({"variant", "(u,v1)", "(u,v2)", "(u,v3)", "(u,v4)"});
  const NodeId vs[4] = {fig.v1, fig.v2, fig.v3, fig.v4};
  bool shape_ok = true;
  for (int row = 0; row < 4; ++row) {
    FSimConfig config;
    config.variant = variants[row];
    config.w_out = 0.4;
    config.w_in = 0.4;
    config.label_sim = LabelSimKind::kIndicator;
    config.epsilon = 1e-6;
    auto run = bench::RunFSim(fig.pattern, fig.data, config);
    BinaryRelation exact =
        MaxSimulation(fig.pattern, fig.data, variants[row]);
    std::vector<std::string> cells = {row_names[row]};
    for (int col = 0; col < 4; ++col) {
      const bool is_exact = exact.Contains(fig.u, vs[col]);
      const double score = run->scores.Score(fig.u, vs[col]);
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s (%.2f) [%s (%.2f)]",
                    is_exact ? "ok" : "x", score,
                    paper_exact[row][col] ? "ok" : "x", paper[row][col]);
      cells.emplace_back(buf);
      if (is_exact != paper_exact[row][col]) shape_ok = false;
      if (is_exact && score != 1.0) shape_ok = false;
      if (!is_exact && score >= 1.0) shape_ok = false;
    }
    table.AddRow(cells);
  }
  table.Print();
  std::printf("\nexact ✓/✗ pattern matches the paper: %s\n",
              shape_ok ? "YES" : "NO");

  // Figure 3(b) strictness on the example: u ⇝bj v4 implies all others.
  bool lattice_ok = true;
  for (SimVariant v : variants) {
    lattice_ok &= MaxSimulation(fig.pattern, fig.data, v)
                      .Contains(fig.u, fig.v4);
  }
  std::printf("Figure 3(b) strictness (bj at v4 implies s, dp, b): %s\n",
              lattice_ok ? "YES" : "NO");
  return shape_ok && lattice_ok ? 0 : 1;
}
