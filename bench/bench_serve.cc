// Serving-layer benchmark (src/serve/): query throughput against a
// published snapshot with 1-8 concurrent reader threads, the top-k
// selection micro-benchmark (full row sort vs row materialize +
// partial_sort vs the bounded-heap FSimScores::TopK vs the snapshot's
// precomputed cache), and refresh-publish latency under a synthetic edit
// stream. Headline numbers are written to BENCH_serve.json so CI can track
// the serving path alongside BENCH_fsim.json / BENCH_incremental.json
// (scripts/append_bench_history.py --serve, gated by
// scripts/check_bench_history.py).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "serve/query.h"
#include "serve/recovery.h"
#include "serve/refresh.h"
#include "serve/snapshot.h"

using namespace fsim;

namespace {

constexpr size_t kPairQueriesPerThread = 400'000;
constexpr size_t kTopKCalls = 20'000;
constexpr int kEditBursts = 20;
constexpr int kEditsPerBurst = 8;

struct ServeReport {
  std::string dataset;
  size_t pairs = 0;
  size_t cache_k = 0;
  // Single-pair query throughput (queries/second) by reader-thread count.
  std::vector<std::pair<int, double>> pair_qps;
  // Top-k selection micro-benchmark, microseconds per call.
  double topk_row_full_sort_us = 0.0;
  double topk_row_partial_sort_us = 0.0;
  double topk_heap_select_us = 0.0;
  double topk_cached_us = 0.0;
  // Refresh-publish latency under the synthetic edit stream.
  double median_flush_ms = 0.0;   // drain + apply + publish
  double median_publish_ms = 0.0; // snapshot build + swap only
  size_t publishes = 0;
  // Batch-query throughput (queries/second) via QueryEngine::RunBatch, by
  // pool-worker count (1 = the serial fallback path).
  std::vector<std::pair<int, double>> batch_qps;
  // Refresh flush latency by engine thread count (the wave-parallel
  // propagate path): (threads, median flush ms, median publish ms).
  struct RefreshAtThreads {
    int threads = 1;
    double median_flush_ms = 0.0;
    double median_publish_ms = 0.0;
  };
  std::vector<RefreshAtThreads> refresh_threads;
  // Durability overhead: the same edit stream with a WAL attached — every
  // Submit is a durable (fsync'd) append. Acceptance bound for the WAL
  // work: publish latency must stay within 25% of the WAL-off median.
  double wal_median_flush_ms = 0.0;
  double wal_median_publish_ms = 0.0;
  double wal_median_submit_us = 0.0;  // per-edit durable append cost
  // Closed-loop per-verb query latency quantiles, from the registry's
  // fsim_serve_query_seconds histograms (obs/metrics.h): interval snapshot
  // deltas around a single-reader loop, microseconds. History-gated
  // (lower is better) alongside qps.
  struct VerbLatency {
    std::string verb;  // lowercase JSON key prefix: pair / topk / thresh
    uint64_t count = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };
  std::vector<VerbLatency> latency;
};

/// Runs `calls` closed-loop queries of one kind through engine.Run and
/// returns the latency quantiles of exactly that interval, by differencing
/// registry histogram snapshots around the loop. The max is the histogram's
/// lifetime max (shard maxima are cumulative), which only ever overstates
/// the interval max.
ServeReport::VerbLatency MeasureVerbLatency(const QueryEngine& engine,
                                            NodeId num_nodes,
                                            Query::Kind kind, size_t calls) {
  ServeReport::VerbLatency out;
  const char* label = kind == Query::Kind::kPair
                          ? "PAIR"
                          : (kind == Query::Kind::kTopK ? "TOPK" : "THRESH");
  out.verb = kind == Query::Kind::kPair
                 ? "pair"
                 : (kind == Query::Kind::kTopK ? "topk" : "thresh");
  obs::Histogram* histogram = obs::Registry::Default().FindHistogram(
      QueryEngine::kLatencyFamily, label);
  if (histogram == nullptr) return out;  // engine not constructed yet
  const obs::HistogramSnapshot before = histogram->Snapshot();
  Rng rng(0x1A7E);
  double sink = 0.0;
  Query query;
  query.kind = kind;
  query.k = 10;
  query.tau = 0.5;
  for (size_t i = 0; i < calls; ++i) {
    query.u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    query.v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    auto result = engine.Run(query);
    sink += result.ok() ? result->score : 0.0;
  }
  if (sink < -1.0) std::printf("impossible %f\n", sink);  // defeat DCE
  const obs::HistogramSnapshot delta =
      obs::HistogramSnapshot::Delta(histogram->Snapshot(), before);
  out.count = delta.count;
  out.p50_us = delta.Quantile(0.5) * 1e-3;
  out.p99_us = delta.Quantile(0.99) * 1e-3;
  out.max_us = static_cast<double>(delta.max) * 1e-3;
  return out;
}

/// Replays the synthetic edit-burst stream against a fresh refresh driver
/// whose engine runs `num_threads` workers; returns the median flush and
/// publish latency. Mirrors the main refresh section so the sweep isolates
/// the engine thread count (same seed, same burst shape).
ServeReport::RefreshAtThreads MeasureRefreshAtThreads(const Graph& g,
                                                      FSimConfig config,
                                                      int num_threads) {
  config.num_threads = num_threads;
  SnapshotStore store;
  RefreshPolicy policy;
  policy.max_edits_behind = kEditsPerBurst;
  policy.topk_cache_k = 16;
  IncrementalOptions inc_options;
  inc_options.propagation_tolerance = 1e-6;
  RefreshDriver driver(g, g, config, inc_options, policy, &store);
  Status init = driver.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "fatal: %s\n", init.ToString().c_str());
    std::abort();
  }
  const NodeId num_nodes = static_cast<NodeId>(g.NumNodes());
  Rng rng(0xED17);
  std::vector<double> flush_ms;
  std::vector<double> publish_ms;
  for (int burst = 0; burst < kEditBursts; ++burst) {
    for (int e = 0; e < kEditsPerBurst; ++e) {
      EditOp op;
      op.graph_index = (e % 2) + 1;
      op.from = static_cast<NodeId>(rng.NextBounded(num_nodes));
      op.to = static_cast<NodeId>(rng.NextBounded(num_nodes));
      if (op.from == op.to) continue;
      op.insert = (rng.Next() & 1) != 0;
      if (!driver.Submit(op).ok()) std::abort();
    }
    Timer flush_timer;
    Status st = driver.Flush();
    if (!st.ok()) {
      std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
      std::abort();
    }
    flush_ms.push_back(flush_timer.Seconds() * 1e3);
    publish_ms.push_back(driver.stats().last_publish_seconds * 1e3);
  }
  std::sort(flush_ms.begin(), flush_ms.end());
  std::sort(publish_ms.begin(), publish_ms.end());
  ServeReport::RefreshAtThreads result;
  result.threads = num_threads;
  result.median_flush_ms = flush_ms[flush_ms.size() / 2];
  result.median_publish_ms = publish_ms[publish_ms.size() / 2];
  return result;
}

/// The same edit-burst stream with WAL durability attached: every Submit
/// is a checksummed append + fsync before the ack. Fills the wal_* report
/// fields (median flush/publish ms plus the per-edit durable submit cost).
void MeasureRefreshWithWal(const Graph& g, const FSimConfig& config,
                           ServeReport* report) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fsim_bench_wal";
  std::error_code ec;
  fs::remove_all(dir, ec);

  SnapshotStore store;
  RefreshPolicy policy;
  policy.max_edits_behind = kEditsPerBurst;
  policy.topk_cache_k = 16;
  IncrementalOptions inc_options;
  inc_options.propagation_tolerance = 1e-6;
  RefreshDriver driver(g, g, config, inc_options, policy, &store);
  DurabilityOptions durability;
  durability.dir = dir.string();
  durability.snapshot_every_edits = 0;  // isolate the WAL cost per edit
  auto recovered = RecoverServeState(durability.dir, g, g);
  if (!recovered.ok() ||
      !driver.EnableDurability(durability, std::move(*recovered)).ok() ||
      !driver.Init().ok()) {
    std::fprintf(stderr, "fatal: WAL bench setup failed\n");
    std::abort();
  }

  const NodeId num_nodes = static_cast<NodeId>(g.NumNodes());
  Rng rng(0xED17);  // same stream as the WAL-off section
  std::vector<double> flush_ms, publish_ms, submit_us;
  for (int burst = 0; burst < kEditBursts; ++burst) {
    for (int e = 0; e < kEditsPerBurst; ++e) {
      EditOp op;
      op.graph_index = (e % 2) + 1;
      op.from = static_cast<NodeId>(rng.NextBounded(num_nodes));
      op.to = static_cast<NodeId>(rng.NextBounded(num_nodes));
      if (op.from == op.to) continue;
      op.insert = (rng.Next() & 1) != 0;
      Timer submit_timer;
      if (!driver.Submit(op).ok()) std::abort();
      submit_us.push_back(submit_timer.Seconds() * 1e6);
    }
    Timer flush_timer;
    if (!driver.Flush().ok()) std::abort();
    flush_ms.push_back(flush_timer.Seconds() * 1e3);
    publish_ms.push_back(driver.stats().last_publish_seconds * 1e3);
  }
  std::sort(flush_ms.begin(), flush_ms.end());
  std::sort(publish_ms.begin(), publish_ms.end());
  std::sort(submit_us.begin(), submit_us.end());
  report->wal_median_flush_ms = flush_ms[flush_ms.size() / 2];
  report->wal_median_publish_ms = publish_ms[publish_ms.size() / 2];
  report->wal_median_submit_us = submit_us[submit_us.size() / 2];
  fs::remove_all(dir, ec);
}

/// RunBatch throughput over a fixed mixed batch (pair-heavy with a top-k
/// tail, matching the protocol's BATCH shape). `pool` == nullptr measures
/// the serial fallback.
double MeasureBatchQps(const SnapshotStore& store, ThreadPool* pool,
                       NodeId num_nodes) {
  constexpr size_t kBatchSize = 4096;
  constexpr int kBatchRounds = 40;
  QueryEngine engine(&store, pool);
  Rng rng(0xBA7C);
  std::vector<Query> queries(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    queries[i].u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (i % 16 == 15) {
      queries[i].kind = Query::Kind::kTopK;
      queries[i].k = 10;
    } else {
      queries[i].kind = Query::Kind::kPair;
      queries[i].v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    }
  }
  double sink = 0.0;
  Timer timer;
  for (int round = 0; round < kBatchRounds; ++round) {
    auto results = engine.RunBatch(queries);
    if (!results.ok()) {
      std::fprintf(stderr, "fatal: %s\n",
                   results.status().ToString().c_str());
      std::abort();
    }
    sink += results->front().score;
  }
  const double seconds = timer.Seconds();
  if (sink < -1.0) std::printf("impossible %f\n", sink);  // defeat DCE
  return static_cast<double>(kBatchSize) * kBatchRounds / seconds;
}

/// The serving-path pair-query loop: acquire-per-query through QueryEngine,
/// uniformly random (u, v).
double MeasurePairQps(const QueryEngine& engine, NodeId num_nodes,
                      int threads) {
  std::atomic<double> sink{0.0};
  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&engine, num_nodes, t, &sink] {
      Rng rng(0x5E7E + static_cast<uint64_t>(t));
      double local = 0.0;
      Query query;
      query.kind = Query::Kind::kPair;
      for (size_t i = 0; i < kPairQueriesPerThread; ++i) {
        query.u = static_cast<NodeId>(rng.NextBounded(num_nodes));
        query.v = static_cast<NodeId>(rng.NextBounded(num_nodes));
        auto result = engine.Run(query);
        local += result.ok() ? result->score : 0.0;
      }
      sink.store(sink.load() + local);  // keep the loop alive
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = timer.Seconds();
  return static_cast<double>(kPairQueriesPerThread) * threads / seconds;
}

/// Reference: materialize the row and fully sort it (the naive top-k).
std::vector<std::pair<NodeId, double>> TopKFullSort(const FSimScores& scores,
                                                    NodeId u, size_t k) {
  auto row = scores.Row(u);
  std::sort(row.begin(), row.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (row.size() > k) row.resize(k);
  return row;
}

/// Reference: materialize the row, partial_sort the prefix (the pre-serving
/// FSimScores::TopK implementation).
std::vector<std::pair<NodeId, double>> TopKPartialSort(
    const FSimScores& scores, NodeId u, size_t k) {
  auto row = scores.Row(u);
  auto cmp = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (row.size() > k) {
    std::partial_sort(row.begin(), row.begin() + static_cast<ptrdiff_t>(k),
                      row.end(), cmp);
    row.resize(k);
  } else {
    std::sort(row.begin(), row.end(), cmp);
  }
  return row;
}

template <typename Fn>
double MeasureTopKMicros(NodeId num_nodes, const Fn& fn) {
  Rng rng(0x70B);
  double sink = 0.0;
  Timer timer;
  for (size_t i = 0; i < kTopKCalls; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const auto top = fn(u);
    sink += top.empty() ? 0.0 : top.front().second;
  }
  const double us = timer.Seconds() * 1e6 / static_cast<double>(kTopKCalls);
  if (sink < -1.0) std::printf("impossible %f\n", sink);  // defeat DCE
  return us;
}

bool WriteBenchJson(const std::string& path, const ServeReport& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"serve\": {\n");
  std::fprintf(f, "    \"dataset\": \"%s\",\n    \"pairs\": %zu,\n",
               r.dataset.c_str(), r.pairs);
  std::fprintf(f, "    \"cache_k\": %zu,\n", r.cache_k);
  std::fprintf(f, "    \"pair_qps\": {");
  for (size_t i = 0; i < r.pair_qps.size(); ++i) {
    std::fprintf(f, "%s\"threads_%d\": %.0f", i == 0 ? "" : ", ",
                 r.pair_qps[i].first, r.pair_qps[i].second);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "    \"topk\": {\"row_full_sort_us\": %.3f, "
               "\"row_partial_sort_us\": %.3f, \"heap_select_us\": %.3f, "
               "\"cached_us\": %.3f},\n",
               r.topk_row_full_sort_us, r.topk_row_partial_sort_us,
               r.topk_heap_select_us, r.topk_cached_us);
  std::fprintf(f, "    \"batch_qps\": {");
  for (size_t i = 0; i < r.batch_qps.size(); ++i) {
    std::fprintf(f, "%s\"threads_%d\": %.0f", i == 0 ? "" : ", ",
                 r.batch_qps[i].first, r.batch_qps[i].second);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f, "    \"latency\": {");
  for (size_t i = 0; i < r.latency.size(); ++i) {
    const auto& v = r.latency[i];
    std::fprintf(f,
                 "%s\"%s_p50_us\": %.3f, \"%s_p99_us\": %.3f, "
                 "\"%s_max_us\": %.3f",
                 i == 0 ? "" : ", ", v.verb.c_str(), v.p50_us,
                 v.verb.c_str(), v.p99_us, v.verb.c_str(), v.max_us);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "    \"refresh\": {\"median_flush_ms\": %.3f, "
               "\"median_publish_ms\": %.3f, \"publishes\": %zu},\n",
               r.median_flush_ms, r.median_publish_ms, r.publishes);
  std::fprintf(f,
               "    \"refresh_wal\": {\"median_flush_ms\": %.3f, "
               "\"median_publish_ms\": %.3f, \"median_submit_us\": %.3f}%s\n",
               r.wal_median_flush_ms, r.wal_median_publish_ms,
               r.wal_median_submit_us, r.refresh_threads.empty() ? "" : ",");
  // The engine-thread refresh sweep; separate "refresh_tN" keys so the
  // t=1 "refresh" history entries above stay comparable across PRs.
  for (size_t i = 0; i < r.refresh_threads.size(); ++i) {
    const auto& rt = r.refresh_threads[i];
    std::fprintf(f,
                 "    \"refresh_t%d\": {\"median_flush_ms\": %.3f, "
                 "\"median_publish_ms\": %.3f, \"num_threads\": %d}%s\n",
                 rt.threads, rt.median_flush_ms, rt.median_publish_ms,
                 rt.threads, i + 1 < r.refresh_threads.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Serving layer: snapshot query throughput, top-k selection, "
      "refresh-publish latency (yeast analog, FSim_bj, theta=1)");

  ServeReport report;
  report.dataset = "yeast";
  const Graph g = MakeDatasetByName("yeast");
  FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
  config.theta = 1.0;
  config.epsilon = 1e-4;
  config.pair_limit = bench::kBenchPairLimit;

  // One refresh driver owns the solve; its published snapshot is the query
  // substrate for the read-side measurements.
  SnapshotStore store;
  RefreshPolicy policy;
  policy.max_edits_behind = kEditsPerBurst;  // publish once per burst
  policy.topk_cache_k = 16;
  report.cache_k = policy.topk_cache_k;
  IncrementalOptions inc_options;
  inc_options.propagation_tolerance = 1e-6;  // as bench/exp_incremental
  Timer solve_timer;
  RefreshDriver driver(g, g, config, inc_options, policy, &store);
  Status init = driver.Init();
  if (!init.ok()) {
    std::fprintf(stderr, "fatal: %s\n", init.ToString().c_str());
    return 1;
  }
  std::printf("initial solve + publish: %.2fs\n", solve_timer.Seconds());
  const SnapshotPtr snapshot = store.Acquire();
  report.pairs = snapshot->scores().NumPairs();
  const NodeId num_nodes = static_cast<NodeId>(g.NumNodes());
  std::printf("pairs=%zu, top-k cache %.1f KiB\n", report.pairs,
              static_cast<double>(snapshot->CacheBytes()) / 1024.0);

  // --- Single-pair query throughput, 1-8 reader threads. ---
  QueryEngine engine(&store);
  TablePrinter qps_table({"readers", "queries/s", "us/query"});
  for (int threads : {1, 2, 4, 8}) {
    const double qps = MeasurePairQps(engine, num_nodes, threads);
    report.pair_qps.emplace_back(threads, qps);
    char qps_s[32], us_s[32];
    std::snprintf(qps_s, sizeof(qps_s), "%.2fM", qps / 1e6);
    std::snprintf(us_s, sizeof(us_s), "%.3f", 1e6 / qps * threads);
    qps_table.AddRow({std::to_string(threads), qps_s, us_s});
  }
  qps_table.Print();

  // --- Per-verb closed-loop latency quantiles (single reader). ---
  TablePrinter latency_table({"verb", "calls", "p50", "p99", "max"});
  for (const auto& [kind, calls] :
       {std::pair{Query::Kind::kPair, size_t{200'000}},
        std::pair{Query::Kind::kTopK, size_t{20'000}},
        std::pair{Query::Kind::kThreshold, size_t{20'000}}}) {
    auto verb = MeasureVerbLatency(engine, num_nodes, kind, calls);
    char p50_s[32], p99_s[32], max_s[32];
    std::snprintf(p50_s, sizeof(p50_s), "%.2fus", verb.p50_us);
    std::snprintf(p99_s, sizeof(p99_s), "%.2fus", verb.p99_us);
    std::snprintf(max_s, sizeof(max_s), "%.2fus", verb.max_us);
    latency_table.AddRow({verb.verb, std::to_string(verb.count), p50_s,
                          p99_s, max_s});
    report.latency.push_back(std::move(verb));
  }
  latency_table.Print();

  // --- Top-k selection micro-benchmark (k = 10). ---
  constexpr size_t kK = 10;
  const FSimScores& scores = snapshot->scores();
  report.topk_row_full_sort_us = MeasureTopKMicros(
      num_nodes, [&](NodeId u) { return TopKFullSort(scores, u, kK); });
  report.topk_row_partial_sort_us = MeasureTopKMicros(
      num_nodes, [&](NodeId u) { return TopKPartialSort(scores, u, kK); });
  report.topk_heap_select_us = MeasureTopKMicros(
      num_nodes, [&](NodeId u) { return scores.TopK(u, kK); });
  report.topk_cached_us = MeasureTopKMicros(
      num_nodes, [&](NodeId u) { return snapshot->TopK(u, kK); });
  std::printf(
      "top-%zu per call: full sort %.2fus, partial sort %.2fus, heap select "
      "%.2fus, snapshot cache %.2fus\n",
      kK, report.topk_row_full_sort_us, report.topk_row_partial_sort_us,
      report.topk_heap_select_us, report.topk_cached_us);

  // --- Refresh-publish latency under a synthetic edit stream. ---
  Rng rng(0xED17);
  std::vector<double> flush_ms;
  std::vector<double> publish_ms;
  for (int burst = 0; burst < kEditBursts; ++burst) {
    for (int e = 0; e < kEditsPerBurst; ++e) {
      EditOp op;
      op.graph_index = (e % 2) + 1;
      op.from = static_cast<NodeId>(rng.NextBounded(num_nodes));
      op.to = static_cast<NodeId>(rng.NextBounded(num_nodes));
      if (op.from == op.to) continue;
      op.insert = (rng.Next() & 1) != 0;
      if (!driver.Submit(op).ok()) std::abort();
    }
    Timer flush_timer;
    Status st = driver.Flush();
    if (!st.ok()) {
      std::fprintf(stderr, "fatal: %s\n", st.ToString().c_str());
      return 1;
    }
    flush_ms.push_back(flush_timer.Seconds() * 1e3);
    publish_ms.push_back(driver.stats().last_publish_seconds * 1e3);
  }
  std::sort(flush_ms.begin(), flush_ms.end());
  std::sort(publish_ms.begin(), publish_ms.end());
  report.median_flush_ms = flush_ms[flush_ms.size() / 2];
  report.median_publish_ms = publish_ms[publish_ms.size() / 2];
  report.publishes = driver.stats().publishes;
  std::printf(
      "refresh: %d bursts x %d edits, median flush %.2fms (publish %.2fms), "
      "%zu publishes, %llu edits applied\n",
      kEditBursts, kEditsPerBurst, report.median_flush_ms,
      report.median_publish_ms, report.publishes,
      static_cast<unsigned long long>(driver.stats().edits_applied));

  // --- Durability overhead: the same stream, WAL-on. ---
  MeasureRefreshWithWal(g, config, &report);
  std::printf(
      "refresh with WAL: median flush %.2fms (publish %.2fms), durable "
      "submit %.1fus/edit — publish overhead %+.1f%% vs WAL-off (bound: "
      "<25%%)\n",
      report.wal_median_flush_ms, report.wal_median_publish_ms,
      report.wal_median_submit_us,
      report.median_publish_ms > 0.0
          ? (report.wal_median_publish_ms / report.median_publish_ms - 1.0) *
                100.0
          : 0.0);

  // --- Batch-query fan-out: RunBatch serial vs pooled. ---
  const std::vector<int> thread_counts = bench::BenchThreadCounts();
  TablePrinter batch_table({"pool workers", "batch queries/s"});
  for (int t : thread_counts) {
    std::unique_ptr<ThreadPool> pool;
    if (t > 1) pool = std::make_unique<ThreadPool>(t);
    const double qps = MeasureBatchQps(store, pool.get(), num_nodes);
    report.batch_qps.emplace_back(t, qps);
    char qps_s[32];
    std::snprintf(qps_s, sizeof(qps_s), "%.2fM", qps / 1e6);
    batch_table.AddRow({std::to_string(t), qps_s});
  }
  batch_table.Print();

  // --- Refresh flush latency vs engine thread count (wave-parallel
  // propagate; t=1 is the serial chaotic engine, already reported above
  // as the history-tracked "refresh" section). ---
  if (thread_counts.size() > 1) {
    TablePrinter refresh_table({"engine threads", "med flush", "med publish"});
    for (int t : thread_counts) {
      if (t <= 1) continue;
      const auto rt = MeasureRefreshAtThreads(g, config, t);
      report.refresh_threads.push_back(rt);
      char flush_s[32], publish_s[32];
      std::snprintf(flush_s, sizeof(flush_s), "%.2fms", rt.median_flush_ms);
      std::snprintf(publish_s, sizeof(publish_s), "%.2fms",
                    rt.median_publish_ms);
      refresh_table.AddRow({std::to_string(t), flush_s, publish_s});
    }
    refresh_table.Print();
  }

  if (!WriteBenchJson("BENCH_serve.json", report)) {
    std::fprintf(stderr, "warning: could not write BENCH_serve.json\n");
  } else {
    std::printf("wrote BENCH_serve.json\n");
  }
  std::printf(
      "expected: single-pair lookups are one snapshot acquire + one hash "
      "probe (>=100k/s is the serving floor; typical is millions/s), the "
      "snapshot cache answers top-k without touching the row, and publish "
      "cost is the score-table copy + cache build — independent of the "
      "edit-burst size.\n");
  return 0;
}
