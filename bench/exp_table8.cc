// Table 8 — nDCG of the node-similarity algorithms over 15 subject venues
// on the DBIS analog: each algorithm ranks the top-15 venues most similar
// to the subject, graded against the area/tier relevance ground truth
// (2 = same area & tier, 1 = same area, 0 = otherwise).
// Paper: PCRW/PathSim 0.684, JoinSim 0.689, nSimGram 0.700, FSim_b 0.699,
// FSim_bj 0.733 — fractional bijective simulation wins.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "datasets/dbis.h"
#include "eval/metrics.h"
#include "measures/metapath.h"
#include "measures/qgram.h"

using namespace fsim;

namespace {

constexpr size_t kTopK = 15;

double AverageNdcg(const DbisGraph& dbis,
                   const std::vector<uint32_t>& subjects,
                   const std::function<double(uint32_t, uint32_t)>& score) {
  double total = 0.0;
  for (uint32_t subject : subjects) {
    std::vector<uint32_t> order;
    for (uint32_t v = 0; v < dbis.venues.size(); ++v) {
      if (v != subject) order.push_back(v);
    }
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return score(subject, a) > score(subject, b);
    });
    std::vector<double> ranked;
    std::vector<double> ideal;
    for (uint32_t v : order) ideal.push_back(dbis.Relevance(subject, v));
    for (size_t i = 0; i < std::min(kTopK, order.size()); ++i) {
      ranked.push_back(dbis.Relevance(subject, order[i]));
    }
    total += NDCG(ranked, ideal, kTopK);
  }
  return total / static_cast<double>(subjects.size());
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table 8: average nDCG@15 over 15 subject venues (DBIS analog)\n"
      "measured [paper]");
  DbisGraph dbis = MakeDbis();

  // 15 subjects spread over areas and tiers (3 per area).
  std::vector<uint32_t> subjects;
  std::vector<uint32_t> per_area_count(16, 0);
  for (uint32_t v = 0; v < dbis.venues.size() && subjects.size() < 15; ++v) {
    if (per_area_count[dbis.venue_area[v]] < 3) {
      subjects.push_back(v);
      ++per_area_count[dbis.venue_area[v]];
    }
  }

  MetaPathScores meta = ComputeMetaPathScores(dbis);
  auto profiles = QGramProfiles(dbis.graph, 3);
  auto run_fsim = [&](SimVariant variant) {
    FSimConfig config;
    config.variant = variant;
    config.w_out = 0.4;
    config.w_in = 0.4;
    config.label_sim = LabelSimKind::kIndicator;
    config.theta = 1.0;
    config.epsilon = 0.01;
    return bench::RunFSim(dbis.graph, dbis.graph, config);
  };
  auto fsim_b = run_fsim(SimVariant::kBi);
  auto fsim_bj = run_fsim(SimVariant::kBijective);

  struct Algo {
    const char* name;
    double paper;
    std::function<double(uint32_t, uint32_t)> score;
  };
  const std::vector<Algo> algos = {
      {"PCRW", 0.684,
       [&](uint32_t s, uint32_t v) { return meta.pcrw.At(s, v); }},
      {"PathSim", 0.684,
       [&](uint32_t s, uint32_t v) { return meta.pathsim.At(s, v); }},
      {"JoinSim", 0.689,
       [&](uint32_t s, uint32_t v) { return meta.joinsim.At(s, v); }},
      {"nSimGram", 0.700,
       [&](uint32_t s, uint32_t v) {
         return QGramSimilarity(profiles[dbis.venues[s]],
                                profiles[dbis.venues[v]]);
       }},
      {"FSim_b", 0.699,
       [&](uint32_t s, uint32_t v) {
         return fsim_b->scores.Score(dbis.venues[s], dbis.venues[v]);
       }},
      {"FSim_bj", 0.733,
       [&](uint32_t s, uint32_t v) {
         return fsim_bj->scores.Score(dbis.venues[s], dbis.venues[v]);
       }},
  };

  TablePrinter table({"algorithm", "nDCG@15"});
  double best_baseline = 0.0;
  double fsim_bj_value = 0.0;
  for (const auto& algo : algos) {
    const double ndcg = AverageNdcg(dbis, subjects, algo.score);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f [%.3f]", ndcg, algo.paper);
    table.AddRow({algo.name, buf});
    if (std::string(algo.name) == "FSim_bj") {
      fsim_bj_value = ndcg;
    } else if (std::string(algo.name) != "FSim_b") {
      best_baseline = std::max(best_baseline, ndcg);
    }
  }
  table.Print();
  std::printf("\nexpected shape (paper): FSim_bj ranks best (0.733 vs <= "
              "0.700 baselines).\nmeasured: FSim_bj %.3f vs best baseline "
              "%.3f -> %s\n",
              fsim_bj_value, best_baseline,
              fsim_bj_value >= best_baseline ? "shape holds" : "shape differs");
  return 0;
}
