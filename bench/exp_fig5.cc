// Figure 5 — robustness of FSim_bj against data errors on the NELL analog:
// the graph is perturbed with structural errors (edges added + removed) or
// label errors (labels replaced by a missing-label sentinel) at 0..20%, and
// the perturbed self-similarity scores are correlated against the clean
// ones, for θ=0 and θ=1. Paper: decreasing, but > 0.7 at the 20% level.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/metrics.h"
#include "graph/noise.h"

using namespace fsim;

int main() {
  Graph nell = MakeDatasetByName("nell");

  auto run_bj = [&](const Graph& g, double theta) {
    FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
    config.theta = theta;
    auto run = bench::RunFSim(g, g, config);
    return std::move(run->scores);
  };

  for (int mode = 0; mode < 2; ++mode) {
    const bool structural = mode == 0;
    bench::PrintHeader(structural
                           ? "Figure 5(a): varying structural errors "
                             "(edges added+removed)"
                           : "Figure 5(b): varying label errors (labels "
                             "turned missing)");
    TablePrinter table({"error level", "FSim_bj", "FSim_bj{theta=1}"});
    FSimScores clean0 = run_bj(nell, 0.0);
    FSimScores clean1 = run_bj(nell, 1.0);
    for (double level : {0.00, 0.05, 0.10, 0.15, 0.20}) {
      Graph noisy =
          structural
              ? PerturbStructure(nell, level / 2.0, level / 2.0,
                                 0xE44 + static_cast<uint64_t>(level * 100))
              : PerturbLabels(nell, level, LabelNoiseMode::kMissing,
                              0xE55 + static_cast<uint64_t>(level * 100));
      FSimScores noisy0 = run_bj(noisy, 0.0);
      FSimScores noisy1 = run_bj(noisy, 1.0);
      char lbuf[16], b0[16], b1[16];
      std::snprintf(lbuf, sizeof(lbuf), "%.0f%%", level * 100);
      std::snprintf(b0, sizeof(b0), "%.3f",
                    CorrelateCommonScores(clean0, noisy0));
      std::snprintf(b1, sizeof(b1), "%.3f",
                    CorrelateCommonScores(clean1, noisy1));
      table.AddRow({lbuf, b0, b1});
    }
    table.Print();
  }
  std::printf("\nexpected shape: coefficients decrease with the error level "
              "but stay high (paper: > 0.7 at 20%%)\n");
  return 0;
}
