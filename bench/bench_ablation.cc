// Ablation study of the framework's design choices (DESIGN.md §6):
//
//  (a) sparse candidate store vs dense matrix iteration — what the hashing /
//      candidate machinery costs (or saves) when θ filtering is off and on;
//  (b) greedy ½-approximate vs exact Hungarian realization of the injective
//      mapping operators (M_dp / M_bj) — the paper's speed/fidelity
//      trade-off [23];
//  (c) certified all-pairs top-k early termination vs full ε-convergence —
//      the Theorem 1 tail bound in action.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/dense_engine.h"
#include "core/topk_allpairs.h"
#include "eval/metrics.h"

using namespace fsim;

namespace {

double MaxAbsDiffOnPairs(const FSimScores& sparse,
                         const DenseFSimScores& dense) {
  double max_diff = 0.0;
  for (size_t i = 0; i < sparse.keys().size(); ++i) {
    const NodeId u = PairFirst(sparse.keys()[i]);
    const NodeId v = PairSecond(sparse.keys()[i]);
    max_diff =
        std::max(max_diff, std::abs(sparse.values()[i] - dense.Score(u, v)));
  }
  return max_diff;
}

void SparseVsDense() {
  bench::PrintHeader(
      "Ablation (a): sparse candidate store vs dense matrix iteration "
      "(FSim_bj, paper defaults; dense split into label-class index vs "
      "per-visit lookup)");
  TablePrinter table({"dataset", "theta", "pairs", "sparse", "dense idx",
                      "dense lkp", "max |diff|"});
  for (const char* name : {"yeast", "nell"}) {
    Graph g = MakeDatasetByName(name);
    for (double theta : {0.0, 1.0}) {
      FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
      config.theta = theta;
      config.pair_limit = bench::kBenchPairLimit;

      Timer sparse_timer;
      auto sparse = ComputeFSim(g, g, config);
      const double sparse_s = sparse_timer.Seconds();
      if (!sparse.ok()) continue;

      Timer dense_timer;
      auto dense = ComputeFSimDense(g, g, config);
      const double dense_s = dense_timer.Seconds();
      if (!dense.ok()) {
        table.AddRow({name, theta == 0 ? "0" : "1",
                      std::to_string(sparse->NumPairs()),
                      bench::FormatSeconds(sparse_s), "skipped (limit)", "-",
                      "-"});
        continue;
      }
      Timer lookup_timer;
      config.neighbor_index_budget_bytes = 0;  // force the lookup fallback
      auto dense_lookup = ComputeFSimDense(g, g, config);
      const double lookup_s = lookup_timer.Seconds();
      char diff[24];
      std::snprintf(diff, sizeof(diff), "%.1e",
                    MaxAbsDiffOnPairs(*sparse, *dense));
      table.AddRow({name, theta == 0 ? "0" : "1",
                    std::to_string(sparse->NumPairs()),
                    bench::FormatSeconds(sparse_s),
                    bench::FormatSeconds(dense_s),
                    dense_lookup.ok() ? bench::FormatSeconds(lookup_s) : "-",
                    diff});
    }
  }
  table.Print();
  std::printf(
      "expected: identical scores (diff ~ 0); the label-class index closes "
      "most of dense mode's theta=1 gap (it skips incompatible classes "
      "without maintaining a candidate store), while sparse still wins by "
      "not visiting incompatible pairs at all\n");
}

void GreedyVsHungarian() {
  bench::PrintHeader(
      "Ablation (b): greedy 1/2-approximate vs exact Hungarian matching "
      "(FSim_bj)");
  TablePrinter table(
      {"dataset", "greedy", "hungarian", "Pearson", "max |diff|"});
  for (const char* name : {"yeast", "nell"}) {
    Graph g = MakeDatasetByName(name);
    FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
    config.theta = 1.0;  // keep the Hungarian run tractable

    config.matching = MatchingAlgo::kGreedy;
    auto greedy = bench::RunFSim(g, g, config);
    config.matching = MatchingAlgo::kHungarian;
    auto hungarian = bench::RunFSim(g, g, config);
    if (!greedy || !hungarian) continue;

    double max_diff = 0.0;
    for (size_t i = 0; i < greedy->scores.keys().size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(greedy->scores.values()[i] -
                                   hungarian->scores.values()[i]));
    }
    char pearson[16], diff[24];
    std::snprintf(pearson, sizeof(pearson), "%.4f",
                  CorrelateScores(greedy->scores, hungarian->scores));
    std::snprintf(diff, sizeof(diff), "%.3f", max_diff);
    table.AddRow({name, bench::FormatSeconds(greedy->seconds),
                  bench::FormatSeconds(hungarian->seconds), pearson, diff});
  }
  table.Print();
  std::printf(
      "expected: greedy is faster with near-1 correlation (the paper "
      "adopts greedy for exactly this trade-off); Hungarian realizes C3 "
      "exactly, so its scores upper-bound greedy's\n");
}

void TopKEarlyTermination() {
  bench::PrintHeader(
      "Ablation (c): certified top-k early termination vs full convergence "
      "(FSim_bj, k = 10)");
  TablePrinter table({"dataset", "iters (topk)", "iter bound", "certified",
                      "topk", "full"});
  for (const char* name : {"yeast", "nell"}) {
    Graph g = MakeDatasetByName(name);
    FSimConfig config = bench::PaperDefaults(SimVariant::kBijective);
    config.theta = 1.0;
    config.epsilon = 1e-6;  // a demanding convergence target
    config.pair_limit = bench::kBenchPairLimit;

    TopKPairsOptions options;
    options.k = 10;
    options.exclude_diagonal = true;

    Timer topk_timer;
    auto topk = ComputeTopKPairs(g, g, config, options);
    const double topk_s = topk_timer.Seconds();
    if (!topk.ok()) continue;

    Timer full_timer;
    auto full = ComputeFSim(g, g, config);
    const double full_s = full_timer.Seconds();
    if (!full.ok()) continue;

    table.AddRow({name, std::to_string(topk->iterations),
                  std::to_string(topk->iteration_bound),
                  topk->certified ? "yes" : "no",
                  bench::FormatSeconds(topk_s),
                  bench::FormatSeconds(full_s)});
  }
  table.Print();
  std::printf(
      "expected: certification lands well before the Corollary 1 iteration "
      "bound, so the top-k query costs a fraction of full convergence\n");
}

}  // namespace

int main() {
  SparseVsDense();
  GreedyVsHungarian();
  TopKEarlyTermination();
  return 0;
}
