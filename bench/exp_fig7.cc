// Figure 7 — efficiency of the label-constrained mapping on the NELL
// analog: (a) running time of all four variants while varying θ, and
// (b) the number of maintained candidate pairs vs θ. Paper: time and pairs
// drop steeply with θ; dp/bj are the slowest (injective matching), b is
// slower than s (both mapping sides).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace fsim;

int main() {
  Graph nell = MakeDatasetByName("nell");
  bench::PrintHeader(
      "Figure 7(a): running time (s) of FSim variants vs theta (NELL "
      "analog)\nFigure 7(b): #maintained candidate pairs vs theta");

  TablePrinter table({"theta", "FSim_s", "FSim_dp", "FSim_b", "FSim_bj",
                      "#pairs", "iters(s)"});
  const SimVariant variants[] = {SimVariant::kSimple,
                                 SimVariant::kDegreePreserving,
                                 SimVariant::kBi, SimVariant::kBijective};
  for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    char tbuf[16];
    std::snprintf(tbuf, sizeof(tbuf), "%.1f", theta);
    std::vector<std::string> cells = {tbuf};
    size_t pairs = 0;
    uint32_t iters = 0;
    for (SimVariant variant : variants) {
      FSimConfig config = bench::PaperDefaults(variant);
      config.theta = theta;
      auto run = bench::RunFSim(nell, nell, config);
      cells.push_back(bench::FormatSeconds(run->seconds));
      pairs = run->scores.stats().maintained_pairs;
      iters = run->scores.stats().iterations;
    }
    char pbuf[32];
    std::snprintf(pbuf, sizeof(pbuf), "%zu", pairs);
    cells.emplace_back(pbuf);
    char ibuf[16];
    std::snprintf(ibuf, sizeof(ibuf), "%u", iters);
    cells.emplace_back(ibuf);
    table.AddRow(cells);
  }
  table.Print();
  std::printf(
      "\nexpected shape (paper): all variants get faster as theta grows; "
      "the candidate set\nshrinks by orders of magnitude; dp/bj slowest, "
      "then b, then s; differences vanish at theta >= 0.6\n");
  return 0;
}
