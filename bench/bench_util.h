// Shared helpers for the experiment binaries: dataset construction, timed
// FSim runs with skip handling (mirroring the paper's omission of
// out-of-memory configurations), and consistent result formatting.
#ifndef FSIM_BENCH_BENCH_UTIL_H_
#define FSIM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/fsim_engine.h"
#include "datasets/dataset_registry.h"

namespace fsim {
namespace bench {

/// Pair budget for the experiment binaries: configurations whose candidate
/// set would exceed this are reported as skipped, the single-core analog of
/// the paper's "experiments that resulted in out-of-memory errors have been
/// omitted".
constexpr uint64_t kBenchPairLimit = 5'000'000;

struct TimedRun {
  FSimScores scores;
  double seconds = 0.0;
};

/// Runs ComputeFSim under the bench pair budget. nullopt = skipped
/// (candidate set over budget); any other error aborts.
inline std::optional<TimedRun> RunFSim(const Graph& g1, const Graph& g2,
                                       FSimConfig config) {
  config.pair_limit = kBenchPairLimit;
  Timer timer;
  auto scores = ComputeFSim(g1, g2, config);
  if (!scores.ok()) {
    if (scores.status().IsInvalidArgument()) return std::nullopt;
    std::fprintf(stderr, "fatal: %s\n", scores.status().ToString().c_str());
    std::abort();
  }
  TimedRun run{std::move(scores).ValueOrDie(), timer.Seconds()};
  return run;
}

/// The experiments' default configuration (§5.1): w+ = w- = 0.4 (w* = 0.2),
/// termination at 0.01, Jaro-Winkler L(·) unless a case study overrides it.
inline FSimConfig PaperDefaults(SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kJaroWinkler;
  config.epsilon = 0.01;
  return config;
}

/// Thread counts for the multicore sweeps. FSIM_BENCH_THREADS (e.g.
/// "1,2,4") overrides; the default is {1, 2, 4, hardware_concurrency}
/// clamped to the host's core count, deduped and ascending, so a 1-core CI
/// runner degrades to {1} instead of timing oversubscription noise. The
/// result always contains 1 (the baseline every history entry keys off).
inline std::vector<int> BenchThreadCounts() {
  std::vector<int> counts;
  if (const char* env = std::getenv("FSIM_BENCH_THREADS")) {
    int value = 0;
    bool in_number = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        value = value * 10 + (*p - '0');
        in_number = true;
      } else {
        if (in_number && value >= 1) counts.push_back(value);
        value = 0;
        in_number = false;
        if (*p == '\0') break;
      }
    }
  } else {
    const int hw = std::max(1, static_cast<int>(
                                   std::thread::hardware_concurrency()));
    for (int c : {1, 2, 4, hw}) {
      if (c <= hw) counts.push_back(c);
    }
  }
  if (counts.empty()) counts.push_back(1);
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  if (counts.front() != 1) counts.insert(counts.begin(), 1);
  return counts;
}

inline std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs", s);
  return buf;
}

inline void PrintHeader(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

/// Machine-readable per-variant phase timings (BENCH_fsim.json), so future
/// PRs can track the perf trajectory of the engine without re-parsing
/// human-oriented tables. One record per (variant, engine-path) run.
class PhaseTimingsJson {
 public:
  struct Record {
    std::string name;  // e.g. "bj/indexed" (multi-thread: "bj/indexed/t4")
    double build_seconds = 0.0;
    double iterate_seconds = 0.0;
    uint32_t iterations = 0;
    size_t maintained_pairs = 0;
    bool used_neighbor_index = false;
    // Threads the run used; recorded per entry so the history gate never
    // compares runs at different thread counts (thread-suffixed names keep
    // the metric paths distinct too).
    int num_threads = 1;
    // Active-set telemetry (docs/performance.md "Active-set iteration").
    bool active_set = false;
    double frozen_fraction = 0.0;
    double frontier_build_seconds = 0.0;
    std::vector<size_t> active_pairs_history;
  };

  void Add(const std::string& name, const FSimStats& stats,
           int num_threads = 1) {
    records_.push_back(MakeRecord(name, stats, num_threads));
  }

  /// Adds a record to the separate "dense" section (the ComputeFSimDense
  /// label-class-index timings).
  void AddDense(const std::string& name, const FSimStats& stats,
                int num_threads = 1) {
    dense_records_.push_back(MakeRecord(name, stats, num_threads));
  }

  /// Attaches a pre-rendered JSON object emitted as a top-level "tuning"
  /// section — the thread-sweep validation of compile/config constants
  /// (one-off measurements the history gate ignores).
  void SetTuningJson(std::string raw_json) { tuning_json_ = std::move(raw_json); }

  /// Attaches another pre-rendered JSON object emitted as its own top-level
  /// section under `key` (e.g. the "trace_overhead" guard record).
  void AddRawSection(std::string key, std::string raw_json) {
    raw_sections_.emplace_back(std::move(key), std::move(raw_json));
  }

  const std::vector<Record>& records() const { return records_; }

  /// Writes {"runs": {name: {...}, ...}, "dense": {...}} to `path`;
  /// returns false on I/O failure. The "dense" key is omitted while empty
  /// so older consumers keep parsing unchanged files.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n");
    const bool more_after_runs = !dense_records_.empty() ||
                                 !tuning_json_.empty() ||
                                 !raw_sections_.empty();
    WriteSection(f, "runs", records_, /*trailing_comma=*/more_after_runs);
    if (!dense_records_.empty()) {
      WriteSection(f, "dense", dense_records_,
                   /*trailing_comma=*/!tuning_json_.empty() ||
                       !raw_sections_.empty());
    }
    if (!tuning_json_.empty()) {
      std::fprintf(f, "  \"tuning\": %s%s\n", tuning_json_.c_str(),
                   raw_sections_.empty() ? "" : ",");
    }
    for (size_t i = 0; i < raw_sections_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", raw_sections_[i].first.c_str(),
                   raw_sections_[i].second.c_str(),
                   i + 1 < raw_sections_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
  }

 private:
  static Record MakeRecord(const std::string& name, const FSimStats& stats,
                           int num_threads) {
    return Record{name,
                  stats.build_seconds,
                  stats.iterate_seconds,
                  stats.iterations,
                  stats.maintained_pairs,
                  stats.used_neighbor_index,
                  num_threads,
                  stats.active_set,
                  stats.frozen_fraction,
                  stats.frontier_build_seconds,
                  stats.active_pairs_history};
  }

  static void WriteSection(std::FILE* f, const char* key,
                           const std::vector<Record>& records,
                           bool trailing_comma) {
    std::fprintf(f, "  \"%s\": {\n", key);
    for (size_t i = 0; i < records.size(); ++i) {
      const Record& r = records[i];
      std::fprintf(f,
                   "    \"%s\": {\"build_seconds\": %.6f, "
                   "\"iterate_seconds\": %.6f, \"iterations\": %u, "
                   "\"maintained_pairs\": %zu, "
                   "\"used_neighbor_index\": %s, \"num_threads\": %d",
                   r.name.c_str(), r.build_seconds, r.iterate_seconds,
                   r.iterations, r.maintained_pairs,
                   r.used_neighbor_index ? "true" : "false", r.num_threads);
      if (r.active_set) {
        // Only active-set runs carry the frontier telemetry, so older
        // consumers of the fixed-field records keep parsing unchanged.
        std::fprintf(f,
                     ", \"active_set\": true, \"frozen_fraction\": %.4f, "
                     "\"frontier_build_seconds\": %.6f, "
                     "\"active_pairs_history\": [",
                     r.frozen_fraction, r.frontier_build_seconds);
        for (size_t k = 0; k < r.active_pairs_history.size(); ++k) {
          std::fprintf(f, "%s%zu", k == 0 ? "" : ", ",
                       r.active_pairs_history[k]);
        }
        std::fprintf(f, "]");
      }
      std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  }%s\n", trailing_comma ? "," : "");
  }

  std::vector<Record> records_;
  std::vector<Record> dense_records_;
  std::string tuning_json_;
  std::vector<std::pair<std::string, std::string>> raw_sections_;
};

}  // namespace bench
}  // namespace fsim

#endif  // FSIM_BENCH_BENCH_UTIL_H_
