// Shared helpers for the experiment binaries: dataset construction, timed
// FSim runs with skip handling (mirroring the paper's omission of
// out-of-memory configurations), and consistent result formatting.
#ifndef FSIM_BENCH_BENCH_UTIL_H_
#define FSIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <optional>
#include <string>

#include "common/timer.h"
#include "core/fsim_engine.h"
#include "datasets/dataset_registry.h"

namespace fsim {
namespace bench {

/// Pair budget for the experiment binaries: configurations whose candidate
/// set would exceed this are reported as skipped, the single-core analog of
/// the paper's "experiments that resulted in out-of-memory errors have been
/// omitted".
constexpr uint64_t kBenchPairLimit = 5'000'000;

struct TimedRun {
  FSimScores scores;
  double seconds = 0.0;
};

/// Runs ComputeFSim under the bench pair budget. nullopt = skipped
/// (candidate set over budget); any other error aborts.
inline std::optional<TimedRun> RunFSim(const Graph& g1, const Graph& g2,
                                       FSimConfig config) {
  config.pair_limit = kBenchPairLimit;
  Timer timer;
  auto scores = ComputeFSim(g1, g2, config);
  if (!scores.ok()) {
    if (scores.status().IsInvalidArgument()) return std::nullopt;
    std::fprintf(stderr, "fatal: %s\n", scores.status().ToString().c_str());
    std::abort();
  }
  TimedRun run{std::move(scores).ValueOrDie(), timer.Seconds()};
  return run;
}

/// The experiments' default configuration (§5.1): w+ = w- = 0.4 (w* = 0.2),
/// termination at 0.01, Jaro-Winkler L(·) unless a case study overrides it.
inline FSimConfig PaperDefaults(SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kJaroWinkler;
  config.epsilon = 0.01;
  return config;
}

inline std::string FormatSeconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs", s);
  return buf;
}

inline void PrintHeader(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace fsim

#endif  // FSIM_BENCH_BENCH_UTIL_H_
