// Table 5 — Pearson's correlation between FSimχ score maps computed with
// the three initialization functions L_I (indicator), L_E (normalized edit
// distance) and L_J (Jaro-Winkler), per variant, on the NELL analog.
// Paper: all coefficients > 0.92 — FSimχ is insensitive to L(·).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "eval/metrics.h"

using namespace fsim;

int main() {
  bench::PrintHeader(
      "Table 5: Pearson correlation across initialization functions (NELL "
      "analog)\nmeasured [paper]");
  Graph nell = MakeDatasetByName("nell");
  std::printf("dataset: %zu nodes, %zu edges, %zu labels\n\n",
              nell.NumNodes(), nell.NumEdges(), nell.NumDistinctLabels());

  const SimVariant variants[] = {SimVariant::kSimple,
                                 SimVariant::kDegreePreserving,
                                 SimVariant::kBi, SimVariant::kBijective};
  const double paper[3][4] = {
      {0.990, 0.982, 0.979, 0.969},  // LI-LE
      {0.967, 0.950, 0.937, 0.922},  // LI-LJ
      {0.985, 0.977, 0.975, 0.962},  // LJ-LE
  };

  TablePrinter table({"pair", "FSim_s", "FSim_dp", "FSim_b", "FSim_bj"});
  std::vector<std::vector<FSimScores>> runs(3);  // [L kind][variant]
  const LabelSimKind kinds[] = {LabelSimKind::kIndicator,
                                LabelSimKind::kEditDistance,
                                LabelSimKind::kJaroWinkler};
  for (int k = 0; k < 3; ++k) {
    for (SimVariant v : variants) {
      FSimConfig config = bench::PaperDefaults(v);
      config.label_sim = kinds[k];
      auto run = bench::RunFSim(nell, nell, config);
      if (!run) {
        std::fprintf(stderr, "unexpected skip\n");
        return 1;
      }
      runs[k].push_back(std::move(run->scores));
    }
  }

  // Correlation over the same-label pairs (the pairs every L(·) agrees on
  // at initialization, so differences are purely structural — the paper's
  // "robust to initialization" claim). The all-pairs correlation is printed
  // as a second view: it additionally exposes the persistent label-term
  // differences on cross-label pairs.
  auto correlate_same_label = [&](const FSimScores& a, const FSimScores& b) {
    std::vector<double> xs, ys;
    const auto& keys = a.keys();
    const auto& values = a.values();
    for (size_t i = 0; i < keys.size(); ++i) {
      const NodeId u = PairFirst(keys[i]);
      const NodeId v = PairSecond(keys[i]);
      if (nell.Label(u) != nell.Label(v)) continue;
      xs.push_back(values[i]);
      ys.push_back(b.Score(u, v));
    }
    return PearsonCorrelation(xs, ys);
  };

  const int pairs[3][2] = {{0, 1}, {0, 2}, {2, 1}};  // LI-LE, LI-LJ, LJ-LE
  const char* pair_names[3] = {"LI-LE", "LI-LJ", "LJ-LE"};
  for (int row = 0; row < 3; ++row) {
    std::vector<std::string> cells = {pair_names[row]};
    for (int v = 0; v < 4; ++v) {
      const double r = correlate_same_label(runs[pairs[row][0]][v],
                                            runs[pairs[row][1]][v]);
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f [%.3f]", r, paper[row][v]);
      cells.emplace_back(buf);
    }
    table.AddRow(cells);
  }
  table.Print();

  std::printf("\nsecond view — correlation over ALL maintained pairs "
              "(cross-label pairs included):\n");
  TablePrinter all_table({"pair", "FSim_s", "FSim_dp", "FSim_b", "FSim_bj"});
  for (int row = 0; row < 3; ++row) {
    std::vector<std::string> cells = {pair_names[row]};
    for (int v = 0; v < 4; ++v) {
      const double r = CorrelateCommonScores(runs[pairs[row][0]][v],
                                             runs[pairs[row][1]][v]);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", r);
      cells.emplace_back(buf);
    }
    all_table.AddRow(cells);
  }
  all_table.Print();

  // Extension beyond the paper: Kendall's τ-b over the same-label pairs.
  // The ranking case studies (Tables 7/8) rely on rank agreement, which
  // Pearson only proxies; τ-b measures it directly.
  std::printf("\nextension — Kendall's tau-b (rank agreement) over "
              "same-label pairs:\n");
  auto kendall_same_label = [&](const FSimScores& a, const FSimScores& b) {
    std::vector<double> xs, ys;
    const auto& keys = a.keys();
    const auto& values = a.values();
    for (size_t i = 0; i < keys.size(); ++i) {
      const NodeId u = PairFirst(keys[i]);
      const NodeId v = PairSecond(keys[i]);
      if (nell.Label(u) != nell.Label(v)) continue;
      xs.push_back(values[i]);
      ys.push_back(b.Score(u, v));
    }
    return KendallTau(xs, ys);
  };
  TablePrinter tau_table({"pair", "FSim_s", "FSim_dp", "FSim_b", "FSim_bj"});
  for (int row = 0; row < 3; ++row) {
    std::vector<std::string> cells = {pair_names[row]};
    for (int v = 0; v < 4; ++v) {
      const double tau = kendall_same_label(runs[pairs[row][0]][v],
                                            runs[pairs[row][1]][v]);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", tau);
      cells.emplace_back(buf);
    }
    tau_table.AddRow(cells);
  }
  tau_table.Print();

  std::printf("\nexpected shape: all coefficients high (paper: > 0.92) — "
              "FSimχ is robust to the choice of L(.)\n");
  return 0;
}
