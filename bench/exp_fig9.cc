// Figure 9 — parallelization and scalability of FSim_bj{ub,theta=1}:
//  (a) running time vs number of threads on the NELL and ACMCit analogs.
//      NOTE: this container exposes a single hardware core, so wall-clock
//      speedups are bounded near 1x; the paper (2x20 cores) reports 15-17x
//      at 32 threads. We run the sweep to exercise the machinery and print
//      the core-count caveat with the results.
//  (b) running time while scaling graph density x1..x20 by adding random
//      edges (the paper goes to x50 on a 512 GB machine; the sweep stops
//      early if a run exceeds the per-run time guard).
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "graph/noise.h"

using namespace fsim;

namespace {

FSimConfig BenchConfig(int threads) {
  FSimConfig config = fsim::bench::PaperDefaults(SimVariant::kBijective);
  config.theta = 1.0;
  config.upper_bound = true;
  config.beta = 0.5;
  config.num_threads = threads;
  return config;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 9(a): FSim_bj{ub,theta=1} running time (s) vs #threads");
  std::printf("hardware concurrency on this machine: %u\n\n",
              std::thread::hardware_concurrency());
  {
    TablePrinter table({"#threads", "nell", "acmcit"});
    for (int threads : {1, 2, 4, 8}) {
      std::vector<std::string> cells = {std::to_string(threads)};
      for (const char* name : {"nell", "acmcit"}) {
        Graph g = MakeDatasetByName(name);
        auto run = bench::RunFSim(g, g, BenchConfig(threads));
        cells.push_back(run ? bench::FormatSeconds(run->seconds) : "skip");
      }
      table.AddRow(cells);
    }
    table.Print();
    std::printf("expected shape (paper, 40 cores): strong gains to 8 "
                "threads, 15-17x at 32;\non this 1-core container the curve "
                "is flat — the sweep validates correctness, not speedup\n");
  }

  bench::PrintHeader(
      "Figure 9(b): FSim_bj{ub,theta=1} running time (s) vs density "
      "multiplier");
  {
    TablePrinter table({"density", "nell", "acmcit"});
    constexpr double kTimeGuard = 90.0;
    bool nell_alive = true;
    bool acm_alive = true;
    Graph nell = MakeDatasetByName("nell");
    Graph acm = MakeDatasetByName("acmcit");
    for (double mult : {1.0, 5.0, 10.0, 20.0}) {
      char mbuf[16];
      std::snprintf(mbuf, sizeof(mbuf), "x%.0f", mult);
      std::vector<std::string> cells = {mbuf};
      for (int which = 0; which < 2; ++which) {
        bool& alive = which == 0 ? nell_alive : acm_alive;
        if (!alive) {
          cells.emplace_back("guard");
          continue;
        }
        const Graph& base = which == 0 ? nell : acm;
        Graph dense = mult == 1.0
                          ? base
                          : ScaleDensity(base, mult,
                                         0x9B + static_cast<uint64_t>(mult));
        auto run = bench::RunFSim(dense, dense, BenchConfig(1));
        if (!run) {
          cells.emplace_back("skip");
          continue;
        }
        cells.push_back(bench::FormatSeconds(run->seconds));
        if (run->seconds > kTimeGuard) alive = false;
      }
      table.AddRow(cells);
    }
    table.Print();
    std::printf("expected shape (paper): time grows with density but "
                "sub-quadratically — denser graphs\nstrengthen the upper-"
                "bound pruning ('guard' = previous run exceeded the time "
                "guard)\n");
  }
  return 0;
}
