// Tests for the exact χ-simulation layer: the four variants on the paper's
// Figure 1 example (Table 2's ✓/✗ columns), the strictness lattice of
// Figure 3(b), converse invariance, k-bisimulation signatures, WL colors and
// strong simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "exact/exact_simulation.h"
#include "exact/signatures.h"
#include "exact/strong_simulation.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "tests/test_graphs.h"

namespace fsim {
namespace {

using testing::Figure1;
using testing::GraphPair;
using testing::MakeFigure1;
using testing::MakeRandomPair;

// ------------------------------------------------ Figure 1 ground truth --

struct Figure1Expected {
  SimVariant variant;
  bool v1, v2, v3, v4;
};

class Figure1Exact : public ::testing::TestWithParam<Figure1Expected> {};

TEST_P(Figure1Exact, MatchesTable2) {
  const auto& expected = GetParam();
  Figure1 fig = MakeFigure1();
  BinaryRelation rel = MaxSimulation(fig.pattern, fig.data, expected.variant);
  EXPECT_EQ(rel.Contains(fig.u, fig.v1), expected.v1) << "v1";
  EXPECT_EQ(rel.Contains(fig.u, fig.v2), expected.v2) << "v2";
  EXPECT_EQ(rel.Contains(fig.u, fig.v3), expected.v3) << "v3";
  EXPECT_EQ(rel.Contains(fig.u, fig.v4), expected.v4) << "v4";
}

INSTANTIATE_TEST_SUITE_P(
    Table2, Figure1Exact,
    ::testing::Values(
        Figure1Expected{SimVariant::kSimple, false, true, true, true},
        Figure1Expected{SimVariant::kDegreePreserving, false, false, true,
                        true},
        Figure1Expected{SimVariant::kBi, false, true, false, true},
        Figure1Expected{SimVariant::kBijective, false, false, false, true}),
    [](const auto& param_info) {
      return std::string(SimVariantName(param_info.param.variant));
    });

TEST(ExactSimulationTest, VariantNamesAndProperties) {
  EXPECT_STREQ(SimVariantName(SimVariant::kSimple), "s");
  EXPECT_STREQ(SimVariantName(SimVariant::kDegreePreserving), "dp");
  EXPECT_STREQ(SimVariantName(SimVariant::kBi), "b");
  EXPECT_STREQ(SimVariantName(SimVariant::kBijective), "bj");
  EXPECT_FALSE(HasConverseInvariance(SimVariant::kSimple));
  EXPECT_FALSE(HasConverseInvariance(SimVariant::kDegreePreserving));
  EXPECT_TRUE(HasConverseInvariance(SimVariant::kBi));
  EXPECT_TRUE(HasConverseInvariance(SimVariant::kBijective));
}

TEST(ExactSimulationTest, LabelMismatchNeverSimulates) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("B");
  Graph g = std::move(b).BuildOrDie();
  for (SimVariant v :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    BinaryRelation rel = MaxSimulation(g, g, v);
    EXPECT_FALSE(rel.Contains(0, 1));
    EXPECT_TRUE(rel.Contains(0, 0));  // reflexivity of self-simulation
    EXPECT_TRUE(rel.Contains(1, 1));
  }
}

TEST(ExactSimulationTest, SelfSimulationIsReflexive) {
  auto pair = MakeRandomPair(99, 12, 12);
  for (SimVariant v :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    BinaryRelation rel = MaxSimulation(pair.g1, pair.g1, v);
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      EXPECT_TRUE(rel.Contains(u, u))
          << SimVariantName(v) << " not reflexive at " << u;
    }
  }
}

/// Figure 3(b): bj ⊆ dp ⊆ s and bj ⊆ b ⊆ s on arbitrary graphs.
class StrictnessLattice : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrictnessLattice, HoldsOnRandomGraphs) {
  GraphPair pair = MakeRandomPair(GetParam());
  BinaryRelation s = MaxSimulation(pair.g1, pair.g2, SimVariant::kSimple);
  BinaryRelation dp =
      MaxSimulation(pair.g1, pair.g2, SimVariant::kDegreePreserving);
  BinaryRelation b = MaxSimulation(pair.g1, pair.g2, SimVariant::kBi);
  BinaryRelation bj =
      MaxSimulation(pair.g1, pair.g2, SimVariant::kBijective);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      if (bj.Contains(u, v)) {
        EXPECT_TRUE(dp.Contains(u, v)) << u << "," << v;
        EXPECT_TRUE(b.Contains(u, v)) << u << "," << v;
      }
      if (dp.Contains(u, v)) {
        EXPECT_TRUE(s.Contains(u, v)) << u << "," << v;
      }
      if (b.Contains(u, v)) {
        EXPECT_TRUE(s.Contains(u, v)) << u << "," << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrictnessLattice,
                         ::testing::Range<uint64_t>(0, 12));

/// Remark 1: for converse-invariant variants, u ⇝ v implies v ⇝ u.
class ConverseInvariance : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConverseInvariance, BAndBjAreSymmetric) {
  GraphPair pair = MakeRandomPair(GetParam() ^ 0xABCD, 9, 9);
  for (SimVariant v : {SimVariant::kBi, SimVariant::kBijective}) {
    BinaryRelation fwd = MaxSimulation(pair.g1, pair.g2, v);
    BinaryRelation bwd = MaxSimulation(pair.g2, pair.g1, v);
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId w = 0; w < pair.g2.NumNodes(); ++w) {
        EXPECT_EQ(fwd.Contains(u, w), bwd.Contains(w, u))
            << SimVariantName(v) << " " << u << "," << w;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConverseInvariance,
                         ::testing::Range<uint64_t>(0, 8));

TEST(BinaryRelationTest, CountPairs) {
  BinaryRelation rel(3, 3);
  EXPECT_EQ(rel.CountPairs(), 0u);
  rel.Set(0, 1, true);
  rel.Set(2, 2, true);
  EXPECT_EQ(rel.CountPairs(), 2u);
  rel.Set(0, 1, false);
  EXPECT_EQ(rel.CountPairs(), 1u);
}

// ------------------------------------------------------------ Signatures --

TEST(KBisimulationTest, DepthZeroIsLabelPartition) {
  auto pair = MakeRandomPair(7, 10, 10);
  auto sig = KBisimulationSignatures(pair.g1, 0);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g1.NumNodes(); ++v) {
      EXPECT_EQ(sig[u] == sig[v], pair.g1.Label(u) == pair.g1.Label(v));
    }
  }
}

TEST(KBisimulationTest, RefinementOnlySplits) {
  auto pair = MakeRandomPair(8, 14, 14);
  auto prev = KBisimulationSignatures(pair.g1, 0);
  for (uint32_t k = 1; k <= 4; ++k) {
    auto next = KBisimulationSignatures(pair.g1, k);
    // If two nodes are k-bisimilar they must be (k-1)-bisimilar.
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g1.NumNodes(); ++v) {
        if (next[u] == next[v]) {
          EXPECT_EQ(prev[u], prev[v]);
        }
      }
    }
    prev = next;
  }
}

TEST(KBisimulationTest, PathGraphDepthSensitivity) {
  // Chain A -> A -> A: with k=1 the two nodes with an out-neighbor look
  // alike; with k=2 they split (one's successor is a sink).
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("A");
  b.AddNode("A");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).BuildOrDie();
  auto sig1 = KBisimulationSignatures(g, 1);
  EXPECT_EQ(sig1[0], sig1[1]);
  EXPECT_NE(sig1[1], sig1[2]);
  auto sig2 = KBisimulationSignatures(g, 2);
  EXPECT_NE(sig2[0], sig2[1]);
}

TEST(BisimulationClassesTest, StableAndCrossGraphComparable) {
  GraphBuilder b1;
  b1.AddNode("A");
  b1.AddNode("B");
  b1.AddEdge(0, 1);
  Graph g1 = std::move(b1).BuildOrDie();
  GraphBuilder b2(g1.dict());
  b2.AddNode("A");
  b2.AddNode("B");
  b2.AddEdge(0, 1);
  Graph g2 = std::move(b2).BuildOrDie();
  auto [sig1, sig2] = BisimulationClasses(g1, g2, /*use_in_neighbors=*/true);
  EXPECT_EQ(sig1[0], sig2[0]);
  EXPECT_EQ(sig1[1], sig2[1]);
  EXPECT_NE(sig1[0], sig1[1]);
}

TEST(BisimulationClassesTest, InNeighborsRefineFurther) {
  // B <- A -> B -> C : the two B nodes differ only by out-neighbors
  // (one has C), caught with out-only refinement; build a case where only
  // in-neighbors distinguish: A -> B, C -> B' with distinct A/C labels.
  GraphBuilder b;
  b.AddNode("A");   // 0
  b.AddNode("C");   // 1
  b.AddNode("B");   // 2  (in: A)
  b.AddNode("B");   // 3  (in: C)
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  Graph g = std::move(b).BuildOrDie();
  auto [out_only, unused1] = BisimulationClasses(g, g, false);
  auto [with_in, unused2] = BisimulationClasses(g, g, true);
  EXPECT_EQ(out_only[2], out_only[3]);  // indistinguishable forward
  EXPECT_NE(with_in[2], with_in[3]);    // in-neighbors split them
}

TEST(WLColorsTest, DistinguishesDegreesOnUndirected) {
  // Path a-b-c (undirected): endpoints alike, middle differs.
  GraphBuilder b;
  b.AddNode("X");
  b.AddNode("X");
  b.AddNode("X");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).BuildOrDie().AsUndirected();
  auto colors = WLColors(g);
  EXPECT_EQ(colors[0], colors[2]);
  EXPECT_NE(colors[0], colors[1]);
}

TEST(WLColorsTest, MultisetSemanticsCountNeighbors) {
  // Star with 2 leaves vs star with 3 leaves: centers differ under WL
  // (multiset) but are equal under set-semantics bisimulation signatures.
  GraphBuilder b;
  NodeId c1 = b.AddNode("C");
  NodeId l1 = b.AddNode("L");
  NodeId l2 = b.AddNode("L");
  NodeId c2 = b.AddNode("C");
  NodeId l3 = b.AddNode("L");
  NodeId l4 = b.AddNode("L");
  NodeId l5 = b.AddNode("L");
  b.AddEdge(c1, l1);
  b.AddEdge(c1, l2);
  b.AddEdge(c2, l3);
  b.AddEdge(c2, l4);
  b.AddEdge(c2, l5);
  Graph g = std::move(b).BuildOrDie();
  auto wl = WLColors(g);  // out-neighbor lists only; leaves have none
  EXPECT_NE(wl[c1], wl[c2]);
  auto kb = KBisimulationSignatures(g, 4);
  EXPECT_EQ(kb[c1], kb[c2]);
}

TEST(WLColorsTest, JointRefinementComparable) {
  auto pair = MakeRandomPair(21, 8, 8);
  Graph u1 = pair.g1.AsUndirected();
  Graph u2 = pair.g1.AsUndirected();  // identical copy
  auto [c1, c2] = WLColors2(u1, u2);
  for (NodeId u = 0; u < u1.NumNodes(); ++u) EXPECT_EQ(c1[u], c2[u]);
}

// ----------------------------------------------------- Strong simulation --

TEST(StrongSimulationTest, FindsPlantedPattern) {
  Figure1 fig = MakeFigure1();
  auto matches = StrongSimulation(fig.pattern, fig.data);
  ASSERT_FALSE(matches.empty());
  // Every match must cover all query nodes.
  for (const auto& m : matches) {
    ASSERT_EQ(m.query_matches.size(), fig.pattern.NumNodes());
    for (const auto& qm : m.query_matches) EXPECT_FALSE(qm.empty());
  }
  // v4's neighborhood is an exact copy, so v4 appears as a matched node of u
  // in some match.
  bool found_v4 = false;
  for (const auto& m : matches) {
    const auto& u_matches = m.query_matches[fig.u];
    if (std::find(u_matches.begin(), u_matches.end(), fig.v4) !=
        u_matches.end()) {
      found_v4 = true;
    }
  }
  EXPECT_TRUE(found_v4);
}

TEST(StrongSimulationTest, NoMatchWhenLabelAbsent) {
  Figure1 fig = MakeFigure1();
  GraphBuilder qb(fig.data.dict());
  qb.AddNode("no-such-label");
  Graph query = std::move(qb).BuildOrDie();
  EXPECT_TRUE(StrongSimulation(query, fig.data).empty());
}

TEST(StrongSimulationTest, MaxResultsCap) {
  Figure1 fig = MakeFigure1();
  StrongSimOptions opts;
  opts.max_results = 1;
  EXPECT_EQ(StrongSimulation(fig.pattern, fig.data, opts).size(), 1u);
}

TEST(StrongSimulationTest, SelfQueryAlwaysMatches) {
  auto pair = MakeRandomPair(33, 8, 8);
  auto matches = StrongSimulation(pair.g1, pair.g1);
  EXPECT_FALSE(matches.empty());
}

}  // namespace
}  // namespace fsim
