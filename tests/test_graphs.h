// Shared test fixtures: the paper's Figure 1 example (reconstructed from
// Examples 1 and 3 and Table 2) plus helpers for random labeled graph pairs.
#ifndef FSIM_TESTS_TEST_GRAPHS_H_
#define FSIM_TESTS_TEST_GRAPHS_H_

#include <memory>

#include "common/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace fsim {
namespace testing {

/// Figure 1: pattern P with node u (circle) whose out-neighbors are two
/// hexagons and one pentagon; data graph G2 with candidates v1..v4:
///   v1 -> {hex}                    (u not s-simulated: pentagon uncovered)
///   v2 -> {hex, pent}              (s and b hold; dp fails: no injective
///                                   mapping for u's two hexagons)
///   v3 -> {hex, hex, pent, square} (s and dp hold; b fails: the square
///                                   neighbor simulates nothing of u)
///   v4 -> {hex, hex, pent}         (all four variants hold)
struct Figure1 {
  Graph pattern;  // node 0 = u; 1,2 = hexagons; 3 = pentagon
  Graph data;
  NodeId u = 0;
  NodeId v1, v2, v3, v4;
};

inline Figure1 MakeFigure1() {
  Figure1 fig;
  GraphBuilder pb;
  NodeId u = pb.AddNode("circle");
  NodeId h1 = pb.AddNode("hex");
  NodeId h2 = pb.AddNode("hex");
  NodeId p1 = pb.AddNode("pent");
  pb.AddEdge(u, h1);
  pb.AddEdge(u, h2);
  pb.AddEdge(u, p1);
  fig.pattern = std::move(pb).BuildOrDie();

  GraphBuilder db(fig.pattern.dict());
  fig.v1 = db.AddNode("circle");
  NodeId v1h = db.AddNode("hex");
  db.AddEdge(fig.v1, v1h);

  fig.v2 = db.AddNode("circle");
  NodeId v2h = db.AddNode("hex");
  NodeId v2p = db.AddNode("pent");
  db.AddEdge(fig.v2, v2h);
  db.AddEdge(fig.v2, v2p);

  fig.v3 = db.AddNode("circle");
  NodeId v3h1 = db.AddNode("hex");
  NodeId v3h2 = db.AddNode("hex");
  NodeId v3p = db.AddNode("pent");
  NodeId v3s = db.AddNode("square");
  db.AddEdge(fig.v3, v3h1);
  db.AddEdge(fig.v3, v3h2);
  db.AddEdge(fig.v3, v3p);
  db.AddEdge(fig.v3, v3s);

  fig.v4 = db.AddNode("circle");
  NodeId v4h1 = db.AddNode("hex");
  NodeId v4h2 = db.AddNode("hex");
  NodeId v4p = db.AddNode("pent");
  db.AddEdge(fig.v4, v4h1);
  db.AddEdge(fig.v4, v4h2);
  db.AddEdge(fig.v4, v4p);

  fig.data = std::move(db).BuildOrDie();
  return fig;
}

/// A pair of small random labeled digraphs sharing one dictionary — the
/// randomized input for the P1/P2/P3 property sweeps.
struct GraphPair {
  Graph g1;
  Graph g2;
};

inline GraphPair MakeRandomPair(uint64_t seed, uint32_t n1 = 10,
                                uint32_t n2 = 12, uint32_t labels = 3) {
  LabelingOptions lo;
  lo.num_labels = labels;
  lo.skew = 0.4;
  lo.dict = std::make_shared<LabelDict>();
  GraphPair pair;
  pair.g1 = ErdosRenyi(n1, 2 * n1, lo, seed);
  pair.g2 = ErdosRenyi(n2, 2 * n2, lo, seed ^ 0xFEED);
  return pair;
}

}  // namespace testing
}  // namespace fsim

#endif  // FSIM_TESTS_TEST_GRAPHS_H_
