// Failpoint framework tests (common/failpoint.h): spec grammar, skip/limit
// prefixes, hit counters and the env/CLI list form. The registry and Hit()
// are always compiled (only the FSIM_FAILPOINT macros vanish in release
// builds), so most of this runs in every build; macro wiring itself is
// covered by the serve/recovery suites under FSIM_FAILPOINTS.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/failpoint.h"
#include "common/timer.h"

namespace fsim {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::ResetCounters(); }
  void TearDown() override {
    failpoint::DisarmAll();
    failpoint::ResetCounters();
  }
};

TEST_F(FailpointTest, SpecGrammarRejectsMalformedSpecs) {
  EXPECT_TRUE(failpoint::Arm("t.site", "bogus").IsInvalidArgument());
  EXPECT_FALSE(failpoint::Arm("t.site", "delay(abc)").ok());
  EXPECT_TRUE(failpoint::Arm("t.site", "delay(-5)").IsInvalidArgument());
  EXPECT_FALSE(failpoint::Arm("t.site", "x*error").ok());
  EXPECT_FALSE(failpoint::Arm("t.site", "y->abort").ok());
  // Valid forms parse.
  EXPECT_TRUE(failpoint::Arm("t.site", "error").ok());
  EXPECT_TRUE(failpoint::Arm("t.site", "io-error").ok());
  EXPECT_TRUE(failpoint::Arm("t.site", "delay(0.5)").ok());
  EXPECT_TRUE(failpoint::Arm("t.site", "2*error").ok());
  EXPECT_TRUE(failpoint::Arm("t.site", "3->1*io-error").ok());
  EXPECT_TRUE(failpoint::Arm("t.site", "off").ok());
}

TEST_F(FailpointTest, ArmedErrorFiresAndCounts) {
  ASSERT_TRUE(failpoint::Arm("t.err", "error").ok());
  EXPECT_EQ(failpoint::Hit("t.err").code(), StatusCode::kInternal);
  EXPECT_EQ(failpoint::Hit("t.err").code(), StatusCode::kInternal);
  EXPECT_EQ(failpoint::HitCount("t.err"), 2u);

  ASSERT_TRUE(failpoint::Arm("t.io", "io-error").ok());
  EXPECT_TRUE(failpoint::Hit("t.io").IsIOError());

  // Unarmed sites pass but still count.
  EXPECT_TRUE(failpoint::Hit("t.unarmed").ok());
  EXPECT_EQ(failpoint::HitCount("t.unarmed"), 1u);
}

TEST_F(FailpointTest, CountLimitSelfDisarms) {
  ASSERT_TRUE(failpoint::Arm("t.lim", "2*error").ok());
  EXPECT_FALSE(failpoint::Hit("t.lim").ok());
  EXPECT_FALSE(failpoint::Hit("t.lim").ok());
  EXPECT_TRUE(failpoint::Hit("t.lim").ok());  // budget exhausted
  EXPECT_EQ(failpoint::HitCount("t.lim"), 3u);
}

TEST_F(FailpointTest, SkipPrefixDelaysTheAction) {
  ASSERT_TRUE(failpoint::Arm("t.skip", "2->1*io-error").ok());
  EXPECT_TRUE(failpoint::Hit("t.skip").ok());   // skipped
  EXPECT_TRUE(failpoint::Hit("t.skip").ok());   // skipped
  EXPECT_TRUE(failpoint::Hit("t.skip").IsIOError());
  EXPECT_TRUE(failpoint::Hit("t.skip").ok());   // 1* budget used up
}

TEST_F(FailpointTest, DisarmKeepsCounters) {
  ASSERT_TRUE(failpoint::Arm("t.dis", "error").ok());
  EXPECT_FALSE(failpoint::Hit("t.dis").ok());
  failpoint::Disarm("t.dis");
  EXPECT_TRUE(failpoint::Hit("t.dis").ok());
  EXPECT_EQ(failpoint::HitCount("t.dis"), 2u);

  failpoint::DisarmAll();
  EXPECT_TRUE(failpoint::Hit("t.dis").ok());
  EXPECT_EQ(failpoint::HitCount("t.dis"), 3u);
  failpoint::ResetCounters();
  EXPECT_EQ(failpoint::HitCount("t.dis"), 0u);
}

TEST_F(FailpointTest, DelayActuallySleeps) {
  ASSERT_TRUE(failpoint::Arm("t.delay", "delay(30)").ok());
  Timer timer;
  EXPECT_TRUE(failpoint::Hit("t.delay").ok());
  EXPECT_GE(timer.Seconds(), 0.025);
}

TEST_F(FailpointTest, SnapshotListsTouchedSites) {
  ASSERT_TRUE(failpoint::Arm("t.a", "off").ok());
  (void)failpoint::Hit("t.b");
  const auto snapshot = failpoint::Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);  // sorted by name
  EXPECT_EQ(snapshot[0].first, "t.a");
  EXPECT_EQ(snapshot[0].second, 0u);
  EXPECT_EQ(snapshot[1].first, "t.b");
  EXPECT_EQ(snapshot[1].second, 1u);
}

TEST_F(FailpointTest, ArmFromSpecParsesLists) {
  ASSERT_TRUE(
      failpoint::ArmFromSpec("t.one=1*error; t.two = delay(1) ;").ok());
  EXPECT_FALSE(failpoint::Hit("t.one").ok());
  EXPECT_TRUE(failpoint::Hit("t.one").ok());
  EXPECT_TRUE(failpoint::Hit("t.two").ok());
  EXPECT_TRUE(failpoint::ArmFromSpec("garbage-without-equals")
                  .IsInvalidArgument());
  EXPECT_FALSE(failpoint::ArmFromSpec("t.three=nonsense").ok());
}

TEST_F(FailpointTest, ArmFromEnvReadsTheVariable) {
  ASSERT_EQ(setenv("FSIM_FAILPOINTS", "t.env=1*io-error", 1), 0);
  EXPECT_TRUE(failpoint::ArmFromEnv().ok());
  EXPECT_TRUE(failpoint::Hit("t.env").IsIOError());
  ASSERT_EQ(unsetenv("FSIM_FAILPOINTS"), 0);
  EXPECT_TRUE(failpoint::ArmFromEnv().ok());  // unset: no-op
}

TEST_F(FailpointTest, MacroCompiledStateMatchesBuildFlag) {
#ifdef FSIM_FAILPOINTS
  EXPECT_TRUE(failpoint::kCompiledIn);
#else
  EXPECT_FALSE(failpoint::kCompiledIn);
#endif
}

}  // namespace
}  // namespace fsim
