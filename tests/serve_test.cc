// Tests for the serving layer (src/serve/): snapshot top-k cache
// correctness, publish/acquire semantics, refresh-driver coalescing and
// policy, a readers-vs-publisher stress test (readers must always observe
// a complete, internally consistent snapshot — no torn top-k lists), a
// ServeLoop golden transcript over every request type plus malformed
// input, and end-to-end serve-while-editing convergence against a full
// recompute.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"
#include "core/fsim_engine.h"
#include "core/scores_io.h"
#include "graph/graph_builder.h"
#include "serve/query.h"
#include "serve/refresh.h"
#include "serve/service.h"
#include "serve/snapshot.h"
#include "test_graphs.h"

namespace fsim {
namespace {

/// The 5-node two-label graph of the CLI smoke transcripts: small enough
/// for exact expectations, cyclic so every node has in/out neighbors.
Graph MakeServeGraph() {
  GraphBuilder builder;
  builder.AddNode("A");  // 0
  builder.AddNode("A");  // 1
  builder.AddNode("B");  // 2
  builder.AddNode("B");  // 3
  builder.AddNode("A");  // 4
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 0);
  builder.AddEdge(1, 3);
  return std::move(builder).BuildOrDie();
}

FSimConfig ServeConfig() {
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-6;
  return config;
}

/// Reference ranking: full row, sorted by (score desc, id asc).
std::vector<std::pair<NodeId, double>> ReferenceTopK(const FSimScores& scores,
                                                     NodeId u, size_t k) {
  auto row = scores.Row(u);
  std::sort(row.begin(), row.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (row.size() > k) row.resize(k);
  return row;
}

TEST(FSimScoresTopKTest, HeapSelectionMatchesFullSort) {
  const Graph g = testing::MakeRandomPair(0xA11CE, 40, 40).g1;
  FSimConfig config = ServeConfig();
  auto scores = ComputeFSimSelf(g, config);
  ASSERT_TRUE(scores.ok());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (size_t k : {size_t{0}, size_t{1}, size_t{3}, size_t{7},
                     size_t{1000}}) {
      const auto got = scores->TopK(u, k);
      const auto want = ReferenceTopK(*scores, u, k);
      ASSERT_EQ(got.size(), want.size()) << "u=" << u << " k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first) << "u=" << u << " k=" << k;
        EXPECT_EQ(got[i].second, want[i].second) << "u=" << u << " k=" << k;
      }
    }
  }
}

TEST(SnapshotTest, CacheMatchesScoresAndServesQueries) {
  const Graph g = testing::MakeRandomPair(0xBEE, 32, 32).g1;
  auto scores = ComputeFSimSelf(g, ServeConfig());
  ASSERT_TRUE(scores.ok());
  const FSimScores reference = *scores;

  SnapshotMeta meta;
  meta.version = 7;
  const FSimSnapshot snapshot(FreezeScores(std::move(*scores)),
                              /*cache_k=*/4, meta);
  EXPECT_EQ(snapshot.meta().version, 7u);
  EXPECT_GT(snapshot.CacheBytes(), 0u);

  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    // The cache holds exactly the first min(4, |row|) ranked entries.
    const auto want4 = ReferenceTopK(reference, u, 4);
    const auto cached = snapshot.CachedTopK(u);
    ASSERT_EQ(cached.size(), want4.size()) << "u=" << u;
    for (size_t i = 0; i < cached.size(); ++i) {
      EXPECT_EQ(cached[i], want4[i]) << "u=" << u;
    }
    // k <= cache_k serves from the cache; k > cache_k falls back to
    // selection — both must match the reference ranking.
    for (size_t k : {size_t{2}, size_t{4}, size_t{9}}) {
      const auto got = snapshot.TopK(u, k);
      const auto want = ReferenceTopK(reference, u, k);
      ASSERT_EQ(got.size(), want.size()) << "u=" << u << " k=" << k;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << "u=" << u << " k=" << k;
      }
    }
    // ThresholdNeighbors == the >= tau prefix of the full ranking.
    for (double tau : {0.0, 0.3, 0.7, 1.1}) {
      const auto got = snapshot.ThresholdNeighbors(u, tau);
      auto want = ReferenceTopK(reference, u, g.NumNodes());
      want.erase(std::remove_if(
                     want.begin(), want.end(),
                     [tau](const auto& e) { return e.second < tau; }),
                 want.end());
      ASSERT_EQ(got.size(), want.size()) << "u=" << u << " tau=" << tau;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << "u=" << u << " tau=" << tau;
      }
    }
    // Pair queries delegate to the frozen scores.
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(snapshot.PairScore(u, v), reference.Score(u, v));
    }
  }
}

TEST(SnapshotStoreTest, PublishAcquireVersions) {
  SnapshotStore store;
  EXPECT_EQ(store.Acquire(), nullptr);
  EXPECT_EQ(store.version(), 0u);

  auto make = [](uint64_t version) {
    SnapshotMeta meta;
    meta.version = version;
    return std::make_shared<const FSimSnapshot>(
        FreezeScores(FSimScores()), /*cache_k=*/2, meta);
  };
  const uint64_t v1 = store.NextVersion();
  const uint64_t v2 = store.NextVersion();
  EXPECT_LT(v1, v2);
  EXPECT_TRUE(store.Publish(make(v2)));
  EXPECT_EQ(store.version(), v2);
  // A stale publish (older version) is dropped, not swapped in.
  EXPECT_FALSE(store.Publish(make(v1)));
  EXPECT_EQ(store.version(), v2);
  EXPECT_EQ(store.Acquire()->meta().version, v2);
  EXPECT_EQ(store.publish_count(), 1u);
}

// Readers must never observe a torn snapshot. Every published snapshot is
// internally consistent by construction (all scores equal one
// version-derived constant); a reader seeing mixed values, or a top-k
// cache disagreeing with the score table, caught a torn publish.
TEST(SnapshotStoreTest, ReadersNeverObserveTornSnapshots) {
  constexpr uint32_t kSide = 12;
  constexpr uint64_t kMinReads = 2000;    // validated reader passes required
  constexpr uint64_t kMaxPublishes = 5'000'000;  // anti-hang safety valve
  auto value_of = [](uint64_t version) {
    return static_cast<double>(version % 97) / 96.0;
  };
  auto make_snapshot = [&](uint64_t version) {
    const double value = value_of(version);
    std::vector<uint64_t> keys;
    std::vector<double> values;
    FlatPairMap index(kSide * kSide);
    for (uint32_t u = 0; u < kSide; ++u) {
      for (uint32_t v = 0; v < kSide; ++v) {
        index.Insert(PairKey(u, v), static_cast<uint32_t>(keys.size()));
        keys.push_back(PairKey(u, v));
        values.push_back(value);
      }
    }
    SnapshotMeta meta;
    meta.version = version;
    return std::make_shared<const FSimSnapshot>(
        FreezeScores(FSimScores(std::move(keys), std::move(values),
                                std::move(index), FSimStats{})),
        /*cache_k=*/4, meta);
  };

  SnapshotStore store;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        const SnapshotPtr snap = store.Acquire();
        if (snap == nullptr) continue;
        const double want = value_of(snap->meta().version);
        bool ok = true;
        for (double value : snap->scores().values()) {
          ok = ok && value == want;
        }
        for (uint32_t u = 0; u < kSide; ++u) {
          const auto cached = snap->CachedTopK(u);
          ok = ok && cached.size() == 4;
          for (const auto& [v, score] : cached) {
            ok = ok && score == want && score == snap->PairScore(u, v);
          }
        }
        if (!ok) torn.fetch_add(1);
        reads.fetch_add(1);
      }
    });
  }

  // Publish continuously until the readers have validated enough acquired
  // snapshots concurrently with the swaps (the interesting interleaving).
  uint64_t publishes = 0;
  while (reads.load() < kMinReads && publishes < kMaxPublishes) {
    ASSERT_TRUE(store.Publish(make_snapshot(store.NextVersion())));
    ++publishes;
  }
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GE(reads.load(), kMinReads);
  EXPECT_EQ(store.version(), publishes);
}

TEST(RefreshDriverTest, CoalescesBurstsAndHonorsPublishPolicy) {
  const Graph g = MakeServeGraph();
  SnapshotStore store;
  RefreshPolicy policy;
  policy.max_edits_behind = 3;
  policy.topk_cache_k = 4;
  RefreshDriver driver(g, g, ServeConfig(), IncrementalOptions{}, policy,
                       &store);
  EXPECT_FALSE(driver.ready());
  ASSERT_TRUE(driver.Init().ok());
  ASSERT_TRUE(driver.ready());
  const uint64_t solve_version = store.version();
  EXPECT_GT(solve_version, 0u);

  // An insert/remove burst on one edge coalesces to a net no-op: nothing
  // applied, nothing published.
  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/true}).ok());
  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/false}).ok());
  auto applied = driver.DrainApply(/*force_publish=*/false);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 0u);
  EXPECT_EQ(driver.stats().edits_coalesced, 2u);
  EXPECT_EQ(store.version(), solve_version);

  // Below the drift bound: applied but not yet published.
  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/true}).ok());
  applied = driver.DrainApply(/*force_publish=*/false);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 1u);
  EXPECT_EQ(store.version(), solve_version);

  // Force-publish flushes the pending drift.
  ASSERT_TRUE(driver.Flush().ok());
  EXPECT_GT(store.version(), solve_version);
  const uint64_t flushed_version = store.version();

  // Reaching max_edits_behind publishes without force.
  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/false}).ok());
  ASSERT_TRUE(driver.Submit({2, 1, 0, /*insert=*/true}).ok());
  ASSERT_TRUE(driver.Submit({2, 3, 0, /*insert=*/true}).ok());
  applied = driver.DrainApply(/*force_publish=*/false);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(*applied, 3u);
  EXPECT_GT(store.version(), flushed_version);

  // Rejected edits (endpoint out of range) are counted, not applied; an
  // invalid graph index is rejected up front at Submit.
  ASSERT_TRUE(driver.Submit({1, 99, 0, /*insert=*/true}).ok());
  EXPECT_TRUE(driver.Submit({3, 0, 1, /*insert=*/true}).IsInvalidArgument());
  ASSERT_TRUE(driver.Flush().ok());
  EXPECT_EQ(driver.stats().edits_failed, 1u);

  // The published snapshot matches a from-scratch solve of the current
  // graphs.
  auto full = ComputeFSim(driver.MaterializeG1(), driver.MaterializeG2(),
                          ServeConfig());
  ASSERT_TRUE(full.ok());
  const SnapshotPtr snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  for (size_t i = 0; i < full->keys().size(); ++i) {
    const NodeId u = PairFirst(full->keys()[i]);
    const NodeId v = PairSecond(full->keys()[i]);
    EXPECT_NEAR(snap->PairScore(u, v), full->values()[i], 1e-4)
        << "(" << u << "," << v << ")";
  }
}

TEST(QueryEngineTest, BatchAnswersFromOneSnapshot) {
  SnapshotStore store;
  QueryEngine engine(&store);
  Query pair_query;
  pair_query.kind = Query::Kind::kPair;
  EXPECT_TRUE(engine.Run(pair_query).status().IsNotFound());

  SnapshotMeta meta;
  meta.version = store.NextVersion();
  ASSERT_TRUE(store.Publish(std::make_shared<const FSimSnapshot>(
      FreezeScores(FSimScores()), 2, meta)));
  std::vector<Query> queries(3);
  queries[1].kind = Query::Kind::kTopK;
  queries[1].k = 2;
  queries[2].kind = Query::Kind::kThreshold;
  auto results = engine.RunBatch(queries);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  for (const QueryResult& result : *results) {
    EXPECT_EQ(result.version, meta.version);
  }
}

// The full protocol surface against a deterministic synchronous service:
// pair/top-k/threshold/batch queries, edits + flush, stats, malformed
// requests, comments, and QUIT. The transcript pins the exact wire format.
TEST(ServeLoopTest, GoldenTranscript) {
  // Pin the STATS `simd=` field: the resolved kernel level is
  // host-dependent under auto, and the transcript must not be.
  setenv("FSIM_SIMD", "off", 1);
  const Graph g = MakeServeGraph();
  ServeOptions options;
  options.background_refresh = false;
  options.policy.topk_cache_k = 4;
  auto service = FSimService::Create(g, g, ServeConfig(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // The degraded TOPK/THRESH variants pass a budget that truncates to a
  // zero-length deadline (steady_clock::now() >= deadline holds on entry),
  // so the degradation path is hit deterministically.
  std::string requests =
      "# comment lines and blank lines are ignored\n"
      "\n"
      "PAIR 0 1\n"
      "PAIR 0 99\n"
      "TOPK 0 3\n"
      "THRESH 0 0.45\n"
      "TOPK 0 5 0.0000001\n"
      "THRESH 0 0.45 0.0000001\n"
      "BATCH 3\n"
      "PAIR 1 1\n"
      "TOPK 4 2\n"
      "NOPE 1 2\n"
      "EDIT INSERT 1 0 3\n"
      "FLUSH\n"
      "PAIR 0 1\n"
      "EDIT REMOVE 3 0 1\n"
      "EDIT INSERT 1\n"
      "PAIR x 1\n"
      "TOPK 0\n"
      "THRESH 0 abc\n"
      "TOPK 0 3 -1\n"
      "BATCH 999999\n"
      "BOGUS\n";
  // Hostile input: an over-length line (rejected without buffering it) and
  // an embedded NUL byte — both answered in-band, the loop keeps serving.
  requests += std::string(FSimService::kMaxLineBytes + 1000, 'A') + "\n";
  requests += std::string("PAIR ") + '\0' + "0 1\n";
  requests +=
      "STATS\n"
      "QUIT\n"
      "PAIR 0 1\n";  // after QUIT: never answered
  std::istringstream in(requests);
  std::ostringstream out;
  ASSERT_TRUE((*service)->ServeLoop(in, out).ok());

  // Spot-checked against Eq. 3 by hand: FSim_s(0, 1) = w+ * 1 (node 2 maps
  // to itself) + w- * 0 (node 1 has no in-neighbors) + 0.2 * L = 0.6.
  const std::string kExpected =
      "SCORE 0.600000 v1\n"
      "SCORE 0.000000 v1\n"
      "TOPK 3 v1\n"
      "0 1.000000\n"
      "4 0.656703\n"
      "1 0.600000\n"
      "THRESH 4 v1\n"
      "0 1.000000\n"
      "4 0.656703\n"
      "1 0.600000\n"
      "2 0.533907\n"
      "TOPK 4 v1 degraded\n"
      "0 1.000000\n"
      "4 0.656703\n"
      "1 0.600000\n"
      "2 0.533907\n"
      "THRESH 4 v1 degraded\n"
      "0 1.000000\n"
      "4 0.656703\n"
      "1 0.600000\n"
      "2 0.533907\n"
      "BATCH 3 v1\n"
      "SCORE 1.000000 v1\n"
      "TOPK 2 v1\n"
      "4 1.000000\n"
      "0 0.614166\n"
      "ERR unknown request 'NOPE'\n"
      "OK queued\n"
      "OK version 2\n"
      "SCORE 0.565554 v2\n"
      "ERR usage: EDIT INSERT|REMOVE <graph 1|2> <from> <to>\n"
      "ERR usage: EDIT INSERT|REMOVE <graph 1|2> <from> <to>\n"
      "ERR usage: PAIR <u> <v>\n"
      "ERR usage: TOPK <u> <k> [budget_ms]\n"
      "ERR usage: THRESH <u> <tau> [budget_ms]\n"
      "ERR usage: TOPK <u> <k> [budget_ms]\n"
      "ERR usage: BATCH <n> [budget_ms] (n <= 100000)\n"
      "ERR unknown request 'BOGUS'\n"
      "ERR line exceeds 4096 bytes\n"
      "ERR embedded NUL byte in request\n"
      "STATS version=2 pairs=25 pending=0 capacity=0 applied=1 coalesced=0 "
      "failed=0 shed=0 replayed=0 publishes=2 persists=0 wal_durable=0 "
      "wal_applied=0 wal_pending=0 stale_edits=0 stale_s=0 publish_age_s=0 "
      "ready=yes converged=yes warm=no simd=off\n"
      "BYE\n";
  unsetenv("FSIM_SIMD");
  EXPECT_EQ(out.str(), kExpected);
}

// METRICS and STATS FULL carry timing-dependent histogram values, so this
// validates structure instead of pinning a transcript: the count-prefixed
// METRICS framing, required Prometheus families, and the HIST...END block.
TEST(ServeLoopTest, MetricsAndStatsFull) {
  const Graph g = MakeServeGraph();
  ServeOptions options;
  options.background_refresh = false;
  auto service = FSimService::Create(g, g, ServeConfig(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  std::istringstream in(
      "PAIR 0 1\n"
      "TOPK 0 3\n"
      "THRESH 0 0.45\n"
      "STATS FULL\n"
      "METRICS\n"
      "STATS EXTRA\n"
      "QUIT\n");
  std::ostringstream out;
  ASSERT_TRUE((*service)->ServeLoop(in, out).ok());
  const std::string reply = out.str();

  // STATS FULL: the deterministic STATS line (with the new wal_pending and
  // publish_age_s keys), HIST quantile lines — the three queries above
  // guarantee non-empty per-verb histograms — then END. Counts are not
  // pinned: the registry is process-wide across tests in this binary.
  EXPECT_NE(reply.find("STATS version="), std::string::npos);
  EXPECT_NE(reply.find(" wal_pending=0 "), std::string::npos);
  EXPECT_NE(reply.find(" publish_age_s="), std::string::npos);
  EXPECT_NE(
      reply.find("HIST fsim_serve_query_seconds{verb=\"PAIR\"} count="),
      std::string::npos);
  EXPECT_NE(reply.find("p99_us="), std::string::npos);
  EXPECT_NE(reply.find("\nEND\n"), std::string::npos);
  // The STATS verb resolves the kernel level, which publishes the
  // fsim_simd_level gauge for the METRICS exposition.
  EXPECT_NE(reply.find(" simd="), std::string::npos);
  EXPECT_NE(reply.find("fsim_simd_level"), std::string::npos);
  // Malformed STATS argument is rejected in-band.
  EXPECT_NE(reply.find("ERR usage: STATS [FULL]\n"), std::string::npos);

  // METRICS framing: the advertised line count delimits the payload
  // exactly — the line after it is the STATS EXTRA error.
  const size_t header = reply.find("\nMETRICS ");
  ASSERT_NE(header, std::string::npos);
  std::istringstream lines(reply.substr(header + 1));
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const size_t advertised = std::stoul(line.substr(sizeof("METRICS ") - 1));
  ASSERT_GT(advertised, 0u);
  std::vector<std::string> payload;
  for (size_t i = 0; i < advertised; ++i) {
    ASSERT_TRUE(std::getline(lines, line)) << "payload shorter than header";
    payload.push_back(line);
  }
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "ERR usage: STATS [FULL]");

  const auto contains = [&payload](std::string_view needle) {
    for (const std::string& l : payload) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("# TYPE fsim_serve_query_seconds histogram"));
  EXPECT_TRUE(
      contains("fsim_serve_query_seconds_bucket{verb=\"PAIR\",le=\"+Inf\"}"));
  EXPECT_TRUE(contains("fsim_serve_query_seconds_count{verb=\"TOPK\"}"));
  EXPECT_TRUE(contains("# TYPE fsim_refresh_queue_depth gauge"));
  EXPECT_TRUE(contains("# TYPE fsim_publish_age_seconds gauge"));
}

TEST(ServeLoopTest, WarmStartServesBeforeRefreshReady) {
  const Graph g = MakeServeGraph();
  auto scores = ComputeFSimSelf(g, ServeConfig());
  ASSERT_TRUE(scores.ok());
  const std::string path = ::testing::TempDir() + "/warm.scores";
  ASSERT_TRUE(SaveScoresToFile(*scores, path).ok());

  ServeOptions options;
  options.background_refresh = true;
  options.warm_scores_path = path;
  auto service = FSimService::Create(g, g, ServeConfig(), options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  // The warm snapshot is published synchronously by Create, so queries
  // answer immediately — whether or not the background solve has finished.
  std::istringstream in("PAIR 0 0\nQUIT\n");
  std::ostringstream out;
  ASSERT_TRUE((*service)->ServeLoop(in, out).ok());
  EXPECT_EQ(out.str().substr(0, 15), "SCORE 1.000000 ");

  // Flush waits for the background engine, then publishes its (computed)
  // state; the answers keep matching the converged scores.
  ASSERT_TRUE((*service)->driver().Flush().ok());
  std::istringstream in2("PAIR 0 1\nQUIT\n");
  std::ostringstream out2;
  ASSERT_TRUE((*service)->ServeLoop(in2, out2).ok());
  EXPECT_EQ(out2.str().substr(0, 15), "SCORE 0.600000 ");
}

// End to end: a background edit stream is applied while reader threads
// hammer the service; every answer must be internally consistent, and the
// final flushed state must match a from-scratch recompute.
TEST(ServeLoopTest, ServesConsistentlyUnderBackgroundEdits) {
  const Graph g = testing::MakeRandomPair(0xD0C, 24, 24).g1;
  ServeOptions options;
  options.background_refresh = true;
  options.policy.max_edits_behind = 4;
  options.policy.poll_seconds = 0.001;
  FSimConfig config = ServeConfig();
  auto service = FSimService::Create(g, g, config, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_TRUE((*service)->driver().Flush().ok());  // wait for the solve

  std::atomic<bool> done{false};
  std::atomic<uint64_t> inconsistent{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&service, &done, &inconsistent, &g] {
      const QueryEngine& engine = (*service)->query_engine();
      Rng rng(0xF00 + reinterpret_cast<uintptr_t>(&engine));
      while (!done.load()) {
        Query query;
        query.kind = Query::Kind::kTopK;
        query.u = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
        query.k = 5;
        auto result = engine.Run(query);
        if (!result.ok()) continue;
        // Ranking must be sorted and scores in [0, 1] — a torn snapshot
        // would violate one of the two.
        for (size_t i = 0; i < result->entries.size(); ++i) {
          const double score = result->entries[i].second;
          if (score < 0.0 || score > 1.0) inconsistent.fetch_add(1);
          if (i > 0 && result->entries[i - 1].second < score) {
            inconsistent.fetch_add(1);
          }
        }
      }
    });
  }

  Rng rng(0xED17);
  for (int e = 0; e < 40; ++e) {
    EditOp op;
    op.graph_index = (e % 2) + 1;
    op.from = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    op.to = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (op.from == op.to) continue;
    op.insert = (rng.Next() & 1) != 0;
    ASSERT_TRUE((*service)->driver().Submit(op).ok());
    if (e % 10 == 9) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE((*service)->driver().Flush().ok());
  done.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(inconsistent.load(), 0u);

  auto full = ComputeFSim((*service)->driver().MaterializeG1(),
                          (*service)->driver().MaterializeG2(), config);
  ASSERT_TRUE(full.ok());
  const SnapshotPtr snap = (*service)->store().Acquire();
  ASSERT_NE(snap, nullptr);
  double max_diff = 0.0;
  for (size_t i = 0; i < full->keys().size(); ++i) {
    const NodeId u = PairFirst(full->keys()[i]);
    const NodeId v = PairSecond(full->keys()[i]);
    max_diff = std::max(max_diff,
                        std::abs(snap->PairScore(u, v) - full->values()[i]));
  }
  EXPECT_LT(max_diff, 1e-4);
}

// Overload shedding: a bounded queue accepts up to capacity distinct
// edges, coalesces same-edge bursts even when full, and sheds the rest
// with ResourceExhausted (counted, never silently dropped).
TEST(RefreshDriverTest, BoundedQueueShedsAndCoalesces) {
  const Graph g = MakeServeGraph();
  SnapshotStore store;
  RefreshPolicy policy;
  policy.queue_capacity = 2;
  RefreshDriver driver(g, g, ServeConfig(), IncrementalOptions{}, policy,
                       &store);

  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/true}).ok());
  ASSERT_TRUE(driver.Submit({2, 1, 0, /*insert=*/true}).ok());
  EXPECT_EQ(driver.pending_edits(), 2u);
  // Full: a distinct edge is shed...
  EXPECT_TRUE(driver.Submit({1, 2, 4, /*insert=*/true}).IsResourceExhausted());
  // ...but a same-edge submission still coalesces last-op-wins.
  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/false}).ok());
  EXPECT_EQ(driver.pending_edits(), 2u);
  EXPECT_EQ(driver.stats().edits_shed, 1u);

  // The queued (coalesced) edits drain normally once the engine is up.
  ASSERT_TRUE(driver.Init().ok());
  ASSERT_TRUE(driver.Flush().ok());
  EXPECT_EQ(driver.pending_edits(), 0u);
  // After the drain, capacity is free again.
  ASSERT_TRUE(driver.Submit({1, 2, 4, /*insert=*/true}).ok());
}

// Deadline budgets answer from the cache instead of blowing the deadline:
// an already-expired deadline degrades TOPK to the cache prefix and leaves
// PAIR (O(1)) exact.
TEST(QueryEngineTest, ExpiredDeadlineDegradesToCachePrefix) {
  const Graph g = MakeServeGraph();
  auto scores = ComputeFSimSelf(g, ServeConfig());
  ASSERT_TRUE(scores.ok());
  const FSimScores reference = *scores;
  SnapshotMeta meta;
  meta.version = 1;
  const FSimSnapshot snapshot(FreezeScores(std::move(*scores)),
                              /*cache_k=*/2, meta);

  const auto expired = QueryEngine::Clock::now();
  Query topk;
  topk.kind = Query::Kind::kTopK;
  topk.u = 0;
  topk.k = 4;
  const QueryResult degraded = QueryEngine::Answer(snapshot, topk, expired);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.entries.size(), 2u);  // the cache prefix, not k
  const auto want = ReferenceTopK(reference, 0, 2);
  for (size_t i = 0; i < degraded.entries.size(); ++i) {
    EXPECT_EQ(degraded.entries[i], want[i]);
  }
  // Within cache depth the prefix IS the exact answer: not degraded.
  topk.k = 2;
  EXPECT_FALSE(QueryEngine::Answer(snapshot, topk, expired).degraded);
  // PAIR never degrades.
  Query pair;
  pair.kind = Query::Kind::kPair;
  pair.u = 0;
  pair.v = 1;
  const QueryResult exact = QueryEngine::Answer(snapshot, pair, expired);
  EXPECT_FALSE(exact.degraded);
  EXPECT_EQ(exact.score, reference.Score(0, 1));
}

// Flush must return DeadlineExceeded instead of blocking forever behind a
// stalled solve. A delay failpoint in the init path stands in for the
// stall; needs an FSIM_FAILPOINTS build.
TEST(RefreshDriverTest, FlushDeadlineExceededWhileInitStalled) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (build with FSIM_FAILPOINTS=ON)";
  }
  const Graph g = MakeServeGraph();
  SnapshotStore store;
  RefreshPolicy policy;
  policy.poll_seconds = 0.001;
  RefreshDriver driver(g, g, ServeConfig(), IncrementalOptions{}, policy,
                       &store);
  ASSERT_TRUE(failpoint::Arm("serve.refresh.init_solve", "1*delay(300)").ok());
  driver.Start();
  // The solve is sleeping inside the failpoint: a bounded flush gives up...
  EXPECT_TRUE(driver
                  .FlushWithin(std::chrono::milliseconds(20))
                  .IsDeadlineExceeded());
  // ...and an unbounded one waits it out.
  ASSERT_TRUE(driver.Submit({1, 0, 3, /*insert=*/true}).ok());
  EXPECT_TRUE(driver.FlushWithin(std::chrono::milliseconds(0)).ok());
  EXPECT_TRUE(driver.ready());
  failpoint::Disarm("serve.refresh.init_solve");
  EXPECT_GE(failpoint::HitCount("serve.refresh.init_solve"), 1u);
  ASSERT_TRUE(driver.Stop(std::chrono::milliseconds(0)).ok());
}

// The background watchdog retries a failing Init with backoff instead of
// giving up: arm an error for the first two solve attempts, then watch the
// third succeed while queries were never blocked.
TEST(RefreshDriverTest, WatchdogRetriesFailedInit) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (build with FSIM_FAILPOINTS=ON)";
  }
  const Graph g = MakeServeGraph();
  SnapshotStore store;
  RefreshPolicy policy;
  policy.retry_backoff_seconds = 0.005;
  policy.retry_backoff_max_seconds = 0.01;
  RefreshDriver driver(g, g, ServeConfig(), IncrementalOptions{}, policy,
                       &store);
  ASSERT_TRUE(failpoint::Arm("serve.refresh.init_solve", "2*error").ok());
  driver.Start();
  ASSERT_TRUE(driver.Flush().ok());  // waits through the failing attempts
  EXPECT_TRUE(driver.ready());
  EXPECT_GE(driver.stats().init_retries, 2u);
  failpoint::Disarm("serve.refresh.init_solve");
}

}  // namespace
}  // namespace fsim
