#!/usr/bin/env python3
"""Tests for scripts/fsim_lint.py: every rule fires on a seeded violation
(exit 1), the allow-escape and the baseline suppress, and clean input passes.

Runs under pytest, or standalone (`python3 tests/test_fsim_lint.py`) on
machines without pytest — the __main__ block discovers test_* functions.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT = REPO_ROOT / "scripts" / "fsim_lint.py"


def run_lint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), "--no-baseline", *args],
        capture_output=True, text=True)


def write(tree: Path, rel: str, content: str) -> Path:
    path = tree / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)
    return path


GUARD = "#ifndef FSIM_TMP_H_\n#define FSIM_TMP_H_\n"
GUARD_END = "#endif  // FSIM_TMP_H_\n"


def test_sync_comment_violation_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "bad_sync.h", GUARD + (
            "#include <atomic>\n"
            "class C {\n"
            "  std::atomic<int> counter_{0};\n"
            "};\n") + GUARD_END)
        proc = run_lint(str(path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "sync-comment" in proc.stdout


def test_sync_comment_with_comment_passes():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "good_sync.h", GUARD + (
            "#include <atomic>\n"
            "class C {\n"
            "  std::atomic<int> counter_{0};  // ordering: relaxed telemetry\n"
            "  // guards: the queue below\n"
            "  std::mutex mu_;\n"
            "};\n") + GUARD_END)
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_allow_escape_suppresses():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "allowed.h", GUARD + (
            "#include <atomic>\n"
            "class C {\n"
            "  // fsim-lint: allow(sync-comment)\n"
            "  std::atomic<int> counter_{0};\n"
            "};\n") + GUARD_END)
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_parallel_hot_lock_in_lambda_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src" / "core") as d:
        path = write(Path(d), "hot.cc", (
            '#include "core/hot.h"\n'
            "void F(ThreadPool& pool) {\n"
            "  pool.ParallelFor(100, [&](size_t i) {\n"
            "    std::lock_guard<std::mutex> lock(mu_);\n"
            "    Work(i);\n"
            "  });\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "parallel-hot" in proc.stdout


def test_parallel_hot_outside_hot_dirs_ignored():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "tests") as d:
        path = write(Path(d), "hot_test.cc", (
            "void F(ThreadPool& pool) {\n"
            "  pool.ParallelFor(100, [&](size_t i) {\n"
            "    std::lock_guard<std::mutex> lock(mu_);\n"
            "  });\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_metrics_hot_lookup_in_lambda_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src" / "serve") as d:
        path = write(Path(d), "metrics_hot.cc", (
            '#include "serve/metrics_hot.h"\n'
            "void F(ThreadPool& pool) {\n"
            "  pool.ParallelFor(100, [&](size_t i) {\n"
            "    obs::Registry::Default()\n"
            '        .GetCounter("fsim_work_total")->Inc();\n'
            "    Work(i);\n"
            "  });\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "metrics-hot" in proc.stdout


def test_metrics_hot_preresolved_handle_passes():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src" / "serve") as d:
        path = write(Path(d), "metrics_ok.cc", (
            '#include "serve/metrics_ok.h"\n'
            "void F(ThreadPool& pool) {\n"
            "  obs::Counter* work =\n"
            '      obs::Registry::Default().GetCounter("fsim_work_total");\n'
            "  pool.ParallelFor(100, [&](size_t i) {\n"
            "    work->Inc();\n"
            "    Work(i);\n"
            "  });\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_metrics_hot_allow_escape_suppresses():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src" / "serve") as d:
        path = write(Path(d), "metrics_allowed.cc", (
            '#include "serve/metrics_allowed.h"\n'
            "void F(ThreadPool& pool) {\n"
            "  pool.ParallelFor(100, [&](size_t i) {\n"
            "    // fsim-lint: allow(metrics-hot)\n"
            '    obs::Registry::Default().GetGauge("fsim_depth")->Set(1.0);\n'
            "  });\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_metrics_hot_ignored_outside_src():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "bench") as d:
        path = write(Path(d), "metrics_bench.cc", (
            "void F(ThreadPool& pool) {\n"
            "  pool.ParallelFor(100, [&](size_t i) {\n"
            '    obs::Registry::Default().GetCounter("fsim_x")->Inc();\n'
            "  });\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_banned_rand_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "r.cc", (
            '#include "common/r.h"\n'
            "int Noise() { return rand() % 7; }\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 1
        assert "banned" in proc.stdout


def test_banned_in_string_literal_ignored():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "s.cc", (
            '#include "common/s.h"\n'
            'const char* kMsg = "call rand( for chaos";\n'))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_header_guard_missing_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "unguarded.h", "struct S {};\n")
        proc = run_lint(str(path))
        assert proc.returncode == 1
        assert "header-guard" in proc.stdout


def test_pragma_once_passes():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "pragma.h", "#pragma once\nstruct S {};\n")
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_naked_new_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "n.cc", (
            '#include "common/n.h"\n'
            "int* Leak() { return new int(7); }\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 1
        assert "naked-new" in proc.stdout


def test_durability_uncommented_fsync_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "d.cc", (
            '#include "common/d.h"\n'
            "#include <unistd.h>\n"
            "int Sync(int fd) { return fsync(fd); }\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "durability" in proc.stdout


def test_durability_comment_within_lookback_passes():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "d.cc", (
            '#include "common/d.h"\n'
            "#include <unistd.h>\n"
            "int SyncNear(int fd) {\n"
            "  // durability: ack barrier — callers rely on it.\n"
            "  return fsync(fd);\n"
            "}\n"
            "int SyncFar(int fd) {\n"
            "  // durability: the comment may sit a few lines up,\n"
            "  // above the error-handling preamble.\n"
            "  if (fd < 0) {\n"
            "    return -1;\n"
            "  }\n"
            "  return fdatasync(fd);\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_durability_ignored_outside_src():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "tests") as d:
        path = write(Path(d), "d.cc", (
            "#include <unistd.h>\n"
            "int Sync(int fd) { return fsync(fd); }\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_simd_isolation_intrinsic_outside_simd_dir_fails():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "vec.cc", (
            '#include "core/vec.h"\n'
            "#include <immintrin.h>\n"
            "double Sum(const double* p) {\n"
            "  __m256d v = _mm256_loadu_pd(p);\n"
            "  return _mm256_cvtsd_f64(v);\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "simd-isolation" in proc.stdout
        # Both the include and the intrinsic lines fire.
        assert proc.stdout.count("simd-isolation") >= 3


def test_simd_isolation_inside_simd_dir_passes():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src" / "core" / "simd") as d:
        path = write(Path(d), "k.cc", (
            '#include "core/simd/kernels.h"\n'
            "#include <immintrin.h>\n"
            "double Sum(const double* p) {\n"
            "  return _mm256_cvtsd_f64(_mm256_loadu_pd(p));\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_simd_isolation_allow_escape_suppresses():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "bench") as d:
        path = write(Path(d), "t.cc", (
            '#include "bench/t.h"\n'
            "#include <x86intrin.h>  // fsim-lint: allow(simd-isolation)\n"
            "unsigned long long Now() {\n"
            "  return __rdtsc();\n"
            "}\n"))
        proc = run_lint(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr


def test_baseline_suppresses_then_stays_pinned():
    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "src") as d:
        path = write(Path(d), "b.cc", (
            '#include "common/b.h"\n'
            "int Noise() { return rand() % 7; }\n"))
        # Without the baseline the violation fails...
        assert run_lint(str(path)).returncode == 1
        # ...with a freshly seeded baseline (run WITHOUT --no-baseline) the
        # same finding is grandfathered.
        baseline = REPO_ROOT / "scripts" / "fsim_lint_baseline.json"
        saved = baseline.read_text() if baseline.exists() else None
        try:
            subprocess.run(
                [sys.executable, str(LINT), "--update-baseline", str(path)],
                capture_output=True, text=True, check=True)
            proc = subprocess.run(
                [sys.executable, str(LINT), str(path)],
                capture_output=True, text=True)
            assert proc.returncode == 0, proc.stdout + proc.stderr
            assert "baselined" in proc.stdout
        finally:
            if saved is None:
                baseline.unlink(missing_ok=True)
            else:
                baseline.write_text(saved)


def test_repo_tree_is_clean_under_baseline():
    proc = subprocess.run([sys.executable, str(LINT)],
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def main() -> int:
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as e:
                failures += 1
                print(f"FAIL {name}: {e}")
    print(f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
