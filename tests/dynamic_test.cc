// Tests for the dynamic-graph extensions: single-edge graph edits
// (graph/edits.h), the edit-capable DynamicGraph (graph/dynamic_graph.h),
// the dense-mode engine (core/dense_engine.h, differential against the
// sparse engine), the maintained pair-graph neighbor index
// (core/incremental_index.h, differential against a fresh build) and
// incremental FSim maintenance (core/incremental.h, property-tested against
// full recomputation and against its own hash-lookup fallback).
#include <algorithm>
#include <cmath>
#include <span>
#include <tuple>

#include "core/dense_engine.h"
#include "core/simrank.h"
#include "core/fsim_engine.h"
#include "core/incremental.h"
#include "core/incremental_index.h"
#include "core/pair_store.h"
#include "graph/dynamic_graph.h"
#include "graph/edits.h"
#include "gtest/gtest.h"
#include "test_graphs.h"

namespace fsim {
namespace {

using ::fsim::testing::MakeFigure1;
using ::fsim::testing::MakeRandomPair;

// ---------------------------------------------------------------------------
// Graph edits
// ---------------------------------------------------------------------------

TEST(GraphEdits, AddsEdgePreservingEverythingElse) {
  auto pair = MakeRandomPair(7);
  const Graph& g = pair.g1;
  // Find a missing edge.
  NodeId from = 0, to = 0;
  bool found = false;
  for (NodeId u = 0; u < g.NumNodes() && !found; ++u) {
    for (NodeId v = 0; v < g.NumNodes() && !found; ++v) {
      if (u != v && !g.HasEdge(u, v)) {
        from = u;
        to = v;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);

  auto edited = WithEdgeAdded(g, from, to);
  ASSERT_TRUE(edited.ok()) << edited.status().ToString();
  EXPECT_EQ(edited->NumNodes(), g.NumNodes());
  EXPECT_EQ(edited->NumEdges(), g.NumEdges() + 1);
  EXPECT_TRUE(edited->HasEdge(from, to));
  EXPECT_EQ(edited->dict(), g.dict());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(edited->Label(u), g.Label(u));
    for (NodeId w : g.OutNeighbors(u)) EXPECT_TRUE(edited->HasEdge(u, w));
  }
}

TEST(GraphEdits, AddExistingEdgeIsAlreadyExists) {
  auto pair = MakeRandomPair(8);
  const Graph& g = pair.g1;
  ASSERT_GT(g.NumEdges(), 0u);
  NodeId u = 0;
  while (g.OutDegree(u) == 0) ++u;
  NodeId w = g.OutNeighbors(u)[0];
  auto edited = WithEdgeAdded(g, u, w);
  ASSERT_FALSE(edited.ok());
  EXPECT_EQ(edited.status().code(), StatusCode::kAlreadyExists);
}

TEST(GraphEdits, OutOfRangeEndpointsRejected) {
  auto pair = MakeRandomPair(9);
  const Graph& g = pair.g1;
  NodeId n = static_cast<NodeId>(g.NumNodes());
  EXPECT_EQ(WithEdgeAdded(g, n, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(WithEdgeAdded(g, 0, n).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(WithEdgeRemoved(g, n, 0).status().code(),
            StatusCode::kOutOfRange);
}

TEST(GraphEdits, RemoveAbsentEdgeIsNotFound) {
  GraphBuilder b;
  NodeId a = b.AddNode("x");
  NodeId c = b.AddNode("x");
  b.AddEdge(a, c);
  Graph g = std::move(b).BuildOrDie();
  auto removed = WithEdgeRemoved(g, c, a);
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.status().code(), StatusCode::kNotFound);
}

TEST(GraphEdits, AddThenRemoveRoundTrips) {
  auto pair = MakeRandomPair(10);
  const Graph& g = pair.g1;
  NodeId from = 1, to = 3;
  if (g.HasEdge(from, to)) {
    auto removed = WithEdgeRemoved(g, from, to);
    ASSERT_TRUE(removed.ok());
    auto readded = WithEdgeAdded(*removed, from, to);
    ASSERT_TRUE(readded.ok());
    EXPECT_EQ(readded->NumEdges(), g.NumEdges());
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId w : g.OutNeighbors(u)) EXPECT_TRUE(readded->HasEdge(u, w));
    }
  } else {
    auto added = WithEdgeAdded(g, from, to);
    ASSERT_TRUE(added.ok());
    auto removed = WithEdgeRemoved(*added, from, to);
    ASSERT_TRUE(removed.ok());
    EXPECT_EQ(removed->NumEdges(), g.NumEdges());
    EXPECT_FALSE(removed->HasEdge(from, to));
  }
}

// ---------------------------------------------------------------------------
// DynamicGraph: O(deg) edits with a Graph-compatible read API
// ---------------------------------------------------------------------------

TEST(DynamicGraph, MirrorsSourceGraphAndRoundTrips) {
  auto pair = MakeRandomPair(41);
  const Graph& g = pair.g1;
  DynamicGraph d(g);
  EXPECT_EQ(d.NumNodes(), g.NumNodes());
  EXPECT_EQ(d.NumEdges(), g.NumEdges());
  EXPECT_EQ(d.dict(), g.dict());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(d.Label(u), g.Label(u));
    EXPECT_EQ(d.OutDegree(u), g.OutDegree(u));
    EXPECT_EQ(d.InDegree(u), g.InDegree(u));
    auto expect_equal = [&](std::span<const NodeId> a,
                            std::span<const NodeId> b) {
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    };
    expect_equal(d.OutNeighbors(u), g.OutNeighbors(u));
    expect_equal(d.InNeighbors(u), g.InNeighbors(u));
  }

  Graph back = d.ToGraph();
  EXPECT_EQ(back.NumNodes(), g.NumNodes());
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId w : g.OutNeighbors(u)) EXPECT_TRUE(back.HasEdge(u, w));
  }
}

TEST(DynamicGraph, InsertAndRemoveKeepAdjacencySorted) {
  auto pair = MakeRandomPair(42);
  DynamicGraph d(pair.g1);
  const size_t edges = d.NumEdges();

  // Find a missing non-loop edge and insert it.
  NodeId from = 0, to = 0;
  bool found = false;
  for (NodeId u = 0; u < d.NumNodes() && !found; ++u) {
    for (NodeId v = 0; v < d.NumNodes() && !found; ++v) {
      if (u != v && !d.HasEdge(u, v)) {
        from = u;
        to = v;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  ASSERT_TRUE(d.InsertEdge(from, to).ok());
  EXPECT_EQ(d.NumEdges(), edges + 1);
  EXPECT_TRUE(d.HasEdge(from, to));
  EXPECT_TRUE(std::is_sorted(d.OutNeighbors(from).begin(),
                             d.OutNeighbors(from).end()));
  EXPECT_TRUE(
      std::is_sorted(d.InNeighbors(to).begin(), d.InNeighbors(to).end()));

  // Duplicate insert is rejected without changing anything.
  EXPECT_EQ(d.InsertEdge(from, to).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(d.NumEdges(), edges + 1);

  ASSERT_TRUE(d.RemoveEdge(from, to).ok());
  EXPECT_EQ(d.NumEdges(), edges);
  EXPECT_FALSE(d.HasEdge(from, to));
  EXPECT_EQ(d.RemoveEdge(from, to).code(), StatusCode::kNotFound);

  const NodeId n = static_cast<NodeId>(d.NumNodes());
  EXPECT_EQ(d.InsertEdge(n, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(d.RemoveEdge(0, n).code(), StatusCode::kOutOfRange);
}

TEST(DynamicGraph, SelfLoopAppearsInBothDirections) {
  auto pair = MakeRandomPair(43);
  DynamicGraph d(pair.g1);
  NodeId a = 2;
  if (d.HasEdge(a, a)) {
    ASSERT_TRUE(d.RemoveEdge(a, a).ok());
  }
  const size_t out_deg = d.OutDegree(a);
  const size_t in_deg = d.InDegree(a);
  ASSERT_TRUE(d.InsertEdge(a, a).ok());
  EXPECT_TRUE(d.HasEdge(a, a));
  EXPECT_EQ(d.OutDegree(a), out_deg + 1);
  EXPECT_EQ(d.InDegree(a), in_deg + 1);
  ASSERT_TRUE(d.RemoveEdge(a, a).ok());
  EXPECT_EQ(d.OutDegree(a), out_deg);
  EXPECT_EQ(d.InDegree(a), in_deg);
}

// ---------------------------------------------------------------------------
// Dense engine: differential equivalence with the sparse engine
// ---------------------------------------------------------------------------

class DenseEquivalence
    : public ::testing::TestWithParam<std::tuple<SimVariant, double>> {};

TEST_P(DenseEquivalence, MatchesSparseEngineOnMaintainedPairs) {
  const auto [variant, theta] = GetParam();
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto pair = MakeRandomPair(seed);
    FSimConfig config;
    config.variant = variant;
    config.theta = theta;
    config.epsilon = 1e-4;

    auto sparse = ComputeFSim(pair.g1, pair.g2, config);
    ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
    auto dense = ComputeFSimDense(pair.g1, pair.g2, config);
    ASSERT_TRUE(dense.ok()) << dense.status().ToString();

    EXPECT_EQ(sparse->stats().iterations, dense->stats().iterations);
    for (uint64_t key : sparse->keys()) {
      const NodeId u = PairFirst(key);
      const NodeId v = PairSecond(key);
      EXPECT_NEAR(sparse->Score(u, v), dense->Score(u, v), 1e-12)
          << "seed " << seed << " pair (" << u << ", " << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndThetas, DenseEquivalence,
    ::testing::Combine(::testing::Values(SimVariant::kSimple,
                                         SimVariant::kDegreePreserving,
                                         SimVariant::kBi,
                                         SimVariant::kBijective),
                       ::testing::Values(0.0, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<SimVariant, double>>& param_info) {
      return std::string(SimVariantName(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) == 0.0 ? "_theta0" : "_theta1");
    });

TEST(DenseEngine, RejectsUpperBoundConfig) {
  auto pair = MakeRandomPair(14);
  FSimConfig config;
  config.upper_bound = true;
  auto dense = ComputeFSimDense(pair.g1, pair.g2, config);
  ASSERT_FALSE(dense.ok());
  EXPECT_TRUE(dense.status().IsInvalidArgument());
}

TEST(DenseEngine, RespectsPairLimit) {
  auto pair = MakeRandomPair(15);
  FSimConfig config;
  config.pair_limit = 4;  // 10 x 12 pairs blow this immediately
  auto dense = ComputeFSimDense(pair.g1, pair.g2, config);
  ASSERT_FALSE(dense.ok());
  EXPECT_TRUE(dense.status().IsInvalidArgument());
}

TEST(DenseEngine, SimulationDefinitenessOnFigure1) {
  auto fig = MakeFigure1();
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.matching = MatchingAlgo::kHungarian;
  auto dense = ComputeFSimDense(fig.pattern, fig.data, config);
  ASSERT_TRUE(dense.ok());
  // u is s-simulated by v2, v3 and v4 but not v1 (Example 1).
  EXPECT_DOUBLE_EQ(dense->Score(fig.u, fig.v2), 1.0);
  EXPECT_DOUBLE_EQ(dense->Score(fig.u, fig.v3), 1.0);
  EXPECT_DOUBLE_EQ(dense->Score(fig.u, fig.v4), 1.0);
  EXPECT_LT(dense->Score(fig.u, fig.v1), 1.0);
}

TEST(DenseEngine, TopKAgreesWithScores) {
  auto pair = MakeRandomPair(16);
  FSimConfig config;
  auto dense = ComputeFSimDense(pair.g1, pair.g2, config);
  ASSERT_TRUE(dense.ok());
  auto top = dense->TopK(0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_GE(top[1].second, top[2].second);
  for (const auto& [v, score] : top) {
    EXPECT_DOUBLE_EQ(score, dense->Score(0, v));
  }
}


TEST(DenseEngine, SimRankConfigMatchesStandaloneOracle) {
  // The §4.3 SimRank configuration, run through the *dense* engine, must
  // agree with the standalone oracle — this exercises the kProduct mapping,
  // pin_diagonal and the diagonal-indicator initialization in dense mode.
  auto pair = MakeRandomPair(31, 9, 9, 1);
  const Graph& g = pair.g1;
  FSimConfig config = SimRankFSimConfig(0.8);
  config.max_iterations = 9;
  config.epsilon = 1e-12;  // run all 9 sweeps
  auto dense = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  std::vector<double> oracle = SimRankScores(g, 0.8, 9);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_NEAR(dense->Score(u, v), oracle[u * g.NumNodes() + v], 1e-9)
          << "(" << u << ", " << v << ")";
    }
  }
}

TEST(DenseEngine, MilnerModeIgnoresInNeighbors) {
  // w- = 0 is the paper's "original 1971 definition" mode; scores must be
  // independent of any in-only structure. Compare against a graph with an
  // extra source feeding u: with w- = 0, u's scores cannot change.
  GraphBuilder b;
  NodeId u0 = b.AddNode("a");
  NodeId w = b.AddNode("b");
  b.AddEdge(u0, w);
  Graph g1 = std::move(b).BuildOrDie();

  GraphBuilder b2(g1.dict());
  NodeId v0 = b2.AddNode("a");
  NodeId w2 = b2.AddNode("b");
  NodeId src = b2.AddNode("c");
  b2.AddEdge(v0, w2);
  b2.AddEdge(src, v0);  // extra in-edge on v0 only
  Graph g2 = std::move(b2).BuildOrDie();

  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.w_out = 0.8;
  config.w_in = 0.0;
  config.epsilon = 1e-10;
  auto scores = ComputeFSimDense(g1, g2, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->Score(u0, v0), 1.0);  // in-structure invisible
}

// ---------------------------------------------------------------------------
// Incremental maintenance: differential vs full recomputation
// ---------------------------------------------------------------------------

class IncrementalEquivalence : public ::testing::TestWithParam<SimVariant> {};

TEST_P(IncrementalEquivalence, TracksFullRecomputeAcrossEdits) {
  const SimVariant variant = GetParam();
  for (uint64_t seed : {21u, 22u}) {
    auto pair = MakeRandomPair(seed);
    FSimConfig config;
    config.variant = variant;
    config.epsilon = 1e-9;
    config.matching = MatchingAlgo::kHungarian;  // exact C3: true contraction
    IncrementalOptions options;
    options.propagation_tolerance = 1e-10;

    auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config, options);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    ASSERT_TRUE(inc->uses_neighbor_index());
    // A second engine forced onto the hash-lookup fallback absorbs the same
    // edit stream; the maintained index must not change a single bit of the
    // propagation trajectory.
    FSimConfig fallback_config = config;
    fallback_config.neighbor_index_budget_bytes = 0;
    auto fallback =
        IncrementalFSim::Create(pair.g1, pair.g2, fallback_config, options);
    ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
    ASSERT_FALSE(fallback->uses_neighbor_index());

    Rng rng(seed * 977);
    for (int e = 0; e < 6; ++e) {
      const int graph_index = (rng.Next() % 2 == 0) ? 1 : 2;
      const DynamicGraph& g = graph_index == 1 ? inc->g1() : inc->g2();
      const NodeId n = static_cast<NodeId>(g.NumNodes());
      NodeId from = static_cast<NodeId>(rng.Next() % n);
      NodeId to = static_cast<NodeId>(rng.Next() % n);
      if (from == to) continue;
      const bool remove = g.HasEdge(from, to);
      Status status = remove ? inc->RemoveEdge(graph_index, from, to)
                             : inc->InsertEdge(graph_index, from, to);
      ASSERT_TRUE(status.ok()) << status.ToString();
      Status fb_status = remove ? fallback->RemoveEdge(graph_index, from, to)
                                : fallback->InsertEdge(graph_index, from, to);
      ASSERT_TRUE(fb_status.ok()) << fb_status.ToString();

      auto full = ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(),
                              config);
      ASSERT_TRUE(full.ok()) << full.status().ToString();
      double max_diff = 0.0;
      double max_index_diff = 0.0;
      for (uint64_t key : full->keys()) {
        const NodeId u = PairFirst(key);
        const NodeId v = PairSecond(key);
        max_diff = std::max(
            max_diff, std::abs(full->Score(u, v) - inc->Score(u, v)));
        max_index_diff =
            std::max(max_index_diff,
                     std::abs(inc->Score(u, v) - fallback->Score(u, v)));
      }
      EXPECT_LT(max_diff, 1e-6)
          << "variant " << SimVariantName(variant) << " seed " << seed
          << " edit " << e;
      EXPECT_LT(max_index_diff, 1e-12)
          << "variant " << SimVariantName(variant) << " seed " << seed
          << " edit " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, IncrementalEquivalence,
                         ::testing::Values(SimVariant::kSimple,
                                           SimVariant::kDegreePreserving,
                                           SimVariant::kBi,
                                           SimVariant::kBijective),
                         [](const ::testing::TestParamInfo<SimVariant>& param_info) {
                           return SimVariantName(param_info.param);
                         });

TEST(Incremental, GreedyMatchingStaysCloseToFullRecompute) {
  // The greedy ½-approximate matching is not exactly Lipschitz, so the
  // asynchronous repair may settle on a marginally different orbit; the
  // deviation stays far below any score-level significance.
  auto pair = MakeRandomPair(23);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.epsilon = 1e-9;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->InsertEdge(1, 0, 5).ok() ||
              inc->RemoveEdge(1, 0, 5).ok());
  auto full = ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(), config);
  ASSERT_TRUE(full.ok());
  double max_diff = 0.0;
  for (uint64_t key : full->keys()) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    max_diff =
        std::max(max_diff, std::abs(full->Score(u, v) - inc->Score(u, v)));
  }
  EXPECT_LT(max_diff, 1e-4);
}

TEST(Incremental, RejectsUpperBoundConfig) {
  auto pair = MakeRandomPair(24);
  FSimConfig config;
  config.upper_bound = true;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_FALSE(inc.ok());
  EXPECT_TRUE(inc.status().IsInvalidArgument());
}

TEST(Incremental, RejectsNonPositiveTolerance) {
  auto pair = MakeRandomPair(25);
  IncrementalOptions options;
  options.propagation_tolerance = 0.0;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, FSimConfig{}, options);
  ASSERT_FALSE(inc.ok());
  EXPECT_TRUE(inc.status().IsInvalidArgument());
}

TEST(Incremental, IllegalEditLeavesStateUntouched) {
  auto pair = MakeRandomPair(26);
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, FSimConfig{});
  ASSERT_TRUE(inc.ok());
  const double before = inc->Score(0, 0);
  const size_t edges_before = inc->g1().NumEdges();

  // Removing a non-existent edge fails cleanly.
  NodeId from = 0, to = 0;
  bool found = false;
  for (NodeId u = 0; u < inc->g1().NumNodes() && !found; ++u) {
    for (NodeId v = 0; v < inc->g1().NumNodes() && !found; ++v) {
      if (!inc->g1().HasEdge(u, v)) {
        from = u;
        to = v;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found);
  Status status = inc->RemoveEdge(1, from, to);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(inc->g1().NumEdges(), edges_before);
  EXPECT_DOUBLE_EQ(inc->Score(0, 0), before);

  EXPECT_EQ(inc->InsertEdge(3, 0, 1).code(), StatusCode::kInvalidArgument);
}

TEST(Incremental, EditStatsAreReported) {
  auto pair = MakeRandomPair(27);
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_TRUE(inc.ok());
  NodeId from = 0, to = 1;
  Status status = inc->g1().HasEdge(from, to)
                      ? inc->RemoveEdge(1, from, to)
                      : inc->InsertEdge(1, from, to);
  ASSERT_TRUE(status.ok());
  const EditStats& stats = inc->last_edit_stats();
  EXPECT_GT(stats.seeded_pairs, 0u);
  EXPECT_GE(stats.recomputed, stats.seeded_pairs);
  // The wave counter stays within the Corollary 1 cap for the default
  // tolerance (ceil(log_{0.8} 1e-9) + 2 = 95).
  EXPECT_LE(stats.waves, 95u);
}

TEST(Incremental, SnapshotMatchesLiveScores) {
  auto pair = MakeRandomPair(28);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->InsertEdge(2, 0, 7).ok() || inc->RemoveEdge(2, 0, 7).ok());
  FSimScores snap = inc->Snapshot();
  EXPECT_EQ(snap.NumPairs(), inc->NumPairs());
  for (NodeId u = 0; u < inc->g1().NumNodes(); ++u) {
    for (NodeId v = 0; v < inc->g2().NumNodes(); ++v) {
      EXPECT_DOUBLE_EQ(snap.Score(u, v), inc->Score(u, v));
    }
  }
}

TEST(Incremental, ThetaFilteredCandidateSetSurvivesEdits) {
  auto pair = MakeRandomPair(29);
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.theta = 1.0;  // same-label candidates only
  config.epsilon = 1e-9;
  config.matching = MatchingAlgo::kHungarian;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_TRUE(inc.ok());
  const size_t pairs_before = inc->NumPairs();
  ASSERT_TRUE(inc->InsertEdge(1, 0, 4).ok() || inc->RemoveEdge(1, 0, 4).ok());
  EXPECT_EQ(inc->NumPairs(), pairs_before);

  auto full = ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(), config);
  ASSERT_TRUE(full.ok());
  for (uint64_t key : full->keys()) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    EXPECT_NEAR(full->Score(u, v), inc->Score(u, v), 1e-6);
  }
}

// Exact structural equivalence of the maintained neighbor index: after a
// stream of random edits (self-loops included), every re-staged span must be
// entry-for-entry identical to a from-scratch build on the edited graphs —
// which makes any evaluation through the two indexes bit-identical (far
// inside the 1e-12 score budget the engine-level sweep asserts).
class MaintainedIndexSweep
    : public ::testing::TestWithParam<std::tuple<SimVariant, double>> {};

TEST_P(MaintainedIndexSweep, MatchesFreshBuildAfterRandomEdits) {
  const auto [variant, theta] = GetParam();
  auto pair = MakeRandomPair(51);
  FSimConfig config;
  config.variant = variant;
  config.theta = theta;
  LabelSimilarityCache lsim(*pair.g1.dict(), config.label_sim);
  auto store = PairStore::Build(pair.g1, pair.g2, config, lsim,
                                /*build_neighbor_index=*/false);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  std::vector<uint64_t> keys = store->TakeKeys();
  FlatPairMap index = store->TakeIndex();

  DynamicGraph d1(pair.g1);
  DynamicGraph d2(pair.g2);
  const NeighborIndexEnv env{d1, d2, index, lsim};
  IncrementalNeighborIndex maintained;
  ASSERT_TRUE(maintained.Build(env, keys, config));

  Rng rng(515);
  for (int e = 0; e < 12; ++e) {
    const int graph_index = (rng.Next() % 2 == 0) ? 1 : 2;
    DynamicGraph& target = graph_index == 1 ? d1 : d2;
    const NodeId n = static_cast<NodeId>(target.NumNodes());
    const NodeId from = static_cast<NodeId>(rng.Next() % n);
    const NodeId to = static_cast<NodeId>(rng.Next() % n);
    Status status = target.HasEdge(from, to) ? target.RemoveEdge(from, to)
                                             : target.InsertEdge(from, to);
    ASSERT_TRUE(status.ok()) << status.ToString();

    // The engine's invalidation rule, replicated over a plain pair scan:
    // a graph-1 edit re-stages the out-spans of row `from` and the in-spans
    // of row `to`; a graph-2 edit the same per column.
    for (size_t i = 0; i < keys.size(); ++i) {
      const NodeId u = PairFirst(keys[i]);
      const NodeId v = PairSecond(keys[i]);
      const NodeId key_node = graph_index == 1 ? u : v;
      if (key_node == from) {
        maintained.Restage(i, IncrementalNeighborIndex::kOut, u, v, env);
      }
      if (key_node == to) {
        maintained.Restage(i, IncrementalNeighborIndex::kIn, u, v, env);
      }
    }

    IncrementalNeighborIndex fresh;
    ASSERT_TRUE(fresh.Build(env, keys, config));
    for (size_t i = 0; i < keys.size(); ++i) {
      for (int dir :
           {IncrementalNeighborIndex::kOut, IncrementalNeighborIndex::kIn}) {
        auto got = maintained.Refs(i, dir);
        auto want = fresh.Refs(i, dir);
        ASSERT_EQ(got.size(), want.size())
            << "edit " << e << " pair " << i << " dir " << dir;
        for (size_t k = 0; k < got.size(); ++k) {
          EXPECT_EQ(got[k].row, want[k].row);
          EXPECT_EQ(got[k].col, want[k].col);
          EXPECT_EQ(got[k].ref, want[k].ref);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndThetas, MaintainedIndexSweep,
    ::testing::Combine(::testing::Values(SimVariant::kSimple,
                                         SimVariant::kDegreePreserving,
                                         SimVariant::kBi,
                                         SimVariant::kBijective),
                       ::testing::Values(0.0, 1.0)),
    [](const ::testing::TestParamInfo<std::tuple<SimVariant, double>>& param_info) {
      return std::string(SimVariantName(std::get<0>(param_info.param))) +
             (std::get<1>(param_info.param) == 0.0 ? "_theta0" : "_theta1");
    });

TEST(Incremental, TruncatedEditReportsNonConvergence) {
  auto pair = MakeRandomPair(33);
  FSimConfig config;
  config.variant = SimVariant::kSimple;

  // A healthy engine reports convergence before and after clean edits.
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_TRUE(inc.ok());
  EXPECT_TRUE(inc->converged());
  EXPECT_TRUE(inc->Snapshot().stats().converged);

  // An update-capped edit must surface Internal AND a non-converged
  // snapshot (the old code claimed converged unconditionally).
  IncrementalOptions options;
  options.max_updates_per_edit = 1;
  auto tiny = IncrementalFSim::Create(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(tiny.ok());
  EXPECT_TRUE(tiny->converged());
  NodeId from = 0, to = 1;
  Status status = tiny->g1().HasEdge(from, to)
                      ? tiny->RemoveEdge(1, from, to)
                      : tiny->InsertEdge(1, from, to);
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_TRUE(tiny->last_edit_stats().truncated);
  // The one evaluation the cap admitted is committed, not discarded.
  EXPECT_EQ(tiny->last_edit_stats().recomputed, 1u);
  EXPECT_FALSE(tiny->converged());
  EXPECT_FALSE(tiny->Snapshot().stats().converged);

  // Non-convergence is sticky: a later clean edit cannot launder the
  // truncated state.
  Status second = tiny->g1().HasEdge(2, 3) ? tiny->RemoveEdge(1, 2, 3)
                                           : tiny->InsertEdge(1, 2, 3);
  (void)second;  // may truncate again; either way:
  EXPECT_FALSE(tiny->Snapshot().stats().converged);
}

TEST(Incremental, IndexOverBudgetMidStreamFallsBackToHashLookups) {
  auto pair = MakeRandomPair(35);
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-9;
  config.matching = MatchingAlgo::kHungarian;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-10;

  // Learn the initial footprint, then rebuild with a budget barely above it
  // so that insert-driven span growth must blow the ceiling.
  auto probe = IncrementalFSim::Create(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(probe.ok());
  ASSERT_TRUE(probe->uses_neighbor_index());
  config.neighbor_index_budget_bytes =
      probe->Snapshot().stats().neighbor_index_bytes + 64;

  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(inc->uses_neighbor_index());
  int inserted = 0;
  for (NodeId u = 0; u < inc->g1().NumNodes() && inserted < 40; ++u) {
    for (NodeId v = 0; v < inc->g1().NumNodes() && inserted < 40; ++v) {
      if (u == v || inc->g1().HasEdge(u, v)) continue;
      ASSERT_TRUE(inc->InsertEdge(1, u, v).ok());
      ++inserted;
    }
  }
  // Densifying one side must eventually trip the ceiling; after the index
  // drops, the engine keeps answering through the hash fallback and the
  // scores still track a full recompute.
  EXPECT_FALSE(inc->uses_neighbor_index());
  EXPECT_FALSE(inc->Snapshot().stats().used_neighbor_index);
  auto full = ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(), config);
  ASSERT_TRUE(full.ok());
  for (uint64_t key : full->keys()) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    EXPECT_NEAR(full->Score(u, v), inc->Score(u, v), 1e-6);
  }
}

TEST(Incremental, SelfLoopEditsTrackFullRecompute) {
  auto pair = MakeRandomPair(34);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.epsilon = 1e-9;
  config.matching = MatchingAlgo::kHungarian;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-10;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(inc.ok());

  for (int graph_index : {1, 2}) {
    const DynamicGraph& g = graph_index == 1 ? inc->g1() : inc->g2();
    NodeId a = 0;
    while (a < g.NumNodes() && g.HasEdge(a, a)) ++a;
    ASSERT_LT(a, g.NumNodes());

    ASSERT_TRUE(inc->InsertEdge(graph_index, a, a).ok());
    // Duplicate-endpoint re-insert is rejected and leaves state untouched.
    EXPECT_EQ(inc->InsertEdge(graph_index, a, a).code(),
              StatusCode::kAlreadyExists);

    auto full =
        ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(), config);
    ASSERT_TRUE(full.ok());
    for (uint64_t key : full->keys()) {
      const NodeId u = PairFirst(key);
      const NodeId v = PairSecond(key);
      EXPECT_NEAR(full->Score(u, v), inc->Score(u, v), 1e-6)
          << "graph " << graph_index << " self-loop (" << a << ", " << a
          << ")";
    }

    ASSERT_TRUE(inc->RemoveEdge(graph_index, a, a).ok());
    EXPECT_EQ(inc->RemoveEdge(graph_index, a, a).code(),
              StatusCode::kNotFound);
  }
}

TEST(Incremental, RemoveThenReAddRestoresScores) {
  auto pair = MakeRandomPair(30);
  FSimConfig config;
  config.variant = SimVariant::kDegreePreserving;
  config.epsilon = 1e-9;
  config.matching = MatchingAlgo::kHungarian;
  auto inc = IncrementalFSim::Create(pair.g1, pair.g2, config);
  ASSERT_TRUE(inc.ok());

  // Record, remove an existing edge, re-add it, compare.
  NodeId u = 0;
  while (inc->g1().OutDegree(u) == 0) ++u;
  NodeId w = inc->g1().OutNeighbors(u)[0];
  std::vector<double> before;
  for (NodeId a = 0; a < inc->g1().NumNodes(); ++a) {
    for (NodeId b = 0; b < inc->g2().NumNodes(); ++b) {
      before.push_back(inc->Score(a, b));
    }
  }
  ASSERT_TRUE(inc->RemoveEdge(1, u, w).ok());
  ASSERT_TRUE(inc->InsertEdge(1, u, w).ok());
  size_t i = 0;
  for (NodeId a = 0; a < inc->g1().NumNodes(); ++a) {
    for (NodeId b = 0; b < inc->g2().NumNodes(); ++b) {
      EXPECT_NEAR(inc->Score(a, b), before[i++], 1e-6);
    }
  }
}

}  // namespace
}  // namespace fsim
