// Tests for the observability layer (src/obs/): log2 histogram bucket
// placement at power-of-two boundaries, cross-thread shard merging against
// single-thread ground truth, quantile error bounds (within the containing
// bucket, clamped to the observed max), snapshot-during-concurrent-record
// (exercised under TSan in CI), registry identity/callback-gauge ownership
// semantics, Prometheus exposition structure, and trace-span capture with
// a well-formedness check over the Chrome trace JSON (complete "X" events,
// timestamps sorted per tid).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsim {
namespace obs {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(Histogram::Unit::kCount);
  // Exact boundary values: bucket index is bit_width(v), so each power of
  // two opens a new bucket and (2^i - 1) closes the previous one.
  const uint64_t values[] = {0, 1, 2, 3, 4, 7, 8, 1023, 1024};
  for (uint64_t v : values) h.Record(v);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 9u);
  EXPECT_EQ(s.max, 1024u);
  EXPECT_EQ(s.counts[0], 1u);   // 0
  EXPECT_EQ(s.counts[1], 1u);   // 1
  EXPECT_EQ(s.counts[2], 2u);   // 2, 3
  EXPECT_EQ(s.counts[3], 2u);   // 4, 7
  EXPECT_EQ(s.counts[4], 1u);   // 8
  EXPECT_EQ(s.counts[10], 1u);  // 1023
  EXPECT_EQ(s.counts[11], 1u);  // 1024
  uint64_t total = 0;
  for (uint64_t c : s.counts) total += c;
  EXPECT_EQ(total, s.count);

  // BucketUpperBound inverts the placement: a bucket's upper bound lands
  // in that bucket, one more lands in the next.
  for (size_t i = 0; i < 12; ++i) {
    const uint64_t upper = HistogramSnapshot::BucketUpperBound(i);
    EXPECT_EQ(static_cast<size_t>(std::bit_width(upper)), i);
    EXPECT_EQ(static_cast<size_t>(std::bit_width(upper + 1)), i + 1);
  }
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(64), UINT64_MAX);
}

TEST(HistogramTest, CrossThreadMergeEqualsSingleThread) {
  // The same multiset recorded by 8 threads into one sharded histogram and
  // serially into a reference must merge to identical totals.
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  Histogram sharded(Histogram::Unit::kCount);
  Histogram reference(Histogram::Unit::kCount);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        sharded.Record(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (uint64_t v = 0; v < kThreads * kPerThread; ++v) reference.Record(v);

  const HistogramSnapshot a = sharded.Snapshot();
  const HistogramSnapshot b = reference.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(HistogramTest, QuantileWithinOneBucketWidth) {
  Histogram h(Histogram::Unit::kCount);
  for (int i = 0; i < 1000; ++i) h.Record(100);  // bucket 7: [64, 127]
  const HistogramSnapshot s = h.Snapshot();
  for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    const double estimate = s.Quantile(q);
    EXPECT_GE(estimate, 64.0) << q;
    EXPECT_LE(estimate, 100.0) << q;  // clamped to the observed max
  }

  // Mixed distribution: the median must land in the bucket holding the
  // true median, bounding the error to that bucket's width.
  Histogram m(Histogram::Unit::kCount);
  for (int i = 0; i < 600; ++i) m.Record(10);    // bucket 4: [8, 15]
  for (int i = 0; i < 400; ++i) m.Record(5000);  // bucket 13
  const HistogramSnapshot ms = m.Snapshot();
  EXPECT_GE(ms.Quantile(0.5), 8.0);
  EXPECT_LE(ms.Quantile(0.5), 15.0);
  EXPECT_GE(ms.Quantile(0.9), 4096.0);
  EXPECT_LE(ms.Quantile(0.9), 5000.0);
  EXPECT_EQ(HistogramSnapshot().Quantile(0.5), 0.0);  // empty
}

TEST(HistogramTest, DeltaIsolatesAnInterval) {
  Histogram h(Histogram::Unit::kCount);
  h.Record(3);
  h.Record(100);
  const HistogramSnapshot before = h.Snapshot();
  h.Record(7);
  h.Record(7);
  const HistogramSnapshot after = h.Snapshot();
  const HistogramSnapshot delta = HistogramSnapshot::Delta(after, before);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_EQ(delta.sum, 14u);
  EXPECT_EQ(delta.counts[3], 2u);  // both 7s
  EXPECT_EQ(delta.counts[7], 0u);  // the pre-interval 100 subtracted out
  // Shard maxima are cumulative, so the delta conservatively reports the
  // lifetime max.
  EXPECT_EQ(delta.max, 100u);
}

TEST(HistogramTest, SnapshotDuringConcurrentRecord) {
  // Snapshots taken mid-recording must always be internally consistent
  // prefixes: count equals the bucket sum, and both only grow. TSan (CI
  // matrix) checks the memory-order story; this asserts the arithmetic.
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  Histogram h(Histogram::Unit::kCount);
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Record(i & 1023);
    });
  }
  uint64_t last_count = 0;
  std::thread reader([&h, &done, &last_count] {
    while (!done.load(std::memory_order_acquire)) {
      const HistogramSnapshot s = h.Snapshot();
      uint64_t total = 0;
      for (uint64_t c : s.counts) total += c;
      EXPECT_EQ(total, s.count);
      EXPECT_GE(s.count, last_count);
      EXPECT_LE(s.max, 1023u);
      last_count = s.count;
    }
  });
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(h.Snapshot().count, kThreads * kPerThread);
}

TEST(CounterTest, CrossThreadSumAndReset) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Inc();
      c.Inc(5);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), 8u * 10005u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_EQ(g.Value(), 1.5);
}

TEST(RegistryTest, SameKeySameHandle) {
  Registry registry;
  Counter* a = registry.GetCounter("fsim_test_total", "help", "kind", "x");
  Counter* b = registry.GetCounter("fsim_test_total", "help", "kind", "x");
  Counter* other = registry.GetCounter("fsim_test_total", "help", "kind", "y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->Inc(3);
  other->Inc(4);
  const auto family = registry.CounterFamilySnapshot("fsim_test_total");
  ASSERT_EQ(family.size(), 2u);
  EXPECT_EQ(family[0], (std::pair<std::string, uint64_t>{"x", 3}));
  EXPECT_EQ(family[1], (std::pair<std::string, uint64_t>{"y", 4}));

  Histogram* h = registry.GetHistogram("fsim_test_seconds", "help",
                                       Histogram::Unit::kNanoseconds);
  EXPECT_EQ(registry.FindHistogram("fsim_test_seconds"), h);
  EXPECT_EQ(registry.FindHistogram("fsim_absent_seconds"), nullptr);
}

TEST(RegistryTest, CallbackGaugeOwnership) {
  Registry registry;
  int owner_a = 0, owner_b = 0;
  registry.RegisterCallbackGauge("fsim_depth", "help", &owner_a,
                                 [] { return 1.0; });
  // Re-registration replaces the callback (newest instance wins).
  registry.RegisterCallbackGauge("fsim_depth", "help", &owner_b,
                                 [] { return 2.0; });
  EXPECT_NE(registry.RenderPrometheus().find("fsim_depth 2"),
            std::string::npos);
  // A stale owner cannot tear down the replacement...
  registry.UnregisterCallbackGauge("fsim_depth", &owner_a);
  EXPECT_NE(registry.RenderPrometheus().find("fsim_depth 2"),
            std::string::npos);
  // ...but the current owner can.
  registry.UnregisterCallbackGauge("fsim_depth", &owner_b);
  EXPECT_EQ(registry.RenderPrometheus().find("fsim_depth"),
            std::string::npos);
}

TEST(RegistryTest, PrometheusExpositionStructure) {
  Registry registry;
  Counter* c = registry.GetCounter("fsim_ops_total", "Operations", "kind",
                                   "weird\"label\\with\nchars");
  c->Inc(7);
  registry.GetGauge("fsim_depth", "Depth")->Set(3.5);
  Histogram* h = registry.GetHistogram("fsim_wait_seconds", "Wait",
                                       Histogram::Unit::kNanoseconds);
  h->Record(1'000'000'000);  // 1s
  h->Record(500);            // 500ns
  const std::string text = registry.RenderPrometheus();

  EXPECT_NE(text.find("# HELP fsim_ops_total Operations\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fsim_ops_total counter\n"), std::string::npos);
  // Label values escape backslash, quote and newline.
  EXPECT_NE(
      text.find("fsim_ops_total{kind=\"weird\\\"label\\\\with\\nchars\"} 7"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE fsim_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("fsim_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fsim_wait_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("fsim_wait_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("fsim_wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  // Nanosecond histograms expose seconds: the sum is ~1.0000005.
  const size_t sum_pos = text.find("fsim_wait_seconds_sum ");
  ASSERT_NE(sum_pos, std::string::npos);
  const double sum = std::stod(text.substr(sum_pos + sizeof("fsim_wait_seconds_sum ") - 1));
  EXPECT_NEAR(sum, 1.0000005, 1e-9);

  // Cumulative bucket counts never decrease and end at the total count.
  uint64_t prev = 0;
  size_t pos = 0;
  while ((pos = text.find("fsim_wait_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    const size_t value_at = text.find("} ", pos);
    ASSERT_NE(value_at, std::string::npos);
    const uint64_t cumulative = std::stoull(text.substr(value_at + 2));
    EXPECT_GE(cumulative, prev);
    prev = cumulative;
    pos = value_at;
  }
  EXPECT_EQ(prev, 2u);
}

TEST(ScopedLatencyTimerTest, NullHandleIsSafe) {
  { ScopedLatencyTimer timer(nullptr); }
  Histogram h(Histogram::Unit::kNanoseconds);
  { ScopedLatencyTimer timer(&h); }
  EXPECT_EQ(h.Snapshot().count, 1u);
}

TEST(TraceTest, DisarmedSpansRecordNothing) {
  DisarmTracing();
  const uint64_t before = TraceEventCount();
  {
    FSIM_TRACE_SPAN("test.disarmed");
    FSIM_TRACE_SPAN_ARG("test.disarmed.arg", 42);
  }
  EXPECT_EQ(TraceEventCount(), before);
}

TEST(TraceTest, CapturesSpansAcrossThreads) {
  ArmTracing();
  {
    TraceSpan outer("test.outer");
    { FSIM_TRACE_SPAN_ARG("test.inner", 7); }
    std::thread worker([] { FSIM_TRACE_SPAN("test.worker"); });
    worker.join();
    outer.End();
    outer.End();  // idempotent: must not double-record
  }
  DisarmTracing();

  const std::vector<ThreadTrace> threads = SnapshotTrace();
  size_t outer_count = 0, inner_count = 0, worker_count = 0;
  for (const ThreadTrace& t : threads) {
    uint64_t prev_start = 0;
    for (const TraceEvent& e : t.events) {
      // Sorted per thread; spans nest (inner fully inside outer).
      EXPECT_GE(e.start_ns, prev_start);
      prev_start = e.start_ns;
      const std::string name = e.name;
      if (name == "test.outer") ++outer_count;
      if (name == "test.inner") {
        ++inner_count;
        EXPECT_TRUE(e.has_arg);
        EXPECT_EQ(e.arg, 7u);
      }
      if (name == "test.worker") ++worker_count;
    }
  }
  EXPECT_EQ(outer_count, 1u);
  EXPECT_EQ(inner_count, 1u);
  EXPECT_EQ(worker_count, 1u);
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  ArmTracing();
  {
    FSIM_TRACE_SPAN("test.json.a");
    FSIM_TRACE_SPAN_ARG("test.json.b", 3);
  }
  DisarmTracing();
  const std::string json = RenderChromeTrace();

  // Structure: one top-level object, a traceEvents array of complete "X"
  // events, balanced braces/brackets (no trailing comma truncation).
  EXPECT_EQ(json.front(), '{');
  const size_t last = json.find_last_not_of(" \n");
  ASSERT_NE(last, std::string::npos);
  EXPECT_EQ(json[last], '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json.a\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":3}"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Every event is a complete-span event; B/E pairs are never emitted.
  size_t events = 0, pos = 0;
  while ((pos = json.find("\"ph\":", pos)) != std::string::npos) {
    EXPECT_EQ(json.substr(pos, sizeof("\"ph\":\"X\"") - 1), "\"ph\":\"X\"");
    pos += 5;
    ++events;
  }
  EXPECT_GE(events, 2u);
}

TEST(TraceTest, ArmResetsPriorEvents) {
  ArmTracing();
  { FSIM_TRACE_SPAN("test.reset.first"); }
  DisarmTracing();
  EXPECT_GE(TraceEventCount(), 1u);
  ArmTracing();
  DisarmTracing();
  EXPECT_EQ(TraceEventCount(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace fsim
