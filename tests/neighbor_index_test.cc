// Path-equivalence tests for the pair-graph CSR neighbor index: for every
// MappingKind x OmegaKind operator combination (and both matching
// realizations, plus pin_diagonal and upper-bound pruning with α > 0), the
// indexed fast path and the hash-lookup fallback must produce identical
// scores — the index enumerates exactly the candidate pairs the fallback's
// nested loops visit, in the same order.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/random.h"
#include "core/fsim_config.h"
#include "core/fsim_engine.h"
#include "core/simrank.h"
#include "graph/graph_builder.h"

namespace fsim {
namespace {

constexpr double kPathTolerance = 1e-12;

/// A random labeled digraph where every node has out- and in-degree >= 1
/// (a ring plus random chords), so no operator/omega combination divides by
/// a zero normalizer. Labels are two-letter strings with nontrivial mutual
/// edit similarity, giving θ a real compatibility structure.
Graph MakeDenseRandomGraph(uint64_t seed, uint32_t n = 24) {
  static const char* kLabels[] = {"aa", "ab", "bb", "bc"};
  Rng rng(seed);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(kLabels[rng.Next() % 4]);
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddEdge(i, (i + 1) % n);
  }
  for (uint32_t e = 0; e < 2 * n; ++e) {
    NodeId from = static_cast<NodeId>(rng.Next() % n);
    NodeId to = static_cast<NodeId>(rng.Next() % n);
    if (from != to) builder.AddEdge(from, to);
  }
  return std::move(builder).BuildOrDie();
}

/// Runs `config` with the neighbor index enabled and disabled and asserts
/// both paths produce the same pair set with scores equal within 1e-12.
void ExpectPathEquivalence(const Graph& g, FSimConfig config,
                           const std::string& context) {
  config.neighbor_index_budget_bytes = 1ULL << 30;
  auto indexed = ComputeFSimSelf(g, config);
  ASSERT_TRUE(indexed.ok()) << context << ": " << indexed.status().ToString();
  EXPECT_TRUE(indexed->stats().used_neighbor_index) << context;
  EXPECT_GT(indexed->stats().neighbor_index_bytes, 0u) << context;

  config.neighbor_index_budget_bytes = 0;
  auto fallback = ComputeFSimSelf(g, config);
  ASSERT_TRUE(fallback.ok()) << context << ": "
                             << fallback.status().ToString();
  EXPECT_FALSE(fallback->stats().used_neighbor_index) << context;

  ASSERT_EQ(indexed->keys().size(), fallback->keys().size()) << context;
  EXPECT_EQ(indexed->stats().iterations, fallback->stats().iterations)
      << context;
  for (size_t i = 0; i < indexed->keys().size(); ++i) {
    ASSERT_EQ(indexed->keys()[i], fallback->keys()[i]) << context;
    const double a = indexed->values()[i];
    const double b = fallback->values()[i];
    ASSERT_FALSE(std::isnan(a)) << context << " pair " << i;
    ASSERT_NEAR(a, b, kPathTolerance)
        << context << " pair " << i << " (u=" << PairFirst(indexed->keys()[i])
        << ", v=" << PairSecond(indexed->keys()[i]) << ")";
  }
}

const MappingKind kAllMappings[] = {
    MappingKind::kMaxPerRow, MappingKind::kInjectiveRow,
    MappingKind::kMaxBothSides, MappingKind::kInjectiveSym,
    MappingKind::kProduct};
const OmegaKind kAllOmegas[] = {OmegaKind::kSizeS1, OmegaKind::kSumSizes,
                                OmegaKind::kGeoMean, OmegaKind::kMaxSize,
                                OmegaKind::kProduct};

const char* MappingName(MappingKind kind) {
  switch (kind) {
    case MappingKind::kMaxPerRow: return "MaxPerRow";
    case MappingKind::kInjectiveRow: return "InjectiveRow";
    case MappingKind::kMaxBothSides: return "MaxBothSides";
    case MappingKind::kInjectiveSym: return "InjectiveSym";
    case MappingKind::kProduct: return "Product";
  }
  return "Unknown";
}

const char* OmegaName(OmegaKind kind) {
  switch (kind) {
    case OmegaKind::kSizeS1: return "SizeS1";
    case OmegaKind::kSumSizes: return "SumSizes";
    case OmegaKind::kGeoMean: return "GeoMean";
    case OmegaKind::kMaxSize: return "MaxSize";
    case OmegaKind::kProduct: return "Product";
  }
  return "Unknown";
}

using PathParam = std::tuple<MappingKind, OmegaKind, MatchingAlgo>;

class NeighborIndexPathEquivalence
    : public ::testing::TestWithParam<PathParam> {};

TEST_P(NeighborIndexPathEquivalence, IndexedMatchesFallback) {
  const auto [mapping, omega, matching] = GetParam();
  const Graph g = MakeDenseRandomGraph(/*seed=*/7 + static_cast<int>(omega));
  FSimConfig config;
  config.operator_override = OperatorConfig{mapping, omega};
  config.matching = matching;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-4;
  ExpectPathEquivalence(g, config, std::string(MappingName(mapping)) + "/" +
                                       OmegaName(omega));
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorCombinations, NeighborIndexPathEquivalence,
    ::testing::Combine(::testing::ValuesIn(kAllMappings),
                       ::testing::ValuesIn(kAllOmegas),
                       ::testing::Values(MatchingAlgo::kGreedy,
                                         MatchingAlgo::kHungarian)),
    [](const ::testing::TestParamInfo<PathParam>& param_info) {
      return std::string(MappingName(std::get<0>(param_info.param))) + "_" +
             OmegaName(std::get<1>(param_info.param)) + "_" +
             (std::get<2>(param_info.param) == MatchingAlgo::kHungarian
                  ? "Hungarian"
                  : "Greedy");
    });

TEST(NeighborIndexTest, UpperBoundAlphaEquivalence) {
  // Pruned pairs contribute α * bound through the tagged refs; the indexed
  // and fallback paths must agree on them for every variant.
  const Graph g = MakeDenseRandomGraph(11);
  for (SimVariant variant :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config;
    config.variant = variant;
    config.label_sim = LabelSimKind::kEditDistance;
    config.theta = 0.4;
    config.upper_bound = true;
    config.alpha = 0.3;
    config.beta = 0.6;
    config.epsilon = 1e-4;
    ExpectPathEquivalence(g, config,
                          std::string("ub-alpha variant ") +
                              std::to_string(static_cast<int>(variant)));
  }
}

TEST(NeighborIndexTest, UpperBoundAlphaZeroEquivalence) {
  // α = 0: pruned pairs are untracked and must be omitted from the index
  // (their fallback lookups return 0).
  const Graph g = MakeDenseRandomGraph(13);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.upper_bound = true;
  config.alpha = 0.0;
  config.beta = 0.6;
  config.epsilon = 1e-4;
  ExpectPathEquivalence(g, config, "ub-alpha-zero");
}

TEST(NeighborIndexTest, PinDiagonalEquivalence) {
  // SimRank semantics: diagonal pinned to 1, w+ = 0 (out-direction never
  // built), product operators.
  const Graph g = MakeDenseRandomGraph(17);
  FSimConfig config = SimRankFSimConfig(0.8);
  config.epsilon = 1e-4;
  ExpectPathEquivalence(g, config, "pin-diagonal simrank");
}

TEST(NeighborIndexTest, ThetaZeroEquivalence) {
  // θ = 0 admits every pair: the index covers the full N±(u) x N±(v)
  // products.
  const Graph g = MakeDenseRandomGraph(19, /*n=*/12);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.theta = 0.0;
  config.epsilon = 1e-4;
  ExpectPathEquivalence(g, config, "theta-zero");
}

TEST(NeighborIndexTest, PackedRefLayoutEquivalence) {
  // Degree-bounded graphs auto-select the packed 8-byte entry layout
  // (16-bit row/col); forcing the wide 12-byte layout must not change a
  // single score or iteration, and the packed index must be smaller.
  const Graph g = MakeDenseRandomGraph(29);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.epsilon = 1e-4;

  config.use_packed_neighbor_refs = true;
  auto packed = ComputeFSimSelf(g, config);
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(packed->stats().used_neighbor_index);
  EXPECT_TRUE(packed->stats().packed_neighbor_refs);

  config.use_packed_neighbor_refs = false;
  auto wide = ComputeFSimSelf(g, config);
  ASSERT_TRUE(wide.ok());
  ASSERT_TRUE(wide->stats().used_neighbor_index);
  EXPECT_FALSE(wide->stats().packed_neighbor_refs);

  EXPECT_LT(packed->stats().neighbor_index_bytes,
            wide->stats().neighbor_index_bytes);
  EXPECT_EQ(packed->stats().iterations, wide->stats().iterations);
  ASSERT_EQ(packed->keys().size(), wide->keys().size());
  for (size_t i = 0; i < packed->keys().size(); ++i) {
    ASSERT_EQ(packed->keys()[i], wide->keys()[i]);
    // Same enumeration, same refs, different storage width: bit-identical.
    ASSERT_EQ(packed->values()[i], wide->values()[i]) << "pair " << i;
  }
}

TEST(NeighborIndexTest, BudgetFallbackTriggers) {
  const Graph g = MakeDenseRandomGraph(23);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;

  config.neighbor_index_budget_bytes = 64;  // far below any real index
  auto tiny = ComputeFSimSelf(g, config);
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(tiny->stats().used_neighbor_index);
  EXPECT_EQ(tiny->stats().neighbor_index_bytes, 0u);

  config.neighbor_index_budget_bytes = 1ULL << 30;
  auto indexed = ComputeFSimSelf(g, config);
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed->stats().used_neighbor_index);
  EXPECT_LE(indexed->stats().neighbor_index_bytes, 1ULL << 30);
}
TEST(NeighborIndexTest, BoundedStagingBuildEquivalence) {
  // A budget that admits the index but not the one-pass build's transient
  // staging (which peaks near twice the final footprint) must select the
  // bounded count-then-fill build — same refs, bit-identical scores, and
  // no staging reported. θ = 0 with no pruning keeps every candidate
  // entry, so the final index footprint equals the pre-filter budget bound
  // and the cutover point is exact.
  const Graph g = MakeDenseRandomGraph(31, /*n=*/12);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.theta = 0.0;
  config.epsilon = 1e-4;

  config.neighbor_index_budget_bytes = 1ULL << 30;
  auto staged = ComputeFSimSelf(g, config);
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(staged->stats().used_neighbor_index);
  EXPECT_FALSE(staged->stats().neighbor_index_bounded_build);
  EXPECT_GT(staged->stats().neighbor_index_peak_staging_bytes, 0u);

  config.neighbor_index_budget_bytes = staged->stats().neighbor_index_bytes;
  auto bounded = ComputeFSimSelf(g, config);
  ASSERT_TRUE(bounded.ok());
  ASSERT_TRUE(bounded->stats().used_neighbor_index);
  EXPECT_TRUE(bounded->stats().neighbor_index_bounded_build);
  EXPECT_EQ(bounded->stats().neighbor_index_peak_staging_bytes, 0u);
  EXPECT_EQ(bounded->stats().neighbor_index_bytes,
            staged->stats().neighbor_index_bytes);

  ASSERT_EQ(bounded->keys().size(), staged->keys().size());
  for (size_t i = 0; i < bounded->keys().size(); ++i) {
    ASSERT_EQ(bounded->keys()[i], staged->keys()[i]);
    ASSERT_EQ(bounded->values()[i], staged->values()[i]) << "pair " << i;
  }
}

}  // namespace
}  // namespace fsim
