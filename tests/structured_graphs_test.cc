// Cross-validation battery on structured graphs with hand-derivable
// expectations: trees, cycles, bipartite and DAG shapes, swept over all four
// variants and both matching algorithms (parameterized). These pin down the
// semantics on shapes where the right answer is known by inspection, plus
// the bounded-simulation extension.
#include <gtest/gtest.h>

#include "core/fsim_engine.h"
#include "exact/bounded_simulation.h"
#include "exact/exact_simulation.h"
#include "graph/graph_builder.h"

namespace fsim {
namespace {

constexpr SimVariant kAllVariants[] = {
    SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
    SimVariant::kBijective};

/// Balanced binary tree of the given depth, all labels equal, edges parent
/// -> child. Returns the graph; node 0 is the root.
Graph BinaryTree(uint32_t depth, GraphBuilder* external = nullptr) {
  GraphBuilder own;
  GraphBuilder& b = external ? *external : own;
  const uint32_t nodes = (1u << (depth + 1)) - 1;
  for (uint32_t i = 0; i < nodes; ++i) b.AddNode("T");
  for (uint32_t i = 0; 2 * i + 2 < nodes; ++i) {
    b.AddEdge(i, 2 * i + 1);
    b.AddEdge(i, 2 * i + 2);
  }
  if (external) return Graph();
  return std::move(own).BuildOrDie();
}

/// Directed cycle of length n with a single label.
Graph Cycle(uint32_t n) {
  GraphBuilder b;
  for (uint32_t i = 0; i < n; ++i) b.AddNode("C");
  for (uint32_t i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  return std::move(b).BuildOrDie();
}

struct VariantAlgo {
  SimVariant variant;
  MatchingAlgo algo;
};

class StructuredSweep : public ::testing::TestWithParam<VariantAlgo> {
 protected:
  FSimConfig Config() const {
    FSimConfig config;
    config.variant = GetParam().variant;
    config.matching = GetParam().algo;
    config.epsilon = 1e-9;
    config.max_iterations = 100;
    return config;
  }
};

TEST_P(StructuredSweep, UniformCycleIsFullySelfSimilar) {
  Graph g = Cycle(6);
  auto scores = ComputeFSim(g, g, Config());
  ASSERT_TRUE(scores.ok());
  // Every rotation is an automorphism: all pairs are χ-similar for every χ.
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      EXPECT_DOUBLE_EQ(scores->Score(u, v), 1.0)
          << SimVariantName(GetParam().variant) << " (" << u << "," << v
          << ")";
    }
  }
}

TEST_P(StructuredSweep, CyclesOfDifferentLengthStillSimulate) {
  // Uniform-label cycles of any lengths simulate each other under every
  // variant (the infinite unrolling is identical; every node has exactly
  // one in and one out neighbor).
  GraphBuilder b1;
  for (int i = 0; i < 4; ++i) b1.AddNode("C");
  for (NodeId i = 0; i < 4; ++i) b1.AddEdge(i, (i + 1) % 4);
  Graph c4 = std::move(b1).BuildOrDie();
  GraphBuilder b2(c4.dict());
  for (int i = 0; i < 5; ++i) b2.AddNode("C");
  for (NodeId i = 0; i < 5; ++i) b2.AddEdge(i, (i + 1) % 5);
  Graph c5 = std::move(b2).BuildOrDie();
  auto scores = ComputeFSim(c4, c5, Config());
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->Score(0, 0), 1.0)
      << SimVariantName(GetParam().variant);
  BinaryRelation exact = MaxSimulation(c4, c5, GetParam().variant);
  EXPECT_TRUE(exact.Contains(0, 0));
}

TEST_P(StructuredSweep, TreeRootDepthGovernsSimilarity) {
  Graph deep = BinaryTree(3);
  GraphBuilder b2(deep.dict());
  BinaryTree(2, &b2);
  Graph shallow = std::move(b2).BuildOrDie();
  auto scores = ComputeFSim(shallow, deep, Config());
  ASSERT_TRUE(scores.ok());
  // Leaves of the shallow tree are mapped to internal nodes of the deep
  // tree only under variants without converse invariance.
  BinaryRelation exact = MaxSimulation(shallow, deep, GetParam().variant);
  const NodeId shallow_leaf = 3;  // depth-2 leaf
  const NodeId deep_internal = 3;  // depth-2 internal node (has children)
  const bool expected =
      !HasConverseInvariance(GetParam().variant);
  EXPECT_EQ(exact.Contains(shallow_leaf, deep_internal), expected)
      << SimVariantName(GetParam().variant);
  EXPECT_EQ(scores->Score(shallow_leaf, deep_internal) == 1.0, expected);
}

TEST_P(StructuredSweep, BipartiteLayersNeverCross) {
  // Two-layer bipartite graph with distinct layer labels: cross-layer pairs
  // score the structural floor (no label agreement, no vacuous neighbors).
  GraphBuilder b;
  NodeId a0 = b.AddNode("top");
  NodeId a1 = b.AddNode("top");
  NodeId c0 = b.AddNode("bottom");
  NodeId c1 = b.AddNode("bottom");
  b.AddEdge(a0, c0);
  b.AddEdge(a0, c1);
  b.AddEdge(a1, c0);
  b.AddEdge(a1, c1);
  Graph g = std::move(b).BuildOrDie();
  auto scores = ComputeFSim(g, g, Config());
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->Score(a0, a1), 1.0);
  EXPECT_DOUBLE_EQ(scores->Score(c0, c1), 1.0);
  EXPECT_LT(scores->Score(a0, c0), 0.5);
}

std::vector<VariantAlgo> AllCombos() {
  std::vector<VariantAlgo> combos;
  for (SimVariant v : kAllVariants) {
    combos.push_back({v, MatchingAlgo::kGreedy});
    combos.push_back({v, MatchingAlgo::kHungarian});
  }
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndAlgos, StructuredSweep, ::testing::ValuesIn(AllCombos()),
    [](const auto& param_info) {
      return std::string(SimVariantName(param_info.param.variant)) +
             (param_info.param.algo == MatchingAlgo::kGreedy ? "_greedy"
                                                       : "_hungarian");
    });

// ------------------------------------------------- Bounded simulation ----

TEST(BoundedSimulationTest, ClosureAddsTransitiveEdges) {
  // Path 0 -> 1 -> 2 -> 3.
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddNode("P");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  Graph g = std::move(b).BuildOrDie();
  Graph c1 = BoundedClosure(g, 1);
  EXPECT_EQ(c1.NumEdges(), 3u);
  Graph c2 = BoundedClosure(g, 2);
  EXPECT_EQ(c2.NumEdges(), 5u);  // + (0,2), (1,3)
  EXPECT_TRUE(c2.HasEdge(0, 2));
  EXPECT_FALSE(c2.HasEdge(0, 3));
  Graph c3 = BoundedClosure(g, 3);
  EXPECT_TRUE(c3.HasEdge(0, 3));
}

TEST(BoundedSimulationTest, QueryEdgeMatchesPath) {
  // Query edge A -> B; data has A -> X -> B (no direct edge).
  GraphBuilder qb;
  NodeId qa = qb.AddNode("A");
  NodeId qbn = qb.AddNode("B");
  qb.AddEdge(qa, qbn);
  Graph query = std::move(qb).BuildOrDie();
  GraphBuilder db(query.dict());
  NodeId da = db.AddNode("A");
  NodeId dx = db.AddNode("X");
  NodeId dbn = db.AddNode("B");
  db.AddEdge(da, dx);
  db.AddEdge(dx, dbn);
  Graph data = std::move(db).BuildOrDie();

  BinaryRelation strict = MaxBoundedSimulation(query, data, 1);
  EXPECT_FALSE(strict.Contains(qa, da));
  BinaryRelation relaxed = MaxBoundedSimulation(query, data, 2);
  EXPECT_TRUE(relaxed.Contains(qa, da));
}

TEST(BoundedSimulationTest, BoundOneEqualsSimpleSimulation) {
  GraphBuilder b;
  NodeId x = b.AddNode("A");
  NodeId y = b.AddNode("A");
  NodeId z = b.AddNode("B");
  b.AddEdge(x, z);
  b.AddEdge(y, z);
  Graph g = std::move(b).BuildOrDie();
  BinaryRelation bounded = MaxBoundedSimulation(g, g, 1);
  BinaryRelation simple = MaxSimulation(g, g, SimVariant::kSimple);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(bounded.Contains(u, v), simple.Contains(u, v));
    }
  }
}

TEST(BoundedSimulationTest, FractionalBoundedSimulationViaClosure) {
  // The paper's suggested route: feed the closure to FSimχ.
  GraphBuilder qb;
  NodeId qa = qb.AddNode("A");
  NodeId qbn = qb.AddNode("B");
  qb.AddEdge(qa, qbn);
  Graph query = std::move(qb).BuildOrDie();
  GraphBuilder db(query.dict());
  NodeId da = db.AddNode("A");
  NodeId dx = db.AddNode("X");
  NodeId dbn = db.AddNode("B");
  db.AddEdge(da, dx);
  db.AddEdge(dx, dbn);
  Graph data = std::move(db).BuildOrDie();

  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-9;
  config.max_iterations = 60;
  auto strict = ComputeFSim(query, data, config);
  auto relaxed = ComputeFSim(query, BoundedClosure(data, 2), config);
  ASSERT_TRUE(strict.ok() && relaxed.ok());
  EXPECT_LT(strict->Score(qa, da), 1.0);
  EXPECT_DOUBLE_EQ(relaxed->Score(qa, da), 1.0);
}

}  // namespace
}  // namespace fsim
