// Tests for the graph substrate: CSR model, builder, I/O round trips,
// generators (shape properties), noise injectors, subgraphs/balls, traversal
// and stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/noise.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "tests/test_graphs.h"

namespace fsim {
namespace {

Graph MakeDiamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("B");
  b.AddNode("B");
  b.AddNode("C");
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).BuildOrDie();
}

// ------------------------------------------------------------- LabelDict --

TEST(LabelDictTest, InternIsIdempotent) {
  LabelDict dict;
  LabelId a = dict.Intern("x");
  LabelId b = dict.Intern("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("x"), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "x");
  EXPECT_EQ(dict.Find("y"), b);
  EXPECT_EQ(dict.Find("zzz"), kInvalidNode);
}

// ----------------------------------------------------------------- Graph --

TEST(GraphTest, CsrNeighborsAreSortedAndComplete) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  auto out0 = g.OutNeighbors(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_EQ(out0[1], 2u);
  auto in3 = g.InNeighbors(3);
  ASSERT_EQ(in3.size(), 2u);
  EXPECT_EQ(in3[0], 1u);
  EXPECT_EQ(in3[1], 2u);
  EXPECT_EQ(g.OutDegree(3), 0u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(GraphTest, LabelsAndNames) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.LabelName(0), "A");
  EXPECT_EQ(g.LabelName(1), "B");
  EXPECT_EQ(g.Label(1), g.Label(2));
  EXPECT_EQ(g.NumDistinctLabels(), 3u);
}

TEST(GraphTest, HasEdge) {
  Graph g = MakeDiamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(GraphTest, DegreeStats) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.MaxOutDegree(), 2u);
  EXPECT_EQ(g.MaxInDegree(), 2u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(GraphTest, BuilderDedupsParallelEdges) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("A");
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  Graph g = std::move(b).BuildOrDie();
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, BuilderRejectsOutOfRangeEdge) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddEdge(0, 5);
  auto result = std::move(b).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GraphTest, SharedDictAcrossBuilders) {
  GraphBuilder b1;
  b1.AddNode("X");
  Graph g1 = std::move(b1).BuildOrDie();
  GraphBuilder b2(g1.dict());
  b2.AddNode("X");
  b2.AddNode("Y");
  Graph g2 = std::move(b2).BuildOrDie();
  EXPECT_EQ(g1.dict(), g2.dict());
  EXPECT_EQ(g1.Label(0), g2.Label(0));
}

TEST(GraphTest, AsUndirectedUnionsNeighborsAndDropsIn) {
  Graph g = MakeDiamond();
  Graph u = g.AsUndirected();
  EXPECT_EQ(u.NumNodes(), 4u);
  auto n1 = u.OutNeighbors(1);  // node 1 had in {0} and out {3}
  ASSERT_EQ(n1.size(), 2u);
  EXPECT_EQ(n1[0], 0u);
  EXPECT_EQ(n1[1], 3u);
  EXPECT_EQ(u.InDegree(1), 0u);
  EXPECT_EQ(u.dict(), g.dict());
}

TEST(GraphTest, EmptyGraph) {
  GraphBuilder b;
  Graph g = std::move(b).BuildOrDie();
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

// -------------------------------------------------------------- Graph IO --

TEST(GraphIoTest, RoundTrip) {
  Graph g = MakeDiamond();
  std::string text = GraphToString(g);
  auto loaded = LoadGraphFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(loaded->LabelName(u), g.LabelName(u));
    auto a = g.OutNeighbors(u);
    auto b = loaded->OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto g = LoadGraphFromString("# header\n\nv 0 A\nv 1 B\n\ne 0 1\n");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphIoTest, RejectsNonDenseIds) {
  auto g = LoadGraphFromString("v 1 A\n");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

TEST(GraphIoTest, RejectsMalformedRecords) {
  EXPECT_FALSE(LoadGraphFromString("v 0\n").ok());
  EXPECT_FALSE(LoadGraphFromString("e 0\n").ok());
  EXPECT_FALSE(LoadGraphFromString("x 0 1\n").ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  Graph g = MakeDiamond();
  const std::string path = ::testing::TempDir() + "/fsim_io_test.graph";
  ASSERT_TRUE(SaveGraphToFile(g, path).ok());
  auto loaded = LoadGraphFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
}

TEST(GraphIoTest, MissingFileIsIOError) {
  auto g = LoadGraphFromFile("/nonexistent/path/zzz.graph");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

// ------------------------------------------------------------ Generators --

TEST(GeneratorsTest, ErdosRenyiShape) {
  LabelingOptions lo;
  lo.num_labels = 5;
  Graph g = ErdosRenyi(200, 800, lo, 1);
  EXPECT_EQ(g.NumNodes(), 200u);
  EXPECT_EQ(g.NumEdges(), 800u);
  EXPECT_LE(g.NumDistinctLabels(), 5u);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_FALSE(g.HasEdge(u, u)) << "self loop at " << u;
  }
}

TEST(GeneratorsTest, ErdosRenyiDeterministicInSeed) {
  LabelingOptions lo;
  Graph a = ErdosRenyi(100, 300, lo, 42);
  LabelingOptions lo2;
  Graph b = ErdosRenyi(100, 300, lo2, 42);
  EXPECT_EQ(GraphToString(a), GraphToString(b));
}

TEST(GeneratorsTest, PowerLawGraphRespectsCapsAndAverage) {
  PowerLawOptions opts;
  opts.n = 2000;
  opts.avg_degree = 4.0;
  opts.max_out_degree = 50;
  opts.max_in_degree = 80;
  LabelingOptions lo;
  lo.num_labels = 10;
  Graph g = PowerLawGraph(opts, lo, 7);
  EXPECT_EQ(g.NumNodes(), 2000u);
  EXPECT_LE(g.MaxOutDegree(), 50u);
  EXPECT_LE(g.MaxInDegree(), 80u);
  // Duplicate discards shave some edges; stay within 40% of the target.
  EXPECT_GT(g.NumEdges(), 2000 * 4 * 0.6);
  EXPECT_LE(g.NumEdges(), 2000 * 4);
}

TEST(GeneratorsTest, PreferentialAttachmentCreatesHubs) {
  LabelingOptions lo;
  lo.num_labels = 3;
  Graph g = PreferentialAttachment(1000, 3, lo, 9);
  EXPECT_EQ(g.NumNodes(), 1000u);
  // The max in-degree hub should far exceed the average degree.
  EXPECT_GT(g.MaxInDegree(), 20u);
}

TEST(GeneratorsTest, SharedDictAcrossGenerated) {
  LabelingOptions lo;
  lo.num_labels = 4;
  lo.dict = std::make_shared<LabelDict>();
  Graph a = ErdosRenyi(50, 100, lo, 1);
  Graph b = ErdosRenyi(60, 120, lo, 2);
  EXPECT_EQ(a.dict(), b.dict());
}

// ----------------------------------------------------------------- Noise --

TEST(NoiseTest, PerturbStructureChangesEdgeCount) {
  LabelingOptions lo;
  Graph g = ErdosRenyi(300, 1200, lo, 3);
  Graph removed = PerturbStructure(g, 0.0, 0.25, 11);
  EXPECT_EQ(removed.NumEdges(), 900u);
  Graph added = PerturbStructure(g, 0.25, 0.0, 12);
  EXPECT_NEAR(static_cast<double>(added.NumEdges()), 1500.0, 30.0);
  EXPECT_EQ(added.dict(), g.dict());
}

TEST(NoiseTest, PerturbLabelsMissingMode) {
  LabelingOptions lo;
  lo.num_labels = 6;
  Graph g = ErdosRenyi(200, 400, lo, 4);
  Graph noisy = PerturbLabels(g, 0.2, LabelNoiseMode::kMissing, 13);
  size_t changed = 0;
  const LabelId missing = noisy.dict()->Find("?");
  ASSERT_NE(missing, kInvalidNode);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (noisy.Label(u) != g.Label(u)) {
      ++changed;
      EXPECT_EQ(noisy.Label(u), missing);
    }
  }
  EXPECT_EQ(changed, 40u);
  // Structure unchanged.
  EXPECT_EQ(noisy.NumEdges(), g.NumEdges());
}

TEST(NoiseTest, PerturbLabelsRandomModeChangesToExistingLabels) {
  LabelingOptions lo;
  lo.num_labels = 6;
  Graph g = ErdosRenyi(200, 400, lo, 5);
  const size_t dict_before = g.dict()->size();
  Graph noisy = PerturbLabels(g, 0.3, LabelNoiseMode::kRandom, 14);
  size_t changed = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (noisy.Label(u) != g.Label(u)) {
      ++changed;
      EXPECT_LT(noisy.Label(u), dict_before);
    }
  }
  EXPECT_EQ(changed, 60u);
}

TEST(NoiseTest, ZeroFractionIsIdentity) {
  LabelingOptions lo;
  Graph g = ErdosRenyi(100, 300, lo, 6);
  Graph same = PerturbStructure(g, 0.0, 0.0, 15);
  EXPECT_EQ(GraphToString(same), GraphToString(g));
}

TEST(NoiseTest, ScaleDensityMultipliesEdges) {
  LabelingOptions lo;
  Graph g = ErdosRenyi(400, 800, lo, 7);
  Graph denser = ScaleDensity(g, 3.0, 16);
  EXPECT_NEAR(static_cast<double>(denser.NumEdges()), 2400.0, 60.0);
  // Original edges all survive.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      EXPECT_TRUE(denser.HasEdge(u, v));
    }
  }
}

// -------------------------------------------------------------- Subgraph --

TEST(SubgraphTest, InducedSubgraphKeepsInternalEdges) {
  Graph g = MakeDiamond();
  Subgraph sub = InducedSubgraph(g, {0, 1, 3});
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  // Edges 0->1 and 1->3 survive; 0->2->3 path does not.
  EXPECT_EQ(sub.graph.NumEdges(), 2u);
  EXPECT_EQ(sub.graph.dict(), g.dict());
  // Mappings are mutually inverse.
  for (NodeId local = 0; local < sub.graph.NumNodes(); ++local) {
    EXPECT_EQ(sub.from_parent[sub.to_parent[local]], local);
    EXPECT_EQ(sub.graph.Label(local), g.Label(sub.to_parent[local]));
  }
  EXPECT_EQ(sub.from_parent[2], kInvalidNode);
}

TEST(SubgraphTest, DuplicateInputNodesIgnored) {
  Graph g = MakeDiamond();
  Subgraph sub = InducedSubgraph(g, {1, 1, 1});
  EXPECT_EQ(sub.graph.NumNodes(), 1u);
  EXPECT_EQ(sub.graph.NumEdges(), 0u);
}

TEST(SubgraphTest, BallRadiusOne) {
  Graph g = MakeDiamond();
  auto nodes = BallNodes(g, 0, 1);
  std::set<NodeId> set(nodes.begin(), nodes.end());
  EXPECT_EQ(set, (std::set<NodeId>{0, 1, 2}));
  Subgraph ball = Ball(g, 0, 1);
  EXPECT_EQ(ball.graph.NumNodes(), 3u);
}

TEST(SubgraphTest, BallCoversComponentAtLargeRadius) {
  Graph g = MakeDiamond();
  auto nodes = BallNodes(g, 3, 10);
  EXPECT_EQ(nodes.size(), 4u);
}

// ------------------------------------------------------------- Traversal --

TEST(TraversalTest, BfsDistancesUndirected) {
  Graph g = MakeDiamond();
  auto dist = BfsDistances(g, 3, /*undirected=*/true);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
  EXPECT_EQ(dist[0], 2u);
}

TEST(TraversalTest, BfsDistancesDirectedOnly) {
  Graph g = MakeDiamond();
  auto dist = BfsDistances(g, 3, /*undirected=*/false);
  EXPECT_EQ(dist[3], 0u);
  EXPECT_EQ(dist[0], kUnreachable);
}

TEST(TraversalTest, ExactDiameter) {
  Graph g = MakeDiamond();
  EXPECT_EQ(ExactDiameter(g), 2u);
}

TEST(TraversalTest, ComponentsAndConnectivity) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode("A");
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = std::move(b).BuildOrDie();
  uint32_t count = 0;
  auto comp = WeaklyConnectedComponents(g, &count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_FALSE(IsWeaklyConnected(g));
  EXPECT_TRUE(IsWeaklyConnected(MakeDiamond()));
}

// ----------------------------------------------------------------- Stats --

TEST(GraphStatsTest, MatchesDirectQueries) {
  Graph g = MakeDiamond();
  GraphStats s = ComputeStats(g);
  EXPECT_EQ(s.num_nodes, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.num_labels, 3u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_NE(StatsToString(s).find("|V|=4"), std::string::npos);
}

// ------------------------------------------------------- Figure 1 fixture --

TEST(Figure1Test, ShapeMatchesThePaper) {
  auto fig = testing::MakeFigure1();
  EXPECT_EQ(fig.pattern.NumNodes(), 4u);
  EXPECT_EQ(fig.pattern.OutDegree(fig.u), 3u);
  EXPECT_EQ(fig.pattern.InDegree(fig.u), 0u);
  EXPECT_EQ(fig.data.OutDegree(fig.v1), 1u);
  EXPECT_EQ(fig.data.OutDegree(fig.v2), 2u);
  EXPECT_EQ(fig.data.OutDegree(fig.v3), 4u);
  EXPECT_EQ(fig.data.OutDegree(fig.v4), 3u);
  EXPECT_EQ(fig.pattern.dict(), fig.data.dict());
  EXPECT_EQ(fig.pattern.Label(fig.u), fig.data.Label(fig.v1));
}

}  // namespace
}  // namespace fsim
