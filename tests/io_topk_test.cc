// Tests for binary graph serialization (graph/binary_io.h) — round-trips
// plus defensive-decoding failure injection — and for the certified global
// top-k pair search (core/topk_allpairs.h).
#include <cstdio>
#include <cstring>
#include <string>

#include "common/hash.h"
#include "core/fsim_engine.h"
#include "core/topk_allpairs.h"
#include "graph/binary_io.h"
#include "graph/graph_io.h"
#include "gtest/gtest.h"
#include "test_graphs.h"

namespace fsim {
namespace {

using ::fsim::testing::MakeRandomPair;

// Rewrites the trailing checksum so a deliberately patched payload passes
// the integrity check and exercises the *semantic* validation behind it.
void FixChecksum(std::string* bytes) {
  const size_t payload_end = bytes->size() - 8;
  const uint64_t checksum =
      HashBytes(bytes->data() + 8, payload_end - 8);
  std::memcpy(bytes->data() + payload_end, &checksum, 8);
}

// ---------------------------------------------------------------------------
// Binary graph I/O: round trips
// ---------------------------------------------------------------------------

TEST(BinaryIO, RoundTripsRandomGraphs) {
  for (uint64_t seed : {131u, 132u, 133u}) {
    auto pair = MakeRandomPair(seed, 20, 20, 5);
    const Graph& g = pair.g1;
    std::string bytes = GraphToBinary(g);
    auto loaded = GraphFromBinary(bytes);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    // The canonical text serialization is a structural fingerprint.
    EXPECT_EQ(GraphToString(g), GraphToString(*loaded)) << "seed " << seed;
  }
}

TEST(BinaryIO, RoundTripsEmptyAndEdgelessGraphs) {
  GraphBuilder b;
  b.AddNode("only");
  Graph g = std::move(b).BuildOrDie();
  auto loaded = GraphFromBinary(GraphToBinary(g));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 1u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
  EXPECT_EQ(loaded->LabelName(0), "only");
}

TEST(BinaryIO, RoundTripsThroughFile) {
  auto pair = MakeRandomPair(134);
  const std::string path = ::testing::TempDir() + "/fsim_binary_io_test.bin";
  ASSERT_TRUE(SaveGraphBinaryToFile(pair.g1, path).ok());
  auto loaded = LoadGraphBinaryFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(GraphToString(pair.g1), GraphToString(*loaded));
  std::remove(path.c_str());
}

TEST(BinaryIO, LoadsIntoSharedDictWithRemappedIds) {
  auto pair = MakeRandomPair(135);
  std::string bytes = GraphToBinary(pair.g2);

  // A target dictionary that already contains unrelated labels, so the
  // stored ids cannot be reused verbatim.
  auto dict = std::make_shared<LabelDict>();
  dict->Intern("pre-existing-a");
  dict->Intern("pre-existing-b");
  auto loaded = GraphFromBinary(bytes, dict);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dict(), dict);
  for (NodeId u = 0; u < loaded->NumNodes(); ++u) {
    EXPECT_EQ(loaded->LabelName(u), pair.g2.LabelName(u));
  }
}

TEST(BinaryIO, LoadedGraphComputesIdenticalFSimScores) {
  auto pair = MakeRandomPair(136);
  auto dict = std::make_shared<LabelDict>();
  auto g1 = GraphFromBinary(GraphToBinary(pair.g1), dict);
  auto g2 = GraphFromBinary(GraphToBinary(pair.g2), dict);
  ASSERT_TRUE(g1.ok() && g2.ok());

  FSimConfig config;
  auto original = ComputeFSim(pair.g1, pair.g2, config);
  auto reloaded = ComputeFSim(*g1, *g2, config);
  ASSERT_TRUE(original.ok() && reloaded.ok());
  for (uint64_t key : original->keys()) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    EXPECT_DOUBLE_EQ(original->Score(u, v), reloaded->Score(u, v));
  }
}

// ---------------------------------------------------------------------------
// Binary graph I/O: failure injection
// ---------------------------------------------------------------------------

TEST(BinaryIO, RejectsBadMagic) {
  auto pair = MakeRandomPair(141);
  std::string bytes = GraphToBinary(pair.g1);
  bytes[0] = 'X';
  auto loaded = GraphFromBinary(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(BinaryIO, RejectsCorruptedPayload) {
  auto pair = MakeRandomPair(142);
  std::string bytes = GraphToBinary(pair.g1);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-payload
  auto loaded = GraphFromBinary(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(BinaryIO, EveryTruncationFailsCleanly) {
  auto pair = MakeRandomPair(143, 6, 6, 2);
  std::string bytes = GraphToBinary(pair.g1);
  // Sweep all prefix lengths: none may crash, all must report an error.
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto loaded = GraphFromBinary(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(loaded.ok()) << "prefix length " << len;
  }
}

TEST(BinaryIO, RejectsUnsupportedVersion) {
  auto pair = MakeRandomPair(144);
  std::string bytes = GraphToBinary(pair.g1);
  uint32_t bad_version = 99;
  std::memcpy(bytes.data() + 8, &bad_version, 4);
  FixChecksum(&bytes);
  auto loaded = GraphFromBinary(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(BinaryIO, RejectsNonZeroFlags) {
  auto pair = MakeRandomPair(145);
  std::string bytes = GraphToBinary(pair.g1);
  uint32_t flags = 1;
  std::memcpy(bytes.data() + 12, &flags, 4);
  FixChecksum(&bytes);
  auto loaded = GraphFromBinary(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(BinaryIO, RejectsOversizedNodeCount) {
  auto pair = MakeRandomPair(146);
  std::string bytes = GraphToBinary(pair.g1);
  uint64_t huge = 1ULL << 40;
  std::memcpy(bytes.data() + 16, &huge, 8);  // num_nodes field
  FixChecksum(&bytes);
  auto loaded = GraphFromBinary(bytes);
  ASSERT_FALSE(loaded.ok());
}

TEST(BinaryIO, RejectsOversizedEdgeAndLabelCounts) {
  // Header counts sized to provoke giant allocations (or uint64 overflow in
  // a naive size check) must be rejected before any allocation happens.
  auto pair = MakeRandomPair(147);
  for (size_t field_offset : {24u, 32u}) {  // num_edges, num_labels
    for (uint64_t huge : {1ULL << 40, 1ULL << 61}) {
      std::string bytes = GraphToBinary(pair.g1);
      std::memcpy(bytes.data() + field_offset, &huge, 8);
      FixChecksum(&bytes);
      auto loaded = GraphFromBinary(bytes);
      ASSERT_FALSE(loaded.ok())
          << "offset " << field_offset << " value " << huge;
      EXPECT_TRUE(loaded.status().IsIOError());
    }
  }
}

TEST(BinaryIO, RejectsOutOfRangeEdge) {
  // A 2-node, 1-edge graph: the edge record sits in the last 8 payload
  // bytes; patch its target out of range.
  GraphBuilder b;
  NodeId x = b.AddNode("x");
  NodeId y = b.AddNode("y");
  b.AddEdge(x, y);
  Graph g = std::move(b).BuildOrDie();
  std::string bytes = GraphToBinary(g);
  uint32_t bad = 7;
  std::memcpy(bytes.data() + bytes.size() - 12, &bad, 4);  // edge dst
  FixChecksum(&bytes);
  auto loaded = GraphFromBinary(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST(BinaryIO, MissingFileIsIOError) {
  auto loaded = LoadGraphBinaryFromFile("/nonexistent/fsim.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

// ---------------------------------------------------------------------------
// Certified all-pairs top-k
// ---------------------------------------------------------------------------

TEST(TopKPairs, MatchesBruteForceOnConvergedScores) {
  for (uint64_t seed : {151u, 152u, 153u}) {
    auto pair = MakeRandomPair(seed);
    FSimConfig config;
    config.variant = SimVariant::kBijective;
    config.epsilon = 1e-10;

    TopKPairsOptions options;
    options.k = 5;
    auto topk = ComputeTopKPairs(pair.g1, pair.g2, config, options);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    ASSERT_EQ(topk->pairs.size(), 5u);

    auto full = ComputeFSim(pair.g1, pair.g2, config);
    ASSERT_TRUE(full.ok());
    // Brute force: sort all pairs by converged score.
    std::vector<std::pair<double, uint64_t>> all;
    for (size_t i = 0; i < full->keys().size(); ++i) {
      all.emplace_back(full->values()[i], full->keys()[i]);
    }
    std::sort(all.begin(), all.end(), std::greater<>());

    if (topk->certified) {
      for (size_t i = 0; i < 5; ++i) {
        bool found = false;
        for (size_t j = 0; j < 5; ++j) {
          if (topk->pairs[i].u == PairFirst(all[j].second) &&
              topk->pairs[i].v == PairSecond(all[j].second)) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "seed " << seed << ": certified pair "
                           << topk->pairs[i].u << "," << topk->pairs[i].v
                           << " not in brute-force top-5";
      }
    }
    // The reported scores are within the radius of the converged ones.
    for (const auto& p : topk->pairs) {
      EXPECT_NEAR(p.score, full->Score(p.u, p.v), topk->radius + 1e-9);
    }
  }
}

TEST(TopKPairs, EarlyTerminationSavesIterations) {
  auto pair = MakeRandomPair(161, 20, 20, 4);
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-10;  // full convergence would need many sweeps
  TopKPairsOptions options;
  options.k = 3;
  auto topk = ComputeTopKPairs(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(topk.ok());
  EXPECT_LE(topk->iterations, topk->iteration_bound);
  if (topk->certified) {
    // Early certification beats the Corollary 1 bound.
    EXPECT_LT(topk->iterations, topk->iteration_bound);
  }
}

TEST(TopKPairs, ScoresAreDescending) {
  auto pair = MakeRandomPair(162);
  TopKPairsOptions options;
  options.k = 10;
  auto topk = ComputeTopKPairs(pair.g1, pair.g2, FSimConfig{}, options);
  ASSERT_TRUE(topk.ok());
  for (size_t i = 1; i < topk->pairs.size(); ++i) {
    EXPECT_GE(topk->pairs[i - 1].score, topk->pairs[i].score);
  }
}

TEST(TopKPairs, ZeroKRejected) {
  auto pair = MakeRandomPair(163);
  TopKPairsOptions options;
  options.k = 0;
  auto topk = ComputeTopKPairs(pair.g1, pair.g2, FSimConfig{}, options);
  ASSERT_FALSE(topk.ok());
  EXPECT_TRUE(topk.status().IsInvalidArgument());
}

TEST(TopKPairs, KLargerThanPairCountReturnsEverything) {
  auto pair = MakeRandomPair(164, 4, 4, 2);
  FSimConfig config;
  TopKPairsOptions options;
  options.k = 1000;
  auto topk = ComputeTopKPairs(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->pairs.size(), 16u);  // 4 x 4 candidate pairs at theta = 0
  EXPECT_TRUE(topk->certified);
}

TEST(TopKPairs, ExcludeDiagonalSkipsSelfPairs) {
  auto pair = MakeRandomPair(165, 8, 8, 2);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  TopKPairsOptions options;
  options.k = 6;
  options.exclude_diagonal = true;
  auto topk = ComputeTopKPairs(pair.g1, pair.g1, config, options);
  ASSERT_TRUE(topk.ok());
  for (const auto& p : topk->pairs) {
    EXPECT_NE(p.u, p.v);
  }
}

TEST(TopKPairs, ConvergeScoresTightensRadius) {
  auto pair = MakeRandomPair(166);
  FSimConfig config;
  config.epsilon = 1e-8;
  TopKPairsOptions quick;
  quick.k = 3;
  TopKPairsOptions tight = quick;
  tight.converge_scores = true;
  auto fast = ComputeTopKPairs(pair.g1, pair.g2, config, quick);
  auto full = ComputeTopKPairs(pair.g1, pair.g2, config, tight);
  ASSERT_TRUE(fast.ok() && full.ok());
  EXPECT_LE(full->radius, fast->radius + 1e-15);
  EXPECT_GE(full->iterations, fast->iterations);
}

TEST(TopKPairs, WorksWithThetaAndUpperBoundOptimizations) {
  auto pair = MakeRandomPair(167, 15, 15, 3);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.theta = 1.0;
  config.upper_bound = true;
  config.beta = 0.3;
  TopKPairsOptions options;
  options.k = 4;
  auto topk = ComputeTopKPairs(pair.g1, pair.g2, config, options);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  EXPECT_LE(topk->pairs.size(), 4u);
  // Same-label candidates only: every returned pair has equal labels.
  for (const auto& p : topk->pairs) {
    EXPECT_EQ(pair.g1.Label(p.u), pair.g2.Label(p.v));
  }
}

}  // namespace
}  // namespace fsim
