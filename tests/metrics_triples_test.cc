// Tests for Kendall's τ-b (eval/metrics.h) — validated against a brute-force
// O(n²) pair count — and for the RDF-style triple reification loader
// (graph/triples.h).
#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/fsim_engine.h"
#include "eval/metrics.h"
#include "exact/exact_simulation.h"
#include "graph/triples.h"
#include "gtest/gtest.h"
#include "test_graphs.h"

namespace fsim {
namespace {

// ---------------------------------------------------------------------------
// Kendall's tau
// ---------------------------------------------------------------------------

// O(n^2) reference implementation of tau-b.
double KendallTauBrute(const std::vector<double>& x,
                       const std::vector<double>& y) {
  const size_t n = x.size();
  int64_t concordant = 0, discordant = 0;
  int64_t ties_x = 0, ties_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        ++ties_x;
        ++ties_y;
      } else if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if (dx * dy > 0.0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  const double denom_x = n0 - static_cast<double>(ties_x);
  const double denom_y = n0 - static_cast<double>(ties_y);
  if (denom_x <= 0.0 || denom_y <= 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) /
         std::sqrt(denom_x * denom_y);
}

TEST(KendallTau, PerfectAgreementIsOne) {
  std::vector<double> x = {0.1, 0.5, 0.2, 0.9, 0.7};
  EXPECT_DOUBLE_EQ(KendallTau(x, x), 1.0);
}

TEST(KendallTau, PerfectReversalIsMinusOne) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(x, y), -1.0);
}

TEST(KendallTau, ConstantSampleIsZero) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {7, 7, 7};
  EXPECT_DOUBLE_EQ(KendallTau(x, y), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau(y, x), 0.0);
}

TEST(KendallTau, TinySamples) {
  EXPECT_DOUBLE_EQ(KendallTau({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTau({1.0, 2.0}, {3.0, 4.0}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1.0, 2.0}, {4.0, 3.0}), -1.0);
}

TEST(KendallTau, MatchesBruteForceOnRandomSamples) {
  Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.NextBounded(60);
    std::vector<double> x(n), y(n);
    for (size_t i = 0; i < n; ++i) {
      // Coarse grid so ties actually occur.
      x[i] = static_cast<double>(rng.NextBounded(8)) / 8.0;
      y[i] = static_cast<double>(rng.NextBounded(8)) / 8.0;
    }
    EXPECT_NEAR(KendallTau(x, y), KendallTauBrute(x, y), 1e-12)
        << "trial " << trial << " n=" << n;
  }
}

TEST(KendallTau, SymmetricInArguments) {
  Rng rng(0xFACE);
  std::vector<double> x(40), y(40);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextDouble();
    y[i] = rng.NextDouble();
  }
  EXPECT_NEAR(KendallTau(x, y), KendallTau(y, x), 1e-12);
}

TEST(KendallTau, ScoreContainerVariant) {
  auto pair = ::fsim::testing::MakeRandomPair(171);
  FSimConfig config;
  auto a = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(a.ok());
  // Self-agreement is perfect rank agreement.
  EXPECT_DOUBLE_EQ(KendallTauScores(*a, *a), 1.0);
  // Against a differently-parameterized run: high but not perfect, and
  // within [-1, 1].
  config.w_out = 0.2;
  config.w_in = 0.2;
  auto b = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(b.ok());
  const double tau = KendallTauScores(*a, *b);
  EXPECT_GT(tau, 0.3);
  EXPECT_LE(tau, 1.0);
}

// ---------------------------------------------------------------------------
// Triple reification
// ---------------------------------------------------------------------------

constexpr const char* kTinyRdf = R"(
# people and employers
n alice Person
n bob Person
n acme Company
t alice worksFor acme
t bob worksFor acme
t alice knows bob
)";

TEST(Triples, ParsesEntitiesAndReifiesPredicates) {
  auto result = LoadTriplesFromString(kTinyRdf);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_triples, 3u);
  EXPECT_EQ(result->entities.size(), 3u);
  // 3 entities + 3 reified predicate nodes.
  EXPECT_EQ(result->graph.NumNodes(), 6u);
  EXPECT_EQ(result->graph.NumEdges(), 6u);

  const NodeId alice = result->entities.at("alice");
  const NodeId acme = result->entities.at("acme");
  EXPECT_EQ(result->graph.LabelName(alice), "Person");
  EXPECT_EQ(result->graph.LabelName(acme), "Company");

  // alice -> r -> acme with r labeled "rel:worksFor".
  bool found = false;
  for (NodeId r : result->graph.OutNeighbors(alice)) {
    if (result->graph.LabelName(r) == "rel:worksFor" &&
        result->graph.HasEdge(r, acme)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Triples, UndeclaredEntitiesGetDefaultLabel) {
  auto result = LoadTriplesFromString("t x likes y\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.LabelName(result->entities.at("x")), "entity");
  EXPECT_EQ(result->graph.LabelName(result->entities.at("y")), "entity");
}

TEST(Triples, DuplicateTriplesCollapse) {
  auto result = LoadTriplesFromString(
      "t a p b\n"
      "t a p b\n"
      "t a p b\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_triples, 1u);
  EXPECT_EQ(result->graph.NumNodes(), 3u);  // a, b, one reified p
}

TEST(Triples, SelfLoopsAndParallelPredicatesAreDistinct) {
  auto result = LoadTriplesFromString(
      "t a p a\n"
      "t a q a\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_triples, 2u);
  EXPECT_EQ(result->graph.NumNodes(), 3u);  // a + two reified nodes
}

TEST(Triples, MalformedRecordsReportLineNumbers) {
  auto bad_arity = LoadTriplesFromString("t a p\n");
  ASSERT_FALSE(bad_arity.ok());
  EXPECT_TRUE(bad_arity.status().IsInvalidArgument());
  EXPECT_NE(bad_arity.status().message().find("line 1"), std::string::npos);

  auto bad_type = LoadTriplesFromString("# fine\nq a b c\n");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().message().find("line 2"), std::string::npos);

  auto bad_decl = LoadTriplesFromString("n onlyname\n");
  ASSERT_FALSE(bad_decl.ok());
  EXPECT_TRUE(bad_decl.status().IsInvalidArgument());
}

TEST(Triples, CustomOptionsControlLabels) {
  ReifyOptions options;
  options.default_entity_label = "thing";
  options.predicate_label_prefix = "";
  auto result = LoadTriplesFromString("t a p b\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.LabelName(result->entities.at("a")), "thing");
  // The reified node is the one that is neither a nor b.
  const NodeId a = result->entities.at("a");
  const NodeId r = result->graph.OutNeighbors(a)[0];
  EXPECT_EQ(result->graph.LabelName(r), "p");
}

TEST(Triples, SharedDictEnablesCrossGraphSimulation) {
  // Two versions of a tiny knowledge graph; edge labels must distinguish
  // worksFor from knows, which plain node-labeled encoding would lose.
  auto dict = std::make_shared<LabelDict>();
  auto v1 = LoadTriplesFromString(
      "n alice Person\nn acme Company\nt alice worksFor acme\n", {}, dict);
  auto v2 = LoadTriplesFromString(
      "n alice Person\nn acme Company\nt alice knows acme\n", {}, dict);
  ASSERT_TRUE(v1.ok() && v2.ok());

  // alice@v1 is NOT simulated by alice@v2: her worksFor relationship has no
  // counterpart (the predicates differ).
  BinaryRelation rel =
      MaxSimulation(v1->graph, v2->graph, SimVariant::kSimple);
  EXPECT_FALSE(
      rel.Contains(v1->entities.at("alice"), v2->entities.at("alice")));

  // With identical predicates, she is.
  auto v3 = LoadTriplesFromString(
      "n alice Person\nn acme Company\nt alice worksFor acme\n", {}, dict);
  BinaryRelation rel2 =
      MaxSimulation(v1->graph, v3->graph, SimVariant::kSimple);
  EXPECT_TRUE(
      rel2.Contains(v1->entities.at("alice"), v3->entities.at("alice")));
}

TEST(Triples, FractionalScoresQuantifyPredicateOverlap) {
  auto dict = std::make_shared<LabelDict>();
  // alice has 3 relations; bob shares 2 of them.
  auto ga = LoadTriplesFromString(
      "t alice worksFor acme\nt alice knows carol\nt alice owns car\n", {},
      dict);
  auto gb = LoadTriplesFromString(
      "t bob worksFor acme\nt bob knows carol\n", {}, dict);
  ASSERT_TRUE(ga.ok() && gb.ok());
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  auto scores = ComputeFSim(ga->graph, gb->graph, config);
  ASSERT_TRUE(scores.ok());
  const double sim = scores->Score(ga->entities.at("alice"),
                                   gb->entities.at("bob"));
  EXPECT_GT(sim, 0.5);  // substantial overlap
  EXPECT_LT(sim, 1.0);  // but not full simulation (owns is uncovered)
}

TEST(Triples, MissingFileIsIOError) {
  auto result = LoadTriplesFromFile("/nonexistent/data.ttl");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

}  // namespace
}  // namespace fsim
