// Tests for the work-stealing scheduler (common/thread_pool.h) and the
// multi-thread determinism contracts built on it: every parallel-for
// primitive must cover its range exactly once under adversarially skewed
// per-index costs (one index ~1000x heavier than the rest, the shape that
// starves a static partition); exact-mode active-set results must stay
// bit-identical to the single-thread full sweep at any thread count; and
// the wave-parallel incremental Propagate must agree with the serial
// chaotic engine to 1e-12 while being bit-identical across thread counts.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/fsim_config.h"
#include "core/fsim_engine.h"
#include "core/incremental.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "gtest/gtest.h"
#include "test_graphs.h"

namespace fsim {
namespace {

using ::fsim::testing::MakeRandomPair;

// Burns enough work to make one index dominate a chunk (the adversarial
// shape: a static partition finishes every other worker early while the
// heavy chunk's owner grinds alone).
void BurnWork(int iters) {
  volatile int64_t sink = 0;
  for (int i = 0; i < iters; ++i) sink = sink + i;
}

/// Runs all three primitives over [0, n) with index `heavy` costing ~1000x,
/// asserting exactly-once coverage and in-range worker ids.
void StressPrimitives(int num_threads, size_t n, size_t grain, size_t heavy) {
  ThreadPool pool(num_threads);

  // The span/frontier primitives take an index array; shuffle it so chunk
  // boundaries do not align with the identity order.
  std::vector<uint32_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0u);
  Rng rng(0xC0FFEE);
  for (size_t i = n; i > 1; --i) {
    std::swap(indices[i - 1], indices[rng.Next() % i]);
  }

  const auto body_cost = [&](uint32_t i) {
    BurnWork(i == heavy ? 50000 : 50);
  };

  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    std::atomic<bool> worker_ok{true};
    const auto check_worker = [&](int worker) {
      if (worker < 0 || worker >= num_threads) worker_ok.store(false);
    };

    if (round == 0) {
      pool.ParallelForChunked(n, grain,
                              [&](int worker, size_t begin, size_t end) {
                                check_worker(worker);
                                for (size_t i = begin; i < end; ++i) {
                                  body_cost(static_cast<uint32_t>(i));
                                  hits[i].fetch_add(1);
                                }
                              });
    } else if (round == 1) {
      pool.ParallelForSpan(indices, grain,
                           [&](int worker, std::span<const uint32_t> ids) {
                             check_worker(worker);
                             for (uint32_t i : ids) {
                               body_cost(i);
                               hits[i].fetch_add(1);
                             }
                           });
    } else {
      pool.ParallelForFrontier(
          indices,
          [&](uint32_t i) { return i == heavy ? 1000.0f : 1.0f; }, grain,
          [&](int worker, std::span<const uint32_t> ids) {
            check_worker(worker);
            for (uint32_t i : ids) {
              body_cost(i);
              hits[i].fetch_add(1);
            }
          });
    }

    EXPECT_TRUE(worker_ok.load()) << "threads=" << num_threads
                                  << " round=" << round;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u)
          << "threads=" << num_threads << " round=" << round << " index=" << i;
    }
  }
}

TEST(WorkStealingScheduler, SkewedCostsCoverEveryIndexOnceAt1Thread) {
  StressPrimitives(1, 4096, 7, 1234);
}

TEST(WorkStealingScheduler, SkewedCostsCoverEveryIndexOnceAt2Threads) {
  StressPrimitives(2, 4096, 7, 1234);
}

TEST(WorkStealingScheduler, SkewedCostsCoverEveryIndexOnceAt8Threads) {
  StressPrimitives(8, 4096, 7, 1234);
}

// The heavy index landing in the last chunk is the worst case for the old
// shared counter (it is claimed last and runs alone); stealing must still
// cover everything exactly once.
TEST(WorkStealingScheduler, HeavyTailIndexIsCoveredExactlyOnce) {
  StressPrimitives(8, 2048, 16, 2047);
}

// Alternating small (shared-counter fallback) and large (deque) regions on
// one pool: mode switching must not leak chunks between regions.
TEST(WorkStealingScheduler, AlternatingCounterAndStealRegionsStayIsolated) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const size_t n = (round % 2 == 0) ? 17 : 4096;  // small: counter fallback
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelForChunked(n, 4, [&](int /*worker*/, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1u);
  }
  const auto stats = pool.stats();
  EXPECT_GT(stats.steal_regions, 0u);
  EXPECT_GT(stats.counter_regions, 0u);
  EXPECT_GT(stats.chunks_executed, 0u);
}

// Zero and uniform frontier weights are edge cases of the two-class split
// (max_weight == 0 puts everything in the "big" class).
TEST(WorkStealingScheduler, FrontierHandlesDegenerateWeights) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<uint32_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0u);
  for (float weight : {0.0f, 1.0f}) {
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelForFrontier(
        indices, [weight](uint32_t) { return weight; }, 8,
        [&](int /*worker*/, std::span<const uint32_t> ids) {
          for (uint32_t i : ids) hits[i].fetch_add(1);
        });
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1u);
  }
}

// ---------------------------------------------------------------------------
// Exact-mode equivalence across thread counts
// ---------------------------------------------------------------------------

/// A random labeled digraph where every node has out- and in-degree >= 1
/// (a ring plus random chords), as in tests/active_set_test.cc.
Graph MakeDenseRandomGraph(uint64_t seed, uint32_t n = 24) {
  static const char* kLabels[] = {"aa", "ab", "bb", "bc"};
  Rng rng(seed);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(kLabels[rng.Next() % 4]);
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddEdge(i, (i + 1) % n);
  }
  for (uint32_t e = 0; e < 2 * n; ++e) {
    NodeId from = static_cast<NodeId>(rng.Next() % n);
    NodeId to = static_cast<NodeId>(rng.Next() % n);
    if (from != to) builder.AddEdge(from, to);
  }
  return std::move(builder).BuildOrDie();
}

const MappingKind kAllMappings[] = {
    MappingKind::kMaxPerRow, MappingKind::kInjectiveRow,
    MappingKind::kMaxBothSides, MappingKind::kInjectiveSym,
    MappingKind::kProduct};
const OmegaKind kAllOmegas[] = {OmegaKind::kSizeS1, OmegaKind::kSumSizes,
                                OmegaKind::kGeoMean, OmegaKind::kMaxSize,
                                OmegaKind::kProduct};

using SweepParam = std::tuple<MappingKind, OmegaKind, MatchingAlgo>;

class MultiThreadExactLockstep : public ::testing::TestWithParam<SweepParam> {
};

// Multi-thread exact-mode active set vs the single-thread full sweep, bit
// for bit: the sweeps are Jacobi (all reads hit the previous buffer), the
// reductions are order-independent, and exact-mode freezing carries the
// identical value — so thread count must not appear in the result at all.
TEST_P(MultiThreadExactLockstep, EightThreadsMatchOneThreadFullSweeps) {
  const auto [mapping, omega, matching] = GetParam();
  const Graph g = MakeDenseRandomGraph(/*seed=*/17 + static_cast<int>(omega));
  FSimConfig config;
  config.operator_override = OperatorConfig{mapping, omega};
  config.matching = matching;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-6;
  config.neighbor_index_budget_bytes = 1ULL << 30;

  FSimConfig parallel = config;
  parallel.num_threads = 8;
  parallel.active_set = ActiveSetMode::kExact;
  parallel.active_set_activation_fraction = 0.0;  // pin the frontier path
  auto active = ComputeFSimSelf(g, parallel);
  ASSERT_TRUE(active.ok()) << active.status().ToString();
  EXPECT_TRUE(active->stats().active_set);

  config.num_threads = 1;
  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeFSimSelf(g, config);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  ASSERT_EQ(active->keys().size(), off->keys().size());
  EXPECT_EQ(active->stats().iterations, off->stats().iterations);
  EXPECT_EQ(active->stats().converged, off->stats().converged);
  for (size_t i = 0; i < active->keys().size(); ++i) {
    ASSERT_EQ(active->keys()[i], off->keys()[i]);
    // Bit-identical, not just close.
    ASSERT_EQ(active->values()[i], off->values()[i])
        << "pair " << i << " (u=" << PairFirst(active->keys()[i])
        << ", v=" << PairSecond(active->keys()[i]) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operators, MultiThreadExactLockstep,
    ::testing::Combine(::testing::ValuesIn(kAllMappings),
                       ::testing::ValuesIn(kAllOmegas),
                       ::testing::Values(MatchingAlgo::kGreedy,
                                         MatchingAlgo::kHungarian)));

// ---------------------------------------------------------------------------
// Parallel-vs-serial incremental Propagate
// ---------------------------------------------------------------------------

std::vector<std::tuple<int, NodeId, NodeId, bool>> EditScript(
    const testing::GraphPair& pair) {
  // A deterministic mix of inserts and removes within both graphs' node
  // ranges; ops that fail identically on both engines are fine.
  std::vector<std::tuple<int, NodeId, NodeId, bool>> script;
  Rng rng(0xED17);
  const NodeId n1 = static_cast<NodeId>(pair.g1.NumNodes());
  const NodeId n2 = static_cast<NodeId>(pair.g2.NumNodes());
  for (int e = 0; e < 12; ++e) {
    const int graph_index = (rng.Next() % 2) ? 1 : 2;
    const NodeId n = graph_index == 1 ? n1 : n2;
    NodeId from = static_cast<NodeId>(rng.Next() % n);
    NodeId to = static_cast<NodeId>(rng.Next() % n);
    if (from == to) to = (to + 1) % n;
    script.emplace_back(graph_index, from, to, (rng.Next() % 3) != 0);
  }
  return script;
}

Status ApplyOp(IncrementalFSim* inc,
               const std::tuple<int, NodeId, NodeId, bool>& op) {
  const auto [graph_index, from, to, insert] = op;
  return insert ? inc->InsertEdge(graph_index, from, to)
                : inc->RemoveEdge(graph_index, from, to);
}

// The wave-parallel Propagate commits its Jacobi waves in serial wave
// order, so both engines converge to the same fixpoint within their
// documented tau * (1 + w) / (1 - w) budgets. With tau = 1e-14 and
// w = 0.7 the two budgets sum to ~1.1e-13, comfortably inside 1e-12.
TEST(ParallelPropagate, TracksSerialChaoticEngineTo1e12) {
  auto pair = MakeRandomPair(/*seed=*/3);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.matching = MatchingAlgo::kHungarian;
  config.theta = 0.0;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-12;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-14;

  FSimConfig serial_config = config;
  serial_config.num_threads = 1;
  auto serial = IncrementalFSim::Create(pair.g1, pair.g2, serial_config,
                                        options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  FSimConfig parallel_config = config;
  parallel_config.num_threads = 4;
  auto parallel = IncrementalFSim::Create(pair.g1, pair.g2, parallel_config,
                                          options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  // SolveFull's parallel sweeps are Jacobi with a serial absorb phase, so
  // the initial fixpoint must already be bit-identical.
  {
    const FSimScores s = serial->Snapshot();
    const FSimScores p = parallel->Snapshot();
    ASSERT_EQ(s.keys().size(), p.keys().size());
    for (size_t i = 0; i < s.keys().size(); ++i) {
      ASSERT_EQ(s.values()[i], p.values()[i]) << "initial solve, pair " << i;
    }
  }

  for (const auto& op : EditScript(pair)) {
    const Status ss = ApplyOp(&*serial, op);
    const Status ps = ApplyOp(&*parallel, op);
    ASSERT_EQ(ss.ok(), ps.ok());
    if (!ss.ok()) continue;  // identical no-op (absent/present edge)
    const FSimScores s = serial->Snapshot();
    const FSimScores p = parallel->Snapshot();
    ASSERT_EQ(s.keys().size(), p.keys().size());
    for (size_t i = 0; i < s.keys().size(); ++i) {
      ASSERT_NEAR(s.values()[i], p.values()[i], 1e-12)
          << "pair " << i << " after edit";
    }
  }
}

// PropagateWaves is deterministic in the thread count: the trajectory
// (wave membership, Jacobi inputs, serial commit order) depends only on
// the edit, so 2- and 8-thread engines must agree bit for bit.
TEST(ParallelPropagate, BitIdenticalAcrossThreadCounts) {
  auto pair = MakeRandomPair(/*seed=*/9);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.theta = 0.0;
  config.w_out = 0.4;
  config.w_in = 0.3;
  config.epsilon = 1e-10;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-11;

  FSimConfig c2 = config;
  c2.num_threads = 2;
  FSimConfig c8 = config;
  c8.num_threads = 8;
  auto inc2 = IncrementalFSim::Create(pair.g1, pair.g2, c2, options);
  auto inc8 = IncrementalFSim::Create(pair.g1, pair.g2, c8, options);
  ASSERT_TRUE(inc2.ok()) << inc2.status().ToString();
  ASSERT_TRUE(inc8.ok()) << inc8.status().ToString();

  for (const auto& op : EditScript(pair)) {
    const Status s2 = ApplyOp(&*inc2, op);
    const Status s8 = ApplyOp(&*inc8, op);
    ASSERT_EQ(s2.ok(), s8.ok());
    const FSimScores a = inc2->Snapshot();
    const FSimScores b = inc8->Snapshot();
    ASSERT_EQ(a.keys().size(), b.keys().size());
    for (size_t i = 0; i < a.keys().size(); ++i) {
      ASSERT_EQ(a.values()[i], b.values()[i]) << "pair " << i;
    }
  }
}

}  // namespace
}  // namespace fsim
