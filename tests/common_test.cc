// Unit tests for the common substrate: Status/Result, hashing, the flat
// pair map, RNG + samplers, thread pool, string utilities and the table
// printer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <thread>

#include "common/flat_pair_map.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace fsim {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad weights");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad weights");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad weights");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status st = Status::IOError("disk");
  Status copy = st;
  EXPECT_TRUE(copy.IsIOError());
  EXPECT_EQ(copy.message(), "disk");
  Status moved = std::move(st);
  EXPECT_TRUE(moved.IsIOError());
  Status assigned;
  assigned = moved;
  EXPECT_EQ(assigned.message(), "disk");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "NotImplemented");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::NotFound("x"); };
  auto outer = [&]() -> Status {
    FSIM_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

// ---------------------------------------------------------------- Result --

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("no");
    return 7;
  };
  auto use = [&](bool fail) -> Result<int> {
    FSIM_ASSIGN_OR_RETURN(int v, make(fail));
    return v + 1;
  };
  EXPECT_EQ(*use(false), 8);
  EXPECT_TRUE(use(true).status().IsInvalidArgument());
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, PairKeyRoundTrips) {
  const uint64_t key = PairKey(123456, 654321);
  EXPECT_EQ(PairFirst(key), 123456u);
  EXPECT_EQ(PairSecond(key), 654321u);
}

TEST(HashTest, PairKeyIsInjective) {
  EXPECT_NE(PairKey(1, 2), PairKey(2, 1));
  EXPECT_NE(PairKey(0, 1), PairKey(1, 0));
}

TEST(HashTest, Mix64SpreadsSequentialKeys) {
  // Adjacent keys should disagree in many bits after mixing.
  int total_diff = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    total_diff += __builtin_popcountll(Mix64(i) ^ Mix64(i + 1));
  }
  EXPECT_GT(total_diff / 64, 20);
}

TEST(HashTest, HashStringDiffersOnContent) {
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

// ---------------------------------------------------------- FlatPairMap --

TEST(FlatPairMapTest, InsertAndFind) {
  FlatPairMap map;
  EXPECT_TRUE(map.Insert(PairKey(1, 2), 10));
  EXPECT_TRUE(map.Insert(PairKey(3, 4), 20));
  EXPECT_EQ(map.Find(PairKey(1, 2)), 10u);
  EXPECT_EQ(map.Find(PairKey(3, 4)), 20u);
  EXPECT_EQ(map.Find(PairKey(9, 9)), FlatPairMap::kNotFound);
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatPairMapTest, DuplicateInsertKeepsFirst) {
  FlatPairMap map;
  EXPECT_TRUE(map.Insert(7, 1));
  EXPECT_FALSE(map.Insert(7, 2));
  EXPECT_EQ(map.Find(7), 1u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatPairMapTest, GrowsBeyondInitialCapacity) {
  FlatPairMap map;
  constexpr uint32_t kCount = 10000;
  for (uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(map.Insert(PairKey(i, i * 31 + 1), i));
  }
  EXPECT_EQ(map.size(), kCount);
  for (uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(map.Find(PairKey(i, i * 31 + 1)), i);
  }
}

TEST(FlatPairMapTest, PresizedConstructionFindsEverything) {
  FlatPairMap map(5000);
  for (uint32_t i = 0; i < 5000; ++i) map.Insert(Mix64(i), i);
  for (uint32_t i = 0; i < 5000; ++i) ASSERT_EQ(map.Find(Mix64(i)), i);
}

TEST(FlatPairMapTest, ClearEmptiesTheMap) {
  FlatPairMap map;
  map.Insert(1, 1);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), FlatPairMap::kNotFound);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, GaussianMomentsAreSane) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.05);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
  ZipfSampler sampler(4, 0.0);
  Rng rng(19);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 1200);
}

TEST(ZipfSamplerTest, PositiveSkewPrefersSmallIndices) {
  ZipfSampler sampler(10, 1.5);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(PowerLawDegreeSequenceTest, HitsAverageAndCap) {
  Rng rng(29);
  auto degrees = PowerLawDegreeSequence(5000, 6.0, 100, 2.1, &rng);
  double sum = 0.0;
  uint32_t max_deg = 0;
  for (uint32_t d : degrees) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, 100u);
    sum += d;
    max_deg = std::max(max_deg, d);
  }
  EXPECT_NEAR(sum / 5000.0, 6.0, 1.2);
  EXPECT_GT(max_deg, 20u);  // a heavy tail exists
}

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(10000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(97, [&](size_t) { count++; });
    EXPECT_EQ(count.load(), 97);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, UnbalancedBodiesStillCoverAllIndices) {
  // Dynamic chunk scheduling must still execute each index exactly once even
  // when one stripe of indices is much more expensive than the rest.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.ParallelFor(101, [&](size_t i) {
    if (i % 4 == 0) {
      // Unbalanced work on one residue class.
      volatile double x = 0;
      for (int k = 0; k < 1000; ++k) {
        x = x + std::sqrt(static_cast<double>(k));
      }
    }
    hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10007);
  pool.ParallelForChunked(10007, 64, [&](int worker, size_t begin, size_t end) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    EXPECT_LE(end, 10007u);
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ChunkedChunksRespectGrain) {
  ThreadPool pool(3);
  std::atomic<int> oversized{0};
  pool.ParallelForChunked(1000, 37, [&](int, size_t begin, size_t end) {
    if (end - begin > 37) oversized++;
  });
  EXPECT_EQ(oversized.load(), 0);
}

TEST(ThreadPoolTest, ChunkedWorkerIdsAreSafeForScratch) {
  // Concurrent chunks must never share a worker id: per-worker counters
  // incremented non-atomically stay consistent iff the ids partition chunks.
  ThreadPool pool(4);
  struct alignas(64) Counter {
    size_t value = 0;
  };
  std::vector<Counter> per_worker(4);
  pool.ParallelForChunked(5000, 16, [&](int worker, size_t begin, size_t end) {
    per_worker[worker].value += end - begin;
  });
  size_t total = 0;
  for (const auto& c : per_worker) total += c.value;
  EXPECT_EQ(total, 5000u);
}

TEST(ThreadPoolTest, ChunkedSmallRangeRunsInlineAsWorkerZero) {
  ThreadPool pool(4);
  std::vector<int> workers;
  pool.ParallelForChunked(5, 8, [&](int worker, size_t begin, size_t end) {
    workers.push_back(worker);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0], 0);
}

TEST(ThreadPoolTest, ChunkedEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  pool.ParallelForChunked(0, 8, [](int, size_t, size_t) {
    FAIL() << "must not run";
  });
}

TEST(ThreadPoolTest, ChunkedZeroGrainIsClampedToOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelForChunked(100, 0, [&](int, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ------------------------------------------------------------ StringUtil --

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitWhitespaceDropsRuns) {
  auto parts = SplitWhitespace("  v  12\tlabel \n");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "v");
  EXPECT_EQ(parts[1], "12");
  EXPECT_EQ(parts[2], "label");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(StringUtilTest, ToLowerAscii) { EXPECT_EQ(ToLower("AbC"), "abc"); }

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("fsim_core", "fsim"));
  EXPECT_FALSE(StartsWith("fs", "fsim"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 0.5), "0.50");
}

TEST(StringUtilTest, ParseInt64AcceptsValidValues) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-7").ValueOrDie(), -7);
  EXPECT_EQ(ParseInt64("  19 ").ValueOrDie(), 19);  // surrounding whitespace ok
  EXPECT_EQ(ParseInt64("9223372036854775807").ValueOrDie(), INT64_MAX);
  EXPECT_EQ(ParseInt64("-9223372036854775808").ValueOrDie(), INT64_MIN);
}

TEST(StringUtilTest, ParseInt64RejectsBadInput) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12abc").ok());  // trailing garbage (atoi accepts)
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());   // overflow
  EXPECT_FALSE(ParseInt64("-9223372036854775809").ok());  // underflow
}

TEST(StringUtilTest, ParseUint64AcceptsValidValues) {
  EXPECT_EQ(ParseUint64("0").ValueOrDie(), 0u);
  EXPECT_EQ(ParseUint64("18446744073709551615").ValueOrDie(), UINT64_MAX);
}

TEST(StringUtilTest, ParseUint64RejectsBadInput) {
  EXPECT_FALSE(ParseUint64("").ok());
  // strtoull silently wraps negatives; the parser must reject the sign.
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("+1").ok());
  EXPECT_FALSE(ParseUint64("18446744073709551616").ok());  // overflow
  EXPECT_FALSE(ParseUint64("10 x").ok());
}

TEST(StringUtilTest, ParseDoubleAcceptsValidValues) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.75").ValueOrDie(), 0.75);
  EXPECT_DOUBLE_EQ(ParseDouble("-2").ValueOrDie(), -2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").ValueOrDie(), 1000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsBadInput) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("zero").ok());
  EXPECT_FALSE(ParseDouble("0.5theta").ok());  // trailing garbage (atof accepts)
  EXPECT_FALSE(ParseDouble("1e99999").ok());   // overflow
}

// ---------------------------------------------------------- TablePrinter --

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TablePrinterTest, HandlesShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_NE(t.ToString().find("only-one"), std::string::npos);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + static_cast<double>(i);
  const double first = timer.Seconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(timer.Seconds(), first);  // monotone
  timer.Reset();
  EXPECT_LT(timer.Seconds(), first + 1.0);
}

}  // namespace
}  // namespace fsim
