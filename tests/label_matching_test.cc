// Tests for the label-similarity functions L(·) and the matching substrate
// (greedy ½-approximation, exact Hungarian, Kuhn's bipartite matching),
// including the randomized greedy-vs-optimal property sweep.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "label/label_similarity.h"
#include "matching/bipartite_matching.h"
#include "matching/greedy_matching.h"
#include "matching/hungarian.h"

namespace fsim {
namespace {

// ------------------------------------------------------- Label functions --

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(EditSimilarityTest, RangeAndIdentity) {
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditSimilarity("a", "b"), 0.0);
  EXPECT_NEAR(NormalizedEditSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  // Classic example: MARTHA vs MARHTA = 0.944...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostAndWellDefinedness) {
  const double jaro = JaroSimilarity("martha", "marhta");
  const double jw = JaroWinklerSimilarity("martha", "marhta");
  EXPECT_GT(jw, jaro);  // shared prefix boosts
  // Well-definedness: exactly 1 only for identical strings.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
  EXPECT_LT(JaroWinklerSimilarity("ab", "abx"), 1.0);
}

TEST(LabelSimKindTest, DispatchMatchesDirectCalls) {
  EXPECT_DOUBLE_EQ(StringSimilarity(LabelSimKind::kIndicator, "a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity(LabelSimKind::kIndicator, "a", "b"), 0.0);
  EXPECT_DOUBLE_EQ(StringSimilarity(LabelSimKind::kEditDistance, "ab", "ab"),
                   1.0);
  EXPECT_DOUBLE_EQ(
      StringSimilarity(LabelSimKind::kJaroWinkler, "graph", "graph"), 1.0);
  EXPECT_STREQ(LabelSimKindName(LabelSimKind::kJaroWinkler), "L_J");
}

TEST(LabelSimilarityCacheTest, IndicatorNeedsNoMatrix) {
  LabelDict dict;
  LabelId a = dict.Intern("alpha");
  LabelId b = dict.Intern("beta");
  LabelSimilarityCache cache(dict, LabelSimKind::kIndicator);
  EXPECT_DOUBLE_EQ(cache.Sim(a, a), 1.0);
  EXPECT_DOUBLE_EQ(cache.Sim(a, b), 0.0);
}

TEST(LabelSimilarityCacheTest, MatrixMatchesDirectComputation) {
  LabelDict dict;
  LabelId a = dict.Intern("health");
  LabelId b = dict.Intern("wealth");
  LabelId c = dict.Intern("parenting");
  LabelSimilarityCache cache(dict, LabelSimKind::kEditDistance);
  EXPECT_NEAR(cache.Sim(a, b), NormalizedEditSimilarity("health", "wealth"),
              1e-6);
  EXPECT_NEAR(cache.Sim(b, c), NormalizedEditSimilarity("wealth", "parenting"),
              1e-6);
  EXPECT_DOUBLE_EQ(cache.Sim(c, c), 1.0);
  // Symmetry of the cached matrix.
  EXPECT_DOUBLE_EQ(cache.Sim(a, c), cache.Sim(c, a));
}

TEST(LabelSimilarityCacheTest, CompatibleAppliesTheta) {
  LabelDict dict;
  LabelId a = dict.Intern("aa");
  LabelId b = dict.Intern("ab");
  LabelSimilarityCache cache(dict, LabelSimKind::kEditDistance);
  // Sim(aa, ab) = 0.5.
  EXPECT_TRUE(cache.Compatible(a, b, 0.0));   // theta 0 admits everything
  EXPECT_TRUE(cache.Compatible(a, b, 0.5));
  EXPECT_FALSE(cache.Compatible(a, b, 0.6));
  EXPECT_TRUE(cache.Compatible(a, a, 1.0));
}

// ------------------------------------------------------- Greedy matching --

TEST(GreedyMatchingTest, PicksHeaviestCompatibleEdges) {
  std::vector<WeightedEdge> edges = {
      {0, 0, 0.9}, {0, 1, 0.8}, {1, 0, 0.7}, {1, 1, 0.1}};
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  double total = GreedyMaxWeightMatching(edges, 2, 2, &pairs);
  EXPECT_DOUBLE_EQ(total, 1.0);  // (0,0)+(1,1)
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>{0, 0}));
  EXPECT_EQ(pairs[1], (std::pair<uint32_t, uint32_t>{1, 1}));
}

TEST(GreedyMatchingTest, DeterministicTieBreak) {
  std::vector<WeightedEdge> edges = {{1, 1, 0.5}, {0, 0, 0.5}, {0, 1, 0.5}};
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  GreedyMaxWeightMatching(edges, 2, 2, &pairs);
  // Ties break by (left, right): (0,0) first, then (1,1).
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>{0, 0}));
  EXPECT_EQ(pairs[1], (std::pair<uint32_t, uint32_t>{1, 1}));
}

TEST(GreedyMatchingTest, EmptyEdgesGiveZero) {
  EXPECT_DOUBLE_EQ(
      GreedyMaxWeightMatching(std::vector<WeightedEdge>{}, 3, 3), 0.0);
}

TEST(GreedyMatchingTest, RespectsInjectivity) {
  std::vector<WeightedEdge> edges = {{0, 0, 1.0}, {1, 0, 1.0}, {2, 0, 1.0}};
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  double total = GreedyMaxWeightMatching(edges, 3, 1, &pairs);
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_EQ(pairs.size(), 1u);
}

// ------------------------------------------------------------- Hungarian --

TEST(HungarianTest, SolvesSmallAssignment) {
  // Greedy would pick 0.9 then be stuck with 0.1 (total 1.0); optimal pairs
  // 0.8 + 0.7 = 1.5.
  std::vector<std::vector<double>> w = {{0.9, 0.8}, {0.7, 0.1}};
  std::vector<int> assignment;
  double total = HungarianMaxWeightMatching(w, &assignment);
  EXPECT_DOUBLE_EQ(total, 1.5);
  EXPECT_EQ(assignment[0], 1);
  EXPECT_EQ(assignment[1], 0);
}

TEST(HungarianTest, RectangularMatrices) {
  std::vector<std::vector<double>> wide = {{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(HungarianMaxWeightMatching(wide), 3.0);
  std::vector<std::vector<double>> tall = {{1.0}, {2.0}, {3.0}};
  EXPECT_DOUBLE_EQ(HungarianMaxWeightMatching(tall), 3.0);
}

TEST(HungarianTest, EmptyMatrix) {
  EXPECT_DOUBLE_EQ(HungarianMaxWeightMatching({}), 0.0);
  EXPECT_DOUBLE_EQ(HungarianMaxWeightMatching({{}, {}}), 0.0);
}

TEST(HungarianTest, ZeroWeightsLeaveUnmatched) {
  std::vector<std::vector<double>> w = {{0.0, 0.0}, {0.0, 0.5}};
  std::vector<int> assignment;
  EXPECT_DOUBLE_EQ(HungarianMaxWeightMatching(w, &assignment), 0.5);
  EXPECT_EQ(assignment[0], -1);
  EXPECT_EQ(assignment[1], 1);
}

/// Randomized sweep: Hungarian >= greedy >= Hungarian / 2 (the classic
/// ½-approximation bound), over random bipartite weight matrices.
class MatchingApproximation : public ::testing::TestWithParam<int> {};

TEST_P(MatchingApproximation, GreedyIsHalfApproximation) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  const size_t rows = 1 + rng.NextBounded(8);
  const size_t cols = 1 + rng.NextBounded(8);
  std::vector<std::vector<double>> w(rows, std::vector<double>(cols));
  std::vector<WeightedEdge> edges;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      w[i][j] = rng.NextBernoulli(0.3) ? 0.0 : rng.NextDouble();
      if (w[i][j] > 0.0) {
        edges.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(j),
                         w[i][j]});
      }
    }
  }
  const double optimal = HungarianMaxWeightMatching(w);
  const double greedy = GreedyMaxWeightMatching(edges, rows, cols);
  EXPECT_LE(greedy, optimal + 1e-9);
  EXPECT_GE(greedy, optimal / 2.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MatchingApproximation,
                         ::testing::Range(0, 50));

/// Brute-force maximum-weight matching by enumerating all injective
/// row->column assignments (exponential; oracle for tiny instances).
double BruteForceMatching(const std::vector<std::vector<double>>& w,
                          std::vector<int>* assignment, size_t row,
                          std::vector<char>* used) {
  if (row == w.size()) return 0.0;
  // Option 1: leave this row unmatched.
  double best = BruteForceMatching(w, assignment, row + 1, used);
  for (size_t col = 0; col < w[row].size(); ++col) {
    if ((*used)[col]) continue;
    (*used)[col] = 1;
    best = std::max(best, w[row][col] +
                              BruteForceMatching(w, assignment, row + 1, used));
    (*used)[col] = 0;
  }
  return best;
}

class HungarianOracle : public ::testing::TestWithParam<int> {};

TEST_P(HungarianOracle, MatchesBruteForceOnTinyInstances) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 17);
  const size_t rows = 1 + rng.NextBounded(5);
  const size_t cols = 1 + rng.NextBounded(5);
  std::vector<std::vector<double>> w(rows, std::vector<double>(cols));
  for (auto& row : w) {
    for (auto& x : row) x = rng.NextBernoulli(0.2) ? 0.0 : rng.NextDouble();
  }
  std::vector<char> used(cols, 0);
  const double oracle = BruteForceMatching(w, nullptr, 0, &used);
  const double hungarian = HungarianMaxWeightMatching(w);
  EXPECT_NEAR(hungarian, oracle, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, HungarianOracle,
                         ::testing::Range(0, 40));

// ---------------------------------------------------- Bipartite matching --

TEST(BipartiteMatchingTest, PerfectMatchingFound) {
  // K_{2,2} minus one edge still has a perfect matching.
  std::vector<std::vector<uint32_t>> adj = {{0, 1}, {0}};
  std::vector<int> match;
  EXPECT_EQ(MaxBipartiteMatching(adj, 2, &match), 2u);
  EXPECT_EQ(match[1], 0);
  EXPECT_EQ(match[0], 1);
}

TEST(BipartiteMatchingTest, AugmentingPathReassigns) {
  // Left 0 prefers right 0; left 1 can only use right 0 -> augmenting path
  // moves left 0 to right 1.
  std::vector<std::vector<uint32_t>> adj = {{0, 1}, {0}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 2), 2u);
}

TEST(BipartiteMatchingTest, DeficientSide) {
  std::vector<std::vector<uint32_t>> adj = {{0}, {0}, {0}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 1), 1u);
}

TEST(BipartiteMatchingTest, NoEdges) {
  std::vector<std::vector<uint32_t>> adj = {{}, {}};
  EXPECT_EQ(MaxBipartiteMatching(adj, 3), 0u);
}

TEST(BipartiteMatchingTest, MatchesHungarianCardinalityOnUnitWeights) {
  Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t rows = 1 + rng.NextBounded(7);
    const size_t cols = 1 + rng.NextBounded(7);
    std::vector<std::vector<uint32_t>> adj(rows);
    std::vector<std::vector<double>> w(rows, std::vector<double>(cols, 0.0));
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        if (rng.NextBernoulli(0.4)) {
          adj[i].push_back(static_cast<uint32_t>(j));
          w[i][j] = 1.0;
        }
      }
    }
    const size_t kuhn = MaxBipartiteMatching(adj, cols);
    const double hungarian = HungarianMaxWeightMatching(w);
    EXPECT_NEAR(static_cast<double>(kuhn), hungarian, 1e-9);
  }
}

}  // namespace
}  // namespace fsim
