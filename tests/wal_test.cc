// WAL tests (serve/wal.h): append/read round trip, contiguous LSN
// validation, torn-tail detection and truncation, mid-log corruption
// rejection, group commit from concurrent appenders, rotation and
// snapshot-bounded retention.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/wal.h"

namespace fsim {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_test_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  /// The single segment file the simple tests write into.
  fs::path OnlySegment() const {
    fs::path found;
    size_t count = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      ++count;
      found = entry.path();
    }
    EXPECT_EQ(count, 1u);
    return found;
  }

  fs::path dir_;
};

EditRecord MakeRecord(uint8_t graph, NodeId from, NodeId to, bool insert) {
  EditRecord rec;
  rec.graph_index = graph;
  rec.from = from;
  rec.to = to;
  rec.insert = insert;
  return rec;
}

TEST_F(WalTest, AppendReadRoundTrip) {
  std::vector<EditRecord> written;
  {
    auto writer = WalWriter::Open(dir(), 1);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int i = 0; i < 10; ++i) {
      EditRecord rec = MakeRecord(static_cast<uint8_t>(1 + i % 2),
                                  static_cast<NodeId>(i),
                                  static_cast<NodeId>(i + 1), i % 3 != 0);
      auto lsn = (*writer)->AppendDurable(rec);
      ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
      rec.lsn = *lsn;
      written.push_back(rec);
    }
    EXPECT_EQ((*writer)->durable_lsn(), 10u);
    EXPECT_EQ((*writer)->next_lsn(), 11u);
  }
  auto tail = ReadWal(dir(), /*truncate_torn_tail=*/false);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_EQ(tail->records, written);
  EXPECT_EQ(tail->next_lsn, 11u);
  EXPECT_EQ(tail->torn_bytes, 0u);
  EXPECT_EQ(tail->segments, 1u);
}

TEST_F(WalTest, EmptyOrMissingDirectoryYieldsEmptyTail) {
  auto tail = ReadWal(dir(), true);
  ASSERT_TRUE(tail.ok());
  EXPECT_TRUE(tail->records.empty());
  EXPECT_EQ(tail->next_lsn, 1u);

  auto missing = ReadWal(dir() + "/does-not-exist", true);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
}

TEST_F(WalTest, TornTailIsDetectedAndTruncated) {
  {
    auto writer = WalWriter::Open(dir(), 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          (*writer)
              ->AppendDurable(MakeRecord(1, static_cast<NodeId>(i), 9, true))
              .ok());
    }
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  const fs::path segment = OnlySegment();
  const uintmax_t intact_size = fs::file_size(segment);
  {
    std::ofstream out(segment, std::ios::binary | std::ios::app);
    out.write("\x13\x00\x00\x00partial", 11);
  }

  // Non-destructive read reports the torn bytes but leaves the file alone.
  auto peek = ReadWal(dir(), /*truncate_torn_tail=*/false);
  ASSERT_TRUE(peek.ok()) << peek.status().ToString();
  EXPECT_EQ(peek->records.size(), 4u);
  EXPECT_EQ(peek->torn_bytes, 11u);
  EXPECT_EQ(fs::file_size(segment), intact_size + 11);

  // Truncating read repairs the segment to the valid prefix.
  auto repaired = ReadWal(dir(), /*truncate_torn_tail=*/true);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->records.size(), 4u);
  EXPECT_EQ(repaired->next_lsn, 5u);
  EXPECT_EQ(fs::file_size(segment), intact_size);

  // After the repair the log reads back clean.
  auto clean = ReadWal(dir(), false);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->torn_bytes, 0u);
  EXPECT_EQ(clean->records.size(), 4u);
}

TEST_F(WalTest, ChecksumCorruptionMidLogFails) {
  {
    auto writer = WalWriter::Open(dir(), 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*writer)
              ->AppendDurable(MakeRecord(1, static_cast<NodeId>(i), 9, true))
              .ok());
    }
  }
  // Flip a byte inside the FIRST record's payload: not a torn tail (the
  // write completed) — this is corruption, and since the valid-looking
  // records after it would be unreachable, the read must fail loudly
  // rather than silently dropping acknowledged edits. With a single
  // segment the reader treats the damage as "tail" only if nothing valid
  // follows; a full record DOES follow, so the LSN chain breaks.
  const fs::path segment = OnlySegment();
  std::fstream file(segment, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(12 + 5);  // into the first record's payload (lsn field)
  file.put('\xFF');
  file.close();

  auto tail = ReadWal(dir(), /*truncate_torn_tail=*/false);
  // Either the checksum mismatch truncates everything after it (torn tail
  // at offset 0 — all records dropped) or the sequence check fails; both
  // must refuse to present the intact records as a complete log. Here the
  // checksum fails on record 1, so records 2..3 would be orphaned: the
  // reader reports them as torn bytes rather than valid records.
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_TRUE(tail->records.empty());
  EXPECT_GT(tail->torn_bytes, 0u);
}

TEST_F(WalTest, CorruptionInOlderSegmentIsAnError) {
  {
    auto writer = WalWriter::Open(dir(), 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AppendDurable(MakeRecord(1, 0, 1, true)).ok());
    ASSERT_TRUE((*writer)->Rotate().ok());
    ASSERT_TRUE((*writer)->AppendDurable(MakeRecord(1, 1, 2, true)).ok());
  }
  // Damage the OLD segment: torn tails are only legal where the writer
  // stopped, so this must surface as IOError, not silent truncation.
  fs::path oldest;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (oldest.empty() || entry.path() < oldest) oldest = entry.path();
  }
  std::fstream file(oldest, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(4);
  file.put('\xAA');
  file.close();

  auto tail = ReadWal(dir(), /*truncate_torn_tail=*/true);
  EXPECT_TRUE(tail.status().IsIOError());
}

TEST_F(WalTest, ConcurrentAppendersGroupCommit) {
  auto writer = WalWriter::Open(dir(), 1);
  ASSERT_TRUE(writer.ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&writer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn = (*writer)->AppendDurable(
            MakeRecord(1, static_cast<NodeId>(t), static_cast<NodeId>(i),
                       true));
        ASSERT_TRUE(lsn.ok());
        // The durability contract: by the time AppendDurable returns, the
        // record's LSN is covered by a completed fsync.
        EXPECT_GE((*writer)->durable_lsn(), *lsn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ((*writer)->durable_lsn(),
            static_cast<uint64_t>(kThreads * kPerThread));

  auto tail = ReadWal(dir(), false);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->records.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 0; i < tail->records.size(); ++i) {
    EXPECT_EQ(tail->records[i].lsn, i + 1);  // contiguous despite the race
  }
}

TEST_F(WalTest, RotationAndRetention) {
  auto writer = WalWriter::Open(dir(), 1);
  ASSERT_TRUE(writer.ok());
  // Three segments: [1..2], [3..4], [5..] (open).
  for (int seg = 0; seg < 2; ++seg) {
    for (int i = 0; i < 2; ++i) {
      ASSERT_TRUE(
          (*writer)
              ->AppendDurable(MakeRecord(1, static_cast<NodeId>(i), 7, true))
              .ok());
    }
    ASSERT_TRUE((*writer)->Rotate().ok());
  }
  ASSERT_TRUE((*writer)->AppendDurable(MakeRecord(2, 5, 6, false)).ok());

  auto all = ReadWal(dir(), false);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->segments, 3u);
  EXPECT_EQ(all->records.size(), 5u);

  // A snapshot at lsn 2 covers exactly the first segment.
  auto removed = RemoveObsoleteWalSegments(dir(), 2);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  auto rest = ReadWal(dir(), false);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->segments, 2u);
  ASSERT_FALSE(rest->records.empty());
  EXPECT_EQ(rest->records.front().lsn, 3u);
  EXPECT_EQ(rest->records.back().lsn, 5u);

  // A snapshot past everything still never deletes the newest segment.
  removed = RemoveObsoleteWalSegments(dir(), 100);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  rest = ReadWal(dir(), false);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->segments, 1u);
  EXPECT_EQ(rest->records.front().lsn, 5u);
}

TEST_F(WalTest, ResumeAtRecoveredLsnContinuesTheSequence) {
  {
    auto writer = WalWriter::Open(dir(), 1);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*writer)->AppendDurable(MakeRecord(1, 0, 1, true)).ok());
    }
  }
  auto tail = ReadWal(dir(), true);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->next_lsn, 4u);
  {
    auto writer = WalWriter::Open(dir(), tail->next_lsn);
    ASSERT_TRUE(writer.ok());
    auto lsn = (*writer)->AppendDurable(MakeRecord(2, 1, 0, false));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 4u);
  }
  auto all = ReadWal(dir(), false);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->records.size(), 4u);
  EXPECT_EQ(all->records.back().lsn, 4u);
  EXPECT_EQ(all->records.back().graph_index, 2);
  EXPECT_FALSE(all->records.back().insert);
}

TEST_F(WalTest, OpenRejectsLsnZero) {
  EXPECT_TRUE(WalWriter::Open(dir(), 0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace fsim
