// Shared test environment that runs every structural validator after the
// suite finishes (so each tier-1 test run ends with a full invariant audit)
// and asserts, via ValidatorCounters, that each validator executed at least
// once during the run — a validator that silently stops being wired in
// fails the suite instead of rotting.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/flat_pair_map.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "core/fsim_config.h"
#include "core/incremental_index.h"
#include "core/pair_store.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"
#include "label/label_similarity.h"
#include "serve/snapshot.h"

namespace fsim {
namespace {

/// Canonical instances of every validated structure, built fresh so the
/// audit is independent of which tests ran.
void RunAllValidators() {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode(i % 2 ? "a" : "b");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  b.AddEdge(4, 0);
  b.AddEdge(0, 2);
  const Graph g = std::move(b).BuildOrDie();
  FSimConfig config;
  LabelSimilarityCache lsim(*g.dict(), config.label_sim);

  DynamicGraph dg(g);
  ASSERT_TRUE(dg.InsertEdge(1, 3).ok());
  ASSERT_TRUE(dg.RemoveEdge(0, 2).ok());
  const Status adjacency = dg.ValidateAdjacency();
  EXPECT_TRUE(adjacency.ok()) << adjacency.ToString();

  auto store = PairStore::Build(g, g, config, lsim);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const Status neighbor_index = store->ValidateNeighborIndex();
  EXPECT_TRUE(neighbor_index.ok()) << neighbor_index.ToString();

  std::vector<uint64_t> keys;
  FlatPairMap pair_index(store->size());
  for (size_t i = 0; i < store->size(); ++i) {
    const uint64_t key = PairKey(store->U(i), store->V(i));
    pair_index.Insert(key, static_cast<uint32_t>(i));
    keys.push_back(key);
  }
  IncrementalNeighborIndex incremental;
  const NeighborIndexEnv env{dg, dg, pair_index, lsim};
  ASSERT_TRUE(incremental.Build(env, keys, config));
  // Exercise the in-place and relocation Restage paths before auditing.
  ASSERT_TRUE(dg.InsertEdge(0, 3).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    incremental.Restage(i, IncrementalNeighborIndex::kOut, store->U(i),
                        store->V(i), env);
  }
  const Status arena = incremental.Validate(keys.size());
  EXPECT_TRUE(arena.ok()) << arena.ToString();

  ThreadPool pool(3);
  std::vector<uint64_t> sums(512, 0);
  pool.ParallelForChunked(sums.size(), 8, [&sums](int, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sums[i] = i * i;
  });
  const Status scheduler = pool.ValidateScheduler();
  EXPECT_TRUE(scheduler.ok()) << scheduler.ToString();

  SnapshotStore snapshots;
  FlatPairMap score_index(1);
  score_index.Insert(PairKey(0, 0), 0);
  SharedFSimScores scores = FreezeScores(
      FSimScores({PairKey(0, 0)}, {1.0}, std::move(score_index), FSimStats{}));
  for (int round = 0; round < 2; ++round) {
    SnapshotMeta meta;
    meta.version = snapshots.NextVersion();
    ASSERT_TRUE(snapshots.Publish(
        std::make_shared<const FSimSnapshot>(scores, /*cache_k=*/2, meta)));
  }
  const Status chain = snapshots.ValidateChain();
  EXPECT_TRUE(chain.ok()) << chain.ToString();
}

class StructureValidationEnvironment : public ::testing::Environment {
 public:
  void TearDown() override {
    RunAllValidators();
    // Each validator must have run at least once this process — through the
    // audit above at minimum, plus any automatic FSIM_DEBUG_CHECKS hooks.
    for (const char* name :
         {"DynamicGraph::ValidateAdjacency", "PairStore::ValidateNeighborIndex",
          "IncrementalNeighborIndex::Validate", "ThreadPool::ValidateScheduler",
          "SnapshotStore::ValidateChain"}) {
      EXPECT_GE(ValidatorCounters::Count(name), 1u)
          << "validator never executed: " << name;
    }
  }
};

// Registered at static-init time; gtest owns and runs it around the suite.
const ::testing::Environment* const kValidationEnv =
    ::testing::AddGlobalTestEnvironment(new StructureValidationEnvironment);

}  // namespace
}  // namespace fsim
