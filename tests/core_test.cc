// Tests for the FSimχ core: operators (Table 3), the candidate-pair store,
// the iterative engine (Algorithm 1), and the paper's formal guarantees —
// P1-P3 of Definition 4, Theorem 1/Corollary 1 convergence, Theorem 4
// (k-bisimulation) and Theorem 5 (WL test), plus the §4.3 SimRank/RoleSim
// equivalences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/fsim_config.h"
#include "core/fsim_engine.h"
#include "core/operators.h"
#include "core/pair_store.h"
#include "core/rolesim.h"
#include "core/simrank.h"
#include "exact/exact_simulation.h"
#include "exact/signatures.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "tests/test_graphs.h"

namespace fsim {
namespace {

using testing::Figure1;
using testing::GraphPair;
using testing::MakeFigure1;
using testing::MakeRandomPair;

constexpr SimVariant kAllVariants[] = {
    SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
    SimVariant::kBijective};

FSimConfig PropertyConfig(SimVariant variant) {
  FSimConfig config;
  config.variant = variant;
  config.w_out = 0.4;
  config.w_in = 0.4;
  config.label_sim = LabelSimKind::kIndicator;
  config.theta = 0.0;
  config.epsilon = 1e-10;
  config.max_iterations = 120;
  // Hungarian realizes the maximum mapping exactly (condition C3), under
  // which the formal guarantees hold.
  config.matching = MatchingAlgo::kHungarian;
  return config;
}

// ------------------------------------------------------------- Operators --

TEST(OperatorsTest, Table3Configurations) {
  EXPECT_EQ(OperatorsForVariant(SimVariant::kSimple).mapping,
            MappingKind::kMaxPerRow);
  EXPECT_EQ(OperatorsForVariant(SimVariant::kSimple).omega,
            OmegaKind::kSizeS1);
  EXPECT_EQ(OperatorsForVariant(SimVariant::kDegreePreserving).mapping,
            MappingKind::kInjectiveRow);
  EXPECT_EQ(OperatorsForVariant(SimVariant::kBi).omega, OmegaKind::kSumSizes);
  EXPECT_EQ(OperatorsForVariant(SimVariant::kBijective).omega,
            OmegaKind::kGeoMean);
}

TEST(OperatorsTest, OmegaValues) {
  EXPECT_DOUBLE_EQ(OmegaValue(OmegaKind::kSizeS1, 3, 5), 3.0);
  EXPECT_DOUBLE_EQ(OmegaValue(OmegaKind::kSumSizes, 3, 5), 8.0);
  EXPECT_DOUBLE_EQ(OmegaValue(OmegaKind::kGeoMean, 4, 9), 6.0);
  EXPECT_DOUBLE_EQ(OmegaValue(OmegaKind::kMaxSize, 3, 5), 5.0);
  EXPECT_DOUBLE_EQ(OmegaValue(OmegaKind::kProduct, 3, 5), 15.0);
}

/// A lookup backed by an explicit matrix; -1 marks unmappable pairs.
struct MatrixLookup {
  const std::vector<std::vector<double>>* m;
  double operator()(NodeId x, NodeId y) const { return (*m)[x][y]; }
};

TEST(OperatorsTest, MaxPerRowTakesRowMaxima) {
  std::vector<std::vector<double>> m = {{0.2, 0.9}, {0.5, -1.0}};
  std::vector<NodeId> s1 = {0, 1};
  std::vector<NodeId> s2 = {0, 1};
  MatchingScratch scratch;
  OperatorConfig op{MappingKind::kMaxPerRow, OmegaKind::kSizeS1};
  double score = DirectionScore(op, MatchingAlgo::kGreedy, s1, s2,
                                MatrixLookup{&m}, &scratch);
  EXPECT_DOUBLE_EQ(score, (0.9 + 0.5) / 2.0);
}

TEST(OperatorsTest, MaxBothSidesAddsConverseSide) {
  std::vector<std::vector<double>> m = {{0.6, 0.8}};
  std::vector<NodeId> s1 = {0};
  std::vector<NodeId> s2 = {0, 1};
  MatchingScratch scratch;
  OperatorConfig op{MappingKind::kMaxBothSides, OmegaKind::kSumSizes};
  double score = DirectionScore(op, MatchingAlgo::kGreedy, s1, s2,
                                MatrixLookup{&m}, &scratch);
  // Row max 0.8 plus column maxima 0.6 and 0.8, over |S1|+|S2| = 3.
  EXPECT_DOUBLE_EQ(score, (0.8 + 0.6 + 0.8) / 3.0);
}

TEST(OperatorsTest, InjectiveUsesMatchingNotRowMaxima) {
  // Both rows prefer column 0; injectivity forces one onto column 1.
  std::vector<std::vector<double>> m = {{0.9, 0.1}, {0.8, 0.7}};
  std::vector<NodeId> s1 = {0, 1};
  std::vector<NodeId> s2 = {0, 1};
  MatchingScratch scratch;
  OperatorConfig op{MappingKind::kInjectiveRow, OmegaKind::kSizeS1};
  double greedy = DirectionScore(op, MatchingAlgo::kGreedy, s1, s2,
                                 MatrixLookup{&m}, &scratch);
  EXPECT_DOUBLE_EQ(greedy, (0.9 + 0.7) / 2.0);
  double hungarian = DirectionScore(op, MatchingAlgo::kHungarian, s1, s2,
                                    MatrixLookup{&m}, &scratch);
  EXPECT_DOUBLE_EQ(hungarian, (0.9 + 0.7) / 2.0);
}

TEST(OperatorsTest, HungarianBeatsGreedyWhenGreedyTraps) {
  std::vector<std::vector<double>> m = {{0.9, 0.8}, {0.7, 0.0}};
  std::vector<NodeId> s1 = {0, 1};
  std::vector<NodeId> s2 = {0, 1};
  MatchingScratch scratch;
  OperatorConfig op{MappingKind::kInjectiveRow, OmegaKind::kSizeS1};
  double greedy = DirectionScore(op, MatchingAlgo::kGreedy, s1, s2,
                                 MatrixLookup{&m}, &scratch);
  double hungarian = DirectionScore(op, MatchingAlgo::kHungarian, s1, s2,
                                    MatrixLookup{&m}, &scratch);
  EXPECT_DOUBLE_EQ(greedy, 0.9 / 2.0);
  EXPECT_DOUBLE_EQ(hungarian, (0.8 + 0.7) / 2.0);
  EXPECT_GE(greedy, hungarian / 2.0);  // ½-approximation
}

TEST(OperatorsTest, ProductSumsAllPairs) {
  std::vector<std::vector<double>> m = {{0.5, 0.25}, {0.25, 0.5}};
  std::vector<NodeId> s1 = {0, 1};
  std::vector<NodeId> s2 = {0, 1};
  MatchingScratch scratch;
  OperatorConfig op{MappingKind::kProduct, OmegaKind::kProduct};
  double score = DirectionScore(op, MatchingAlgo::kGreedy, s1, s2,
                                MatrixLookup{&m}, &scratch);
  EXPECT_DOUBLE_EQ(score, 1.5 / 4.0);
}

struct EmptyCase {
  MappingKind mapping;
  OmegaKind omega;
  bool s1_empty, s2_empty;
  double expected;
};

class EmptyConventions : public ::testing::TestWithParam<EmptyCase> {};

TEST_P(EmptyConventions, MatchTheDefinition) {
  const auto& c = GetParam();
  std::vector<std::vector<double>> m = {{1.0}};
  std::vector<NodeId> empty;
  std::vector<NodeId> one = {0};
  MatchingScratch scratch;
  OperatorConfig op{c.mapping, c.omega};
  double score = DirectionScore(op, MatchingAlgo::kGreedy,
                                c.s1_empty ? empty : one,
                                c.s2_empty ? empty : one, MatrixLookup{&m},
                                &scratch);
  EXPECT_DOUBLE_EQ(score, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EmptyConventions,
    ::testing::Values(
        // s: S1 empty is vacuous truth regardless of S2.
        EmptyCase{MappingKind::kMaxPerRow, OmegaKind::kSizeS1, true, true, 1.0},
        EmptyCase{MappingKind::kMaxPerRow, OmegaKind::kSizeS1, true, false, 1.0},
        EmptyCase{MappingKind::kMaxPerRow, OmegaKind::kSizeS1, false, true, 0.0},
        // dp mirrors s.
        EmptyCase{MappingKind::kInjectiveRow, OmegaKind::kSizeS1, true, false, 1.0},
        EmptyCase{MappingKind::kInjectiveRow, OmegaKind::kSizeS1, false, true, 0.0},
        // b: 1 only when both sides are empty.
        EmptyCase{MappingKind::kMaxBothSides, OmegaKind::kSumSizes, true, true, 1.0},
        EmptyCase{MappingKind::kMaxBothSides, OmegaKind::kSumSizes, true, false, 0.0},
        EmptyCase{MappingKind::kMaxBothSides, OmegaKind::kSumSizes, false, true, 0.0},
        // bj: 1 when both empty, 0 when exactly one is.
        EmptyCase{MappingKind::kInjectiveSym, OmegaKind::kGeoMean, true, true, 1.0},
        EmptyCase{MappingKind::kInjectiveSym, OmegaKind::kGeoMean, true, false, 0.0},
        EmptyCase{MappingKind::kInjectiveSym, OmegaKind::kGeoMean, false, true, 0.0},
        // product (SimRank): 0 when either side is empty.
        EmptyCase{MappingKind::kProduct, OmegaKind::kProduct, true, true, 0.0},
        EmptyCase{MappingKind::kProduct, OmegaKind::kProduct, true, false, 0.0}));

TEST(OperatorsTest, UpperBoundDominatesScore) {
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n1 = 1 + rng.NextBounded(5);
    const size_t n2 = 1 + rng.NextBounded(5);
    std::vector<std::vector<double>> m(n1, std::vector<double>(n2));
    for (auto& row : m) {
      for (auto& x : row) {
        x = rng.NextBernoulli(0.25) ? -1.0 : rng.NextDouble();
      }
    }
    std::vector<NodeId> s1(n1), s2(n2);
    for (size_t i = 0; i < n1; ++i) s1[i] = static_cast<NodeId>(i);
    for (size_t j = 0; j < n2; ++j) s2[j] = static_cast<NodeId>(j);
    auto compat = [&](NodeId x, NodeId y) { return m[x][y] >= 0.0; };
    MatchingScratch scratch;
    for (SimVariant v : kAllVariants) {
      OperatorConfig op = OperatorsForVariant(v);
      double score = DirectionScore(op, MatchingAlgo::kHungarian, s1, s2,
                                    MatrixLookup{&m}, &scratch);
      double bound = DirectionUpperBound(op, s1, s2, compat);
      EXPECT_LE(score, bound + 1e-9)
          << SimVariantName(v) << " trial " << trial;
    }
  }
}

// ------------------------------------------------------------ Validation --

TEST(ValidationTest, RejectsBadWeights) {
  auto pair = MakeRandomPair(1);
  FSimConfig config;
  config.w_out = 0.6;
  config.w_in = 0.4;  // sum == 1
  EXPECT_TRUE(ComputeFSim(pair.g1, pair.g2, config).status()
                  .IsInvalidArgument());
  config.w_out = -0.1;
  config.w_in = 0.4;
  EXPECT_TRUE(ComputeFSim(pair.g1, pair.g2, config).status()
                  .IsInvalidArgument());
}

TEST(ValidationTest, RejectsSeparateDictionaries) {
  LabelingOptions lo1, lo2;
  Graph g1 = ErdosRenyi(10, 20, lo1, 1);
  Graph g2 = ErdosRenyi(10, 20, lo2, 2);
  EXPECT_TRUE(
      ComputeFSim(g1, g2, FSimConfig{}).status().IsInvalidArgument());
}

TEST(ValidationTest, RejectsBadDomains) {
  auto pair = MakeRandomPair(2);
  FSimConfig config;
  config.theta = 1.5;
  EXPECT_FALSE(ComputeFSim(pair.g1, pair.g2, config).ok());
  config = FSimConfig{};
  config.alpha = 1.0;
  EXPECT_FALSE(ComputeFSim(pair.g1, pair.g2, config).ok());
  config = FSimConfig{};
  config.epsilon = 0.0;
  EXPECT_FALSE(ComputeFSim(pair.g1, pair.g2, config).ok());
  config = FSimConfig{};
  config.num_threads = 0;
  EXPECT_FALSE(ComputeFSim(pair.g1, pair.g2, config).ok());
}

TEST(ValidationTest, PairLimitIsEnforced) {
  auto pair = MakeRandomPair(3, 20, 20);
  FSimConfig config;
  config.pair_limit = 10;
  EXPECT_TRUE(ComputeFSim(pair.g1, pair.g2, config).status()
                  .IsInvalidArgument());
}

// ------------------------------------------------------------ Pair store --

TEST(PairStoreTest, ThetaOneKeepsSameLabelPairsOnly) {
  auto pair = MakeRandomPair(4, 10, 12, 3);
  FSimConfig config;
  config.theta = 1.0;
  LabelSimilarityCache lsim(*pair.g1.dict(), config.label_sim);
  auto store = PairStore::Build(pair.g1, pair.g2, config, lsim);
  ASSERT_TRUE(store.ok());
  size_t expected = 0;
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      if (pair.g1.Label(u) == pair.g2.Label(v)) ++expected;
    }
  }
  EXPECT_EQ(store->size(), expected);
  for (size_t i = 0; i < store->size(); ++i) {
    EXPECT_EQ(pair.g1.Label(store->U(i)), pair.g2.Label(store->V(i)));
  }
}

TEST(PairStoreTest, ThetaZeroKeepsAllPairs) {
  auto pair = MakeRandomPair(5, 7, 9);
  FSimConfig config;
  LabelSimilarityCache lsim(*pair.g1.dict(), config.label_sim);
  auto store = PairStore::Build(pair.g1, pair.g2, config, lsim);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 7u * 9u);
}

TEST(PairStoreTest, KeysAreSortedAndIndexed) {
  auto pair = MakeRandomPair(6, 6, 6);
  FSimConfig config;
  LabelSimilarityCache lsim(*pair.g1.dict(), config.label_sim);
  auto store = PairStore::Build(pair.g1, pair.g2, config, lsim);
  ASSERT_TRUE(store.ok());
  for (size_t i = 0; i < store->size(); ++i) {
    EXPECT_EQ(store->Find(store->U(i), store->V(i)), i);
  }
}

TEST(PairStoreTest, UpperBoundPruningMonotoneInBeta) {
  auto pair = MakeRandomPair(7, 14, 14);
  size_t prev_kept = ~size_t{0};
  for (double beta : {0.0, 0.3, 0.6, 0.9}) {
    FSimConfig config;
    config.upper_bound = true;
    config.beta = beta;
    LabelSimilarityCache lsim(*pair.g1.dict(), config.label_sim);
    auto store = PairStore::Build(pair.g1, pair.g2, config, lsim);
    ASSERT_TRUE(store.ok());
    EXPECT_LE(store->info().kept, prev_kept);
    prev_kept = store->info().kept;
    EXPECT_EQ(store->info().kept + store->info().pruned,
              store->info().theta_candidates);
  }
}

// ------------------------------------------------- Figure 1 / fractional --

TEST(Figure1FractionalTest, Table2ExactOnesAndOrdering) {
  Figure1 fig = MakeFigure1();
  // Exactly the ✓ entries of Table 2 reach score 1.
  const bool expected[4][4] = {
      // v1    v2     v3     v4
      {false, true, true, true},    // s
      {false, false, true, true},   // dp
      {false, true, false, true},   // b
      {false, false, false, true},  // bj
  };
  int row = 0;
  for (SimVariant variant : kAllVariants) {
    auto scores =
        ComputeFSim(fig.pattern, fig.data, PropertyConfig(variant));
    ASSERT_TRUE(scores.ok());
    const NodeId vs[4] = {fig.v1, fig.v2, fig.v3, fig.v4};
    for (int col = 0; col < 4; ++col) {
      const double s = scores->Score(fig.u, vs[col]);
      if (expected[row][col]) {
        EXPECT_DOUBLE_EQ(s, 1.0)
            << SimVariantName(variant) << " v" << col + 1;
      } else {
        EXPECT_LT(s, 1.0 - 1e-7)
            << SimVariantName(variant) << " v" << col + 1;
        EXPECT_GT(s, 0.5) << "nearly-simulated pairs keep high scores";
      }
    }
    ++row;
  }
}

TEST(Figure1FractionalTest, V1IsWorstCandidateUnderAllVariants) {
  Figure1 fig = MakeFigure1();
  for (SimVariant variant : kAllVariants) {
    auto scores =
        ComputeFSim(fig.pattern, fig.data, PropertyConfig(variant));
    ASSERT_TRUE(scores.ok());
    const double s1 = scores->Score(fig.u, fig.v1);
    EXPECT_LE(s1, scores->Score(fig.u, fig.v2));
    EXPECT_LE(s1, scores->Score(fig.u, fig.v3));
    EXPECT_LE(s1, scores->Score(fig.u, fig.v4));
  }
}

// ----------------------------------------------------- P1-P3 properties --

struct PropertyCase {
  SimVariant variant;
  uint64_t seed;
};

class FSimProperties : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(FSimProperties, P1RangeAndP2SimulationDefiniteness) {
  const auto& param = GetParam();
  GraphPair pair = MakeRandomPair(param.seed, 9, 10, 2);
  auto scores =
      ComputeFSim(pair.g1, pair.g2, PropertyConfig(param.variant));
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  BinaryRelation exact = MaxSimulation(pair.g1, pair.g2, param.variant);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      const double s = scores->Score(u, v);
      // P1: range.
      ASSERT_GE(s, 0.0);
      ASSERT_LE(s, 1.0);
      // P2: FSim = 1 ⟺ exact χ-simulation.
      if (exact.Contains(u, v)) {
        ASSERT_DOUBLE_EQ(s, 1.0)
            << SimVariantName(param.variant) << " (" << u << "," << v << ")";
      } else {
        ASSERT_LT(s, 1.0 - 1e-7)
            << SimVariantName(param.variant) << " (" << u << "," << v << ")";
      }
    }
  }
}

std::vector<PropertyCase> MakePropertyCases() {
  std::vector<PropertyCase> cases;
  for (SimVariant v : kAllVariants) {
    for (uint64_t seed = 0; seed < 6; ++seed) cases.push_back({v, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(VariantsAndSeeds, FSimProperties,
                         ::testing::ValuesIn(MakePropertyCases()),
                         [](const auto& param_info) {
                           return std::string(
                                      SimVariantName(param_info.param.variant)) +
                                  "_seed" + std::to_string(param_info.param.seed);
                         });

class SymmetryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymmetryProperty, P3ConditionalSymmetry) {
  GraphPair pair = MakeRandomPair(GetParam() ^ 0x515, 8, 9, 2);
  for (SimVariant variant : {SimVariant::kBi, SimVariant::kBijective}) {
    auto fwd = ComputeFSim(pair.g1, pair.g2, PropertyConfig(variant));
    auto bwd = ComputeFSim(pair.g2, pair.g1, PropertyConfig(variant));
    ASSERT_TRUE(fwd.ok() && bwd.ok());
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
        ASSERT_NEAR(fwd->Score(u, v), bwd->Score(v, u), 1e-9)
            << SimVariantName(variant) << " (" << u << "," << v << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryProperty,
                         ::testing::Range<uint64_t>(0, 6));

// ------------------------------------------------- Theorem 1/Corollary 1 --

class ConvergenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceProperty, DeltaContractsByWeightSum) {
  GraphPair pair = MakeRandomPair(GetParam() ^ 0xC0, 10, 10, 2);
  for (SimVariant variant : kAllVariants) {
    FSimConfig config = PropertyConfig(variant);
    config.record_delta_history = true;
    config.epsilon = 1e-8;
    config.max_iterations = 0;  // use the Corollary 1 bound
    auto scores = ComputeFSim(pair.g1, pair.g1, config);
    ASSERT_TRUE(scores.ok());
    const auto& stats = scores->stats();
    // Corollary 1: converged within ceil(log_{0.8}(1e-8)) = 83 iterations.
    EXPECT_TRUE(stats.converged) << SimVariantName(variant);
    const uint32_t bound = static_cast<uint32_t>(
        std::ceil(std::log(config.epsilon) / std::log(0.8)));
    EXPECT_LE(stats.iterations, bound);
    // Theorem 1: Δ_{k+1} <= (w+ + w-) Δ_k.
    const auto& history = stats.delta_history;
    for (size_t k = 0; k + 1 < history.size(); ++k) {
      EXPECT_LE(history[k + 1], 0.8 * history[k] + 1e-12)
          << SimVariantName(variant) << " at iteration " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceProperty,
                         ::testing::Range<uint64_t>(0, 4));

// --------------------------------------------------- Theorem 4: k-bisim --

class Theorem4 : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Theorem4, FSimBAtIterationKMatchesKBisimulation) {
  const uint32_t k = GetParam();
  LabelingOptions lo;
  lo.num_labels = 2;
  lo.skew = 0.3;
  Graph g = ErdosRenyi(12, 24, lo, 1234);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.w_out = 0.5;
  config.w_in = 0.0;  // k-bisimulation considers out-neighbors only (§4.3)
  config.label_sim = LabelSimKind::kIndicator;
  config.epsilon = 1e-15;
  config.max_iterations = k;
  auto scores = ComputeFSim(g, g, config);
  ASSERT_TRUE(scores.ok());
  auto sig = KBisimulationSignatures(g, k);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      const bool bisimilar = sig[u] == sig[v];
      const bool full_score = scores->Score(u, v) == 1.0;
      ASSERT_EQ(bisimilar, full_score)
          << "k=" << k << " (" << u << "," << v << ") score="
          << scores->Score(u, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, Theorem4, ::testing::Values(1u, 2u, 3u, 4u));

// -------------------------------------------------- Theorem 5: WL test --

class Theorem5 : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem5, WLColorsEqualIffBijectiveSimulation) {
  GraphPair pair = MakeRandomPair(GetParam() ^ 0x77, 8, 8, 2);
  Graph u1 = pair.g1.AsUndirected();
  Graph u2 = pair.g2.AsUndirected();
  auto [c1, c2] = WLColors2(u1, u2);
  BinaryRelation bj = MaxSimulation(u1, u2, SimVariant::kBijective);
  auto scores = ComputeFSim(u1, u2, PropertyConfig(SimVariant::kBijective));
  ASSERT_TRUE(scores.ok());
  for (NodeId u = 0; u < u1.NumNodes(); ++u) {
    for (NodeId v = 0; v < u2.NumNodes(); ++v) {
      const bool wl_equal = c1[u] == c2[v];
      ASSERT_EQ(wl_equal, bj.Contains(u, v)) << "(" << u << "," << v << ")";
      ASSERT_EQ(wl_equal, scores->Score(u, v) == 1.0)
          << "(" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem5, ::testing::Range<uint64_t>(0, 6));

// ------------------------------------------- SimRank / RoleSim (§4.3) --

TEST(SimRankEquivalenceTest, FrameworkMatchesStandalone) {
  LabelingOptions lo;
  lo.num_labels = 1;  // SimRank is label-free
  Graph g = ErdosRenyi(12, 30, lo, 88);
  const double c = 0.8;
  const uint32_t iters = 8;
  auto standalone = SimRankScores(g, c, iters);
  FSimConfig config = SimRankFSimConfig(c);
  config.max_iterations = iters;
  config.epsilon = 1e-15;
  auto framework = ComputeFSim(g, g, config);
  ASSERT_TRUE(framework.ok()) << framework.status().ToString();
  const size_t n = g.NumNodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_NEAR(framework->Score(u, v), standalone[u * n + v], 1e-10)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(RoleSimEquivalenceTest, FrameworkMatchesStandalone) {
  LabelingOptions lo;
  lo.num_labels = 1;
  Graph g = ErdosRenyi(10, 22, lo, 99).AsUndirected();
  const double beta = 0.15;
  const uint32_t iters = 6;
  auto standalone = RoleSimScores(g, beta, iters);
  FSimConfig config = RoleSimFSimConfig(beta);
  config.max_iterations = iters;
  config.epsilon = 1e-15;
  auto framework = ComputeFSim(g, g, config);
  ASSERT_TRUE(framework.ok()) << framework.status().ToString();
  const size_t n = g.NumNodes();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_NEAR(framework->Score(u, v), standalone[u * n + v], 1e-12)
          << "(" << u << "," << v << ")";
    }
  }
}

TEST(SimRankEquivalenceTest, DiagonalPinnedToOne) {
  LabelingOptions lo;
  lo.num_labels = 1;
  Graph g = ErdosRenyi(8, 16, lo, 7);
  FSimConfig config = SimRankFSimConfig(0.6);
  config.max_iterations = 5;
  auto scores = ComputeFSim(g, g, config);
  ASSERT_TRUE(scores.ok());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_DOUBLE_EQ(scores->Score(u, u), 1.0);
  }
}

// ----------------------------------------------------- Optimizations ----

TEST(ThetaTest, ThetaOneScoresStayInRangeAndKeepDefiniteness) {
  GraphPair pair = MakeRandomPair(0xBEE, 10, 10, 2);
  FSimConfig config = PropertyConfig(SimVariant::kSimple);
  config.theta = 1.0;
  auto scores = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(scores.ok());
  BinaryRelation exact =
      MaxSimulation(pair.g1, pair.g2, SimVariant::kSimple);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      const double s = scores->Score(u, v);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      // θ = 1 only restricts the mapping to same-label nodes, which is all
      // an exact simulation ever uses — the ✓ pairs still score 1.
      if (exact.Contains(u, v)) {
        EXPECT_DOUBLE_EQ(s, 1.0);
      }
    }
  }
}

TEST(ThetaTest, HigherThetaNeverEnlargesCandidateSet) {
  GraphPair pair = MakeRandomPair(0xCAFE, 12, 12, 3);
  size_t prev = ~size_t{0};
  for (double theta : {0.0, 0.5, 1.0}) {
    FSimConfig config = PropertyConfig(SimVariant::kBijective);
    config.label_sim = LabelSimKind::kJaroWinkler;
    config.theta = theta;
    auto scores = ComputeFSim(pair.g1, pair.g2, config);
    ASSERT_TRUE(scores.ok());
    EXPECT_LE(scores->stats().maintained_pairs, prev);
    prev = scores->stats().maintained_pairs;
  }
}

TEST(UpperBoundTest, BetaZeroPreservesKeptScores) {
  GraphPair pair = MakeRandomPair(0xF00, 10, 10, 2);
  FSimConfig plain = PropertyConfig(SimVariant::kBijective);
  auto base = ComputeFSim(pair.g1, pair.g2, plain);
  ASSERT_TRUE(base.ok());
  FSimConfig with_ub = plain;
  with_ub.upper_bound = true;
  with_ub.beta = 0.0;
  with_ub.alpha = 0.0;
  auto pruned = ComputeFSim(pair.g1, pair.g2, with_ub);
  ASSERT_TRUE(pruned.ok());
  // Pairs pruned at β = 0 have bound 0, hence true score 0; all kept pairs
  // must agree exactly with the unpruned run.
  const auto& keys = pruned->keys();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    ASSERT_NEAR(pruned->Score(u, v), base->Score(u, v), 1e-12);
  }
}

TEST(UpperBoundTest, Eq6BoundDominatesConvergedScores) {
  GraphPair pair = MakeRandomPair(0xF1, 10, 10, 2);
  for (SimVariant variant : kAllVariants) {
    FSimConfig config = PropertyConfig(variant);
    auto scores = ComputeFSim(pair.g1, pair.g2, config);
    ASSERT_TRUE(scores.ok());
    LabelSimilarityCache lsim(*pair.g1.dict(), config.label_sim);
    const OperatorConfig op = config.operators();
    auto compat = [&](NodeId x, NodeId y) {
      return lsim.Compatible(pair.g1.Label(x), pair.g2.Label(y),
                             config.theta);
    };
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
        const double bound =
            config.w_out * DirectionUpperBound(op, pair.g1.OutNeighbors(u),
                                               pair.g2.OutNeighbors(v),
                                               compat) +
            config.w_in * DirectionUpperBound(op, pair.g1.InNeighbors(u),
                                              pair.g2.InNeighbors(v),
                                              compat) +
            (1.0 - config.w_out - config.w_in) *
                lsim.Sim(pair.g1.Label(u), pair.g2.Label(v));
        ASSERT_LE(scores->Score(u, v), bound + 1e-9)
            << SimVariantName(variant) << " (" << u << "," << v << ")";
      }
    }
  }
}

TEST(UpperBoundTest, AlphaApproximatesPrunedLookups) {
  GraphPair pair = MakeRandomPair(0xF2, 12, 12, 2);
  FSimConfig config = PropertyConfig(SimVariant::kBijective);
  config.upper_bound = true;
  config.beta = 0.7;
  config.alpha = 0.3;
  auto scores = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->stats().pruned_pairs, 0u);
  for (double v : scores->values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

// --------------------------------------------------------- Parallelism --

TEST(ParallelTest, ThreadCountDoesNotChangeScores) {
  GraphPair pair = MakeRandomPair(0xABC, 14, 14, 3);
  for (SimVariant variant : kAllVariants) {
    FSimConfig serial = PropertyConfig(variant);
    serial.matching = MatchingAlgo::kGreedy;
    FSimConfig parallel = serial;
    parallel.num_threads = 4;
    auto a = ComputeFSim(pair.g1, pair.g2, serial);
    auto b = ComputeFSim(pair.g1, pair.g2, parallel);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->NumPairs(), b->NumPairs());
    const auto& keys = a->keys();
    for (size_t i = 0; i < keys.size(); ++i) {
      const NodeId u = PairFirst(keys[i]);
      const NodeId v = PairSecond(keys[i]);
      ASSERT_DOUBLE_EQ(a->Score(u, v), b->Score(u, v))
          << SimVariantName(variant);
    }
  }
}

// -------------------------------------------------------- Score container --

TEST(FSimScoresTest, RowAndTopK) {
  Figure1 fig = MakeFigure1();
  auto scores =
      ComputeFSim(fig.pattern, fig.data, PropertyConfig(SimVariant::kSimple));
  ASSERT_TRUE(scores.ok());
  auto top = scores->TopK(fig.u, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_GE(top[0].second, top[1].second);
  EXPECT_DOUBLE_EQ(top[0].second, 1.0);
  auto row = scores->Row(fig.u);
  EXPECT_EQ(row.size(), fig.data.NumNodes());  // theta = 0 keeps all pairs
  EXPECT_FALSE(scores->Contains(fig.u, static_cast<NodeId>(1u << 20)));
  EXPECT_DOUBLE_EQ(scores->Score(fig.u, static_cast<NodeId>(1u << 20)), 0.0);
}

TEST(FSimScoresTest, TopKLargerThanRowReturnsAll) {
  Figure1 fig = MakeFigure1();
  auto scores =
      ComputeFSim(fig.pattern, fig.data, PropertyConfig(SimVariant::kSimple));
  ASSERT_TRUE(scores.ok());
  auto top = scores->TopK(fig.u, 1000);
  EXPECT_EQ(top.size(), fig.data.NumNodes());
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
}

// ---------------------------------------------------- Modeling details --

TEST(ModelingTest, MilnerModeIgnoresInNeighbors) {
  // Two nodes identical in out-structure but different in in-structure: the
  // original 1971 definition (w- = 0) scores them 1, the 2011 definition
  // (w- > 0) does not.
  GraphBuilder b;
  NodeId x = b.AddNode("T");   // in: a
  NodeId y = b.AddNode("T");   // in: none
  NodeId a = b.AddNode("S");
  b.AddEdge(a, x);
  Graph g = std::move(b).BuildOrDie();

  FSimConfig milner = PropertyConfig(SimVariant::kSimple);
  milner.w_out = 0.5;
  milner.w_in = 0.0;
  auto m = ComputeFSim(g, g, milner);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Score(x, y), 1.0);

  FSimConfig ma2011 = PropertyConfig(SimVariant::kSimple);
  auto full = ComputeFSim(g, g, ma2011);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(full->Score(x, y), 1.0);  // x's in-neighbor a has no image
  EXPECT_DOUBLE_EQ(full->Score(y, x), 1.0);  // but y ⇝ x still holds
}

TEST(ModelingTest, IsolatedSameLabelNodesFullySimilar) {
  GraphBuilder b;
  b.AddNode("Z");
  b.AddNode("Z");
  Graph g = std::move(b).BuildOrDie();
  for (SimVariant variant : kAllVariants) {
    auto scores = ComputeFSim(g, g, PropertyConfig(variant));
    ASSERT_TRUE(scores.ok());
    EXPECT_DOUBLE_EQ(scores->Score(0, 1), 1.0) << SimVariantName(variant);
  }
}

TEST(ModelingTest, LabelSimilarityDrivesCrossLabelScores) {
  // Same structure, nearly-equal label strings: L_J scores the pair high,
  // L_I scores it at 0 plus nothing (no neighbors).
  GraphBuilder b;
  b.AddNode("health");
  b.AddNode("wealth");
  Graph g = std::move(b).BuildOrDie();
  FSimConfig indicator = PropertyConfig(SimVariant::kSimple);
  auto si = ComputeFSim(g, g, indicator);
  ASSERT_TRUE(si.ok());
  FSimConfig jw = PropertyConfig(SimVariant::kSimple);
  jw.label_sim = LabelSimKind::kJaroWinkler;
  auto sj = ComputeFSim(g, g, jw);
  ASSERT_TRUE(sj.ok());
  EXPECT_GT(sj->Score(0, 1), si->Score(0, 1));
  EXPECT_LT(sj->Score(0, 1), 1.0);
}

}  // namespace
}  // namespace fsim
