// Equivalence tests for the label-class indexed dense engine
// (core/dense_index.h): across every MappingKind x OmegaKind operator
// combination and both matching realizations, ComputeFSimDense must agree
// with the sparse engine on every maintained pair to 1e-12 — and its
// label-class indexed fast path must agree with its per-visit lookup
// fallback on the full matrix. The grouped enumeration visits candidates
// in class-grouped order; row/column maxima and the matching realizations
// are order-exact (original positions key the tie-breaks), so only the
// final additive reductions reassociate — far below the 1e-12 pin.
//
// Plus unit coverage for DenseFSimScores::TopK tie-breaking.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <tuple>

#include "common/random.h"
#include "core/dense_engine.h"
#include "core/fsim_config.h"
#include "core/fsim_engine.h"
#include "graph/graph_builder.h"

namespace fsim {
namespace {

constexpr double kTolerance = 1e-12;

/// A random labeled digraph where every node has out- and in-degree >= 1
/// (a ring plus random chords), so no operator/omega combination divides by
/// a zero normalizer. Labels are two-letter strings with nontrivial mutual
/// edit similarity, giving θ a real compatibility structure.
Graph MakeDenseRandomGraph(uint64_t seed, uint32_t n = 20) {
  static const char* kLabels[] = {"aa", "ab", "bb", "bc"};
  Rng rng(seed);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(kLabels[rng.Next() % 4]);
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddEdge(i, (i + 1) % n);
  }
  for (uint32_t e = 0; e < 2 * n; ++e) {
    NodeId from = static_cast<NodeId>(rng.Next() % n);
    NodeId to = static_cast<NodeId>(rng.Next() % n);
    if (from != to) builder.AddEdge(from, to);
  }
  return std::move(builder).BuildOrDie();
}

const char* MappingName(MappingKind kind) {
  switch (kind) {
    case MappingKind::kMaxPerRow: return "MaxPerRow";
    case MappingKind::kInjectiveRow: return "InjectiveRow";
    case MappingKind::kMaxBothSides: return "MaxBothSides";
    case MappingKind::kInjectiveSym: return "InjectiveSym";
    case MappingKind::kProduct: return "Product";
  }
  return "Unknown";
}

const char* OmegaName(OmegaKind kind) {
  switch (kind) {
    case OmegaKind::kSizeS1: return "SizeS1";
    case OmegaKind::kSumSizes: return "SumSizes";
    case OmegaKind::kGeoMean: return "GeoMean";
    case OmegaKind::kMaxSize: return "MaxSize";
    case OmegaKind::kProduct: return "Product";
  }
  return "Unknown";
}

using DenseParam = std::tuple<MappingKind, OmegaKind, MatchingAlgo>;

class DenseEngineOperatorSweep : public ::testing::TestWithParam<DenseParam> {
};

/// θ = 0: the sparse engine maintains every |V1| x |V2| pair, so the dense
/// and sparse engines compute the identical fixed point over the identical
/// pair set — the full-matrix differential check of the issue's sweep.
TEST_P(DenseEngineOperatorSweep, DenseMatchesSparseOnAllPairs) {
  const auto [mapping, omega, matching] = GetParam();
  const Graph g = MakeDenseRandomGraph(/*seed=*/7 + static_cast<int>(omega));
  FSimConfig config;
  config.operator_override = OperatorConfig{mapping, omega};
  config.matching = matching;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.0;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-4;

  auto sparse = ComputeFSimSelf(g, config);
  ASSERT_TRUE(sparse.ok()) << sparse.status().ToString();
  ASSERT_EQ(sparse->NumPairs(), g.NumNodes() * g.NumNodes());

  auto dense = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(dense.ok()) << dense.status().ToString();
  EXPECT_TRUE(dense->stats().used_neighbor_index);
  EXPECT_GT(dense->stats().neighbor_index_bytes, 0u);
  EXPECT_EQ(sparse->stats().iterations, dense->stats().iterations);

  for (uint64_t key : sparse->keys()) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    ASSERT_NEAR(sparse->Score(u, v), dense->Score(u, v), kTolerance)
        << "pair (" << u << ", " << v << ")";
  }
}

/// θ > 0 with a non-indicator L: multi-class compatibility bitsets and the
/// class-skipping enumeration, cross-checked against the dense engine's own
/// per-visit lookup fallback on the *full* matrix (including pairs the
/// sparse engine would not maintain).
TEST_P(DenseEngineOperatorSweep, IndexedMatchesLookupFallback) {
  const auto [mapping, omega, matching] = GetParam();
  const Graph g = MakeDenseRandomGraph(/*seed=*/23 + static_cast<int>(omega));
  FSimConfig config;
  config.operator_override = OperatorConfig{mapping, omega};
  config.matching = matching;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-4;

  config.neighbor_index_budget_bytes = 1ULL << 30;
  auto indexed = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
  EXPECT_TRUE(indexed->stats().used_neighbor_index);

  config.neighbor_index_budget_bytes = 0;
  auto fallback = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_FALSE(fallback->stats().used_neighbor_index);
  EXPECT_EQ(fallback->stats().neighbor_index_bytes, 0u);

  EXPECT_EQ(indexed->stats().iterations, fallback->stats().iterations);
  ASSERT_EQ(indexed->values().size(), fallback->values().size());
  for (size_t i = 0; i < indexed->values().size(); ++i) {
    ASSERT_FALSE(std::isnan(indexed->values()[i])) << "entry " << i;
    ASSERT_NEAR(indexed->values()[i], fallback->values()[i], kTolerance)
        << "entry " << i;
  }

  // Forced-scalar lockstep: FSIM_SIMD=off must reproduce the indexed run
  // (whatever level auto resolved to) on every entry. The vectorized
  // kernels are bit-identical by contract, so kTolerance is slack here;
  // tests/simd_kernel_test.cc pins the max-family paths to exact equality.
  config.neighbor_index_budget_bytes = 1ULL << 30;
  const char* prev_env = std::getenv("FSIM_SIMD");
  const std::string saved_env = prev_env ? prev_env : "";
  setenv("FSIM_SIMD", "off", 1);
  auto scalar = ComputeFSimDense(g, g, config);
  if (prev_env) {
    setenv("FSIM_SIMD", saved_env.c_str(), 1);
  } else {
    unsetenv("FSIM_SIMD");
  }
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  EXPECT_EQ(scalar->stats().simd_level, 0u);
  EXPECT_EQ(scalar->stats().iterations, indexed->stats().iterations);
  ASSERT_EQ(scalar->values().size(), indexed->values().size());
  for (size_t i = 0; i < indexed->values().size(); ++i) {
    ASSERT_NEAR(scalar->values()[i], indexed->values()[i], kTolerance)
        << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorCombinations, DenseEngineOperatorSweep,
    ::testing::Combine(
        ::testing::Values(MappingKind::kMaxPerRow, MappingKind::kInjectiveRow,
                          MappingKind::kMaxBothSides,
                          MappingKind::kInjectiveSym, MappingKind::kProduct),
        ::testing::Values(OmegaKind::kSizeS1, OmegaKind::kSumSizes,
                          OmegaKind::kGeoMean, OmegaKind::kMaxSize,
                          OmegaKind::kProduct),
        ::testing::Values(MatchingAlgo::kGreedy, MatchingAlgo::kHungarian)),
    [](const ::testing::TestParamInfo<DenseParam>& param_info) {
      return std::string(MappingName(std::get<0>(param_info.param))) + "_" +
             OmegaName(std::get<1>(param_info.param)) + "_" +
             (std::get<2>(param_info.param) == MatchingAlgo::kHungarian
                  ? "Hungarian"
                  : "Greedy");
    });

TEST(DenseEngineTest, BudgetFallbackStillMatchesSparse) {
  // A budget too small for the label-class table forces the lookup path;
  // scores must not change.
  const Graph g = MakeDenseRandomGraph(41);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.epsilon = 1e-4;
  config.neighbor_index_budget_bytes = 64;

  auto sparse = ComputeFSimSelf(g, config);
  ASSERT_TRUE(sparse.ok());
  auto dense = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(dense.ok());
  EXPECT_FALSE(dense->stats().used_neighbor_index);
  for (uint64_t key : sparse->keys()) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    ASSERT_NEAR(sparse->Score(u, v), dense->Score(u, v), kTolerance);
  }
}

TEST(DenseEngineTest, TopKBreaksTiesByNodeId) {
  // Row 0: v1 carries the top score; v0 and v2 tie below it and must be
  // returned in ascending node-id order; v3 trails.
  FSimStats stats;
  DenseFSimScores scores(2, 4,
                         {0.5, 0.9, 0.5, 0.1,  //
                          0.2, 0.2, 0.2, 0.2},
                         stats);
  auto top = scores.TopK(0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (std::pair<NodeId, double>{1, 0.9}));
  EXPECT_EQ(top[1], (std::pair<NodeId, double>{0, 0.5}));
  EXPECT_EQ(top[2], (std::pair<NodeId, double>{2, 0.5}));

  // k beyond the row clamps; an all-tied row comes back in id order.
  auto row1 = scores.TopK(1, 10);
  ASSERT_EQ(row1.size(), 4u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(row1[v].first, v);
    EXPECT_DOUBLE_EQ(row1[v].second, 0.2);
  }
}

}  // namespace
}  // namespace fsim
