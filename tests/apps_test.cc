// Tests for the application layers: evaluation metrics, the synthetic
// dataset registry, the DBIS generator, the node-similarity baselines, the
// pattern-matching pipeline (Table 6 machinery) and the alignment pipeline
// (Table 9 machinery).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "align/alignment.h"
#include "align/ews_align.h"
#include "align/final_align.h"
#include "align/gsana_align.h"
#include "align/version_generator.h"
#include "core/fsim_engine.h"
#include "datasets/dataset_registry.h"
#include "datasets/dbis.h"
#include "eval/metrics.h"
#include "exact/strong_simulation.h"
#include "graph/graph_io.h"
#include "measures/dense_matrix.h"
#include "measures/metapath.h"
#include "measures/qgram.h"
#include "pattern/gfinder.h"
#include "pattern/gray.h"
#include "pattern/match_types.h"
#include "pattern/naga.h"
#include "pattern/query_generator.h"
#include "pattern/seed_expansion.h"
#include "pattern/tspan.h"
#include "tests/test_graphs.h"

namespace fsim {
namespace {

// --------------------------------------------------------------- Metrics --

TEST(PearsonTest, PerfectAndInverseCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateSamples) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({}, {}), 0.0);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computed: r of (1,2,3,4) vs (1,3,2,4) = 0.8.
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {1, 3, 2, 4}), 0.8, 1e-12);
}

TEST(NDCGTest, PerfectRankingIsOne) {
  EXPECT_NEAR(NDCG({2, 2, 1, 0}, {2, 2, 1, 0}, 4), 1.0, 1e-12);
}

TEST(NDCGTest, WorstRankingBelowOne) {
  const double ndcg = NDCG({0, 0, 1, 2}, {2, 1, 0, 0}, 4);
  EXPECT_GT(ndcg, 0.0);
  EXPECT_LT(ndcg, 0.8);
}

TEST(NDCGTest, CutoffRestrictsEvaluation) {
  // Only the first position counts at k=1.
  EXPECT_NEAR(NDCG({2, 0, 0}, {2, 2, 2}, 1), 1.0, 1e-12);
  EXPECT_NEAR(NDCG({0, 2, 2}, {2, 2, 2}, 1), 0.0, 1e-12);
}

TEST(NDCGTest, AllZeroIdealIsZero) {
  EXPECT_DOUBLE_EQ(NDCG({0, 0}, {0, 0}, 2), 0.0);
}

TEST(F1Test, Formula) {
  EXPECT_DOUBLE_EQ(F1Score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(0.0, 0.0), 0.0);
  EXPECT_NEAR(F1Score(0.5, 1.0), 2.0 / 3.0, 1e-12);
}

TEST(CorrelateScoresTest, IdenticalRunsCorrelateAtOne) {
  auto pair = testing::MakeRandomPair(0xE1, 10, 10);
  FSimConfig config;
  config.max_iterations = 20;
  auto a = ComputeFSim(pair.g1, pair.g2, config);
  auto b = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(CorrelateScores(*a, *b), 1.0, 1e-12);
  EXPECT_NEAR(CorrelateCommonScores(*a, *b), 1.0, 1e-12);
}

// -------------------------------------------------------------- Datasets --

TEST(DatasetRegistryTest, EightSpecsInTableOrder) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs[0].name, "yeast");
  EXPECT_EQ(specs[4].name, "nell");
  EXPECT_EQ(specs[7].name, "acmcit");
}

TEST(DatasetRegistryTest, LookupByName) {
  auto spec = DatasetSpecByName("nell");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->labels, 269u);
  EXPECT_TRUE(DatasetSpecByName("no-such").status().IsNotFound());
}

TEST(DatasetRegistryTest, GeneratedShapeTracksSpec) {
  for (const auto& spec : AllDatasetSpecs()) {
    if (spec.nodes > 4000) continue;  // keep the test fast
    Graph g = MakeDataset(spec);
    EXPECT_EQ(g.NumNodes(), spec.nodes) << spec.name;
    EXPECT_GT(g.NumEdges(), spec.edges * 6 / 10) << spec.name;
    // Degree-sequence rounding can overshoot the target slightly.
    EXPECT_LE(g.NumEdges(), spec.edges * 115 / 100) << spec.name;
    EXPECT_LE(g.NumDistinctLabels(), spec.labels) << spec.name;
    EXPECT_LE(g.MaxOutDegree(), spec.max_out_degree) << spec.name;
    EXPECT_LE(g.MaxInDegree(), spec.max_in_degree) << spec.name;
  }
}

TEST(DatasetRegistryTest, DeterministicGeneration) {
  auto spec = DatasetSpecByName("yeast");
  ASSERT_TRUE(spec.ok());
  Graph a = MakeDataset(*spec);
  Graph b = MakeDataset(*spec);
  EXPECT_EQ(GraphToString(a), GraphToString(b));
}

// ------------------------------------------------------------------ DBIS --

class DbisTest : public ::testing::Test {
 protected:
  static const DbisGraph& Instance() {
    static const DbisGraph dbis = [] {
      DbisOptions opts;
      opts.num_authors = 300;
      opts.num_papers = 250;
      return MakeDbis(opts);
    }();
    return dbis;
  }
};

TEST_F(DbisTest, SchemaIsWellFormed) {
  const auto& dbis = Instance();
  const LabelId vlabel = dbis.graph.dict()->Find("V");
  const LabelId plabel = dbis.graph.dict()->Find("P");
  ASSERT_NE(vlabel, kInvalidNode);
  ASSERT_NE(plabel, kInvalidNode);
  for (NodeId v : dbis.venues) {
    EXPECT_EQ(dbis.graph.Label(v), vlabel);
    EXPECT_EQ(dbis.graph.OutDegree(v), 0u);  // venues are sinks
  }
  for (NodeId p : dbis.papers) {
    EXPECT_EQ(dbis.graph.Label(p), plabel);
    EXPECT_EQ(dbis.graph.OutDegree(p), 1u);  // published in exactly 1 venue
    EXPECT_GE(dbis.graph.InDegree(p), 1u);   // at least one author
  }
  for (NodeId a : dbis.authors) {
    EXPECT_EQ(dbis.graph.InDegree(a), 0u);  // authors are sources
  }
}

TEST_F(DbisTest, FlagshipDuplicatesExist) {
  const auto& dbis = Instance();
  ASSERT_EQ(dbis.flagship_dups.size(), 3u);
  EXPECT_EQ(dbis.venue_names[dbis.flagship], "WWW");
  EXPECT_EQ(dbis.venue_names[dbis.flagship_dups[0]], "WWW1");
  // Duplicates gather a nontrivial share of flagship papers.
  size_t dup_papers = 0;
  for (uint32_t dup : dbis.flagship_dups) {
    dup_papers += dbis.graph.InDegree(dbis.venues[dup]);
  }
  EXPECT_GT(dup_papers, 0u);
}

TEST_F(DbisTest, RelevanceGroundTruth) {
  const auto& dbis = Instance();
  EXPECT_DOUBLE_EQ(dbis.Relevance(dbis.flagship, dbis.flagship), 2.0);
  for (uint32_t dup : dbis.flagship_dups) {
    EXPECT_DOUBLE_EQ(dbis.Relevance(dbis.flagship, dup), 2.0);
    EXPECT_DOUBLE_EQ(dbis.Relevance(dup, dbis.flagship), 2.0);
  }
  // Find venues in a different area: relevance 0.
  for (uint32_t i = 0; i < dbis.venues.size(); ++i) {
    if (dbis.venue_area[i] != dbis.venue_area[dbis.flagship]) {
      EXPECT_DOUBLE_EQ(dbis.Relevance(dbis.flagship, i), 0.0);
      break;
    }
  }
}

// ---------------------------------------------------------- DenseMatrix --

TEST(DenseMatrixTest, MultiplyKnownProduct) {
  DenseMatrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 2) = 3;
  DenseMatrix b(3, 2);
  b.At(0, 0) = 4;
  b.At(1, 0) = 5;
  b.At(2, 1) = 6;
  DenseMatrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 18.0);
}

TEST(DenseMatrixTest, GramIsSymmetric) {
  DenseMatrix a(2, 3);
  a.At(0, 0) = 1;
  a.At(0, 2) = 2;
  a.At(1, 1) = 3;
  DenseMatrix g = a.GramWithTranspose();
  EXPECT_DOUBLE_EQ(g.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g.At(0, 1), g.At(1, 0));
}

TEST(DenseMatrixTest, NormalizeRowsMakesStochastic) {
  DenseMatrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 3;
  a.NormalizeRows();
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 0.0);  // zero row untouched
}

// -------------------------------------------------------------- MetaPath --

TEST(MetaPathTest, SimilaritiesAreWellFormed) {
  DbisOptions opts;
  opts.num_authors = 300;
  opts.num_papers = 250;
  DbisGraph dbis = MakeDbis(opts);
  MetaPathScores scores = ComputeMetaPathScores(dbis);
  const size_t nv = dbis.venues.size();
  for (size_t i = 0; i < nv; ++i) {
    for (size_t j = 0; j < nv; ++j) {
      EXPECT_GE(scores.pathsim.At(i, j), 0.0);
      EXPECT_LE(scores.pathsim.At(i, j), 1.0 + 1e-9);
      EXPECT_DOUBLE_EQ(scores.pathsim.At(i, j), scores.pathsim.At(j, i));
      EXPECT_GE(scores.pcrw.At(i, j), 0.0);
    }
    // Diagonal dominance for venues with papers.
    if (dbis.graph.InDegree(dbis.venues[i]) > 0) {
      EXPECT_NEAR(scores.pathsim.At(i, i), 1.0, 1e-9);
      EXPECT_NEAR(scores.joinsim.At(i, i), 1.0, 1e-9);
    }
  }
  // PCRW rows are sub-stochastic (probabilities of 4-hop walks).
  for (size_t i = 0; i < nv; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < nv; ++j) row += scores.pcrw.At(i, j);
    EXPECT_LE(row, 1.0 + 1e-9);
  }
}

TEST(MetaPathTest, FlagshipDuplicatesScoreHighly) {
  DbisOptions opts;
  opts.num_authors = 400;
  opts.num_papers = 500;
  DbisGraph dbis = MakeDbis(opts);
  MetaPathScores scores = ComputeMetaPathScores(dbis);
  // WWW's duplicates share its community, so their JoinSim to WWW should
  // beat the median venue's.
  std::vector<double> all;
  for (uint32_t j = 0; j < dbis.venues.size(); ++j) {
    if (j != dbis.flagship) all.push_back(scores.joinsim.At(dbis.flagship, j));
  }
  std::sort(all.begin(), all.end());
  const double median = all[all.size() / 2];
  for (uint32_t dup : dbis.flagship_dups) {
    EXPECT_GE(scores.joinsim.At(dbis.flagship, dup), median);
  }
}

// ----------------------------------------------------------------- QGram --

TEST(QGramTest, DepthOneProfilesAreNodeLabels) {
  auto fig = testing::MakeFigure1();
  auto profiles = QGramProfiles(fig.data, 1);
  for (NodeId u = 0; u < fig.data.NumNodes(); ++u) {
    EXPECT_EQ(profiles[u].size(), 1u);
  }
  // Same-label sinks have identical depth-1 profiles.
  EXPECT_DOUBLE_EQ(QGramSimilarity(profiles[fig.v1], profiles[fig.v2]), 1.0);
}

TEST(QGramTest, SimilarityBounds) {
  auto pair = testing::MakeRandomPair(0x9A, 20, 20, 3);
  auto profiles = QGramProfiles(pair.g1, 3);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      const double s = QGramSimilarity(profiles[u], profiles[v]);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      EXPECT_DOUBLE_EQ(s, QGramSimilarity(profiles[v], profiles[u]));
    }
    EXPECT_DOUBLE_EQ(QGramSimilarity(profiles[u], profiles[u]), 1.0);
  }
}

TEST(QGramTest, EmptyProfilesAreIdentical) {
  QGramProfile a, b;
  EXPECT_DOUBLE_EQ(QGramSimilarity(a, b), 1.0);
  a[42] = 1;
  EXPECT_DOUBLE_EQ(QGramSimilarity(a, b), 0.0);
}

// --------------------------------------------------------- Match evaluation --

TEST(MatchEvalTest, PerfectMapping) {
  Mapping mapping = {5, 6, 7};
  auto eval = EvaluateMapping(mapping, {5, 6, 7});
  EXPECT_DOUBLE_EQ(eval.precision, 1.0);
  EXPECT_DOUBLE_EQ(eval.recall, 1.0);
  EXPECT_DOUBLE_EQ(eval.f1, 1.0);
}

TEST(MatchEvalTest, PartialAndUnmatched) {
  Mapping mapping = {5, kInvalidNode, 9};
  auto eval = EvaluateMapping(mapping, {5, 6, 7});
  EXPECT_DOUBLE_EQ(eval.precision, 0.5);   // 1 correct of 2 mapped
  EXPECT_NEAR(eval.recall, 1.0 / 3.0, 1e-12);
  EXPECT_GT(eval.f1, 0.0);
}

TEST(MatchEvalTest, EmptyMappingScoresZero) {
  Mapping mapping = {kInvalidNode, kInvalidNode};
  auto eval = EvaluateMapping(mapping, {1, 2});
  EXPECT_DOUBLE_EQ(eval.f1, 0.0);
}

// --------------------------------------------------------- Query generator --

TEST(QueryGeneratorTest, ExtractedQueryIsInducedAndConnected) {
  auto data = MakeDatasetByName("yeast");
  Rng rng(0xDD);
  for (int trial = 0; trial < 10; ++trial) {
    PatternQuery q = ExtractQuery(data, 8, &rng);
    ASSERT_LE(q.query.NumNodes(), 8u);
    ASSERT_EQ(q.ground_truth.size(), q.query.NumNodes());
    // Induced: labels and edges mirror the data graph.
    for (NodeId a = 0; a < q.query.NumNodes(); ++a) {
      EXPECT_EQ(q.query.Label(a), data.Label(q.ground_truth[a]));
      for (NodeId b = 0; b < q.query.NumNodes(); ++b) {
        EXPECT_EQ(q.query.HasEdge(a, b),
                  data.HasEdge(q.ground_truth[a], q.ground_truth[b]));
      }
    }
  }
}

TEST(QueryGeneratorTest, StructuralNoiseAddsEdgesOnly) {
  auto data = MakeDatasetByName("yeast");
  Rng rng(0xDE);
  PatternQuery q = ExtractQuery(data, 10, &rng);
  PatternQuery noisy = AddStructuralNoise(q, 0.33, &rng);
  EXPECT_GE(noisy.query.NumEdges(), q.query.NumEdges());
  EXPECT_EQ(noisy.ground_truth, q.ground_truth);
  for (NodeId a = 0; a < q.query.NumNodes(); ++a) {
    EXPECT_EQ(noisy.query.Label(a), q.query.Label(a));
    for (NodeId b : q.query.OutNeighbors(a)) {
      EXPECT_TRUE(noisy.query.HasEdge(a, b));
    }
  }
}

TEST(QueryGeneratorTest, LabelNoiseChangesLabelsOnly) {
  auto data = MakeDatasetByName("yeast");
  Rng rng(0xDF);
  PatternQuery q = ExtractQuery(data, 10, &rng);
  PatternQuery noisy = AddLabelNoise(q, 0.33, &rng);
  EXPECT_EQ(noisy.query.NumEdges(), q.query.NumEdges());
  size_t changed = 0;
  for (NodeId a = 0; a < q.query.NumNodes(); ++a) {
    if (noisy.query.Label(a) != q.query.Label(a)) ++changed;
  }
  EXPECT_GT(changed, 0u);
  EXPECT_LE(changed, (q.query.NumNodes() + 2) / 2);
}

// ----------------------------------------------------------- Matchers ----

/// End-to-end sanity: on an exact (noise-free) query every matcher should
/// locate a valid region; FSim seed expansion should recover the planted
/// ground truth most of the time.
TEST(MatchersTest, FSimSeedExpansionRecoversPlantedQuery) {
  auto data = MakeDatasetByName("amazon");
  Rng rng(0x51);
  int correct = 0;
  constexpr int kTrials = 8;
  for (int trial = 0; trial < kTrials; ++trial) {
    PatternQuery q = ExtractQuery(data, 6, &rng);
    FSimConfig config;
    config.variant = SimVariant::kSimple;
    config.epsilon = 1e-4;
    auto scores = ComputeFSim(q.query, data, config);
    ASSERT_TRUE(scores.ok());
    Mapping mapping = SeedExpansionMatch(q.query, data, *scores);
    auto eval = EvaluateMapping(mapping, q.ground_truth);
    if (eval.f1 > 0.8) ++correct;
  }
  EXPECT_GE(correct, kTrials / 2);
}

TEST(MatchersTest, TSpanFindsValidEmbeddingOnExactQuery) {
  auto data = MakeDatasetByName("amazon");
  Rng rng(0x52);
  PatternQuery q = ExtractQuery(data, 6, &rng);
  TSpanOptions opts;
  opts.max_missing_edges = 0;
  Mapping mapping = TSpanMatch(q.query, data, opts);
  ASSERT_FALSE(mapping.empty());
  // Validity: labels match, all query edges embedded, injective.
  std::set<NodeId> used;
  for (NodeId a = 0; a < q.query.NumNodes(); ++a) {
    ASSERT_NE(mapping[a], kInvalidNode);
    EXPECT_TRUE(used.insert(mapping[a]).second);
    EXPECT_EQ(q.query.Label(a), data.Label(mapping[a]));
    for (NodeId b : q.query.OutNeighbors(a)) {
      EXPECT_TRUE(data.HasEdge(mapping[a], mapping[b]));
    }
  }
}

TEST(MatchersTest, TSpanToleratesUpToXMissingEdges) {
  auto data = MakeDatasetByName("amazon");
  Rng rng(0x53);
  PatternQuery q = ExtractQuery(data, 6, &rng);
  PatternQuery noisy = AddStructuralNoise(q, 0.34, &rng);
  const uint32_t inserted = static_cast<uint32_t>(noisy.query.NumEdges() -
                                                  q.query.NumEdges());
  ASSERT_GT(inserted, 0u);
  TSpanOptions strict;
  strict.max_missing_edges = 0;
  TSpanOptions loose;
  loose.max_missing_edges = inserted;
  Mapping loose_map = TSpanMatch(noisy.query, data, loose);
  EXPECT_FALSE(loose_map.empty());
  // With zero budget the noisy query generally has no exact embedding at
  // the planted site; if one is found elsewhere it must be edge-exact.
  Mapping strict_map = TSpanMatch(noisy.query, data, strict);
  if (!strict_map.empty()) {
    for (NodeId a = 0; a < noisy.query.NumNodes(); ++a) {
      for (NodeId b : noisy.query.OutNeighbors(a)) {
        EXPECT_TRUE(data.HasEdge(strict_map[a], strict_map[b]));
      }
    }
  }
}

TEST(MatchersTest, TSpanReturnsEmptyOnForeignLabels) {
  auto data = MakeDatasetByName("amazon");
  GraphBuilder qb(data.dict());
  qb.AddNode("label-not-in-amazon");
  Graph query = std::move(qb).BuildOrDie();
  EXPECT_TRUE(TSpanMatch(query, data, TSpanOptions{}).empty());
}

TEST(MatchersTest, ChiSquareSimilarityBasics) {
  auto fig = testing::MakeFigure1();
  // v4 mirrors u's neighborhood exactly: chi-square 0, similarity 1.
  EXPECT_DOUBLE_EQ(
      ChiSquareNodeSimilarity(fig.pattern, fig.u, fig.data, fig.v4), 1.0);
  // v1 misses neighbors: lower similarity but same label.
  const double s1 =
      ChiSquareNodeSimilarity(fig.pattern, fig.u, fig.data, fig.v1);
  EXPECT_GT(s1, 0.0);
  EXPECT_LT(s1, 1.0);
  // Different node labels: 0.
  EXPECT_DOUBLE_EQ(
      ChiSquareNodeSimilarity(fig.pattern, fig.u, fig.data, fig.v1 + 1), 0.0);
}

TEST(MatchersTest, NagaAndGFinderProduceMappings) {
  auto data = MakeDatasetByName("amazon");
  Rng rng(0x54);
  PatternQuery q = ExtractQuery(data, 6, &rng);
  Mapping naga = NagaMatch(q.query, data);
  ASSERT_EQ(naga.size(), q.query.NumNodes());
  Mapping gf = GFinderMatch(q.query, data);
  ASSERT_EQ(gf.size(), q.query.NumNodes());
  // G-Finder on an exact query should locate a zero-cost (exact) region.
  auto eval = EvaluateMapping(gf, q.ground_truth);
  EXPECT_GE(eval.precision, 0.0);  // well-formed
}

TEST(MatchersTest, StrongSimulationEvaluatesOnPlantedQuery) {
  auto data = MakeDatasetByName("yeast");
  Rng rng(0x55);
  PatternQuery q = ExtractQuery(data, 5, &rng);
  StrongSimOptions opts;
  opts.max_results = 4;
  opts.max_ball_size = 600;
  auto matches = StrongSimulation(q.query, data, opts);
  if (!matches.empty()) {
    auto eval = EvaluateSetMatch(matches.front(), q.ground_truth);
    EXPECT_GE(eval.f1, 0.0);
    EXPECT_LE(eval.f1, 1.0);
  }
}

// ----------------------------------------------------------- Alignment ----

TEST(AlignmentF1Test, FormulaMatchesHandComputation) {
  Alignment a;
  a.aligned = {{0}, {1, 5}, {9}};
  // u=0: |Au|=1, hit -> 2*(1)*(1)/(1+1) = 1
  // u=1: |Au|=2, hit -> 2*(0.5)/(1.5) = 2/3
  // u=2: miss -> 0
  EXPECT_NEAR(AlignmentF1(a, 3), (1.0 + 2.0 / 3.0) / 3.0, 1e-12);
}

TEST(AlignmentF1Test, IdentityAlignmentIsPerfect) {
  Alignment a;
  for (NodeId u = 0; u < 5; ++u) a.aligned.push_back({u});
  EXPECT_DOUBLE_EQ(AlignmentF1(a, 5), 1.0);
}

TEST(VersionGeneratorTest, GrowthPreservesBase) {
  VersionOptions opts;
  opts.base_nodes = 400;
  opts.base_edges = 1000;
  VersionedGraphs versions = MakeVersionedGraphs(opts);
  EXPECT_GT(versions.v2.NumNodes(), versions.base.NumNodes());
  EXPECT_GT(versions.v3.NumNodes(), versions.v2.NumNodes());
  EXPECT_EQ(versions.base.dict(), versions.v2.dict());
  // All base labels and edges survive in v2.
  for (NodeId u = 0; u < versions.base.NumNodes(); ++u) {
    EXPECT_EQ(versions.base.Label(u), versions.v2.Label(u));
    for (NodeId v : versions.base.OutNeighbors(u)) {
      EXPECT_TRUE(versions.v2.HasEdge(u, v));
    }
  }
}

class AlignerSmoke : public ::testing::Test {
 protected:
  static const VersionedGraphs& Versions() {
    static const VersionedGraphs v = [] {
      VersionOptions opts;
      opts.base_nodes = 500;
      opts.base_edges = 1200;
      return MakeVersionedGraphs(opts);
    }();
    return v;
  }
};

TEST_F(AlignerSmoke, KBisimAlignsIdenticalGraphsPerfectlyishAndVersionsWorse) {
  const auto& v = Versions();
  // On identical graphs, every node's block contains itself: recall 1.
  Alignment self_align = KBisimAlignment(v.base, v.base, 2);
  double self_f1 = AlignmentF1(self_align, v.base.NumNodes());
  EXPECT_GT(self_f1, 0.3);
  for (NodeId u = 0; u < v.base.NumNodes(); ++u) {
    EXPECT_FALSE(self_align.aligned[u].empty());
  }
  // Across versions the partition shatters: F1 drops.
  Alignment cross = KBisimAlignment(v.base, v.v2, 2);
  EXPECT_LT(AlignmentF1(cross, v.base.NumNodes()), self_f1);
}

TEST_F(AlignerSmoke, DeeperKBisimIsStricter) {
  const auto& v = Versions();
  double f1_k2 = AlignmentF1(KBisimAlignment(v.base, v.v2, 2),
                             v.base.NumNodes());
  double f1_k4 = AlignmentF1(KBisimAlignment(v.base, v.v2, 4),
                             v.base.NumNodes());
  EXPECT_LE(f1_k4, f1_k2 + 1e-9);
}

TEST_F(AlignerSmoke, OlapBeatsFixedDepthBisim) {
  const auto& v = Versions();
  double olap = AlignmentF1(OlapAlignment(v.base, v.v2), v.base.NumNodes());
  double k4 = AlignmentF1(KBisimAlignment(v.base, v.v2, 4),
                          v.base.NumNodes());
  EXPECT_GE(olap, k4);
}

TEST_F(AlignerSmoke, ExactBisimCollapsesAcrossVersions) {
  const auto& v = Versions();
  double f1 = AlignmentF1(BisimAlignment(v.base, v.v2), v.base.NumNodes());
  EXPECT_LT(f1, 0.2);  // the paper reports 0%
}

TEST_F(AlignerSmoke, FinalAlignmentProducesScores) {
  const auto& v = Versions();
  Alignment a = FinalAlignment(v.base, v.v2);
  ASSERT_EQ(a.aligned.size(), v.base.NumNodes());
  double f1 = AlignmentF1(a, v.base.NumNodes());
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);
}

TEST_F(AlignerSmoke, EwsAlignmentMatchesInjectively) {
  const auto& v = Versions();
  Alignment a = EwsAlignment(v.base, v.v2);
  std::set<NodeId> used;
  size_t matched = 0;
  for (const auto& au : a.aligned) {
    ASSERT_LE(au.size(), 1u);  // EWS emits 1:1 matches
    if (!au.empty()) {
      EXPECT_TRUE(used.insert(au[0]).second) << "duplicate target";
      ++matched;
    }
  }
  EXPECT_GT(matched, 0u);
}

TEST_F(AlignerSmoke, GsanaAlignmentRespectsLabels) {
  const auto& v = Versions();
  Alignment a = GsanaAlignment(v.base, v.v2);
  for (NodeId u = 0; u < v.base.NumNodes(); ++u) {
    for (NodeId w : a.aligned[u]) {
      EXPECT_EQ(v.base.Label(u), v.v2.Label(w));
    }
  }
}

TEST_F(AlignerSmoke, FSimAlignmentOnIdenticalGraphsContainsIdentity) {
  const auto& v = Versions();
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.theta = 1.0;
  config.epsilon = 1e-3;
  auto scores = ComputeFSim(v.base, v.base, config);
  ASSERT_TRUE(scores.ok());
  Alignment a = FSimAlignment(*scores, v.base.NumNodes());
  size_t hits = 0;
  for (NodeId u = 0; u < v.base.NumNodes(); ++u) {
    if (std::find(a.aligned[u].begin(), a.aligned[u].end(), u) !=
        a.aligned[u].end()) {
      ++hits;
    }
  }
  // Self-similarity peaks on the diagonal (up to exact ties).
  EXPECT_EQ(hits, v.base.NumNodes());
}

// ---------------------------------------------------------------------------
// G-Ray best-effort matching (extension baseline)
// ---------------------------------------------------------------------------

TEST(GRayTest, RecoversCleanExtractedQuery) {
  Graph data = MakeDatasetByName("yeast");
  Rng rng(0x6A41);
  double f1_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    PatternQuery q = ExtractQuery(data, 5, &rng);
    Mapping mapping = GRayMatch(q.query, data);
    f1_sum += EvaluateMapping(mapping, q.ground_truth).f1;
  }
  // Proximity-guided growth recovers most of the extraction region.
  EXPECT_GT(f1_sum / 3.0, 0.5);
}

TEST(GRayTest, AlwaysProducesFullInjectiveMapping) {
  Graph data = MakeDatasetByName("yeast");
  Rng rng(0x6A42);
  PatternQuery q = ExtractQuery(data, 6, &rng);
  PatternQuery noisy = AddLabelNoise(q, 0.33, &rng);
  Mapping mapping = GRayMatch(noisy.query, data);
  std::set<NodeId> images;
  for (NodeId v : mapping) {
    ASSERT_NE(v, kInvalidNode);  // best-effort: never empty-handed
    EXPECT_TRUE(images.insert(v).second) << "duplicate image " << v;
  }
  EXPECT_EQ(mapping.size(), noisy.query.NumNodes());
}

TEST(GRayTest, SurvivesStructuralNoise) {
  // Proximity-guided growth is the edge-noise-tolerant family: a missing or
  // spurious query edge only perturbs proximity, it never empties the
  // candidate set (label rewrites do attack the candidate filter, which is
  // the honest weakness of this family).
  Graph data = MakeDatasetByName("yeast");
  Rng rng(0x6A43);
  double f1_sum = 0.0;
  for (int i = 0; i < 3; ++i) {
    PatternQuery q = ExtractQuery(data, 6, &rng);
    PatternQuery noisy = AddStructuralNoise(q, 0.33, &rng);
    f1_sum += EvaluateMapping(GRayMatch(noisy.query, data),
                              noisy.ground_truth).f1;
  }
  EXPECT_GT(f1_sum / 3.0, 0.25);  // degraded, not destroyed
}

TEST(GRayTest, EmptyInputsAreHandled) {
  Graph empty;
  Graph data = MakeDatasetByName("yeast");
  EXPECT_TRUE(GRayMatch(empty, data).empty());
  GraphBuilder b(data.dict());
  b.AddNodeWithLabelId(data.Label(0));
  Graph one = std::move(b).BuildOrDie();
  Mapping m = GRayMatch(one, empty);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], kInvalidNode);
}

TEST(GRayTest, Deterministic) {
  Graph data = MakeDatasetByName("yeast");
  Rng rng(0x6A44);
  PatternQuery q = ExtractQuery(data, 7, &rng);
  Mapping a = GRayMatch(q.query, data);
  Mapping b = GRayMatch(q.query, data);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fsim
