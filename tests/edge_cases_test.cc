// Edge-case and failure-injection tests: degenerate graphs, extreme
// configurations, and robustness of the engine's contracts at the
// boundaries of the parameter domains.
#include <gtest/gtest.h>

#include "core/fsim_engine.h"
#include "core/pair_store.h"
#include "exact/exact_simulation.h"
#include "exact/signatures.h"
#include "exact/strong_simulation.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/noise.h"
#include "graph/subgraph.h"
#include "graph/traversal.h"
#include "tests/test_graphs.h"

namespace fsim {
namespace {

// ------------------------------------------------------ Degenerate graphs --

TEST(EdgeCaseTest, EmptyGraphsYieldEmptyScores) {
  GraphBuilder b1;
  Graph g1 = std::move(b1).BuildOrDie();
  GraphBuilder b2(g1.dict());
  Graph g2 = std::move(b2).BuildOrDie();
  auto scores = ComputeFSim(g1, g2, FSimConfig{});
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->NumPairs(), 0u);
}

TEST(EdgeCaseTest, EmptyAgainstNonEmpty) {
  GraphBuilder b1;
  Graph g1 = std::move(b1).BuildOrDie();
  GraphBuilder b2(g1.dict());
  b2.AddNode("A");
  Graph g2 = std::move(b2).BuildOrDie();
  auto scores = ComputeFSim(g1, g2, FSimConfig{});
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->NumPairs(), 0u);
  // Exact relation is empty too.
  BinaryRelation rel = MaxSimulation(g1, g2, SimVariant::kSimple);
  EXPECT_EQ(rel.CountPairs(), 0u);
}

TEST(EdgeCaseTest, SingleNodeSelfSimulation) {
  GraphBuilder b;
  b.AddNode("X");
  Graph g = std::move(b).BuildOrDie();
  for (SimVariant v :
       {SimVariant::kSimple, SimVariant::kDegreePreserving, SimVariant::kBi,
        SimVariant::kBijective}) {
    FSimConfig config;
    config.variant = v;
    auto scores = ComputeFSim(g, g, config);
    ASSERT_TRUE(scores.ok());
    EXPECT_DOUBLE_EQ(scores->Score(0, 0), 1.0) << SimVariantName(v);
  }
}

TEST(EdgeCaseTest, SelfLoopGraph) {
  GraphBuilder b;
  b.AddNode("X");
  b.AddNode("X");
  b.AddEdge(0, 0);  // self loop
  b.AddEdge(1, 1);
  Graph g = std::move(b).BuildOrDie();
  // Two self-loop nodes of the same label are bisimilar.
  BinaryRelation rel = MaxSimulation(g, g, SimVariant::kBijective);
  EXPECT_TRUE(rel.Contains(0, 1));
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.matching = MatchingAlgo::kHungarian;
  config.epsilon = 1e-10;
  config.max_iterations = 100;
  auto scores = ComputeFSim(g, g, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->Score(0, 1), 1.0);
}

TEST(EdgeCaseTest, StarVsStar) {
  // Hub with k leaves vs hub with k+1 leaves: s-simulates, not bj.
  GraphBuilder b;
  NodeId h1 = b.AddNode("H");
  for (int i = 0; i < 3; ++i) b.AddEdge(h1, b.AddNode("L"));
  NodeId h2 = b.AddNode("H");
  for (int i = 0; i < 4; ++i) b.AddEdge(h2, b.AddNode("L"));
  Graph g = std::move(b).BuildOrDie();
  EXPECT_TRUE(MaxSimulation(g, g, SimVariant::kSimple).Contains(h1, h2));
  EXPECT_TRUE(
      MaxSimulation(g, g, SimVariant::kDegreePreserving).Contains(h1, h2));
  EXPECT_FALSE(
      MaxSimulation(g, g, SimVariant::kDegreePreserving).Contains(h2, h1));
  EXPECT_FALSE(MaxSimulation(g, g, SimVariant::kBijective).Contains(h1, h2));
}

TEST(EdgeCaseTest, DirectedCycleBisimilarity) {
  // All nodes of a uniform-label directed cycle are bisimilar to each other.
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode("C");
  for (NodeId i = 0; i < 5; ++i) b.AddEdge(i, (i + 1) % 5);
  Graph g = std::move(b).BuildOrDie();
  BinaryRelation rel = MaxSimulation(g, g, SimVariant::kBijective);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_TRUE(rel.Contains(u, v));
    }
  }
}

// -------------------------------------------------- Extreme configurations --

TEST(EdgeCaseTest, ZeroWeightsReduceToLabelFunction) {
  auto pair = testing::MakeRandomPair(0xE0, 8, 8);
  FSimConfig config;
  config.w_out = 0.0;
  config.w_in = 0.0;
  config.label_sim = LabelSimKind::kJaroWinkler;
  auto scores = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(scores.ok());
  LabelSimilarityCache lsim(*pair.g1.dict(), LabelSimKind::kJaroWinkler);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      EXPECT_NEAR(scores->Score(u, v),
                  lsim.Sim(pair.g1.Label(u), pair.g2.Label(v)), 1e-12);
    }
  }
  EXPECT_LE(scores->stats().iterations, 1u);
}

TEST(EdgeCaseTest, NearOneWeightSumStillConverges) {
  auto pair = testing::MakeRandomPair(0xE2, 10, 10);
  FSimConfig config;
  config.w_out = 0.495;
  config.w_in = 0.495;  // w* = 0.01: slowest admissible contraction
  config.epsilon = 0.05;
  auto scores = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->stats().converged);
  for (double v : scores->values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(EdgeCaseTest, MaxIterationsOneStillWellFormed) {
  auto pair = testing::MakeRandomPair(0xE3, 10, 10);
  FSimConfig config;
  config.max_iterations = 1;
  auto scores = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->stats().iterations, 1u);
}

TEST(EdgeCaseTest, ThetaOneWithNoSharedLabels) {
  GraphBuilder b1;
  b1.AddNode("only-in-g1");
  Graph g1 = std::move(b1).BuildOrDie();
  GraphBuilder b2(g1.dict());
  b2.AddNode("only-in-g2");
  Graph g2 = std::move(b2).BuildOrDie();
  FSimConfig config;
  config.theta = 1.0;
  auto scores = ComputeFSim(g1, g2, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->NumPairs(), 0u);
  EXPECT_DOUBLE_EQ(scores->Score(0, 0), 0.0);
}

TEST(EdgeCaseTest, HungarianAndGreedyAgreeOnExactPairs) {
  // P2 pairs (score 1) must be identical under both matching algorithms.
  auto pair = testing::MakeRandomPair(0xE4, 9, 9, 2);
  FSimConfig greedy;
  greedy.variant = SimVariant::kBijective;
  greedy.epsilon = 1e-10;
  greedy.max_iterations = 120;
  FSimConfig hungarian = greedy;
  hungarian.matching = MatchingAlgo::kHungarian;
  auto sg = ComputeFSim(pair.g1, pair.g2, greedy);
  auto sh = ComputeFSim(pair.g1, pair.g2, hungarian);
  ASSERT_TRUE(sg.ok() && sh.ok());
  BinaryRelation exact =
      MaxSimulation(pair.g1, pair.g2, SimVariant::kBijective);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      if (exact.Contains(u, v)) {
        EXPECT_DOUBLE_EQ(sg->Score(u, v), 1.0);
        EXPECT_DOUBLE_EQ(sh->Score(u, v), 1.0);
      }
      // Hungarian realizes the maximum mapping: greedy can only fall below.
      EXPECT_LE(sg->Score(u, v), sh->Score(u, v) + 0.35);
    }
  }
}

// ---------------------------------------------------- Failure injection ---

TEST(EdgeCaseTest, HeavilyPerturbedGraphStaysComputable) {
  LabelingOptions lo;
  lo.num_labels = 5;
  Graph g = ErdosRenyi(100, 300, lo, 0xE5);
  Graph wrecked = PerturbStructure(g, 1.0, 0.9, 0xE6);  // 90% removed, +100%
  wrecked = PerturbLabels(wrecked, 0.5, LabelNoiseMode::kMissing, 0xE7);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  auto scores = ComputeFSim(wrecked, wrecked, config);
  ASSERT_TRUE(scores.ok());
  for (double v : scores->values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(EdgeCaseTest, BallOnIsolatedNode) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("A");
  Graph g = std::move(b).BuildOrDie();
  auto ball = Ball(g, 0, 3);
  EXPECT_EQ(ball.graph.NumNodes(), 1u);
}

TEST(EdgeCaseTest, DiameterOfDisconnectedGraphIgnoresUnreachable) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("A");
  b.AddNode("A");
  b.AddEdge(0, 1);
  Graph g = std::move(b).BuildOrDie();
  EXPECT_EQ(ExactDiameter(g), 1u);
}

TEST(EdgeCaseTest, StrongSimulationWithSingleNodeQuery) {
  auto fig = testing::MakeFigure1();
  GraphBuilder qb(fig.data.dict());
  qb.AddNode("hex");
  Graph query = std::move(qb).BuildOrDie();
  auto matches = StrongSimulation(query, fig.data);
  EXPECT_FALSE(matches.empty());
}

TEST(EdgeCaseTest, KBisimZeroRoundsOnEmptyGraph) {
  GraphBuilder b;
  Graph g = std::move(b).BuildOrDie();
  EXPECT_TRUE(KBisimulationSignatures(g, 3).empty());
  EXPECT_TRUE(WLColors(g).empty());
}

TEST(EdgeCaseTest, ScoresContainerOnThetaFilteredRows) {
  // Rows of nodes whose label has no counterpart are empty but queryable.
  GraphBuilder b1;
  b1.AddNode("A");
  b1.AddNode("B");
  Graph g1 = std::move(b1).BuildOrDie();
  GraphBuilder b2(g1.dict());
  b2.AddNode("A");
  Graph g2 = std::move(b2).BuildOrDie();
  FSimConfig config;
  config.theta = 1.0;
  auto scores = ComputeFSim(g1, g2, config);
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE(scores->TopK(1, 5).empty());
  EXPECT_EQ(scores->Row(0).size(), 1u);
}

}  // namespace
}  // namespace fsim
