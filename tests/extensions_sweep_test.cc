// Parameterized property sweeps of the extension modules over structured
// graph families (paths, cycles, stars, bipartite graphs, trees, disjoint
// cycle unions): partition refinement block counts and their equivalence to
// the exact checkers, weak-closure algebra, binary I/O round trips,
// incremental repair vs full recomputation, and top-k radius soundness.
#include <cmath>
#include <string>
#include <vector>

#include "core/fsim_engine.h"
#include "core/incremental.h"
#include "core/topk_allpairs.h"
#include "exact/exact_simulation.h"
#include "exact/partition_refinement.h"
#include "exact/weak_simulation.h"
#include "graph/binary_io.h"
#include "graph/edits.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "gtest/gtest.h"
#include "test_graphs.h"

namespace fsim {
namespace {

enum class Family {
  kPath,        // 0 -> 1 -> ... -> n-1
  kCycle,       // directed n-cycle
  kStar,        // hub -> n-1 leaves
  kBipartite,   // complete directed L -> R
  kBinaryTree,  // perfect binary tree, edges parent -> child
  kTwoCycles,   // disjoint C3 + C6 (the classic WL-indistinguishable pair)
};

const char* FamilyName(Family f) {
  switch (f) {
    case Family::kPath: return "path";
    case Family::kCycle: return "cycle";
    case Family::kStar: return "star";
    case Family::kBipartite: return "bipartite";
    case Family::kBinaryTree: return "binary_tree";
    case Family::kTwoCycles: return "two_cycles";
  }
  return "?";
}

// All families use a single label so only the structure differentiates.
Graph MakeFamily(Family family) {
  GraphBuilder b;
  switch (family) {
    case Family::kPath: {
      for (int i = 0; i < 7; ++i) b.AddNode("x");
      for (NodeId i = 0; i + 1 < 7; ++i) b.AddEdge(i, i + 1);
      break;
    }
    case Family::kCycle: {
      for (int i = 0; i < 6; ++i) b.AddNode("x");
      for (NodeId i = 0; i < 6; ++i) b.AddEdge(i, (i + 1) % 6);
      break;
    }
    case Family::kStar: {
      NodeId hub = b.AddNode("x");
      for (int i = 0; i < 6; ++i) b.AddEdge(hub, b.AddNode("x"));
      break;
    }
    case Family::kBipartite: {
      std::vector<NodeId> left, right;
      for (int i = 0; i < 3; ++i) left.push_back(b.AddNode("x"));
      for (int i = 0; i < 4; ++i) right.push_back(b.AddNode("x"));
      for (NodeId l : left) {
        for (NodeId r : right) b.AddEdge(l, r);
      }
      break;
    }
    case Family::kBinaryTree: {
      // Depth 3: 15 nodes.
      for (int i = 0; i < 15; ++i) b.AddNode("x");
      for (NodeId i = 0; i < 7; ++i) {
        b.AddEdge(i, 2 * i + 1);
        b.AddEdge(i, 2 * i + 2);
      }
      break;
    }
    case Family::kTwoCycles: {
      for (int i = 0; i < 9; ++i) b.AddNode("x");
      for (NodeId i = 0; i < 3; ++i) b.AddEdge(i, (i + 1) % 3);
      for (NodeId i = 0; i < 6; ++i) b.AddEdge(3 + i, 3 + (i + 1) % 6);
      break;
    }
  }
  return std::move(b).BuildOrDie();
}

// Expected bisimulation class count (set semantics, both directions).
size_t ExpectedBisimBlocks(Family family) {
  switch (family) {
    case Family::kPath: return 7;        // position along the path
    case Family::kCycle: return 1;       // rotation symmetry
    case Family::kStar: return 2;        // hub vs leaves
    case Family::kBipartite: return 2;   // sides
    case Family::kBinaryTree: return 4;  // levels
    case Family::kTwoCycles: return 1;   // all cycle nodes look alike
  }
  return 0;
}

class FamilySweep : public ::testing::TestWithParam<Family> {};

TEST_P(FamilySweep, BisimulationBlockCountsMatchTheory) {
  Graph g = MakeFamily(GetParam());
  Partition p = BisimulationPartition(g);
  EXPECT_EQ(p.num_blocks, ExpectedBisimBlocks(GetParam()));
}

TEST_P(FamilySweep, SetPartitionEqualsExactBisimulationRelation) {
  Graph g = MakeFamily(GetParam());
  Partition p = BisimulationPartition(g);
  BinaryRelation rel = MaxSimulation(g, g, SimVariant::kBi);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(p.SameBlock(u, v), rel.Contains(u, v))
          << FamilyName(GetParam()) << " (" << u << ", " << v << ")";
    }
  }
}

TEST_P(FamilySweep, CountingPartitionEqualsExactBijectiveRelation) {
  Graph g = MakeFamily(GetParam());
  Partition p =
      CoarsestStablePartition(g, RefinementSemantics::kCounting, true);
  BinaryRelation rel = MaxSimulation(g, g, SimVariant::kBijective);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_EQ(p.SameBlock(u, v), rel.Contains(u, v))
          << FamilyName(GetParam()) << " (" << u << ", " << v << ")";
    }
  }
}

TEST_P(FamilySweep, WeakClosureIsIdempotent) {
  Graph g = MakeFamily(GetParam());
  // Mark every third node internal (deterministic, family-agnostic).
  std::vector<uint8_t> mask(g.NumNodes(), 0);
  for (NodeId u = 0; u < g.NumNodes(); u += 3) mask[u] = 1;
  auto once = WeakClosure(g, mask);
  ASSERT_TRUE(once.ok());
  auto twice = WeakClosure(*once, mask);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(GraphToString(*once), GraphToString(*twice));
}

TEST_P(FamilySweep, WeakSimulationIsReflexive) {
  Graph g = MakeFamily(GetParam());
  std::vector<uint8_t> mask(g.NumNodes(), 0);
  for (NodeId u = 0; u < g.NumNodes(); u += 2) mask[u] = 1;
  auto weak = MaxWeakSimulation(g, mask, g, mask);
  ASSERT_TRUE(weak.ok());
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_TRUE(weak->Contains(u, u)) << FamilyName(GetParam()) << " " << u;
  }
}

TEST_P(FamilySweep, BinaryIORoundTrips) {
  Graph g = MakeFamily(GetParam());
  auto loaded = GraphFromBinary(GraphToBinary(g));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(GraphToString(g), GraphToString(*loaded));
}

TEST_P(FamilySweep, IncrementalRepairTracksFullRecompute) {
  Graph g = MakeFamily(GetParam());
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.epsilon = 1e-9;
  config.matching = MatchingAlgo::kHungarian;
  IncrementalOptions options;
  options.propagation_tolerance = 1e-10;
  auto inc = IncrementalFSim::Create(g, g, config, options);
  ASSERT_TRUE(inc.ok());

  // Insert a fresh edge, then remove an original one.
  NodeId from = 0, to = static_cast<NodeId>(g.NumNodes() - 1);
  if (!g.HasEdge(from, to) && from != to) {
    ASSERT_TRUE(inc->InsertEdge(1, from, to).ok());
  }
  NodeId src = 0;
  while (inc->g1().OutDegree(src) == 0) ++src;
  ASSERT_TRUE(inc->RemoveEdge(1, src, inc->g1().OutNeighbors(src)[0]).ok());

  auto full = ComputeFSim(inc->MaterializeG1(), inc->MaterializeG2(), config);
  ASSERT_TRUE(full.ok());
  for (uint64_t key : full->keys()) {
    EXPECT_NEAR(full->Score(PairFirst(key), PairSecond(key)),
                inc->Score(PairFirst(key), PairSecond(key)), 1e-6)
        << FamilyName(GetParam());
  }
}

TEST_P(FamilySweep, TopKRadiusIsSound) {
  Graph g = MakeFamily(GetParam());
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-8;
  TopKPairsOptions options;
  options.k = 5;
  options.exclude_diagonal = true;
  auto topk = ComputeTopKPairs(g, g, config, options);
  ASSERT_TRUE(topk.ok());

  auto full = ComputeFSim(g, g, config);
  ASSERT_TRUE(full.ok());
  for (const auto& p : topk->pairs) {
    EXPECT_NEAR(p.score, full->Score(p.u, p.v), topk->radius + 1e-9)
        << FamilyName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweep,
                         ::testing::Values(Family::kPath, Family::kCycle,
                                           Family::kStar, Family::kBipartite,
                                           Family::kBinaryTree,
                                           Family::kTwoCycles),
                         [](const ::testing::TestParamInfo<Family>& param_info) {
                           return FamilyName(param_info.param);
                         });

}  // namespace
}  // namespace fsim
