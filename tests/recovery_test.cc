// Crash-recovery tests for the durability layer (serve/wal.h,
// serve/recovery.h, RefreshDriver::EnableDurability): snapshot
// persist/load round trips with corruption fallback, WAL-tail replay
// equivalence against a from-scratch recompute at 1e-12, torn-tail
// truncation through the full recovery path, and a fork()-based abort
// matrix that crashes the process at every serve-path failpoint site
// mid-burst and verifies that every acknowledged edit survives.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "core/fsim_engine.h"
#include "graph/graph_builder.h"
#include "serve/recovery.h"
#include "serve/refresh.h"
#include "serve/snapshot.h"
#include "serve/wal.h"

namespace fsim {
namespace {

/// The serving suite's 5-node two-label graph (serve_test.cc), small
/// enough that tight-tolerance fixpoint solves are instant.
Graph MakeServeGraph() {
  GraphBuilder builder;
  builder.AddNode("A");  // 0
  builder.AddNode("A");  // 1
  builder.AddNode("B");  // 2
  builder.AddNode("B");  // 3
  builder.AddNode("A");  // 4
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 0);
  builder.AddEdge(1, 3);
  return std::move(builder).BuildOrDie();
}

/// Tolerances an order of magnitude under the 1e-12 acceptance bound, so
/// incremental repair + replay stays within it against a full recompute.
FSimConfig TightConfig() {
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-14;
  return config;
}

IncrementalOptions TightIncOptions() {
  IncrementalOptions options;
  options.propagation_tolerance = 1e-14;
  return options;
}

/// The fixed 8-edit burst of the crash matrix: all-distinct edges so the
/// acknowledged prefix maps one-to-one onto edge presence after recovery.
std::vector<EditOp> BurstEdits() {
  return {
      {1, 0, 3, /*insert=*/true, 0},  {2, 1, 0, /*insert=*/true, 0},
      {1, 2, 3, /*insert=*/false, 0}, {1, 4, 2, /*insert=*/true, 0},
      {2, 3, 4, /*insert=*/false, 0}, {2, 2, 0, /*insert=*/true, 0},
      {1, 0, 2, /*insert=*/false, 0}, {1, 3, 1, /*insert=*/true, 0},
  };
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/fsim_recovery_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Recovers `dir` and builds a durable driver over the recovered state,
/// mirroring FSimService::Create's wiring. Init is left to the caller.
std::unique_ptr<RefreshDriver> OpenDurableDriver(const std::string& dir,
                                                 SnapshotStore* store,
                                                 DurabilityOptions durability,
                                                 RecoveredState* out = nullptr) {
  // Copies of one graph share a LabelDict, as the engines require.
  const Graph base = MakeServeGraph();
  auto recovered = RecoverServeState(dir, base, base);
  if (!recovered.ok()) return nullptr;
  auto driver = std::make_unique<RefreshDriver>(
      std::move(recovered->g1), std::move(recovered->g2), TightConfig(),
      TightIncOptions(), RefreshPolicy{}, store);
  durability.dir = dir;
  if (out != nullptr) {
    out->have_snapshot = recovered->have_snapshot;
    out->snapshot_lsn = recovered->snapshot_lsn;
    out->next_lsn = recovered->next_lsn;
    out->torn_bytes = recovered->torn_bytes;
    out->snapshots_discarded = recovered->snapshots_discarded;
    out->tail = recovered->tail;
  }
  if (!driver->EnableDurability(durability, std::move(*recovered)).ok()) {
    return nullptr;
  }
  return driver;
}

/// The published snapshot must match a from-scratch recompute of the
/// driver's current graphs within `tol` on every surviving pair.
void ExpectPublishedMatchesRecompute(const RefreshDriver& driver,
                                     const SnapshotStore& store, double tol) {
  auto full =
      ComputeFSim(driver.MaterializeG1(), driver.MaterializeG2(), TightConfig());
  ASSERT_TRUE(full.ok()) << full.status().message();
  const SnapshotPtr snap = store.Acquire();
  ASSERT_NE(snap, nullptr);
  for (size_t i = 0; i < full->keys().size(); ++i) {
    const NodeId u = PairFirst(full->keys()[i]);
    const NodeId v = PairSecond(full->keys()[i]);
    EXPECT_NEAR(snap->PairScore(u, v), full->values()[i], tol)
        << "pair (" << u << ", " << v << ")";
  }
}

TEST(SnapshotPersistTest, PersistLoadRoundTripAndRetention) {
  const std::string dir = FreshDir("roundtrip");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const Graph g = MakeServeGraph();
  auto scores = ComputeFSim(g, g, TightConfig());
  ASSERT_TRUE(scores.ok());

  ASSERT_TRUE(PersistSnapshot(dir, 7, g, g, *scores).ok());
  auto loaded = LoadLatestSnapshot(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->lsn, 7u);
  EXPECT_EQ(loaded->discarded, 0u);
  EXPECT_EQ(loaded->g1.NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->g1.NumEdges(), g.NumEdges());
  ASSERT_EQ(loaded->scores.keys(), scores->keys());
  // Scores round-trip exactly (%.17g text payload).
  for (size_t i = 0; i < scores->values().size(); ++i) {
    EXPECT_EQ(loaded->scores.values()[i], scores->values()[i]);
  }

  // A newer snapshot wins; retention keeps the newest `keep`.
  ASSERT_TRUE(PersistSnapshot(dir, 9, g, g, *scores).ok());
  loaded = LoadLatestSnapshot(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->lsn, 9u);

  auto oldest = OldestSnapshotLsn(dir);
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(*oldest, 7u);

  auto removed = RemoveObsoleteSnapshots(dir, 1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  oldest = OldestSnapshotLsn(dir);
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(*oldest, 9u);
}

TEST(SnapshotPersistTest, CorruptNewestSnapshotFallsBackToOlder) {
  const std::string dir = FreshDir("corrupt_snap");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const Graph g = MakeServeGraph();
  auto scores = ComputeFSim(g, g, TightConfig());
  ASSERT_TRUE(scores.ok());
  ASSERT_TRUE(PersistSnapshot(dir, 3, g, g, *scores).ok());
  ASSERT_TRUE(PersistSnapshot(dir, 5, g, g, *scores).ok());

  // Flip a payload byte deep inside the newest snapshot.
  const std::string victim = dir + "/snap-00000000000000000005.fsnap";
  ASSERT_TRUE(std::filesystem::exists(victim));
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekp(64);
    char byte = 0;
    f.seekg(64);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(64);
    f.write(&byte, 1);
  }

  auto loaded = LoadLatestSnapshot(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->lsn, 3u);
  EXPECT_EQ(loaded->discarded, 1u);

  // Corrupting the survivor too leaves nothing: NotFound, and full
  // recovery falls back to the base graphs.
  const std::string older = dir + "/snap-00000000000000000003.fsnap";
  {
    std::fstream f(older, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    char byte = 0;
    f.seekg(32);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(32);
    f.write(&byte, 1);
  }
  EXPECT_TRUE(LoadLatestSnapshot(dir).status().IsNotFound());
  // Copies of one graph share a LabelDict, as the engines require.
  const Graph base = MakeServeGraph();
  auto recovered = RecoverServeState(dir, base, base);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE(recovered->have_snapshot);
  EXPECT_EQ(recovered->snapshots_discarded, 2u);
}

TEST(RecoveryTest, CleanRestartReplaysWalTailWithin1e12) {
  const std::string dir = FreshDir("clean_restart");
  DurabilityOptions durability;
  durability.snapshot_every_edits = 0;  // force pure WAL replay

  SnapshotStore store_a;
  auto driver_a = OpenDurableDriver(dir, &store_a, durability);
  ASSERT_NE(driver_a, nullptr);
  { const Status init = driver_a->Init();
    ASSERT_TRUE(init.ok()) << init.message(); }
  const std::vector<EditOp> edits = BurstEdits();
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(driver_a->Submit(edits[i]).ok());
  }
  ASSERT_TRUE(driver_a->Flush().ok());
  const SnapshotPtr final_a = store_a.Acquire();
  ASSERT_NE(final_a, nullptr);
  EXPECT_EQ(driver_a->stats().durable_lsn, 4u);
  driver_a.reset();  // clean shutdown

  // Restart: no snapshot exists, so the whole tail replays during Init.
  SnapshotStore store_b;
  RecoveredState seen;
  auto driver_b = OpenDurableDriver(dir, &store_b, durability, &seen);
  ASSERT_NE(driver_b, nullptr);
  // Init persists a boot snapshot at LSN 0, so recovery sees it plus the
  // whole edit tail — all four edits still replay through the engine.
  EXPECT_TRUE(seen.have_snapshot);
  EXPECT_EQ(seen.snapshot_lsn, 0u);
  EXPECT_EQ(seen.tail.size(), 4u);
  EXPECT_EQ(seen.next_lsn, 5u);
  EXPECT_EQ(seen.torn_bytes, 0u);
  { const Status init = driver_b->Init();
    ASSERT_TRUE(init.ok()) << init.message(); }
  const RefreshDriver::Stats stats = driver_b->stats();
  EXPECT_EQ(stats.edits_replayed, 4u);
  EXPECT_EQ(stats.applied_lsn, 4u);

  ExpectPublishedMatchesRecompute(*driver_b, store_b, 1e-12);

  // The republished state equals the pre-crash published state.
  const SnapshotPtr final_b = store_b.Acquire();
  ASSERT_EQ(final_a->scores().keys(), final_b->scores().keys());
  for (size_t i = 0; i < final_a->scores().values().size(); ++i) {
    EXPECT_NEAR(final_b->scores().values()[i], final_a->scores().values()[i],
                1e-12);
  }

  // The resumed WAL continues the sequence.
  ASSERT_TRUE(driver_b->Submit(edits[4]).ok());
  EXPECT_EQ(driver_b->stats().durable_lsn, 5u);
}

TEST(RecoveryTest, SnapshotPlusTailRecoveryWithin1e12) {
  const std::string dir = FreshDir("snap_tail");
  DurabilityOptions durability;
  durability.snapshot_every_edits = 2;

  SnapshotStore store_a;
  auto driver_a = OpenDurableDriver(dir, &store_a, durability);
  ASSERT_NE(driver_a, nullptr);
  { const Status init = driver_a->Init();
    ASSERT_TRUE(init.ok()) << init.message(); }
  for (const EditOp& op : BurstEdits()) {
    ASSERT_TRUE(driver_a->Submit(op).ok());
  }
  ASSERT_TRUE(driver_a->Flush().ok());
  EXPECT_GE(driver_a->stats().snapshot_persists, 1u);
  EXPECT_GE(driver_a->stats().persisted_lsn, 1u);
  driver_a.reset();

  SnapshotStore store_b;
  RecoveredState seen;
  auto driver_b = OpenDurableDriver(dir, &store_b, durability, &seen);
  ASSERT_NE(driver_b, nullptr);
  EXPECT_TRUE(seen.have_snapshot);
  EXPECT_GE(seen.snapshot_lsn, 1u);
  EXPECT_EQ(seen.next_lsn, 9u);
  { const Status init = driver_b->Init();
    ASSERT_TRUE(init.ok()) << init.message(); }
  EXPECT_EQ(driver_b->stats().applied_lsn, 8u);
  ExpectPublishedMatchesRecompute(*driver_b, store_b, 1e-12);
}

TEST(RecoveryTest, TornWalTailIsTruncatedAndReplayStops) {
  const std::string dir = FreshDir("torn_tail");
  DurabilityOptions durability;
  durability.snapshot_every_edits = 0;

  SnapshotStore store_a;
  auto driver_a = OpenDurableDriver(dir, &store_a, durability);
  ASSERT_NE(driver_a, nullptr);
  { const Status init = driver_a->Init();
    ASSERT_TRUE(init.ok()) << init.message(); }
  const std::vector<EditOp> edits = BurstEdits();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(driver_a->Submit(edits[i]).ok());
  }
  ASSERT_TRUE(driver_a->Flush().ok());
  driver_a.reset();

  // Simulate a crash mid-append: garbage bytes at the newest segment tail.
  std::string newest;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (StartsWith(name, "wal-") && name > newest) newest = name;
  }
  ASSERT_FALSE(newest.empty());
  {
    std::ofstream f(dir + "/" + newest,
                    std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00torn!", 9);
  }

  SnapshotStore store_b;
  RecoveredState seen;
  auto driver_b = OpenDurableDriver(dir, &store_b, durability, &seen);
  ASSERT_NE(driver_b, nullptr);
  EXPECT_EQ(seen.torn_bytes, 9u);
  EXPECT_EQ(seen.tail.size(), 3u);
  EXPECT_EQ(seen.next_lsn, 4u);
  { const Status init = driver_b->Init();
    ASSERT_TRUE(init.ok()) << init.message(); }
  EXPECT_EQ(driver_b->stats().edits_replayed, 3u);
  ExpectPublishedMatchesRecompute(*driver_b, store_b, 1e-12);

  // The truncated segment accepts appends again at the right LSN.
  ASSERT_TRUE(driver_b->Submit(edits[3]).ok());
  EXPECT_EQ(driver_b->stats().durable_lsn, 4u);
}

// ---------------------------------------------------------------------------
// The abort matrix: crash at every registered serve-path failpoint site
// while an 8-edit burst is in flight, then recover in the parent and check
// the durability contract — every edit acknowledged before the crash is
// present after recovery, and the republished scores match a from-scratch
// recompute of the recovered graphs within 1e-12.
// ---------------------------------------------------------------------------

/// Runs the burst in a forked child with `site` armed to `spec`. The child
/// acknowledges each successful Submit with one pipe byte, so the parent
/// knows exactly which edits the "client" saw committed before SIGABRT.
/// Returns the acknowledged count; `crashed` reports whether the child
/// died by abort (vs completing the burst).
size_t RunCrashChild(const std::string& dir, const std::string& site,
                     const std::string& spec, bool* crashed) {
  int fds[2];
  EXPECT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    // Child: plain syscalls + _exit only; no gtest machinery past here.
    close(fds[0]);
    SnapshotStore store;
    DurabilityOptions durability;
    durability.snapshot_every_edits = 2;
    auto driver = OpenDurableDriver(dir, &store, durability);
    if (driver == nullptr || !driver->Init().ok()) _exit(2);
    if (!failpoint::Arm(site, spec).ok()) _exit(3);
    const std::vector<EditOp> edits = BurstEdits();
    for (size_t i = 0; i < edits.size(); ++i) {
      if (driver->Submit(edits[i]).ok()) {
        const char ack = 1;
        if (write(fds[1], &ack, 1) != 1) _exit(4);
      }
      // Flush after each pair so the apply/publish/persist sites fire
      // mid-burst, not just at shutdown.
      if (i % 2 == 1) (void)driver->Flush();
    }
    _exit(0);
  }
  close(fds[1]);
  size_t acked = 0;
  char buf[16];
  ssize_t n;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0) {
    acked += static_cast<size_t>(n);
  }
  close(fds[0]);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  *crashed = WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT;
  if (!*crashed) {
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << site << ": child exited with status " << status;
  }
  return acked;
}

TEST(CrashMatrixTest, AbortAtEveryServeSiteLosesNothingAcknowledged) {
  if (!failpoint::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (build with -DFSIM_FAILPOINTS=ON)";
  }
  const std::vector<std::string> sites = {
      "serve.queue.push",      "serve.wal.append",
      "serve.wal.sync",        "serve.refresh.apply",
      "serve.flush",           "serve.publish",
      "serve.snapshot.persist", "serve.snapshot.rename",
  };
  const std::vector<EditOp> edits = BurstEdits();
  int site_index = 0;
  for (const std::string& site : sites) {
    // "abort" crashes at the first hit; "3->abort" lets three hits pass so
    // the crash lands mid-burst with durable state already accumulated.
    for (const std::string& spec : {std::string("abort"),
                                    std::string("3->abort")}) {
      SCOPED_TRACE(site + "=" + spec);
      const std::string dir =
          FreshDir(StrFormat("matrix_%d_%s", site_index,
                             spec == "abort" ? "first" : "skip3"));
      bool crashed = false;
      const size_t acked = RunCrashChild(dir, site, spec, &crashed);
      if (spec == "abort") {
        // Every matrix site sits on the burst path, so the first-hit
        // variant must actually crash — otherwise the site went dead and
        // the matrix is vacuous.
        EXPECT_TRUE(crashed) << site << " never fired";
      }
      ASSERT_LE(acked, edits.size());

      // Parent-side recovery over the crashed directory.
      SnapshotStore store;
      DurabilityOptions durability;
      durability.snapshot_every_edits = 2;
      RecoveredState seen;
      auto driver = OpenDurableDriver(dir, &store, durability, &seen);
      ASSERT_NE(driver, nullptr);
      { const Status init = driver->Init();
        ASSERT_TRUE(init.ok()) << init.message(); }

      // Contract: each acknowledged edit's effect is present. The burst
      // uses all-distinct edges, so the i-th ack pins the i-th edge's
      // final state regardless of what else replayed.
      const Graph g1 = driver->MaterializeG1();
      const Graph g2 = driver->MaterializeG2();
      for (size_t i = 0; i < acked; ++i) {
        const Graph& g = edits[i].graph_index == 1 ? g1 : g2;
        EXPECT_EQ(g.HasEdge(edits[i].from, edits[i].to), edits[i].insert)
            << "acked edit " << i << " lost after crash at " << site;
      }
      ExpectPublishedMatchesRecompute(*driver, store, 1e-12);
    }
    ++site_index;
  }
}

}  // namespace
}  // namespace fsim
