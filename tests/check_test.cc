// The correctness tooling layer (src/common/check.h, docs/correctness.md):
// FSIM_CHECK / FSIM_DCHECK semantics (including death on violation), the
// ValidatorCounters registry, and — the heart of the suite — proof that each
// structural validator actually catches corruption: every test deliberately
// breaks one invariant through a TestAccess backdoor and asserts the
// validator reports it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flat_pair_map.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "core/fsim_scores.h"
#include "core/fsim_config.h"
#include "core/incremental_index.h"
#include "core/pair_store.h"
#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"
#include "label/label_similarity.h"
#include "serve/snapshot.h"
#include "tests/test_graphs.h"

namespace fsim {

// Friend backdoors used to corrupt internal state; declared in the owning
// headers, defined here so production code cannot reach them.
struct PairStoreTestAccess {
  static std::vector<uint64_t>& Offsets(PairStore& s) { return s.nbr_offsets_; }
  static std::vector<NeighborRef>& Refs(PairStore& s) { return s.nbr_refs_; }
  static std::vector<PackedNeighborRef>& PackedRefs(PairStore& s) {
    return s.nbr_refs_packed_;
  }
  static bool Packed(const PairStore& s) { return s.packed_refs_; }
};

struct DynamicGraphTestAccess {
  static std::vector<std::vector<NodeId>>& Out(DynamicGraph& g) {
    return g.out_;
  }
  static std::vector<std::vector<NodeId>>& In(DynamicGraph& g) {
    return g.in_;
  }
  static size_t& NumEdges(DynamicGraph& g) { return g.num_edges_; }
};

struct SnapshotStoreTestAccess {
  static std::vector<uint64_t>& Chain(SnapshotStore& s) {
    return s.version_chain_;
  }
};

struct IncrementalNeighborIndexTestAccess {
  static uint64_t& Freed(IncrementalNeighborIndex& idx) { return idx.freed_; }
  static void ShrinkLastSpan(IncrementalNeighborIndex& idx) {
    // Dropping capacity without crediting freed_ breaks the slack equality.
    for (auto it = idx.spans_.rbegin(); it != idx.spans_.rend(); ++it) {
      if (it->capacity > 0) {
        --it->capacity;
        if (it->size > it->capacity) --it->size;
        return;
      }
    }
  }
  static void OverlapFirstTwoSpans(IncrementalNeighborIndex& idx) {
    size_t first = idx.spans_.size();
    for (size_t s = 0; s < idx.spans_.size(); ++s) {
      if (idx.spans_[s].capacity == 0) continue;
      if (first == idx.spans_.size()) {
        first = s;
      } else {
        idx.spans_[s].offset = idx.spans_[first].offset;
        return;
      }
    }
  }
};

namespace {

// ------------------------------------------------------- FSIM_CHECK family --

TEST(CheckDeathTest, FailedCheckAbortsWithConditionAndMessage) {
  EXPECT_DEATH(FSIM_CHECK(1 + 1 == 3) << "math broke: " << 42,
               "FSIM_CHECK failed: 1 \\+ 1 == 3.*math broke: 42");
}

TEST(CheckDeathTest, ComparisonVariantsAbort) {
  const int small = 3;
  const int big = 5;
  EXPECT_DEATH(FSIM_CHECK_EQ(small, big), "FSIM_CHECK failed");
  EXPECT_DEATH(FSIM_CHECK_GT(small, big), "FSIM_CHECK failed");
}

TEST(CheckTest, PassingChecksAreSilent) {
  FSIM_CHECK(true) << "never rendered";
  FSIM_CHECK_EQ(2, 2);
  FSIM_CHECK_LE(2, 3);
  // The message chain must not evaluate on the passing path (it sits on the
  // dead branch of the ternary).
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return 0;
  };
  FSIM_CHECK(true) << count();
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckTest, CheckNestsInUnbracedIfElse) {
  // Regression for the -Wdangling-else the old naked-if macro produced: the
  // voidify form must parse as a single statement.
  const bool flag = true;
  if (flag)
    FSIM_CHECK(flag);
  else
    FSIM_CHECK(!flag);
  SUCCEED();
}

TEST(CheckTest, DcheckConditionEvaluationMatchesBuildMode) {
  int evaluations = 0;
  auto observed = [&evaluations]() {
    ++evaluations;
    return true;
  };
  FSIM_DCHECK(observed());
#ifdef FSIM_DEBUG_CHECKS
  EXPECT_EQ(evaluations, 1);
#else
  EXPECT_EQ(evaluations, 0);  // compiled out: condition never runs
#endif
}

#ifdef FSIM_DEBUG_CHECKS
TEST(CheckDeathTest, DcheckAbortsInDebugChecksBuild) {
  EXPECT_DEATH(FSIM_DCHECK(false) << "debug only", "FSIM_CHECK failed");
}
#endif

TEST(ValidatorCountersTest, BumpCountSnapshot) {
  const uint64_t before = ValidatorCounters::Count("check_test.counter");
  ValidatorCounters::Bump("check_test.counter");
  ValidatorCounters::Bump("check_test.counter");
  EXPECT_EQ(ValidatorCounters::Count("check_test.counter"), before + 2);
  bool found = false;
  for (const auto& [name, count] : ValidatorCounters::Snapshot()) {
    if (name == "check_test.counter") {
      found = true;
      EXPECT_EQ(count, before + 2);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(ValidatorCounters::Count("check_test.never_bumped"), 0u);
}

// ------------------------------------------------ DynamicGraph corruption --

DynamicGraph MakeEditGraph() {
  GraphBuilder b;
  for (int i = 0; i < 6; ++i) b.AddNode("x");
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 4);
  b.AddEdge(4, 5);
  b.AddEdge(5, 0);
  return DynamicGraph(std::move(b).BuildOrDie());
}

TEST(ValidateAdjacencyTest, CleanGraphPasses) {
  DynamicGraph g = MakeEditGraph();
  EXPECT_TRUE(g.ValidateAdjacency().ok());
  ASSERT_TRUE(g.InsertEdge(3, 0).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 2).ok());
  EXPECT_TRUE(g.ValidateAdjacency().ok());
}

TEST(ValidateAdjacencyTest, CatchesUnsortedList) {
  DynamicGraph g = MakeEditGraph();
  auto& out0 = DynamicGraphTestAccess::Out(g)[0];
  ASSERT_GE(out0.size(), 2u);
  std::swap(out0[0], out0[1]);
  const Status st = g.ValidateAdjacency();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("strictly ascending"), std::string::npos);
}

TEST(ValidateAdjacencyTest, CatchesMissingMirror) {
  DynamicGraph g = MakeEditGraph();
  // Edge (0, 1) exists; erase its in_-side mirror only.
  auto& in1 = DynamicGraphTestAccess::In(g)[1];
  in1.erase(in1.begin());
  const Status st = g.ValidateAdjacency();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("missing from in"), std::string::npos);
}

TEST(ValidateAdjacencyTest, CatchesEdgeCountDrift) {
  DynamicGraph g = MakeEditGraph();
  ++DynamicGraphTestAccess::NumEdges(g);
  const Status st = g.ValidateAdjacency();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("edge accounting"), std::string::npos);
}

TEST(ValidateAdjacencyTest, CatchesOutOfRangeTarget) {
  DynamicGraph g = MakeEditGraph();
  DynamicGraphTestAccess::Out(g)[0].push_back(
      static_cast<NodeId>(g.NumNodes() + 7));
  EXPECT_FALSE(g.ValidateAdjacency().ok());
}

// --------------------------------------------------- PairStore corruption --

Result<PairStore> BuildSmallStore() {
  const Graph g = fsim::testing::MakeFigure1().data;
  FSimConfig config;  // default budget materializes the neighbor index
  LabelSimilarityCache lsim(*g.dict(), config.label_sim);
  return PairStore::Build(g, g, config, lsim);
}

TEST(ValidateNeighborIndexTest, CleanStorePasses) {
  auto store = BuildSmallStore();
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->ValidateNeighborIndex().ok());
}

TEST(ValidateNeighborIndexTest, CatchesNonMonotoneOffsets) {
  auto store = BuildSmallStore();
  ASSERT_TRUE(store.ok());
  auto& offsets = PairStoreTestAccess::Offsets(*store);
  ASSERT_GE(offsets.size(), 3u);
  // Tear the CSR: a span whose end precedes its start.
  size_t target = 0;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] > 0) {
      target = i;
      break;
    }
  }
  ASSERT_GT(target, 0u);
  const uint64_t saved = offsets[target];
  offsets[target] = 0;
  if (saved == offsets.back()) offsets[target] = saved;  // keep arena total
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      EXPECT_FALSE(store->ValidateNeighborIndex().ok());
      return;
    }
  }
  // Fallback (all offsets still monotone): shrink the last offset so the
  // arena accounting breaks instead.
  offsets.back() -= 1;
  EXPECT_FALSE(store->ValidateNeighborIndex().ok());
}

TEST(ValidateNeighborIndexTest, CatchesOutOfRangeRef) {
  auto store = BuildSmallStore();
  ASSERT_TRUE(store.ok());
  if (PairStoreTestAccess::Packed(*store)) {
    auto& refs = PairStoreTestAccess::PackedRefs(*store);
    ASSERT_FALSE(refs.empty());
    refs[0].ref = 0x7FFFFFFFu;  // untagged, far past the pair count
  } else {
    auto& refs = PairStoreTestAccess::Refs(*store);
    ASSERT_FALSE(refs.empty());
    refs[0].ref = 0x7FFFFFFFu;
  }
  const Status st = store->ValidateNeighborIndex();
  ASSERT_FALSE(st.ok());
}

TEST(ValidateNeighborIndexTest, CatchesUnsortedSpan) {
  auto store = BuildSmallStore();
  ASSERT_TRUE(store.ok());
  const auto& offsets = PairStoreTestAccess::Offsets(*store);
  // Find a span with at least two entries and swap them.
  size_t begin = 0;
  size_t len = 0;
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    if (offsets[s + 1] - offsets[s] >= 2) {
      begin = static_cast<size_t>(offsets[s]);
      len = static_cast<size_t>(offsets[s + 1] - offsets[s]);
      break;
    }
  }
  ASSERT_GE(len, 2u) << "test graph too sparse for a 2-entry span";
  if (PairStoreTestAccess::Packed(*store)) {
    auto& refs = PairStoreTestAccess::PackedRefs(*store);
    std::swap(refs[begin], refs[begin + 1]);
  } else {
    auto& refs = PairStoreTestAccess::Refs(*store);
    std::swap(refs[begin], refs[begin + 1]);
  }
  const Status st = store->ValidateNeighborIndex();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("sorted"), std::string::npos);
}

// ------------------------------------- IncrementalNeighborIndex corruption --

struct IncrementalFixture {
  IncrementalFixture()
      : graph(MakeEditGraph()),
        lsim(*graph.dict(), LabelSimKind::kIndicator) {
    const size_t n = graph.NumNodes();
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const uint64_t key = PairKey(u, v);
        pair_index.Insert(key, static_cast<uint32_t>(keys.size()));
        keys.push_back(key);
      }
    }
    FSimConfig config;
    const NeighborIndexEnv env{graph, graph, pair_index, lsim};
    built = index.Build(env, keys, config);
  }

  DynamicGraph graph;
  LabelSimilarityCache lsim;
  FlatPairMap pair_index;
  std::vector<uint64_t> keys;
  IncrementalNeighborIndex index;
  bool built = false;
};

TEST(IncrementalIndexValidateTest, CleanIndexPasses) {
  IncrementalFixture f;
  ASSERT_TRUE(f.built);
  EXPECT_TRUE(f.index.Validate(f.keys.size()).ok());
}

TEST(IncrementalIndexValidateTest, CatchesLeakedSlack) {
  IncrementalFixture f;
  ASSERT_TRUE(f.built);
  IncrementalNeighborIndexTestAccess::Freed(f.index) += 3;
  const Status st = f.index.Validate(f.keys.size());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("slack accounting"), std::string::npos);
}

TEST(IncrementalIndexValidateTest, CatchesShrunkSpanCapacity) {
  IncrementalFixture f;
  ASSERT_TRUE(f.built);
  IncrementalNeighborIndexTestAccess::ShrinkLastSpan(f.index);
  EXPECT_FALSE(f.index.Validate(f.keys.size()).ok());
}

TEST(IncrementalIndexValidateTest, CatchesOverlappingSpans) {
  IncrementalFixture f;
  ASSERT_TRUE(f.built);
  IncrementalNeighborIndexTestAccess::OverlapFirstTwoSpans(f.index);
  EXPECT_FALSE(f.index.Validate(f.keys.size()).ok());
}

TEST(IncrementalIndexValidateTest, WrongPairCountRejected) {
  IncrementalFixture f;
  ASSERT_TRUE(f.built);
  EXPECT_FALSE(f.index.Validate(f.keys.size() + 1).ok());
}

// ------------------------------------------------ SnapshotStore corruption --

SnapshotPtr MakeSnapshot(SnapshotStore& store) {
  FlatPairMap index(1);
  index.Insert(PairKey(0, 0), 0);
  FSimScores scores({PairKey(0, 0)}, {1.0}, std::move(index), FSimStats{});
  SnapshotMeta meta;
  meta.version = store.NextVersion();
  return std::make_shared<const FSimSnapshot>(
      FreezeScores(std::move(scores)), /*cache_k=*/2, meta);
}

TEST(ValidateChainTest, CleanChainPasses) {
  SnapshotStore store;
  EXPECT_TRUE(store.ValidateChain().ok());  // empty store is valid
  EXPECT_TRUE(store.Publish(MakeSnapshot(store)));
  EXPECT_TRUE(store.Publish(MakeSnapshot(store)));
  EXPECT_TRUE(store.ValidateChain().ok());
  EXPECT_EQ(store.version(), 2u);
}

TEST(ValidateChainTest, CatchesRegressedChain) {
  SnapshotStore store;
  EXPECT_TRUE(store.Publish(MakeSnapshot(store)));
  EXPECT_TRUE(store.Publish(MakeSnapshot(store)));
  auto& chain = SnapshotStoreTestAccess::Chain(store);
  ASSERT_EQ(chain.size(), 2u);
  std::swap(chain[0], chain[1]);
  const Status st = store.ValidateChain();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("regresses"), std::string::npos);
}

TEST(ValidateChainTest, CatchesHeadVersionMismatch) {
  SnapshotStore store;
  EXPECT_TRUE(store.Publish(MakeSnapshot(store)));
  auto& chain = SnapshotStoreTestAccess::Chain(store);
  ASSERT_EQ(chain.size(), 1u);
  chain[0] += 5;  // chain claims a version the head does not carry
  EXPECT_FALSE(store.ValidateChain().ok());
}

TEST(ValidateChainTest, StalePublishRejectedAndChainStaysValid) {
  SnapshotStore store;
  SnapshotPtr first = MakeSnapshot(store);   // version 1
  SnapshotPtr second = MakeSnapshot(store);  // version 2
  EXPECT_TRUE(store.Publish(second));
  EXPECT_FALSE(store.Publish(first));  // stale: dropped
  EXPECT_TRUE(store.ValidateChain().ok());
  EXPECT_EQ(store.version(), 2u);
}

// ---------------------------------------------------- ThreadPool validator --

TEST(ValidateSchedulerTest, CleanAfterStealHeavyRegions) {
  ThreadPool pool(4);
  std::vector<uint64_t> out(4096, 0);
  for (int round = 0; round < 3; ++round) {
    pool.ParallelForChunked(out.size(), 8, [&out](int, size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) out[i] += i;
    });
  }
  EXPECT_TRUE(pool.ValidateScheduler().ok());
  const ThreadPool::SchedulerStats scheduler_stats = pool.stats();
  EXPECT_EQ(scheduler_stats.chunks_dealt, scheduler_stats.chunks_executed);
  EXPECT_GT(scheduler_stats.chunks_executed, 0u);
}

}  // namespace
}  // namespace fsim
