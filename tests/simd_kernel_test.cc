// Equivalence tests for the vectorized kernel layer (core/simd/):
//
//  * kernel-table unit tests — every vector realization the host can run
//    (AVX2, AVX-512) against the scalar reference on synthetic panels and
//    rows, asserting bit-exact outputs (the kernels.h contract, including
//    the masked-gather +0.0 convention and the no-FMA combine);
//  * engine sweeps — ComputeFSimDense under FSIM_SIMD=off vs every
//    available vector level across MappingKind x OmegaKind x matching x θ:
//    bit-identical for the max-family (s/b) tile paths, <= 1e-12 for the
//    matching-bound (dp/bj) and product paths (which keep their scalar
//    tile loops; only the seeding/combine kernels differ, and those are
//    bit-identical too);
//  * ragged shapes — n2 not a multiple of the 256-wide v-tile, rows
//    shorter than the 8-row chunk grain, label classes with empty work
//    lists (θ = 1 across disjoint label groups);
//  * dispatch — FSIM_SIMD parsing, the off/auto clamps, and the reported
//    FSimStats::simd_level / simd_panel_bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "core/dense_engine.h"
#include "core/fsim_config.h"
#include "core/simd/cpu_features.h"
#include "core/simd/dispatch.h"
#include "core/simd/kernels.h"
#include "graph/graph_builder.h"

namespace fsim {
namespace {

/// Sets FSIM_SIMD for one scope; restores the previous state on exit so
/// tests cannot leak a level override into the rest of the suite.
class ScopedSimdEnv {
 public:
  explicit ScopedSimdEnv(const char* value) {
    const char* old = std::getenv("FSIM_SIMD");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    setenv("FSIM_SIMD", value, 1);
  }
  ~ScopedSimdEnv() {
    if (had_old_) {
      setenv("FSIM_SIMD", old_.c_str(), 1);
    } else {
      unsetenv("FSIM_SIMD");
    }
  }
  ScopedSimdEnv(const ScopedSimdEnv&) = delete;
  ScopedSimdEnv& operator=(const ScopedSimdEnv&) = delete;

 private:
  bool had_old_ = false;
  std::string old_;
};

/// The vector kernel tables this host can actually execute.
std::vector<const simd::SimdKernels*> HostVectorKernels() {
  std::vector<const simd::SimdKernels*> tables;
  const simd::FsimCpuFeatures& host = simd::HostCpuFeatures();
  if (simd::Avx2Kernels() != nullptr && host.Avx2Usable()) {
    tables.push_back(simd::Avx2Kernels());
  }
  if (simd::Avx512Kernels() != nullptr && host.Avx512Usable()) {
    tables.push_back(simd::Avx512Kernels());
  }
  return tables;
}

const char* LevelName(const simd::SimdKernels* k) {
  return simd::SimdLevelName(k->level);
}

/// A synthetic panel + work list: `entries` tile entries with up to
/// `max_cands` candidates each (some empty), nibble-packed exactly like
/// BuildTilePanelSet — entries padded to a multiple of 4, pad ids 0,
/// per-nibble masks with a random subset of the real candidates set.
struct SyntheticPanel {
  std::vector<simd::PanelWorkItem> items;
  AlignedVector<int32_t> ids;
  uint32_t slots = 0;
};

SyntheticPanel MakeSyntheticPanel(Rng* rng, uint32_t entries,
                                  uint32_t max_cands, int32_t id_range) {
  SyntheticPanel p;
  for (uint32_t t = 0; t < entries; ++t) {
    const uint32_t cands =
        static_cast<uint32_t>(rng->NextBounded(max_cands + 1));
    const uint32_t begin = p.slots;
    for (uint32_t c = 0; c < cands; ++c) {
      p.ids.push_back(static_cast<int32_t>(
          rng->NextBounded(static_cast<uint64_t>(id_range))));
      ++p.slots;
    }
    while ((p.slots & 3u) != 0u) {
      p.ids.push_back(0);
      ++p.slots;
    }
    for (uint32_t nib = begin; nib < begin + cands; nib += 4) {
      const uint32_t hi = std::min(nib + 4, begin + cands) - nib;
      uint8_t mask = static_cast<uint8_t>((1u << hi) - 1u);
      // Randomly drop bits (but keep the item nonempty) to model partial
      // θ-compatibility within a nibble.
      const uint8_t drop = static_cast<uint8_t>(rng->NextBounded(1u << hi));
      if ((mask & ~drop) != 0) mask &= static_cast<uint8_t>(~drop);
      p.items.push_back({nib, static_cast<uint16_t>(t), mask, 0});
    }
  }
  return p;
}

TEST(SimdKernelTest, TileRowPassMatchesScalarBitExact) {
  Rng rng(99);
  const simd::SimdKernels& scalar = simd::ScalarKernels();
  std::vector<double> prev(512);
  for (double& v : prev) v = rng.NextDouble();
  // A few zero scores so the best == 0.0 skip path is exercised.
  for (size_t i = 0; i < prev.size(); i += 17) prev[i] = 0.0;

  for (int round = 0; round < 8; ++round) {
    SyntheticPanel p = MakeSyntheticPanel(&rng, /*entries=*/37,
                                          /*max_cands=*/9, /*id_range=*/512);
    std::vector<double> acc_ref(37, 0.25);
    AlignedVector<double> col_ref(p.slots, 0.0);
    scalar.tile_row_pass_colmax(p.items.data(), p.items.size(), p.ids.data(),
                                prev.data(), acc_ref.data(), col_ref.data());
    std::vector<double> acc_plain_ref(37, 0.25);
    scalar.tile_row_pass(p.items.data(), p.items.size(), p.ids.data(),
                         prev.data(), acc_plain_ref.data());

    for (const simd::SimdKernels* k : HostVectorKernels()) {
      std::vector<double> acc(37, 0.25);
      AlignedVector<double> col(p.slots, 0.0);
      k->tile_row_pass_colmax(p.items.data(), p.items.size(), p.ids.data(),
                              prev.data(), acc.data(), col.data());
      EXPECT_EQ(0, std::memcmp(acc.data(), acc_ref.data(),
                               acc.size() * sizeof(double)))
          << LevelName(k) << " colmax-pass acc, round " << round;
      EXPECT_EQ(0, std::memcmp(col.data(), col_ref.data(),
                               p.slots * sizeof(double)))
          << LevelName(k) << " colmax panel, round " << round;

      std::vector<double> acc_plain(37, 0.25);
      k->tile_row_pass(p.items.data(), p.items.size(), p.ids.data(),
                       prev.data(), acc_plain.data());
      EXPECT_EQ(0, std::memcmp(acc_plain.data(), acc_plain_ref.data(),
                               acc_plain.size() * sizeof(double)))
          << LevelName(k) << " plain-pass acc, round " << round;
    }
  }
}

TEST(SimdKernelTest, NormalizeTileMatchesScalarBitExact) {
  Rng rng(7);
  const size_t n = 101;  // deliberately not a vector-width multiple
  std::vector<double> sums(n);
  std::vector<uint32_t> sizes(n);
  for (size_t i = 0; i < n; ++i) {
    sums[i] = rng.NextDouble() * 101.0;
    sizes[i] = 1 + static_cast<uint32_t>(rng.NextBounded(17));
  }
  for (uint32_t kind = 0; kind <= 4; ++kind) {
    for (double m1 : {1.0, 3.0, 13.0}) {
      std::vector<double> ref(n), got(n);
      simd::ScalarKernels().normalize_tile(sums.data(), sizes.data(), n, kind,
                                           m1, ref.data());
      for (const simd::SimdKernels* k : HostVectorKernels()) {
        k->normalize_tile(sums.data(), sizes.data(), n, kind, m1, got.data());
        EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), n * sizeof(double)))
            << LevelName(k) << " omega_kind=" << kind << " m1=" << m1;
      }
    }
  }
}

TEST(SimdKernelTest, CombineRowMatchesScalarBitExact) {
  Rng rng(31);
  const size_t n = 203;
  std::vector<double> outs(n), ins(n), prev(n), term(16);
  std::vector<int32_t> labels(n);
  for (size_t i = 0; i < n; ++i) {
    outs[i] = rng.NextDouble();
    ins[i] = rng.NextDouble();
    prev[i] = rng.NextDouble();
    labels[i] = static_cast<int32_t>(rng.NextBounded(term.size()));
  }
  for (double& t : term) t = rng.NextDouble() / 3.0;

  struct Case {
    bool with_out, with_in, with_term;
  };
  for (const Case c : {Case{true, true, true}, Case{true, false, true},
                       Case{false, true, false}, Case{true, true, false}}) {
    std::vector<double> curr_ref(n), curr(n);
    double delta_ref = 0.0;
    simd::ScalarKernels().combine_row(
        c.with_out ? outs.data() : nullptr, c.with_in ? ins.data() : nullptr,
        0.4, 0.35, c.with_term ? term.data() : nullptr, labels.data(),
        prev.data(), curr_ref.data(), n, &delta_ref);
    for (const simd::SimdKernels* k : HostVectorKernels()) {
      double delta = 0.0;
      k->combine_row(c.with_out ? outs.data() : nullptr,
                     c.with_in ? ins.data() : nullptr, 0.4, 0.35,
                     c.with_term ? term.data() : nullptr, labels.data(),
                     prev.data(), curr.data(), n, &delta);
      EXPECT_EQ(0, std::memcmp(curr.data(), curr_ref.data(),
                               n * sizeof(double)))
          << LevelName(k);
      EXPECT_EQ(delta_ref, delta) << LevelName(k);
    }
  }
}

TEST(SimdKernelTest, FlatKernelsMatchScalar) {
  Rng rng(63);
  const size_t n = 117;
  std::vector<double> base(64), d2(n), ref(n), got(n);
  std::vector<int32_t> idx(n);
  for (double& v : base) v = rng.NextDouble();
  for (size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<int32_t>(rng.NextBounded(base.size()));
    d2[i] = static_cast<double>(rng.NextBounded(7));  // zeros included
  }
  d2[5] = 0.0;

  for (const simd::SimdKernels* k : HostVectorKernels()) {
    simd::ScalarKernels().fill(ref.data(), n, 0.375);
    k->fill(got.data(), n, 0.375);
    EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), n * sizeof(double)))
        << LevelName(k) << " fill";

    simd::ScalarKernels().gather_row(base.data(), idx.data(), n, ref.data());
    k->gather_row(base.data(), idx.data(), n, got.data());
    EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), n * sizeof(double)))
        << LevelName(k) << " gather_row";

    for (double d1 : {0.0, 3.0}) {
      simd::ScalarKernels().degree_ratio_row(d1, d2.data(), n, ref.data());
      k->degree_ratio_row(d1, d2.data(), n, got.data());
      EXPECT_EQ(0, std::memcmp(got.data(), ref.data(), n * sizeof(double)))
          << LevelName(k) << " degree_ratio_row d1=" << d1;
    }

    std::vector<double> vals(n);
    for (size_t i = 0; i < n; ++i) vals[i] = rng.NextDouble();
    for (double thr : {0.0, 0.5, 0.995, 2.0}) {
      EXPECT_EQ(simd::ScalarKernels().find_first_ge(vals.data(), n, thr),
                k->find_first_ge(vals.data(), n, thr))
          << LevelName(k) << " find_first_ge thr=" << thr;
    }
  }
}

TEST(SimdDispatchTest, ParseAndClamp) {
  SimdMode mode = SimdMode::kAuto;
  EXPECT_TRUE(simd::ParseSimdMode("off", &mode));
  EXPECT_EQ(mode, SimdMode::kOff);
  EXPECT_TRUE(simd::ParseSimdMode("scalar", &mode));
  EXPECT_EQ(mode, SimdMode::kOff);
  EXPECT_TRUE(simd::ParseSimdMode("avx2", &mode));
  EXPECT_EQ(mode, SimdMode::kAvx2);
  EXPECT_TRUE(simd::ParseSimdMode("avx512", &mode));
  EXPECT_EQ(mode, SimdMode::kAvx512);
  EXPECT_TRUE(simd::ParseSimdMode("auto", &mode));
  EXPECT_EQ(mode, SimdMode::kAuto);
  mode = SimdMode::kAvx2;
  EXPECT_FALSE(simd::ParseSimdMode("bogus", &mode));
  EXPECT_EQ(mode, SimdMode::kAvx2);  // untouched on failure

  {
    ScopedSimdEnv env("off");
    EXPECT_EQ(simd::ResolveSimdLevel(SimdMode::kAuto),
              simd::SimdLevel::kScalar);
  }
  {
    // An unparseable override is ignored, not an error.
    ScopedSimdEnv env("not-a-level");
    EXPECT_EQ(simd::ResolveSimdLevel(SimdMode::kOff),
              simd::SimdLevel::kScalar);
  }
  // Whatever auto resolves to, the kernel table exists and levels agree.
  const simd::SimdLevel level = simd::ResolveSimdLevel(SimdMode::kAuto);
  EXPECT_EQ(simd::KernelsFor(level).level, level);
}

// ---------------------------------------------------------------------------
// Engine sweeps: FSIM_SIMD=off (the exact pre-panel scalar path) vs every
// vector level the host offers.

Graph MakeSweepGraph(uint64_t seed, uint32_t n) {
  static const char* kLabels[] = {"aa", "ab", "bb", "bc"};
  Rng rng(seed);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(kLabels[rng.Next() % 4]);
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddEdge(i, (i + 1) % n);
  }
  for (uint32_t e = 0; e < 2 * n; ++e) {
    NodeId from = static_cast<NodeId>(rng.Next() % n);
    NodeId to = static_cast<NodeId>(rng.Next() % n);
    if (from != to) builder.AddEdge(from, to);
  }
  return std::move(builder).BuildOrDie();
}

std::vector<const char*> HostVectorLevelNames() {
  std::vector<const char*> names;
  for (const simd::SimdKernels* k : HostVectorKernels()) {
    names.push_back(simd::SimdLevelName(k->level));
  }
  return names;
}

/// Runs the dense engine with FSIM_SIMD forced to `level` for the call.
Result<DenseFSimScores> RunAtLevel(const Graph& g, const FSimConfig& config,
                                   const char* level) {
  ScopedSimdEnv env(level);
  return ComputeFSimDense(g, g, config);
}

using SweepParam = std::tuple<MappingKind, OmegaKind, MatchingAlgo>;

class SimdEngineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SimdEngineSweep, VectorLevelsMatchForcedOff) {
  const auto [mapping, omega, matching] = GetParam();
  const bool max_family = mapping == MappingKind::kMaxPerRow ||
                          mapping == MappingKind::kMaxBothSides;
  const Graph g = MakeSweepGraph(/*seed=*/11 + static_cast<int>(omega), 40);
  for (double theta : {0.4, 1.0}) {
    FSimConfig config;
    config.operator_override = OperatorConfig{mapping, omega};
    config.matching = matching;
    config.label_sim = LabelSimKind::kEditDistance;
    config.theta = theta;
    config.w_out = 0.35;
    config.w_in = 0.35;
    config.epsilon = 1e-4;

    auto off = RunAtLevel(g, config, "off");
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    EXPECT_EQ(off->stats().simd_level, 0u);
    EXPECT_EQ(off->stats().simd_panel_bytes, 0u);
    for (const char* level : HostVectorLevelNames()) {
      auto vec = RunAtLevel(g, config, level);
      ASSERT_TRUE(vec.ok()) << vec.status().ToString();
      EXPECT_STREQ(simd::SimdLevelName(static_cast<simd::SimdLevel>(
                       vec->stats().simd_level)),
                   level);
      EXPECT_EQ(off->stats().iterations, vec->stats().iterations);
      if (max_family) {
        EXPECT_GT(vec->stats().simd_panel_bytes, 0u);
      }
      ASSERT_EQ(off->values().size(), vec->values().size());
      for (size_t i = 0; i < off->values().size(); ++i) {
        if (max_family) {
          // The panel tile path is bit-identical to the scalar tile path.
          ASSERT_EQ(off->values()[i], vec->values()[i])
              << level << " θ=" << theta << " entry " << i;
        } else {
          ASSERT_NEAR(off->values()[i], vec->values()[i], 1e-12)
              << level << " θ=" << theta << " entry " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorCombinations, SimdEngineSweep,
    ::testing::Combine(
        ::testing::Values(MappingKind::kMaxPerRow, MappingKind::kInjectiveRow,
                          MappingKind::kMaxBothSides,
                          MappingKind::kInjectiveSym, MappingKind::kProduct),
        ::testing::Values(OmegaKind::kSizeS1, OmegaKind::kSumSizes,
                          OmegaKind::kGeoMean, OmegaKind::kMaxSize,
                          OmegaKind::kProduct),
        ::testing::Values(MatchingAlgo::kGreedy, MatchingAlgo::kHungarian)),
    [](const ::testing::TestParamInfo<SweepParam>& pinfo) {
      auto mapping_name = [](MappingKind m) {
        switch (m) {
          case MappingKind::kMaxPerRow: return "MaxPerRow";
          case MappingKind::kInjectiveRow: return "InjectiveRow";
          case MappingKind::kMaxBothSides: return "MaxBothSides";
          case MappingKind::kInjectiveSym: return "InjectiveSym";
          case MappingKind::kProduct: return "Product";
        }
        return "Unknown";
      };
      auto omega_name = [](OmegaKind o) {
        switch (o) {
          case OmegaKind::kSizeS1: return "SizeS1";
          case OmegaKind::kSumSizes: return "SumSizes";
          case OmegaKind::kGeoMean: return "GeoMean";
          case OmegaKind::kMaxSize: return "MaxSize";
          case OmegaKind::kProduct: return "Product";
        }
        return "Unknown";
      };
      return std::string(mapping_name(std::get<0>(pinfo.param))) + "_" +
             omega_name(std::get<1>(pinfo.param)) + "_" +
             (std::get<2>(pinfo.param) == MatchingAlgo::kHungarian
                  ? "Hungarian"
                  : "Greedy");
    });

TEST(SimdEngineTest, RaggedTilesMatchForcedOff) {
  // n2 = 300: one full 256-wide v-tile plus a 44-entry tail; row chunks at
  // the tail of n1 are shorter than the 8-row grain.
  const Graph g = MakeSweepGraph(97, 300);
  for (SimVariant variant : {SimVariant::kSimple, SimVariant::kBi}) {
    FSimConfig config;
    config.variant = variant;
    config.label_sim = LabelSimKind::kEditDistance;
    config.theta = 0.4;
    config.epsilon = 1e-3;
    auto off = RunAtLevel(g, config, "off");
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    for (const char* level : HostVectorLevelNames()) {
      auto vec = RunAtLevel(g, config, level);
      ASSERT_TRUE(vec.ok()) << vec.status().ToString();
      ASSERT_EQ(off->values().size(), vec->values().size());
      for (size_t i = 0; i < off->values().size(); ++i) {
        ASSERT_EQ(off->values()[i], vec->values()[i])
            << level << " entry " << i;
      }
    }
  }
}

TEST(SimdEngineTest, EmptyCompatClassesMatchForcedOff) {
  // Two label groups with zero cross-similarity under θ = 1: every row of
  // one group walks an empty work list against the other group's entries,
  // and entire classes have no compatible candidates in some tiles.
  GraphBuilder builder;
  const uint32_t n = 24;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(i % 2 == 0 ? "aa" : "zz");
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddEdge(i, (i + 1) % n);
    builder.AddEdge(i, (i + 5) % n);
  }
  const Graph g = std::move(builder).BuildOrDie();
  for (SimVariant variant : {SimVariant::kSimple, SimVariant::kBi}) {
    FSimConfig config;
    config.variant = variant;
    config.label_sim = LabelSimKind::kEditDistance;
    config.theta = 1.0;
    config.epsilon = 1e-4;
    auto off = RunAtLevel(g, config, "off");
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    for (const char* level : HostVectorLevelNames()) {
      auto vec = RunAtLevel(g, config, level);
      ASSERT_TRUE(vec.ok()) << vec.status().ToString();
      ASSERT_EQ(off->values().size(), vec->values().size());
      for (size_t i = 0; i < off->values().size(); ++i) {
        ASSERT_EQ(off->values()[i], vec->values()[i])
            << level << " entry " << i;
      }
    }
  }
}

TEST(SimdEngineTest, ConfigKnobOffMatchesEnvOff) {
  // config.simd = kOff must behave exactly like FSIM_SIMD=off (and the
  // env, when present, wins over the config knob).
  const Graph g = MakeSweepGraph(5, 40);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.5;
  config.epsilon = 1e-4;
  config.simd = SimdMode::kOff;
  auto knob = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(knob.ok());
  EXPECT_EQ(knob->stats().simd_level, 0u);

  config.simd = SimdMode::kAuto;
  ScopedSimdEnv env("off");
  auto envoff = ComputeFSimDense(g, g, config);
  ASSERT_TRUE(envoff.ok());
  EXPECT_EQ(envoff->stats().simd_level, 0u);
  for (size_t i = 0; i < knob->values().size(); ++i) {
    ASSERT_EQ(knob->values()[i], envoff->values()[i]);
  }
}

}  // namespace
}  // namespace fsim
