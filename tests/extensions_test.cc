// Tests for the extension components: the HHK-style efficient simulation
// algorithm (equivalence with the naive fixpoint), single-source top-k
// search (exactness of the localized computation + certified error bound),
// score serialization round trips, and the IsoRank baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/fsim_engine.h"
#include "core/scores_io.h"
#include "core/topk_search.h"
#include "exact/efficient_simulation.h"
#include "exact/exact_simulation.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "measures/isorank.h"
#include "tests/test_graphs.h"

namespace fsim {
namespace {

// ----------------------------------------------- Efficient simulation ----

class EfficientSimEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EfficientSimEquivalence, MatchesNaiveFixpoint) {
  auto pair = testing::MakeRandomPair(GetParam() ^ 0xEFF, 14, 16, 3);
  BinaryRelation naive =
      MaxSimulation(pair.g1, pair.g2, SimVariant::kSimple);
  BinaryRelation fast = MaxSimulationEfficient(pair.g1, pair.g2);
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      ASSERT_EQ(naive.Contains(u, v), fast.Contains(u, v))
          << "(" << u << "," << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EfficientSimEquivalence,
                         ::testing::Range<uint64_t>(0, 10));

TEST(EfficientSimTest, Figure1Column) {
  auto fig = testing::MakeFigure1();
  BinaryRelation rel = MaxSimulationEfficient(fig.pattern, fig.data);
  EXPECT_FALSE(rel.Contains(fig.u, fig.v1));
  EXPECT_TRUE(rel.Contains(fig.u, fig.v2));
  EXPECT_TRUE(rel.Contains(fig.u, fig.v3));
  EXPECT_TRUE(rel.Contains(fig.u, fig.v4));
}

TEST(EfficientSimTest, LargerGraphAgreesWithNaive) {
  LabelingOptions lo;
  lo.num_labels = 4;
  lo.dict = std::make_shared<LabelDict>();
  Graph g1 = ErdosRenyi(60, 200, lo, 0xAA);
  Graph g2 = ErdosRenyi(70, 240, lo, 0xBB);
  BinaryRelation naive = MaxSimulation(g1, g2, SimVariant::kSimple);
  BinaryRelation fast = MaxSimulationEfficient(g1, g2);
  EXPECT_EQ(naive.CountPairs(), fast.CountPairs());
}

// ------------------------------------------------------- Top-k search ----

TEST(TopKSearchTest, MatchesFullEngineRow) {
  auto pair = testing::MakeRandomPair(0x70, 12, 14, 3);
  FSimConfig config;
  config.variant = SimVariant::kBijective;
  config.epsilon = 1e-9;
  const uint32_t depth = 6;

  FSimConfig full_config = config;
  full_config.max_iterations = depth;
  full_config.epsilon = 1e-300;  // run exactly `depth` iterations
  auto full = ComputeFSim(pair.g1, pair.g2, full_config);
  ASSERT_TRUE(full.ok());

  for (NodeId source = 0; source < pair.g1.NumNodes(); ++source) {
    TopKOptions options;
    options.depth = depth;
    options.k = pair.g2.NumNodes();
    auto topk = TopKSearch(pair.g1, pair.g2, source, config, options);
    ASSERT_TRUE(topk.ok()) << topk.status().ToString();
    // The localized computation reproduces FSim^depth(source, ·) exactly.
    for (const auto& [v, score] : topk->ranking) {
      ASSERT_DOUBLE_EQ(score, full->Score(source, v))
          << "source " << source << " candidate " << v;
    }
  }
}

TEST(TopKSearchTest, ErrorBoundCoversConvergedScores) {
  auto pair = testing::MakeRandomPair(0x71, 10, 12, 2);
  FSimConfig config;
  config.variant = SimVariant::kSimple;
  config.epsilon = 1e-12;
  config.max_iterations = 150;
  auto converged = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(converged.ok());

  for (uint32_t depth : {2u, 4u, 8u}) {
    TopKOptions options;
    options.depth = depth;
    options.k = pair.g2.NumNodes();
    auto topk = TopKSearch(pair.g1, pair.g2, 0, config, options);
    ASSERT_TRUE(topk.ok());
    for (const auto& [v, score] : topk->ranking) {
      ASSERT_LE(std::abs(score - converged->Score(0, v)),
                topk->error_bound + 1e-12)
          << "depth " << depth << " candidate " << v;
    }
  }
}

TEST(TopKSearchTest, RankingIsSortedAndTruncated) {
  auto pair = testing::MakeRandomPair(0x72, 10, 20, 2);
  FSimConfig config;
  TopKOptions options;
  options.k = 5;
  auto topk = TopKSearch(pair.g1, pair.g2, 3, config, options);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->ranking.size(), 5u);
  for (size_t i = 1; i < topk->ranking.size(); ++i) {
    EXPECT_GE(topk->ranking[i - 1].second, topk->ranking[i].second);
  }
}

TEST(TopKSearchTest, ThetaRestrictsCandidates) {
  auto pair = testing::MakeRandomPair(0x73, 10, 16, 3);
  FSimConfig config;
  config.theta = 1.0;
  TopKOptions options;
  options.k = 100;
  auto topk = TopKSearch(pair.g1, pair.g2, 2, config, options);
  ASSERT_TRUE(topk.ok());
  for (const auto& [v, score] : topk->ranking) {
    EXPECT_EQ(pair.g1.Label(2), pair.g2.Label(v));
  }
}

TEST(TopKSearchTest, RejectsBadSource) {
  auto pair = testing::MakeRandomPair(0x74, 5, 5);
  FSimConfig config;
  EXPECT_TRUE(TopKSearch(pair.g1, pair.g2, 999, config).status()
                  .IsInvalidArgument());
}

TEST(TopKSearchTest, LocalityReducesPairCount) {
  // On a long path graph, the radius-d ball around an end node is small, so
  // the localized search touches far fewer pairs than all-pairs.
  GraphBuilder b;
  constexpr uint32_t kPathLen = 60;
  for (uint32_t i = 0; i < kPathLen; ++i) b.AddNode("P");
  for (uint32_t i = 0; i + 1 < kPathLen; ++i) b.AddEdge(i, i + 1);
  Graph g = std::move(b).BuildOrDie();
  FSimConfig config;
  TopKOptions options;
  options.depth = 3;
  auto topk = TopKSearch(g, g, 0, config, options);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->pairs_computed, 4u * kPathLen);  // ball = {0,1,2,3}
}

// ------------------------------------------------------- Scores I/O ------

TEST(ScoresIoTest, RoundTripPreservesEverything) {
  auto pair = testing::MakeRandomPair(0x75, 10, 12, 3);
  FSimConfig config;
  config.variant = SimVariant::kBi;
  auto scores = ComputeFSim(pair.g1, pair.g2, config);
  ASSERT_TRUE(scores.ok());
  std::string text = ScoresToString(*scores);
  auto loaded = ScoresFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->NumPairs(), scores->NumPairs());
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
      ASSERT_DOUBLE_EQ(loaded->Score(u, v), scores->Score(u, v));
    }
  }
}

TEST(ScoresIoTest, FileRoundTrip) {
  auto pair = testing::MakeRandomPair(0x76, 6, 6);
  auto scores = ComputeFSim(pair.g1, pair.g2, FSimConfig{});
  ASSERT_TRUE(scores.ok());
  const std::string path = ::testing::TempDir() + "/fsim_scores_test.txt";
  ASSERT_TRUE(SaveScoresToFile(*scores, path).ok());
  auto loaded = LoadScoresFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumPairs(), scores->NumPairs());
}

TEST(ScoresIoTest, RejectsCorruptInput) {
  EXPECT_TRUE(ScoresFromString("not a score file").status().IsIOError());
  EXPECT_TRUE(ScoresFromString("fsim-scores v1\npairs 2\n0 0 0.5\n")
                  .status()
                  .IsIOError());  // count mismatch
  EXPECT_TRUE(ScoresFromString("fsim-scores v1\npairs 1\n0 0 7.5\n")
                  .status()
                  .IsIOError());  // out-of-range score
  EXPECT_TRUE(ScoresFromString("fsim-scores v1\npairs 2\n0 0 0.5\n0 0 0.6\n")
                  .status()
                  .IsIOError());  // duplicate pair
}

TEST(ScoresIoTest, AcceptsUnsortedInput) {
  auto loaded = ScoresFromString(
      "fsim-scores v1\npairs 2\n3 1 0.25\n1 2 0.75\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->Score(3, 1), 0.25);
  EXPECT_DOUBLE_EQ(loaded->Score(1, 2), 0.75);
}

// ----------------------------------------------------------- IsoRank -----

TEST(IsoRankTest, ScoresAreWellFormedAndLabelAware) {
  auto pair = testing::MakeRandomPair(0x77, 10, 12, 2);
  auto scores = IsoRankScores(pair.g1, pair.g2);
  const size_t n2 = pair.g2.NumNodes();
  for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
    for (NodeId v = 0; v < n2; ++v) {
      const double s = scores[u * n2 + v];
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-9);
    }
  }
}

TEST(IsoRankTest, IdenticalGraphsFavorDiagonalStructure) {
  LabelingOptions lo;
  lo.num_labels = 3;
  Graph g = ErdosRenyi(12, 30, lo, 0x78);
  auto scores = IsoRankScores(g, g);
  const size_t n = g.NumNodes();
  // The diagonal should carry (weakly) maximal scores within each row's
  // same-label candidates.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (g.Label(u) != g.Label(v)) continue;
      EXPECT_GE(scores[u * n + u] + 1e-9, 0.0);
    }
    EXPECT_GT(scores[u * n + u], 0.0);
  }
}

TEST(IsoRankTest, LabelMismatchGetsNoPrior) {
  GraphBuilder b;
  b.AddNode("A");
  b.AddNode("B");
  Graph g = std::move(b).BuildOrDie();
  auto scores = IsoRankScores(g, g);
  EXPECT_DOUBLE_EQ(scores[0 * 2 + 1], 0.0);
  EXPECT_GT(scores[0 * 2 + 0], 0.0);
}

}  // namespace
}  // namespace fsim
