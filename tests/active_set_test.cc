// Lockstep tests for the delta-driven active-set iterate driver
// (core/pair_evaluator.h ActiveSetDriver, docs/performance.md "Active-set
// iteration"): exact mode must be bit-identical to full sweeps — same
// scores, same iteration count, same convergence decision — across the
// MappingKind x OmegaKind x matching x θ sweep, including the
// dense-frontier fallback, single-direction configs (whose reverse
// dependency lists come from the opposite-direction spans), the
// AsUndirected adaptation (out-span doubles as its own dependent list),
// pruned-ref skipping, and the top-k and incremental engines that share
// the machinery. Tolerance mode must stay within its documented
// frontier_tolerance * (1 + w) / (1 - w) error bound while actually
// skipping work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "common/random.h"
#include "core/fsim_config.h"
#include "core/fsim_engine.h"
#include "core/incremental.h"
#include "core/topk_allpairs.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"

namespace fsim {
namespace {

/// A random labeled digraph where every node has out- and in-degree >= 1
/// (a ring plus random chords), as in tests/neighbor_index_test.cc.
Graph MakeDenseRandomGraph(uint64_t seed, uint32_t n = 24) {
  static const char* kLabels[] = {"aa", "ab", "bb", "bc"};
  Rng rng(seed);
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddNode(kLabels[rng.Next() % 4]);
  }
  for (uint32_t i = 0; i < n; ++i) {
    builder.AddEdge(i, (i + 1) % n);
  }
  for (uint32_t e = 0; e < 2 * n; ++e) {
    NodeId from = static_cast<NodeId>(rng.Next() % n);
    NodeId to = static_cast<NodeId>(rng.Next() % n);
    if (from != to) builder.AddEdge(from, to);
  }
  return std::move(builder).BuildOrDie();
}

/// A directed chain: dependencies have bounded depth, so pairs freeze
/// *exactly* (bit-level) wave by wave from the chain's tail — the
/// deterministic workload where exact-mode frontiers provably shrink.
Graph MakeChainGraph(uint32_t n = 30) {
  static const char* kLabels[] = {"x", "y"};
  GraphBuilder builder;
  for (uint32_t i = 0; i < n; ++i) builder.AddNode(kLabels[i % 2]);
  for (uint32_t i = 0; i + 1 < n; ++i) builder.AddEdge(i, i + 1);
  return std::move(builder).BuildOrDie();
}

/// Runs `config` with the exact active set (marking from iteration 1) and
/// with the active set off, and asserts the runs are indistinguishable:
/// same pair set, same scores bit for bit, same iteration count and
/// convergence flag.
void ExpectExactLockstep(const Graph& g, FSimConfig config,
                         const std::string& context) {
  config.neighbor_index_budget_bytes = 1ULL << 30;
  config.active_set = ActiveSetMode::kExact;
  config.active_set_activation_fraction = 0.0;  // pin the frontier path
  auto active = ComputeFSimSelf(g, config);
  ASSERT_TRUE(active.ok()) << context << ": " << active.status().ToString();
  EXPECT_TRUE(active->stats().active_set) << context;

  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeFSimSelf(g, config);
  ASSERT_TRUE(off.ok()) << context << ": " << off.status().ToString();
  EXPECT_FALSE(off->stats().active_set) << context;

  ASSERT_EQ(active->keys().size(), off->keys().size()) << context;
  EXPECT_EQ(active->stats().iterations, off->stats().iterations) << context;
  EXPECT_EQ(active->stats().converged, off->stats().converged) << context;
  for (size_t i = 0; i < active->keys().size(); ++i) {
    ASSERT_EQ(active->keys()[i], off->keys()[i]) << context;
    // Bit-identical, not just close: frozen pairs carry their exact value.
    ASSERT_EQ(active->values()[i], off->values()[i])
        << context << " pair " << i << " (u="
        << PairFirst(active->keys()[i]) << ", v="
        << PairSecond(active->keys()[i]) << ")";
  }
  const auto& history = active->stats().active_pairs_history;
  ASSERT_EQ(history.size(), active->stats().iterations) << context;
  if (!history.empty()) {
    EXPECT_EQ(history.front(), active->stats().maintained_pairs) << context;
  }
}

const MappingKind kAllMappings[] = {
    MappingKind::kMaxPerRow, MappingKind::kInjectiveRow,
    MappingKind::kMaxBothSides, MappingKind::kInjectiveSym,
    MappingKind::kProduct};
const OmegaKind kAllOmegas[] = {OmegaKind::kSizeS1, OmegaKind::kSumSizes,
                                OmegaKind::kGeoMean, OmegaKind::kMaxSize,
                                OmegaKind::kProduct};

using SweepParam = std::tuple<MappingKind, OmegaKind, MatchingAlgo>;

class ActiveSetLockstep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ActiveSetLockstep, ExactModeMatchesFullSweeps) {
  const auto [mapping, omega, matching] = GetParam();
  const Graph g = MakeDenseRandomGraph(/*seed=*/11 + static_cast<int>(omega));
  for (double theta : {0.0, 0.4}) {
    FSimConfig config;
    config.operator_override = OperatorConfig{mapping, omega};
    config.matching = matching;
    config.label_sim = LabelSimKind::kEditDistance;
    config.theta = theta;
    config.w_out = 0.35;
    config.w_in = 0.35;
    config.epsilon = 1e-6;  // enough iterations for frontiers to matter
    ExpectExactLockstep(g, config,
                        "theta=" + std::to_string(theta));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Operators, ActiveSetLockstep,
    ::testing::Combine(::testing::ValuesIn(kAllMappings),
                       ::testing::ValuesIn(kAllOmegas),
                       ::testing::Values(MatchingAlgo::kGreedy,
                                         MatchingAlgo::kHungarian)));

// On the chain, dependencies have bounded depth, so the exact frontier
// must actually shrink (pairs freeze bit-exactly wave by wave) and the
// sparse-commit path is exercised for real.
TEST(ActiveSetExact, ChainFrontierShrinks) {
  const Graph g = MakeChainGraph();
  FSimConfig config;
  config.w_out = 0.7;
  config.w_in = 0.0;
  config.epsilon = 1e-12;
  config.active_set = ActiveSetMode::kExact;
  config.active_set_activation_fraction = 0.0;
  auto active = ComputeFSimSelf(g, config);
  ASSERT_TRUE(active.ok()) << active.status().ToString();
  const auto& stats = active->stats();
  ASSERT_TRUE(stats.active_set);
  ASSERT_GT(stats.active_pairs_history.size(), 2u);
  EXPECT_LT(stats.active_pairs_history.back(),
            stats.active_pairs_history.front());
  EXPECT_GT(stats.frozen_fraction, 0.1);
  EXPECT_LT(stats.full_sweep_iterations, stats.iterations);

  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeFSimSelf(g, config);
  ASSERT_TRUE(off.ok());
  ASSERT_EQ(active->keys().size(), off->keys().size());
  EXPECT_EQ(active->stats().iterations, off->stats().iterations);
  for (size_t i = 0; i < active->values().size(); ++i) {
    ASSERT_EQ(active->values()[i], off->values()[i]) << "pair " << i;
  }
}

// The default activation policy (deferred marking) must not change results
// either — only when marking starts.
TEST(ActiveSetExact, DefaultActivationLockstep) {
  const Graph g = MakeChainGraph();
  FSimConfig config;
  config.w_out = 0.4;
  config.w_in = 0.3;
  config.epsilon = 1e-10;
  auto active = ComputeFSimSelf(g, config);  // defaults: kExact, 0.125
  ASSERT_TRUE(active.ok());
  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeFSimSelf(g, config);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(active->stats().iterations, off->stats().iterations);
  for (size_t i = 0; i < active->values().size(); ++i) {
    ASSERT_EQ(active->values()[i], off->values()[i]) << "pair " << i;
  }
}

// frontier_density_threshold = 0 forces every iteration through the
// full-sweep fallback; the run must still be bit-identical and report
// full_sweep_iterations == iterations.
TEST(ActiveSetExact, DenseFrontierFallback) {
  const Graph g = MakeChainGraph();
  FSimConfig config;
  config.w_out = 0.7;
  config.w_in = 0.0;
  config.epsilon = 1e-12;
  config.active_set = ActiveSetMode::kExact;
  config.active_set_activation_fraction = 0.0;
  config.frontier_density_threshold = 0.0;
  auto dense = ComputeFSimSelf(g, config);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense->stats().full_sweep_iterations, dense->stats().iterations);
  config.frontier_density_threshold = 1.0;
  auto sparse = ComputeFSimSelf(g, config);
  ASSERT_TRUE(sparse.ok());
  EXPECT_LT(sparse->stats().full_sweep_iterations,
            sparse->stats().iterations);
  ASSERT_EQ(dense->values().size(), sparse->values().size());
  for (size_t i = 0; i < dense->values().size(); ++i) {
    ASSERT_EQ(dense->values()[i], sparse->values()[i]) << "pair " << i;
  }
}

// Single-direction configs: the reverse-dependency lists come from the
// opposite-direction spans, which exist only for the active set's sake.
TEST(ActiveSetExact, SimRankConfigLockstep) {
  LabelingOptions lo;
  lo.num_labels = 1;
  const Graph g = ErdosRenyi(14, 40, lo, 31);
  FSimConfig config = SimRankFSimConfig(0.8);  // w_out = 0, pin_diagonal
  config.epsilon = 1e-8;
  ExpectExactLockstep(g, config, "simrank");
}

TEST(ActiveSetExact, RoleSimUndirectedLockstep) {
  LabelingOptions lo;
  lo.num_labels = 1;
  const Graph g = ErdosRenyi(12, 30, lo, 47).AsUndirected();
  FSimConfig config = RoleSimFSimConfig(0.15);  // w_in = 0, empty in-lists
  config.epsilon = 1e-8;
  ExpectExactLockstep(g, config, "rolesim");
}

// A single-direction config doubles its span bound when the active set
// widens the index (at θ = 0, Σ outdeg(u)·outdeg(v) = Σ indeg(u)·indeg(v)
// = |E|²). When only the widened layout blows the budget, the build must
// fall back to the evaluation-only index — index still used, active set
// reporting off, scores unchanged — instead of dropping the index.
TEST(ActiveSetExact, BudgetFallsBackToEvaluationOnlyIndex) {
  const Graph g = MakeDenseRandomGraph(3, 12);
  FSimConfig config;
  config.w_out = 0.7;
  config.w_in = 0.0;
  config.theta = 0.0;
  config.epsilon = 1e-6;
  config.use_packed_neighbor_refs = false;
  const uint64_t pairs =
      static_cast<uint64_t>(g.NumNodes()) * g.NumNodes();
  const uint64_t edges = g.NumEdges();
  const uint64_t bound_base =
      edges * edges * sizeof(NeighborRef) + (2 * pairs + 1) * sizeof(uint64_t);
  config.neighbor_index_budget_bytes = bound_base;  // widened = 2x entries
  auto limited = ComputeFSimSelf(g, config);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_TRUE(limited->stats().used_neighbor_index);
  EXPECT_FALSE(limited->stats().active_set);

  config.neighbor_index_budget_bytes = 1ULL << 30;
  auto active = ComputeFSimSelf(g, config);
  ASSERT_TRUE(active.ok());
  EXPECT_TRUE(active->stats().active_set);

  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeFSimSelf(g, config);
  ASSERT_TRUE(off.ok());
  ASSERT_EQ(limited->values().size(), off->values().size());
  for (size_t i = 0; i < off->values().size(); ++i) {
    ASSERT_EQ(limited->values()[i], off->values()[i]) << "pair " << i;
    ASSERT_EQ(active->values()[i], off->values()[i]) << "pair " << i;
  }
}

// Upper-bound pruning with α > 0 plants tagged pruned-table refs in the
// spans; frontier marking must skip them (their bounds never change).
TEST(ActiveSetExact, PrunedRefsAreSkipped) {
  const Graph g = MakeDenseRandomGraph(5);
  FSimConfig config;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.upper_bound = true;
  config.alpha = 0.3;
  config.beta = 0.35;
  config.epsilon = 1e-8;
  ExpectExactLockstep(g, config, "pruned-alpha");
}

// Tolerance mode: scores stay within frontier_tolerance * (1 + w) / (1 - w)
// of the full-sweep scores (both runs converged far below the tolerance,
// so the termination residual is negligible), and work is actually skipped.
TEST(ActiveSetTolerance, ErrorBoundHolds) {
  const Graph g = MakeDenseRandomGraph(21);
  FSimConfig config;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.0;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-9;
  config.active_set = ActiveSetMode::kTolerance;
  config.frontier_tolerance = 1e-3;
  config.active_set_activation_fraction = 0.0;
  auto tol = ComputeFSimSelf(g, config);
  ASSERT_TRUE(tol.ok()) << tol.status().ToString();
  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeFSimSelf(g, config);
  ASSERT_TRUE(off.ok());

  const double w = config.w_out + config.w_in;
  const double bound =
      config.frontier_tolerance * (1.0 + w) / (1.0 - w) + 1e-6;
  double max_diff = 0.0;
  for (size_t i = 0; i < tol->values().size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(tol->values()[i] - off->values()[i]));
  }
  EXPECT_LE(max_diff, bound);
  // The skipping must be real: fewer evaluations than iterations * pairs.
  EXPECT_GT(tol->stats().frozen_fraction, 0.0);
  EXPECT_LE(tol->stats().iterations, off->stats().iterations);
}

// The top-k all-pairs engine shares the driver; its certified result must
// not depend on the scheduling mode.
TEST(ActiveSetTopK, TopKPairsLockstep) {
  const Graph g = MakeDenseRandomGraph(9);
  FSimConfig config;
  config.label_sim = LabelSimKind::kEditDistance;
  config.theta = 0.4;
  config.w_out = 0.35;
  config.w_in = 0.35;
  config.epsilon = 1e-6;
  config.active_set = ActiveSetMode::kExact;
  config.active_set_activation_fraction = 0.0;
  TopKPairsOptions options;
  options.k = 8;
  options.exclude_diagonal = true;
  auto active = ComputeTopKPairs(g, g, config, options);
  ASSERT_TRUE(active.ok()) << active.status().ToString();
  config.active_set = ActiveSetMode::kOff;
  auto off = ComputeTopKPairs(g, g, config, options);
  ASSERT_TRUE(off.ok());
  ASSERT_EQ(active->pairs.size(), off->pairs.size());
  EXPECT_EQ(active->iterations, off->iterations);
  EXPECT_EQ(active->certified, off->certified);
  for (size_t i = 0; i < active->pairs.size(); ++i) {
    EXPECT_EQ(active->pairs[i].u, off->pairs[i].u) << i;
    EXPECT_EQ(active->pairs[i].v, off->pairs[i].v) << i;
    EXPECT_EQ(active->pairs[i].score, off->pairs[i].score) << i;
  }
}

// IncrementalFSim's initial solve honors the active-set config (the
// serving layer's warm-start path); exact mode must match the off-mode
// solve bit for bit, on transpose-consistent and undirected graphs alike.
TEST(ActiveSetIncremental, InitialSolveLockstep) {
  LabelingOptions lo;
  lo.num_labels = 3;
  const Graph directed = ErdosRenyi(16, 48, lo, 77);
  LabelingOptions lo1;
  lo1.num_labels = 1;
  const Graph undirected = ErdosRenyi(12, 30, lo1, 13).AsUndirected();
  struct Case {
    const Graph* g;
    FSimConfig config;
    const char* name;
  };
  FSimConfig plain;
  plain.w_out = 0.4;
  plain.w_in = 0.4;
  plain.epsilon = 1e-8;
  FSimConfig rolesim = RoleSimFSimConfig(0.15);
  rolesim.epsilon = 1e-8;
  const Case cases[] = {{&directed, plain, "directed"},
                        {&undirected, rolesim, "undirected"}};
  for (const Case& c : cases) {
    FSimConfig config = c.config;
    config.active_set = ActiveSetMode::kExact;
    config.active_set_activation_fraction = 0.0;
    auto active = IncrementalFSim::Create(*c.g, *c.g, config);
    ASSERT_TRUE(active.ok()) << c.name << ": "
                             << active.status().ToString();
    config.active_set = ActiveSetMode::kOff;
    auto off = IncrementalFSim::Create(*c.g, *c.g, config);
    ASSERT_TRUE(off.ok()) << c.name;
    FSimScores a = active->Snapshot();
    FSimScores b = off->Snapshot();
    ASSERT_EQ(a.values().size(), b.values().size()) << c.name;
    EXPECT_EQ(a.stats().converged, b.stats().converged) << c.name;
    for (size_t i = 0; i < a.values().size(); ++i) {
      ASSERT_EQ(a.values()[i], b.values()[i]) << c.name << " pair " << i;
    }
  }
}

// Invalid active-set knobs are rejected up front.
TEST(ActiveSetConfig, Validation) {
  const Graph g = MakeChainGraph(6);
  FSimConfig config;
  config.active_set = ActiveSetMode::kTolerance;
  config.frontier_tolerance = 0.0;
  EXPECT_FALSE(ComputeFSimSelf(g, config).ok());
  config.frontier_tolerance = 1e-3;
  config.frontier_density_threshold = 1.5;
  EXPECT_FALSE(ComputeFSimSelf(g, config).ok());
  config.frontier_density_threshold = 0.5;
  config.active_set_activation_fraction = -0.1;
  EXPECT_FALSE(ComputeFSimSelf(g, config).ok());
  config.active_set_activation_fraction = 0.125;
  EXPECT_TRUE(ComputeFSimSelf(g, config).ok());
}

}  // namespace
}  // namespace fsim
