// Tests for the splitter-queue partition refinement
// (exact/partition_refinement.h) — cross-validated against the independent
// signature refinement, WL colors and the greatest-fixpoint exact checkers —
// and for weak simulation (exact/weak_simulation.h).
#include <algorithm>

#include "exact/exact_simulation.h"
#include "exact/partition_refinement.h"
#include "exact/signatures.h"
#include "core/fsim_variants.h"
#include "exact/bounded_simulation.h"
#include "exact/weak_simulation.h"
#include "gtest/gtest.h"
#include "test_graphs.h"

namespace fsim {
namespace {

using ::fsim::testing::MakeRandomPair;

// True if the two block assignments induce the same equivalence relation.
bool SamePartition(const std::vector<uint32_t>& a,
                   const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return false;
  for (size_t u = 0; u < a.size(); ++u) {
    for (size_t v = u + 1; v < a.size(); ++v) {
      if ((a[u] == a[v]) != (b[u] == b[v])) return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Partition refinement: hand-built cases
// ---------------------------------------------------------------------------

TEST(PartitionRefinement, EmptyGraph) {
  Graph g;
  Partition p = BisimulationPartition(g);
  EXPECT_EQ(p.num_blocks, 0u);
  EXPECT_TRUE(p.block_of.empty());
}

TEST(PartitionRefinement, EdgelessNodesGroupByLabel) {
  GraphBuilder b;
  b.AddNode("x");
  b.AddNode("y");
  b.AddNode("x");
  b.AddNode("y");
  Graph g = std::move(b).BuildOrDie();
  Partition p = BisimulationPartition(g);
  EXPECT_EQ(p.num_blocks, 2u);
  EXPECT_TRUE(p.SameBlock(0, 2));
  EXPECT_TRUE(p.SameBlock(1, 3));
  EXPECT_FALSE(p.SameBlock(0, 1));
}

TEST(PartitionRefinement, UniformCycleIsOneBlock) {
  // All nodes of a same-label directed cycle are bisimilar.
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode("x");
  for (NodeId i = 0; i < 5; ++i) b.AddEdge(i, (i + 1) % 5);
  Graph g = std::move(b).BuildOrDie();
  Partition p = BisimulationPartition(g);
  EXPECT_EQ(p.num_blocks, 1u);
}

TEST(PartitionRefinement, PathSplitsByPosition) {
  // a -> b -> c (all label x): a (no in), b (both), c (no out) are mutually
  // non-bisimilar once in-neighbors count.
  GraphBuilder b;
  for (int i = 0; i < 3; ++i) b.AddNode("x");
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = std::move(b).BuildOrDie();
  Partition p = BisimulationPartition(g);
  EXPECT_EQ(p.num_blocks, 3u);

  // Out-neighbors only: a and b both step to an "x that can step"... the
  // refinement separates c (no out-edge) from a and b; a and b stay together
  // only if their out-targets stay together, which they do not (b's target
  // is c). So 3 blocks again — but via a different refinement path.
  Partition out_only = CoarsestStablePartition(
      g, RefinementSemantics::kSet, /*use_in_neighbors=*/false);
  EXPECT_EQ(out_only.num_blocks, 3u);
}

TEST(PartitionRefinement, CountingSeparatesWhereSetDoesNot) {
  // Hub with two same-label leaves vs hub with one leaf: set-stable keeps
  // the hubs together, counting-stable splits them.
  GraphBuilder b;
  NodeId h1 = b.AddNode("hub");
  NodeId h2 = b.AddNode("hub");
  NodeId l1 = b.AddNode("leaf");
  NodeId l2 = b.AddNode("leaf");
  NodeId l3 = b.AddNode("leaf");
  b.AddEdge(h1, l1);
  b.AddEdge(h1, l2);
  b.AddEdge(h2, l3);
  Graph g = std::move(b).BuildOrDie();

  Partition set_p =
      CoarsestStablePartition(g, RefinementSemantics::kSet, false);
  EXPECT_TRUE(set_p.SameBlock(h1, h2));

  Partition count_p =
      CoarsestStablePartition(g, RefinementSemantics::kCounting, false);
  EXPECT_FALSE(count_p.SameBlock(h1, h2));
  // Counting refines set: same counting block implies same set block.
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (count_p.SameBlock(u, v)) {
        EXPECT_TRUE(set_p.SameBlock(u, v));
      }
    }
  }
}

TEST(PartitionRefinement, DeterministicAcrossRuns) {
  auto pair = MakeRandomPair(41, 20, 20, 4);
  Partition p1 = BisimulationPartition(pair.g1);
  Partition p2 = BisimulationPartition(pair.g1);
  EXPECT_EQ(p1.block_of, p2.block_of);
  EXPECT_EQ(p1.num_blocks, p2.num_blocks);
}

// ---------------------------------------------------------------------------
// Partition refinement: cross-validation against independent implementations
// ---------------------------------------------------------------------------

TEST(PartitionRefinement, SetSemanticsMatchesSignatureRefinement) {
  for (uint64_t seed : {51u, 52u, 53u, 54u}) {
    auto pair = MakeRandomPair(seed, 16, 16, 3);
    const Graph& g = pair.g1;
    Partition p = BisimulationPartition(g);
    auto classes = BisimulationClasses(g, g, /*use_in_neighbors=*/true);
    EXPECT_TRUE(SamePartition(p.block_of, classes.first)) << "seed " << seed;
  }
}

TEST(PartitionRefinement, SetSemanticsMatchesExactBisimulation) {
  for (uint64_t seed : {61u, 62u, 63u}) {
    auto pair = MakeRandomPair(seed, 12, 12, 2);
    const Graph& g = pair.g1;
    Partition p = BisimulationPartition(g);
    BinaryRelation rel = MaxSimulation(g, g, SimVariant::kBi);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        EXPECT_EQ(p.SameBlock(u, v), rel.Contains(u, v))
            << "seed " << seed << " (" << u << ", " << v << ")";
      }
    }
  }
}

TEST(PartitionRefinement, CountingSemanticsMatchesExactBijective) {
  for (uint64_t seed : {71u, 72u, 73u}) {
    auto pair = MakeRandomPair(seed, 12, 12, 2);
    const Graph& g = pair.g1;
    Partition p =
        CoarsestStablePartition(g, RefinementSemantics::kCounting, true);
    BinaryRelation rel = MaxSimulation(g, g, SimVariant::kBijective);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        EXPECT_EQ(p.SameBlock(u, v), rel.Contains(u, v))
            << "seed " << seed << " (" << u << ", " << v << ")";
      }
    }
  }
}

// Symmetric closure with real reverse adjacency: both directions of every
// edge. (Graph::AsUndirected leaves the in-neighbor lists empty, which WL
// never reads but the splitter search does.)
Graph Symmetrized(const Graph& g) {
  GraphBuilder b(g.dict());
  for (NodeId u = 0; u < g.NumNodes(); ++u) b.AddNodeWithLabelId(g.Label(u));
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId w : g.OutNeighbors(u)) {
      b.AddEdge(u, w);
      b.AddEdge(w, u);
    }
  }
  return std::move(b).BuildOrDie();
}

TEST(PartitionRefinement, CountingOnUndirectedMatchesWLColors) {
  for (uint64_t seed : {81u, 82u, 83u, 84u}) {
    auto pair = MakeRandomPair(seed, 16, 16, 3);
    Graph sym = Symmetrized(pair.g1);
    Partition p = CoarsestStablePartition(
        sym, RefinementSemantics::kCounting, /*use_in_neighbors=*/false);
    // WL reads out-neighbors, which in the symmetric closure equal the
    // undirected neighbor sets.
    std::vector<uint64_t> colors = WLColors(sym);
    EXPECT_TRUE(SamePartition(p.block_of, colors)) << "seed " << seed;
  }
}

TEST(PartitionRefinement, CountingRefinesSetOnRandomGraphs) {
  for (uint64_t seed : {91u, 92u}) {
    auto pair = MakeRandomPair(seed, 18, 18, 3);
    const Graph& g = pair.g1;
    Partition set_p =
        CoarsestStablePartition(g, RefinementSemantics::kSet, true);
    Partition count_p =
        CoarsestStablePartition(g, RefinementSemantics::kCounting, true);
    EXPECT_GE(count_p.num_blocks, set_p.num_blocks);
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        if (count_p.SameBlock(u, v)) {
          EXPECT_TRUE(set_p.SameBlock(u, v)) << "seed " << seed;
        }
      }
    }
  }
}

TEST(PartitionRefinement, ReportsSplitterWork) {
  auto pair = MakeRandomPair(95, 20, 20, 4);
  Partition p = BisimulationPartition(pair.g1);
  EXPECT_GT(p.splitters_processed, 0u);
  EXPECT_LE(p.num_blocks, pair.g1.NumNodes());
}

// ---------------------------------------------------------------------------
// Weak simulation
// ---------------------------------------------------------------------------

TEST(WeakSimulation, EmptyInternalSetEqualsSimpleSimulation) {
  for (uint64_t seed : {101u, 102u, 103u}) {
    auto pair = MakeRandomPair(seed);
    std::vector<uint8_t> mask1(pair.g1.NumNodes(), 0);
    std::vector<uint8_t> mask2(pair.g2.NumNodes(), 0);
    auto weak = MaxWeakSimulation(pair.g1, mask1, pair.g2, mask2);
    ASSERT_TRUE(weak.ok()) << weak.status().ToString();
    BinaryRelation simple =
        MaxSimulation(pair.g1, pair.g2, SimVariant::kSimple);
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
        EXPECT_EQ(weak->Contains(u, v), simple.Contains(u, v))
            << "seed " << seed;
      }
    }
  }
}

TEST(WeakSimulation, InternalDetourIsTransparent) {
  // g1: a -> w directly. g2: b -> i -> w' with i internal. With τ = {"int"},
  // b weakly simulates a (and vice versa on the observable part).
  GraphBuilder builder;
  NodeId a = builder.AddNode("src");
  NodeId w1 = builder.AddNode("obs");
  builder.AddEdge(a, w1);
  Graph g1 = std::move(builder).BuildOrDie();

  GraphBuilder builder2(g1.dict());
  NodeId bnode = builder2.AddNode("src");
  NodeId inode = builder2.AddNode("int");
  NodeId w2 = builder2.AddNode("obs");
  builder2.AddEdge(bnode, inode);
  builder2.AddEdge(inode, w2);
  Graph g2 = std::move(builder2).BuildOrDie();

  // Without internal labels, a is NOT simulated by b (b's neighbor is "int").
  BinaryRelation simple = MaxSimulation(g1, g2, SimVariant::kSimple);
  EXPECT_FALSE(simple.Contains(a, bnode));

  auto mask1 = InternalMaskFromLabels(g1, {"int"});
  auto mask2 = InternalMaskFromLabels(g2, {"int"});
  auto weak = MaxWeakSimulation(g1, mask1, g2, mask2);
  ASSERT_TRUE(weak.ok());
  EXPECT_TRUE(weak->Contains(a, bnode));
  EXPECT_TRUE(weak->Contains(w1, w2));
}

TEST(WeakSimulation, SimpleSimulationImpliesWeakSimulation) {
  // Internality is label-determined, so any simple simulation is also a
  // weak simulation (matched internal detours stay internal).
  for (uint64_t seed : {111u, 112u}) {
    auto pair = MakeRandomPair(seed, 10, 12, 3);
    auto mask1 = InternalMaskFromLabels(pair.g1, {"L0"});
    auto mask2 = InternalMaskFromLabels(pair.g2, {"L0"});
    BinaryRelation simple =
        MaxSimulation(pair.g1, pair.g2, SimVariant::kSimple);
    auto weak = MaxWeakSimulation(pair.g1, mask1, pair.g2, mask2);
    ASSERT_TRUE(weak.ok());
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
        if (simple.Contains(u, v)) {
          EXPECT_TRUE(weak->Contains(u, v))
              << "seed " << seed << " (" << u << ", " << v << ")";
        }
      }
    }
  }
}

TEST(WeakSimulation, ClosureSkipsInternalChainsAndCycles) {
  // u -> i1 -> i2 -> i1 (cycle) and i2 -> w: the closure must terminate and
  // produce u -> w; the internal cycle contributes nothing else.
  GraphBuilder b;
  NodeId u = b.AddNode("src");
  NodeId i1 = b.AddNode("int");
  NodeId i2 = b.AddNode("int");
  NodeId w = b.AddNode("obs");
  b.AddEdge(u, i1);
  b.AddEdge(i1, i2);
  b.AddEdge(i2, i1);
  b.AddEdge(i2, w);
  Graph g = std::move(b).BuildOrDie();
  auto mask = InternalMaskFromLabels(g, {"int"});
  auto closure = WeakClosure(g, mask);
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(closure->HasEdge(u, w));
  EXPECT_FALSE(closure->HasEdge(u, i1));
  // The internal nodes also reach w through the cycle.
  EXPECT_TRUE(closure->HasEdge(i1, w));
  EXPECT_TRUE(closure->HasEdge(i2, w));
}

TEST(WeakSimulation, ObservableSelfLoopFromInternalCycle) {
  // w -> i -> w: the closure contains the self-loop w -> w.
  GraphBuilder b;
  NodeId w = b.AddNode("obs");
  NodeId i = b.AddNode("int");
  b.AddEdge(w, i);
  b.AddEdge(i, w);
  Graph g = std::move(b).BuildOrDie();
  auto mask = InternalMaskFromLabels(g, {"int"});
  auto closure = WeakClosure(g, mask);
  ASSERT_TRUE(closure.ok());
  EXPECT_TRUE(closure->HasEdge(w, w));
}

TEST(WeakSimulation, MaskSizeMismatchRejected) {
  auto pair = MakeRandomPair(121);
  std::vector<uint8_t> bad_mask(pair.g1.NumNodes() + 1, 0);
  auto closure = WeakClosure(pair.g1, bad_mask);
  ASSERT_FALSE(closure.ok());
  EXPECT_TRUE(closure.status().IsInvalidArgument());
}

TEST(WeakSimulation, UnknownInternalLabelMarksNothing) {
  auto pair = MakeRandomPair(122);
  auto mask = InternalMaskFromLabels(pair.g1, {"no-such-label"});
  EXPECT_EQ(std::count(mask.begin(), mask.end(), 1), 0);
}

// ---------------------------------------------------------------------------
// Fractional bounded / weak simulation (core/fsim_variants.h)
// ---------------------------------------------------------------------------

TEST(FractionalVariants, BoundedKOneEqualsPlainFSim) {
  auto pair = MakeRandomPair(201);  // ER graphs: no self-loops, so the k=1
                                    // closure is the graph itself
  FSimConfig config;
  auto plain = ComputeFSim(pair.g1, pair.g2, config);
  auto bounded = ComputeFSimBounded(pair.g1, pair.g2, 1, config);
  ASSERT_TRUE(plain.ok() && bounded.ok());
  for (uint64_t key : plain->keys()) {
    EXPECT_DOUBLE_EQ(plain->Score(PairFirst(key), PairSecond(key)),
                     bounded->Score(PairFirst(key), PairSecond(key)));
  }
}

TEST(FractionalVariants, BoundedDefinitenessMatchesExactRelation) {
  for (uint64_t seed : {202u, 203u}) {
    auto pair = MakeRandomPair(seed, 8, 10, 2);
    FSimConfig config;
    config.variant = SimVariant::kSimple;
    config.matching = MatchingAlgo::kHungarian;
    config.epsilon = 1e-9;
    auto scores = ComputeFSimBounded(pair.g1, pair.g2, 2, config);
    ASSERT_TRUE(scores.ok());
    BinaryRelation exact = MaxBoundedSimulation(pair.g1, pair.g2, 2);
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
        EXPECT_EQ(scores->Score(u, v) > 1.0 - 1e-7, exact.Contains(u, v))
            << "seed " << seed << " (" << u << ", " << v << ")";
      }
    }
  }
}

TEST(FractionalVariants, BoundedRejectsZeroK) {
  auto pair = MakeRandomPair(204);
  auto scores = ComputeFSimBounded(pair.g1, pair.g2, 0, FSimConfig{});
  ASSERT_FALSE(scores.ok());
  EXPECT_TRUE(scores.status().IsInvalidArgument());
}

TEST(FractionalVariants, WeakEmptyMaskEqualsPlainFSim) {
  auto pair = MakeRandomPair(205);
  std::vector<uint8_t> mask1(pair.g1.NumNodes(), 0);
  std::vector<uint8_t> mask2(pair.g2.NumNodes(), 0);
  FSimConfig config;
  auto plain = ComputeFSim(pair.g1, pair.g2, config);
  auto weak = ComputeFSimWeak(pair.g1, mask1, pair.g2, mask2, config);
  ASSERT_TRUE(plain.ok() && weak.ok());
  for (uint64_t key : plain->keys()) {
    EXPECT_DOUBLE_EQ(plain->Score(PairFirst(key), PairSecond(key)),
                     weak->Score(PairFirst(key), PairSecond(key)));
  }
}

TEST(FractionalVariants, WeakDefinitenessMatchesExactRelation) {
  for (uint64_t seed : {206u, 207u}) {
    auto pair = MakeRandomPair(seed, 8, 10, 3);
    auto mask1 = InternalMaskFromLabels(pair.g1, {"L0"});
    auto mask2 = InternalMaskFromLabels(pair.g2, {"L0"});
    FSimConfig config;
    config.variant = SimVariant::kSimple;
    config.matching = MatchingAlgo::kHungarian;
    config.epsilon = 1e-9;
    auto scores = ComputeFSimWeak(pair.g1, mask1, pair.g2, mask2, config);
    ASSERT_TRUE(scores.ok());
    auto exact = MaxWeakSimulation(pair.g1, mask1, pair.g2, mask2);
    ASSERT_TRUE(exact.ok());
    for (NodeId u = 0; u < pair.g1.NumNodes(); ++u) {
      for (NodeId v = 0; v < pair.g2.NumNodes(); ++v) {
        EXPECT_EQ(scores->Score(u, v) > 1.0 - 1e-7, exact->Contains(u, v))
            << "seed " << seed << " (" << u << ", " << v << ")";
      }
    }
  }
}

TEST(FractionalVariants, WeakMaskMismatchRejected) {
  auto pair = MakeRandomPair(208);
  std::vector<uint8_t> bad(pair.g1.NumNodes() + 2, 0);
  std::vector<uint8_t> good(pair.g2.NumNodes(), 0);
  auto scores = ComputeFSimWeak(pair.g1, bad, pair.g2, good, FSimConfig{});
  ASSERT_FALSE(scores.ok());
  EXPECT_TRUE(scores.status().IsInvalidArgument());
}

}  // namespace
}  // namespace fsim
