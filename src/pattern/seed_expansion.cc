#include "pattern/seed_expansion.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/logging.h"

namespace fsim {

namespace {

/// Collects the data nodes adjacency-consistent with query node q given the
/// current partial mapping: for a mapped query neighbor q' with edge q -> q'
/// the candidates are in-neighbors of φ(q'), for q' -> q out-neighbors.
std::vector<NodeId> AdjacentCandidates(const Graph& query, const Graph& data,
                                       const Mapping& mapping, NodeId q,
                                       const std::vector<char>& used) {
  std::unordered_set<NodeId> cands;
  for (NodeId qn : query.OutNeighbors(q)) {
    if (mapping[qn] == kInvalidNode) continue;
    for (NodeId w : data.InNeighbors(mapping[qn])) {
      if (!used[w]) cands.insert(w);
    }
  }
  for (NodeId qn : query.InNeighbors(q)) {
    if (mapping[qn] == kInvalidNode) continue;
    for (NodeId w : data.OutNeighbors(mapping[qn])) {
      if (!used[w]) cands.insert(w);
    }
  }
  return {cands.begin(), cands.end()};
}

}  // namespace

namespace internal {

/// Expands one complete mapping from the given seed pair.
Mapping ExpandFromSeed(const Graph& query, const Graph& data,
                       const NodeSimilarityFn& similarity, NodeId seed_q,
                       NodeId seed_v);

}  // namespace internal

Mapping SeedExpansionMatch(const Graph& query, const Graph& data,
                           const NodeSimilarityFn& similarity) {
  const size_t nq = query.NumNodes();
  const size_t nd = data.NumNodes();
  if (nq == 0 || nd == 0) return Mapping(nq, kInvalidNode);

  // Seed: the globally best (q, v) pair.
  double best = -1.0;
  NodeId best_q = 0, best_v = 0;
  for (NodeId q = 0; q < nq; ++q) {
    for (NodeId v = 0; v < nd; ++v) {
      const double s = similarity(q, v);
      if (s > best) {
        best = s;
        best_q = q;
        best_v = v;
      }
    }
  }
  return internal::ExpandFromSeed(query, data, similarity, best_q, best_v);
}

namespace internal {

Mapping ExpandFromSeed(const Graph& query, const Graph& data,
                       const NodeSimilarityFn& similarity, NodeId seed_q,
                       NodeId seed_v) {
  const size_t nq = query.NumNodes();
  const size_t nd = data.NumNodes();
  Mapping mapping(nq, kInvalidNode);
  if (nq == 0 || nd == 0) return mapping;
  std::vector<char> used(nd, 0);
  mapping[seed_q] = seed_v;
  used[seed_v] = 1;

  // Grow: always extend with the best (adjacent query node, consistent data
  // candidate) pair; fall back to the global best unused candidate for query
  // nodes that end up with no consistent candidates.
  for (size_t step = 1; step < nq; ++step) {
    double step_best = -1.0;
    NodeId step_q = kInvalidNode, step_v = kInvalidNode;
    for (NodeId q = 0; q < nq; ++q) {
      if (mapping[q] != kInvalidNode) continue;
      for (NodeId v : AdjacentCandidates(query, data, mapping, q, used)) {
        const double s = similarity(q, v);
        if (s > step_best) {
          step_best = s;
          step_q = q;
          step_v = v;
        }
      }
    }
    if (step_q == kInvalidNode) {
      // No unmapped node touches the mapped region (or all candidates are
      // used): map the remaining nodes by global best positive similarity.
      for (NodeId q = 0; q < nq; ++q) {
        if (mapping[q] != kInvalidNode) continue;
        double gbest = 0.0;
        NodeId gv = kInvalidNode;
        for (NodeId v = 0; v < nd; ++v) {
          if (used[v]) continue;
          const double s = similarity(q, v);
          if (s > gbest) {
            gbest = s;
            gv = v;
          }
        }
        if (gv != kInvalidNode) {
          mapping[q] = gv;
          used[gv] = 1;
        }
      }
      break;
    }
    mapping[step_q] = step_v;
    used[step_v] = 1;
  }
  return mapping;
}

}  // namespace internal

Mapping SeedExpansionMatch(const Graph& query, const Graph& data,
                           const FSimScores& scores) {
  return SeedExpansionMatch(
      query, data,
      [&scores](NodeId q, NodeId v) { return scores.Score(q, v); });
}

Mapping SeedExpansionMatchBest(const Graph& query, const Graph& data,
                               const NodeSimilarityFn& similarity,
                               size_t num_seeds) {
  const size_t nq = query.NumNodes();
  const size_t nd = data.NumNodes();
  if (nq == 0 || nd == 0) return Mapping(nq, kInvalidNode);

  // Top seed pairs with distinct data endpoints.
  struct Seed {
    double score;
    NodeId q, v;
  };
  std::vector<Seed> seeds;
  for (NodeId q = 0; q < nq; ++q) {
    for (NodeId v = 0; v < nd; ++v) {
      const double s = similarity(q, v);
      if (s <= 0.0) continue;
      seeds.push_back({s, q, v});
    }
  }
  std::sort(seeds.begin(), seeds.end(), [](const Seed& a, const Seed& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.q != b.q) return a.q < b.q;
    return a.v < b.v;
  });

  // Consistency of a complete mapping: similarity mass plus the fraction of
  // query edges realized between the images.
  auto consistency = [&](const Mapping& mapping) {
    double sim_sum = 0.0;
    for (NodeId q = 0; q < nq; ++q) {
      if (mapping[q] != kInvalidNode) sim_sum += similarity(q, mapping[q]);
    }
    size_t edges = 0;
    size_t realized = 0;
    for (NodeId q = 0; q < nq; ++q) {
      for (NodeId qn : query.OutNeighbors(q)) {
        ++edges;
        if (mapping[q] != kInvalidNode && mapping[qn] != kInvalidNode &&
            data.HasEdge(mapping[q], mapping[qn])) {
          ++realized;
        }
      }
    }
    const double edge_frac =
        edges == 0 ? 1.0
                   : static_cast<double>(realized) / static_cast<double>(edges);
    return sim_sum / static_cast<double>(nq) + edge_frac;
  };

  Mapping best_mapping(nq, kInvalidNode);
  double best_value = -1.0;
  std::vector<char> seed_used(nd, 0);
  size_t tried = 0;
  for (const Seed& seed : seeds) {
    if (tried >= num_seeds) break;
    if (seed_used[seed.v]) continue;  // diversify the starting regions
    seed_used[seed.v] = 1;
    ++tried;
    Mapping mapping =
        internal::ExpandFromSeed(query, data, similarity, seed.q, seed.v);
    const double value = consistency(mapping);
    if (value > best_value) {
      best_value = value;
      best_mapping = std::move(mapping);
    }
  }
  return best_mapping;
}

Mapping SeedExpansionMatchBest(const Graph& query, const Graph& data,
                               const FSimScores& scores, size_t num_seeds) {
  return SeedExpansionMatchBest(
      query, data,
      [&scores](NodeId q, NodeId v) { return scores.Score(q, v); },
      num_seeds);
}

}  // namespace fsim
