// G-Ray-style best-effort pattern matching (Tong et al. [32]): seed the
// match with the data node of highest *proximity-weighted goodness* for an
// anchor query node, then grow along query edges, ranking each candidate
// extension by a random-walk-with-restart proximity to the already-matched
// region. Unlike the edit-cost searches (TSpan, G-Finder), G-Ray never
// requires an exact edge: a missing edge merely lowers proximity, which is
// what "best-effort" means in [32].
//
// Included as an additional related-work baseline for the Table 6 pattern
// study (the paper compares against NAGA / G-Finder / TSpan; G-Ray is the
// representative of the proximity family its §6 cites).
#ifndef FSIM_PATTERN_GRAY_H_
#define FSIM_PATTERN_GRAY_H_

#include <cstddef>

#include "pattern/match_types.h"

namespace fsim {

struct GRayOptions {
  /// Restart probability of the random walk with restart.
  double restart_probability = 0.15;
  /// Power-iteration steps for the proximity vectors.
  uint32_t walk_iterations = 10;
  /// Seed candidates tried for the anchor query node.
  size_t max_seed_candidates = 8;
  /// Proximity is refreshed after this many assignments (1 = after every
  /// assignment, the faithful but costly schedule).
  uint32_t proximity_refresh_every = 3;
  /// Distinct anchor query nodes tried (descending degree). More anchors
  /// cost proportionally more but survive label noise on any single anchor.
  size_t max_anchors = 3;
};

/// Best-effort match of `query` into `data`; every query node is assigned
/// (G-Ray always produces a full, possibly imperfect, mapping).
Mapping GRayMatch(const Graph& query, const Graph& data,
                  const GRayOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_PATTERN_GRAY_H_
