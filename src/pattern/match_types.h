// Common types for the pattern-matching case study (Table 6): a match is a
// per-query-node assignment to data nodes, evaluated against the extraction
// ground truth with the paper's F1 (P = |φt|/|φ|, R = |φt|/|Q|).
#ifndef FSIM_PATTERN_MATCH_TYPES_H_
#define FSIM_PATTERN_MATCH_TYPES_H_

#include <vector>

#include "exact/strong_simulation.h"
#include "graph/graph.h"

namespace fsim {

/// mapping[q] = matched data node, or kInvalidNode when q stayed unmatched.
using Mapping = std::vector<NodeId>;

struct MatchEval {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Evaluates a functional mapping: φt = {q : mapping[q] == truth[q]},
/// |φ| = number of mapped query nodes.
MatchEval EvaluateMapping(const Mapping& mapping,
                          const std::vector<NodeId>& ground_truth);

/// Evaluates a strong-simulation (set-valued) match: recall counts query
/// nodes whose truth image appears among their matches; precision is the
/// fraction of matched data nodes that are truth images.
MatchEval EvaluateSetMatch(const StrongSimMatch& match,
                           const std::vector<NodeId>& ground_truth);

}  // namespace fsim

#endif  // FSIM_PATTERN_MATCH_TYPES_H_
