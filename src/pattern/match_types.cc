#include "pattern/match_types.h"

#include <algorithm>

#include "common/logging.h"
#include "eval/metrics.h"

namespace fsim {

MatchEval EvaluateMapping(const Mapping& mapping,
                          const std::vector<NodeId>& ground_truth) {
  FSIM_CHECK(mapping.size() == ground_truth.size());
  MatchEval eval;
  if (mapping.empty()) return eval;
  size_t mapped = 0;
  size_t correct = 0;
  for (size_t q = 0; q < mapping.size(); ++q) {
    if (mapping[q] == kInvalidNode) continue;
    ++mapped;
    if (mapping[q] == ground_truth[q]) ++correct;
  }
  eval.precision = mapped == 0 ? 0.0
                               : static_cast<double>(correct) /
                                     static_cast<double>(mapped);
  eval.recall =
      static_cast<double>(correct) / static_cast<double>(mapping.size());
  eval.f1 = F1Score(eval.precision, eval.recall);
  return eval;
}

MatchEval EvaluateSetMatch(const StrongSimMatch& match,
                           const std::vector<NodeId>& ground_truth) {
  MatchEval eval;
  if (ground_truth.empty()) return eval;
  FSIM_CHECK(match.query_matches.size() == ground_truth.size());
  size_t recalled = 0;
  for (size_t q = 0; q < ground_truth.size(); ++q) {
    const auto& cands = match.query_matches[q];
    if (std::find(cands.begin(), cands.end(), ground_truth[q]) !=
        cands.end()) {
      ++recalled;
    }
  }
  std::vector<NodeId> truth_sorted(ground_truth);
  std::sort(truth_sorted.begin(), truth_sorted.end());
  size_t correct_nodes = 0;
  for (NodeId v : match.matched_nodes) {
    if (std::binary_search(truth_sorted.begin(), truth_sorted.end(), v)) {
      ++correct_nodes;
    }
  }
  eval.precision = match.matched_nodes.empty()
                       ? 0.0
                       : static_cast<double>(correct_nodes) /
                             static_cast<double>(match.matched_nodes.size());
  eval.recall = static_cast<double>(recalled) /
                static_cast<double>(ground_truth.size());
  eval.f1 = F1Score(eval.precision, eval.recall);
  return eval;
}

}  // namespace fsim
