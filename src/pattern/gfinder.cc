#include "pattern/gfinder.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace fsim {

namespace {

/// BFS order of the query from `root` (undirected), so every node after the
/// first touches the already-mapped region.
std::vector<NodeId> QueryBfsOrder(const Graph& query, NodeId root) {
  std::vector<NodeId> order;
  std::vector<char> seen(query.NumNodes(), 0);
  std::queue<NodeId> bfs;
  bfs.push(root);
  seen[root] = 1;
  while (!bfs.empty()) {
    NodeId q = bfs.front();
    bfs.pop();
    order.push_back(q);
    auto visit = [&](NodeId w) {
      if (!seen[w]) {
        seen[w] = 1;
        bfs.push(w);
      }
    };
    for (NodeId w : query.OutNeighbors(q)) visit(w);
    for (NodeId w : query.InNeighbors(q)) visit(w);
  }
  // Disconnected query parts are appended (they will rely on the global
  // candidate fallback).
  for (NodeId q = 0; q < query.NumNodes(); ++q) {
    if (!seen[q]) order.push_back(q);
  }
  return order;
}

}  // namespace

Mapping GFinderMatch(const Graph& query, const Graph& data,
                     const GFinderOptions& opts) {
  const size_t nq = query.NumNodes();
  if (nq == 0 || data.NumNodes() == 0) return {};

  // Root = query node with the fewest same-label data candidates (the
  // "least ambiguous" anchor).
  std::vector<std::vector<NodeId>> label_groups(data.dict()->size());
  for (NodeId v = 0; v < data.NumNodes(); ++v) {
    label_groups[data.Label(v)].push_back(v);
  }
  NodeId root = 0;
  size_t best_count = ~size_t{0};
  for (NodeId q = 0; q < nq; ++q) {
    const LabelId l = query.Label(q);
    const size_t count =
        l < label_groups.size() ? label_groups[l].size() : size_t{0};
    const size_t effective = count == 0 ? data.NumNodes() : count;
    if (effective < best_count) {
      best_count = effective;
      root = q;
    }
  }
  const std::vector<NodeId> order = QueryBfsOrder(query, root);

  const LabelId root_label = query.Label(root);
  std::vector<NodeId> roots;
  if (root_label < label_groups.size() && !label_groups[root_label].empty()) {
    roots = label_groups[root_label];
  } else {
    // Label noise may have produced a label absent from the data: fall back
    // to arbitrary roots (pure-cost matching).
    for (NodeId v = 0; v < std::min<size_t>(data.NumNodes(),
                                            opts.max_root_candidates);
         ++v) {
      roots.push_back(v);
    }
  }
  if (roots.size() > opts.max_root_candidates) {
    roots.resize(opts.max_root_candidates);
  }

  Mapping best_mapping;
  double best_cost = std::numeric_limits<double>::infinity();
  for (NodeId root_v : roots) {
    Mapping mapping(nq, kInvalidNode);
    std::vector<char> used(data.NumNodes(), 0);
    double cost = query.Label(root) == data.Label(root_v)
                      ? 0.0
                      : opts.label_mismatch_cost;
    mapping[root] = root_v;
    used[root_v] = 1;

    for (size_t i = 1; i < order.size(); ++i) {
      const NodeId q = order[i];
      // Candidates: data nodes adjacent (direction-consistent) to some
      // mapped neighbor's image.
      double cand_best = std::numeric_limits<double>::infinity();
      NodeId cand_v = kInvalidNode;
      auto consider = [&](NodeId v) {
        if (used[v]) return;
        double c = query.Label(q) == data.Label(v) ? 0.0
                                                   : opts.label_mismatch_cost;
        for (NodeId qn : query.OutNeighbors(q)) {
          if (mapping[qn] == kInvalidNode) continue;
          if (!data.HasEdge(v, mapping[qn])) c += opts.missing_edge_cost;
        }
        for (NodeId qn : query.InNeighbors(q)) {
          if (mapping[qn] == kInvalidNode) continue;
          if (!data.HasEdge(mapping[qn], v)) c += opts.missing_edge_cost;
        }
        if (c < cand_best || (c == cand_best && v < cand_v)) {
          cand_best = c;
          cand_v = v;
        }
      };
      for (NodeId qn : query.OutNeighbors(q)) {
        if (mapping[qn] == kInvalidNode) continue;
        for (NodeId w : data.InNeighbors(mapping[qn])) consider(w);
      }
      for (NodeId qn : query.InNeighbors(q)) {
        if (mapping[qn] == kInvalidNode) continue;
        for (NodeId w : data.OutNeighbors(mapping[qn])) consider(w);
      }
      if (cand_v == kInvalidNode) {
        // Region cannot grow here: charge all adjacent query edges as
        // missing and leave q unmatched.
        cost += opts.missing_edge_cost *
                static_cast<double>(query.OutDegree(q) + query.InDegree(q));
        continue;
      }
      mapping[q] = cand_v;
      used[cand_v] = 1;
      cost += cand_best;
      if (cost >= best_cost) break;  // cannot improve
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_mapping = std::move(mapping);
    }
    if (best_cost == 0.0) break;  // exact region found; cannot improve
  }
  if (best_mapping.empty()) best_mapping.assign(nq, kInvalidNode);
  return best_mapping;
}

}  // namespace fsim
