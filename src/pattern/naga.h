// NAGA-style neighbor-aware matching [35]: node similarity from the
// chi-square statistic between the query node's and the data node's neighbor
// label distributions (same node label required), plugged into the common
// seed-expansion match generator.
#ifndef FSIM_PATTERN_NAGA_H_
#define FSIM_PATTERN_NAGA_H_

#include "pattern/match_types.h"

namespace fsim {

/// 1 / (1 + χ²) over the union of neighbor labels (undirected, +1-smoothed
/// expectation from the query side); 0 when the node labels differ.
double ChiSquareNodeSimilarity(const Graph& query, NodeId q, const Graph& data,
                               NodeId v);

/// Seed-expansion matching with the chi-square similarity.
Mapping NagaMatch(const Graph& query, const Graph& data);

}  // namespace fsim

#endif  // FSIM_PATTERN_NAGA_H_
