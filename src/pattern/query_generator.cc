#include "pattern/query_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "graph/graph_builder.h"
#include "graph/subgraph.h"

namespace fsim {

PatternQuery ExtractQuery(const Graph& data, uint32_t size, Rng* rng) {
  FSIM_CHECK(data.NumNodes() > 0 && size >= 1);
  // Start from a node with at least one (undirected) neighbor so the walk
  // can grow.
  NodeId start = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    start = static_cast<NodeId>(rng->NextBounded(data.NumNodes()));
    if (data.OutDegree(start) + data.InDegree(start) > 0 || size == 1) break;
  }

  std::vector<NodeId> chosen;
  std::unordered_set<NodeId> in_query;
  std::vector<NodeId> frontier;
  auto add_node = [&](NodeId v) {
    chosen.push_back(v);
    in_query.insert(v);
    for (NodeId w : data.OutNeighbors(v)) {
      if (!in_query.count(w)) frontier.push_back(w);
    }
    for (NodeId w : data.InNeighbors(v)) {
      if (!in_query.count(w)) frontier.push_back(w);
    }
  };
  add_node(start);
  while (chosen.size() < size && !frontier.empty()) {
    const size_t pick = rng->NextBounded(frontier.size());
    const NodeId v = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    if (in_query.count(v)) continue;
    add_node(v);
  }

  Subgraph sub = InducedSubgraph(data, chosen);
  PatternQuery out;
  out.query = std::move(sub.graph);
  out.ground_truth = std::move(sub.to_parent);
  return out;
}

PatternQuery AddStructuralNoise(const PatternQuery& q, double fraction,
                                Rng* rng) {
  FSIM_CHECK(fraction >= 0.0);
  const Graph& g = q.query;
  const size_t n = g.NumNodes();
  PatternQuery out;
  out.ground_truth = q.ground_truth;
  if (n < 2) {
    out.query = g;
    return out;
  }
  const size_t to_add = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(g.NumEdges())));

  GraphBuilder builder(g.dict());
  for (NodeId u = 0; u < n; ++u) builder.AddNodeWithLabelId(g.Label(u));
  std::unordered_set<uint64_t> present;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      builder.AddEdge(u, v);
      present.insert(PairKey(u, v));
    }
  }
  size_t added = 0;
  size_t attempts = 0;
  while (added < to_add && attempts < 64 * (to_add + 1)) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (present.insert(PairKey(u, v)).second) {
      builder.AddEdge(u, v);
      ++added;
    }
  }
  out.query = std::move(builder).BuildOrDie();
  return out;
}

PatternQuery AddLabelNoise(const PatternQuery& q, double fraction, Rng* rng) {
  FSIM_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const Graph& g = q.query;
  const size_t n = g.NumNodes();
  const size_t to_change = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(n)));
  std::vector<NodeId> order(n);
  for (NodeId u = 0; u < n; ++u) order[u] = u;
  rng->Shuffle(&order);

  const size_t dict_size = g.dict()->size();
  GraphBuilder builder(g.dict());
  std::vector<LabelId> labels(n);
  for (NodeId u = 0; u < n; ++u) labels[u] = g.Label(u);
  for (size_t i = 0; i < std::min(to_change, n); ++i) {
    NodeId u = order[i];
    if (dict_size <= 1) break;
    LabelId replacement = labels[u];
    while (replacement == labels[u]) {
      replacement = static_cast<LabelId>(rng->NextBounded(dict_size));
    }
    labels[u] = replacement;
  }
  for (NodeId u = 0; u < n; ++u) builder.AddNodeWithLabelId(labels[u]);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) builder.AddEdge(u, v);
  }
  PatternQuery out;
  out.query = std::move(builder).BuildOrDie();
  out.ground_truth = q.ground_truth;
  return out;
}

}  // namespace fsim
