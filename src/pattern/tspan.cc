#include "pattern/tspan.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace fsim {

namespace {

/// Neighborhood-label agreement Σ_l min(count_q(l), count_v(l)) over the
/// undirected neighbor labels — a cheap ranking that puts data nodes whose
/// surroundings resemble the query node's first in the exploration order.
uint32_t NeighborhoodCoverage(const Graph& query, NodeId q, const Graph& data,
                              NodeId v) {
  std::unordered_map<LabelId, uint32_t> want;
  for (NodeId w : query.OutNeighbors(q)) ++want[query.Label(w)];
  for (NodeId w : query.InNeighbors(q)) ++want[query.Label(w)];
  std::unordered_map<LabelId, uint32_t> have;
  for (NodeId w : data.OutNeighbors(v)) ++have[data.Label(w)];
  for (NodeId w : data.InNeighbors(v)) ++have[data.Label(w)];
  uint32_t covered = 0;
  for (const auto& [label, count] : want) {
    auto it = have.find(label);
    if (it != have.end()) covered += std::min(count, it->second);
  }
  return covered;
}

struct SearchState {
  const Graph* query;
  const Graph* data;
  const TSpanOptions* opts;
  std::vector<NodeId> order;            // query nodes in matching order
  std::vector<std::vector<NodeId>> label_groups;  // data nodes per label
  Mapping mapping;
  std::vector<char> used;
  size_t steps = 0;
  size_t max_matches = 1;
  std::vector<Mapping> results;
};

/// Number of query edges between q and already-mapped nodes that are absent
/// between v and their images.
uint32_t MissingEdges(const SearchState& st, NodeId q, NodeId v) {
  uint32_t missing = 0;
  for (NodeId qn : st.query->OutNeighbors(q)) {
    if (st.mapping[qn] == kInvalidNode) continue;
    if (!st.data->HasEdge(v, st.mapping[qn])) ++missing;
  }
  for (NodeId qn : st.query->InNeighbors(q)) {
    if (st.mapping[qn] == kInvalidNode) continue;
    if (!st.data->HasEdge(st.mapping[qn], v)) ++missing;
  }
  return missing;
}

/// Returns true when the search must abort (budget exhausted or enough
/// matches collected); completed embeddings are appended to st.results.
bool Backtrack(SearchState& st, size_t depth, uint32_t missing_budget) {
  if (depth == st.order.size()) {
    st.results.push_back(st.mapping);
    return st.results.size() >= st.max_matches;
  }
  if (st.steps >= st.opts->step_budget) return true;
  const NodeId q = st.order[depth];
  const LabelId label = st.query->Label(q);
  if (label >= st.label_groups.size()) return false;
  // Explore candidates in ascending miss-count order (zero-miss placements
  // first), breaking ties by descending neighborhood-label coverage: this
  // steers the search toward the tightest embeddings and prunes wrong
  // regions early.
  struct Candidate {
    uint32_t missing;
    int32_t neg_coverage;
    NodeId v;
    bool operator<(const Candidate& other) const {
      if (missing != other.missing) return missing < other.missing;
      if (neg_coverage != other.neg_coverage) {
        return neg_coverage < other.neg_coverage;
      }
      return v < other.v;
    }
  };
  std::vector<Candidate> candidates;
  for (NodeId v : st.label_groups[label]) {
    if (st.used[v]) continue;
    ++st.steps;
    if (st.steps >= st.opts->step_budget) return true;
    const uint32_t missing = MissingEdges(st, q, v);
    if (missing <= missing_budget) {
      candidates.push_back(
          {missing,
           -static_cast<int32_t>(NeighborhoodCoverage(*st.query, q, *st.data, v)),
           v});
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [missing, neg_coverage, v] : candidates) {
    st.mapping[q] = v;
    st.used[v] = 1;
    const bool abort = Backtrack(st, depth + 1, missing_budget - missing);
    st.mapping[q] = kInvalidNode;
    st.used[v] = 0;
    if (abort) return true;
  }
  return false;
}

}  // namespace

std::vector<Mapping> TSpanMatchAll(const Graph& query, const Graph& data,
                                   const TSpanOptions& opts,
                                   size_t max_matches) {
  const size_t nq = query.NumNodes();
  if (nq == 0 || max_matches == 0) return {};

  SearchState st;
  st.query = &query;
  st.data = &data;
  st.opts = &opts;
  st.mapping.assign(nq, kInvalidNode);
  st.used.assign(data.NumNodes(), 0);

  st.label_groups.assign(data.dict()->size(), {});
  for (NodeId v = 0; v < data.NumNodes(); ++v) {
    st.label_groups[data.Label(v)].push_back(v);
  }

  // Match order: rarest-label query node first, then by descending
  // connectivity to already-ordered nodes (classic candidate-size ordering).
  std::vector<NodeId> remaining(nq);
  for (NodeId q = 0; q < nq; ++q) remaining[q] = q;
  auto candidate_count = [&](NodeId q) -> size_t {
    const LabelId l = query.Label(q);
    return l < st.label_groups.size() ? st.label_groups[l].size()
                                      : size_t{0};
  };
  std::vector<char> ordered(nq, 0);
  while (!remaining.empty()) {
    size_t best_idx = 0;
    long best_links = -1;
    size_t best_cands = ~size_t{0};
    for (size_t i = 0; i < remaining.size(); ++i) {
      const NodeId q = remaining[i];
      long links = 0;
      for (NodeId qn : query.OutNeighbors(q)) links += ordered[qn];
      for (NodeId qn : query.InNeighbors(q)) links += ordered[qn];
      const size_t cands = candidate_count(q);
      // Prefer nodes connected to the ordered prefix, then rare labels.
      if (links > best_links ||
          (links == best_links && cands < best_cands)) {
        best_links = links;
        best_cands = cands;
        best_idx = i;
      }
    }
    const NodeId q = remaining[best_idx];
    st.order.push_back(q);
    ordered[q] = 1;
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best_idx));
  }

  // Iterative deepening over the miss budget: the first budget at which any
  // embedding exists is the minimal miss level; enumerate matches there.
  st.max_matches = max_matches;
  for (uint32_t budget = 0; budget <= opts.max_missing_edges; ++budget) {
    st.steps = 0;
    st.results.clear();
    std::fill(st.mapping.begin(), st.mapping.end(), kInvalidNode);
    std::fill(st.used.begin(), st.used.end(), 0);
    Backtrack(st, 0, budget);
    if (!st.results.empty()) return std::move(st.results);
  }
  return {};
}

Mapping TSpanMatch(const Graph& query, const Graph& data,
                   const TSpanOptions& opts) {
  auto matches = TSpanMatchAll(query, data, opts, 1);
  return matches.empty() ? Mapping{} : std::move(matches.front());
}

}  // namespace fsim
