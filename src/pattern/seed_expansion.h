// Match generation by seed expansion (§5.4 "we followed the state-of-the-art
// algorithm NAGA for match generation"): node pairs with high similarity are
// seeds, and the match grows by repeatedly assigning the unmapped query node
// adjacent to the mapped region whose best adjacency-consistent data
// candidate has the highest similarity. Works with any pairwise similarity:
// FSimχ scores (the FSims/FSimdp rows of Table 6) or a callback (NAGA's
// chi-square similarity).
#ifndef FSIM_PATTERN_SEED_EXPANSION_H_
#define FSIM_PATTERN_SEED_EXPANSION_H_

#include <functional>

#include "core/fsim_scores.h"
#include "pattern/match_types.h"

namespace fsim {

/// Pairwise similarity of (query node, data node) in [0, 1].
using NodeSimilarityFn = std::function<double(NodeId, NodeId)>;

/// Expands a match from the highest-similarity seed. Candidates for an
/// unmapped query node are data nodes consistent with at least one mapped
/// query neighbor (edge direction respected); when a node has no such
/// candidate, the globally best unused data node with positive similarity is
/// used as fallback, and the node stays unmatched when none exists.
Mapping SeedExpansionMatch(const Graph& query, const Graph& data,
                           const NodeSimilarityFn& similarity);

/// Convenience overload reading similarities from a ComputeFSim result
/// (scores from a ComputeFSim(query, data, ...) run).
Mapping SeedExpansionMatch(const Graph& query, const Graph& data,
                           const FSimScores& scores);

/// Multi-seed variant (how NAGA generates matches): expands one match from
/// each of the `num_seeds` best seed pairs (distinct data seeds) and keeps
/// the mapping with the highest internal consistency — the sum of pair
/// similarities plus the fraction of query edges realized between the
/// images. No ground truth is consulted.
Mapping SeedExpansionMatchBest(const Graph& query, const Graph& data,
                               const NodeSimilarityFn& similarity,
                               size_t num_seeds = 5);

Mapping SeedExpansionMatchBest(const Graph& query, const Graph& data,
                               const FSimScores& scores,
                               size_t num_seeds = 5);

}  // namespace fsim

#endif  // FSIM_PATTERN_SEED_EXPANSION_H_
