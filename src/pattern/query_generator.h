// Query workload generation for Table 6: random connected induced subgraphs
// extracted from the data graph (which makes the extraction mapping the
// ground truth), optionally distorted with structural noise (random inserted
// edges, up to 33%) and/or label noise (randomly modified node labels, up to
// 33%) — the paper's Exact / Noisy-E / Noisy-L / Combined scenarios.
#ifndef FSIM_PATTERN_QUERY_GENERATOR_H_
#define FSIM_PATTERN_QUERY_GENERATOR_H_

#include "common/random.h"
#include "graph/graph.h"

namespace fsim {

/// A generated query with its ground-truth embedding into the data graph.
struct PatternQuery {
  Graph query;
  /// ground_truth[q] = the data node that query node q was extracted from.
  std::vector<NodeId> ground_truth;
};

/// Extracts a random connected induced subgraph with `size` nodes (grown by
/// a randomized undirected frontier expansion). May return fewer nodes if
/// the containing component is smaller.
PatternQuery ExtractQuery(const Graph& data, uint32_t size, Rng* rng);

/// Inserts ceil(fraction * |E(query)|) random new edges into the query
/// (Noisy-E). The ground truth is unchanged.
PatternQuery AddStructuralNoise(const PatternQuery& q, double fraction,
                                Rng* rng);

/// Randomly modifies the labels of ceil(fraction * |V(query)|) query nodes
/// to a different label from the data graph's dictionary (Noisy-L).
PatternQuery AddLabelNoise(const PatternQuery& q, double fraction, Rng* rng);

}  // namespace fsim

#endif  // FSIM_PATTERN_QUERY_GENERATOR_H_
