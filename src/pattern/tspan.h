// TSpan-style edit-distance pattern matching [31]: enumerate embeddings of
// the query whose node labels match exactly and whose mapped edges may miss
// at most `max_missing_edges` query edges in the data graph. Mirrors TSpan's
// characteristic behaviour in Table 6: strong on structural noise up to its
// threshold, no results under label noise (labels must match exactly).
#ifndef FSIM_PATTERN_TSPAN_H_
#define FSIM_PATTERN_TSPAN_H_

#include <cstddef>
#include <cstdint>

#include "pattern/match_types.h"

namespace fsim {

struct TSpanOptions {
  /// The x of "TSpan-x": maximum query edges allowed to be absent between
  /// the mapped data nodes.
  uint32_t max_missing_edges = 1;
  /// Backtracking step budget (the published system relies on offline
  /// indexes; the budget keeps the index-free search bounded).
  size_t step_budget = 20000000;
};

/// First embedding found within the miss budget, or an empty mapping when
/// none exists (or the budget is exhausted).
Mapping TSpanMatch(const Graph& query, const Graph& data,
                   const TSpanOptions& opts);

/// Enumerates up to `max_matches` embeddings at the *smallest* feasible miss
/// level (iterative deepening: the first budget admitting any embedding).
/// This is TSpan's published "enumerate all matches with mismatched edges up
/// to the threshold" semantics, bounded for index-free evaluation.
std::vector<Mapping> TSpanMatchAll(const Graph& query, const Graph& data,
                                   const TSpanOptions& opts,
                                   size_t max_matches = 20);

}  // namespace fsim

#endif  // FSIM_PATTERN_TSPAN_H_
