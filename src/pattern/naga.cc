#include "pattern/naga.h"

#include <unordered_map>

#include "pattern/seed_expansion.h"

namespace fsim {

namespace {

std::unordered_map<LabelId, uint32_t> NeighborLabelCounts(const Graph& g,
                                                          NodeId u) {
  std::unordered_map<LabelId, uint32_t> counts;
  for (NodeId w : g.OutNeighbors(u)) ++counts[g.Label(w)];
  for (NodeId w : g.InNeighbors(u)) ++counts[g.Label(w)];
  return counts;
}

}  // namespace

double ChiSquareNodeSimilarity(const Graph& query, NodeId q, const Graph& data,
                               NodeId v) {
  if (query.Label(q) != data.Label(v)) return 0.0;
  auto expected = NeighborLabelCounts(query, q);
  auto observed = NeighborLabelCounts(data, v);
  double chi2 = 0.0;
  // Union of labels; expectation from the query side with +1 smoothing so
  // unseen labels penalize rather than divide by zero.
  for (const auto& [label, e] : expected) {
    auto it = observed.find(label);
    const double o = it == observed.end() ? 0.0 : it->second;
    const double diff = o - static_cast<double>(e);
    chi2 += diff * diff / (static_cast<double>(e) + 1.0);
  }
  for (const auto& [label, o] : observed) {
    if (expected.find(label) == expected.end()) {
      chi2 += static_cast<double>(o) * static_cast<double>(o) / 1.0;
    }
  }
  return 1.0 / (1.0 + chi2);
}

Mapping NagaMatch(const Graph& query, const Graph& data) {
  return SeedExpansionMatch(query, data, [&](NodeId q, NodeId v) {
    return ChiSquareNodeSimilarity(query, q, data, v);
  });
}

}  // namespace fsim
