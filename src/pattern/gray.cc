#include "pattern/gray.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace fsim {

namespace {

/// Random walk with restart over the undirected view of `data`, restarting
/// uniformly over `restart_set`. Returns the stationary approximation after
/// opts.walk_iterations power steps.
std::vector<double> Proximity(const Graph& data,
                              const std::vector<NodeId>& restart_set,
                              const GRayOptions& opts) {
  const size_t n = data.NumNodes();
  std::vector<double> p(n, 0.0);
  std::vector<double> next(n, 0.0);
  if (restart_set.empty()) return p;
  const double restart_mass =
      1.0 / static_cast<double>(restart_set.size());
  for (NodeId r : restart_set) p[r] += restart_mass;

  // Undirected degree for row normalization.
  std::vector<double> inv_degree(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    const size_t d = data.OutDegree(u) + data.InDegree(u);
    if (d > 0) inv_degree[u] = 1.0 / static_cast<double>(d);
  }

  const double c = opts.restart_probability;
  for (uint32_t iter = 0; iter < opts.walk_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      if (p[u] == 0.0) continue;
      const double share = (1.0 - c) * p[u] * inv_degree[u];
      if (share == 0.0) continue;
      for (NodeId w : data.OutNeighbors(u)) next[w] += share;
      for (NodeId w : data.InNeighbors(u)) next[w] += share;
    }
    for (NodeId r : restart_set) next[r] += c * restart_mass;
    // Walkers stranded on isolated nodes restart too (mass conservation).
    p.swap(next);
  }
  return p;
}

/// Query traversal order: BFS from the anchor over the undirected query,
/// unreachable nodes appended by id. Matching connected-first keeps the
/// proximity signal meaningful.
std::vector<NodeId> ExpansionOrder(const Graph& query, NodeId anchor) {
  const size_t n = query.NumNodes();
  std::vector<NodeId> order;
  std::vector<uint8_t> visited(n, 0);
  order.push_back(anchor);
  visited[anchor] = 1;
  for (size_t head = 0; head < order.size(); ++head) {
    const NodeId q = order[head];
    auto visit = [&](NodeId w) {
      if (!visited[w]) {
        visited[w] = 1;
        order.push_back(w);
      }
    };
    for (NodeId w : query.OutNeighbors(q)) visit(w);
    for (NodeId w : query.InNeighbors(q)) visit(w);
  }
  for (NodeId q = 0; q < n; ++q) {
    if (!visited[q]) order.push_back(q);
  }
  return order;
}

/// Structural bonus: the fraction of q's already-matched query neighbors
/// whose images are adjacent to candidate c in the right direction.
double EdgeBonus(const Graph& query, const Graph& data, const Mapping& mapping,
                 NodeId q, NodeId c) {
  size_t satisfied = 0;
  size_t total = 0;
  for (NodeId w : query.OutNeighbors(q)) {
    if (mapping[w] == kInvalidNode) continue;
    ++total;
    if (data.HasEdge(c, mapping[w])) ++satisfied;
  }
  for (NodeId w : query.InNeighbors(q)) {
    if (mapping[w] == kInvalidNode) continue;
    ++total;
    if (data.HasEdge(mapping[w], c)) ++satisfied;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(satisfied) / static_cast<double>(total);
}

struct GrowResult {
  Mapping mapping;
  double goodness = 0.0;
};

GrowResult GrowFrom(const Graph& query, const Graph& data, NodeId anchor,
                    NodeId seed, const std::vector<NodeId>& order,
                    const GRayOptions& opts) {
  GrowResult result;
  result.mapping.assign(query.NumNodes(), kInvalidNode);
  result.mapping[anchor] = seed;

  std::vector<NodeId> matched_data = {seed};
  std::vector<uint8_t> used(data.NumNodes(), 0);
  used[seed] = 1;

  const uint32_t refresh =
      std::max<uint32_t>(1, opts.proximity_refresh_every);
  std::vector<double> proximity;
  for (size_t i = 1; i < order.size(); ++i) {
    const NodeId q = order[i];
    // Proximity to the matched region, refreshed as the region grows.
    if ((i - 1) % refresh == 0) {
      proximity = Proximity(data, matched_data, opts);
    }

    double best_score = -1.0;
    NodeId best = kInvalidNode;
    for (NodeId c = 0; c < data.NumNodes(); ++c) {
      if (used[c]) continue;  // injective best-effort match
      if (data.Label(c) != query.Label(q)) continue;
      const double score = proximity[c] + EdgeBonus(query, data,
                                                    result.mapping, q, c);
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    if (best == kInvalidNode) {
      // No same-label candidate left: fall back to the best unlabeled one
      // (G-Ray prefers returning an imperfect match over none).
      for (NodeId c = 0; c < data.NumNodes(); ++c) {
        if (used[c]) continue;
        const double score = proximity[c] + EdgeBonus(query, data,
                                                      result.mapping, q, c);
        if (score > best_score) {
          best_score = score;
          best = c;
        }
      }
    }
    if (best == kInvalidNode) break;  // data exhausted
    result.mapping[q] = best;
    result.goodness += best_score;
    used[best] = 1;
    matched_data.push_back(best);
  }
  return result;
}

}  // namespace

Mapping GRayMatch(const Graph& query, const Graph& data,
                  const GRayOptions& opts) {
  Mapping empty(query.NumNodes(), kInvalidNode);
  if (query.NumNodes() == 0 || data.NumNodes() == 0) return empty;

  // Anchor candidates: the most constrained (highest-degree) query nodes.
  // Trying several keeps the match alive when one anchor's label was hit by
  // noise (its same-label seeds would all sit in the wrong region).
  std::vector<NodeId> anchors(query.NumNodes());
  for (NodeId q = 0; q < query.NumNodes(); ++q) anchors[q] = q;
  std::sort(anchors.begin(), anchors.end(), [&](NodeId a, NodeId b) {
    const size_t da = query.OutDegree(a) + query.InDegree(a);
    const size_t db = query.OutDegree(b) + query.InDegree(b);
    if (da != db) return da > db;
    return a < b;
  });
  if (anchors.size() > std::max<size_t>(1, opts.max_anchors)) {
    anchors.resize(std::max<size_t>(1, opts.max_anchors));
  }

  GrowResult best;
  best.mapping = empty;
  best.goodness = -1.0;
  for (NodeId anchor : anchors) {
    const std::vector<NodeId> order = ExpansionOrder(query, anchor);

    // Seed candidates: same-label data nodes, highest degree first
    // (fallback: any node when the label is missing from the data).
    std::vector<NodeId> seeds;
    for (NodeId c = 0; c < data.NumNodes(); ++c) {
      if (data.Label(c) == query.Label(anchor)) seeds.push_back(c);
    }
    if (seeds.empty()) {
      for (NodeId c = 0; c < data.NumNodes(); ++c) seeds.push_back(c);
    }
    std::sort(seeds.begin(), seeds.end(), [&](NodeId a, NodeId b) {
      const size_t da = data.OutDegree(a) + data.InDegree(a);
      const size_t db = data.OutDegree(b) + data.InDegree(b);
      if (da != db) return da > db;
      return a < b;
    });
    if (seeds.size() > opts.max_seed_candidates) {
      seeds.resize(opts.max_seed_candidates);
    }

    for (NodeId seed : seeds) {
      GrowResult grown = GrowFrom(query, data, anchor, seed, order, opts);
      if (grown.goodness > best.goodness) best = std::move(grown);
    }
  }
  return best.mapping;
}

}  // namespace fsim
