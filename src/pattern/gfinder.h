// G-Finder-style approximate attributed matching [36]: candidate roots are
// filtered by label, and the match grows greedily from each root minimizing
// an edit cost that charges label mismatches and missing edges — which is
// what lets it return (degraded) results under label noise where exact-label
// methods return nothing.
#ifndef FSIM_PATTERN_GFINDER_H_
#define FSIM_PATTERN_GFINDER_H_

#include <cstddef>

#include "pattern/match_types.h"

namespace fsim {

struct GFinderOptions {
  /// Root candidates tried per query (best-cost result kept; the search
  /// stops early when a zero-cost — exact — region is found).
  size_t max_root_candidates = 150;
  double label_mismatch_cost = 1.0;
  double missing_edge_cost = 1.0;
};

Mapping GFinderMatch(const Graph& query, const Graph& data,
                     const GFinderOptions& opts = {});

}  // namespace fsim

#endif  // FSIM_PATTERN_GFINDER_H_
