// Hashing helpers shared by the pair stores, bisimulation signatures and
// q-gram profiles.
#ifndef FSIM_COMMON_HASH_H_
#define FSIM_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace fsim {

/// Packs a node pair (u from G1, v from G2) into one 64-bit key. Node ids are
/// dense 32-bit values, so the packing is collision-free.
inline constexpr uint64_t PairKey(uint32_t u, uint32_t v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

inline constexpr uint32_t PairFirst(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}

inline constexpr uint32_t PairSecond(uint64_t key) {
  return static_cast<uint32_t>(key & 0xFFFFFFFFULL);
}

/// 64-bit finalizer (Murmur3 fmix64): turns sequential keys into well-spread
/// hash values for open addressing.
inline constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Order-dependent combination of two hash values (Boost-style).
inline constexpr uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (Mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

/// FNV-1a over bytes; used for label strings and signature streams.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xCBF29CE484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace fsim

#endif  // FSIM_COMMON_HASH_H_
