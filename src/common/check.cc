#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#if defined(__GLIBC__) || __has_include(<execinfo.h>)
#include <execinfo.h>
#define FSIM_HAVE_BACKTRACE 1
#endif

namespace fsim {
namespace internal {

std::string CurrentStackTrace() {
#ifdef FSIM_HAVE_BACKTRACE
  void* frames[64];
  const int depth = backtrace(frames, 64);
  char** symbols = backtrace_symbols(frames, depth);
  if (symbols == nullptr) return "";
  std::string out;
  // Frame 0 is CurrentStackTrace itself, 1 the CheckMessage destructor;
  // start at the first frame the failing code owns.
  for (int i = 2; i < depth; ++i) {
    out += "    #";
    out += std::to_string(i - 2);
    out += " ";
    out += symbols[i];
    out += "\n";
  }
  std::free(symbols);
  return out;
#else
  return "";
#endif
}

CheckMessage::CheckMessage(const char* file, int line, const char* condition) {
  stream_ << "FSIM_CHECK failed: " << condition << " at " << file << ":"
          << line << " ";
}

CheckMessage::~CheckMessage() {
  std::string message = stream_.str();
  message += "\n";
  const std::string stack = CurrentStackTrace();
  if (!stack.empty()) {
    message += "  stack:\n";
    message += stack;
  }
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

namespace {

// guards: the validator-counter map below (Bump/Count/Snapshot callers).
std::mutex& CounterMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, uint64_t>& CounterMap() {
  static std::map<std::string, uint64_t> counts;
  return counts;
}

}  // namespace

void ValidatorCounters::Bump(const char* name) {
  std::lock_guard<std::mutex> lock(CounterMutex());
  ++CounterMap()[name];
}

uint64_t ValidatorCounters::Count(const char* name) {
  std::lock_guard<std::mutex> lock(CounterMutex());
  const auto& counts = CounterMap();
  auto it = counts.find(name);
  return it == counts.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> ValidatorCounters::Snapshot() {
  std::lock_guard<std::mutex> lock(CounterMutex());
  const auto& counts = CounterMap();
  return {counts.begin(), counts.end()};
}

}  // namespace fsim
