#include "common/check.h"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"

#if defined(__GLIBC__) || __has_include(<execinfo.h>)
#include <execinfo.h>
#define FSIM_HAVE_BACKTRACE 1
#endif

namespace fsim {
namespace internal {

std::string CurrentStackTrace() {
#ifdef FSIM_HAVE_BACKTRACE
  void* frames[64];
  const int depth = backtrace(frames, 64);
  char** symbols = backtrace_symbols(frames, depth);
  if (symbols == nullptr) return "";
  std::string out;
  // Frame 0 is CurrentStackTrace itself, 1 the CheckMessage destructor;
  // start at the first frame the failing code owns.
  for (int i = 2; i < depth; ++i) {
    out += "    #";
    out += std::to_string(i - 2);
    out += " ";
    out += symbols[i];
    out += "\n";
  }
  std::free(symbols);
  return out;
#else
  return "";
#endif
}

CheckMessage::CheckMessage(const char* file, int line, const char* condition) {
  stream_ << "FSIM_CHECK failed: " << condition << " at " << file << ":"
          << line << " ";
}

CheckMessage::~CheckMessage() {
  std::string message = stream_.str();
  message += "\n";
  const std::string stack = CurrentStackTrace();
  if (!stack.empty()) {
    message += "  stack:\n";
    message += stack;
  }
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

namespace {

// ValidatorCounters is a shim over the metrics registry (obs/metrics.h):
// each validator is one counter in this family, labeled by name, so the
// table shows up in METRICS exposition alongside everything else.
constexpr char kValidatorFamily[] = "fsim_validator_runs_total";
constexpr char kValidatorHelp[] =
    "Structural validator invocations, by validator name";

}  // namespace

void ValidatorCounters::Bump(const char* name) {
  // Registration is keyed, so the repeated lookup returns the same
  // handle; validators run at most once per build/edit/publish, never in
  // per-pair hot loops, so the registry mutex here is fine.
  obs::Registry::Default()
      .GetCounter(kValidatorFamily, kValidatorHelp, "validator", name)
      ->Inc();
}

uint64_t ValidatorCounters::Count(const char* name) {
  for (const auto& [validator, count] :
       obs::Registry::Default().CounterFamilySnapshot(kValidatorFamily)) {
    if (validator == name) return count;
  }
  return 0;
}

std::vector<std::pair<std::string, uint64_t>> ValidatorCounters::Snapshot() {
  return obs::Registry::Default().CounterFamilySnapshot(kValidatorFamily);
}

}  // namespace fsim
