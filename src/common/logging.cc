#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fsim {
namespace internal {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel SetLogThreshold(LogLevel level) {
  return g_threshold.exchange(level);
}

LogLevel GetLogThreshold() { return g_threshold.load(); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip the directory part for terser output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogThreshold() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace fsim
