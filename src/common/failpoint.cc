#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace fsim {
namespace failpoint {

namespace {

enum class Action { kOff, kError, kIOError, kDelay, kAbort };

struct Site {
  Action action = Action::kOff;
  double delay_ms = 0.0;
  // Hits to skip before the action starts firing ("<k>->" prefix).
  uint64_t skip = 0;
  // Triggering hits remaining before the site self-disarms ("<n>*" prefix;
  // UINT64_MAX = unlimited).
  uint64_t remaining = UINT64_MAX;
  uint64_t hits = 0;
};

// Hits are mirrored into this metrics-registry family so METRICS
// exposition shows failpoint traffic. The mirror is monotonic for the
// process lifetime (Prometheus counter semantics) — ResetCounters, which
// tests use to re-zero the Snapshot() table, deliberately leaves it alone.
constexpr char kHitFamily[] = "fsim_failpoint_hits_total";
constexpr char kHitHelp[] = "Failpoint site passes, armed or not, by site";

// guards: the site registry below (Arm/Disarm/Hit/Snapshot callers).
std::mutex& SiteMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Site, std::less<>>& SiteMap() {
  static std::map<std::string, Site, std::less<>> sites;
  return sites;
}

Status ParseSpec(std::string_view spec, Site* out) {
  Site site;
  std::string_view rest = Trim(spec);
  if (const size_t arrow = rest.find("->"); arrow != std::string_view::npos) {
    auto skip = ParseUint64(rest.substr(0, arrow));
    if (!skip.ok()) return skip.status();
    site.skip = *skip;
    rest = rest.substr(arrow + 2);
  }
  if (const size_t star = rest.find('*'); star != std::string_view::npos) {
    auto count = ParseUint64(rest.substr(0, star));
    if (!count.ok()) return count.status();
    site.remaining = *count;
    rest = rest.substr(star + 1);
  }
  if (rest == "off") {
    site.action = Action::kOff;
  } else if (rest == "error") {
    site.action = Action::kError;
  } else if (rest == "io-error") {
    site.action = Action::kIOError;
  } else if (rest == "abort") {
    site.action = Action::kAbort;
  } else if (StartsWith(rest, "delay(") && rest.back() == ')') {
    auto ms = ParseDouble(rest.substr(6, rest.size() - 7));
    if (!ms.ok()) return ms.status();
    if (*ms < 0.0) return Status::InvalidArgument("negative failpoint delay");
    site.action = Action::kDelay;
    site.delay_ms = *ms;
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown failpoint action '%.*s' (expected error, io-error, "
                  "delay(<ms>), abort or off)",
                  static_cast<int>(rest.size()), rest.data()));
  }
  *out = site;
  return Status::OK();
}

}  // namespace

Status Arm(std::string_view name, std::string_view spec) {
  Site parsed;
  FSIM_RETURN_NOT_OK(ParseSpec(spec, &parsed));
  std::lock_guard<std::mutex> lock(SiteMutex());
  Site& site = SiteMap()[std::string(name)];
  parsed.hits = site.hits;  // arming never resets the counter
  site = parsed;
  return Status::OK();
}

Status ArmFromSpec(std::string_view list) {
  for (std::string_view entry : Split(list, ';')) {
    entry = Trim(entry);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("failpoint entry '%.*s' is not name=spec",
                    static_cast<int>(entry.size()), entry.data()));
    }
    FSIM_RETURN_NOT_OK(Arm(Trim(entry.substr(0, eq)),
                           Trim(entry.substr(eq + 1))));
  }
  return Status::OK();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("FSIM_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return Status::OK();
  return ArmFromSpec(spec);
}

void Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(SiteMutex());
  auto it = SiteMap().find(name);
  if (it != SiteMap().end()) {
    const uint64_t hits = it->second.hits;
    it->second = Site{};
    it->second.hits = hits;
  }
}

void DisarmAll() {
  std::lock_guard<std::mutex> lock(SiteMutex());
  for (auto& [name, site] : SiteMap()) {
    const uint64_t hits = site.hits;
    site = Site{};
    site.hits = hits;
  }
}

void ResetCounters() {
  std::lock_guard<std::mutex> lock(SiteMutex());
  SiteMap().clear();
}

uint64_t HitCount(std::string_view name) {
  std::lock_guard<std::mutex> lock(SiteMutex());
  auto it = SiteMap().find(name);
  return it == SiteMap().end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, uint64_t>> Snapshot() {
  std::lock_guard<std::mutex> lock(SiteMutex());
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(SiteMap().size());
  for (const auto& [name, site] : SiteMap()) {
    out.emplace_back(name, site.hits);
  }
  return out;
}

Status Hit(const char* name) {
  Action action = Action::kOff;
  double delay_ms = 0.0;
  obs::Registry::Default()
      .GetCounter(kHitFamily, kHitHelp, "site", name)
      ->Inc();
  {
    std::lock_guard<std::mutex> lock(SiteMutex());
    Site& site = SiteMap()[name];
    ++site.hits;
    if (site.action != Action::kOff) {
      if (site.skip > 0) {
        --site.skip;
      } else if (site.remaining > 0) {
        action = site.action;
        delay_ms = site.delay_ms;
        if (site.remaining != UINT64_MAX) --site.remaining;
      }
    }
  }
  switch (action) {
    case Action::kOff:
      return Status::OK();
    case Action::kError:
      return Status::Internal(StrFormat("injected failpoint '%s'", name));
    case Action::kIOError:
      return Status::IOError(StrFormat("injected failpoint '%s'", name));
    case Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
      return Status::OK();
    case Action::kAbort:
      std::fprintf(stderr, "failpoint '%s': aborting process\n", name);
      std::fflush(stderr);
      std::abort();
  }
  return Status::OK();
}

}  // namespace failpoint
}  // namespace fsim
