// Deterministic pseudo-random number generation and the skewed samplers used
// by the synthetic dataset generators. All experiment code seeds explicitly
// so every run of every bench is reproducible.
#ifndef FSIM_COMMON_RANDOM_H_
#define FSIM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fsim {

/// xoshiro256**-based generator seeded via SplitMix64. Satisfies
/// UniformRandomBitGenerator, so it also plugs into <random> facilities.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Samples from {0, ..., n-1} with probability proportional to
/// (i+1)^(-skew), i.e. a Zipf/zeta distribution. Precomputes the CDF once;
/// each draw is a binary search. Used for label assignment and degree
/// sequences in the synthetic datasets (real graph labels/degrees are
/// heavy-tailed).
class ZipfSampler {
 public:
  /// `n` must be >= 1; `skew` >= 0 (0 = uniform).
  ZipfSampler(size_t n, double skew);

  size_t Sample(Rng* rng) const;
  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Generates a degree sequence of length n with average degree `avg` whose
/// tail follows a power law capped at `max_degree`. The sequence is scaled so
/// the sum is (approximately) n*avg. Used by the Chung-Lu generator.
std::vector<uint32_t> PowerLawDegreeSequence(size_t n, double avg,
                                             uint32_t max_degree,
                                             double exponent, Rng* rng);

}  // namespace fsim

#endif  // FSIM_COMMON_RANDOM_H_
