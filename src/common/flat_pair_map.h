// FlatPairMap: open-addressing hash map from a packed 64-bit node-pair key to
// a 32-bit payload (typically an index into a dense score array). This is the
// hot-path structure behind the candidate-pair stores (Algorithm 1's hash
// maps Hc/Hp), so it avoids std::unordered_map's per-node allocations.
#ifndef FSIM_COMMON_FLAT_PAIR_MAP_H_
#define FSIM_COMMON_FLAT_PAIR_MAP_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace fsim {

/// Linear-probing hash map keyed by uint64 with uint32 values.
///
/// Restrictions (fine for our usage):
///  * the key 0xFFFFFFFFFFFFFFFF is reserved as the empty marker;
///  * no deletion support;
///  * values are trivially copyable 32-bit payloads.
class FlatPairMap {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;
  static constexpr uint32_t kNotFound = ~0U;

  FlatPairMap() { Rehash(16); }

  /// Pre-sizes the table for `n` expected entries.
  explicit FlatPairMap(size_t n) {
    size_t cap = 16;
    while (cap * 7 < n * 10) cap <<= 1;  // keep load factor <= 0.7
    Rehash(cap);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts key->value; returns false (keeping the old value) if the key was
  /// already present.
  bool Insert(uint64_t key, uint32_t value) {
    FSIM_DCHECK(key != kEmptyKey);
    if ((size_ + 1) * 10 > capacity_ * 7) Grow();
    size_t slot = FindSlot(key);
    if (keys_[slot] != kEmptyKey) return false;
    keys_[slot] = key;
    values_[slot] = value;
    ++size_;
    return true;
  }

  /// Returns the value for key, or kNotFound.
  uint32_t Find(uint64_t key) const {
    size_t slot = FindSlot(key);
    return keys_[slot] == kEmptyKey ? kNotFound : values_[slot];
  }

  bool Contains(uint64_t key) const { return Find(key) != kNotFound; }

  void Clear() {
    std::fill(keys_.begin(), keys_.end(), kEmptyKey);
    size_ = 0;
  }

  /// Memory footprint in bytes (for the #node-pairs reporting of Fig. 7b).
  size_t MemoryBytes() const {
    return keys_.size() * (sizeof(uint64_t) + sizeof(uint32_t));
  }

 private:
  size_t FindSlot(uint64_t key) const {
    size_t mask = capacity_ - 1;
    size_t slot = static_cast<size_t>(Mix64(key)) & mask;
    while (keys_[slot] != kEmptyKey && keys_[slot] != key) {
      slot = (slot + 1) & mask;
    }
    return slot;
  }

  void Grow() { RehashInto(capacity_ * 2); }

  void Rehash(size_t cap) {
    capacity_ = cap;
    keys_.assign(cap, kEmptyKey);
    values_.assign(cap, 0);
    size_ = 0;
  }

  void RehashInto(size_t cap) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    Rehash(cap);
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmptyKey) Insert(old_keys[i], old_values[i]);
    }
  }

  size_t capacity_ = 0;
  size_t size_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
};

}  // namespace fsim

#endif  // FSIM_COMMON_FLAT_PAIR_MAP_H_
