// Small string helpers shared by graph I/O and the label similarity
// functions.
#ifndef FSIM_COMMON_STRING_UTIL_H_
#define FSIM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fsim {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Splits `s` on any run of whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (labels are treated case-insensitively by the edit
/// distance / Jaro-Winkler similarity functions, following common practice).
std::string ToLower(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Checked numeric parsers for CLI/file input. Unlike atoi/atof they reject
/// empty input, trailing garbage ("12abc"), and out-of-range values with a
/// Status::InvalidArgument naming the offending text, instead of silently
/// returning 0 or saturating.
Result<int64_t> ParseInt64(std::string_view s);
Result<uint64_t> ParseUint64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

}  // namespace fsim

#endif  // FSIM_COMMON_STRING_UTIL_H_
