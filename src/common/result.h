// Result<T>: value-or-Status, in the style of arrow::Result. Fallible
// functions that produce a value return Result<T>; callers test ok() and
// either consume ValueOrDie()/operator* or propagate status().
#ifndef FSIM_COMMON_RESULT_H_
#define FSIM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace fsim {

/// Holds either a successfully produced T or the Status explaining why the
/// value could not be produced. A Result is never "empty": constructing one
/// from an OK status is a programming error.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicitly, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicitly, so error propagation via
  /// `return Status::...` works).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    FSIM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() if a value is present.
  const Status& status() const { return status_; }

  /// Returns the value, aborting the process if this Result holds an error.
  const T& ValueOrDie() const& {
    FSIM_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    FSIM_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return *value_;
  }
  T&& ValueOrDie() && {
    FSIM_CHECK(ok()) << "Result::ValueOrDie on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace fsim

/// Assigns the value of a Result expression to `lhs`, or returns its status
/// from the enclosing function.
#define FSIM_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto FSIM_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!FSIM_CONCAT_(_res_, __LINE__).ok())         \
    return FSIM_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(FSIM_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define FSIM_CONCAT_INNER_(a, b) a##b
#define FSIM_CONCAT_(a, b) FSIM_CONCAT_INNER_(a, b)

#endif  // FSIM_COMMON_RESULT_H_
