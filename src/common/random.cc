#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fsim {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  FSIM_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  FSIM_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

ZipfSampler::ZipfSampler(size_t n, double skew) {
  FSIM_CHECK(n >= 1);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += std::pow(static_cast<double>(i + 1), -skew);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double r = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

std::vector<uint32_t> PowerLawDegreeSequence(size_t n, double avg,
                                             uint32_t max_degree,
                                             double exponent, Rng* rng) {
  FSIM_CHECK(n >= 1);
  FSIM_CHECK(max_degree >= 1);
  // Draw from a discrete power law on [1, max_degree] by inverse transform
  // on the continuous Pareto, then rescale to hit the requested average.
  std::vector<double> raw(n);
  double sum = 0.0;
  const double a = 1.0 - exponent;  // exponent > 1 expected
  for (size_t i = 0; i < n; ++i) {
    double u = rng->NextDouble();
    // Inverse CDF of truncated Pareto on [1, max_degree].
    double x;
    if (std::abs(a) < 1e-9) {
      x = std::pow(static_cast<double>(max_degree), u);
    } else {
      double ma = std::pow(static_cast<double>(max_degree), a);
      x = std::pow(u * (ma - 1.0) + 1.0, 1.0 / a);
    }
    raw[i] = x;
    sum += x;
  }
  const double scale = (avg * static_cast<double>(n)) / sum;
  std::vector<uint32_t> degrees(n);
  for (size_t i = 0; i < n; ++i) {
    double d = raw[i] * scale;
    uint32_t di = static_cast<uint32_t>(std::lround(d));
    degrees[i] = std::min(max_degree, std::max<uint32_t>(1, di));
  }
  return degrees;
}

}  // namespace fsim
