// Minimal logging and invariant-checking macros (glog-flavoured, as used by
// Arrow/RocksDB internals). CHECK aborts on violated invariants; DCHECK
// compiles away in release builds. LOG(level) writes a line to stderr.
#ifndef FSIM_COMMON_LOGGING_H_
#define FSIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fsim {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Accumulates a message via operator<< and emits it (to stderr) on
/// destruction. A kFatal message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Minimum level actually emitted; defaults to kInfo. Returns previous value.
LogLevel SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace internal
}  // namespace fsim

#define FSIM_LOG_DEBUG \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kDebug, __FILE__, __LINE__)
#define FSIM_LOG_INFO \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kInfo, __FILE__, __LINE__)
#define FSIM_LOG_WARNING \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kWarning, __FILE__, __LINE__)
#define FSIM_LOG_ERROR \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kError, __FILE__, __LINE__)

/// Aborts the process with a diagnostic if `condition` is false.
#define FSIM_CHECK(condition)                                                  \
  if (!(condition))                                                            \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kFatal, __FILE__,   \
                               __LINE__)                                       \
      << "Check failed: " #condition " "

#define FSIM_CHECK_EQ(a, b) FSIM_CHECK((a) == (b))
#define FSIM_CHECK_NE(a, b) FSIM_CHECK((a) != (b))
#define FSIM_CHECK_LT(a, b) FSIM_CHECK((a) < (b))
#define FSIM_CHECK_LE(a, b) FSIM_CHECK((a) <= (b))
#define FSIM_CHECK_GT(a, b) FSIM_CHECK((a) > (b))
#define FSIM_CHECK_GE(a, b) FSIM_CHECK((a) >= (b))

#ifdef NDEBUG
#define FSIM_DCHECK(condition) \
  while (false) FSIM_CHECK(condition)
#else
#define FSIM_DCHECK(condition) FSIM_CHECK(condition)
#endif
#define FSIM_DCHECK_LT(a, b) FSIM_DCHECK((a) < (b))
#define FSIM_DCHECK_LE(a, b) FSIM_DCHECK((a) <= (b))

#endif  // FSIM_COMMON_LOGGING_H_
