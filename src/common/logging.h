// Minimal logging macros (glog-flavoured, as used by Arrow/RocksDB
// internals). LOG(level) writes a line to stderr. The FSIM_CHECK /
// FSIM_DCHECK invariant macros live in common/check.h (included here so
// historical logging.h users keep both families).
#ifndef FSIM_COMMON_LOGGING_H_
#define FSIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

#include "common/check.h"

namespace fsim {
namespace internal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Accumulates a message via operator<< and emits it (to stderr) on
/// destruction. A kFatal message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Minimum level actually emitted; defaults to kInfo. Returns previous value.
LogLevel SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace internal
}  // namespace fsim

#define FSIM_LOG_DEBUG \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kDebug, __FILE__, __LINE__)
#define FSIM_LOG_INFO \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kInfo, __FILE__, __LINE__)
#define FSIM_LOG_WARNING \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kWarning, __FILE__, __LINE__)
#define FSIM_LOG_ERROR \
  ::fsim::internal::LogMessage(::fsim::internal::LogLevel::kError, __FILE__, __LINE__)

#endif  // FSIM_COMMON_LOGGING_H_
