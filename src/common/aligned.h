// 64-byte-aligned storage for the vectorized kernel layer (core/simd/):
// an allocator-parameterized std::vector whose data() is cache-line (and
// AVX-512 vector) aligned, so aligned vector loads never split lines.
//
// C++17 aligned operator new does the heavy lifting; the allocator only
// forwards the alignment. AlignedVector is layout- and API-compatible with
// std::vector (it IS std::vector), so call sites keep .data()/.size()/[]
// unchanged — only the template type differs where alignment is part of
// the contract (dense score panels, compat bitsets, SoA tile panels).
#ifndef FSIM_COMMON_ALIGNED_H_
#define FSIM_COMMON_ALIGNED_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/check.h"

namespace fsim {

/// Cache-line / AVX-512 vector alignment of the aligned containers.
inline constexpr size_t kSimdAlign = 64;

template <typename T, size_t Align = kSimdAlign>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T), "alignment below the type's natural");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` sits on a kSimdAlign boundary (FSIM_DCHECK contract of the
/// panels and score buffers the vector kernels load from).
inline bool IsSimdAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) & (kSimdAlign - 1)) == 0;
}

}  // namespace fsim

#endif  // FSIM_COMMON_ALIGNED_H_
