// TablePrinter renders the experiment outputs as aligned console tables so
// each bench binary prints the same rows the paper's tables/figures report.
#ifndef FSIM_COMMON_TABLE_PRINTER_H_
#define FSIM_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace fsim {

/// Collects rows of string cells and prints them with column alignment and a
/// header separator:
///
///   TablePrinter t({"variant", "(u,v1)", "(u,v2)"});
///   t.AddRow({"s-simulation", "x (0.85)", "ok (1.00)"});
///   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row; missing trailing cells render as empty.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fsim

#endif  // FSIM_COMMON_TABLE_PRINTER_H_
