// Status: lightweight error propagation without exceptions, in the style of
// Apache Arrow / RocksDB. Library entry points that can fail return a Status
// (or a Result<T>, see result.h); internal invariant violations use the CHECK
// macros from logging.h instead.
#ifndef FSIM_COMMON_STATUS_H_
#define FSIM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace fsim {

/// Broad classification of an error. Kept deliberately small; the detailed
/// context lives in the human-readable message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  kResourceExhausted = 9,
};

/// Returns a stable, human-readable name for a StatusCode (e.g. "IOError").
std::string_view StatusCodeToString(StatusCode code);

/// An operation outcome: either OK or an error code plus message.
///
/// Statuses are cheap to copy in the OK case (single word); error details are
/// heap-allocated only when an error actually occurs.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(const Status& other)  // fsim-lint: allow(naked-new)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      // fsim-lint: allow(naked-new)
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) {
    other.state_ = nullptr;
  }
  Status& operator=(Status&& other) noexcept {
    std::swap(state_, other.state_);
    return *this;
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// The error message; empty for OK statuses.
  const std::string& message() const;
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)  // fsim-lint: allow(naked-new)
      : state_(new State{code, std::move(msg)}) {}

  State* state_;  // nullptr means OK.
};

}  // namespace fsim

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define FSIM_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::fsim::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // FSIM_COMMON_STATUS_H_
