#include "common/status.h"

namespace fsim {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace fsim
