// Simple wall-clock timer for the benchmarks and experiment harnesses.
#ifndef FSIM_COMMON_TIMER_H_
#define FSIM_COMMON_TIMER_H_

#include <chrono>

namespace fsim {

/// Measures elapsed wall-clock time since construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fsim

#endif  // FSIM_COMMON_TIMER_H_
