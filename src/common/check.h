// FSIM_CHECK / FSIM_DCHECK — the project's invariant-checking macro family,
// plus the invocation counters behind the structural validators
// (PairStore::ValidateNeighborIndex, DynamicGraph::ValidateAdjacency,
// SnapshotStore::ValidateChain, ThreadPool::ValidateScheduler,
// IncrementalNeighborIndex::Validate).
//
//   FSIM_CHECK(cond) << "context " << value;
//
// evaluates `cond` exactly once and, when false, writes the condition text,
// file:line, the streamed message and a stack trace to stderr, then aborts.
// Unlike the classic naked-`if` formulation, the macro expands to a single
// expression (the glog voidify trick), so it nests inside unbraced if/else
// without -Wdangling-else and can appear in comma expressions.
//
// FSIM_DCHECK compiles away — condition unevaluated — unless the build
// defines FSIM_DEBUG_CHECKS (CMake option -DFSIM_DEBUG_CHECKS=ON). The
// debug-checks build also turns on the automatic validator hooks wired into
// the hot data structures (validated after every PairStore::Build, graph
// edit, snapshot publish). docs/correctness.md describes the levels.
#ifndef FSIM_COMMON_CHECK_H_
#define FSIM_COMMON_CHECK_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fsim {
namespace internal {

/// Accumulates the failure message of one violated FSIM_CHECK via
/// operator<<; the destructor emits everything (condition, file:line,
/// message, stack trace) to stderr and aborts the process.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition);
  ~CheckMessage();  // emits and aborts — never returns normally

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence-than-<< sink that turns the CheckMessage chain into a
/// void expression, making FSIM_CHECK usable as one branch of a ternary.
struct CheckVoidify {
  void operator&(CheckMessage&) {}
  void operator&(CheckMessage&&) {}
};

/// Best-effort symbolized stack trace of the calling thread ("" when the
/// platform has no backtrace support). Printed by failing checks so a
/// validator tripping deep inside an engine names its caller chain.
std::string CurrentStackTrace();

}  // namespace internal

/// Process-wide named invocation counters, bumped on entry by every
/// structural validator. The shared test environment
/// (tests/validate_env.cc) asserts after the suite that each expected
/// validator ran at least once, and `fsim_cli --validate` prints the
/// table — so a validator that silently stops being called fails CI
/// instead of rotting.
class ValidatorCounters {
 public:
  /// Increments the counter for `name` (creates it at 1). Thread-safe.
  static void Bump(const char* name);

  /// Current count for `name` (0 if never bumped).
  static uint64_t Count(const char* name);

  /// All (name, count) pairs, sorted by name.
  static std::vector<std::pair<std::string, uint64_t>> Snapshot();
};

}  // namespace fsim

#define FSIM_CHECK(condition)                                       \
  (condition) ? (void)0                                             \
              : ::fsim::internal::CheckVoidify() &                  \
                    ::fsim::internal::CheckMessage(__FILE__, __LINE__, \
                                                   #condition)

#define FSIM_CHECK_EQ(a, b) FSIM_CHECK((a) == (b))
#define FSIM_CHECK_NE(a, b) FSIM_CHECK((a) != (b))
#define FSIM_CHECK_LT(a, b) FSIM_CHECK((a) < (b))
#define FSIM_CHECK_LE(a, b) FSIM_CHECK((a) <= (b))
#define FSIM_CHECK_GT(a, b) FSIM_CHECK((a) > (b))
#define FSIM_CHECK_GE(a, b) FSIM_CHECK((a) >= (b))

// FSIM_DCHECK: hot-path invariants, free in production builds. The
// compiled-out form keeps the condition syntactically alive (names stay
// odr-used, so no unused-variable warnings) but never evaluates it.
#ifdef FSIM_DEBUG_CHECKS
#define FSIM_DCHECK(condition) FSIM_CHECK(condition)
#else
#define FSIM_DCHECK(condition) \
  while (false) FSIM_CHECK(condition)
#endif
#define FSIM_DCHECK_EQ(a, b) FSIM_DCHECK((a) == (b))
#define FSIM_DCHECK_NE(a, b) FSIM_DCHECK((a) != (b))
#define FSIM_DCHECK_LT(a, b) FSIM_DCHECK((a) < (b))
#define FSIM_DCHECK_LE(a, b) FSIM_DCHECK((a) <= (b))
#define FSIM_DCHECK_GT(a, b) FSIM_DCHECK((a) > (b))
#define FSIM_DCHECK_GE(a, b) FSIM_DCHECK((a) >= (b))

#endif  // FSIM_COMMON_CHECK_H_
