#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fsim {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

namespace {

/// Shared strto* harness: NUL-terminates the trimmed input (strto* needs a C
/// string), runs `parse`, and rejects empty input, trailing garbage, and
/// ERANGE uniformly.
template <typename T, typename Parse>
Result<T> ParseWith(std::string_view s, const char* kind, Parse parse) {
  const std::string text(Trim(s));
  if (text.empty()) {
    return Status::InvalidArgument(StrFormat("empty %s", kind));
  }
  errno = 0;
  char* end = nullptr;
  const T value = parse(text.c_str(), &end);
  if (end == text.c_str()) {
    return Status::InvalidArgument(
        StrFormat("'%s' is not a valid %s", text.c_str(), kind));
  }
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument(
        StrFormat("'%s' is not a valid %s (garbage after '%s')", text.c_str(),
                  kind,
                  std::string(text.c_str(),
                              static_cast<const char*>(end))
                      .c_str()));
  }
  if (errno == ERANGE) {
    return Status::OutOfRange(
        StrFormat("'%s' overflows the %s range", text.c_str(), kind));
  }
  return value;
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view s) {
  return ParseWith<int64_t>(s, "integer", [](const char* p, char** end) {
    return static_cast<int64_t>(std::strtoll(p, end, 10));
  });
}

Result<uint64_t> ParseUint64(std::string_view s) {
  // strtoull silently wraps "-1" to ULLONG_MAX - reject signs up front.
  const std::string_view trimmed = Trim(s);
  if (!trimmed.empty() && (trimmed.front() == '-' || trimmed.front() == '+')) {
    return Status::InvalidArgument(
        StrFormat("'%.*s' is not a valid unsigned integer",
                  static_cast<int>(trimmed.size()), trimmed.data()));
  }
  return ParseWith<uint64_t>(
      s, "unsigned integer", [](const char* p, char** end) {
        return static_cast<uint64_t>(std::strtoull(p, end, 10));
      });
}

Result<double> ParseDouble(std::string_view s) {
  return ParseWith<double>(s, "number", [](const char* p, char** end) {
    return std::strtod(p, end);
  });
}

}  // namespace fsim
