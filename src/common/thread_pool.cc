#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace fsim {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  FSIM_CHECK(num_threads >= 1);
  // Worker 0 is the calling thread; spawn the remaining num_threads-1.
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  const size_t grain =
      std::max<size_t>(1, n / (8 * static_cast<size_t>(num_threads_)));
  ChunkedBody chunked = [&body](int /*worker*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  };
  ParallelForChunked(n, grain, chunked);
}

void ThreadPool::ParallelForChunked(size_t n, size_t grain,
                                    const ChunkedBody& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (num_threads_ == 1 || n <= grain) {
    body(0, 0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_.n = n;
    task_.grain = grain;
    task_.body = &body;
    next_.store(0, std::memory_order_relaxed);
    ++epoch_;
    task_.epoch = epoch_;
    pending_workers_ = num_threads_ - 1;
  }
  work_cv_.notify_all();

  // The caller acts as worker 0.
  RunChunks(0, n, grain, body);

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
}

void ThreadPool::ParallelForSpan(std::span<const uint32_t> indices,
                                 size_t grain, const SpanBody& body) {
  ChunkedBody chunked = [&body, indices](int worker, size_t begin,
                                         size_t end) {
    body(worker, indices.subspan(begin, end - begin));
  };
  ParallelForChunked(indices.size(), grain, chunked);
}

void ThreadPool::RunChunks(int worker_id, size_t n, size_t grain,
                           const ChunkedBody& body) {
  for (;;) {
    const size_t begin = next_.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    body(worker_id, begin, std::min(begin + grain, n));
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const ChunkedBody* body = nullptr;
    size_t n = 0;
    size_t grain = 1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || task_.epoch > seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = task_.epoch;
      body = task_.body;
      n = task_.n;
      grain = task_.grain;
    }
    RunChunks(worker_id, n, grain, *body);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fsim
