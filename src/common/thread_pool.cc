#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fsim {
namespace {

// Registry mirrors of the SchedulerStats counters (metrics are process-
// wide sums over every pool; SchedulerStats stays per-pool for tests and
// the exactly-once validator). Handles resolve once — never inside region
// bodies (fsim-lint metrics-hot).
struct SchedulerMetrics {
  obs::Counter* steal_regions;
  obs::Counter* counter_regions;
  obs::Counter* inline_regions;
  obs::Counter* chunks_dealt;
  obs::Counter* chunks_executed;
  obs::Counter* chunks_stolen;
  obs::Counter* steal_batches;
  obs::Counter* steal_retries;

  static const SchedulerMetrics& Get() {
    static const SchedulerMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      constexpr char kRegions[] = "fsim_scheduler_regions_total";
      constexpr char kRegionsHelp[] =
          "Parallel regions by scheduling mode (steal deques, shared "
          "counter, or inline on the caller)";
      constexpr char kChunks[] = "fsim_scheduler_chunks_total";
      constexpr char kChunksHelp[] =
          "Steal-scheduler chunks by disposition (dealt into deques, "
          "executed, taken from a victim)";
      SchedulerMetrics m;
      m.steal_regions =
          registry.GetCounter(kRegions, kRegionsHelp, "kind", "steal");
      m.counter_regions =
          registry.GetCounter(kRegions, kRegionsHelp, "kind", "counter");
      m.inline_regions =
          registry.GetCounter(kRegions, kRegionsHelp, "kind", "inline");
      m.chunks_dealt =
          registry.GetCounter(kChunks, kChunksHelp, "kind", "dealt");
      m.chunks_executed =
          registry.GetCounter(kChunks, kChunksHelp, "kind", "executed");
      m.chunks_stolen =
          registry.GetCounter(kChunks, kChunksHelp, "kind", "stolen");
      m.steal_batches = registry.GetCounter(
          "fsim_scheduler_steal_batches_total",
          "Successful steal CASes (one batch of chunks each)");
      m.steal_retries = registry.GetCounter(
          "fsim_scheduler_steal_retries_total",
          "Failed steal CASes plus empty victim scans");
      return m;
    }();
    return metrics;
  }
};

// Steal batch cap: thieves take min(ceil(remaining / 2), kStealBatchMax)
// positions per CAS. Half-stealing spreads a big block across workers in
// O(log) steals; the cap keeps one steal from hoarding most of a victim's
// tail near the end of a region.
constexpr uint32_t kStealBatchMax = 8;

// Regions with fewer chunks than this per worker are not worth dealing
// deques for; they run on the shared counter instead.
constexpr size_t kMinChunksPerWorker = 4;

// Backoff exponent cap: 2^10 pause iterations (~a few microseconds) between
// rescans once every probe keeps coming back empty-but-unfinished.
constexpr uint32_t kBackoffCap = 10;

inline uint64_t PackRange(uint32_t lo, uint32_t hi) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads),
      deques_(static_cast<size_t>(std::max(num_threads, 1))) {
  FSIM_CHECK(num_threads >= 1);
  // Worker 0 is the calling thread; spawn the remaining num_threads-1.
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  const size_t grain =
      std::max<size_t>(1, n / (8 * static_cast<size_t>(num_threads_)));
  ChunkedBody chunked = [&body](int /*worker*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  };
  ParallelForChunked(n, grain, chunked);
}

void ThreadPool::ParallelForChunked(size_t n, size_t grain,
                                    const ChunkedBody& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (num_threads_ == 1 || n <= grain) {
    body(0, 0, n);
    stat_inline_regions_.fetch_add(1, std::memory_order_relaxed);
    SchedulerMetrics::Get().inline_regions->Inc();
    return;
  }
  const size_t num_chunks = (n + grain - 1) / grain;
  Mode mode = Mode::kCounter;
  if (num_chunks >= kMinChunksPerWorker * static_cast<size_t>(num_threads_) &&
      num_chunks <= UINT32_MAX) {
    // Deal each worker a contiguous block of chunk ids: worker t owns
    // chunks [t*per, (t+1)*per) (plus one of the remainder chunks for the
    // first `rem` workers). Owners walk their block ascending; thieves bite
    // off the block's far end.
    mode = Mode::kSteal;
    const size_t per = num_chunks / static_cast<size_t>(num_threads_);
    const size_t rem = num_chunks % static_cast<size_t>(num_threads_);
    size_t begin = 0;
    for (size_t t = 0; t < static_cast<size_t>(num_threads_); ++t) {
      const size_t len = per + (t < rem ? 1 : 0);
      deques_[t].chunk_offset = static_cast<uint32_t>(begin);
      deques_[t].chunk_stride = 1;
      deques_[t].range.store(PackRange(0, static_cast<uint32_t>(len)),
                             std::memory_order_relaxed);
      begin += len;
    }
    stat_chunks_dealt_.fetch_add(num_chunks, std::memory_order_relaxed);
    SchedulerMetrics::Get().chunks_dealt->Inc(num_chunks);
  }
  Dispatch(mode, n, grain, body);
}

void ThreadPool::ParallelForSpan(std::span<const uint32_t> indices,
                                 size_t grain, const SpanBody& body) {
  ChunkedBody chunked = [&body, indices](int worker, size_t begin,
                                         size_t end) {
    body(worker, indices.subspan(begin, end - begin));
  };
  ParallelForChunked(indices.size(), grain, chunked);
}

void ThreadPool::ParallelForFrontier(std::span<const uint32_t> indices,
                                     const FrontierWeight& weight,
                                     size_t grain, const SpanBody& body) {
  const size_t n = indices.size();
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (num_threads_ == 1 || n <= grain) {
    body(0, indices);
    stat_inline_regions_.fetch_add(1, std::memory_order_relaxed);
    SchedulerMetrics::Get().inline_regions->Inc();
    return;
  }
  // Two-class big-first split at 1/16 of the maximum weight (the same
  // partition IncrementalFSim's serial waves drain in): heavy items lead so
  // no worker picks up an expensive pair with an empty region behind it.
  // Each class keeps the original order, so within a class workers still
  // walk the underlying arrays roughly ascending.
  frontier_weights_.resize(n);
  float max_weight = 0.0f;
  for (size_t j = 0; j < n; ++j) {
    const float w = weight(indices[j]);
    frontier_weights_[j] = w;
    max_weight = std::max(max_weight, w);
  }
  const float threshold = max_weight / 16.0f;
  frontier_order_.resize(n);
  size_t pos = 0;
  for (size_t j = 0; j < n; ++j) {
    if (frontier_weights_[j] >= threshold) frontier_order_[pos++] = indices[j];
  }
  for (size_t j = 0; j < n; ++j) {
    if (frontier_weights_[j] < threshold) frontier_order_[pos++] = indices[j];
  }

  const uint32_t* order = frontier_order_.data();
  ChunkedBody chunked = [&body, order](int worker, size_t begin, size_t end) {
    body(worker, std::span<const uint32_t>(order + begin, end - begin));
  };
  const size_t num_chunks = (n + grain - 1) / grain;
  Mode mode = Mode::kCounter;  // the counter walks chunks in priority order
  if (num_chunks >= kMinChunksPerWorker * static_cast<size_t>(num_threads_) &&
      num_chunks <= UINT32_MAX) {
    // Round-robin deal in priority order: chunk c belongs to worker
    // c % num_threads, so every worker's deque leads with heavy chunks and
    // a thief steals a victim's lightest remaining ones.
    mode = Mode::kSteal;
    for (size_t t = 0; t < static_cast<size_t>(num_threads_); ++t) {
      const size_t len =
          num_chunks / static_cast<size_t>(num_threads_) +
          (t < num_chunks % static_cast<size_t>(num_threads_) ? 1 : 0);
      deques_[t].chunk_offset = static_cast<uint32_t>(t);
      deques_[t].chunk_stride = static_cast<uint32_t>(num_threads_);
      deques_[t].range.store(PackRange(0, static_cast<uint32_t>(len)),
                             std::memory_order_relaxed);
    }
    stat_chunks_dealt_.fetch_add(num_chunks, std::memory_order_relaxed);
    SchedulerMetrics::Get().chunks_dealt->Inc(num_chunks);
  }
  Dispatch(mode, n, grain, chunked);
}

void ThreadPool::Dispatch(Mode mode, size_t n, size_t grain,
                          const ChunkedBody& body) {
  FSIM_TRACE_SPAN_ARG(
      mode == Mode::kSteal ? "pool.region.steal" : "pool.region.counter", n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_.mode = mode;
    task_.n = n;
    task_.grain = grain;
    task_.body = &body;
    next_.store(0, std::memory_order_relaxed);
    ++epoch_;
    task_.epoch = epoch_;
    pending_workers_ = num_threads_ - 1;
  }
  work_cv_.notify_all();

  // The caller acts as worker 0. task_ is immutable until every worker has
  // checked in, so reading it without the lock here is safe.
  RunRegion(0, task_);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
  }
  (mode == Mode::kSteal ? stat_steal_regions_ : stat_counter_regions_)
      .fetch_add(1, std::memory_order_relaxed);
  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  (mode == Mode::kSteal ? metrics.steal_regions : metrics.counter_regions)
      ->Inc();
}

void ThreadPool::RunRegion(int worker_id, const Task& task) {
  if (task.mode == Mode::kSteal) {
    RunSteal(worker_id, task);
  } else {
    RunCounter(worker_id, task);
  }
}

void ThreadPool::RunCounter(int worker_id, const Task& task) {
  const size_t n = task.n;
  const size_t grain = task.grain;
  for (;;) {
    const size_t begin = next_.fetch_add(grain, std::memory_order_relaxed);
    if (begin >= n) return;
    (*task.body)(worker_id, begin, std::min(begin + grain, n));
  }
}

void ThreadPool::RunSteal(int worker_id, const Task& task) {
  const size_t n = task.n;
  const size_t grain = task.grain;
  uint64_t executed = 0;
  uint64_t stolen = 0;
  uint64_t batches = 0;
  uint64_t retries = 0;

  const auto run_chunk = [&](const ChunkDeque& dq, uint32_t k) {
    const size_t chunk = static_cast<size_t>(dq.chunk_offset) +
                         static_cast<size_t>(k) *
                             static_cast<size_t>(dq.chunk_stride);
    const size_t begin = chunk * grain;
    const size_t end = std::min(begin + grain, n);
    FSIM_TRACE_SPAN_ARG("pool.chunk", end - begin);
    (*task.body)(worker_id, begin, end);
    ++executed;
  };

  // Drain the own deque: CAS lo upward so chunks run in ascending sequence
  // order (contiguous memory for block deals, descending priority for
  // round-robin deals).
  ChunkDeque& own = deques_[worker_id];
  uint64_t r = own.range.load(std::memory_order_relaxed);
  for (;;) {
    const uint32_t lo = static_cast<uint32_t>(r);
    const uint32_t hi = static_cast<uint32_t>(r >> 32);
    if (lo >= hi) break;
    if (own.range.compare_exchange_weak(r, PackRange(lo + 1, hi),
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      run_chunk(own, lo);
      r = own.range.load(std::memory_order_relaxed);
    }
  }

  // Steal until every deque has been observed empty. Positions only leave
  // deques (nothing is re-enqueued mid-region), so an all-empty scan means
  // every chunk is claimed and will finish within its claimant's loop.
  uint32_t rng = 0x9E3779B9u ^
                 (static_cast<uint32_t>(worker_id) * 2654435761u) ^
                 static_cast<uint32_t>(task.epoch);
  uint32_t backoff = 0;
  while (num_threads_ > 1) {
    bool any_left = false;
    bool found = false;
    rng = rng * 1664525u + 1013904223u;
    const int start =
        static_cast<int>((rng >> 16) % static_cast<uint32_t>(num_threads_));
    for (int probe = 0; probe < num_threads_ && !found; ++probe) {
      int victim = start + probe;
      if (victim >= num_threads_) victim -= num_threads_;
      if (victim == worker_id) continue;
      ChunkDeque& dq = deques_[victim];
      uint64_t vr = dq.range.load(std::memory_order_acquire);
      for (;;) {
        const uint32_t lo = static_cast<uint32_t>(vr);
        const uint32_t hi = static_cast<uint32_t>(vr >> 32);
        if (lo >= hi) break;
        any_left = true;
        const uint32_t take = std::min((hi - lo + 1) / 2, kStealBatchMax);
        if (dq.range.compare_exchange_weak(vr, PackRange(lo, hi - take),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          ++batches;
          stolen += take;
          // The thief runs its batch directly; ascending order keeps the
          // victim's sequence semantics within the batch.
          for (uint32_t k = hi - take; k < hi; ++k) run_chunk(dq, k);
          found = true;
          break;
        }
        ++retries;
      }
    }
    if (found) {
      backoff = 0;
      continue;
    }
    if (!any_left) break;
    // Chunks remain but every steal attempt lost its race: back off
    // exponentially before rescanning so near-empty regions don't turn
    // into CAS storms.
    ++retries;
    const uint32_t spins = 1u << std::min(backoff, kBackoffCap);
    for (uint32_t i = 0; i < spins; ++i) CpuRelax();
    if (backoff >= kBackoffCap) std::this_thread::yield();
    backoff = std::min(backoff + 1, kBackoffCap + 2);
  }

  stat_chunks_executed_.fetch_add(executed, std::memory_order_relaxed);
  stat_chunks_stolen_.fetch_add(stolen, std::memory_order_relaxed);
  stat_steal_batches_.fetch_add(batches, std::memory_order_relaxed);
  stat_steal_retries_.fetch_add(retries, std::memory_order_relaxed);
  const SchedulerMetrics& metrics = SchedulerMetrics::Get();
  metrics.chunks_executed->Inc(executed);
  metrics.chunks_stolen->Inc(stolen);
  metrics.steal_batches->Inc(batches);
  metrics.steal_retries->Inc(retries);
}

ThreadPool::SchedulerStats ThreadPool::stats() const {
  SchedulerStats s;
  s.steal_regions = stat_steal_regions_.load(std::memory_order_relaxed);
  s.counter_regions = stat_counter_regions_.load(std::memory_order_relaxed);
  s.inline_regions = stat_inline_regions_.load(std::memory_order_relaxed);
  s.chunks_dealt = stat_chunks_dealt_.load(std::memory_order_relaxed);
  s.chunks_executed = stat_chunks_executed_.load(std::memory_order_relaxed);
  s.chunks_stolen = stat_chunks_stolen_.load(std::memory_order_relaxed);
  s.steal_batches = stat_steal_batches_.load(std::memory_order_relaxed);
  s.steal_retries = stat_steal_retries_.load(std::memory_order_relaxed);
  // Exactly-once: between regions, every chunk dealt into a deque must have
  // been executed by exactly one worker (owner pop or steal batch).
  FSIM_DCHECK(s.chunks_dealt == s.chunks_executed);
  return s;
}

Status ThreadPool::ValidateScheduler() const {
  ValidatorCounters::Bump("ThreadPool::ValidateScheduler");
  for (size_t t = 0; t < deques_.size(); ++t) {
    const uint64_t r = deques_[t].range.load(std::memory_order_acquire);
    const uint32_t lo = static_cast<uint32_t>(r);
    const uint32_t hi = static_cast<uint32_t>(r >> 32);
    if (lo > hi) {
      return Status::Internal("scheduler deque " + std::to_string(t) +
                              " has torn range lo=" + std::to_string(lo) +
                              " > hi=" + std::to_string(hi));
    }
    if (lo != hi) {
      return Status::Internal("scheduler deque " + std::to_string(t) +
                              " not drained between regions: [" +
                              std::to_string(lo) + ", " + std::to_string(hi) +
                              ")");
    }
  }
  const uint64_t dealt = stat_chunks_dealt_.load(std::memory_order_relaxed);
  const uint64_t executed =
      stat_chunks_executed_.load(std::memory_order_relaxed);
  if (dealt != executed) {
    return Status::Internal(
        "scheduler exactly-once violation: " + std::to_string(dealt) +
        " chunks dealt vs " + std::to_string(executed) + " executed");
  }
  return Status::OK();
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || task_.epoch > seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = task_.epoch;
      task = task_;
    }
    RunRegion(worker_id, task);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fsim
