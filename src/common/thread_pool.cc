#include "common/thread_pool.h"

#include "common/logging.h"

namespace fsim {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  FSIM_CHECK(num_threads >= 1);
  // Worker 0 is the calling thread; spawn the remaining num_threads-1.
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (num_threads_ == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_.n = n;
    task_.body = &body;
    ++epoch_;
    task_.epoch = epoch_;
    pending_workers_ = num_threads_ - 1;
  }
  work_cv_.notify_all();

  // The caller acts as worker 0.
  for (size_t i = 0; i < n; i += static_cast<size_t>(num_threads_)) {
    body(i);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_workers_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || task_.epoch > seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = task_.epoch;
      body = task_.body;
      n = task_.n;
    }
    for (size_t i = static_cast<size_t>(worker_id); i < n;
         i += static_cast<size_t>(num_threads_)) {
      (*body)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace fsim
