// Fixed-size thread pool with blocking parallel-for primitives, used to
// parallelize the per-pair updates of Algorithm 1. Double buffering in the
// engine makes the bodies race-free.
#ifndef FSIM_COMMON_THREAD_POOL_H_
#define FSIM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace fsim {

/// A pool of worker threads executing dynamically scheduled index chunks.
///
/// ParallelForChunked(n, grain, body) partitions [0, n) into contiguous
/// chunks of `grain` indices (the last chunk may be shorter) that workers
/// pull from a shared counter, so uneven per-index cost self-balances while
/// each worker still walks memory sequentially. The worker id passed to the
/// body is stable for the duration of one call and unique per concurrent
/// executor, which makes per-worker scratch buffers safe.
///
/// With num_threads == 1 the body runs inline on the caller (as worker 0),
/// which keeps single-thread benchmarks honest.
class ThreadPool {
 public:
  /// body(worker, begin, end): evaluate indices [begin, end) as worker
  /// `worker` in [0, num_threads).
  using ChunkedBody = std::function<void(int, size_t, size_t)>;

  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) exactly once and returns when all
  /// calls have completed. Convenience wrapper over ParallelForChunked with
  /// an automatic grain (~8 chunks per worker).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Runs body(worker, begin, end) over contiguous chunks covering [0, n)
  /// exactly once each; returns when all chunks have completed. grain is the
  /// chunk length (clamped to >= 1). The caller participates as worker 0.
  void ParallelForChunked(size_t n, size_t grain, const ChunkedBody& body);

  /// body(worker, ids): evaluate the store indices `ids` as worker `worker`.
  using SpanBody = std::function<void(int, std::span<const uint32_t>)>;

  /// Frontier chunking: runs body over contiguous grain-sized slices of an
  /// index array (the active-set drivers' sweep primitive — the frontier is
  /// a sorted list of store indices, so slices keep workers walking the
  /// score and neighbor-ref arrays in ascending order). Scheduling and
  /// worker-id semantics are those of ParallelForChunked.
  void ParallelForSpan(std::span<const uint32_t> indices, size_t grain,
                       const SpanBody& body);

 private:
  struct Task {
    size_t n = 0;
    size_t grain = 1;
    const ChunkedBody* body = nullptr;
    uint64_t epoch = 0;
  };

  void WorkerLoop(int worker_id);
  /// Pulls chunks off next_ until [0, n) is exhausted.
  void RunChunks(int worker_id, size_t n, size_t grain,
                 const ChunkedBody& body);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task task_;
  std::atomic<size_t> next_{0};
  int pending_workers_ = 0;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace fsim

#endif  // FSIM_COMMON_THREAD_POOL_H_
