// Fixed-size thread pool with a blocking ParallelFor, used to parallelize the
// per-pair updates of Algorithm 1 (round-robin distribution, as in §3.4 of
// the paper). Double buffering in the engine makes the body race-free.
#ifndef FSIM_COMMON_THREAD_POOL_H_
#define FSIM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsim {

/// A pool of worker threads executing partitioned index ranges.
///
/// ParallelFor(n, body) calls body(i) for every i in [0, n) exactly once and
/// returns when all calls have completed. With num_threads == 1 the body runs
/// inline on the caller, which keeps single-thread benchmarks honest.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for i in [0, n). Work is distributed round-robin: worker t
  /// handles indices i with i % num_threads == t, matching the paper's
  /// load-balancing description.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  struct Task {
    size_t n = 0;
    const std::function<void(size_t)>* body = nullptr;
    uint64_t epoch = 0;
  };

  void WorkerLoop(int worker_id);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Task task_;
  int pending_workers_ = 0;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace fsim

#endif  // FSIM_COMMON_THREAD_POOL_H_
