// Work-stealing thread pool with blocking parallel-for primitives, used to
// parallelize the per-pair updates of Algorithm 1. Double buffering in the
// engine makes the bodies race-free.
#ifndef FSIM_COMMON_THREAD_POOL_H_
#define FSIM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"

namespace fsim {

/// A pool of worker threads executing dynamically scheduled index chunks.
///
/// ParallelForChunked(n, grain, body) partitions [0, n) into contiguous
/// chunks of `grain` indices (the last chunk may be shorter). Large regions
/// run on a work-stealing scheduler: each worker owns a contiguous block of
/// chunks in a per-worker deque, pops its own chunks in ascending order
/// (sequential memory walk), and when empty steals a batch of chunks from
/// the far end of a random victim's block, so a few expensive chunks (large
/// matchings in dp/bj mode) cannot serialize the region's tail. Small
/// regions (fewer than a handful of chunks per worker) fall back to the old
/// shared-counter loop, whose setup cost is a single atomic store.
///
/// The worker id passed to the body is stable for the duration of one call
/// and unique per concurrent executor, which makes per-worker scratch
/// buffers safe.
///
/// With num_threads == 1 the body runs inline on the caller (as worker 0),
/// which keeps single-thread benchmarks honest.
class ThreadPool {
 public:
  /// body(worker, begin, end): evaluate indices [begin, end) as worker
  /// `worker` in [0, num_threads).
  using ChunkedBody = std::function<void(int, size_t, size_t)>;

  /// Creates `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs body(i) for every i in [0, n) exactly once and returns when all
  /// calls have completed. Convenience wrapper over ParallelForChunked with
  /// an automatic grain (~8 chunks per worker).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// Runs body(worker, begin, end) over contiguous chunks covering [0, n)
  /// exactly once each; returns when all chunks have completed. grain is the
  /// chunk length (clamped to >= 1). The caller participates as worker 0.
  void ParallelForChunked(size_t n, size_t grain, const ChunkedBody& body);

  /// body(worker, ids): evaluate the store indices `ids` as worker `worker`.
  using SpanBody = std::function<void(int, std::span<const uint32_t>)>;

  /// Frontier chunking: runs body over contiguous grain-sized slices of an
  /// index array (the active-set drivers' sweep primitive — the frontier is
  /// a sorted list of store indices, so slices keep workers walking the
  /// score and neighbor-ref arrays in ascending order). Scheduling and
  /// worker-id semantics are those of ParallelForChunked.
  void ParallelForSpan(std::span<const uint32_t> indices, size_t grain,
                       const SpanBody& body);

  /// weight(i): relative cost estimate for evaluating index i (e.g. its
  /// neighbor-ref count, or its pending influence in an incremental wave).
  using FrontierWeight = std::function<float(uint32_t)>;

  /// Priority frontier draining: like ParallelForSpan, but the slices handed
  /// to workers are drawn from a big-items-first reordering of `indices` —
  /// items whose weight is within 1/16 of the frontier's maximum (the same
  /// two-class split IncrementalFSim's serial waves use) come first, each
  /// class keeping the original (ascending-index) order. Chunks are dealt
  /// round-robin so every worker starts on heavy chunks and thieves pick up
  /// a victim's lightest remaining work. Coverage/worker-id semantics are
  /// those of ParallelForSpan; the ordering is only a scheduling hint, so
  /// bodies must not rely on it (and must be order-independent anyway, as
  /// with every primitive here). The spans passed to body alias pool-owned
  /// scratch and are invalid after the call returns.
  void ParallelForFrontier(std::span<const uint32_t> indices,
                           const FrontierWeight& weight, size_t grain,
                           const SpanBody& body);

  /// Cumulative scheduler telemetry since construction (relaxed counters;
  /// read between regions for exact values). Between regions the dealt ==
  /// executed exactly-once invariant must hold; stats() FSIM_DCHECKs it and
  /// ValidateScheduler() reports it as a Status.
  struct SchedulerStats {
    uint64_t steal_regions = 0;    // regions run on the deque scheduler
    uint64_t counter_regions = 0;  // regions on the shared-counter fallback
    uint64_t inline_regions = 0;   // regions run inline on the caller
    uint64_t chunks_dealt = 0;     // chunks dealt into deques at region start
    uint64_t chunks_executed = 0;  // chunks run by deque-scheduler workers
    uint64_t chunks_stolen = 0;    // of those, chunks taken from a victim
    uint64_t steal_batches = 0;    // successful steal CASes
    uint64_t steal_retries = 0;    // failed steal CASes + empty scans
  };
  SchedulerStats stats() const;

  /// Structural invariants of the work-stealing runtime, checkable whenever
  /// no region is in flight: every deque's packed [lo, hi) range is
  /// well-formed and drained (lo == hi), and every chunk dealt into a deque
  /// was executed exactly once (chunks_dealt == chunks_executed — a torn
  /// steal CAS or a double-executed batch breaks the equality). Returns
  /// Internal with the offending values otherwise. Bumps
  /// ValidatorCounters "ThreadPool::ValidateScheduler".
  Status ValidateScheduler() const;

 private:
  enum class Mode { kCounter, kSteal };

  struct Task {
    Mode mode = Mode::kCounter;
    size_t n = 0;
    size_t grain = 1;
    const ChunkedBody* body = nullptr;
    uint64_t epoch = 0;
  };

  /// One worker's share of a steal-mode region. The deque holds the half-
  /// open range [lo, hi) of positions k in an affine chunk-id sequence
  /// chunk = chunk_offset + k * chunk_stride, packed into one atomic as
  /// (hi << 32) | lo. The owner CASes lo upward (ascending chunk ids =
  /// sequential memory); thieves CAS hi downward, taking up to half the
  /// remaining positions per steal. Positions only ever leave the deque, so
  /// region termination is "every deque observed empty once".
  struct alignas(64) ChunkDeque {
    // ordering: acq_rel CAS protocol — owner advances lo, thieves lower hi;
    // a successful CAS transfers ownership of the claimed positions.
    std::atomic<uint64_t> range{0};
    uint32_t chunk_offset = 0;
    uint32_t chunk_stride = 1;
  };

  void WorkerLoop(int worker_id);
  /// Publishes the task to the workers, participates as worker 0, and waits
  /// for the region to complete. Steal-mode deques must be dealt first.
  void Dispatch(Mode mode, size_t n, size_t grain, const ChunkedBody& body);
  void RunRegion(int worker_id, const Task& task);
  /// Shared-counter fallback: pulls chunks off next_ until [0, n) is done.
  void RunCounter(int worker_id, const Task& task);
  /// Deque scheduler: drain own deque, then steal until all deques empty.
  void RunSteal(int worker_id, const Task& task);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::vector<ChunkDeque> deques_;

  // Scratch for ParallelForFrontier's priority reordering (one region runs
  // at a time; bodies see spans into frontier_order_).
  std::vector<uint32_t> frontier_order_;
  std::vector<float> frontier_weights_;

  std::mutex mu_;  // guards: task_, pending_workers_, epoch_, shutdown_
  std::condition_variable work_cv_;  // ordering: signals a new task_.epoch
  std::condition_variable done_cv_;  // ordering: signals pending_workers_==0
  Task task_;
  // ordering: relaxed — the shared-counter fallback's chunk dispenser; only
  // atomicity of fetch_add matters, chunk order is irrelevant.
  std::atomic<size_t> next_{0};
  int pending_workers_ = 0;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;

  // ordering: relaxed telemetry counters — read between regions (stats()).
  std::atomic<uint64_t> stat_steal_regions_{0};
  std::atomic<uint64_t> stat_counter_regions_{0};   // ordering: relaxed
  std::atomic<uint64_t> stat_inline_regions_{0};    // ordering: relaxed
  std::atomic<uint64_t> stat_chunks_dealt_{0};      // ordering: relaxed
  std::atomic<uint64_t> stat_chunks_executed_{0};   // ordering: relaxed
  std::atomic<uint64_t> stat_chunks_stolen_{0};     // ordering: relaxed
  std::atomic<uint64_t> stat_steal_batches_{0};     // ordering: relaxed
  std::atomic<uint64_t> stat_steal_retries_{0};     // ordering: relaxed
};

}  // namespace fsim

#endif  // FSIM_COMMON_THREAD_POOL_H_
