// Failpoint injection — named failure sites compiled into the serving and
// persistence seams (WAL append, snapshot persist, publish, queue admission,
// solve) that tests, `fsim_cli --failpoints` or the FSIM_FAILPOINTS
// environment variable can arm to return an error, delay the caller, or
// abort the process. The crash-recovery matrix in tests/recovery_test.cc is
// built on these: arm `abort` at every registered serve-path site, kill the
// process mid-burst, and prove recovery loses nothing acknowledged.
//
//   Status DoAppend(...) {
//     FSIM_FAILPOINT("serve.wal.append");   // may return an injected error
//     ...
//   }
//
// Sites are compiled out entirely unless the build defines FSIM_FAILPOINTS
// (CMake option -DFSIM_FAILPOINTS=ON; release serving binaries carry zero
// overhead, the CI chaos leg turns it on — see docs/correctness.md). In an
// enabled build every pass through a site bumps a per-site hit counter,
// exposed like ValidatorCounters, whether or not the site is armed.
//
// Arm specs (Arm / ArmFromSpec / the FSIM_FAILPOINTS env var):
//   error            every hit returns Status::Internal
//   io-error         every hit returns Status::IOError
//   delay(<ms>)      every hit sleeps <ms> milliseconds, then continues
//   abort            every hit aborts the process
//   off              disarm
// An optional `<n>*` prefix limits the action to the first n triggering
// hits (e.g. "2*error"), and `<k>->` skips the first k hits before the
// action starts firing (e.g. "3->abort" aborts on the 4th hit). The env /
// CLI form is a semicolon-separated list: "serve.wal.append=1*io-error;
// serve.publish=delay(50)".
#ifndef FSIM_COMMON_FAILPOINT_H_
#define FSIM_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fsim {
namespace failpoint {

/// True when the build compiled failpoint sites in (FSIM_FAILPOINTS).
#ifdef FSIM_FAILPOINTS
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Arms site `name` with `spec` (grammar above). InvalidArgument on a
/// malformed spec. Arming is independent of whether any code path actually
/// passes through a site of that name.
Status Arm(std::string_view name, std::string_view spec);

/// Arms every `name=spec` entry of a semicolon-separated list. Stops at the
/// first malformed entry.
Status ArmFromSpec(std::string_view list);

/// Arms from the FSIM_FAILPOINTS environment variable (no-op when unset).
Status ArmFromEnv();

/// Disarms one site / all sites. Hit counters are preserved.
void Disarm(std::string_view name);
void DisarmAll();

/// Zeroes every hit counter and forgets unarmed registrations (tests).
void ResetCounters();

/// Hits recorded for `name` (0 if never passed).
uint64_t HitCount(std::string_view name);

/// All (site, hits) pairs sorted by name — every site that was armed or
/// passed through at least once this process.
std::vector<std::pair<std::string, uint64_t>> Snapshot();

/// The site evaluation behind FSIM_FAILPOINT: bumps the hit counter and
/// performs the armed action, returning the injected error if one fires.
/// Call through the macro so disabled builds compile the site out.
Status Hit(const char* name);

}  // namespace failpoint
}  // namespace fsim

// FSIM_FAILPOINT(name): in an FSIM_FAILPOINTS build, evaluates the site —
// delays delay the caller, aborts kill the process, and injected errors
// return from the enclosing function (which must return Status or
// Result<T>). Compiled out to nothing otherwise.
#ifdef FSIM_FAILPOINTS
#define FSIM_FAILPOINT(name)                                \
  do {                                                      \
    ::fsim::Status _fp_st = ::fsim::failpoint::Hit(name);   \
    if (!_fp_st.ok()) return _fp_st;                        \
  } while (0)
// FSIM_FAILPOINT_VOID(name): for void contexts — delays and aborts act,
// injected errors are swallowed (the site still counts the hit).
#define FSIM_FAILPOINT_VOID(name) \
  (void)::fsim::failpoint::Hit(name)
#else
#define FSIM_FAILPOINT(name) (void)0
#define FSIM_FAILPOINT_VOID(name) (void)0
#endif

#endif  // FSIM_COMMON_FAILPOINT_H_
