#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace fsim {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  auto render_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out->append(cell);
      if (c + 1 < cols) {
        out->append(width[c] - cell.size(), ' ');
        out->append("  ");
      }
    }
    out->push_back('\n');
  };

  std::string out;
  render_row(header_, &out);
  size_t total = 0;
  for (size_t c = 0; c < cols; ++c) total += width[c] + (c + 1 < cols ? 2 : 0);
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& r : rows_) render_row(r, &out);
  return out;
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace fsim
