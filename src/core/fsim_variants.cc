#include "core/fsim_variants.h"

#include "exact/bounded_simulation.h"
#include "exact/weak_simulation.h"

namespace fsim {

Result<FSimScores> ComputeFSimBounded(const Graph& query, const Graph& data,
                                      uint32_t k, const FSimConfig& config) {
  if (k < 1) {
    return Status::InvalidArgument("path bound k must be >= 1");
  }
  Graph closure = BoundedClosure(data, k);
  return ComputeFSim(query, closure, config);
}

Result<FSimScores> ComputeFSimWeak(
    const Graph& g1, const std::vector<uint8_t>& internal_mask1,
    const Graph& g2, const std::vector<uint8_t>& internal_mask2,
    const FSimConfig& config) {
  FSIM_ASSIGN_OR_RETURN(Graph closure1, WeakClosure(g1, internal_mask1));
  FSIM_ASSIGN_OR_RETURN(Graph closure2, WeakClosure(g2, internal_mask2));
  return ComputeFSim(closure1, closure2, config);
}

}  // namespace fsim
