#include "core/incremental_index.h"

#include <algorithm>

namespace fsim {

void IncrementalNeighborIndex::ClassifyInto(
    std::span<const NodeId> s1, std::span<const NodeId> s2,
    const NeighborIndexEnv& env, std::vector<NeighborRef>* out) const {
  for (uint32_t r = 0; r < s1.size(); ++r) {
    for (uint32_t c = 0; c < s2.size(); ++c) {
      const NodeId x = s1[r];
      const NodeId y = s2[c];
      if (need_compat_ &&
          !env.lsim.Compatible(env.g1.Label(x), env.g2.Label(y), theta_)) {
        continue;
      }
      const uint32_t idx = env.pair_index.Find(PairKey(x, y));
      // Absent pairs would look up 0.0, which never contributes to any
      // operator; omit them (the incremental engine maintains the full
      // θ-candidate set, so there is no pruned side table to tag into).
      if (idx == FlatPairMap::kNotFound) continue;
      out->push_back(NeighborRef{r, c, idx});
    }
  }
}

bool IncrementalNeighborIndex::Build(const NeighborIndexEnv& env,
                                     std::span<const uint64_t> keys,
                                     const FSimConfig& config) {
  enabled_ = false;
  const size_t n = keys.size();
  if (config.neighbor_index_budget_bytes == 0) return false;
  // Stay inside the untagged ref range shared with the batch index.
  if (n >= kNeighborRefPrunedTag) return false;

  need_compat_ = config.theta > 0.0;
  theta_ = config.theta;
  pin_diagonal_ = config.pin_diagonal;
  budget_bytes_ = config.neighbor_index_budget_bytes;

  // Budget gate against the pre-filter bound Σ |N±(u)|·|N±(v)| over both
  // directions (compatibility filtering only shrinks the real footprint).
  uint64_t max_entries = 0;
  for (uint64_t key : keys) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    if (pin_diagonal_ && u == v) continue;
    max_entries +=
        static_cast<uint64_t>(env.g1.OutDegree(u)) * env.g2.OutDegree(v);
    max_entries +=
        static_cast<uint64_t>(env.g1.InDegree(u)) * env.g2.InDegree(v);
  }
  const uint64_t meta_bytes = 2 * n * sizeof(SpanMeta);
  if (max_entries * sizeof(NeighborRef) + meta_bytes >
      config.neighbor_index_budget_bytes) {
    return false;
  }

  spans_.assign(2 * n, SpanMeta{});
  arena_.clear();
  freed_ = 0;
  restaged_spans_ = 0;
  for (size_t i = 0; i < n; ++i) {
    const NodeId u = PairFirst(keys[i]);
    const NodeId v = PairSecond(keys[i]);
    if (pin_diagonal_ && u == v) {
      // Pinned pairs are never evaluated and never change, so neither
      // direction span is needed (their dependents receive no pushes).
      continue;
    }
    for (int dir : {kOut, kIn}) {
      stage_.clear();
      if (dir == kOut) {
        ClassifyInto(env.g1.OutNeighbors(u), env.g2.OutNeighbors(v), env,
                     &stage_);
      } else {
        ClassifyInto(env.g1.InNeighbors(u), env.g2.InNeighbors(v), env,
                     &stage_);
      }
      SpanMeta& m = spans_[2 * i + dir];
      m.offset = arena_.size();
      m.size = static_cast<uint32_t>(stage_.size());
      m.capacity = m.size;
      arena_.insert(arena_.end(), stage_.begin(), stage_.end());
    }
  }
  enabled_ = true;
  return true;
}

void IncrementalNeighborIndex::Restage(size_t pair, int dir, NodeId u,
                                       NodeId v,
                                       const NeighborIndexEnv& env) {
  if (!enabled_) return;
  if (pin_diagonal_ && u == v) return;
  ++restaged_spans_;
  stage_.clear();
  if (dir == kOut) {
    ClassifyInto(env.g1.OutNeighbors(u), env.g2.OutNeighbors(v), env,
                 &stage_);
  } else {
    ClassifyInto(env.g1.InNeighbors(u), env.g2.InNeighbors(v), env, &stage_);
  }
  SpanMeta& m = spans_[2 * pair + dir];
  if (stage_.size() <= m.capacity) {
    std::copy(stage_.begin(), stage_.end(), arena_.begin() + m.offset);
    m.size = static_cast<uint32_t>(stage_.size());
    return;
  }
  // Outgrown: relocate to the arena tail with growth slack, so a pair whose
  // neighborhood keeps growing amortizes its relocations.
  freed_ += m.capacity;
  m.offset = arena_.size();
  m.size = static_cast<uint32_t>(stage_.size());
  m.capacity = m.size + m.size / 2 + 4;
  arena_.insert(arena_.end(), stage_.begin(), stage_.end());
  arena_.resize(arena_.size() + (m.capacity - m.size));
  if (freed_ > arena_.size() / 2 && freed_ > 4096) Compact();
  // The budget is a ceiling, not just a build-time gate: if live growth
  // (not reclaimable slack) exceeds it, drop the index entirely.
  if (MemoryBytes() > budget_bytes_) {
    Compact();
    if (MemoryBytes() > budget_bytes_) Disable();
  }
}

void IncrementalNeighborIndex::Disable() {
  enabled_ = false;
  std::vector<SpanMeta>().swap(spans_);
  std::vector<NeighborRef>().swap(arena_);
  std::vector<NeighborRef>().swap(stage_);
  freed_ = 0;
}

Status IncrementalNeighborIndex::Validate(size_t num_pairs) const {
  ValidatorCounters::Bump("IncrementalNeighborIndex::Validate");
  if (!enabled_) return Status::OK();
  if (spans_.size() != 2 * num_pairs) {
    return Status::Internal("incremental index holds " +
                            std::to_string(spans_.size()) + " spans for " +
                            std::to_string(num_pairs) + " pairs");
  }
  uint64_t capacity_total = 0;
  std::vector<std::pair<uint64_t, uint64_t>> extents;  // [offset, offset+cap)
  extents.reserve(spans_.size());
  for (size_t s = 0; s < spans_.size(); ++s) {
    const SpanMeta& m = spans_[s];
    if (m.size > m.capacity) {
      return Status::Internal("span " + std::to_string(s) + " has size " +
                              std::to_string(m.size) + " > capacity " +
                              std::to_string(m.capacity));
    }
    if (m.offset + m.capacity > arena_.size()) {
      return Status::Internal("span " + std::to_string(s) +
                              " extends past the arena");
    }
    capacity_total += m.capacity;
    if (m.capacity > 0) extents.emplace_back(m.offset, m.offset + m.capacity);
    uint64_t prev_key = 0;
    bool first = true;
    for (uint32_t k = 0; k < m.size; ++k) {
      const NeighborRef& entry = arena_[m.offset + k];
      if (entry.ref >= num_pairs) {
        return Status::Internal("span " + std::to_string(s) + " ref " +
                                std::to_string(entry.ref) +
                                " outside the maintained pairs");
      }
      const uint64_t key =
          (static_cast<uint64_t>(entry.row) << 32) | entry.col;
      if (!first && key <= prev_key) {
        return Status::Internal("span " + std::to_string(s) +
                                " not strictly (row, col)-sorted");
      }
      prev_key = key;
      first = false;
    }
  }
  // Slack accounting: every arena slot is owned by exactly one span or
  // counted in freed_; Restage relocations must keep this exact.
  if (capacity_total + freed_ != arena_.size()) {
    return Status::Internal(
        "arena slack accounting off: Σcapacity=" +
        std::to_string(capacity_total) + " + freed=" + std::to_string(freed_) +
        " != arena=" + std::to_string(arena_.size()));
  }
  std::sort(extents.begin(), extents.end());
  for (size_t k = 1; k < extents.size(); ++k) {
    if (extents[k].first < extents[k - 1].second) {
      return Status::Internal("arena spans overlap");
    }
  }
  return Status::OK();
}

void IncrementalNeighborIndex::Compact() {
  std::vector<NeighborRef> packed;
  packed.reserve(arena_.size() - freed_);
  for (SpanMeta& m : spans_) {
    const uint64_t offset = packed.size();
    packed.insert(packed.end(), arena_.begin() + m.offset,
                  arena_.begin() + m.offset + m.size);
    m.offset = offset;
    m.capacity = m.size;
  }
  arena_ = std::move(packed);
  freed_ = 0;
}

}  // namespace fsim
