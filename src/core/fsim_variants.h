// Fractional quantification of the k-hop simulation variants (bounded and
// weak simulation) — the paper's §6 future work, realized by the closure
// route its related-work discussion suggests: materialize the variant's
// step relation as a graph, then run the unmodified FSimχ engine on it.
//
//   FSim_bounded(u, v) = FSimχ(query, BoundedClosure(data, k))(u, v)
//   FSim_weak(u, v)    = FSimχ(WeakClosure(g1), WeakClosure(g2))(u, v)
//
// Both inherit every property of Definition 4 with respect to the closure
// semantics: P1/P2 hold relative to the exact bounded/weak relation
// (tests/extensions_test.cc has the property sweeps), and all engine
// optimizations (θ, upper-bound updating, parallelism) apply unchanged.
#ifndef FSIM_CORE_FSIM_VARIANTS_H_
#define FSIM_CORE_FSIM_VARIANTS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/fsim_config.h"
#include "core/fsim_engine.h"
#include "graph/graph.h"

namespace fsim {

/// Fractional bounded simulation (Fan et al. [5]): quantifies how nearly
/// each query node is bounded-simulated in `data` with path bound k >= 1.
/// The closure densifies quickly; intended for small k on sparse data.
Result<FSimScores> ComputeFSimBounded(const Graph& query, const Graph& data,
                                      uint32_t k, const FSimConfig& config);

/// Fractional weak simulation (Milner [3]): quantifies approximate weak
/// simulation where nodes marked internal act as τ-steps. Masks must match
/// the respective graphs (see exact/weak_simulation.h).
Result<FSimScores> ComputeFSimWeak(const Graph& g1,
                                   const std::vector<uint8_t>& internal_mask1,
                                   const Graph& g2,
                                   const std::vector<uint8_t>& internal_mask2,
                                   const FSimConfig& config);

}  // namespace fsim

#endif  // FSIM_CORE_FSIM_VARIANTS_H_
