// Configuration of the FSimχ computation framework (§3-§4). A config selects
// the simulation variant (which fixes the mapping/normalizing operators of
// Table 3), the weighting factors w+ / w-, the label function L(·), the two
// optimizations (label-constrained mapping θ, upper-bound updating α/β), the
// convergence policy and the degree of parallelism. Factory functions
// produce the SimRank and RoleSim configurations of §4.3.
#ifndef FSIM_CORE_FSIM_CONFIG_H_
#define FSIM_CORE_FSIM_CONFIG_H_

#include <cstdint>
#include <optional>

#include "exact/exact_simulation.h"
#include "label/label_similarity.h"

namespace fsim {

/// How the mapping operator Mχ selects node pairs from S1 x S2 (Table 3).
enum class MappingKind {
  /// fs: every x in S1 maps to its best compatible y (simple simulation).
  kMaxPerRow,
  /// fdp: injective mapping of min(|S1|,|S2|) nodes; vacuously perfect when
  /// S1 is empty (degree-preserving simulation).
  kInjectiveRow,
  /// fb: every x in S1 maps to its best y AND every y in S2 maps to its best
  /// x (bisimulation).
  kMaxBothSides,
  /// fbj: injective mapping from the smaller side into the larger;
  /// vacuously perfect only when both sides are empty (bijective
  /// simulation, RoleSim).
  kInjectiveSym,
  /// All pairs S1 x S2 (the SimRank configuration of §4.3).
  kProduct,
};

/// The normalizing operator Ωχ (Table 3).
enum class OmegaKind {
  kSizeS1,    // |S1|            (s, dp)
  kSumSizes,  // |S1| + |S2|     (b)
  kGeoMean,   // sqrt(|S1||S2|)  (bj)
  kMaxSize,   // max(|S1|,|S2|)  (RoleSim)
  kProduct,   // |S1| * |S2|     (SimRank)
};

/// How the injective operators realize the maximum mapping (C3 of
/// Theorem 1). The paper uses the greedy ½-approximate Hungarian [23];
/// kHungarian is the exact O(n^3) algorithm under which C3 (and hence the
/// simulation-definiteness proof) holds exactly.
enum class MatchingAlgo { kGreedy, kHungarian };

/// A (mapping, normalizing) operator pair.
struct OperatorConfig {
  MappingKind mapping = MappingKind::kInjectiveSym;
  OmegaKind omega = OmegaKind::kGeoMean;
};

/// How the iterate loop schedules pair evaluations across sweeps
/// (docs/performance.md "Active-set iteration"). The fixpoint is monotone
/// from the all-ones-shaped seed, so after the first few sweeps most pairs'
/// N±xN± inputs have stopped moving; the active-set driver evaluates only
/// the pairs with at least one changed input — found by walking the changed
/// pair's own CSR spans in reverse (the refs of the in-span are exactly the
/// pairs reading it through their out-direction, and vice versa) — and
/// carries every other score forward for free.
enum class ActiveSetMode {
  /// Full sweep every iteration (the pre-active-set behavior).
  kOff,
  /// Skip a pair only when none of its inputs changed at all. Provably
  /// bit-identical to the full sweep (identical inputs, deterministic
  /// operators), including the iteration count and convergence decision.
  kExact,
  /// Additionally skip a pair while its accumulated input influence — the
  /// sharpened Σ w± · c/Ωχ · |Δ input| bound shared with the incremental
  /// engine — stays below frontier_tolerance. Final scores stay within
  /// frontier_tolerance · (1 + w) / (1 - w) of the exact-mode result.
  kTolerance,
};

/// The Table 3 operators for a χ variant.
OperatorConfig OperatorsForVariant(SimVariant variant);

/// FSim^0 initialization (§3.3 and §4.3).
enum class InitKind {
  kLabelSim,            // L(u,v) — the paper's default
  kIndicatorDiagonal,   // 1 iff u == v (SimRank)
  kDegreeRatio,         // min(d+(u),d+(v)) / max(d+(u),d+(v)) (RoleSim)
  kOnes,                // 1 everywhere
};

/// The additive (1 - w+ - w-) * L(u,v) term of Equation 1/3.
enum class LabelTermKind {
  kLabelSim,  // L(u,v)
  kZero,      // 0 (SimRank: label-free)
  kOne,       // 1 (RoleSim: the β "decay" becomes an additive constant)
};

/// Which vectorized kernel level the dense engine may use
/// (core/simd/dispatch.h; docs/performance.md "Vectorized tile kernels").
/// A request above what the binary carries or the host supports clamps
/// down (kAvx512 -> kAvx2 -> scalar); every level produces bit-identical
/// s/b scores and 1e-12-identical dp/bj scores, so this is purely a
/// performance knob. The FSIM_SIMD environment variable
/// (off|avx2|avx512|auto) overrides the config value.
enum class SimdMode {
  kOff,     // scalar kernels only
  kAvx2,    // at most the AVX2 kernels
  kAvx512,  // at most the AVX-512 kernels
  kAuto,    // best compiled-in level the host supports (the default)
};

/// Full configuration of a ComputeFSim run.
struct FSimConfig {
  /// Simulation variant χ; fixes Mχ/Ωχ unless operator_override is set.
  SimVariant variant = SimVariant::kBijective;

  /// Weighting factors: w+ (out-neighbors) and w- (in-neighbors);
  /// 0 <= w+, 0 <= w-, w+ + w- < 1 (Equation 1). The paper's experiments
  /// use w+ = w- = 0.4 (i.e. w* = 0.2).
  double w_out = 0.4;
  double w_in = 0.4;

  /// Label function L(·): indicator, normalized edit distance or
  /// Jaro-Winkler (§3.2).
  LabelSimKind label_sim = LabelSimKind::kIndicator;

  /// Label-constrained mapping threshold θ (Remark 2): only pairs with
  /// L >= θ participate (θ=0: arbitrary mapping; θ=1: same label only).
  double theta = 0.0;

  /// Upper-bound updating (§3.4, Eq. 6): drop candidate pairs whose bound is
  /// <= beta and approximate their lookups by alpha * bound. The paper
  /// defaults to beta = 0.5 and alpha = 0.
  bool upper_bound = false;
  double alpha = 0.0;
  double beta = 0.5;

  /// Convergence: stop when max |FSim^k - FSim^(k-1)| < epsilon. The
  /// experiments terminate "when the values changed by less than 0.01".
  double epsilon = 0.01;

  /// Hard iteration cap; 0 uses the Corollary 1 bound
  /// ceil(log_{w+ + w-}(epsilon)).
  uint32_t max_iterations = 0;

  /// Worker threads for the per-pair update loop (§3.4 Parallelization).
  int num_threads = 1;

  InitKind init = InitKind::kLabelSim;
  LabelTermKind label_term = LabelTermKind::kLabelSim;
  MatchingAlgo matching = MatchingAlgo::kGreedy;

  /// Overrides the Table 3 operators (used by the SimRank/RoleSim
  /// configurations of §4.3).
  std::optional<OperatorConfig> operator_override;

  /// Keep FSim(u,u) pinned to 1 on every iteration (SimRank semantics; only
  /// meaningful for self-similarity runs).
  bool pin_diagonal = false;

  /// Record max-delta per iteration (for the Theorem 1 monotonicity tests).
  bool record_delta_history = false;

  /// Abort with InvalidArgument if the candidate-pair count would exceed
  /// this (memory safety valve).
  uint64_t pair_limit = 100'000'000;

  /// Memory budget for the pair-graph CSR neighbor index (bytes). The index
  /// materializes, per maintained pair, the label-compatible candidate pairs
  /// of N±(u) x N±(v) as direct score-array references, eliminating every
  /// per-lookup hash probe and label check from the iterate loop. When the
  /// estimated footprint exceeds the budget the engine silently falls back
  /// to hash lookups (identical scores, slower iterations). 0 disables the
  /// index.
  uint64_t neighbor_index_budget_bytes = 1ULL << 30;

  /// Iterate-loop scheduling (see ActiveSetMode). Requires the CSR neighbor
  /// index (its spans double as the reverse-dependency lists); when the
  /// index is not materialized the engine runs full sweeps regardless.
  /// kExact is the default: it is bit-identical to full sweeps and on
  /// converging workloads freezes most pairs after the first few
  /// iterations (FSimStats::active_pairs_history / frozen_fraction).
  ActiveSetMode active_set = ActiveSetMode::kExact;

  /// kTolerance only: a pair is re-evaluated once the accumulated influence
  /// of its skipped input changes exceeds this. Must be positive in
  /// tolerance mode; the induced error is bounded by
  /// frontier_tolerance * (1 + w) / (1 - w), w = w+ + w-.
  double frontier_tolerance = 1e-6;

  /// Frontiers holding at least this fraction of the maintained pairs are
  /// evaluated as plain full sweeps (dense frontiers are cheaper without
  /// the indirection); 0 forces full sweeps, 1 always uses the frontier
  /// path when the active set is engaged.
  double frontier_density_threshold = 0.5;

  /// Dependent marking — the reverse span walk per changed pair — costs
  /// about as much as re-evaluating the cheap (non-matching) operators, so
  /// the driver defers it until skipping can actually pay: marking turns
  /// on once at least this fraction of a sweep's evaluated pairs look
  /// freezable (delta == 0 in exact mode, delta <= frontier_tolerance in
  /// tolerance mode), and stays on. Until then iterations are plain full
  /// sweeps whose only extra cost is the per-pair freeze counter. 0 marks
  /// from the first iteration (tests use this to pin the frontier path).
  double active_set_activation_fraction = 0.125;

  /// Scheduler chunk length (pairs per chunk) for the iterate loop's full
  /// and frontier sweeps. Small enough that the work-stealing scheduler can
  /// rebalance around expensive pairs (large dp/bj matchings), large enough
  /// to amortize the per-chunk claim; 64 held up across the thread-count
  /// sweep in BENCH_fsim.json's tuning section.
  size_t iterate_grain = 64;

  /// Allow the packed 8-byte neighbor-index entry layout (16-bit row/col)
  /// when every relevant neighbor-list position (0..deg-1) fits in 16
  /// bits — halves the index memory on degree-bounded graphs. Graphs
  /// whose max degree exceeds 65536 in a weighted direction fall back to
  /// the 12-byte layout automatically; tests and benchmarks set this
  /// false to pin the wide layout.
  bool use_packed_neighbor_refs = true;

  /// Vectorized kernel ceiling for the dense engine (see SimdMode). The
  /// FSIM_SIMD environment variable takes precedence when set to a valid
  /// value; -DFSIM_SIMD_FORCE_SCALAR builds ignore both.
  SimdMode simd = SimdMode::kAuto;

  /// The effective operator pair.
  OperatorConfig operators() const {
    return operator_override ? *operator_override
                             : OperatorsForVariant(variant);
  }
};

/// The engines' shared iteration cap: config.max_iterations when set,
/// otherwise the Corollary 1 convergence bound ⌈log_{w+ + w-}(ε)⌉ (>= 1).
uint32_t FSimIterationBound(const FSimConfig& config);

/// §4.3: FSimχ configured to compute SimRank with decay factor c on a single
/// (label-free) graph: w+ = 0, w- = c, M = S1 x S2, Ω = |S1||S2|, L = 0,
/// FSim^0 = 1 iff u = v, diagonal pinned.
FSimConfig SimRankFSimConfig(double c = 0.8);

/// §4.3: FSimχ configured to compute RoleSim with decay β on an undirected
/// adaptation (Graph::AsUndirected): w+ = 1-β, w- = 0, bj-style injective
/// mapping with Ω = max(|S1|,|S2|) (RoleSim's own normalizer), L = 1,
/// FSim^0 = degree ratio.
FSimConfig RoleSimFSimConfig(double beta = 0.1);

}  // namespace fsim

#endif  // FSIM_CORE_FSIM_CONFIG_H_
