// Runtime CPU-feature detection for the vectorized kernel dispatch
// (core/simd/dispatch.h). Queried once per process; the kernel table is
// selected from these bits so a binary carrying AVX2/AVX-512 code paths
// (compiled per-file with -mavx2/-mavx512f, see CMakeLists.txt) never
// executes them on a host without the instructions.
#ifndef FSIM_CORE_SIMD_CPU_FEATURES_H_
#define FSIM_CORE_SIMD_CPU_FEATURES_H_

namespace fsim {
namespace simd {

/// The x86 vector-extension bits the kernel layer cares about. All false on
/// non-x86 builds (the scalar kernels are the only selectable level there).
struct FsimCpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512dq = false;
  bool avx512vl = false;

  /// The AVX2 kernels use VPGATHERDD-family gathers plus FMA-capable
  /// hardware (every AVX2 CPU ships FMA; gated anyway for correctness).
  bool Avx2Usable() const { return avx2 && fma; }
  /// The AVX-512 kernels use F (512-bit doubles, masked gathers), BW/DQ
  /// (byte mask moves, double comparisons into mask registers) and VL
  /// (256-bit index loads under EVEX).
  bool Avx512Usable() const {
    return avx512f && avx512bw && avx512dq && avx512vl;
  }
};

/// Host capabilities, probed once (thread-safe static init).
const FsimCpuFeatures& HostCpuFeatures();

}  // namespace simd
}  // namespace fsim

#endif  // FSIM_CORE_SIMD_CPU_FEATURES_H_
