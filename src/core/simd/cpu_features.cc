#include "core/simd/cpu_features.h"

namespace fsim {
namespace simd {

namespace {

FsimCpuFeatures Probe() {
  FsimCpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512dq = __builtin_cpu_supports("avx512dq");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
#endif
  return f;
}

}  // namespace

const FsimCpuFeatures& HostCpuFeatures() {
  static const FsimCpuFeatures features = Probe();
  return features;
}

}  // namespace simd
}  // namespace fsim
