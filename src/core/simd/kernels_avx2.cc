// AVX2 realization of the kernel table (core/simd/kernels.h). This file is
// the only AVX2 translation unit: CMake compiles it with -mavx2 (plus
// -ffp-contract=off so no source expression is silently fused), and the
// whole body is guarded on __AVX2__ so a build without the flag — non-x86
// targets, -DFSIM_SIMD_FORCE_SCALAR — degrades to a nullptr table that the
// dispatcher clamps to scalar.
//
// Bit-identity notes (the contract of kernels.h):
//  * maxima use VMAXPD only — exact and order-free on the non-negative
//    score domain, and masked-out gather lanes contribute +0.0, matching
//    the scalar `best = 0.0` seed;
//  * combine_row uses VMULPD + VADDPD in the scalar association
//    ((w+·o) + (w-·i)) + L; never VFMADD, whose single rounding would
//    diverge from the scalar tile path;
//  * |delta| is a sign-bit VANDPD; the horizontal max reduction is exact.
#include "core/simd/kernels.h"

#if defined(__AVX2__) && !defined(FSIM_SIMD_FORCE_SCALAR)

#include <immintrin.h>

#include <cmath>

namespace fsim {
namespace simd {

namespace {

constexpr uint32_t kNoEntry = ~0u;

/// Nibble -> 4-lane double mask (sign bit per 64-bit lane), the AVX2 form
/// of a work item's candidate bits: one lookup per 4-slot item, one
/// masked gather per item.
alignas(32) constexpr uint64_t kNibbleMask[16][4] = {
    {0, 0, 0, 0},       {~0ull, 0, 0, 0},
    {0, ~0ull, 0, 0},   {~0ull, ~0ull, 0, 0},
    {0, 0, ~0ull, 0},   {~0ull, 0, ~0ull, 0},
    {0, ~0ull, ~0ull, 0},   {~0ull, ~0ull, ~0ull, 0},
    {0, 0, 0, ~0ull},   {~0ull, 0, 0, ~0ull},
    {0, ~0ull, 0, ~0ull},   {~0ull, ~0ull, 0, ~0ull},
    {0, 0, ~0ull, ~0ull},   {~0ull, 0, ~0ull, ~0ull},
    {0, ~0ull, ~0ull, ~0ull},   {~0ull, ~0ull, ~0ull, ~0ull},
};

inline __m256d NibbleMask(uint32_t nibble) {
  return _mm256_load_pd(
      reinterpret_cast<const double*>(kNibbleMask[nibble]));
}

inline double HorizontalMax(__m256d v) {
  const __m256d swapped = _mm256_permute2f128_pd(v, v, 1);
  const __m256d m = _mm256_max_pd(v, swapped);
  const __m256d m2 = _mm256_max_pd(m, _mm256_permute_pd(m, 0x5));
  return _mm256_cvtsd_f64(m2);
}

template <bool kColmax>
void TileRowPassImpl(const PanelWorkItem* items, size_t n_items,
                     const int32_t* ids, const double* prev_row, double* acc,
                     double* colmax) {
  const __m256d zero = _mm256_setzero_pd();
  uint32_t cur = kNoEntry;
  __m256d best = zero;
  for (size_t k = 0; k < n_items; ++k) {
    const PanelWorkItem it = items[k];
    if (it.entry != cur) {
      if (cur != kNoEntry) {
        const double b = HorizontalMax(best);
        if (b > 0.0) acc[cur] += b;
      }
      cur = it.entry;
      best = zero;
    }
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(ids + it.slot));
    const __m256d mask = NibbleMask(it.mask);
    const __m256d g = _mm256_mask_i32gather_pd(zero, prev_row, idx, mask, 8);
    best = _mm256_max_pd(best, g);
    if constexpr (kColmax) {
      double* c = colmax + it.slot;
      _mm256_store_pd(c, _mm256_max_pd(_mm256_load_pd(c), g));
    }
  }
  if (cur != kNoEntry) {
    const double b = HorizontalMax(best);
    if (b > 0.0) acc[cur] += b;
  }
}

void TileRowPass(const PanelWorkItem* items, size_t n_items,
                 const int32_t* ids, const double* prev_row, double* acc) {
  TileRowPassImpl<false>(items, n_items, ids, prev_row, acc, nullptr);
}

void TileRowPassColmax(const PanelWorkItem* items, size_t n_items,
                       const int32_t* ids, const double* prev_row,
                       double* acc, double* colmax) {
  TileRowPassImpl<true>(items, n_items, ids, prev_row, acc, colmax);
}

void NormalizeTile(const double* sums, const uint32_t* sizes, size_t n,
                   uint32_t omega_kind, double m1, double* out) {
  const __m256d vm1 = _mm256_set1_pd(m1);
  size_t t = 0;
  // Per-kind vector loops: IEEE convert/add/mul/sqrt/divide are per-lane
  // identical to the scalar OmegaValue expression (kernels.h contract).
  switch (omega_kind) {
    case 0:  // kSizeS1
      for (; t + 4 <= n; t += 4) {
        _mm256_storeu_pd(out + t,
                         _mm256_div_pd(_mm256_loadu_pd(sums + t), vm1));
      }
      for (; t < n; ++t) out[t] = sums[t] / m1;
      return;
    case 1:  // kSumSizes
      for (; t + 4 <= n; t += 4) {
        const __m256d n2 = _mm256_cvtepi32_pd(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(sizes + t)));
        _mm256_storeu_pd(out + t, _mm256_div_pd(_mm256_loadu_pd(sums + t),
                                                _mm256_add_pd(vm1, n2)));
      }
      for (; t < n; ++t) {
        out[t] = sums[t] / (m1 + static_cast<double>(sizes[t]));
      }
      return;
    case 2:  // kGeoMean
      for (; t + 4 <= n; t += 4) {
        const __m256d n2 = _mm256_cvtepi32_pd(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(sizes + t)));
        _mm256_storeu_pd(
            out + t,
            _mm256_div_pd(_mm256_loadu_pd(sums + t),
                          _mm256_sqrt_pd(_mm256_mul_pd(vm1, n2))));
      }
      for (; t < n; ++t) {
        out[t] = sums[t] / std::sqrt(m1 * static_cast<double>(sizes[t]));
      }
      return;
    case 3:  // kMaxSize
      for (; t + 4 <= n; t += 4) {
        const __m256d n2 = _mm256_cvtepi32_pd(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(sizes + t)));
        _mm256_storeu_pd(out + t, _mm256_div_pd(_mm256_loadu_pd(sums + t),
                                                _mm256_max_pd(vm1, n2)));
      }
      for (; t < n; ++t) {
        const double n2 = static_cast<double>(sizes[t]);
        out[t] = sums[t] / (n2 > m1 ? n2 : m1);
      }
      return;
    default:  // kProduct
      for (; t + 4 <= n; t += 4) {
        const __m256d n2 = _mm256_cvtepi32_pd(_mm_loadu_si128(
            reinterpret_cast<const __m128i*>(sizes + t)));
        _mm256_storeu_pd(out + t, _mm256_div_pd(_mm256_loadu_pd(sums + t),
                                                _mm256_mul_pd(vm1, n2)));
      }
      for (; t < n; ++t) {
        out[t] = sums[t] / (m1 * static_cast<double>(sizes[t]));
      }
      return;
  }
}

void CombineRow(const double* out_scores, const double* in_scores, double wo,
                double wi, const double* term_base, const int32_t* labels2,
                const double* prev_row, double* curr_row, size_t n,
                double* max_delta) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d vwo = _mm256_set1_pd(wo);
  const __m256d vwi = _mm256_set1_pd(wi);
  const __m256d abs_mask = _mm256_castsi256_pd(
      _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFll));
  __m256d vdelta = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d o =
        out_scores ? _mm256_mul_pd(vwo, _mm256_loadu_pd(out_scores + i))
                   : zero;
    const __m256d in =
        in_scores ? _mm256_mul_pd(vwi, _mm256_loadu_pd(in_scores + i))
                  : zero;
    __m256d term = zero;
    if (term_base) {
      const __m128i idx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(labels2 + i));
      term = _mm256_i32gather_pd(term_base, idx, 8);
    }
    const __m256d value = _mm256_add_pd(_mm256_add_pd(o, in), term);
    _mm256_storeu_pd(curr_row + i, value);
    const __m256d d = _mm256_and_pd(
        abs_mask, _mm256_sub_pd(value, _mm256_loadu_pd(prev_row + i)));
    vdelta = _mm256_max_pd(vdelta, d);
  }
  double delta = HorizontalMax(vdelta);
  for (; i < n; ++i) {
    const double o = out_scores ? wo * out_scores[i] : 0.0;
    const double in = in_scores ? wi * in_scores[i] : 0.0;
    const double term = term_base ? term_base[labels2[i]] : 0.0;
    const double value = (o + in) + term;
    curr_row[i] = value;
    const double d = std::abs(value - prev_row[i]);
    if (d > delta) delta = d;
  }
  if (delta > *max_delta) *max_delta = delta;
}

void Fill(double* dst, size_t n, double value) {
  const __m256d v = _mm256_set1_pd(value);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) _mm256_storeu_pd(dst + i, v);
  for (; i < n; ++i) dst[i] = value;
}

void GatherRow(const double* base, const int32_t* idx, size_t n,
               double* dst) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vidx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(idx + i));
    _mm256_storeu_pd(dst + i, _mm256_i32gather_pd(base, vidx, 8));
  }
  for (; i < n; ++i) dst[i] = base[idx[i]];
}

void DegreeRatioRow(double d1, const double* d2, size_t n, double* dst) {
  const __m256d vd1 = _mm256_set1_pd(d1);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d b = _mm256_loadu_pd(d2 + i);
    const __m256d mn = _mm256_min_pd(vd1, b);
    const __m256d mx = _mm256_max_pd(vd1, b);
    // Degrees are non-negative, so mx == 0 iff both degrees are 0 — the
    // scalar both-zero -> 1.0 convention; elsewhere IEEE division matches
    // the scalar quotient bit-for-bit (the 0/0 NaN lanes are blended away).
    const __m256d ratio = _mm256_div_pd(mn, mx);
    const __m256d both_zero = _mm256_cmp_pd(mx, zero, _CMP_EQ_OQ);
    _mm256_storeu_pd(dst + i, _mm256_blendv_pd(ratio, ones, both_zero));
  }
  for (; i < n; ++i) {
    const double b = d2[i];
    if (d1 == 0.0 && b == 0.0) {
      dst[i] = 1.0;
    } else {
      const double mn = d1 < b ? d1 : b;
      const double mx = d1 < b ? b : d1;
      dst[i] = mn / mx;
    }
  }
}

size_t FindFirstGe(const double* vals, size_t n, double threshold) {
  const __m256d thr = _mm256_set1_pd(threshold);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    const int m =
        _mm256_movemask_pd(_mm256_cmp_pd(v, thr, _CMP_GE_OQ));
    if (m != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(m)));
    }
  }
  for (; i < n; ++i) {
    if (vals[i] >= threshold) return i;
  }
  return n;
}

}  // namespace

const SimdKernels* Avx2Kernels() {
  static const SimdKernels kernels = {
      SimdLevel::kAvx2, &TileRowPass,    &TileRowPassColmax,
      &NormalizeTile,   &CombineRow,     &Fill,
      &GatherRow,       &DegreeRatioRow, &FindFirstGe,
  };
  return &kernels;
}

}  // namespace simd
}  // namespace fsim

#else  // !__AVX2__ || FSIM_SIMD_FORCE_SCALAR

namespace fsim {
namespace simd {

const SimdKernels* Avx2Kernels() { return nullptr; }

}  // namespace simd
}  // namespace fsim

#endif
