// AVX-512 realization of the kernel table (core/simd/kernels.h). Compiled
// per-file with -mavx512f -mavx512bw -mavx512dq -mavx512vl (plus
// -ffp-contract=off); guarded so any build missing those flags degrades to
// a nullptr table the dispatcher clamps down past.
//
// The row pass uses the VL subset at 256-bit width: one PanelWorkItem
// nibble is four panel slots, one __mmask8 (low four bits), one 256-bit
// masked gather — the 4-slot item granularity keeps every gather dense on
// sparse class runs (see kernels.h), and the mask feeds the gather
// directly with no LUT. The flat kernels (combine, seeding, normalize,
// prescan) run full 512-bit. Bit-identity follows the same contract as
// the AVX2 file: VMAXPD only for maxima (+0.0 masked lanes = scalar
// seed), VMULPD + VADDPD in scalar association for combine_row, never
// VFMADD.
#include "core/simd/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__) && !defined(FSIM_SIMD_FORCE_SCALAR)

#include <immintrin.h>

#include <cmath>

namespace fsim {
namespace simd {

namespace {

constexpr uint32_t kNoEntry = ~0u;

inline double HorizontalMax256(__m256d v) {
  const __m256d swapped = _mm256_permute2f128_pd(v, v, 1);
  const __m256d m = _mm256_max_pd(v, swapped);
  const __m256d m2 = _mm256_max_pd(m, _mm256_permute_pd(m, 0x5));
  return _mm256_cvtsd_f64(m2);
}

template <bool kColmax>
void TileRowPassImpl(const PanelWorkItem* items, size_t n_items,
                     const int32_t* ids, const double* prev_row, double* acc,
                     double* colmax) {
  const __m256d zero = _mm256_setzero_pd();
  uint32_t cur = kNoEntry;
  __m256d best = zero;
  for (size_t k = 0; k < n_items; ++k) {
    const PanelWorkItem it = items[k];
    if (it.entry != cur) {
      if (cur != kNoEntry) {
        const double b = HorizontalMax256(best);
        if (b > 0.0) acc[cur] += b;
      }
      cur = it.entry;
      best = zero;
    }
    const __mmask8 m = static_cast<__mmask8>(it.mask);
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(ids + it.slot));
    const __m256d g = _mm256_mmask_i32gather_pd(zero, m, idx, prev_row, 8);
    best = _mm256_max_pd(best, g);
    if constexpr (kColmax) {
      double* c = colmax + it.slot;
      _mm256_store_pd(c, _mm256_max_pd(_mm256_load_pd(c), g));
    }
  }
  if (cur != kNoEntry) {
    const double b = HorizontalMax256(best);
    if (b > 0.0) acc[cur] += b;
  }
}

void TileRowPass(const PanelWorkItem* items, size_t n_items,
                 const int32_t* ids, const double* prev_row, double* acc) {
  TileRowPassImpl<false>(items, n_items, ids, prev_row, acc, nullptr);
}

void TileRowPassColmax(const PanelWorkItem* items, size_t n_items,
                       const int32_t* ids, const double* prev_row,
                       double* acc, double* colmax) {
  TileRowPassImpl<true>(items, n_items, ids, prev_row, acc, colmax);
}

void NormalizeTile(const double* sums, const uint32_t* sizes, size_t n,
                   uint32_t omega_kind, double m1, double* out) {
  const __m512d vm1 = _mm512_set1_pd(m1);
  size_t t = 0;
  // Per-kind vector loops: IEEE convert/add/mul/sqrt/divide are per-lane
  // identical to the scalar OmegaValue expression (kernels.h contract).
  switch (omega_kind) {
    case 0:  // kSizeS1
      for (; t + 8 <= n; t += 8) {
        _mm512_storeu_pd(out + t,
                         _mm512_div_pd(_mm512_loadu_pd(sums + t), vm1));
      }
      for (; t < n; ++t) out[t] = sums[t] / m1;
      return;
    case 1:  // kSumSizes
      for (; t + 8 <= n; t += 8) {
        const __m512d n2 = _mm512_cvtepi32_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(sizes + t)));
        _mm512_storeu_pd(out + t, _mm512_div_pd(_mm512_loadu_pd(sums + t),
                                                _mm512_add_pd(vm1, n2)));
      }
      for (; t < n; ++t) {
        out[t] = sums[t] / (m1 + static_cast<double>(sizes[t]));
      }
      return;
    case 2:  // kGeoMean
      for (; t + 8 <= n; t += 8) {
        const __m512d n2 = _mm512_cvtepi32_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(sizes + t)));
        _mm512_storeu_pd(
            out + t,
            _mm512_div_pd(_mm512_loadu_pd(sums + t),
                          _mm512_sqrt_pd(_mm512_mul_pd(vm1, n2))));
      }
      for (; t < n; ++t) {
        out[t] = sums[t] / std::sqrt(m1 * static_cast<double>(sizes[t]));
      }
      return;
    case 3:  // kMaxSize
      for (; t + 8 <= n; t += 8) {
        const __m512d n2 = _mm512_cvtepi32_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(sizes + t)));
        _mm512_storeu_pd(out + t, _mm512_div_pd(_mm512_loadu_pd(sums + t),
                                                _mm512_max_pd(vm1, n2)));
      }
      for (; t < n; ++t) {
        const double n2 = static_cast<double>(sizes[t]);
        out[t] = sums[t] / (n2 > m1 ? n2 : m1);
      }
      return;
    default:  // kProduct
      for (; t + 8 <= n; t += 8) {
        const __m512d n2 = _mm512_cvtepi32_pd(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(sizes + t)));
        _mm512_storeu_pd(out + t, _mm512_div_pd(_mm512_loadu_pd(sums + t),
                                                _mm512_mul_pd(vm1, n2)));
      }
      for (; t < n; ++t) {
        out[t] = sums[t] / (m1 * static_cast<double>(sizes[t]));
      }
      return;
  }
}

void CombineRow(const double* out_scores, const double* in_scores, double wo,
                double wi, const double* term_base, const int32_t* labels2,
                const double* prev_row, double* curr_row, size_t n,
                double* max_delta) {
  const __m512d zero = _mm512_setzero_pd();
  const __m512d vwo = _mm512_set1_pd(wo);
  const __m512d vwi = _mm512_set1_pd(wi);
  __m512d vdelta = zero;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d o =
        out_scores ? _mm512_mul_pd(vwo, _mm512_loadu_pd(out_scores + i))
                   : zero;
    const __m512d in =
        in_scores ? _mm512_mul_pd(vwi, _mm512_loadu_pd(in_scores + i))
                  : zero;
    __m512d term = zero;
    if (term_base) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(labels2 + i));
      term = _mm512_i32gather_pd(idx, term_base, 8);
    }
    const __m512d value = _mm512_add_pd(_mm512_add_pd(o, in), term);
    _mm512_storeu_pd(curr_row + i, value);
    const __m512d d =
        _mm512_abs_pd(_mm512_sub_pd(value, _mm512_loadu_pd(prev_row + i)));
    vdelta = _mm512_max_pd(vdelta, d);
  }
  double delta = _mm512_reduce_max_pd(vdelta);
  for (; i < n; ++i) {
    const double o = out_scores ? wo * out_scores[i] : 0.0;
    const double in = in_scores ? wi * in_scores[i] : 0.0;
    const double term = term_base ? term_base[labels2[i]] : 0.0;
    const double value = (o + in) + term;
    curr_row[i] = value;
    const double d = std::abs(value - prev_row[i]);
    if (d > delta) delta = d;
  }
  if (delta > *max_delta) *max_delta = delta;
}

void Fill(double* dst, size_t n, double value) {
  const __m512d v = _mm512_set1_pd(value);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm512_storeu_pd(dst + i, v);
  for (; i < n; ++i) dst[i] = value;
}

void GatherRow(const double* base, const int32_t* idx, size_t n,
               double* dst) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(idx + i));
    _mm512_storeu_pd(dst + i, _mm512_i32gather_pd(vidx, base, 8));
  }
  for (; i < n; ++i) dst[i] = base[idx[i]];
}

void DegreeRatioRow(double d1, const double* d2, size_t n, double* dst) {
  const __m512d vd1 = _mm512_set1_pd(d1);
  const __m512d zero = _mm512_setzero_pd();
  const __m512d ones = _mm512_set1_pd(1.0);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d b = _mm512_loadu_pd(d2 + i);
    const __m512d mn = _mm512_min_pd(vd1, b);
    const __m512d mx = _mm512_max_pd(vd1, b);
    // mx == 0 iff both degrees are zero (degrees are non-negative): those
    // lanes take the scalar 1.0 convention, the rest the exact IEEE
    // quotient.
    const __m512d ratio = _mm512_div_pd(mn, mx);
    const __mmask8 both_zero = _mm512_cmp_pd_mask(mx, zero, _CMP_EQ_OQ);
    _mm512_storeu_pd(dst + i, _mm512_mask_mov_pd(ratio, both_zero, ones));
  }
  for (; i < n; ++i) {
    const double b = d2[i];
    if (d1 == 0.0 && b == 0.0) {
      dst[i] = 1.0;
    } else {
      const double mn = d1 < b ? d1 : b;
      const double mx = d1 < b ? b : d1;
      dst[i] = mn / mx;
    }
  }
}

size_t FindFirstGe(const double* vals, size_t n, double threshold) {
  const __m512d thr = _mm512_set1_pd(threshold);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 m = _mm512_cmp_pd_mask(_mm512_loadu_pd(vals + i), thr,
                                          _CMP_GE_OQ);
    if (m != 0) {
      return i + static_cast<size_t>(
                     __builtin_ctz(static_cast<unsigned>(m)));
    }
  }
  for (; i < n; ++i) {
    if (vals[i] >= threshold) return i;
  }
  return n;
}

}  // namespace

const SimdKernels* Avx512Kernels() {
  static const SimdKernels kernels = {
      SimdLevel::kAvx512, &TileRowPass,    &TileRowPassColmax,
      &NormalizeTile,     &CombineRow,     &Fill,
      &GatherRow,         &DegreeRatioRow, &FindFirstGe,
  };
  return &kernels;
}

}  // namespace simd
}  // namespace fsim

#else  // missing AVX-512 subset || FSIM_SIMD_FORCE_SCALAR

namespace fsim {
namespace simd {

const SimdKernels* Avx512Kernels() { return nullptr; }

}  // namespace simd
}  // namespace fsim

#endif
