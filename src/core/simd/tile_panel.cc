#include "core/simd/tile_panel.h"

#include <algorithm>

#include "common/check.h"

namespace fsim {
namespace simd {

namespace {

/// A class-contiguous candidate run in slot space, recorded at panel-fill
/// time so the per-class work lists can be derived without re-walking the
/// neighborhoods. Runs are recorded in ascending slot order.
struct SlotRun {
  LabelId label;
  uint32_t slot_begin;
  uint32_t slot_end;
  uint16_t entry;
};

template <typename Vec>
size_t CapacityBytes(const Vec& v) {
  return v.capacity() * sizeof(typename Vec::value_type);
}

}  // namespace

size_t TilePanel::MemoryBytes() const {
  return CapacityBytes(ids) + CapacityBytes(inv) + CapacityBytes(entry_off) +
         CapacityBytes(sizes) + CapacityBytes(items) +
         CapacityBytes(class_off);
}

size_t TilePanelSet::MemoryBytes() const {
  size_t total = tiles.capacity() * sizeof(TilePanel);
  for (const TilePanel& t : tiles) total += t.MemoryBytes();
  return total;
}

TilePanelSet BuildTilePanelSet(
    size_t n2, size_t tile_width, size_t num_classes,
    const ClassCompatView& compat, bool with_inv,
    const std::function<GroupedNeighborhood(NodeId)>& neighborhood) {
  FSIM_CHECK(tile_width > 0);
  TilePanelSet set;
  set.tiles.reserve((n2 + tile_width - 1) / tile_width);
  std::vector<SlotRun> runs;
  for (size_t vb = 0; vb < n2; vb += tile_width) {
    const size_t v_hi = std::min(n2, vb + tile_width);
    TilePanel panel;
    panel.vb = static_cast<uint32_t>(vb);
    panel.entries = static_cast<uint32_t>(v_hi - vb);
    panel.entry_off.resize(panel.entries + 1);
    panel.sizes.resize(panel.entries);
    runs.clear();
    uint32_t slot = 0;
    for (size_t v = vb; v < v_hi; ++v) {
      const uint16_t entry = static_cast<uint16_t>(v - vb);
      panel.entry_off[entry] = slot;
      const GroupedNeighborhood s2 = neighborhood(static_cast<NodeId>(v));
      panel.sizes[entry] = static_cast<uint32_t>(s2.size);
      for (const ClassGroup& g : s2.groups) {
        runs.push_back({g.label, slot + g.begin, slot + g.end, entry});
      }
      for (size_t k = 0; k < s2.size; ++k) {
        panel.ids.push_back(static_cast<int32_t>(s2.nodes[k]));
      }
      slot += static_cast<uint32_t>(s2.size);
      // Pad the entry to a nibble boundary so no work item straddles two
      // entries; pad ids are 0 (safe to gather, never in a mask).
      while ((slot & 3u) != 0u) {
        panel.ids.push_back(0);
        ++slot;
      }
      if (with_inv) {
        // Inverse of the grouped permutation: the candidate at original
        // position j lives at slot inv[entry_off + j]. Pads map to
        // themselves (never read; kept in-range for the debug asserts).
        panel.inv.resize(slot);
        const uint32_t sb = panel.entry_off[entry];
        for (size_t k = 0; k < s2.size; ++k) {
          panel.inv[sb + s2.pos[k]] = sb + static_cast<uint32_t>(k);
        }
        for (uint32_t j = sb + static_cast<uint32_t>(s2.size); j < slot; ++j) {
          panel.inv[j] = j;
        }
      }
    }
    panel.entry_off[panel.entries] = slot;
    set.max_slots = std::max(set.max_slots, slot);

    // Per-class work lists: every nibble of every θ-compatible run, with
    // the nibble's candidate bits merged across runs (runs of one entry can
    // share a boundary nibble; entries cannot, thanks to the padding).
    panel.class_off.resize(num_classes + 1);
    for (size_t a = 0; a < num_classes; ++a) {
      panel.class_off[a] = panel.items.size();
      for (const SlotRun& run : runs) {
        if (run.slot_begin == run.slot_end) continue;
        if (!compat.Compatible(static_cast<LabelId>(a), run.label)) continue;
        for (uint32_t nib = run.slot_begin & ~3u; nib < run.slot_end;
             nib += 4) {
          const uint32_t lo = std::max(nib, run.slot_begin) - nib;
          const uint32_t hi = std::min(nib + 4, run.slot_end) - nib;
          const uint8_t bits =
              static_cast<uint8_t>(((1u << hi) - 1u) & ~((1u << lo) - 1u));
          if (!panel.items.empty() && panel.items.back().slot == nib &&
              panel.items.size() > panel.class_off[a]) {
            panel.items.back().mask |= bits;
          } else {
            panel.items.push_back({nib, run.entry, bits, 0});
          }
        }
      }
    }
    panel.class_off[num_classes] = panel.items.size();
    set.tiles.push_back(std::move(panel));
  }
  return set;
}

}  // namespace simd
}  // namespace fsim
