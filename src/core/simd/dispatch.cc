#include "core/simd/dispatch.h"

#include <cstdlib>

#include "core/simd/cpu_features.h"
#include "obs/metrics.h"

namespace fsim {
namespace simd {

namespace {

#ifndef FSIM_SIMD_FORCE_SCALAR

/// Best level that is compiled into this binary AND usable on this host,
/// capped at `ceiling`. The scalar kernels are always available.
SimdLevel BestAvailable(SimdLevel ceiling) {
  const FsimCpuFeatures& host = HostCpuFeatures();
  if (ceiling >= SimdLevel::kAvx512 && Avx512Kernels() != nullptr &&
      host.Avx512Usable()) {
    return SimdLevel::kAvx512;
  }
  if (ceiling >= SimdLevel::kAvx2 && Avx2Kernels() != nullptr &&
      host.Avx2Usable()) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kScalar;
}

SimdLevel CeilingFor(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff:
      return SimdLevel::kScalar;
    case SimdMode::kAvx2:
      return SimdLevel::kAvx2;
    case SimdMode::kAvx512:
    case SimdMode::kAuto:
      return SimdLevel::kAvx512;
  }
  return SimdLevel::kScalar;
}

#endif  // FSIM_SIMD_FORCE_SCALAR

void PublishLevel(SimdLevel level) {
  static obs::Gauge* gauge = obs::Registry::Default().GetGauge(
      "fsim_simd_level",
      "Resolved vectorized kernel level (0=scalar, 1=avx2, 2=avx512)");
  gauge->Set(static_cast<double>(static_cast<uint8_t>(level)));
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "off";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "off";
}

bool ParseSimdMode(std::string_view text, SimdMode* out) {
  if (text == "off" || text == "scalar") {
    *out = SimdMode::kOff;
  } else if (text == "avx2") {
    *out = SimdMode::kAvx2;
  } else if (text == "avx512") {
    *out = SimdMode::kAvx512;
  } else if (text == "auto") {
    *out = SimdMode::kAuto;
  } else {
    return false;
  }
  return true;
}

SimdLevel ResolveSimdLevel(SimdMode config_mode) {
#ifdef FSIM_SIMD_FORCE_SCALAR
  (void)config_mode;
  PublishLevel(SimdLevel::kScalar);
  return SimdLevel::kScalar;
#else
  SimdMode mode = config_mode;
  if (const char* env = std::getenv("FSIM_SIMD")) {
    SimdMode env_mode;
    if (ParseSimdMode(env, &env_mode)) mode = env_mode;
  }
  const SimdLevel level = BestAvailable(CeilingFor(mode));
  PublishLevel(level);
  return level;
#endif
}

const SimdKernels& KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx512:
      if (const SimdKernels* k = Avx512Kernels()) return *k;
      break;
    case SimdLevel::kAvx2:
      if (const SimdKernels* k = Avx2Kernels()) return *k;
      break;
    case SimdLevel::kScalar:
      break;
  }
  return ScalarKernels();
}

}  // namespace simd
}  // namespace fsim
