// Precomputed SoA candidate panels for the vectorized tile row pass
// (core/simd/kernels.h). The dense engine's tile operators evaluate a
// fixed S1 row set against a tile of right neighborhoods s2s[t]; the
// grouped views of g2 are iteration-invariant, so ComputeFSimDense builds
// one TilePanelSet per direction up front and every (row, tile) evaluation
// reduces to walking a per-class work list of masked 4-slot gathers.
//
// Layout per tile panel:
//  * slot space — tile entries concatenated, each entry's candidates in
//    the grouped (class, id) order, padded to a multiple of 4 slots so an
//    entry never shares a work-item nibble with its neighbor and each
//    nibble's 4 doubles in a 64-byte-aligned scratch panel are one aligned
//    32-byte vector. Pad slots carry id 0 (a safe gather target) and never
//    appear in any work-item mask.
//  * ids[slot] — the candidate's g2 node id (int32; the pair_limit keeps
//    n2 < 2^31), i.e. the gather index into a previous-score row.
//  * inv[entry_off[t] + j] — the slot holding entry t's candidate at
//    position j of v's original id-sorted neighbor list (the inverse of
//    the grouped permutation). The both-sides finalize reads the column
//    maxima through inv to reproduce the scalar path's position-ascending
//    summation order without a scatter (only built when with_inv).
//  * WorkList(a) — for S1 row class a, the compacted PanelWorkItem list
//    covering exactly the nibbles with >= 1 θ-compatible candidate, in
//    ascending slot (hence ascending entry) order. The 64-at-a-time
//    compatibility test against the LabelClassTable bitsets happens here,
//    once per run, instead of per row in the iterate loop.
#ifndef FSIM_CORE_SIMD_TILE_PANEL_H_
#define FSIM_CORE_SIMD_TILE_PANEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "core/operators.h"
#include "core/simd/kernels.h"

namespace fsim {
namespace simd {

/// One v-tile's candidate panel. See the file comment for the layout.
struct TilePanel {
  uint32_t vb = 0;       // first g2 node of the tile
  uint32_t entries = 0;  // tile entries (nodes vb .. vb + entries - 1)

  AlignedVector<int32_t> ids;
  AlignedVector<uint32_t> inv;
  /// Per entry t: first slot, always a multiple of 4; entry_off[entries]
  /// is the panel's slot count (the scratch colmax panel length).
  std::vector<uint32_t> entry_off;
  /// Per entry t: real candidate count |N±(vb + t)| (slots beyond
  /// entry_off[t] + sizes[t] are padding).
  std::vector<uint32_t> sizes;

  AlignedVector<PanelWorkItem> items;
  std::vector<size_t> class_off;  // per class: item range in `items`

  std::span<const PanelWorkItem> WorkList(LabelId a) const {
    return {items.data() + class_off[a], class_off[a + 1] - class_off[a]};
  }
  uint32_t SlotCount() const { return entry_off[entries]; }

  size_t MemoryBytes() const;
};

/// All tiles of one direction, plus the scratch sizing shared by them.
struct TilePanelSet {
  std::vector<TilePanel> tiles;
  uint32_t max_slots = 0;  // max SlotCount() over tiles (colmax scratch)

  size_t MemoryBytes() const;
};

/// Builds the panels for g2 nodes [0, n2) in tiles of `tile_width`.
/// `neighborhood(v)` returns the direction's grouped view of N±(v) (the
/// DenseIndex GroupedAdjacency lookup); `with_inv` materializes the inv
/// panel (needed only by the both-sides operator). Work lists are built
/// for classes [0, num_classes) against `compat`.
TilePanelSet BuildTilePanelSet(
    size_t n2, size_t tile_width, size_t num_classes,
    const ClassCompatView& compat, bool with_inv,
    const std::function<GroupedNeighborhood(NodeId)>& neighborhood);

}  // namespace simd
}  // namespace fsim

#endif  // FSIM_CORE_SIMD_TILE_PANEL_H_
