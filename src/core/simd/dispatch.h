// Runtime selection of the vectorized kernel level (core/simd/kernels.h).
//
// Precedence, resolved per ComputeFSimDense run (and once for the
// process-wide consumers that have no config, like TopKInto):
//   1. -DFSIM_SIMD_FORCE_SCALAR (build flag): always scalar.
//   2. FSIM_SIMD environment variable: off | avx2 | avx512 | auto
//      (invalid values are ignored).
//   3. FSimConfig::simd (default kAuto).
// The requested ceiling then clamps down to the best level that is both
// compiled into this binary (kernel table non-null) and usable on the host
// (HostCpuFeatures), so requesting avx512 on an AVX2-only machine runs the
// AVX2 kernels and a portable build runs scalar everywhere.
#ifndef FSIM_CORE_SIMD_DISPATCH_H_
#define FSIM_CORE_SIMD_DISPATCH_H_

#include <string_view>

#include "core/fsim_config.h"
#include "core/simd/kernels.h"

namespace fsim {
namespace simd {

/// "off" | "avx2" | "avx512" — the stable spelling used by FSIM_SIMD, the
/// fsim_cli --simd flag, STATS and the bench output.
const char* SimdLevelName(SimdLevel level);

/// Parses a SimdMode spelling (off|scalar|avx2|avx512|auto). Returns false
/// (and leaves *out untouched) on anything else.
bool ParseSimdMode(std::string_view text, SimdMode* out);

/// Resolves the effective kernel level for the given config ceiling, per
/// the precedence above, and publishes it to the fsim_simd_level gauge.
SimdLevel ResolveSimdLevel(SimdMode config_mode);

/// The kernel table for a resolved level. Always non-null: levels come out
/// of ResolveSimdLevel, which only returns compiled-in usable levels.
const SimdKernels& KernelsFor(SimdLevel level);

}  // namespace simd
}  // namespace fsim

#endif  // FSIM_CORE_SIMD_DISPATCH_H_
