// Scalar realization of the kernel table (core/simd/kernels.h): the
// portable reference every vector level is differentially tested against,
// and the only level on non-x86 builds. Plain loops, written to the exact
// operation sequence the contract pins (multiply-then-add combine, maxima
// as compare-and-replace) so the vector paths have a bit-exact oracle.
#include <cmath>

#include "core/simd/kernels.h"

namespace fsim {
namespace simd {

namespace {

constexpr uint32_t kNoEntry = ~0u;

template <bool kColmax>
void TileRowPassImpl(const PanelWorkItem* items, size_t n_items,
                     const int32_t* ids, const double* prev_row, double* acc,
                     double* colmax) {
  uint32_t cur = kNoEntry;
  double best = 0.0;
  for (size_t k = 0; k < n_items; ++k) {
    const PanelWorkItem it = items[k];
    if (it.entry != cur) {
      if (cur != kNoEntry && best > 0.0) acc[cur] += best;
      cur = it.entry;
      best = 0.0;
    }
    for (uint32_t i = 0; i < 4; ++i) {
      if ((it.mask >> i) & 1u) {
        const double v = prev_row[ids[it.slot + i]];
        if (v > best) best = v;
        if constexpr (kColmax) {
          if (v > colmax[it.slot + i]) colmax[it.slot + i] = v;
        }
      }
    }
  }
  if (cur != kNoEntry && best > 0.0) acc[cur] += best;
}

void TileRowPass(const PanelWorkItem* items, size_t n_items,
                 const int32_t* ids, const double* prev_row, double* acc) {
  TileRowPassImpl<false>(items, n_items, ids, prev_row, acc, nullptr);
}

void TileRowPassColmax(const PanelWorkItem* items, size_t n_items,
                       const int32_t* ids, const double* prev_row,
                       double* acc, double* colmax) {
  TileRowPassImpl<true>(items, n_items, ids, prev_row, acc, colmax);
}

void NormalizeTile(const double* sums, const uint32_t* sizes, size_t n,
                   uint32_t omega_kind, double m1, double* out) {
  switch (omega_kind) {
    case 0:  // OmegaKind::kSizeS1
      for (size_t t = 0; t < n; ++t) out[t] = sums[t] / m1;
      break;
    case 1:  // OmegaKind::kSumSizes
      for (size_t t = 0; t < n; ++t) {
        out[t] = sums[t] / (m1 + static_cast<double>(sizes[t]));
      }
      break;
    case 2:  // OmegaKind::kGeoMean
      for (size_t t = 0; t < n; ++t) {
        out[t] = sums[t] / std::sqrt(m1 * static_cast<double>(sizes[t]));
      }
      break;
    case 3:  // OmegaKind::kMaxSize
      for (size_t t = 0; t < n; ++t) {
        const double n2 = static_cast<double>(sizes[t]);
        out[t] = sums[t] / (n2 > m1 ? n2 : m1);
      }
      break;
    default:  // OmegaKind::kProduct
      for (size_t t = 0; t < n; ++t) {
        out[t] = sums[t] / (m1 * static_cast<double>(sizes[t]));
      }
      break;
  }
}

void CombineRow(const double* out_scores, const double* in_scores, double wo,
                double wi, const double* term_base, const int32_t* labels2,
                const double* prev_row, double* curr_row, size_t n,
                double* max_delta) {
  double delta = *max_delta;
  for (size_t i = 0; i < n; ++i) {
    const double o = out_scores ? wo * out_scores[i] : 0.0;
    const double in = in_scores ? wi * in_scores[i] : 0.0;
    const double term = term_base ? term_base[labels2[i]] : 0.0;
    const double value = (o + in) + term;
    curr_row[i] = value;
    const double d = std::abs(value - prev_row[i]);
    if (d > delta) delta = d;
  }
  *max_delta = delta;
}

void Fill(double* dst, size_t n, double value) {
  for (size_t i = 0; i < n; ++i) dst[i] = value;
}

void GatherRow(const double* base, const int32_t* idx, size_t n,
               double* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = base[idx[i]];
}

void DegreeRatioRow(double d1, const double* d2, size_t n, double* dst) {
  for (size_t i = 0; i < n; ++i) {
    const double b = d2[i];
    if (d1 == 0.0 && b == 0.0) {
      dst[i] = 1.0;
    } else {
      const double mn = d1 < b ? d1 : b;
      const double mx = d1 < b ? b : d1;
      dst[i] = mn / mx;
    }
  }
}

size_t FindFirstGe(const double* vals, size_t n, double threshold) {
  for (size_t i = 0; i < n; ++i) {
    if (vals[i] >= threshold) return i;
  }
  return n;
}

}  // namespace

const SimdKernels& ScalarKernels() {
  static const SimdKernels kernels = {
      SimdLevel::kScalar, &TileRowPass,    &TileRowPassColmax,
      &NormalizeTile,     &CombineRow,     &Fill,
      &GatherRow,         &DegreeRatioRow, &FindFirstGe,
  };
  return kernels;
}

}  // namespace simd
}  // namespace fsim
