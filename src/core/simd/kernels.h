// The vectorized kernel table of the dense engine's flat loops
// (docs/performance.md "Vectorized tile kernels").
//
// Three interchangeable realizations — scalar (always built, the
// reference), AVX2 and AVX-512 (compiled per-file with the matching -m
// flags, selected at runtime via core/simd/dispatch.h) — implement the
// same value contract:
//
//  * tile_row_pass / tile_row_pass_colmax — one S1-row pass over a tile
//    panel's per-class work list (core/simd/tile_panel.h): masked gathers
//    of previous-iteration scores, a running per-tile-entry maximum, and
//    (for the both-sides operator) a slot-space column-maximum panel.
//  * normalize_tile — the tile finalize sums[t] / Ωχ(|S1|, |S2_t|), the
//    per-entry omega switch hoisted out and the division vectorized.
//  * combine_row — the iterate loop's w+·out + w-·in + label-term
//    combine with running max-|delta| reduction.
//  * fill / gather_row / degree_ratio_row — the dense FSim^0 seeding
//    pass, one kernel per InitKind shape.
//  * find_first_ge — the TopKInto score-reject prescan.
//
// Bit-identity contract: every kernel produces results bit-identical to
// the scalar tile path for the max-family operators. The load-bearing
// facts are (1) max over doubles is exact and order-free, (2) dense
// scores are non-negative, so a masked-out lane contributing +0.0 equals
// the scalar loop's `best = 0.0` seed, and (3) combine_row uses separate
// multiply and add (never FMA — its single rounding would diverge from
// the scalar expression) in the scalar association ((w+·o) + (w-·i)) + L.
// tests/simd_kernel_test.cc sweeps all levels against each other.
#ifndef FSIM_CORE_SIMD_KERNELS_H_
#define FSIM_CORE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace fsim {
namespace simd {

/// Kernel realization, ordered by capability. Numeric values are stable
/// (reported through FSimStats::simd_level and the fsim_simd_level gauge).
enum class SimdLevel : uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// One unit of tile-row work: a 4-slot nibble of a tile panel with at
/// least one θ-compatible candidate for the row's label class. Work lists
/// are precomputed per (panel, S1 class) — see TilePanel — so the row pass
/// touches only compatible nibbles and never scans the panel's zero mask
/// stretches (the 64-candidates-at-a-time compatibility test happens once
/// at list-build time, off the LabelClassTable bitsets). The 4-slot
/// granularity matches one AVX2 gather of doubles: on the sparse class
/// runs that dominate real graphs (1–3 candidates per entry per class) an
/// empty half-vector simply produces no work item, instead of a wasted
/// all-masked gather lane group.
struct PanelWorkItem {
  uint32_t slot;   // first panel slot of the nibble; always a multiple of 4
  uint16_t entry;  // tile entry the nibble belongs to
  uint8_t mask;    // candidate bits 0..3: bit i = slot + i is compatible;
                   // != 0, bits 4..7 always clear
  uint8_t reserved = 0;
};
static_assert(sizeof(PanelWorkItem) == 8, "work items are 8-byte packed");

/// One S1-row pass over a class work list. Items are sorted by slot, hence
/// grouped by ascending entry. Per entry present in the list:
///   best = max over set mask bits of prev_row[ids[slot + i]]  (>= 0)
///   if best > 0: acc[entry] += best
/// Skipping the += for best == 0 is bit-identical to the scalar
/// `acc[t] += best` (adding +0.0 to a non-negative accumulator is exact).
/// Entries absent from the list (no compatible candidate) contribute
/// nothing, exactly like the scalar best = 0.0 rows.
typedef void (*TileRowPassFn)(const PanelWorkItem* items, size_t n_items,
                              const int32_t* ids, const double* prev_row,
                              double* acc);

/// tile_row_pass plus the both-sides column maxima: for every slot of each
/// item's nibble, colmax[slot + i] = max(colmax[slot + i], masked value),
/// where masked-out lanes contribute +0.0 (a no-op against the
/// non-negative colmax panel). colmax must be 64-byte aligned; item slots
/// are multiples of 4 so each nibble's 4 doubles are one aligned 32-byte
/// vector.
typedef void (*TileRowPassColmaxFn)(const PanelWorkItem* items,
                                    size_t n_items, const int32_t* ids,
                                    const double* prev_row, double* acc,
                                    double* colmax);

/// The iterate loop's per-row combine over one v-tile segment:
///   curr[i] = (out ? wo·out[i] : 0.0) + (in ? wi·in[i] : 0.0) + term_i
///   term_i  = term_base ? term_base[labels2[i]] : 0.0
///   *max_delta = max(*max_delta, max_i |curr[i] - prev[i]|)
/// out_scores / in_scores / term_base may be null (zero-weight direction,
/// empty label-term table); the association and rounding match the scalar
/// expression exactly (multiply then add; no FMA).
typedef void (*CombineRowFn)(const double* out_scores,
                             const double* in_scores, double wo, double wi,
                             const double* term_base, const int32_t* labels2,
                             const double* prev_row, double* curr_row,
                             size_t n, double* max_delta);

/// The tile finalize: out[t] = sums[t] / Ωχ(|S1|, sizes[t]) for t in
/// [0, n). `omega_kind` is the OmegaKind enum's integer value
/// (static_asserted at the engine's call site):
///   0 = |S1|, 1 = |S1| + |S2|, 2 = sqrt(|S1| · |S2|), 3 = max(|S1|, |S2|),
///   4 = |S1| · |S2|.
/// `m1` is the pre-converted double of |S1|. Bit-identical to the scalar
/// per-entry OmegaValue + divide: the integer-to-double conversions are
/// exact (sizes < 2^31 << 2^53, so size_t addition before conversion
/// equals double addition after), and IEEE multiply/sqrt/divide are
/// per-lane deterministic. A zero omega (e.g. the product family against
/// an empty S2) yields the same NaN/inf the scalar division does.
typedef void (*NormalizeTileFn)(const double* sums, const uint32_t* sizes,
                                size_t n, uint32_t omega_kind, double m1,
                                double* out);

/// dst[i] = value for i in [0, n).
typedef void (*FillFn)(double* dst, size_t n, double value);

/// dst[i] = base[idx[i]] (the kLabelSim seeding gather: base is the row's
/// per-class L(ℓ(u), ·) values, idx the g2 label array).
typedef void (*GatherRowFn)(const double* base, const int32_t* idx, size_t n,
                            double* dst);

/// dst[i] = (d1 == 0 && d2[i] == 0) ? 1.0 : min(d1, d2[i]) / max(d1, d2[i])
/// — the RoleSim kDegreeRatio seed; IEEE division makes the vector and
/// scalar values identical.
typedef void (*DegreeRatioRowFn)(double d1, const double* d2, size_t n,
                                 double* dst);

/// Index of the first vals[i] >= threshold, or n when none qualifies — the
/// exact complement of TopKInto's `score < heap_top` reject, so the
/// candidate set (and hence the result) is unchanged at any level.
typedef size_t (*FindFirstGeFn)(const double* vals, size_t n,
                                double threshold);

/// One level's kernel realization. All pointers are non-null in a table
/// returned by the accessors below.
struct SimdKernels {
  SimdLevel level = SimdLevel::kScalar;
  TileRowPassFn tile_row_pass = nullptr;
  TileRowPassColmaxFn tile_row_pass_colmax = nullptr;
  NormalizeTileFn normalize_tile = nullptr;
  CombineRowFn combine_row = nullptr;
  FillFn fill = nullptr;
  GatherRowFn gather_row = nullptr;
  DegreeRatioRowFn degree_ratio_row = nullptr;
  FindFirstGeFn find_first_ge = nullptr;
};

/// The always-available scalar reference kernels.
const SimdKernels& ScalarKernels();

/// The AVX2 kernels, or nullptr when this binary was not built with the
/// AVX2 code path (non-x86 target or -DFSIM_SIMD_FORCE_SCALAR). Host
/// support is NOT checked here — dispatch.h gates on HostCpuFeatures().
const SimdKernels* Avx2Kernels();

/// The AVX-512 kernels, or nullptr when not compiled in (see Avx2Kernels).
const SimdKernels* Avx512Kernels();

}  // namespace simd
}  // namespace fsim

#endif  // FSIM_CORE_SIMD_KERNELS_H_
