#include "core/topk_allpairs.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "core/fsim_engine.h"
#include "core/pair_evaluator.h"
#include "core/pair_store.h"
#include "label/label_similarity.h"

namespace fsim {

namespace {

/// Collects the k+1 best eligible (score, index) entries — enough to test
/// the boundary separation — in O(pairs * log k).
void BestEntries(const PairStore& store, const TopKPairsOptions& options,
                 std::vector<std::pair<double, size_t>>* best) {
  const size_t want = options.k + 1;
  best->clear();
  auto worse = [](const std::pair<double, size_t>& a,
                  const std::pair<double, size_t>& b) {
    // Min-heap on score; tie-break prefers larger index out first so the
    // kept set is deterministic.
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  for (size_t i = 0; i < store.size(); ++i) {
    if (options.exclude_diagonal && store.U(i) == store.V(i)) continue;
    std::pair<double, size_t> entry{store.prev(i), i};
    if (best->size() < want) {
      best->push_back(entry);
      std::push_heap(best->begin(), best->end(), worse);
    } else if (worse(entry, best->front())) {
      std::pop_heap(best->begin(), best->end(), worse);
      best->back() = entry;
      std::push_heap(best->begin(), best->end(), worse);
    }
  }
  // sort_heap with this comparator leaves the entries in descending score
  // order (the comparator inverts the usual "less" orientation).
  std::sort_heap(best->begin(), best->end(), worse);
}

}  // namespace

Result<TopKPairsResult> ComputeTopKPairs(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config,
                                         const TopKPairsOptions& options) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }

  ThreadPool pool(config.num_threads);
  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);
  FSIM_ASSIGN_OR_RETURN(PairStore store,
                        PairStore::Build(g1, g2, config, lsim,
                                         /*build_neighbor_index=*/true,
                                         &pool));

  const double w = config.w_out + config.w_in;
  const uint32_t max_iters = FSimIterationBound(config);
  const PairEvaluator evaluator(g1, g2, config, lsim, store);

  // The active-set driver leaves store.prev() holding the complete state
  // after every Step (full sweeps swap, frontier sweeps commit only the
  // evaluated entries), so the boundary-separation scan below reads the
  // same snapshot it always did — the top-k engine inherits the
  // frozen-pair skipping for free.
  ActiveSetDriver driver(pool, store, evaluator, g1, g2, config);
  std::vector<std::pair<double, size_t>> best;

  TopKPairsResult result;
  result.iteration_bound = max_iters;

  // Tolerance-mode frontier skipping lets maintained scores drift up to
  // frontier_tolerance * (1 + w) / (1 - w) from the exact sweep values
  // (docs/performance.md "Active-set iteration"), so the boundary
  // separation test must absorb that slack on both compared scores or it
  // could certify a set whose boundary pairs are swapped in the exact
  // solution. Exact mode contributes zero slack (bit-identical sweeps).
  const double score_slack =
      driver.active() && config.active_set == ActiveSetMode::kTolerance &&
              w < 1.0
          ? config.frontier_tolerance * (1.0 + w) / (1.0 - w)
          : 0.0;

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    const double max_delta = driver.Step();
    result.iterations = iter;

    // Residual radius from the contraction tail bound, plus the
    // tolerance-mode drift slack.
    const double radius =
        (w < 1.0 && w > 0.0 ? max_delta * w / (1.0 - w) : max_delta) +
        score_slack;
    result.radius = radius;

    const bool converged = max_delta < config.epsilon;

    // Boundary test: kth best must beat the (k+1)th by more than 2r. With
    // no boundary (fewer than k+1 eligible pairs) the set is trivially
    // certain.
    BestEntries(store, options, &best);
    const bool have_boundary = best.size() > options.k;
    const bool separated =
        !have_boundary ||
        best[options.k - 1].first - best[options.k].first > 2.0 * radius;
    if (separated) {
      result.certified = true;
      if (!options.converge_scores || converged) break;
    } else if (converged) {
      // Converged but boundary still within 2r (e.g. exact ties): report
      // uncertified.
      result.certified = false;
      break;
    }
  }

  // Materialize the pairs from the last sweep's snapshot.
  BestEntries(store, options, &best);
  const size_t take = std::min(options.k, best.size());
  result.pairs.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    result.pairs.push_back(ScoredPair{store.U(best[i].second),
                                      store.V(best[i].second),
                                      best[i].first});
  }
  return result;
}

}  // namespace fsim
