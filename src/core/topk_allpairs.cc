#include "core/topk_allpairs.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "core/fsim_engine.h"
#include "core/operators.h"
#include "core/pair_store.h"
#include "label/label_similarity.h"

namespace fsim {

namespace {

uint32_t IterationBound(const FSimConfig& config) {
  if (config.max_iterations > 0) return config.max_iterations;
  const double w = config.w_out + config.w_in;
  if (w <= 0.0) return 1;
  double bound = std::ceil(std::log(config.epsilon) / std::log(w));
  return static_cast<uint32_t>(std::max(1.0, bound));
}

struct alignas(64) WorkerDelta {
  double value = 0.0;
};

/// Collects the k+1 best eligible (score, index) entries — enough to test
/// the boundary separation — in O(pairs * log k).
void BestEntries(const PairStore& store, const TopKPairsOptions& options,
                 std::vector<std::pair<double, size_t>>* best) {
  const size_t want = options.k + 1;
  best->clear();
  auto worse = [](const std::pair<double, size_t>& a,
                  const std::pair<double, size_t>& b) {
    // Min-heap on score; tie-break prefers larger index out first so the
    // kept set is deterministic.
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  };
  for (size_t i = 0; i < store.size(); ++i) {
    if (options.exclude_diagonal && store.U(i) == store.V(i)) continue;
    std::pair<double, size_t> entry{store.prev(i), i};
    if (best->size() < want) {
      best->push_back(entry);
      std::push_heap(best->begin(), best->end(), worse);
    } else if (worse(entry, best->front())) {
      std::pop_heap(best->begin(), best->end(), worse);
      best->back() = entry;
      std::push_heap(best->begin(), best->end(), worse);
    }
  }
  // sort_heap with this comparator leaves the entries in descending score
  // order (the comparator inverts the usual "less" orientation).
  std::sort_heap(best->begin(), best->end(), worse);
}

}  // namespace

Result<TopKPairsResult> ComputeTopKPairs(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config,
                                         const TopKPairsOptions& options) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (options.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }

  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);
  FSIM_ASSIGN_OR_RETURN(PairStore store,
                        PairStore::Build(g1, g2, config, lsim));

  const OperatorConfig op = config.operators();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  const double w = config.w_out + config.w_in;
  const double alpha = config.upper_bound ? config.alpha : 0.0;
  const uint32_t max_iters = IterationBound(config);
  const uint32_t num_threads = static_cast<uint32_t>(config.num_threads);

  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim.Compatible(g1.Label(x), g2.Label(y), config.theta)) return -1.0;
    uint32_t idx = store.Find(x, y);
    if (idx != FlatPairMap::kNotFound) return store.prev(idx);
    if (alpha > 0.0) return alpha * store.PrunedUpperBound(x, y);
    return 0.0;
  };
  auto label_term = [&](NodeId u, NodeId v) -> double {
    switch (config.label_term) {
      case LabelTermKind::kLabelSim:
        return lsim.Sim(g1.Label(u), g2.Label(v));
      case LabelTermKind::kZero:
        return 0.0;
      case LabelTermKind::kOne:
        return 1.0;
    }
    return 0.0;
  };

  ThreadPool pool(config.num_threads);
  std::vector<MatchingScratch> scratch(num_threads);
  std::vector<WorkerDelta> worker_delta(num_threads);
  std::vector<std::pair<double, size_t>> best;

  TopKPairsResult result;
  result.iteration_bound = max_iters;

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    for (auto& d : worker_delta) d.value = 0.0;
    pool.ParallelFor(store.size(), [&](size_t i) {
      const uint32_t worker = static_cast<uint32_t>(i % num_threads);
      const NodeId u = store.U(i);
      const NodeId v = store.V(i);
      double value;
      if (config.pin_diagonal && u == v) {
        value = 1.0;
      } else {
        const double out_score =
            DirectionScore(op, config.matching, g1.OutNeighbors(u),
                           g2.OutNeighbors(v), lookup, &scratch[worker]);
        const double in_score =
            DirectionScore(op, config.matching, g1.InNeighbors(u),
                           g2.InNeighbors(v), lookup, &scratch[worker]);
        value = config.w_out * out_score + config.w_in * in_score +
                label_weight * label_term(u, v);
      }
      store.set_curr(i, value);
      const double delta = std::abs(value - store.prev(i));
      if (delta > worker_delta[worker].value) {
        worker_delta[worker].value = delta;
      }
    });
    double max_delta = 0.0;
    for (const auto& d : worker_delta) max_delta = std::max(max_delta, d.value);
    store.SwapBuffers();
    result.iterations = iter;

    // Residual radius from the contraction tail bound.
    const double radius =
        w < 1.0 && w > 0.0 ? max_delta * w / (1.0 - w) : max_delta;
    result.radius = radius;

    const bool converged = max_delta < config.epsilon;

    // Boundary test: kth best must beat the (k+1)th by more than 2r. With
    // no boundary (fewer than k+1 eligible pairs) the set is trivially
    // certain.
    BestEntries(store, options, &best);
    const bool have_boundary = best.size() > options.k;
    const bool separated =
        !have_boundary ||
        best[options.k - 1].first - best[options.k].first > 2.0 * radius;
    if (separated) {
      result.certified = true;
      if (!options.converge_scores || converged) break;
    } else if (converged) {
      // Converged but boundary still within 2r (e.g. exact ties): report
      // uncertified.
      result.certified = false;
      break;
    }
  }

  // Materialize the pairs from the last sweep's snapshot.
  BestEntries(store, options, &best);
  const size_t take = std::min(options.k, best.size());
  result.pairs.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    result.pairs.push_back(ScoredPair{store.U(best[i].second),
                                      store.V(best[i].second),
                                      best[i].first});
  }
  return result;
}

}  // namespace fsim
