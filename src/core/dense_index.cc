#include "core/dense_index.h"

#include <algorithm>
#include <numeric>

#include "core/init_value.h"

namespace fsim {

LabelClassTable::LabelClassTable(const LabelDict& dict,
                                 const LabelSimilarityCache& lsim,
                                 const FSimConfig& config,
                                 double label_weight)
    : n_(dict.size()), words_((dict.size() + 63) / 64) {
  compat_.assign(n_ * words_, 0);
  // A label term that is identically zero needs no |Σ|² table.
  const bool need_label_term =
      label_weight != 0.0 && config.label_term != LabelTermKind::kZero;
  if (need_label_term) label_term_.resize(n_ * n_);
  compat_offsets_.resize(n_ + 1);
  compat_offsets_[0] = 0;
  for (LabelId a = 0; a < n_; ++a) {
    uint64_t* row = compat_.data() + a * words_;
    double* terms =
        need_label_term ? label_term_.data() + static_cast<size_t>(a) * n_
                        : nullptr;
    for (LabelId b = 0; b < n_; ++b) {
      if (lsim.Compatible(a, b, config.theta)) {
        row[b >> 6] |= uint64_t{1} << (b & 63);
        compat_list_.push_back(b);
      }
      if (need_label_term) {
        terms[b] = label_weight * LabelTermValue(config, lsim, a, b);
      }
    }
    compat_offsets_[a + 1] = static_cast<uint32_t>(compat_list_.size());
  }
}

uint64_t LabelClassTable::EstimateBytes(size_t num_classes,
                                        bool with_label_term) {
  const uint64_t words = (num_classes + 63) / 64;
  const uint64_t n2 = static_cast<uint64_t>(num_classes) * num_classes;
  uint64_t bytes = num_classes * words * sizeof(uint64_t) +  // bitsets
                   (num_classes + 1) * sizeof(uint32_t) +    // list offsets
                   n2 * sizeof(LabelId);                     // full compat list
  if (with_label_term) bytes += n2 * sizeof(double);
  return bytes;
}

GroupedAdjacency GroupedAdjacency::Build(const Graph& g, bool out,
                                         size_t num_classes) {
  GroupedAdjacency adj;
  adj.num_classes_ = num_classes;
  const size_t n = g.NumNodes();
  adj.node_offsets_.resize(n + 1);
  adj.node_offsets_[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    adj.node_offsets_[u + 1] =
        adj.node_offsets_[u] + (out ? g.OutDegree(u) : g.InDegree(u));
  }
  adj.nodes_.resize(adj.node_offsets_[n]);
  adj.pos_.resize(adj.node_offsets_[n]);
  adj.group_offsets_.resize(n + 1);
  adj.group_offsets_[0] = 0;
  adj.class_offsets_.resize(n * (num_classes + 1));

  std::vector<uint32_t> order;
  for (NodeId u = 0; u < n; ++u) {
    const std::span<const NodeId> nbrs =
        out ? g.OutNeighbors(u) : g.InNeighbors(u);
    const uint32_t deg = static_cast<uint32_t>(nbrs.size());
    order.resize(deg);
    std::iota(order.begin(), order.end(), 0u);
    // Neighbor lists are id-sorted; a stable sort by class alone keeps ids
    // (and hence original positions) ascending within each class run.
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                       return g.Label(nbrs[a]) < g.Label(nbrs[b]);
                     });
    NodeId* nodes = adj.nodes_.data() + adj.node_offsets_[u];
    uint32_t* pos = adj.pos_.data() + adj.node_offsets_[u];
    for (uint32_t k = 0; k < deg; ++k) {
      nodes[k] = nbrs[order[k]];
      pos[k] = order[k];
    }
    // Class runs, plus the dense per-class cumulative offsets: classes
    // absent from the list collapse to empty [off, off) spans.
    uint32_t* class_off = adj.class_offsets_.data() + u * (num_classes + 1);
    LabelId next_class = 0;
    for (uint32_t k = 0; k < deg;) {
      const LabelId label = g.Label(nodes[k]);
      uint32_t end = k + 1;
      while (end < deg && g.Label(nodes[end]) == label) ++end;
      adj.groups_.push_back(ClassGroup{label, k, end});
      while (next_class <= label) class_off[next_class++] = k;
      k = end;
    }
    while (next_class <= num_classes) class_off[next_class++] = deg;
    adj.group_offsets_[u + 1] = adj.groups_.size();
  }
  return adj;
}

std::optional<DenseIndex> DenseIndex::Build(const Graph& g1, const Graph& g2,
                                            const FSimConfig& config,
                                            const LabelSimilarityCache& lsim) {
  if (config.neighbor_index_budget_bytes == 0) return std::nullopt;

  // Upper bound: the class table is quadratic in |Σ|, the grouped
  // adjacency linear in |E| (run count <= |E|) plus the dense per-node
  // class index of |V| * (|Σ|+1) offsets.
  const size_t num_classes = g1.dict()->size();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  auto adjacency_bytes = [num_classes](const Graph& g) -> uint64_t {
    return static_cast<uint64_t>(g.NumEdges()) *
               (sizeof(NodeId) + sizeof(uint32_t) + sizeof(ClassGroup)) +
           static_cast<uint64_t>(g.NumNodes()) * (num_classes + 1) *
               sizeof(uint32_t) +
           (g.NumNodes() + 1) * 2 * sizeof(uint64_t);
  };
  uint64_t estimate = LabelClassTable::EstimateBytes(
      num_classes, label_weight != 0.0 &&
                       config.label_term != LabelTermKind::kZero);
  if (config.w_out > 0.0) estimate += adjacency_bytes(g1) + adjacency_bytes(g2);
  if (config.w_in > 0.0) estimate += adjacency_bytes(g1) + adjacency_bytes(g2);
  if (estimate > config.neighbor_index_budget_bytes) return std::nullopt;

  DenseIndex index(LabelClassTable(*g1.dict(), lsim, config, label_weight));
  if (config.w_out > 0.0) {
    index.out1_ = GroupedAdjacency::Build(g1, /*out=*/true, num_classes);
    index.out2_ = GroupedAdjacency::Build(g2, /*out=*/true, num_classes);
  }
  if (config.w_in > 0.0) {
    index.in1_ = GroupedAdjacency::Build(g1, /*out=*/false, num_classes);
    index.in2_ = GroupedAdjacency::Build(g2, /*out=*/false, num_classes);
  }
  return index;
}

}  // namespace fsim
