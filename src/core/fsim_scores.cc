#include "core/fsim_scores.h"

#include <algorithm>

namespace fsim {

FSimScores::FSimScores(std::vector<uint64_t> keys, std::vector<double> values,
                       FlatPairMap index, FSimStats stats)
    : keys_(std::move(keys)),
      values_(std::move(values)),
      index_(std::move(index)),
      stats_(std::move(stats)) {}

std::pair<size_t, size_t> FSimScores::RangeOf(NodeId u) const {
  const uint64_t lo = PairKey(u, 0);
  const uint64_t hi = PairKey(u, ~0U);
  auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  auto last = std::upper_bound(keys_.begin(), keys_.end(), hi);
  return {static_cast<size_t>(first - keys_.begin()),
          static_cast<size_t>(last - keys_.begin())};
}

std::vector<std::pair<NodeId, double>> FSimScores::TopK(NodeId u,
                                                        size_t k) const {
  auto [first, last] = RangeOf(u);
  std::vector<std::pair<NodeId, double>> row;
  row.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    row.emplace_back(PairSecond(keys_[i]), values_[i]);
  }
  auto cmp = [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (row.size() > k) {
    std::partial_sort(row.begin(), row.begin() + static_cast<ptrdiff_t>(k),
                      row.end(), cmp);
    row.resize(k);
  } else {
    std::sort(row.begin(), row.end(), cmp);
  }
  return row;
}

std::vector<std::pair<NodeId, double>> FSimScores::Row(NodeId u) const {
  auto [first, last] = RangeOf(u);
  std::vector<std::pair<NodeId, double>> row;
  row.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    row.emplace_back(PairSecond(keys_[i]), values_[i]);
  }
  return row;
}

}  // namespace fsim
