#include "core/fsim_scores.h"

#include <algorithm>

#include "core/simd/dispatch.h"

namespace fsim {

namespace {

/// The TopKInto score-reject prescan kernel (find_first_ge). FSimScores
/// carries no config, so the level is resolved once per process from the
/// environment/host (FSIM_SIMD honored); this is safe because find_first_ge
/// is the exact complement of the scalar reject at every level — the
/// surviving candidate set, and hence the result, is level-invariant.
simd::FindFirstGeFn TopKPrescanKernel() {
  static const simd::FindFirstGeFn fn =
      simd::KernelsFor(simd::ResolveSimdLevel(SimdMode::kAuto)).find_first_ge;
  return fn;
}

/// Descending score, ties broken by ascending node id — the ranking order of
/// every top-k surface (FSimScores::TopK, the snapshot top-k cache).
inline bool RanksBefore(const std::pair<NodeId, double>& a,
                        const std::pair<NodeId, double>& b) {
  if (a.second != b.second) return a.second > b.second;
  return a.first < b.first;
}

}  // namespace

FSimScores::FSimScores(std::vector<uint64_t> keys, std::vector<double> values,
                       FlatPairMap index, FSimStats stats)
    : keys_(std::move(keys)),
      values_(std::move(values)),
      index_(std::move(index)),
      stats_(std::move(stats)) {}

std::pair<size_t, size_t> FSimScores::RangeOf(NodeId u) const {
  const uint64_t lo = PairKey(u, 0);
  const uint64_t hi = PairKey(u, ~0U);
  auto first = std::lower_bound(keys_.begin(), keys_.end(), lo);
  auto last = std::upper_bound(keys_.begin(), keys_.end(), hi);
  return {static_cast<size_t>(first - keys_.begin()),
          static_cast<size_t>(last - keys_.begin())};
}

std::vector<std::pair<NodeId, double>> FSimScores::TopK(NodeId u,
                                                        size_t k) const {
  std::vector<std::pair<NodeId, double>> out;
  TopKInto(u, k, &out);
  return out;
}

size_t FSimScores::TopKInto(
    NodeId u, size_t k, std::vector<std::pair<NodeId, double>>* out) const {
  const size_t base = out->size();
  if (k == 0) return 0;
  auto [first, last] = RangeOf(u);

  // Bounded min-heap over out's tail: the heap top (out[base]) is the
  // currently weakest kept entry under the ranking order, so a candidate
  // enters iff it ranks before the top. The heap comparator is the reverse
  // of RanksBefore (make_heap builds a max-heap, we need the weakest on top).
  auto heap_cmp = [](const std::pair<NodeId, double>& a,
                     const std::pair<NodeId, double>& b) {
    return RanksBefore(a, b);
  };
  const simd::FindFirstGeFn find_first_ge = TopKPrescanKernel();
  size_t i = first;
  while (i < last) {
    if (out->size() - base >= k) {
      // Hot path: once the heap is warm the prescan skips every candidate
      // scoring below the heap top in one vectorized sweep (the exact
      // complement of the old one-compare-per-candidate reject; the top is
      // loop-invariant across the skipped run since nothing enters).
      i += find_first_ge(values_.data() + i, last - i, (*out)[base].second);
      if (i >= last) break;
      const std::pair<NodeId, double> entry{PairSecond(keys_[i]), values_[i]};
      if (RanksBefore(entry, (*out)[base])) {
        std::pop_heap(out->begin() + base, out->end(), heap_cmp);
        out->back() = entry;
        std::push_heap(out->begin() + base, out->end(), heap_cmp);
      }
      ++i;
    } else {
      out->emplace_back(PairSecond(keys_[i]), values_[i]);
      std::push_heap(out->begin() + base, out->end(), heap_cmp);
      ++i;
    }
  }
  std::sort_heap(out->begin() + base, out->end(), heap_cmp);
  return out->size() - base;
}

std::vector<std::pair<NodeId, double>> FSimScores::Row(NodeId u) const {
  auto [first, last] = RangeOf(u);
  std::vector<std::pair<NodeId, double>> row;
  row.reserve(last - first);
  for (size_t i = first; i < last; ++i) {
    row.emplace_back(PairSecond(keys_[i]), values_[i]);
  }
  return row;
}

}  // namespace fsim
