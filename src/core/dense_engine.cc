#include "core/dense_engine.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/fsim_engine.h"
#include "core/init_value.h"
#include "core/operators.h"

namespace fsim {

namespace {

struct alignas(64) WorkerDelta {
  double value = 0.0;
};

}  // namespace

std::vector<std::pair<NodeId, double>> DenseFSimScores::TopK(NodeId u,
                                                             size_t k) const {
  FSIM_DCHECK(u < n1_);
  std::vector<std::pair<NodeId, double>> row;
  row.reserve(n2_);
  const double* base = values_.data() + static_cast<size_t>(u) * n2_;
  for (NodeId v = 0; v < n2_; ++v) row.emplace_back(v, base[v]);
  const size_t take = std::min(k, row.size());
  std::partial_sort(row.begin(), row.begin() + take, row.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  row.resize(take);
  return row;
}

Result<DenseFSimScores> ComputeFSimDense(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (config.upper_bound) {
    return Status::InvalidArgument(
        "dense mode does not support upper-bound updating (it is the "
        "unpruned ablation baseline); use ComputeFSim");
  }
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  const uint64_t total = static_cast<uint64_t>(n1) * n2;
  if (total > config.pair_limit) {
    return Status::InvalidArgument(
        StrFormat("dense matrix of %llu pairs exceeds pair_limit %llu",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(config.pair_limit)));
  }

  Timer build_timer;
  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);

  std::vector<double> prev(total);
  std::vector<double> curr(total);
  for (NodeId u = 0; u < n1; ++u) {
    double* row = prev.data() + static_cast<size_t>(u) * n2;
    for (NodeId v = 0; v < n2; ++v) {
      row[v] = InitValue(config, lsim, g1, g2, u, v);
    }
  }

  FSimStats stats;
  stats.theta_candidates = total;
  stats.maintained_pairs = total;
  stats.build_seconds = build_timer.Seconds();

  const OperatorConfig op = config.operators();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  const uint32_t max_iters = FSimIterationBound(config);
  const uint32_t num_threads = static_cast<uint32_t>(config.num_threads);

  // Previous-iteration score; negative marks label-incompatible pairs that
  // the mapping operators must not use (Remark 2). The dense matrix holds a
  // value for such pairs, but it never flows through Mχ.
  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim.Compatible(g1.Label(x), g2.Label(y), config.theta)) return -1.0;
    return prev[static_cast<size_t>(x) * n2 + y];
  };

  auto label_term = [&](NodeId u, NodeId v) -> double {
    switch (config.label_term) {
      case LabelTermKind::kLabelSim:
        return lsim.Sim(g1.Label(u), g2.Label(v));
      case LabelTermKind::kZero:
        return 0.0;
      case LabelTermKind::kOne:
        return 1.0;
    }
    return 0.0;
  };

  Timer iterate_timer;
  ThreadPool pool(config.num_threads);
  std::vector<MatchingScratch> scratch(num_threads);
  std::vector<WorkerDelta> worker_delta(num_threads);

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    for (auto& d : worker_delta) d.value = 0.0;
    // Chunks of u-rows: rows are independent under double buffering, and
    // row granularity amortizes the scheduling cost that per-pair items
    // would pay on the dense matrix.
    pool.ParallelForChunked(n1, 1, [&](int worker, size_t begin, size_t end) {
      MatchingScratch* worker_scratch = &scratch[worker];
      double chunk_delta = 0.0;
      for (size_t u_index = begin; u_index < end; ++u_index) {
        const NodeId u = static_cast<NodeId>(u_index);
        double* out_row = curr.data() + u_index * n2;
        for (NodeId v = 0; v < n2; ++v) {
          double value;
          if (config.pin_diagonal && u == v) {
            value = 1.0;
          } else {
            const double out_score =
                DirectionScore(op, config.matching, g1.OutNeighbors(u),
                               g2.OutNeighbors(v), lookup, worker_scratch);
            const double in_score =
                DirectionScore(op, config.matching, g1.InNeighbors(u),
                               g2.InNeighbors(v), lookup, worker_scratch);
            value = config.w_out * out_score + config.w_in * in_score +
                    label_weight * label_term(u, v);
          }
          out_row[v] = value;
          chunk_delta = std::max(chunk_delta,
                                 std::abs(value - prev[u_index * n2 + v]));
        }
      }
      if (chunk_delta > worker_delta[worker].value) {
        worker_delta[worker].value = chunk_delta;
      }
    });
    double max_delta = 0.0;
    for (const auto& d : worker_delta) max_delta = std::max(max_delta, d.value);
    prev.swap(curr);
    stats.iterations = iter;
    stats.final_delta = max_delta;
    if (config.record_delta_history) stats.delta_history.push_back(max_delta);
    if (max_delta < config.epsilon) {
      stats.converged = true;
      break;
    }
  }
  stats.iterate_seconds = iterate_timer.Seconds();

  return DenseFSimScores(n1, n2, std::move(prev), std::move(stats));
}

}  // namespace fsim
