#include "core/dense_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dense_index.h"
#include "core/fsim_engine.h"
#include "core/init_value.h"
#include "core/operators.h"
#include "obs/trace.h"

namespace fsim {

namespace {

struct alignas(64) WorkerDelta {
  double value = 0.0;
};

/// Rows per parallel chunk. A chunk is also the tiling unit: all rows of a
/// chunk walk one v-tile before advancing, so the tile's N±(v) column sets
/// stay cache-hot across the chunk's u's.
constexpr size_t kDenseRowGrain = 8;

/// v-tile width of the indexed iterate loop. 256 columns x 8 rows of
/// `curr` plus the tile's prev-row slices fit comfortably in L2 while
/// keeping the tile loop overhead negligible.
constexpr size_t kDenseVTile = 256;

}  // namespace

std::vector<std::pair<NodeId, double>> DenseFSimScores::TopK(NodeId u,
                                                             size_t k) const {
  FSIM_DCHECK(u < n1_);
  std::vector<std::pair<NodeId, double>> row;
  row.reserve(n2_);
  const double* base = values_.data() + static_cast<size_t>(u) * n2_;
  for (NodeId v = 0; v < n2_; ++v) row.emplace_back(v, base[v]);
  const size_t take = std::min(k, row.size());
  std::partial_sort(row.begin(), row.begin() + take, row.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  row.resize(take);
  return row;
}

Result<DenseFSimScores> ComputeFSimDense(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (config.upper_bound) {
    return Status::InvalidArgument(
        "dense mode does not support upper-bound updating (it is the "
        "unpruned ablation baseline); use ComputeFSim");
  }
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  const uint64_t total = static_cast<uint64_t>(n1) * n2;
  if (total > config.pair_limit) {
    return Status::InvalidArgument(
        StrFormat("dense matrix of %llu pairs exceeds pair_limit %llu",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(config.pair_limit)));
  }

  Timer build_timer;
  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);
  ThreadPool pool(config.num_threads);

  // Label-class index (core/dense_index.h): compatibility bitsets, hoisted
  // label terms and class-grouped adjacency. Budget-gated; nullopt runs the
  // per-visit lookup fallback below with identical scores.
  const std::optional<DenseIndex> index =
      DenseIndex::Build(g1, g2, config, lsim);

  std::vector<double> prev(total);
  std::vector<double> curr(total);
  // FSim^0 seeding is O(n1 * n2) and embarrassingly parallel; chunk it over
  // the same pool the iterate loop uses instead of leaving it serial.
  pool.ParallelForChunked(
      n1, kDenseRowGrain, [&](int /*worker*/, size_t begin, size_t end) {
        for (size_t u_index = begin; u_index < end; ++u_index) {
          const NodeId u = static_cast<NodeId>(u_index);
          double* row = prev.data() + u_index * n2;
          for (NodeId v = 0; v < n2; ++v) {
            row[v] = InitValue(config, lsim, g1, g2, u, v);
          }
        }
      });

  FSimStats stats;
  stats.theta_candidates = total;
  stats.maintained_pairs = total;
  stats.used_neighbor_index = index.has_value();
  stats.neighbor_index_bytes = index ? index->MemoryBytes() : 0;
  stats.build_seconds = build_timer.Seconds();

  const OperatorConfig op = config.operators();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  const uint32_t max_iters = FSimIterationBound(config);
  const uint32_t num_threads = static_cast<uint32_t>(config.num_threads);
  const bool use_out = config.w_out > 0.0;
  const bool use_in = config.w_in > 0.0;

  // Fallback score source: previous-iteration value, negative marking
  // label-incompatible pairs that the mapping operators must not use
  // (Remark 2). The dense matrix holds a value for such pairs, but it never
  // flows through Mχ. The indexed path never enumerates them instead.
  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim.Compatible(g1.Label(x), g2.Label(y), config.theta)) return -1.0;
    return prev[static_cast<size_t>(x) * n2 + y];
  };

  Timer iterate_timer;
  std::vector<MatchingScratch> scratch(num_threads);
  std::vector<WorkerDelta> worker_delta(num_threads);
  // Per-worker cache of the v-tile's grouped views, built once per
  // (chunk, tile) and reused by every u-row of the chunk.
  struct VTileViews {
    std::vector<GroupedNeighborhood> out;
    std::vector<GroupedNeighborhood> in;
    std::vector<double> out_scores;
    std::vector<double> in_scores;
  };
  std::vector<VTileViews> tile_views(num_threads);

  // Indexed chunk body: rows [begin, end) x all v, tiled over v so the
  // tile's N±(v) structures and prev-row slices are reused across the
  // chunk's rows. Visit order per pair is identical either way; only the
  // (u, v) evaluation order changes, which the Jacobi sweep is invariant
  // to. Templated on the mapping kind (dispatched once per chunk) so the
  // per-pair operator inlines switch-free into the tile loop.
  auto evaluate_chunk_indexed = [&]<MappingKind M>(int worker, size_t begin,
                                                   size_t end) {
    const DenseIndex& di = *index;
    const LabelClassTable& table = di.table();
    const ClassCompatView compat = table.view();
    MatchingScratch* worker_scratch = &scratch[worker];
    const double* prev_data = prev.data();
    auto score = [prev_data, n2](NodeId x, NodeId y) -> double {
      return prev_data[static_cast<size_t>(x) * n2 + y];
    };
    double chunk_delta = 0.0;
    VTileViews& views = tile_views[worker];
    for (size_t vb = 0; vb < n2; vb += kDenseVTile) {
      const NodeId v_hi = static_cast<NodeId>(std::min(vb + kDenseVTile, n2));
      const size_t tile = v_hi - vb;
      if (use_out) {
        views.out.resize(tile);
        for (size_t t = 0; t < tile; ++t) {
          views.out[t] = di.Out2(static_cast<NodeId>(vb + t));
        }
      }
      if (use_in) {
        views.in.resize(tile);
        for (size_t t = 0; t < tile; ++t) {
          views.in[t] = di.In2(static_cast<NodeId>(vb + t));
        }
      }
      views.out_scores.resize(tile);
      views.in_scores.resize(tile);
      for (size_t u_index = begin; u_index < end; ++u_index) {
        const NodeId u = static_cast<NodeId>(u_index);
        const LabelId lu = g1.Label(u);
        // One tile-granularity operator call per direction: S1-side state
        // hoists across the tile's v's.
        if (use_out) {
          DirectionScoreGroupedTile<M>(op.omega, config.matching, di.Out1(u),
                                       {views.out.data(), tile}, compat,
                                       score, worker_scratch,
                                       views.out_scores.data());
        }
        if (use_in) {
          DirectionScoreGroupedTile<M>(op.omega, config.matching, di.In1(u),
                                       {views.in.data(), tile}, compat, score,
                                       worker_scratch,
                                       views.in_scores.data());
        }
        double* out_row = curr.data() + u_index * n2;
        const double* prev_row = prev_data + u_index * n2;
        for (NodeId v = static_cast<NodeId>(vb); v < v_hi; ++v) {
          double value;
          if (config.pin_diagonal && u == v) {
            value = 1.0;
          } else {
            value = (use_out ? config.w_out * views.out_scores[v - vb] : 0.0) +
                    (use_in ? config.w_in * views.in_scores[v - vb] : 0.0) +
                    table.WeightedLabelTerm(lu, g2.Label(v));
          }
          out_row[v] = value;
          chunk_delta = std::max(chunk_delta, std::abs(value - prev_row[v]));
        }
      }
    }
    if (chunk_delta > worker_delta[worker].value) {
      worker_delta[worker].value = chunk_delta;
    }
  };

  // Lookup fallback: the seed-era per-visit path, kept verbatim as the
  // reference the indexed path is differentially tested against.
  auto evaluate_chunk_lookup = [&](int worker, size_t begin, size_t end) {
    MatchingScratch* worker_scratch = &scratch[worker];
    double chunk_delta = 0.0;
    for (size_t u_index = begin; u_index < end; ++u_index) {
      const NodeId u = static_cast<NodeId>(u_index);
      double* out_row = curr.data() + u_index * n2;
      for (NodeId v = 0; v < n2; ++v) {
        double value;
        if (config.pin_diagonal && u == v) {
          value = 1.0;
        } else {
          const double out_score =
              DirectionScore(op, config.matching, g1.OutNeighbors(u),
                             g2.OutNeighbors(v), lookup, worker_scratch);
          const double in_score =
              DirectionScore(op, config.matching, g1.InNeighbors(u),
                             g2.InNeighbors(v), lookup, worker_scratch);
          value = config.w_out * out_score + config.w_in * in_score +
                  label_weight *
                      LabelTermValue(config, lsim, g1.Label(u), g2.Label(v));
        }
        out_row[v] = value;
        chunk_delta =
            std::max(chunk_delta, std::abs(value - prev[u_index * n2 + v]));
      }
    }
    if (chunk_delta > worker_delta[worker].value) {
      worker_delta[worker].value = chunk_delta;
    }
  };

  // Pre-reserve so the per-iteration push never reallocates mid-loop.
  if (config.record_delta_history) stats.delta_history.reserve(max_iters);

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    FSIM_TRACE_SPAN_ARG("dense.iter", iter);
    for (auto& d : worker_delta) d.value = 0.0;
    // Chunks of u-rows: rows are independent under double buffering, and
    // row granularity amortizes the scheduling cost that per-pair items
    // would pay on the dense matrix.
    pool.ParallelForChunked(
        n1, kDenseRowGrain, [&](int worker, size_t begin, size_t end) {
          if (!index) {
            evaluate_chunk_lookup(worker, begin, end);
            return;
          }
          switch (op.mapping) {
            case MappingKind::kMaxPerRow:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kMaxPerRow>(worker, begin,
                                                                end);
              break;
            case MappingKind::kInjectiveRow:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kInjectiveRow>(worker,
                                                                   begin, end);
              break;
            case MappingKind::kMaxBothSides:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kMaxBothSides>(worker,
                                                                   begin, end);
              break;
            case MappingKind::kInjectiveSym:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kInjectiveSym>(worker,
                                                                   begin, end);
              break;
            case MappingKind::kProduct:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kProduct>(worker, begin,
                                                              end);
              break;
          }
        });
    double max_delta = 0.0;
    for (const auto& d : worker_delta) max_delta = std::max(max_delta, d.value);
    prev.swap(curr);
    stats.iterations = iter;
    stats.final_delta = max_delta;
    if (config.record_delta_history) stats.delta_history.push_back(max_delta);
    if (max_delta < config.epsilon) {
      stats.converged = true;
      break;
    }
  }
  stats.iterate_seconds = iterate_timer.Seconds();

  return DenseFSimScores(n1, n2, std::move(prev), std::move(stats));
}

}  // namespace fsim
