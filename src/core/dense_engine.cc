#include "core/dense_engine.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/aligned.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/dense_index.h"
#include "core/fsim_engine.h"
#include "core/init_value.h"
#include "core/operators.h"
#include "core/simd/dispatch.h"
#include "core/simd/tile_panel.h"
#include "obs/trace.h"

namespace fsim {

namespace {

struct alignas(64) WorkerDelta {
  double value = 0.0;
};

/// Rows per parallel chunk. A chunk is also the tiling unit: all rows of a
/// chunk walk one v-tile before advancing, so the tile's N±(v) column sets
/// stay cache-hot across the chunk's u's.
constexpr size_t kDenseRowGrain = 8;

/// v-tile width of the indexed iterate loop. 256 columns x 8 rows of
/// `curr` plus the tile's prev-row slices fit comfortably in L2 while
/// keeping the tile loop overhead negligible.
constexpr size_t kDenseVTile = 256;

// The normalize kernel (core/simd/kernels.h NormalizeTileFn) receives
// OmegaKind as its integer value; pin the mapping it documents.
static_assert(static_cast<uint32_t>(OmegaKind::kSizeS1) == 0 &&
              static_cast<uint32_t>(OmegaKind::kSumSizes) == 1 &&
              static_cast<uint32_t>(OmegaKind::kGeoMean) == 2 &&
              static_cast<uint32_t>(OmegaKind::kMaxSize) == 3 &&
              static_cast<uint32_t>(OmegaKind::kProduct) == 4);

}  // namespace

std::vector<std::pair<NodeId, double>> DenseFSimScores::TopK(NodeId u,
                                                             size_t k) const {
  FSIM_DCHECK(u < n1_);
  std::vector<std::pair<NodeId, double>> row;
  row.reserve(n2_);
  const double* base = values_.data() + static_cast<size_t>(u) * n2_;
  for (NodeId v = 0; v < n2_; ++v) row.emplace_back(v, base[v]);
  const size_t take = std::min(k, row.size());
  std::partial_sort(row.begin(), row.begin() + take, row.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  row.resize(take);
  return row;
}

Result<DenseFSimScores> ComputeFSimDense(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (config.upper_bound) {
    return Status::InvalidArgument(
        "dense mode does not support upper-bound updating (it is the "
        "unpruned ablation baseline); use ComputeFSim");
  }
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();
  const uint64_t total = static_cast<uint64_t>(n1) * n2;
  if (total > config.pair_limit) {
    return Status::InvalidArgument(
        StrFormat("dense matrix of %llu pairs exceeds pair_limit %llu",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(config.pair_limit)));
  }

  Timer build_timer;
  LabelSimilarityCache lsim(*g1.dict(), config.label_sim);
  ThreadPool pool(config.num_threads);

  // Label-class index (core/dense_index.h): compatibility bitsets, hoisted
  // label terms and class-grouped adjacency. Budget-gated; nullopt runs the
  // per-visit lookup fallback below with identical scores.
  const std::optional<DenseIndex> index =
      DenseIndex::Build(g1, g2, config, lsim);

  // Vectorized kernel level for this run (docs/performance.md "Vectorized
  // tile kernels"). Every level is value-equivalent: the max-family tile
  // path and the combine/seeding kernels are bit-identical to scalar, so
  // the knob never changes results.
  const simd::SimdLevel simd_level = simd::ResolveSimdLevel(config.simd);
  const simd::SimdKernels& kern = simd::KernelsFor(simd_level);

  const OperatorConfig op = config.operators();
  const double label_weight = 1.0 - config.w_out - config.w_in;
  const uint32_t max_iters = FSimIterationBound(config);
  const uint32_t num_threads = static_cast<uint32_t>(config.num_threads);
  const bool use_out = config.w_out > 0.0;
  const bool use_in = config.w_in > 0.0;

  // g2's label row as gather indices, shared by the kLabelSim seeding and
  // the combine kernel's label-term gather.
  AlignedVector<int32_t> labels2;
  if (index || config.init == InitKind::kLabelSim) {
    labels2.resize(n2);
    for (size_t v = 0; v < n2; ++v) {
      labels2[v] = static_cast<int32_t>(g2.Label(static_cast<NodeId>(v)));
    }
  }

  // SoA candidate panels for the vectorized max-family tile path
  // (core/simd/tile_panel.h). The grouped views of g2 are
  // iteration-invariant, so they are flattened once per run and direction;
  // the injective and product operators keep their scalar tile paths (the
  // per-pair matching/sum work dominates there), as does FSIM_SIMD=off —
  // which therefore stays the exact pre-panel code path the equivalence
  // tests diff against.
  const bool simd_tiles = index.has_value() &&
                          simd_level != simd::SimdLevel::kScalar &&
                          (op.mapping == MappingKind::kMaxPerRow ||
                           op.mapping == MappingKind::kMaxBothSides);
  std::optional<simd::TilePanelSet> out_panels;
  std::optional<simd::TilePanelSet> in_panels;
  uint32_t panel_max_slots = 0;
  FSimStats stats;
  if (simd_tiles) {
    const ClassCompatView compat = index->table().view();
    const size_t classes = index->table().num_classes();
    const bool with_inv = op.mapping == MappingKind::kMaxBothSides;
    if (use_out) {
      out_panels = simd::BuildTilePanelSet(
          n2, kDenseVTile, classes, compat, with_inv,
          [&](NodeId v) { return index->Out2(v); });
      panel_max_slots = std::max(panel_max_slots, out_panels->max_slots);
      stats.simd_panel_bytes += out_panels->MemoryBytes();
    }
    if (use_in) {
      in_panels = simd::BuildTilePanelSet(
          n2, kDenseVTile, classes, compat, with_inv,
          [&](NodeId v) { return index->In2(v); });
      panel_max_slots = std::max(panel_max_slots, in_panels->max_slots);
      stats.simd_panel_bytes += in_panels->MemoryBytes();
    }
  }

  AlignedVector<double> prev(total);
  AlignedVector<double> curr(total);
  FSIM_DCHECK(IsSimdAligned(prev.data()) && IsSimdAligned(curr.data()));
  // FSim^0 seeding is O(n1 * n2) and embarrassingly parallel; chunk it over
  // the same pool the iterate loop uses instead of leaving it serial. Each
  // InitKind maps onto one flat row kernel (fill / gather / degree-ratio)
  // with values identical to InitValue at every SIMD level.
  const size_t num_label_classes = g1.dict()->size();
  std::vector<double> seed_d2;
  if (config.init == InitKind::kDegreeRatio) {
    seed_d2.resize(n2);
    for (size_t v = 0; v < n2; ++v) {
      seed_d2[v] = static_cast<double>(g2.OutDegree(static_cast<NodeId>(v)));
    }
  }
  std::vector<std::vector<double>> seed_sim_rows(num_threads);
  pool.ParallelForChunked(
      n1, kDenseRowGrain, [&](int worker, size_t begin, size_t end) {
        for (size_t u_index = begin; u_index < end; ++u_index) {
          const NodeId u = static_cast<NodeId>(u_index);
          double* row = prev.data() + u_index * n2;
          switch (config.init) {
            case InitKind::kLabelSim: {
              // L(ℓ(u), ·) per class, then one gather through g2's labels.
              auto& sim_row = seed_sim_rows[worker];
              sim_row.resize(num_label_classes);
              const LabelId lu = g1.Label(u);
              for (size_t c = 0; c < num_label_classes; ++c) {
                sim_row[c] = lsim.Sim(lu, static_cast<LabelId>(c));
              }
              kern.gather_row(sim_row.data(), labels2.data(), n2, row);
              break;
            }
            case InitKind::kIndicatorDiagonal:
              kern.fill(row, n2, 0.0);
              if (u_index < n2) row[u_index] = 1.0;
              break;
            case InitKind::kDegreeRatio:
              kern.degree_ratio_row(static_cast<double>(g1.OutDegree(u)),
                                    seed_d2.data(), n2, row);
              break;
            case InitKind::kOnes:
              kern.fill(row, n2, 1.0);
              break;
          }
        }
      });

  stats.theta_candidates = total;
  stats.maintained_pairs = total;
  stats.used_neighbor_index = index.has_value();
  stats.neighbor_index_bytes = index ? index->MemoryBytes() : 0;
  stats.simd_level = static_cast<uint32_t>(simd_level);
  stats.build_seconds = build_timer.Seconds();

  // Fallback score source: previous-iteration value, negative marking
  // label-incompatible pairs that the mapping operators must not use
  // (Remark 2). The dense matrix holds a value for such pairs, but it never
  // flows through Mχ. The indexed path never enumerates them instead.
  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim.Compatible(g1.Label(x), g2.Label(y), config.theta)) return -1.0;
    return prev[static_cast<size_t>(x) * n2 + y];
  };

  Timer iterate_timer;
  std::vector<MatchingScratch> scratch(num_threads);
  std::vector<WorkerDelta> worker_delta(num_threads);
  // Per-worker cache of the v-tile's grouped views, built once per
  // (chunk, tile) and reused by every u-row of the chunk.
  struct VTileViews {
    std::vector<GroupedNeighborhood> out;
    std::vector<GroupedNeighborhood> in;
    std::vector<double> out_scores;
    std::vector<double> in_scores;
  };
  std::vector<VTileViews> tile_views(num_threads);
  // Per-worker panel-path scratch: the slot-space column-maximum panel of
  // the both-sides operator, and the pre-normalize per-entry sums its
  // finalize hands to the normalize kernel.
  struct PanelScratch {
    AlignedVector<double> colmax;
    AlignedVector<double> sums;
  };
  std::vector<PanelScratch> panel_scratch(num_threads);
  if (simd_tiles && op.mapping == MappingKind::kMaxBothSides) {
    for (auto& ps : panel_scratch) {
      ps.colmax.resize(panel_max_slots);
      ps.sums.resize(kDenseVTile);
      FSIM_DCHECK(IsSimdAligned(ps.colmax.data()));
    }
  }

  // The iterate loop's per-row combine + max-delta over one v-tile segment,
  // shared by the indexed and panel chunk bodies. A pin_diagonal row takes
  // the scalar branch (the pin is a per-element exception the flat kernel
  // has no lane for); everything else runs the combine kernel, whose
  // association matches the scalar expression exactly.
  auto combine_tile = [&](const LabelClassTable& table, NodeId u, LabelId lu,
                          size_t vb, NodeId v_hi, size_t tile,
                          const double* out_scores, const double* in_scores,
                          double* chunk_delta) {
    const size_t u_index = u;
    double* out_row = curr.data() + u_index * n2 + vb;
    const double* prev_row = prev.data() + u_index * n2 + vb;
    if (config.pin_diagonal && u_index >= vb && u < v_hi) {
      double delta = *chunk_delta;
      for (NodeId v = static_cast<NodeId>(vb); v < v_hi; ++v) {
        double value;
        if (u == v) {
          value = 1.0;
        } else {
          value = (use_out ? config.w_out * out_scores[v - vb] : 0.0) +
                  (use_in ? config.w_in * in_scores[v - vb] : 0.0) +
                  table.WeightedLabelTerm(lu, g2.Label(v));
        }
        out_row[v - vb] = value;
        delta = std::max(delta, std::abs(value - prev_row[v - vb]));
      }
      *chunk_delta = delta;
    } else {
      kern.combine_row(use_out ? out_scores : nullptr,
                       use_in ? in_scores : nullptr, config.w_out, config.w_in,
                       table.WeightedLabelTermRow(lu), labels2.data() + vb,
                       prev_row, out_row, tile, chunk_delta);
    }
  };

  // Indexed chunk body: rows [begin, end) x all v, tiled over v so the
  // tile's N±(v) structures and prev-row slices are reused across the
  // chunk's rows. Visit order per pair is identical either way; only the
  // (u, v) evaluation order changes, which the Jacobi sweep is invariant
  // to. Templated on the mapping kind (dispatched once per chunk) so the
  // per-pair operator inlines switch-free into the tile loop.
  auto evaluate_chunk_indexed = [&]<MappingKind M>(int worker, size_t begin,
                                                   size_t end) {
    const DenseIndex& di = *index;
    const LabelClassTable& table = di.table();
    const ClassCompatView compat = table.view();
    MatchingScratch* worker_scratch = &scratch[worker];
    const double* prev_data = prev.data();
    auto score = [prev_data, n2](NodeId x, NodeId y) -> double {
      return prev_data[static_cast<size_t>(x) * n2 + y];
    };
    double chunk_delta = 0.0;
    VTileViews& views = tile_views[worker];
    for (size_t vb = 0; vb < n2; vb += kDenseVTile) {
      const NodeId v_hi = static_cast<NodeId>(std::min(vb + kDenseVTile, n2));
      const size_t tile = v_hi - vb;
      if (use_out) {
        views.out.resize(tile);
        for (size_t t = 0; t < tile; ++t) {
          views.out[t] = di.Out2(static_cast<NodeId>(vb + t));
        }
      }
      if (use_in) {
        views.in.resize(tile);
        for (size_t t = 0; t < tile; ++t) {
          views.in[t] = di.In2(static_cast<NodeId>(vb + t));
        }
      }
      views.out_scores.resize(tile);
      views.in_scores.resize(tile);
      for (size_t u_index = begin; u_index < end; ++u_index) {
        const NodeId u = static_cast<NodeId>(u_index);
        const LabelId lu = g1.Label(u);
        // One tile-granularity operator call per direction: S1-side state
        // hoists across the tile's v's.
        if (use_out) {
          DirectionScoreGroupedTile<M>(op.omega, config.matching, di.Out1(u),
                                       {views.out.data(), tile}, compat,
                                       score, worker_scratch,
                                       views.out_scores.data());
        }
        if (use_in) {
          DirectionScoreGroupedTile<M>(op.omega, config.matching, di.In1(u),
                                       {views.in.data(), tile}, compat, score,
                                       worker_scratch,
                                       views.in_scores.data());
        }
        combine_tile(table, u, lu, vb, v_hi, tile, views.out_scores.data(),
                     views.in_scores.data(), &chunk_delta);
      }
    }
    if (chunk_delta > worker_delta[worker].value) {
      worker_delta[worker].value = chunk_delta;
    }
  };

  // Panel chunk body: the vectorized max-family tile path. Per (row p,
  // panel) the kernel walks only the precomputed work list of p's label
  // class — masked 4-slot gathers of the previous-score row with a running
  // per-entry maximum (plus the slot-space column maxima for the
  // both-sides operator) — instead of re-intersecting class runs per
  // (p, v). Values are bit-identical to DirectionScoreGroupedTile: maxima
  // are exact and order-free, rows are walked in the same ascending
  // position order, and a skipped zero `best` equals the scalar
  // `acc[t] += 0.0`.
  auto evaluate_chunk_panel = [&]<MappingKind M>(int worker, size_t begin,
                                                 size_t end) {
    static_assert(M == MappingKind::kMaxPerRow ||
                  M == MappingKind::kMaxBothSides);
    constexpr bool kBothSides = M == MappingKind::kMaxBothSides;
    const DenseIndex& di = *index;
    const LabelClassTable& table = di.table();
    MatchingScratch* worker_scratch = &scratch[worker];
    PanelScratch& ps = panel_scratch[worker];
    const double* prev_data = prev.data();
    double chunk_delta = 0.0;
    VTileViews& views = tile_views[worker];

    auto eval_panel = [&](const simd::TilePanel& panel,
                          const GroupedNeighborhood& s1, double* out) {
      const size_t entries = panel.entries;
      const size_t m1 = s1.size;
      if (m1 == 0) {
        // Empty-S1 conventions of DirectionScoreGroupedT<M>: max-per-row
        // is vacuously perfect; both-sides is 1 only when S2 is empty too,
        // otherwise the all-zero column sum flows through Ωχ.
        for (size_t t = 0; t < entries; ++t) {
          if constexpr (!kBothSides) {
            out[t] = 1.0;
          } else {
            const uint32_t n2t = panel.sizes[t];
            if (n2t == 0) {
              out[t] = 1.0;
              continue;
            }
            const double omega = OmegaValue(op.omega, 0, n2t);
            FSIM_DCHECK(omega > 0.0);
            out[t] = 0.0 / omega;
          }
        }
        return;
      }
      // Position-ascending S1 row maps, as in the scalar tile path.
      auto& row_class = worker_scratch->row_class;
      auto& row_node = worker_scratch->row_node;
      row_class.resize(m1);
      row_node.resize(m1);
      for (const ClassGroup& ga : s1.groups) {
        for (uint32_t i = ga.begin; i < ga.end; ++i) {
          row_class[s1.pos[i]] = ga.label;
          row_node[s1.pos[i]] = s1.nodes[i];
        }
      }
      auto& acc = worker_scratch->tile_acc;
      acc.assign(entries, 0.0);
      if constexpr (kBothSides) {
        // One bulk zero of the whole slot range. Pad slots get max-written
        // by the kernel but are never read back (inv points only at real
        // candidates), so zeroing them too is harmless — and much cheaper
        // than a kernel call per entry.
        kern.fill(ps.colmax.data(), panel.SlotCount(), 0.0);
      }
      for (size_t p = 0; p < m1; ++p) {
        const std::span<const simd::PanelWorkItem> items =
            panel.WorkList(static_cast<LabelId>(row_class[p]));
        const double* prow =
            prev_data + static_cast<size_t>(row_node[p]) * n2;
        if constexpr (kBothSides) {
          kern.tile_row_pass_colmax(items.data(), items.size(),
                                    panel.ids.data(), prow, acc.data(),
                                    ps.colmax.data());
        } else {
          kern.tile_row_pass(items.data(), items.size(), panel.ids.data(),
                             prow, acc.data());
        }
      }
      // Finalize. The per-entry Ωχ switch and division run vectorized in
      // the normalize kernel (bit-identical to the scalar OmegaValue +
      // divide — kernels.h contract). The both-sides column sum reads the
      // slot-space maxima through the panel's inverse permutation, which
      // is exactly the scalar path's position-ascending summation order.
      const double m1d = static_cast<double>(m1);
      const uint32_t omega_kind = static_cast<uint32_t>(op.omega);
      if constexpr (kBothSides) {
        const double* colmax = ps.colmax.data();
        double* sums = ps.sums.data();
        for (size_t t = 0; t < entries; ++t) {
          double sum = acc[t];
          const uint32_t sb = panel.entry_off[t];
          const uint32_t n2t = panel.sizes[t];
          for (uint32_t j = 0; j < n2t; ++j) {
            sum += colmax[panel.inv[sb + j]];
          }
          sums[t] = sum;
        }
        kern.normalize_tile(sums, panel.sizes.data(), entries, omega_kind,
                            m1d, out);
      } else {
        kern.normalize_tile(acc.data(), panel.sizes.data(), entries,
                            omega_kind, m1d, out);
      }
    };

    size_t tile_index = 0;
    for (size_t vb = 0; vb < n2; vb += kDenseVTile, ++tile_index) {
      const NodeId v_hi = static_cast<NodeId>(std::min(vb + kDenseVTile, n2));
      const size_t tile = v_hi - vb;
      views.out_scores.resize(tile);
      views.in_scores.resize(tile);
      for (size_t u_index = begin; u_index < end; ++u_index) {
        const NodeId u = static_cast<NodeId>(u_index);
        const LabelId lu = g1.Label(u);
        if (use_out) {
          eval_panel(out_panels->tiles[tile_index], di.Out1(u),
                     views.out_scores.data());
        }
        if (use_in) {
          eval_panel(in_panels->tiles[tile_index], di.In1(u),
                     views.in_scores.data());
        }
        combine_tile(table, u, lu, vb, v_hi, tile, views.out_scores.data(),
                     views.in_scores.data(), &chunk_delta);
      }
    }
    if (chunk_delta > worker_delta[worker].value) {
      worker_delta[worker].value = chunk_delta;
    }
  };

  // Lookup fallback: the seed-era per-visit path, kept verbatim as the
  // reference the indexed path is differentially tested against.
  auto evaluate_chunk_lookup = [&](int worker, size_t begin, size_t end) {
    MatchingScratch* worker_scratch = &scratch[worker];
    double chunk_delta = 0.0;
    for (size_t u_index = begin; u_index < end; ++u_index) {
      const NodeId u = static_cast<NodeId>(u_index);
      double* out_row = curr.data() + u_index * n2;
      for (NodeId v = 0; v < n2; ++v) {
        double value;
        if (config.pin_diagonal && u == v) {
          value = 1.0;
        } else {
          const double out_score =
              DirectionScore(op, config.matching, g1.OutNeighbors(u),
                             g2.OutNeighbors(v), lookup, worker_scratch);
          const double in_score =
              DirectionScore(op, config.matching, g1.InNeighbors(u),
                             g2.InNeighbors(v), lookup, worker_scratch);
          value = config.w_out * out_score + config.w_in * in_score +
                  label_weight *
                      LabelTermValue(config, lsim, g1.Label(u), g2.Label(v));
        }
        out_row[v] = value;
        chunk_delta =
            std::max(chunk_delta, std::abs(value - prev[u_index * n2 + v]));
      }
    }
    if (chunk_delta > worker_delta[worker].value) {
      worker_delta[worker].value = chunk_delta;
    }
  };

  // Pre-reserve so the per-iteration push never reallocates mid-loop.
  if (config.record_delta_history) stats.delta_history.reserve(max_iters);

  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    FSIM_TRACE_SPAN_ARG("dense.iter", iter);
    for (auto& d : worker_delta) d.value = 0.0;
    // Chunks of u-rows: rows are independent under double buffering, and
    // row granularity amortizes the scheduling cost that per-pair items
    // would pay on the dense matrix.
    pool.ParallelForChunked(
        n1, kDenseRowGrain, [&](int worker, size_t begin, size_t end) {
          if (!index) {
            evaluate_chunk_lookup(worker, begin, end);
            return;
          }
          switch (op.mapping) {
            case MappingKind::kMaxPerRow:
              if (simd_tiles) {
                evaluate_chunk_panel
                    .template operator()<MappingKind::kMaxPerRow>(worker,
                                                                  begin, end);
              } else {
                evaluate_chunk_indexed
                    .template operator()<MappingKind::kMaxPerRow>(worker,
                                                                  begin, end);
              }
              break;
            case MappingKind::kInjectiveRow:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kInjectiveRow>(worker,
                                                                   begin, end);
              break;
            case MappingKind::kMaxBothSides:
              if (simd_tiles) {
                evaluate_chunk_panel
                    .template operator()<MappingKind::kMaxBothSides>(
                        worker, begin, end);
              } else {
                evaluate_chunk_indexed
                    .template operator()<MappingKind::kMaxBothSides>(
                        worker, begin, end);
              }
              break;
            case MappingKind::kInjectiveSym:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kInjectiveSym>(worker,
                                                                   begin, end);
              break;
            case MappingKind::kProduct:
              evaluate_chunk_indexed
                  .template operator()<MappingKind::kProduct>(worker, begin,
                                                              end);
              break;
          }
        });
    double max_delta = 0.0;
    for (const auto& d : worker_delta) max_delta = std::max(max_delta, d.value);
    prev.swap(curr);
    stats.iterations = iter;
    stats.final_delta = max_delta;
    if (config.record_delta_history) stats.delta_history.push_back(max_delta);
    if (max_delta < config.epsilon) {
      stats.converged = true;
      break;
    }
  }
  stats.iterate_seconds = iterate_timer.Seconds();

  return DenseFSimScores(n1, n2, std::move(prev), std::move(stats));
}

}  // namespace fsim
