#include "core/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/fsim_engine.h"
#include "core/operators.h"
#include "core/pair_store.h"
#include "graph/edits.h"

namespace fsim {

IncrementalFSim::IncrementalFSim(Graph g1, Graph g2, FSimConfig config,
                                 IncrementalOptions options)
    : g1_(std::move(g1)),
      g2_(std::move(g2)),
      config_(std::move(config)),
      options_(options),
      lsim_(*g1_.dict(), config_.label_sim) {}

Result<IncrementalFSim> IncrementalFSim::Create(Graph g1, Graph g2,
                                                FSimConfig config,
                                                IncrementalOptions options) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (config.upper_bound) {
    return Status::InvalidArgument(
        "incremental maintenance requires the full θ-candidate set "
        "(upper-bound pruning decisions depend on the edges being edited)");
  }
  if (options.propagation_tolerance <= 0.0) {
    return Status::InvalidArgument("propagation_tolerance must be positive");
  }

  IncrementalFSim inc(std::move(g1), std::move(g2), std::move(config),
                      options);

  // The differential worklist re-evaluates pairs against the live graphs,
  // so the snapshot-time CSR neighbor index would go stale on the first
  // edit — skip building it.
  FSIM_ASSIGN_OR_RETURN(
      PairStore store,
      PairStore::Build(inc.g1_, inc.g2_, inc.config_, inc.lsim_,
                       /*build_neighbor_index=*/false));
  // Move the initialized candidate set into the mutable single-buffer table;
  // prev_ holds the FSim^0 initialization right after Build.
  inc.keys_ = store.TakeKeys();
  inc.values_ = store.TakeScores();
  inc.index_ = store.TakeIndex();

  // Row ranges (keys_ are sorted u-major) and the v-grouped CSR.
  const size_t n1 = inc.g1_.NumNodes();
  const size_t n2 = inc.g2_.NumNodes();
  inc.row_offsets_.assign(n1 + 1, 0);
  std::vector<uint32_t> col_counts(n2, 0);
  for (uint64_t key : inc.keys_) {
    ++inc.row_offsets_[PairFirst(key) + 1];
    ++col_counts[PairSecond(key)];
  }
  for (size_t u = 0; u < n1; ++u) {
    inc.row_offsets_[u + 1] += inc.row_offsets_[u];
  }
  inc.col_offsets_.assign(n2 + 1, 0);
  for (size_t v = 0; v < n2; ++v) {
    inc.col_offsets_[v + 1] = inc.col_offsets_[v] + col_counts[v];
  }
  inc.col_pairs_.resize(inc.keys_.size());
  std::vector<uint32_t> cursor(inc.col_offsets_.begin(),
                               inc.col_offsets_.end() - 1);
  for (size_t i = 0; i < inc.keys_.size(); ++i) {
    inc.col_pairs_[cursor[PairSecond(inc.keys_[i])]++] =
        static_cast<uint32_t>(i);
  }

  inc.in_queue_.assign(inc.keys_.size(), 0);
  inc.pending_.assign(inc.keys_.size(), 0.0);
  inc.SolveFull();
  return inc;
}

double IncrementalFSim::Evaluate(size_t i) {
  const NodeId u = PairFirst(keys_[i]);
  const NodeId v = PairSecond(keys_[i]);
  if (config_.pin_diagonal && u == v) return 1.0;

  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim_.Compatible(g1_.Label(x), g2_.Label(y), config_.theta)) {
      return -1.0;
    }
    uint32_t idx = index_.Find(PairKey(x, y));
    return idx == FlatPairMap::kNotFound ? 0.0 : values_[idx];
  };

  const OperatorConfig op = config_.operators();
  const double out_score =
      DirectionScore(op, config_.matching, g1_.OutNeighbors(u),
                     g2_.OutNeighbors(v), lookup, &scratch_);
  const double in_score =
      DirectionScore(op, config_.matching, g1_.InNeighbors(u),
                     g2_.InNeighbors(v), lookup, &scratch_);

  double label_term = 0.0;
  switch (config_.label_term) {
    case LabelTermKind::kLabelSim:
      label_term = lsim_.Sim(g1_.Label(u), g2_.Label(v));
      break;
    case LabelTermKind::kZero:
      label_term = 0.0;
      break;
    case LabelTermKind::kOne:
      label_term = 1.0;
      break;
  }
  return config_.w_out * out_score + config_.w_in * in_score +
         (1.0 - config_.w_out - config_.w_in) * label_term;
}

void IncrementalFSim::SolveFull() {
  // Synchronous Jacobi sweeps as in ComputeFSim. The single score table is
  // double-buffered locally; after convergence values_ holds the fixpoint
  // approximation with residual < epsilon.
  std::vector<double> next(values_.size());
  const uint32_t max_iters = FSimIterationBound(config_);
  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    double max_delta = 0.0;
    for (size_t i = 0; i < keys_.size(); ++i) {
      next[i] = Evaluate(i);
      max_delta = std::max(max_delta, std::abs(next[i] - values_[i]));
    }
    values_.swap(next);
    if (max_delta < config_.epsilon) break;
  }
}

void IncrementalFSim::PushInfluence(NodeId u, NodeId v, double influence) {
  uint32_t idx = index_.Find(PairKey(u, v));
  if (idx == FlatPairMap::kNotFound) return;
  pending_[idx] += influence;
  if (in_queue_[idx]) return;
  if (pending_[idx] <= options_.propagation_tolerance) return;
  in_queue_[idx] = 1;
  queue_.push_back(idx);
}

void IncrementalFSim::PushDependents(size_t i, double delta) {
  const NodeId u = PairFirst(keys_[i]);
  const NodeId v = PairSecond(keys_[i]);
  // (u, v) is read by the out-direction of pairs in N-(u) x N-(v), where it
  // can move the result by at most w+ * delta (the mapping sum is
  // 1-Lipschitz per entry and Ωχ >= 1) ...
  if (config_.w_out > 0.0) {
    const double influence = config_.w_out * delta;
    for (NodeId up : g1_.InNeighbors(u)) {
      for (NodeId vp : g2_.InNeighbors(v)) {
        PushInfluence(up, vp, influence);
      }
    }
  }
  // ... and by the in-direction of pairs in N+(u) x N+(v).
  if (config_.w_in > 0.0) {
    const double influence = config_.w_in * delta;
    for (NodeId up : g1_.OutNeighbors(u)) {
      for (NodeId vp : g2_.OutNeighbors(v)) {
        PushInfluence(up, vp, influence);
      }
    }
  }
}

Status IncrementalFSim::Propagate() {
  Timer timer;
  const double tau = options_.propagation_tolerance;
  const double w = config_.w_out + config_.w_in;

  // Wave cap (the Corollary 1 argument applied to the repair): changes
  // shrink by at least the contraction factor w per propagation wave, so
  // after ceil(log_w(tau)) waves every remaining change is below tau and
  // would be absorbed anyway. The cap also guarantees termination when the
  // greedy matching's occasional non-Lipschitz tie flips would otherwise
  // sustain a sub-tau-adjacent oscillation.
  uint32_t max_waves = 1;
  if (w > 0.0 && w < 1.0 && tau < 1.0) {
    max_waves = static_cast<uint32_t>(
                    std::ceil(std::log(tau) / std::log(w))) +
                2;
  }

  uint64_t recomputed = 0;
  uint64_t changed = 0;
  uint32_t wave = 0;
  size_t wave_end = queue_.size();
  bool truncated = false;
  while (queue_head_ < queue_.size()) {
    if (queue_head_ == wave_end) {
      ++wave;
      wave_end = queue_.size();
      if (wave >= max_waves) {
        truncated = true;
        break;
      }
    }
    const uint32_t i = queue_[queue_head_++];
    in_queue_[i] = 0;
    pending_[i] = 0.0;
    const double fresh = Evaluate(i);
    ++recomputed;
    if (recomputed > options_.max_updates_per_edit) {
      truncated = true;
      break;
    }
    const double delta = std::abs(fresh - values_[i]);
    values_[i] = fresh;
    if (delta > tau) {
      ++changed;
      PushDependents(i, delta);
    }
  }
  // Reset any worklist remainder so the engine stays usable (wave-capped
  // leftovers carry sub-tolerance influence by the geometric-decay argument).
  for (size_t q = queue_head_; q < queue_.size(); ++q) {
    in_queue_[queue_[q]] = 0;
    pending_[queue_[q]] = 0.0;
  }
  queue_.clear();
  queue_head_ = 0;
  last_edit_.recomputed = recomputed;
  last_edit_.changed = changed;
  last_edit_.waves = wave;
  last_edit_.propagate_seconds = timer.Seconds();
  if (recomputed > options_.max_updates_per_edit) {
    return Status::Internal(StrFormat(
        "edit exceeded max_updates_per_edit (%llu); scores may not have "
        "re-converged",
        static_cast<unsigned long long>(options_.max_updates_per_edit)));
  }
  (void)truncated;  // wave-cap truncation is within the documented tolerance
  return Status::OK();
}

void IncrementalFSim::SeedEndpointPairs(int graph_index, NodeId a, NodeId b) {
  size_t seeded = 0;
  if (graph_index == 1) {
    for (NodeId x : {a, b}) {
      for (uint32_t i = row_offsets_[x]; i < row_offsets_[x + 1]; ++i) {
        if (!in_queue_[i]) {
          in_queue_[i] = 1;
          queue_.push_back(i);
          ++seeded;
        }
      }
    }
  } else {
    for (NodeId x : {a, b}) {
      for (uint32_t c = col_offsets_[x]; c < col_offsets_[x + 1]; ++c) {
        const uint32_t i = col_pairs_[c];
        if (!in_queue_[i]) {
          in_queue_[i] = 1;
          queue_.push_back(i);
          ++seeded;
        }
      }
    }
  }
  last_edit_.seeded_pairs = seeded;
}

Status IncrementalFSim::ApplyEdit(int graph_index, NodeId from, NodeId to,
                                  bool insert) {
  if (graph_index != 1 && graph_index != 2) {
    return Status::InvalidArgument("graph_index must be 1 or 2");
  }
  last_edit_ = EditStats{};
  Timer rebuild_timer;
  Graph& target = graph_index == 1 ? g1_ : g2_;
  FSIM_ASSIGN_OR_RETURN(Graph edited,
                        insert ? WithEdgeAdded(target, from, to)
                               : WithEdgeRemoved(target, from, to));
  target = std::move(edited);
  last_edit_.graph_rebuild_seconds = rebuild_timer.Seconds();

  // The pairs whose own Equation 3 inputs changed shape: `from`'s
  // out-neighbor set and `to`'s in-neighbor set in the edited graph.
  SeedEndpointPairs(graph_index, from, to);
  return Propagate();
}

Status IncrementalFSim::InsertEdge(int graph_index, NodeId from, NodeId to) {
  return ApplyEdit(graph_index, from, to, /*insert=*/true);
}

Status IncrementalFSim::RemoveEdge(int graph_index, NodeId from, NodeId to) {
  return ApplyEdit(graph_index, from, to, /*insert=*/false);
}

FSimScores IncrementalFSim::Snapshot() const {
  FSimStats stats;
  stats.maintained_pairs = keys_.size();
  stats.theta_candidates = keys_.size();
  stats.converged = true;
  return FSimScores(keys_, values_, index_, stats);
}

}  // namespace fsim
