#include "core/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/fsim_engine.h"
#include "core/operators.h"
#include "core/pair_store.h"
#include "obs/trace.h"

namespace fsim {

namespace {

/// The sharpened per-entry influence bound of one direction of a dependent
/// pair (see PushDependents in the header) — the shared operators.h
/// definition, kept under its historical local name.
double InfluenceFactor(const OperatorConfig& op, size_t n1, size_t n2) {
  return PairInfluenceFactor(op, n1, n2);
}

}  // namespace

IncrementalFSim::IncrementalFSim(const Graph& g1, const Graph& g2,
                                 FSimConfig config, IncrementalOptions options)
    : g1_(g1),
      g2_(g2),
      config_(std::move(config)),
      options_(options),
      op_(config_.operators()),
      lsim_(*g1.dict(), config_.label_sim) {
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  scratch_.resize(static_cast<size_t>(std::max(config_.num_threads, 1)));
}

Result<IncrementalFSim> IncrementalFSim::Create(Graph g1, Graph g2,
                                                FSimConfig config,
                                                IncrementalOptions options,
                                                const FSimScores* warm_seed) {
  FSIM_RETURN_NOT_OK(ValidateFSimConfig(g1, g2, config));
  if (config.upper_bound) {
    return Status::InvalidArgument(
        "incremental maintenance requires the full θ-candidate set "
        "(upper-bound pruning decisions depend on the edges being edited)");
  }
  if (options.propagation_tolerance <= 0.0) {
    return Status::InvalidArgument("propagation_tolerance must be positive");
  }

  IncrementalFSim inc(g1, g2, std::move(config), options);

  // Enumerate + initialize the candidate pairs; the engine maintains its own
  // edit-capable neighbor index, so PairStore's snapshot-time one is skipped.
  FSIM_ASSIGN_OR_RETURN(
      PairStore store,
      PairStore::Build(g1, g2, inc.config_, inc.lsim_,
                       /*build_neighbor_index=*/false));
  // Move the initialized candidate set into the mutable single-buffer table;
  // prev_ holds the FSim^0 initialization right after Build.
  inc.keys_ = store.TakeKeys();
  inc.values_ = store.TakeScores();
  inc.index_ = store.TakeIndex();

  // Row ranges (keys_ are sorted u-major) and the v-grouped CSR.
  const size_t n1 = inc.g1_.NumNodes();
  const size_t n2 = inc.g2_.NumNodes();
  inc.row_offsets_.assign(n1 + 1, 0);
  std::vector<uint32_t> col_counts(n2, 0);
  for (uint64_t key : inc.keys_) {
    ++inc.row_offsets_[PairFirst(key) + 1];
    ++col_counts[PairSecond(key)];
  }
  for (size_t u = 0; u < n1; ++u) {
    inc.row_offsets_[u + 1] += inc.row_offsets_[u];
  }
  inc.col_offsets_.assign(n2 + 1, 0);
  for (size_t v = 0; v < n2; ++v) {
    inc.col_offsets_[v + 1] = inc.col_offsets_[v] + col_counts[v];
  }
  inc.col_pairs_.resize(inc.keys_.size());
  std::vector<uint32_t> cursor(inc.col_offsets_.begin(),
                               inc.col_offsets_.end() - 1);
  for (size_t i = 0; i < inc.keys_.size(); ++i) {
    inc.col_pairs_[cursor[PairSecond(inc.keys_[i])]++] =
        static_cast<uint32_t>(i);
  }

  inc.in_queue_.assign(inc.keys_.size(), 0);
  inc.dirty_dir_.assign(inc.keys_.size(), 0);
  inc.pending_out_.assign(inc.keys_.size(), 0.0);
  inc.pending_in_.assign(inc.keys_.size(), 0.0);
  inc.out_cache_.assign(inc.keys_.size(), 0.0);
  inc.in_cache_.assign(inc.keys_.size(), 0.0);
  inc.influence_factor_out_.resize(inc.keys_.size());
  inc.influence_factor_in_.resize(inc.keys_.size());
  inc.const_term_.resize(inc.keys_.size());
  const double label_weight = 1.0 - inc.config_.w_out - inc.config_.w_in;
  for (size_t i = 0; i < inc.keys_.size(); ++i) {
    const NodeId u = PairFirst(inc.keys_[i]);
    const NodeId v = PairSecond(inc.keys_[i]);
    inc.influence_factor_out_[i] =
        InfluenceFactor(inc.op_, inc.g1_.OutDegree(u), inc.g2_.OutDegree(v));
    inc.influence_factor_in_[i] =
        InfluenceFactor(inc.op_, inc.g1_.InDegree(u), inc.g2_.InDegree(v));
    double label_term = 0.0;
    switch (inc.config_.label_term) {
      case LabelTermKind::kLabelSim:
        label_term = inc.lsim_.Sim(inc.g1_.Label(u), inc.g2_.Label(v));
        break;
      case LabelTermKind::kZero:
        label_term = 0.0;
        break;
      case LabelTermKind::kOne:
        label_term = 1.0;
        break;
    }
    inc.const_term_[i] = label_weight * label_term;
  }
  inc.nbr_index_.Build(inc.IndexEnv(), inc.keys_, inc.config_);
  // Warm start: overwrite the FSim^0 initialization with the seed's values
  // when the keysets agree exactly. Any mismatch (different graphs, config,
  // or a truncated snapshot) keeps the cold initialization — correctness
  // never depends on the seed, only the solve's iteration count does.
  if (warm_seed != nullptr && warm_seed->keys() == inc.keys_) {
    inc.values_ = warm_seed->values();
  }
  inc.SolveFull();
  return inc;
}

double IncrementalFSim::ComputeDirection(size_t i, int dir,
                                         MatchingScratch* scratch) {
  const NodeId u = PairFirst(keys_[i]);
  const NodeId v = PairSecond(keys_[i]);
  if (nbr_index_.enabled()) {
    const double* vals = values_.data();
    auto score_of = [vals](uint32_t ref) -> double { return vals[ref]; };
    if (dir == IncrementalNeighborIndex::kOut) {
      return DirectionScoreIndexed(
          op_, config_.matching, g1_.OutDegree(u), g2_.OutDegree(v),
          nbr_index_.Refs(i, IncrementalNeighborIndex::kOut), score_of,
          scratch);
    }
    return DirectionScoreIndexed(
        op_, config_.matching, g1_.InDegree(u), g2_.InDegree(v),
        nbr_index_.Refs(i, IncrementalNeighborIndex::kIn), score_of,
        scratch);
  }
  auto lookup = [&](NodeId x, NodeId y) -> double {
    if (!lsim_.Compatible(g1_.Label(x), g2_.Label(y), config_.theta)) {
      return -1.0;
    }
    uint32_t idx = index_.Find(PairKey(x, y));
    return idx == FlatPairMap::kNotFound ? 0.0 : values_[idx];
  };
  if (dir == IncrementalNeighborIndex::kOut) {
    return DirectionScore(op_, config_.matching, g1_.OutNeighbors(u),
                          g2_.OutNeighbors(v), lookup, scratch);
  }
  return DirectionScore(op_, config_.matching, g1_.InNeighbors(u),
                        g2_.InNeighbors(v), lookup, scratch);
}

double IncrementalFSim::EvaluateDirty(size_t i, uint8_t dirty,
                                      MatchingScratch* scratch) {
  const NodeId u = PairFirst(keys_[i]);
  const NodeId v = PairSecond(keys_[i]);
  if (config_.pin_diagonal && u == v) return 1.0;
  if ((dirty & kDirtyOut) && config_.w_out > 0.0) {
    out_cache_[i] = ComputeDirection(i, IncrementalNeighborIndex::kOut, scratch);
  }
  if ((dirty & kDirtyIn) && config_.w_in > 0.0) {
    in_cache_[i] = ComputeDirection(i, IncrementalNeighborIndex::kIn, scratch);
  }
  return config_.w_out * out_cache_[i] + config_.w_in * in_cache_[i] +
         const_term_[i];
}

void IncrementalFSim::SolveFull() {
  // Synchronous Jacobi sweeps as in ComputeFSim, with the same delta-driven
  // active-set scheduling when config_.active_set asks for it and the
  // maintained index is live (the serving layer's RefreshDriver passes its
  // FSimConfig straight through, so a warm-started service's background
  // initial solve freezes converged pairs exactly like the batch engine).
  // The maintained index always materializes both direction spans, so the
  // reverse-dependency walk works for single-direction configs too. After
  // the loop one extra *full* recording sweep re-establishes the cache
  // invariant (values_ = combine(caches) with the caches computed against
  // the pre-swap table) and its residual decides convergence — it only
  // shrinks under the contraction, so the extra sweep never loosens the
  // epsilon guarantee, and it also washes out any tolerance-mode
  // frontier slack beyond the documented τ-style bound.
  const size_t n = keys_.size();
  std::vector<double> next(n);
  const uint32_t max_iters = FSimIterationBound(config_);
  // Reverse-dependency soundness (see ActiveSetDriver::ReverseDepScheme):
  // in-lists must be the transpose of the out-lists, or — the AsUndirected
  // adaptation — empty with symmetric out-lists, in which case the
  // out-span is its own dependent list.
  auto total_in = [](const DynamicGraph& g) {
    size_t total = 0;
    for (NodeId u = 0; u < g.NumNodes(); ++u) total += g.InDegree(u);
    return total;
  };
  const size_t in1 = total_in(g1_);
  const size_t in2 = total_in(g2_);
  const bool transpose =
      in1 == g1_.NumEdges() && in2 == g2_.NumEdges();
  const bool symmetric_out = in1 == 0 && in2 == 0;
  const bool active = config_.active_set != ActiveSetMode::kOff &&
                      nbr_index_.enabled() &&
                      config_.w_out + config_.w_in > 0.0 &&
                      (transpose || symmetric_out);
  const bool tolerance_mode =
      active && config_.active_set == ActiveSetMode::kTolerance;
  const double tol = config_.frontier_tolerance;
  // The maintained index skips pinned diagonal spans, so the init -> 1 snap
  // of the first sweep cannot notify its dependents through them; a second
  // unconditional full sweep absorbs it (diagonals never change again).
  const uint32_t initial_full_sweeps = config_.pin_diagonal ? 2 : 1;
  // Marking deferral, as in ActiveSetDriver: pay for the reverse span walk
  // only once enough pairs look freezable, and keep marking from then on.
  bool marking = active && config_.active_set_activation_fraction == 0.0;
  bool can_build_frontier = false;

  std::vector<uint32_t> stamp;   // exact mode: epoch-tagged dirty marks
  std::vector<double> carry;     // tolerance mode: accumulated influence
  std::vector<uint32_t> frontier;
  std::vector<double> fresh;
  if (active) {
    stamp.assign(n, 0);
    if (tolerance_mode) carry.assign(n, 0.0);
  }

  auto mark_dependents = [&](size_t i, double delta, uint32_t epoch) {
    // No IsPrunedRef guard needed here: Create rejects upper_bound
    // configs, so the maintained index never contains tagged refs.
    auto mark = [&](std::span<const NeighborRef> refs, double base,
                    const std::vector<double>& factor) {
      for (const NeighborRef& e : refs) {
        if (tolerance_mode) {
          carry[e.ref] += base * factor[e.ref];
        } else {
          stamp[e.ref] = epoch;
        }
      }
    };
    if (symmetric_out) {
      // Undirected adaptation: the out-span is its own dependent list; the
      // in-direction reads empty sets everywhere and never changes.
      if (config_.w_out > 0.0) {
        mark(nbr_index_.Refs(i, IncrementalNeighborIndex::kOut),
             config_.w_out * delta, influence_factor_out_);
      }
      return;
    }
    if (config_.w_out > 0.0) {
      mark(nbr_index_.Refs(i, IncrementalNeighborIndex::kIn),
           config_.w_out * delta, influence_factor_out_);
    }
    if (config_.w_in > 0.0) {
      mark(nbr_index_.Refs(i, IncrementalNeighborIndex::kOut),
           config_.w_in * delta, influence_factor_in_);
    }
  };
  auto build_frontier = [&](uint32_t epoch) {
    frontier.clear();
    if (tolerance_mode) {
      for (size_t j = 0; j < n; ++j) {
        if (carry[j] > tol) {
          frontier.push_back(static_cast<uint32_t>(j));
          carry[j] = 0.0;
        }
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        if (stamp[j] == epoch) frontier.push_back(static_cast<uint32_t>(j));
      }
    }
  };

  uint32_t epoch = 0;
  for (uint32_t iter = 1; iter <= max_iters; ++iter) {
    const bool full =
        !active || !can_build_frontier || iter <= initial_full_sweeps ||
        static_cast<double>(frontier.size()) >=
            config_.frontier_density_threshold * static_cast<double>(n);
    ++epoch;
    double max_delta = 0.0;
    size_t evaluated = 0;
    size_t freeze_signal = 0;   // tolerance: sub-tol deltas
    uint64_t dep_bound = 0;     // exact: changed pairs' dependent cover
    auto absorb = [&](size_t i, double value) {
      const double delta = std::abs(value - values_[i]);
      max_delta = std::max(max_delta, delta);
      if (tolerance_mode && delta <= tol) ++freeze_signal;
      if (delta != 0.0) {
        if (marking) {
          mark_dependents(i, delta, epoch);
        } else if (!tolerance_mode) {
          dep_bound += nbr_index_.Refs(i, IncrementalNeighborIndex::kOut).size() +
                       nbr_index_.Refs(i, IncrementalNeighborIndex::kIn).size();
        }
      }
    };
    if (full) {
      // Jacobi evaluations: each reads the pre-sweep values_ and writes one
      // next[i], so the parallel sweep is bit-identical to the serial loop
      // (the absorb/marking phase below stays serial either way).
      if (pool_) {
        pool_->ParallelForChunked(
            n, config_.iterate_grain, [&](int worker, size_t b, size_t e) {
              MatchingScratch* scratch = &scratch_[worker];
              for (size_t i = b; i < e; ++i) {
                next[i] = EvaluateDirty(i, kDirtyOut | kDirtyIn, scratch);
              }
            });
      } else {
        for (size_t i = 0; i < n; ++i) {
          next[i] = EvaluateDirty(i, kDirtyOut | kDirtyIn, &scratch_[0]);
        }
      }
      // The full evaluation absorbs all pending influence; only this
      // sweep's fresh marks may carry forward.
      if (tolerance_mode && marking) std::fill(carry.begin(), carry.end(), 0.0);
      for (size_t i = 0; i < n; ++i) absorb(i, next[i]);
      values_.swap(next);
      evaluated = n;
    } else {
      // Two phases keep the Jacobi semantics (every evaluation reads the
      // pre-sweep table); frozen pairs carry their value in place.
      fresh.resize(frontier.size());
      if (pool_) {
        // Priority draining by evaluation cost; fresh values land in an
        // id-keyed scratch since workers see reordered slices.
        if (wave_fresh_.size() < n) wave_fresh_.resize(n);
        pool_->ParallelForFrontier(
            frontier,
            [this](uint32_t i) {
              return static_cast<float>(
                  nbr_index_.Refs(i, IncrementalNeighborIndex::kOut).size() +
                  nbr_index_.Refs(i, IncrementalNeighborIndex::kIn).size());
            },
            config_.iterate_grain,
            [&](int worker, std::span<const uint32_t> ids) {
              MatchingScratch* scratch = &scratch_[worker];
              for (uint32_t i : ids) {
                wave_fresh_[i] = EvaluateDirty(i, kDirtyOut | kDirtyIn, scratch);
              }
            });
        for (size_t k = 0; k < frontier.size(); ++k) {
          fresh[k] = wave_fresh_[frontier[k]];
        }
      } else {
        for (size_t k = 0; k < frontier.size(); ++k) {
          fresh[k] = EvaluateDirty(frontier[k], kDirtyOut | kDirtyIn,
                                   &scratch_[0]);
        }
      }
      for (size_t k = 0; k < frontier.size(); ++k) {
        absorb(frontier[k], fresh[k]);
        values_[frontier[k]] = fresh[k];
      }
      evaluated = frontier.size();
    }
    if (marking) build_frontier(epoch);
    can_build_frontier = marking;
    if (active && !marking) {
      // Same activation signals as ActiveSetDriver: exact mode watches the
      // changed pairs' dependent cover, tolerance the sub-tol fraction
      // (gated on enough skippable pairs to beat the density threshold).
      if (tolerance_mode) {
        const double needed =
            std::max(config_.active_set_activation_fraction *
                         static_cast<double>(evaluated),
                     (1.0 - config_.frontier_density_threshold) *
                         static_cast<double>(n));
        marking = static_cast<double>(freeze_signal) >= needed;
      } else {
        marking = static_cast<double>(dep_bound) <=
                  (1.0 - config_.active_set_activation_fraction) *
                      static_cast<double>(n);
      }
    }
    if (max_delta < config_.epsilon) break;
  }

  double max_delta = 0.0;
  if (pool_) {
    pool_->ParallelForChunked(
        n, config_.iterate_grain, [&](int worker, size_t b, size_t e) {
          MatchingScratch* scratch = &scratch_[worker];
          for (size_t i = b; i < e; ++i) {
            next[i] = EvaluateDirty(i, kDirtyOut | kDirtyIn, scratch);
          }
        });
    for (size_t i = 0; i < n; ++i) {
      max_delta = std::max(max_delta, std::abs(next[i] - values_[i]));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      next[i] = EvaluateDirty(i, kDirtyOut | kDirtyIn, &scratch_[0]);
      max_delta = std::max(max_delta, std::abs(next[i] - values_[i]));
    }
  }
  values_.swap(next);
  converged_ = max_delta < config_.epsilon;
}

void IncrementalFSim::MaybeEnqueue(uint32_t idx) {
  if (in_queue_[idx]) return;
  if (pending_out_[idx] + pending_in_[idx] <=
      options_.propagation_tolerance) {
    return;
  }
  in_queue_[idx] = 1;
  queue_.push_back(idx);
}

void IncrementalFSim::AddPendingOut(uint32_t idx, double influence) {
  pending_out_[idx] += influence;
  MaybeEnqueue(idx);
}

void IncrementalFSim::AddPendingIn(uint32_t idx, double influence) {
  pending_in_[idx] += influence;
  MaybeEnqueue(idx);
}

void IncrementalFSim::PushDependents(size_t i, double delta) {
  if (nbr_index_.enabled()) {
    // Pair i's own spans double as its dependent lists: the in-span refs
    // are the maintained pairs (x, y) with x ∈ N-(u), y ∈ N-(v) — exactly
    // the pairs whose out-direction reads (u, v) — and symmetrically for
    // the out-span. The ref walk replaces |N±(u)|·|N±(v)| hash probes.
    if (config_.w_out > 0.0) {
      const double base = config_.w_out * delta;
      for (const NeighborRef& e :
           nbr_index_.Refs(i, IncrementalNeighborIndex::kIn)) {
        AddPendingOut(e.ref, base * influence_factor_out_[e.ref]);
      }
    }
    if (config_.w_in > 0.0) {
      const double base = config_.w_in * delta;
      for (const NeighborRef& e :
           nbr_index_.Refs(i, IncrementalNeighborIndex::kOut)) {
        AddPendingIn(e.ref, base * influence_factor_in_[e.ref]);
      }
    }
    return;
  }
  const NodeId u = PairFirst(keys_[i]);
  const NodeId v = PairSecond(keys_[i]);
  // (u, v) is read by the out-direction of pairs in N-(u) x N-(v), where it
  // can move the result by at most w+ * c * delta / Ωχ of that dependent
  // (the sharpened Lipschitz bound, see the header) ...
  if (config_.w_out > 0.0) {
    const double base = config_.w_out * delta;
    for (NodeId up : g1_.InNeighbors(u)) {
      for (NodeId vp : g2_.InNeighbors(v)) {
        const uint32_t idx = index_.Find(PairKey(up, vp));
        if (idx == FlatPairMap::kNotFound) continue;
        AddPendingOut(idx, base * influence_factor_out_[idx]);
      }
    }
  }
  // ... and by the in-direction of pairs in N+(u) x N+(v).
  if (config_.w_in > 0.0) {
    const double base = config_.w_in * delta;
    for (NodeId up : g1_.OutNeighbors(u)) {
      for (NodeId vp : g2_.OutNeighbors(v)) {
        const uint32_t idx = index_.Find(PairKey(up, vp));
        if (idx == FlatPairMap::kNotFound) continue;
        AddPendingIn(idx, base * influence_factor_in_[idx]);
      }
    }
  }
}

uint32_t IncrementalFSim::MaxWaves() const {
  // Wave cap (the Corollary 1 argument applied to the repair): changes
  // shrink by at least the contraction factor w per propagation wave, so
  // after ceil(log_w(tau)) waves every remaining change is below tau and
  // would be absorbed anyway. The cap also guarantees termination when the
  // greedy matching's occasional non-Lipschitz tie flips would otherwise
  // sustain a sub-tau-adjacent oscillation.
  const double tau = options_.propagation_tolerance;
  const double w = config_.w_out + config_.w_in;
  if (w > 0.0 && w < 1.0 && tau < 1.0) {
    return static_cast<uint32_t>(std::ceil(std::log(tau) / std::log(w))) + 2;
  }
  return 1;
}

Status IncrementalFSim::FinishPropagate(uint64_t recomputed, uint64_t changed,
                                        uint32_t wave, bool wave_capped,
                                        bool update_capped,
                                        double elapsed_seconds) {
  // Reset any worklist remainder so the engine stays usable. Wave-capped
  // leftovers carry sub-tolerance influence by the geometric-decay argument;
  // update-cap leftovers may not — either way the snapshot reports the
  // truncation via converged=false.
  for (size_t q = queue_head_; q < queue_.size(); ++q) {
    in_queue_[queue_[q]] = 0;
    dirty_dir_[queue_[q]] = 0;
    pending_out_[queue_[q]] = 0.0;
    pending_in_[queue_[q]] = 0.0;
  }
  queue_.clear();
  queue_head_ = 0;
  last_edit_.recomputed = recomputed;
  last_edit_.changed = changed;
  last_edit_.waves = wave;
  last_edit_.truncated = wave_capped || update_capped;
  if (last_edit_.truncated) converged_ = false;
  last_edit_.propagate_seconds = elapsed_seconds;
  if (update_capped) {
    return Status::Internal(StrFormat(
        "edit exceeded max_updates_per_edit (%llu); scores may not have "
        "re-converged",
        static_cast<unsigned long long>(options_.max_updates_per_edit)));
  }
  return Status::OK();
}

Status IncrementalFSim::Propagate() {
  if (pool_) return PropagateWaves();
  FSIM_TRACE_SPAN("incremental.propagate.serial");
  Timer timer;
  const double tau = options_.propagation_tolerance;
  const uint32_t max_waves = MaxWaves();

  uint64_t recomputed = 0;
  uint64_t changed = 0;
  uint32_t wave = 0;
  size_t wave_end = queue_.size();
  bool wave_capped = false;
  bool update_capped = false;
  // Within a wave, absorb the largest accumulated influences first: their
  // deltas then land in dependents' pending sums before those dependents
  // are themselves evaluated, so one evaluation absorbs several inputs and
  // the repeat-evaluation tail of later waves shrinks. A full sort pays
  // more than it saves (measured ~10% of the edit in comparator cache
  // misses), so a linear stable two-class partition around 1/16 of the wave
  // maximum captures the head of the geometric influence distribution
  // instead. Ordering only reshuffles the chaotic iteration; the fixpoint
  // and the τ error budget are order-independent.
  std::vector<uint32_t>& wave_scratch = wave_scratch_;
  auto partition_wave = [&](size_t begin, size_t end) {
    if (end - begin < 64) return;
    double max_pending = 0.0;
    for (size_t q = begin; q < end; ++q) {
      const uint32_t i = queue_[q];
      max_pending =
          std::max(max_pending, pending_out_[i] + pending_in_[i]);
    }
    const double threshold = max_pending / 16.0;
    wave_scratch.clear();
    size_t big = begin;
    for (size_t q = begin; q < end; ++q) {
      const uint32_t i = queue_[q];
      if (pending_out_[i] + pending_in_[i] >= threshold) {
        queue_[big++] = i;
      } else {
        wave_scratch.push_back(i);
      }
    }
    std::copy(wave_scratch.begin(), wave_scratch.end(), queue_.begin() + big);
  };
  partition_wave(queue_head_, wave_end);
  while (queue_head_ < queue_.size()) {
    if (queue_head_ == wave_end) {
      ++wave;
      wave_end = queue_.size();
      if (wave >= max_waves) {
        wave_capped = true;
        break;
      }
      partition_wave(queue_head_, wave_end);
    }
    const uint32_t i = queue_[queue_head_++];
    in_queue_[i] = 0;
    uint8_t dirty = dirty_dir_[i];
    if (pending_out_[i] > 0.0) dirty |= kDirtyOut;
    if (pending_in_[i] > 0.0) dirty |= kDirtyIn;
    dirty_dir_[i] = 0;
    pending_out_[i] = 0.0;
    pending_in_[i] = 0.0;
    const double fresh = EvaluateDirty(i, dirty, &scratch_[0]);
    ++recomputed;
    const double delta = std::abs(fresh - values_[i]);
    // Commit before any truncation check: the evaluation is already paid
    // for, and the committed value is closer to the fixpoint.
    values_[i] = fresh;
    if (delta > tau) {
      ++changed;
      PushDependents(i, delta);
    }
    if (recomputed >= options_.max_updates_per_edit &&
        queue_head_ < queue_.size()) {
      update_capped = true;
      break;
    }
  }
  return FinishPropagate(recomputed, changed, wave, wave_capped, update_capped,
                         timer.Seconds());
}

Status IncrementalFSim::PropagateWaves() {
  Timer timer;
  FSIM_TRACE_SPAN("incremental.propagate");
  const double tau = options_.propagation_tolerance;
  const uint32_t max_waves = MaxWaves();
  // Waves below this size keep the serial chaotic ordering: the propagation
  // tail is many tiny waves whose same-wave absorption the Jacobi split
  // would forfeit, and a parallel region would not amortize its dispatch.
  // The test depends only on wave content, so any thread count walks the
  // same trajectory (parallel runs are bit-identical to each other).
  constexpr size_t kParallelWaveMin = 32;
  // Wave regions deal in small chunks: one item is a whole matching
  // evaluation, so rebalancing granularity beats chunk-claim amortization.
  constexpr size_t kWaveGrain = 8;

  const size_t n = keys_.size();
  if (wave_fresh_.size() < n) wave_fresh_.resize(n);
  if (wave_weight_.size() < n) wave_weight_.resize(n);
  if (wave_dirty_.size() < n) wave_dirty_.resize(n);

  uint64_t recomputed = 0;
  uint64_t changed = 0;
  uint32_t wave = 0;
  bool wave_capped = false;
  bool update_capped = false;

  size_t wave_begin = queue_head_;
  size_t wave_end = queue_.size();
  while (wave_begin < wave_end && !update_capped) {
    FSIM_TRACE_SPAN_ARG("incremental.wave", wave_end - wave_begin);
    if (wave_end - wave_begin < kParallelWaveMin) {
      // Serial chaotic tail: identical to Propagate's inner loop, so small
      // repairs (the common case) match the serial engine bit for bit.
      for (size_t q = wave_begin; q < wave_end; ++q) {
        const uint32_t i = queue_[q];
        queue_head_ = q + 1;
        in_queue_[i] = 0;
        uint8_t dirty = dirty_dir_[i];
        if (pending_out_[i] > 0.0) dirty |= kDirtyOut;
        if (pending_in_[i] > 0.0) dirty |= kDirtyIn;
        dirty_dir_[i] = 0;
        pending_out_[i] = 0.0;
        pending_in_[i] = 0.0;
        const double fresh = EvaluateDirty(i, dirty, &scratch_[0]);
        ++recomputed;
        const double delta = std::abs(fresh - values_[i]);
        values_[i] = fresh;
        if (delta > tau) {
          ++changed;
          PushDependents(i, delta);
        }
        if (recomputed >= options_.max_updates_per_edit &&
            queue_head_ < queue_.size()) {
          update_capped = true;
          break;
        }
      }
    } else {
      // Phase 0 (serial): snapshot each item's dirty bits and priority
      // weight, then release its worklist slot — pushes during phase 2
      // accumulate fresh pending influence for the *next* wave instead of
      // being wiped with this one's.
      for (size_t q = wave_begin; q < wave_end; ++q) {
        const uint32_t i = queue_[q];
        uint8_t dirty = dirty_dir_[i];
        if (pending_out_[i] > 0.0) dirty |= kDirtyOut;
        if (pending_in_[i] > 0.0) dirty |= kDirtyIn;
        wave_dirty_[i] = dirty;
        wave_weight_[i] =
            static_cast<float>(pending_out_[i] + pending_in_[i]);
        dirty_dir_[i] = 0;
        pending_out_[i] = 0.0;
        pending_in_[i] = 0.0;
        in_queue_[i] = 0;
      }
      // Phase 1 (parallel): evaluate the wave against the pre-wave score
      // table (Jacobi within the wave), biggest accumulated influence
      // first. Each item writes only its own caches and wave_fresh_ slot.
      std::span<const uint32_t> items(queue_.data() + wave_begin,
                                      wave_end - wave_begin);
      pool_->ParallelForFrontier(
          items, [this](uint32_t i) { return wave_weight_[i]; }, kWaveGrain,
          [&](int worker, std::span<const uint32_t> ids) {
            MatchingScratch* scratch = &scratch_[worker];
            for (uint32_t i : ids) {
              wave_fresh_[i] = EvaluateDirty(i, wave_dirty_[i], scratch);
            }
          });
      // Phase 2 (serial, wave order): commit and propagate. Deterministic
      // at any thread count — the pending sums and the next wave's order
      // depend only on this fixed commit order.
      for (size_t q = wave_begin; q < wave_end; ++q) {
        const uint32_t i = queue_[q];
        queue_head_ = q + 1;
        const double fresh = wave_fresh_[i];
        ++recomputed;
        const double delta = std::abs(fresh - values_[i]);
        values_[i] = fresh;
        if (delta > tau) {
          ++changed;
          PushDependents(i, delta);
        }
        if (recomputed >= options_.max_updates_per_edit &&
            queue_head_ < queue_.size()) {
          update_capped = true;
          break;
        }
      }
    }
    if (update_capped) break;
    wave_begin = wave_end;
    wave_end = queue_.size();
    if (wave_begin >= wave_end) break;
    ++wave;
    if (wave >= max_waves) {
      wave_capped = true;
      break;
    }
  }
  return FinishPropagate(recomputed, changed, wave, wave_capped, update_capped,
                         timer.Seconds());
}

void IncrementalFSim::SeedEndpointPairs(int graph_index, NodeId a, NodeId b) {
  // The edit changed N+(a) and N-(b) of the edited graph, so the pairs on
  // row/column a need their out-direction recomputed and those on row/column
  // b their in-direction. The structural change is flagged via dirty_dir_
  // (a pending magnitude cannot express "the input *set* changed").
  size_t seeded = 0;
  auto seed = [&](uint32_t i, uint8_t dir_bit) {
    dirty_dir_[i] |= dir_bit;
    if (!in_queue_[i]) {
      in_queue_[i] = 1;
      queue_.push_back(i);
      ++seeded;
    }
  };
  if (graph_index == 1) {
    for (uint32_t i = row_offsets_[a]; i < row_offsets_[a + 1]; ++i) {
      seed(i, kDirtyOut);
    }
    for (uint32_t i = row_offsets_[b]; i < row_offsets_[b + 1]; ++i) {
      seed(i, kDirtyIn);
    }
  } else {
    for (uint32_t c = col_offsets_[a]; c < col_offsets_[a + 1]; ++c) {
      seed(col_pairs_[c], kDirtyOut);
    }
    for (uint32_t c = col_offsets_[b]; c < col_offsets_[b + 1]; ++c) {
      seed(col_pairs_[c], kDirtyIn);
    }
  }
  last_edit_.seeded_pairs = seeded;
}

Status IncrementalFSim::ApplyEdit(int graph_index, NodeId from, NodeId to,
                                  bool insert) {
  if (graph_index != 1 && graph_index != 2) {
    return Status::InvalidArgument("graph_index must be 1 or 2");
  }
  last_edit_ = EditStats{};
  Timer edit_timer;
  DynamicGraph& target = graph_index == 1 ? g1_ : g2_;
  // A rejected edit (duplicate insert, absent removal, bad endpoint) leaves
  // the adjacency, index and scores untouched.
  FSIM_RETURN_NOT_OK(insert ? target.InsertEdge(from, to)
                            : target.RemoveEdge(from, to));
  last_edit_.graph_rebuild_seconds = edit_timer.Seconds();

  // Patch exactly what the edit invalidated. A graph-1 edit (from, to)
  // changes N+(from) and N-(to), so the out-spans (and out-direction Ωχ
  // factors) of row `from` and the in-spans/factors of row `to`; a graph-2
  // edit the same per column. (For a self-loop from == to both loops walk
  // the same row/column, re-staging its two distinct directions.) The
  // influence factors are refreshed even when the index is over budget —
  // the hash fallback shares the sharpened propagation bound.
  Timer patch_timer;
  const bool indexed = nbr_index_.enabled();
  const NeighborIndexEnv env = IndexEnv();
  const uint64_t restaged_before = nbr_index_.restaged_spans();
  const OperatorConfig& op = op_;
  if (graph_index == 1) {
    for (uint32_t i = row_offsets_[from]; i < row_offsets_[from + 1]; ++i) {
      const NodeId v = PairSecond(keys_[i]);
      if (indexed) {
        nbr_index_.Restage(i, IncrementalNeighborIndex::kOut, from, v, env);
      }
      influence_factor_out_[i] =
          InfluenceFactor(op, g1_.OutDegree(from), g2_.OutDegree(v));
    }
    for (uint32_t i = row_offsets_[to]; i < row_offsets_[to + 1]; ++i) {
      const NodeId v = PairSecond(keys_[i]);
      if (indexed) {
        nbr_index_.Restage(i, IncrementalNeighborIndex::kIn, to, v, env);
      }
      influence_factor_in_[i] =
          InfluenceFactor(op, g1_.InDegree(to), g2_.InDegree(v));
    }
  } else {
    for (uint32_t c = col_offsets_[from]; c < col_offsets_[from + 1]; ++c) {
      const uint32_t i = col_pairs_[c];
      const NodeId u = PairFirst(keys_[i]);
      if (indexed) {
        nbr_index_.Restage(i, IncrementalNeighborIndex::kOut, u, from, env);
      }
      influence_factor_out_[i] =
          InfluenceFactor(op, g1_.OutDegree(u), g2_.OutDegree(from));
    }
    for (uint32_t c = col_offsets_[to]; c < col_offsets_[to + 1]; ++c) {
      const uint32_t i = col_pairs_[c];
      const NodeId u = PairFirst(keys_[i]);
      if (indexed) {
        nbr_index_.Restage(i, IncrementalNeighborIndex::kIn, u, to, env);
      }
      influence_factor_in_[i] =
          InfluenceFactor(op, g1_.InDegree(u), g2_.InDegree(to));
    }
  }
  last_edit_.restaged_spans =
      static_cast<size_t>(nbr_index_.restaged_spans() - restaged_before);
  last_edit_.index_patch_seconds = patch_timer.Seconds();

  // The pairs whose own Equation 3 inputs changed shape: `from`'s
  // out-neighbor set and `to`'s in-neighbor set in the edited graph.
  SeedEndpointPairs(graph_index, from, to);
  return Propagate();
}

Status IncrementalFSim::InsertEdge(int graph_index, NodeId from, NodeId to) {
  return ApplyEdit(graph_index, from, to, /*insert=*/true);
}

Status IncrementalFSim::RemoveEdge(int graph_index, NodeId from, NodeId to) {
  return ApplyEdit(graph_index, from, to, /*insert=*/false);
}

FSimScores IncrementalFSim::Snapshot() const {
  FSimStats stats;
  stats.maintained_pairs = keys_.size();
  stats.theta_candidates = keys_.size();
  stats.converged = converged_;
  stats.used_neighbor_index = nbr_index_.enabled();
  stats.neighbor_index_bytes =
      nbr_index_.enabled() ? nbr_index_.MemoryBytes() : 0;
  return FSimScores(keys_, values_, index_, stats);
}

}  // namespace fsim
