// Incremental maintenance of fractional χ-simulation scores under edge
// insertions and deletions — a dynamic-graph extension of the paper's
// framework (the paper computes FSimχ from scratch; real deployments face
// evolving graphs).
//
// Idea: Equation 3's update operator F is a sup-norm contraction with factor
// w = w+ + w- < 1 (this is exactly the Theorem 1 convergence argument), so
// the converged scores are the unique fixpoint of F and can be repaired by
// *asynchronous* (chaotic) iteration: after an edit, only the pairs whose
// inputs changed are recomputed, and a change is propagated to the dependent
// pairs only when it exceeds a propagation tolerance τ. The geometric decay
// of propagated changes bounds both the work and the final error:
//
//   ||maintained - exact fixpoint||∞  <=  τ · (1 + w) / (1 - w).
//
// The dependency structure mirrors Equation 3: the score of (u, v) is read by
// the out-direction of every pair in N-(u) x N-(v) and by the in-direction of
// every pair in N+(u) x N+(v).
//
// Cost model — every per-edit phase is O(affected degree), independent of
// |V| + |E|:
//  * the graphs are held as DynamicGraph (graph/dynamic_graph.h), so the
//    edge edit itself patches two sorted adjacency lists in O(deg);
//  * the pair-graph CSR neighbor index (core/incremental_index.h) is
//    maintained, not rebuilt: an edit to edge (a, b) in graph 1 invalidates
//    only the out-spans of pairs (a, *) and the in-spans of pairs (b, *)
//    (symmetrically (*, a) / (*, b) for graph 2), and exactly those spans
//    are re-staged — O(|N(u)|·|N(v)|) classify work per affected pair, the
//    same order as the one re-evaluation the edit forces anyway;
//  * evaluation and dependent-propagation both run over the index
//    (DirectionScoreIndexed + contiguous ref walks) instead of per-neighbor
//    hash probes and label checks; when the index exceeds its memory budget
//    the engine falls back to the hash path with identical results.
//
// Restrictions:
//  * upper-bound updating must be off (pruning decisions are edge-dependent,
//    so the maintained candidate set would change under edits);
//  * edits are edge-level; the node set and labels are fixed (the θ-filtered
//    candidate set depends only on labels, so it stays valid — which is also
//    what keeps the maintained index's ref values stable under edits).
//
// Verified against full recomputation and against the hash fallback by the
// property tests in tests/dynamic_test.cc; the work savings are quantified
// by bench/exp_incremental (BENCH_incremental.json).
#ifndef FSIM_CORE_INCREMENTAL_H_
#define FSIM_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/fsim_config.h"
#include "core/fsim_scores.h"
#include "core/incremental_index.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "label/label_similarity.h"
#include "matching/greedy_matching.h"

namespace fsim {

/// Tuning knobs for the incremental engine.
struct IncrementalOptions {
  /// Score changes smaller than this are absorbed instead of propagated.
  /// The maintained scores stay within tau * (1 + w) / (1 - w) of the exact
  /// fixpoint (w = w+ + w-).
  double propagation_tolerance = 1e-9;

  /// Safety valve: an edit that recomputes more pair-updates than this is
  /// truncated and returns Internal (possible only in pathological
  /// non-contractive corner cases of the greedy matching realization). The
  /// updates performed before the cap are kept, and the snapshot reports
  /// the state as not converged.
  uint64_t max_updates_per_edit = 200'000'000;
};

/// Work report for one edit.
struct EditStats {
  size_t seeded_pairs = 0;      // pairs whose inputs the edit touched directly
  size_t recomputed = 0;        // total pair recomputations performed
  size_t changed = 0;           // recomputations that changed the score > τ
  uint32_t waves = 0;           // propagation waves executed (capped at the
                                // Corollary 1 bound ceil(log_w τ) + 2)
  size_t restaged_spans = 0;    // neighbor-index spans re-staged by the edit
  bool truncated = false;       // hit max_updates_per_edit or the wave cap;
                                // the snapshot then reports converged=false
  double graph_rebuild_seconds = 0.0;  // O(deg) adjacency patch
  double index_patch_seconds = 0.0;    // O(deg) neighbor-index span re-stage
  double propagate_seconds = 0.0;
};

/// A converged FSimχ computation that can be repaired in place after edge
/// edits, instead of recomputed from scratch.
class IncrementalFSim {
 public:
  /// Builds the candidate-pair set, runs the iterative computation to the
  /// fixpoint (synchronous Jacobi sweeps, as ComputeFSim), and retains the
  /// state needed for localized repair.
  ///
  /// `config.epsilon` controls the initial solve; the maintained accuracy
  /// after edits is governed by `options.propagation_tolerance`, so choose
  /// epsilon of comparable magnitude for consistent answers.
  ///
  /// `warm_seed` (optional) primes the solve with previously converged
  /// scores — the crash-recovery path (serve/recovery.h) passes the scores
  /// loaded from the latest durable snapshot so the initial solve converges
  /// in a sweep or two instead of a cold fixpoint run. The seed is used only
  /// when its keyset matches the freshly enumerated candidate set exactly
  /// (same graphs + config ⇒ same candidates); on any mismatch the solve
  /// silently falls back to the cold FSim^0 initialization, so a stale or
  /// foreign seed can never corrupt the fixpoint (the contraction drives
  /// any starting point in [0,1] to the same result).
  static Result<IncrementalFSim> Create(Graph g1, Graph g2, FSimConfig config,
                                        IncrementalOptions options = {},
                                        const FSimScores* warm_seed = nullptr);

  /// Adds the directed edge from -> to in graph `graph_index` (1 or 2) and
  /// re-converges the affected scores. O(affected degree), not O(|V|+|E|).
  Status InsertEdge(int graph_index, NodeId from, NodeId to);

  /// Removes the directed edge from -> to in graph `graph_index` (1 or 2)
  /// and re-converges the affected scores.
  Status RemoveEdge(int graph_index, NodeId from, NodeId to);

  /// FSimχ(u, v) under the current graphs; 0 for non-candidate pairs.
  double Score(NodeId u, NodeId v) const {
    uint32_t idx = index_.Find(PairKey(u, v));
    return idx == FlatPairMap::kNotFound ? 0.0 : values_[idx];
  }

  /// True if (u, v) is in the maintained candidate set.
  bool Contains(NodeId u, NodeId v) const {
    return index_.Find(PairKey(u, v)) != FlatPairMap::kNotFound;
  }

  size_t NumPairs() const { return keys_.size(); }

  /// An immutable snapshot of the current scores (copies the score table).
  /// stats().converged faithfully reports whether every propagation since
  /// Create ran to quiescence (no truncation by max_updates_per_edit or the
  /// wave cap).
  FSimScores Snapshot() const;

  /// The evolving graphs (edit-capable adjacency; read API mirrors Graph).
  const DynamicGraph& g1() const { return g1_; }
  const DynamicGraph& g2() const { return g2_; }

  /// Materialized immutable CSR copies of the current graphs, for handing
  /// to the batch engines (e.g. verification against ComputeFSim).
  Graph MaterializeG1() const { return g1_.ToGraph(); }
  Graph MaterializeG2() const { return g2_.ToGraph(); }

  const FSimConfig& config() const { return config_; }

  /// False once any propagation was truncated (see EditStats::truncated) or
  /// the initial solve stopped above epsilon.
  bool converged() const { return converged_; }

  /// True while the maintained pair-graph CSR neighbor index is active
  /// (false: over budget at Create; evaluation uses hash lookups).
  bool uses_neighbor_index() const { return nbr_index_.enabled(); }

  /// Work report of the most recent InsertEdge/RemoveEdge.
  const EditStats& last_edit_stats() const { return last_edit_; }

 private:
  IncrementalFSim(const Graph& g1, const Graph& g2, FSimConfig config,
                  IncrementalOptions options);

  NeighborIndexEnv IndexEnv() const {
    return NeighborIndexEnv{g1_, g2_, index_, lsim_};
  }

  // Direction-dirtiness bits: influence arrives targeted at one direction
  // (a dependent reached through its out-direction only needs that
  // direction recomputed), so each pair caches its two direction scores and
  // a dequeue recomputes only the dirty ones. Reusing a clean cached
  // direction is sound: any of its inputs that moved either pushed
  // influence here (marking it dirty) or was absorbed sub-τ at the source —
  // which the τ·(1+w)/(1-w) budget already accounts for.
  static constexpr uint8_t kDirtyOut = 1;
  static constexpr uint8_t kDirtyIn = 2;

  /// One direction's Equation 3 contribution of pair i against the current
  /// score table (through the maintained index when enabled; bit-identical
  /// either way). dir is IncrementalNeighborIndex::kOut or kIn. `scratch`
  /// is the caller's matching workspace (per worker under the pool).
  double ComputeDirection(size_t i, int dir, MatchingScratch* scratch);

  /// The Equation 3 value of pair i, recomputing only the directions in
  /// `dirty` and reusing the cached scores for the rest.
  double EvaluateDirty(size_t i, uint8_t dirty, MatchingScratch* scratch);

  /// Runs synchronous sweeps to convergence (the initial solve). Honors
  /// FSimConfig::active_set: with the maintained index live, sweeps after
  /// the first evaluate only the pairs with changed inputs (the batch
  /// engines' delta-driven frontier), so the serving layer's warm-start
  /// background solve inherits the frozen-pair skipping. Sweeps run on
  /// pool_ when config_.num_threads > 1; the Jacobi evaluations and the
  /// serial absorb phase make the result bit-identical at any thread count.
  void SolveFull();

  /// Chaotic iteration from the seeded worklist until quiescent. With
  /// num_threads > 1 delegates to PropagateWaves.
  Status Propagate();

  /// Wave-parallel repair: each wave is evaluated as one Jacobi parallel
  /// region against the pre-wave score table (big-influence-first via
  /// ThreadPool::ParallelForFrontier, per-worker matching scratch), then
  /// committed and propagated serially in wave order, so the result is
  /// deterministic at any thread count. Waves below a small cutoff keep the
  /// serial chaotic ordering (same-wave absorption matters most in the
  /// propagation tail, and a parallel region would not pay for itself);
  /// the cutoff test depends only on wave content, so determinism holds.
  Status PropagateWaves();

  /// Shared tail of Propagate/PropagateWaves: resets worklist leftovers,
  /// records EditStats, and maps truncation to the returned Status.
  Status FinishPropagate(uint64_t recomputed, uint64_t changed, uint32_t wave,
                         bool wave_capped, bool update_capped,
                         double elapsed_seconds);

  /// The Corollary 1 wave cap ceil(log_w tau) + 2 (see Propagate).
  uint32_t MaxWaves() const;

  /// Seeds every maintained pair (x, *) for x in {a, b} of graph 1, or
  /// (*, x) for graph 2.
  void SeedEndpointPairs(int graph_index, NodeId a, NodeId b);

  /// Applies the graph-side edit, re-stages the invalidated index spans and
  /// seeds the worklist.
  Status ApplyEdit(int graph_index, NodeId from, NodeId to, bool insert);

  /// Residual-driven propagation: a change of magnitude `delta` at pair i
  /// moves a dependent's direction sum by at most c * delta (the mapping
  /// operators are 1-Lipschitz per entry; c = 2 for the both-sides mapping,
  /// whose entries feed a row and a column maximum), hence the dependent's
  /// score by at most w± * c * delta / Ωχ of that dependent's direction.
  /// That bound is *accumulated* per dependent (influence_factor_out_/in_
  /// hold the precomputed c / Ωχ, maintained under edits alongside the index
  /// spans) and the dependent is re-evaluated only once its pending
  /// influence exceeds the tolerance — so the τ·(1+w)/(1-w) accuracy
  /// guarantee is preserved while hub-adjacent pairs (large Ωχ) absorb far
  /// more sub-threshold traffic. With the index enabled the dependents are
  /// read off pair i's own spans (the in-span refs are exactly the pairs
  /// reading i through their out-direction, and vice versa); the fallback
  /// walks N±(u) x N±(v) with hash probes.
  void PushDependents(size_t i, double delta);
  void AddPendingOut(uint32_t idx, double influence);
  void AddPendingIn(uint32_t idx, double influence);
  void MaybeEnqueue(uint32_t idx);

  DynamicGraph g1_;
  DynamicGraph g2_;
  FSimConfig config_;
  IncrementalOptions options_;
  OperatorConfig op_;  // config_.operators(), hoisted out of Evaluate
  LabelSimilarityCache lsim_;

  std::vector<uint64_t> keys_;  // sorted u-major
  std::vector<double> values_;
  // Per-pair constant Equation 3 tail (1 - w+ - w-) * L(u, v): labels are
  // fixed under edits, so it never changes.
  std::vector<double> const_term_;
  FlatPairMap index_;

  // Per-u contiguous ranges into keys_ (u-major sort): row_offsets_[u] ..
  // row_offsets_[u+1]. Used to seed and re-stage edits in graph 1.
  std::vector<uint32_t> row_offsets_;
  // CSR of store indices grouped by v. Used to seed and re-stage edits in
  // graph 2.
  std::vector<uint32_t> col_offsets_;
  std::vector<uint32_t> col_pairs_;

  // Maintained pair-graph CSR neighbor index (delta-patched under edits).
  IncrementalNeighborIndex nbr_index_;

  // Per-pair sharpened influence factors c / Ωχ(S1, S2) for each direction
  // (see PushDependents); re-derived for the affected rows/columns on every
  // edit, since Ωχ depends on the endpoint degrees.
  std::vector<double> influence_factor_out_;
  std::vector<double> influence_factor_in_;

  // Cached per-direction scores; the invariant values_[i] ==
  // w+ * out_cache_[i] + w- * in_cache_[i] + const_term_[i] holds for every
  // pair outside the worklist (pin_diagonal pairs excepted — they are
  // constant 1 and never read their caches).
  std::vector<double> out_cache_;
  std::vector<double> in_cache_;

  // Worklist state (kept allocated across edits). pending_out_/in_[i]
  // accumulate the upper bound on how much pair i's next evaluation of that
  // direction can move, given the input changes seen since it was last
  // evaluated; dirty_dir_[i] marks directions whose *inputs changed shape*
  // (edit seeding), which pending magnitudes cannot express.
  std::vector<uint32_t> queue_;
  std::vector<uint8_t> in_queue_;
  std::vector<uint8_t> dirty_dir_;
  std::vector<double> pending_out_;
  std::vector<double> pending_in_;
  std::vector<uint32_t> wave_scratch_;  // Propagate's wave partition buffer
  size_t queue_head_ = 0;

  // Wave-parallel scratch (PropagateWaves; all keyed by store index).
  std::vector<double> wave_fresh_;    // Jacobi results awaiting commit
  std::vector<float> wave_weight_;    // pending influence at wave start
  std::vector<uint8_t> wave_dirty_;   // dirty bits snapshotted at wave start

  // Present when config_.num_threads > 1 (heap-held so the engine stays
  // movable); scratch_ has one matching workspace per pool worker.
  std::unique_ptr<ThreadPool> pool_;
  std::vector<MatchingScratch> scratch_;
  EditStats last_edit_;
  bool converged_ = false;
};

}  // namespace fsim

#endif  // FSIM_CORE_INCREMENTAL_H_
