// Incremental maintenance of fractional χ-simulation scores under edge
// insertions and deletions — a dynamic-graph extension of the paper's
// framework (the paper computes FSimχ from scratch; real deployments face
// evolving graphs).
//
// Idea: Equation 3's update operator F is a sup-norm contraction with factor
// w = w+ + w- < 1 (this is exactly the Theorem 1 convergence argument), so
// the converged scores are the unique fixpoint of F and can be repaired by
// *asynchronous* (chaotic) iteration: after an edit, only the pairs whose
// inputs changed are recomputed, and a change is propagated to the dependent
// pairs only when it exceeds a propagation tolerance τ. The geometric decay
// of propagated changes bounds both the work and the final error:
//
//   ||maintained - exact fixpoint||∞  <=  τ · (1 + w) / (1 - w).
//
// The dependency structure mirrors Equation 3: the score of (u, v) is read by
// the out-direction of every pair in N-(u) x N-(v) and by the in-direction of
// every pair in N+(u) x N+(v).
//
// Restrictions:
//  * upper-bound updating must be off (pruning decisions are edge-dependent,
//    so the maintained candidate set would change under edits);
//  * edits are edge-level; the node set and labels are fixed (the θ-filtered
//    candidate set depends only on labels, so it stays valid).
//
// Verified against full recomputation by the property tests in
// tests/incremental_test.cc; the work savings are quantified by
// bench/exp_incremental.
#ifndef FSIM_CORE_INCREMENTAL_H_
#define FSIM_CORE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/fsim_config.h"
#include "core/fsim_scores.h"
#include "graph/graph.h"
#include "label/label_similarity.h"
#include "matching/greedy_matching.h"

namespace fsim {

/// Tuning knobs for the incremental engine.
struct IncrementalOptions {
  /// Score changes smaller than this are absorbed instead of propagated.
  /// The maintained scores stay within tau * (1 + w) / (1 - w) of the exact
  /// fixpoint (w = w+ + w-).
  double propagation_tolerance = 1e-9;

  /// Safety valve: an edit that recomputes more pair-updates than this
  /// returns Internal (possible only in pathological non-contractive corner
  /// cases of the greedy matching realization).
  uint64_t max_updates_per_edit = 200'000'000;
};

/// Work report for one edit.
struct EditStats {
  size_t seeded_pairs = 0;      // pairs whose inputs the edit touched directly
  size_t recomputed = 0;        // total pair recomputations performed
  size_t changed = 0;           // recomputations that changed the score > τ
  uint32_t waves = 0;           // propagation waves executed (capped at the
                                // Corollary 1 bound ceil(log_w τ) + 2)
  double graph_rebuild_seconds = 0.0;
  double propagate_seconds = 0.0;
};

/// A converged FSimχ computation that can be repaired in place after edge
/// edits, instead of recomputed from scratch.
class IncrementalFSim {
 public:
  /// Builds the candidate-pair set, runs the iterative computation to the
  /// fixpoint (synchronous Jacobi sweeps, as ComputeFSim), and retains the
  /// state needed for localized repair.
  ///
  /// `config.epsilon` controls the initial solve; the maintained accuracy
  /// after edits is governed by `options.propagation_tolerance`, so choose
  /// epsilon of comparable magnitude for consistent answers.
  static Result<IncrementalFSim> Create(Graph g1, Graph g2, FSimConfig config,
                                        IncrementalOptions options = {});

  /// Adds the directed edge from -> to in graph `graph_index` (1 or 2) and
  /// re-converges the affected scores.
  Status InsertEdge(int graph_index, NodeId from, NodeId to);

  /// Removes the directed edge from -> to in graph `graph_index` (1 or 2) and
  /// re-converges the affected scores.
  Status RemoveEdge(int graph_index, NodeId from, NodeId to);

  /// FSimχ(u, v) under the current graphs; 0 for non-candidate pairs.
  double Score(NodeId u, NodeId v) const {
    uint32_t idx = index_.Find(PairKey(u, v));
    return idx == FlatPairMap::kNotFound ? 0.0 : values_[idx];
  }

  /// True if (u, v) is in the maintained candidate set.
  bool Contains(NodeId u, NodeId v) const {
    return index_.Find(PairKey(u, v)) != FlatPairMap::kNotFound;
  }

  size_t NumPairs() const { return keys_.size(); }

  /// An immutable snapshot of the current scores (copies the score table).
  FSimScores Snapshot() const;

  const Graph& g1() const { return g1_; }
  const Graph& g2() const { return g2_; }
  const FSimConfig& config() const { return config_; }

  /// Work report of the most recent InsertEdge/RemoveEdge.
  const EditStats& last_edit_stats() const { return last_edit_; }

 private:
  IncrementalFSim(Graph g1, Graph g2, FSimConfig config,
                  IncrementalOptions options);

  /// One Equation 3 evaluation of pair i against the current score table.
  double Evaluate(size_t i);

  /// Runs synchronous sweeps to convergence (the initial solve).
  void SolveFull();

  /// Chaotic iteration from the seeded worklist until quiescent.
  Status Propagate();

  /// Seeds every maintained pair (x, *) for x in {a, b} of graph 1, or
  /// (*, x) for graph 2.
  void SeedEndpointPairs(int graph_index, NodeId a, NodeId b);

  /// Applies the graph-side edit and seeds the worklist.
  Status ApplyEdit(int graph_index, NodeId from, NodeId to, bool insert);

  /// Residual-driven propagation: a change of magnitude `delta` at pair i
  /// adds at most w± * delta to each dependent's next evaluation, so that
  /// bound is *accumulated* per dependent and the dependent is re-evaluated
  /// only once its pending influence exceeds the tolerance.
  void PushDependents(size_t i, double delta);
  void PushInfluence(NodeId u, NodeId v, double influence);

  Graph g1_;
  Graph g2_;
  FSimConfig config_;
  IncrementalOptions options_;
  LabelSimilarityCache lsim_;

  std::vector<uint64_t> keys_;  // sorted u-major
  std::vector<double> values_;
  FlatPairMap index_;

  // Per-u contiguous ranges into keys_ (u-major sort): row_offsets_[u] ..
  // row_offsets_[u+1]. Used to seed edits in graph 1.
  std::vector<uint32_t> row_offsets_;
  // CSR of store indices grouped by v. Used to seed edits in graph 2.
  std::vector<uint32_t> col_offsets_;
  std::vector<uint32_t> col_pairs_;

  // Worklist state (kept allocated across edits). pending_[i] accumulates
  // the upper bound on how much pair i's next evaluation can move, given the
  // input changes seen since it was last evaluated.
  std::vector<uint32_t> queue_;
  std::vector<uint8_t> in_queue_;
  std::vector<double> pending_;
  size_t queue_head_ = 0;

  MatchingScratch scratch_;
  EditStats last_edit_;
};

}  // namespace fsim

#endif  // FSIM_CORE_INCREMENTAL_H_
