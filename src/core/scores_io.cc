#include "core/scores_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace fsim {

std::string ScoresToString(const FSimScores& scores) {
  std::string out = "fsim-scores v1\n";
  out += StrFormat("pairs %zu\n", scores.NumPairs());
  const auto& keys = scores.keys();
  const auto& values = scores.values();
  for (size_t i = 0; i < keys.size(); ++i) {
    out += StrFormat("%u %u %.17g\n", PairFirst(keys[i]),
                     PairSecond(keys[i]), values[i]);
  }
  return out;
}

Result<FSimScores> ScoresFromString(std::string_view text) {
  auto lines = Split(text, '\n');
  size_t line_no = 0;
  if (lines.empty() || Trim(lines[0]) != "fsim-scores v1") {
    return Status::IOError("missing 'fsim-scores v1' header");
  }
  ++line_no;
  if (lines.size() < 2) return Status::IOError("missing pair count");
  uint64_t expected = 0;
  {
    auto fields = SplitWhitespace(lines[1]);
    if (fields.size() != 2 || fields[0] != "pairs" ||
        std::sscanf(std::string(fields[1]).c_str(), "%" PRIu64, &expected) !=
            1) {
      return Status::IOError("malformed pair count line");
    }
    ++line_no;
  }

  std::vector<uint64_t> keys;
  std::vector<double> values;
  keys.reserve(expected);
  values.reserve(expected);
  for (size_t li = 2; li < lines.size(); ++li) {
    std::string_view line = Trim(lines[li]);
    if (line.empty()) continue;
    uint32_t u = 0, v = 0;
    double score = 0.0;
    if (std::sscanf(std::string(line).c_str(), "%u %u %lf", &u, &v, &score) !=
        3) {
      return Status::IOError(StrFormat("malformed pair at line %zu", li + 1));
    }
    if (score < 0.0 || score > 1.0) {
      return Status::IOError(
          StrFormat("score out of range at line %zu", li + 1));
    }
    keys.push_back(PairKey(u, v));
    values.push_back(score);
  }
  if (keys.size() != expected) {
    return Status::IOError(StrFormat("expected %" PRIu64 " pairs, found %zu",
                                     expected, keys.size()));
  }
  // Re-sort (writers emit sorted data, but be liberal in what we accept).
  std::vector<size_t> order(keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return keys[a] < keys[b]; });
  std::vector<uint64_t> sorted_keys(keys.size());
  std::vector<double> sorted_values(keys.size());
  FlatPairMap index(keys.size());
  for (size_t i = 0; i < order.size(); ++i) {
    sorted_keys[i] = keys[order[i]];
    sorted_values[i] = values[order[i]];
    if (!index.Insert(sorted_keys[i], static_cast<uint32_t>(i))) {
      return Status::IOError("duplicate pair in score file");
    }
  }
  return FSimScores(std::move(sorted_keys), std::move(sorted_values),
                    std::move(index), FSimStats{});
}

Status SaveScoresToFile(const FSimScores& scores, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ScoresToString(scores);
  if (!out) return Status::IOError("write failed on " + path);
  return Status::OK();
}

Status SaveScoresToFileDurable(const FSimScores& scores,
                               const std::string& path) {
  const std::string tmp = path + ".tmp";
  const std::string text = ScoresToString(scores);
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open %s: %s", tmp.c_str(),
                                     std::strerror(errno)));
  }
  const char* data = text.data();
  size_t len = text.size();
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved_errno = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError(StrFormat("write to %s failed: %s", tmp.c_str(),
                                       std::strerror(saved_errno)));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  // durability: content before rename — the visible name must never point
  // at unsynced blocks.
  if (::fsync(fd) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError(StrFormat("fsync of %s failed: %s", tmp.c_str(),
                                     std::strerror(saved_errno)));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved_errno = errno;
    ::unlink(tmp.c_str());
    return Status::IOError(StrFormat("rename %s -> %s failed: %s",
                                     tmp.c_str(), path.c_str(),
                                     std::strerror(saved_errno)));
  }
  // durability: persist the rename's directory entry so the swap itself
  // survives a crash.
  std::string dir(path);
  const size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return Status::IOError(StrFormat("cannot open directory %s: %s",
                                     dir.c_str(), std::strerror(errno)));
  }
  const int rc = ::fsync(dfd);
  const int saved_errno = errno;
  ::close(dfd);
  if (rc != 0) {
    return Status::IOError(StrFormat("fsync of directory %s failed: %s",
                                     dir.c_str(),
                                     std::strerror(saved_errno)));
  }
  return Status::OK();
}

Result<FSimScores> LoadScoresFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ScoresFromString(ss.str());
}

}  // namespace fsim
