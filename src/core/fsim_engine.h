// ComputeFSim — Algorithm 1 of the paper: the iterative, parallelizable
// computation of fractional χ-simulation scores for all candidate node pairs
// across two graphs (G1 = G2 allowed).
#ifndef FSIM_CORE_FSIM_ENGINE_H_
#define FSIM_CORE_FSIM_ENGINE_H_

#include "common/result.h"
#include "core/fsim_config.h"
#include "core/fsim_scores.h"
#include "graph/graph.h"

namespace fsim {

/// Validates `config` (weight ranges, shared dictionary, parameter domains).
Status ValidateFSimConfig(const Graph& g1, const Graph& g2,
                          const FSimConfig& config);

/// Computes fractional χ-simulation scores FSimχ(u, v) for u ∈ V(g1),
/// v ∈ V(g2). The graphs must share one LabelDict. Returns the converged
/// score container, or InvalidArgument for malformed configs / blown pair
/// limits.
///
/// Guarantees (assuming MatchingAlgo::kHungarian for dp/bj, which makes
/// condition C3 of Theorem 1 exact):
///  * P1: every score is in [0, 1];
///  * P2: FSimχ(u,v) = 1  ⟺  u ⇝χ v (exact χ-simulation);
///  * P3: for χ ∈ {b, bj}, FSimχ(u,v) = FSimχ(v,u) when run with symmetric
///    inputs;
///  * convergence within ⌈log_{w+ + w-}(ε)⌉ iterations (Corollary 1).
Result<FSimScores> ComputeFSim(const Graph& g1, const Graph& g2,
                               const FSimConfig& config);

/// Self-simulation convenience: ComputeFSim(g, g, config).
Result<FSimScores> ComputeFSimSelf(const Graph& g, const FSimConfig& config);

}  // namespace fsim

#endif  // FSIM_CORE_FSIM_ENGINE_H_
