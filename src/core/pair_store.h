// The candidate-pair store of Algorithm 1: which node pairs (u, v) are
// maintained in the hash maps Hc/Hp, their double-buffered scores, the
// side table of upper bounds for pruned pairs (upper-bound updating, §3.4),
// and the pair-graph CSR neighbor index that turns the iterate loop's score
// lookups into direct array reads.
#ifndef FSIM_CORE_PAIR_STORE_H_
#define FSIM_CORE_PAIR_STORE_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/flat_pair_map.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/fsim_config.h"
#include "core/operators.h"
#include "graph/graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// Candidate pairs with previous/current score buffers.
///
/// Construction applies the two optimizations:
///  * label-constrained mapping: with θ > 0 only pairs with L(u,v) >= θ are
///    enumerated (Remark 2 — pairs below θ can never be mapped, so they
///    never contribute);
///  * upper-bound updating: pairs whose Eq. 6 bound is <= β are dropped; if
///    α > 0 their bounds are kept in a side table so lookups can return
///    α * bound.
///
/// When config.neighbor_index_budget_bytes allows, Build additionally
/// materializes the pair-graph CSR neighbor index: for every maintained pair
/// i = (u, v) and each direction with nonzero weight, the NeighborRef list of
/// label-compatible candidate pairs (x, y) ∈ N±(u) x N±(v) sorted by
/// (row, col). Iterating then reads previous-iteration scores by direct
/// indexing (prev_data() / pruned ref tag) instead of hash probes.
class PairStore {
 public:
  struct BuildInfo {
    size_t theta_candidates = 0;  // pairs surviving the θ filter
    size_t kept = 0;              // pairs actually maintained
    size_t pruned = 0;            // pairs dropped by the upper bound
    /// Peak bytes held in the neighbor-index build's per-chunk staging
    /// buffers (all alive simultaneously at the classify/copy barrier).
    /// 0 under the bounded build, which stages nothing.
    size_t peak_staging_bytes = 0;
    /// True when the index was built with the bounded count-then-fill
    /// passes because the one-pass staging would have pushed transient
    /// memory past neighbor_index_budget_bytes (classifies twice, but peak
    /// build memory stays at the final index footprint).
    bool bounded_staging_build = false;
  };

  /// Enumerates and initializes the candidate pairs. Fails with
  /// InvalidArgument if the candidate count would exceed config.pair_limit.
  /// `build_neighbor_index` lets callers that never run the Algorithm 1
  /// iterate loop (e.g. incremental maintenance) skip the index build.
  /// `pool` parallelizes the index build when provided (the engines pass
  /// their iterate pool); nullptr builds serially.
  static Result<PairStore> Build(const Graph& g1, const Graph& g2,
                                 const FSimConfig& config,
                                 const LabelSimilarityCache& lsim,
                                 bool build_neighbor_index = true,
                                 ThreadPool* pool = nullptr);

  size_t size() const { return keys_.size(); }
  NodeId U(size_t i) const { return PairFirst(keys_[i]); }
  NodeId V(size_t i) const { return PairSecond(keys_[i]); }

  double prev(size_t i) const { return prev_[i]; }
  void set_curr(size_t i, double value) { curr_[i] = value; }
  void SwapBuffers() { prev_.swap(curr_); }

  /// Copies pair i's just-evaluated current value into the previous-score
  /// buffer — the active-set driver's selective forward copy. A frontier
  /// sweep writes curr_ only at the evaluated positions, so a wholesale
  /// SwapBuffers would expose stale entries; instead the driver commits
  /// exactly the evaluated pairs (O(|frontier|), after the sweep's last
  /// read of prev_) and every frozen pair keeps its score in place for
  /// free. Full sweeps keep using SwapBuffers.
  void CommitPair(size_t i) { prev_[i] = curr_[i]; }

  /// Index of (u,v) in the store, or FlatPairMap::kNotFound.
  uint32_t Find(NodeId u, NodeId v) const {
    return index_.Find(PairKey(u, v));
  }

  /// Eq. 6 upper bound of a pruned pair (0 when untracked, i.e. α == 0).
  double PrunedUpperBound(NodeId u, NodeId v) const {
    uint32_t idx = pruned_index_.Find(PairKey(u, v));
    return idx == FlatPairMap::kNotFound ? 0.0 : pruned_ub_[idx];
  }

  /// True if the pair-graph CSR neighbor index was materialized (it fits
  /// config.neighbor_index_budget_bytes and the build was requested).
  bool has_neighbor_index() const { return has_neighbor_index_; }

  /// True when the index uses the packed 8-byte entry layout (16-bit
  /// row/col) — selected automatically when every relevant neighbor-list
  /// position fits (see FSimConfig::use_packed_neighbor_refs). Callers
  /// read through OutRefsPacked/InRefsPacked then, OutRefs/InRefs
  /// otherwise.
  bool packed_refs() const { return packed_refs_; }

  /// True when the index was built with the widened active-set span
  /// layout (opposite-direction spans + pinned diagonal spans kept), so
  /// the spans are usable as reverse-dependency lists. False when only
  /// the widening would have blown neighbor_index_budget_bytes and the
  /// build fell back to the evaluation-only layout — the active-set
  /// driver then runs full sweeps instead of disabling the index.
  bool reverse_spans() const { return reverse_spans_; }

  /// Out-direction CSR entries of pair i: the label-compatible candidate
  /// pairs of N+(u) x N+(v), sorted by (row, col). Empty when the index was
  /// not materialized. With the active set off, diagonal pairs of a
  /// pin_diagonal run and zero-weight directions also have empty spans
  /// (never evaluated); with it on, a direction is additionally
  /// materialized when the *opposite* weight is nonzero — the refs of the
  /// in-span are exactly the pairs reading (u, v) through their
  /// out-direction (x ∈ N-(u), y ∈ N-(v)), and vice versa, so each span
  /// doubles as the pair's reverse-dependency list for frontier marking —
  /// and pinned diagonal spans are kept so the init -> 1 snap of the first
  /// sweep can notify its dependents.
  std::span<const NeighborRef> OutRefs(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(!packed_refs_);
    return {nbr_refs_.data() + nbr_offsets_[2 * i],
            nbr_refs_.data() + nbr_offsets_[2 * i + 1]};
  }

  /// In-direction CSR entries of pair i (N-(u) x N-(v)).
  std::span<const NeighborRef> InRefs(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(!packed_refs_);
    return {nbr_refs_.data() + nbr_offsets_[2 * i + 1],
            nbr_refs_.data() + nbr_offsets_[2 * i + 2]};
  }

  /// Packed-layout counterparts of OutRefs/InRefs.
  std::span<const PackedNeighborRef> OutRefsPacked(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(packed_refs_);
    return {nbr_refs_packed_.data() + nbr_offsets_[2 * i],
            nbr_refs_packed_.data() + nbr_offsets_[2 * i + 1]};
  }
  std::span<const PackedNeighborRef> InRefsPacked(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(packed_refs_);
    return {nbr_refs_packed_.data() + nbr_offsets_[2 * i + 1],
            nbr_refs_packed_.data() + nbr_offsets_[2 * i + 2]};
  }

  /// Total CSR entries of pair i across both directions — an O(1) upper
  /// bound on how many (pair, direction) dependents a change at i can wake.
  /// The active-set driver sums this over changed pairs while marking is
  /// still deferred, to predict whether a frontier would skip anything.
  size_t RefSpanTotal(size_t i) const {
    return has_neighbor_index_
               ? static_cast<size_t>(nbr_offsets_[2 * i + 2] -
                                     nbr_offsets_[2 * i])
               : 0;
  }

  /// Previous-iteration scores, indexed by untagged NeighborRef::ref values.
  /// The pointer is stable across SwapBuffers only if re-read afterwards.
  const double* prev_data() const { return prev_.data(); }

  /// Eq. 6 bounds of tracked pruned pairs, indexed by tagged refs.
  const float* pruned_bounds_data() const { return pruned_ub_.data(); }

  /// Heap footprint of the neighbor index (0 when not materialized).
  size_t NeighborIndexBytes() const {
    return nbr_refs_.capacity() * sizeof(NeighborRef) +
           nbr_refs_packed_.capacity() * sizeof(PackedNeighborRef) +
           nbr_offsets_.capacity() * sizeof(uint64_t);
  }

  const BuildInfo& info() const { return info_; }

  /// Structural invariants of the CSR neighbor index: the offsets array is
  /// monotone and accounts for exactly the ref arena (no slack — the batch
  /// index is built tight, unlike the incremental arena's tracked slack),
  /// exactly one entry layout is populated (per packed_refs()), every
  /// untagged ref targets a maintained pair, every tagged ref targets a
  /// tracked pruned bound, and each span is strictly (row, col)-sorted.
  /// Trivially OK when the index was not materialized. O(entries); runs
  /// automatically after Build under FSIM_DEBUG_CHECKS. Bumps
  /// ValidatorCounters "PairStore::ValidateNeighborIndex".
  Status ValidateNeighborIndex() const;

  /// Moves the final scores out (call after the last SwapBuffers, so prev_
  /// holds the converged values).
  std::vector<uint64_t> TakeKeys() { return std::move(keys_); }
  std::vector<double> TakeScores() { return std::move(prev_); }
  FlatPairMap TakeIndex() { return std::move(index_); }

 private:
  PairStore() = default;

  // check_test.cc corrupts the index through this to prove the validator
  // catches torn spans; nothing else may touch the internals.
  friend struct PairStoreTestAccess;

  /// Materializes the CSR neighbor index if it fits the budget, choosing
  /// the packed or wide entry layout.
  void BuildNeighborIndex(const Graph& g1, const Graph& g2,
                          const FSimConfig& config,
                          const LabelSimilarityCache& lsim, ThreadPool* pool);

  /// Classification of every pair's candidate entries into `refs`. Default
  /// (one-pass): chunks classify into per-chunk staging buffers (recording
  /// per-span counts), offsets are prefix-summed, then each chunk's staged
  /// entries — contiguous in the final layout by construction — are copied
  /// into place; transient peak reaches final + staged bytes. Bounded
  /// (`bounded_staging`): a counting pass fills the per-span counts, offsets
  /// are prefix-summed, then a second classification writes entries straight
  /// into their final slots — twice the classify work, no staging. Ref is
  /// NeighborRef or PackedNeighborRef.
  /// `active_spans` selects the widened active-set span layout (see
  /// reverse_spans()).
  template <typename Ref>
  void FillNeighborRefs(const Graph& g1, const Graph& g2,
                        const FSimConfig& config,
                        const LabelSimilarityCache& lsim, ThreadPool* pool,
                        bool bounded_staging, bool active_spans,
                        std::vector<Ref>* refs);

  std::vector<uint64_t> keys_;  // sorted ascending: u-major, then v
  FlatPairMap index_;
  std::vector<double> prev_;
  std::vector<double> curr_;
  FlatPairMap pruned_index_;
  std::vector<float> pruned_ub_;
  BuildInfo info_;

  // Pair-graph CSR neighbor index. nbr_offsets_ has 2 * size() + 1 entries:
  // pair i's out-direction entries live in [offsets[2i], offsets[2i+1]) and
  // its in-direction entries in [offsets[2i+1], offsets[2i+2]). Exactly one
  // of the two entry arrays is populated, per packed_refs_.
  bool has_neighbor_index_ = false;
  bool packed_refs_ = false;
  bool reverse_spans_ = false;
  std::vector<uint64_t> nbr_offsets_;
  std::vector<NeighborRef> nbr_refs_;
  std::vector<PackedNeighborRef> nbr_refs_packed_;
};

/// Race-free, allocation-free (after Init) construction of the next
/// active-set frontier. While sweeping, workers stamp the dependents of
/// every changed pair into epoch-tagged dirty arrays (a stamp equal to
/// the current epoch means "marked this iteration" — no clearing between
/// iterations, ever); BuildNext then scans the stamps once and emits the
/// ascending list of pairs to evaluate next.
///
/// Exact mode stamps into ONE shared array of relaxed atomics: every
/// concurrent writer stores the same epoch value, so ordering is
/// irrelevant, and memory stays O(num_pairs) regardless of worker count.
/// Tolerance mode needs per-worker influence sums, so it keeps one stamp
/// + float array per worker; there, a pair enters the frontier only once
/// its *carried* influence — accumulated across iterations while it was
/// being skipped — exceeds the tolerance. That is the incremental
/// engine's pending-bound scheme (core/incremental.h), so the same
/// τ·(1+w)/(1-w) error bound applies against the exact-mode scores.
class FrontierTracker {
 public:
  /// Sizes the stamp arrays: one shared atomic array (exact) or one stamp
  /// + influence array per worker (tolerance).
  void Init(size_t num_pairs, int num_workers, bool tolerance);

  /// Opens the next iteration's epoch; marks stamped from now on belong to
  /// the frontier *after* the upcoming sweep.
  void BeginIteration() { ++epoch_; }
  uint32_t epoch() const { return epoch_; }

  /// Exact mode: the shared stamp array (store the current epoch with
  /// std::memory_order_relaxed).
  std::atomic<uint32_t>* shared_stamps() { return shared_stamps_.get(); }

  /// Tolerance mode: the calling worker's stamp / influence arrays
  /// (hot-path raw pointers; one cache-resident array per worker, no
  /// false sharing of the accumulators).
  uint32_t* stamps(int worker) { return stamps_[worker].data(); }
  float* influence(int worker) { return influence_[worker].data(); }

  /// Collects the pairs stamped in the current epoch (exact mode) or whose
  /// carried influence exceeds `tolerance` (tolerance mode) into
  /// `*frontier`, ascending. Two chunked parallel passes (count, then
  /// fill), reusing the frontier's and the scratch's capacity.
  /// `previous_sweep_was_full` (tolerance mode): every pair was just
  /// evaluated, so influence carried from before that sweep is absorbed
  /// and only the fresh epoch's marks count.
  void BuildNext(ThreadPool& pool, double tolerance,
                 bool previous_sweep_was_full,
                 std::vector<uint32_t>* frontier);

 private:
  size_t num_pairs_ = 0;
  bool tolerance_ = false;
  uint32_t epoch_ = 0;
  std::unique_ptr<std::atomic<uint32_t>[]> shared_stamps_;  // exact mode
  std::vector<std::vector<uint32_t>> stamps_;     // per worker, tolerance
  std::vector<std::vector<float>> influence_;     // per worker, tolerance
  std::vector<double> carry_;       // cross-iteration pending influence
  std::vector<uint32_t> chunk_offsets_;  // BuildNext count/fill scratch
};

}  // namespace fsim

#endif  // FSIM_CORE_PAIR_STORE_H_
