// The candidate-pair store of Algorithm 1: which node pairs (u, v) are
// maintained in the hash maps Hc/Hp, their double-buffered scores, the
// side table of upper bounds for pruned pairs (upper-bound updating, §3.4),
// and the pair-graph CSR neighbor index that turns the iterate loop's score
// lookups into direct array reads.
#ifndef FSIM_CORE_PAIR_STORE_H_
#define FSIM_CORE_PAIR_STORE_H_

#include <span>
#include <vector>

#include "common/flat_pair_map.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/fsim_config.h"
#include "core/operators.h"
#include "graph/graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// Candidate pairs with previous/current score buffers.
///
/// Construction applies the two optimizations:
///  * label-constrained mapping: with θ > 0 only pairs with L(u,v) >= θ are
///    enumerated (Remark 2 — pairs below θ can never be mapped, so they
///    never contribute);
///  * upper-bound updating: pairs whose Eq. 6 bound is <= β are dropped; if
///    α > 0 their bounds are kept in a side table so lookups can return
///    α * bound.
///
/// When config.neighbor_index_budget_bytes allows, Build additionally
/// materializes the pair-graph CSR neighbor index: for every maintained pair
/// i = (u, v) and each direction with nonzero weight, the NeighborRef list of
/// label-compatible candidate pairs (x, y) ∈ N±(u) x N±(v) sorted by
/// (row, col). Iterating then reads previous-iteration scores by direct
/// indexing (prev_data() / pruned ref tag) instead of hash probes.
class PairStore {
 public:
  struct BuildInfo {
    size_t theta_candidates = 0;  // pairs surviving the θ filter
    size_t kept = 0;              // pairs actually maintained
    size_t pruned = 0;            // pairs dropped by the upper bound
    /// Peak bytes held in the neighbor-index build's per-chunk staging
    /// buffers (all alive simultaneously at the classify/copy barrier).
    /// 0 under the bounded build, which stages nothing.
    size_t peak_staging_bytes = 0;
    /// True when the index was built with the bounded count-then-fill
    /// passes because the one-pass staging would have pushed transient
    /// memory past neighbor_index_budget_bytes (classifies twice, but peak
    /// build memory stays at the final index footprint).
    bool bounded_staging_build = false;
  };

  /// Enumerates and initializes the candidate pairs. Fails with
  /// InvalidArgument if the candidate count would exceed config.pair_limit.
  /// `build_neighbor_index` lets callers that never run the Algorithm 1
  /// iterate loop (e.g. incremental maintenance) skip the index build.
  /// `pool` parallelizes the index build when provided (the engines pass
  /// their iterate pool); nullptr builds serially.
  static Result<PairStore> Build(const Graph& g1, const Graph& g2,
                                 const FSimConfig& config,
                                 const LabelSimilarityCache& lsim,
                                 bool build_neighbor_index = true,
                                 ThreadPool* pool = nullptr);

  size_t size() const { return keys_.size(); }
  NodeId U(size_t i) const { return PairFirst(keys_[i]); }
  NodeId V(size_t i) const { return PairSecond(keys_[i]); }

  double prev(size_t i) const { return prev_[i]; }
  void set_curr(size_t i, double value) { curr_[i] = value; }
  void SwapBuffers() { prev_.swap(curr_); }

  /// Index of (u,v) in the store, or FlatPairMap::kNotFound.
  uint32_t Find(NodeId u, NodeId v) const {
    return index_.Find(PairKey(u, v));
  }

  /// Eq. 6 upper bound of a pruned pair (0 when untracked, i.e. α == 0).
  double PrunedUpperBound(NodeId u, NodeId v) const {
    uint32_t idx = pruned_index_.Find(PairKey(u, v));
    return idx == FlatPairMap::kNotFound ? 0.0 : pruned_ub_[idx];
  }

  /// True if the pair-graph CSR neighbor index was materialized (it fits
  /// config.neighbor_index_budget_bytes and the build was requested).
  bool has_neighbor_index() const { return has_neighbor_index_; }

  /// True when the index uses the packed 8-byte entry layout (16-bit
  /// row/col) — selected automatically when every relevant neighbor-list
  /// position fits (see FSimConfig::use_packed_neighbor_refs). Callers
  /// read through OutRefsPacked/InRefsPacked then, OutRefs/InRefs
  /// otherwise.
  bool packed_refs() const { return packed_refs_; }

  /// Out-direction CSR entries of pair i: the label-compatible candidate
  /// pairs of N+(u) x N+(v), sorted by (row, col). Empty when the index was
  /// not materialized; diagonal pairs of a pin_diagonal run and zero-weight
  /// directions also have empty spans (never evaluated).
  std::span<const NeighborRef> OutRefs(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(!packed_refs_);
    return {nbr_refs_.data() + nbr_offsets_[2 * i],
            nbr_refs_.data() + nbr_offsets_[2 * i + 1]};
  }

  /// In-direction CSR entries of pair i (N-(u) x N-(v)).
  std::span<const NeighborRef> InRefs(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(!packed_refs_);
    return {nbr_refs_.data() + nbr_offsets_[2 * i + 1],
            nbr_refs_.data() + nbr_offsets_[2 * i + 2]};
  }

  /// Packed-layout counterparts of OutRefs/InRefs.
  std::span<const PackedNeighborRef> OutRefsPacked(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(packed_refs_);
    return {nbr_refs_packed_.data() + nbr_offsets_[2 * i],
            nbr_refs_packed_.data() + nbr_offsets_[2 * i + 1]};
  }
  std::span<const PackedNeighborRef> InRefsPacked(size_t i) const {
    if (!has_neighbor_index_) return {};
    FSIM_DCHECK(packed_refs_);
    return {nbr_refs_packed_.data() + nbr_offsets_[2 * i + 1],
            nbr_refs_packed_.data() + nbr_offsets_[2 * i + 2]};
  }

  /// Previous-iteration scores, indexed by untagged NeighborRef::ref values.
  /// The pointer is stable across SwapBuffers only if re-read afterwards.
  const double* prev_data() const { return prev_.data(); }

  /// Eq. 6 bounds of tracked pruned pairs, indexed by tagged refs.
  const float* pruned_bounds_data() const { return pruned_ub_.data(); }

  /// Heap footprint of the neighbor index (0 when not materialized).
  size_t NeighborIndexBytes() const {
    return nbr_refs_.capacity() * sizeof(NeighborRef) +
           nbr_refs_packed_.capacity() * sizeof(PackedNeighborRef) +
           nbr_offsets_.capacity() * sizeof(uint64_t);
  }

  const BuildInfo& info() const { return info_; }

  /// Moves the final scores out (call after the last SwapBuffers, so prev_
  /// holds the converged values).
  std::vector<uint64_t> TakeKeys() { return std::move(keys_); }
  std::vector<double> TakeScores() { return std::move(prev_); }
  FlatPairMap TakeIndex() { return std::move(index_); }

 private:
  PairStore() = default;

  /// Materializes the CSR neighbor index if it fits the budget, choosing
  /// the packed or wide entry layout.
  void BuildNeighborIndex(const Graph& g1, const Graph& g2,
                          const FSimConfig& config,
                          const LabelSimilarityCache& lsim, ThreadPool* pool);

  /// Classification of every pair's candidate entries into `refs`. Default
  /// (one-pass): chunks classify into per-chunk staging buffers (recording
  /// per-span counts), offsets are prefix-summed, then each chunk's staged
  /// entries — contiguous in the final layout by construction — are copied
  /// into place; transient peak reaches final + staged bytes. Bounded
  /// (`bounded_staging`): a counting pass fills the per-span counts, offsets
  /// are prefix-summed, then a second classification writes entries straight
  /// into their final slots — twice the classify work, no staging. Ref is
  /// NeighborRef or PackedNeighborRef.
  template <typename Ref>
  void FillNeighborRefs(const Graph& g1, const Graph& g2,
                        const FSimConfig& config,
                        const LabelSimilarityCache& lsim, ThreadPool* pool,
                        bool bounded_staging, std::vector<Ref>* refs);

  std::vector<uint64_t> keys_;  // sorted ascending: u-major, then v
  FlatPairMap index_;
  std::vector<double> prev_;
  std::vector<double> curr_;
  FlatPairMap pruned_index_;
  std::vector<float> pruned_ub_;
  BuildInfo info_;

  // Pair-graph CSR neighbor index. nbr_offsets_ has 2 * size() + 1 entries:
  // pair i's out-direction entries live in [offsets[2i], offsets[2i+1]) and
  // its in-direction entries in [offsets[2i+1], offsets[2i+2]). Exactly one
  // of the two entry arrays is populated, per packed_refs_.
  bool has_neighbor_index_ = false;
  bool packed_refs_ = false;
  std::vector<uint64_t> nbr_offsets_;
  std::vector<NeighborRef> nbr_refs_;
  std::vector<PackedNeighborRef> nbr_refs_packed_;
};

}  // namespace fsim

#endif  // FSIM_CORE_PAIR_STORE_H_
