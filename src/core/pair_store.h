// The candidate-pair store of Algorithm 1: which node pairs (u, v) are
// maintained in the hash maps Hc/Hp, their double-buffered scores, and the
// side table of upper bounds for pruned pairs (upper-bound updating, §3.4).
#ifndef FSIM_CORE_PAIR_STORE_H_
#define FSIM_CORE_PAIR_STORE_H_

#include <vector>

#include "common/flat_pair_map.h"
#include "common/result.h"
#include "core/fsim_config.h"
#include "graph/graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// Candidate pairs with previous/current score buffers.
///
/// Construction applies the two optimizations:
///  * label-constrained mapping: with θ > 0 only pairs with L(u,v) >= θ are
///    enumerated (Remark 2 — pairs below θ can never be mapped, so they
///    never contribute);
///  * upper-bound updating: pairs whose Eq. 6 bound is <= β are dropped; if
///    α > 0 their bounds are kept in a side table so lookups can return
///    α * bound.
class PairStore {
 public:
  struct BuildInfo {
    size_t theta_candidates = 0;  // pairs surviving the θ filter
    size_t kept = 0;              // pairs actually maintained
    size_t pruned = 0;            // pairs dropped by the upper bound
  };

  /// Enumerates and initializes the candidate pairs. Fails with
  /// InvalidArgument if the candidate count would exceed config.pair_limit.
  static Result<PairStore> Build(const Graph& g1, const Graph& g2,
                                 const FSimConfig& config,
                                 const LabelSimilarityCache& lsim);

  size_t size() const { return keys_.size(); }
  NodeId U(size_t i) const { return PairFirst(keys_[i]); }
  NodeId V(size_t i) const { return PairSecond(keys_[i]); }

  double prev(size_t i) const { return prev_[i]; }
  void set_curr(size_t i, double value) { curr_[i] = value; }
  void SwapBuffers() { prev_.swap(curr_); }

  /// Index of (u,v) in the store, or FlatPairMap::kNotFound.
  uint32_t Find(NodeId u, NodeId v) const {
    return index_.Find(PairKey(u, v));
  }

  /// Eq. 6 upper bound of a pruned pair (0 when untracked, i.e. α == 0).
  double PrunedUpperBound(NodeId u, NodeId v) const {
    uint32_t idx = pruned_index_.Find(PairKey(u, v));
    return idx == FlatPairMap::kNotFound ? 0.0 : pruned_ub_[idx];
  }

  const BuildInfo& info() const { return info_; }

  /// Moves the final scores out (call after the last SwapBuffers, so prev_
  /// holds the converged values).
  std::vector<uint64_t> TakeKeys() { return std::move(keys_); }
  std::vector<double> TakeScores() { return std::move(prev_); }
  FlatPairMap TakeIndex() { return std::move(index_); }

 private:
  PairStore() = default;

  std::vector<uint64_t> keys_;  // sorted ascending: u-major, then v
  FlatPairMap index_;
  std::vector<double> prev_;
  std::vector<double> curr_;
  FlatPairMap pruned_index_;
  std::vector<float> pruned_ub_;
  BuildInfo info_;
};

}  // namespace fsim

#endif  // FSIM_CORE_PAIR_STORE_H_
