// A pair-graph CSR neighbor index that stays valid under single-edge graph
// edits — the incremental engine's counterpart of PairStore's batch index
// (core/pair_store.h).
//
// For every maintained pair i = (u, v) it stores two spans of NeighborRef
// entries: the out-direction span enumerates the label-compatible candidate
// pairs of N+(u) x N+(v), the in-direction span those of N-(u) x N-(v),
// both sorted by (row, col) exactly as the batch index — so
// DirectionScoreIndexed produces bit-identical sums to the hash-lookup
// fallback path.
//
// Both directions are materialized regardless of the w+/w- weights, because
// each span serves double duty:
//   * evaluation — the direction's Equation 3 inputs;
//   * dependent propagation — the refs of the IN-span of (u, v) are exactly
//     the pairs that read (u, v) through their OUT-direction (x ∈ N-(u),
//     y ∈ N-(v)), and vice versa. The worklist push therefore walks a
//     contiguous ref span instead of hash-probing N±(u) x N±(v).
//
// Edit maintenance: inserting/removing edge (a, b) in graph 1 changes only
// N+(a) and N-(b), so only the out-spans of pairs (a, *) and the in-spans
// of pairs (b, *) are invalid; an edit in graph 2 invalidates the out-spans
// of (*, a) and the in-spans of (*, b). Those spans are re-staged in place
// (O(|N(u)|·|N(v)|) classify work — the same cost as the one evaluation of
// the pair the edit forces anyway). Spans that outgrow their slot relocate
// to the arena tail; freed slots are reclaimed by periodic compaction, so
// arena memory stays within ~2x of the live entries.
#ifndef FSIM_CORE_INCREMENTAL_INDEX_H_
#define FSIM_CORE_INCREMENTAL_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/flat_pair_map.h"
#include "common/status.h"
#include "core/fsim_config.h"
#include "core/operators.h"
#include "graph/dynamic_graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// The lookup context a span (re)build classifies against. The candidate
/// set, labels and θ are fixed under edits; only the graphs' adjacency
/// changes, which is why re-staging the touched spans suffices.
struct NeighborIndexEnv {
  const DynamicGraph& g1;
  const DynamicGraph& g2;
  const FlatPairMap& pair_index;  // maintained pair -> score index
  const LabelSimilarityCache& lsim;
};

class IncrementalNeighborIndex {
 public:
  static constexpr int kOut = 0;
  static constexpr int kIn = 1;

  /// Materializes both direction spans for every maintained pair.
  /// Returns false — leaving the index disabled, so callers fall back to
  /// hash lookups — when the estimated footprint exceeds
  /// config.neighbor_index_budget_bytes or the ref range would overflow.
  bool Build(const NeighborIndexEnv& env, std::span<const uint64_t> keys,
             const FSimConfig& config);

  bool enabled() const { return enabled_; }

  /// The direction span of pair i; empty when the index is disabled and for
  /// pinned diagonal pairs.
  std::span<const NeighborRef> Refs(size_t pair, int dir) const {
    if (!enabled_) return {};
    const SpanMeta& m = spans_[2 * pair + dir];
    return {arena_.data() + m.offset, arena_.data() + m.offset + m.size};
  }

  /// Rebuilds the direction span of pair (u, v) from the current graphs.
  /// Call after the graph edit has been applied, for every invalidated
  /// (pair, direction) — see the file comment for which spans an edit
  /// invalidates. If growth pushes the footprint past the build-time budget
  /// even after compaction (an insert-heavy stream on a graph that keeps
  /// densifying), the index disables itself and the engine falls back to
  /// hash lookups, keeping the configured memory ceiling honest.
  void Restage(size_t pair, int dir, NodeId u, NodeId v,
               const NeighborIndexEnv& env);

  /// Heap footprint (arena + span metadata), for FSimStats reporting.
  size_t MemoryBytes() const {
    return arena_.capacity() * sizeof(NeighborRef) +
           spans_.capacity() * sizeof(SpanMeta);
  }

  /// Spans re-staged since Build (work accounting for EditStats).
  uint64_t restaged_spans() const { return restaged_spans_; }

  /// Structural invariants of the editable span arena: every span lies
  /// inside the arena with size <= capacity, spans do not overlap, the
  /// slack accounting balances (Σ capacity + freed_ == arena size — a
  /// Restage that leaks or double-frees a slot breaks the equality), every
  /// ref targets a maintained pair, and each span is strictly
  /// (row, col)-sorted. Trivially OK while disabled. Bumps
  /// ValidatorCounters "IncrementalNeighborIndex::Validate".
  Status Validate(size_t num_pairs) const;

 private:
  // check_test.cc corrupts the span arena through this to prove the
  // validator catches broken slack accounting and overlapping spans.
  friend struct IncrementalNeighborIndexTestAccess;

  struct SpanMeta {
    uint64_t offset = 0;
    uint32_t size = 0;
    uint32_t capacity = 0;
  };

  /// Appends the classified entries of one direction of (u, v) to stage_.
  void ClassifyInto(std::span<const NodeId> s1, std::span<const NodeId> s2,
                    const NeighborIndexEnv& env, std::vector<NeighborRef>* out) const;

  /// Rewrites the arena with tight spans, dropping freed capacity.
  void Compact();

  /// Drops the index (spans + arena) and reports disabled; evaluation and
  /// dependent pushes fall back to hash lookups from then on.
  void Disable();

  bool enabled_ = false;
  bool need_compat_ = false;
  double theta_ = 0.0;
  bool pin_diagonal_ = false;
  uint64_t budget_bytes_ = 0;
  std::vector<SpanMeta> spans_;  // 2 per pair: [2i] = out, [2i+1] = in
  std::vector<NeighborRef> arena_;
  std::vector<NeighborRef> stage_;  // re-stage scratch
  uint64_t freed_ = 0;              // arena entries no span owns
  uint64_t restaged_spans_ = 0;
};

}  // namespace fsim

#endif  // FSIM_CORE_INCREMENTAL_INDEX_H_
