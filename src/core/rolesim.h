// Standalone RoleSim [Jin, Lee & Hong 2011] on an undirected adaptation.
// Serves as the reference oracle for the §4.3 claim that FSimχ configured
// with injective operators, Ω = max(|S1|,|S2|), L ≡ 1 and degree-ratio
// initialization computes axiomatic role similarity.
#ifndef FSIM_CORE_ROLESIM_H_
#define FSIM_CORE_ROLESIM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// Dense all-pairs RoleSim after `iterations` rounds on `g`, whose
/// out-neighbor lists are taken as the undirected neighborhoods (pass
/// Graph::AsUndirected()):
///   r_0(u,v) = min(d(u),d(v)) / max(d(u),d(v))   (1 when both degrees are 0)
///   r_k(u,v) = (1-beta) * M_{r_{k-1}}(N(u),N(v)) / max(d(u),d(v)) + beta,
/// where M is the greedy maximum-weight matching between the two
/// neighborhoods (the same greedy realization the FSim engine uses).
/// Row-major result: scores[u * n + v].
std::vector<double> RoleSimScores(const Graph& g, double beta,
                                  uint32_t iterations);

}  // namespace fsim

#endif  // FSIM_CORE_ROLESIM_H_
