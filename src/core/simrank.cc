#include "core/simrank.h"

#include "common/logging.h"

namespace fsim {

std::vector<double> SimRankScores(const Graph& g, double c,
                                  uint32_t iterations) {
  FSIM_CHECK(c > 0.0 && c < 1.0);
  const size_t n = g.NumNodes();
  std::vector<double> prev(n * n, 0.0);
  for (size_t u = 0; u < n; ++u) prev[u * n + u] = 1.0;
  std::vector<double> curr(n * n, 0.0);

  for (uint32_t iter = 0; iter < iterations; ++iter) {
    for (NodeId u = 0; u < n; ++u) {
      auto in_u = g.InNeighbors(u);
      for (NodeId v = 0; v < n; ++v) {
        if (u == v) {
          curr[u * n + v] = 1.0;
          continue;
        }
        auto in_v = g.InNeighbors(v);
        if (in_u.empty() || in_v.empty()) {
          curr[u * n + v] = 0.0;
          continue;
        }
        double sum = 0.0;
        for (NodeId a : in_u) {
          for (NodeId b : in_v) {
            sum += prev[static_cast<size_t>(a) * n + b];
          }
        }
        curr[u * n + v] =
            c * sum /
            (static_cast<double>(in_u.size()) * static_cast<double>(in_v.size()));
      }
    }
    prev.swap(curr);
  }
  return prev;
}

}  // namespace fsim
