// FSim^0 initialization (§3.3 and the §4.3 SimRank/RoleSim configurations)
// and the additive label term of Equation 1/3, shared by every engine
// (sparse, dense, top-k search) so the InitKind/LabelTermKind semantics
// cannot silently diverge between them.
#ifndef FSIM_CORE_INIT_VALUE_H_
#define FSIM_CORE_INIT_VALUE_H_

#include <algorithm>

#include "core/fsim_config.h"
#include "graph/graph.h"
#include "label/label_similarity.h"

namespace fsim {

/// The FSim^0 value of pair (u, v) under config.init.
inline double InitValue(const FSimConfig& config,
                        const LabelSimilarityCache& lsim, const Graph& g1,
                        const Graph& g2, NodeId u, NodeId v) {
  switch (config.init) {
    case InitKind::kLabelSim:
      return lsim.Sim(g1.Label(u), g2.Label(v));
    case InitKind::kIndicatorDiagonal:
      return u == v ? 1.0 : 0.0;
    case InitKind::kDegreeRatio: {
      const double d1 = static_cast<double>(g1.OutDegree(u));
      const double d2 = static_cast<double>(g2.OutDegree(v));
      if (d1 == 0.0 && d2 == 0.0) return 1.0;
      return std::min(d1, d2) / std::max(d1, d2);
    }
    case InitKind::kOnes:
      return 1.0;
  }
  return 0.0;
}

/// The additive L-term of Equation 1/3 for a label-class pair under
/// config.label_term. Iteration-invariant, so engines hoist it — per pair
/// (sparse) or per label-class pair (dense, core/dense_index.h).
inline double LabelTermValue(const FSimConfig& config,
                             const LabelSimilarityCache& lsim, LabelId a,
                             LabelId b) {
  switch (config.label_term) {
    case LabelTermKind::kLabelSim:
      return lsim.Sim(a, b);
    case LabelTermKind::kZero:
      return 0.0;
    case LabelTermKind::kOne:
      return 1.0;
  }
  return 0.0;
}

}  // namespace fsim

#endif  // FSIM_CORE_INIT_VALUE_H_
