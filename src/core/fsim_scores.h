// The result of a ComputeFSim run: per-pair fractional χ-simulation scores
// with lookup and top-k queries, plus run statistics.
#ifndef FSIM_CORE_FSIM_SCORES_H_
#define FSIM_CORE_FSIM_SCORES_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_pair_map.h"
#include "graph/graph.h"

namespace fsim {

/// Statistics of a ComputeFSim run.
struct FSimStats {
  size_t theta_candidates = 0;  // pairs after the θ filter
  size_t maintained_pairs = 0;  // pairs actually iterated (after β pruning)
  size_t pruned_pairs = 0;      // pairs removed by upper-bound updating
  uint32_t iterations = 0;
  bool converged = false;
  double final_delta = 0.0;
  double build_seconds = 0.0;
  double iterate_seconds = 0.0;
  /// True when the iterate loop ran on the pair-graph CSR neighbor index
  /// (false: hash-lookup fallback, e.g. budget exceeded or index disabled).
  bool used_neighbor_index = false;
  /// Heap footprint of the neighbor index (0 when not materialized).
  size_t neighbor_index_bytes = 0;
  /// True when the index used the packed 8-byte entry layout (16-bit
  /// row/col; degree-bounded graphs only).
  bool packed_neighbor_refs = false;
  /// Peak transient bytes held by the index build's per-chunk staging
  /// buffers (0 when the bounded count-then-fill build ran, or no index).
  size_t neighbor_index_peak_staging_bytes = 0;
  /// True when the index was built with the bounded (no-staging,
  /// classify-twice) passes because one-pass staging would have pushed peak
  /// build memory past FSimConfig::neighbor_index_budget_bytes.
  bool neighbor_index_bounded_build = false;
  /// max_{(u,v)} |FSim^k - FSim^{k-1}| per iteration, when
  /// FSimConfig::record_delta_history is set (Theorem 1: strictly
  /// decreasing).
  std::vector<double> delta_history;
  /// True when the iterate loop ran under active-set scheduling
  /// (FSimConfig::active_set != kOff and the CSR neighbor index present).
  bool active_set = false;
  /// Pairs evaluated per iteration under active-set scheduling (the first
  /// entry is the full maintained-pair count; later entries shrink as
  /// pairs freeze). Empty when active_set is false.
  std::vector<size_t> active_pairs_history;
  /// Fraction of the iterate loop's pair evaluations the active set
  /// skipped: 1 - evaluated / (iterations * maintained_pairs). 0 when
  /// active-set scheduling was off.
  double frozen_fraction = 0.0;
  /// Accumulated time spent building frontiers from the epoch-tagged dirty
  /// stamps (part of iterate_seconds).
  double frontier_build_seconds = 0.0;
  /// Iterations that ran as full sweeps: the first one, plus every
  /// frontier at or above FSimConfig::frontier_density_threshold.
  uint32_t full_sweep_iterations = 0;
  /// Resolved vectorized kernel level of the run (core/simd/kernels.h
  /// SimdLevel: 0 = scalar, 1 = AVX2, 2 = AVX-512). Dense engine only;
  /// sparse runs report 0.
  uint32_t simd_level = 0;
  /// Heap footprint of the dense engine's precomputed SoA tile panels
  /// (core/simd/tile_panel.h); 0 when the vectorized tile path did not run.
  size_t simd_panel_bytes = 0;
};

/// Immutable score container. Pairs are sorted (u-major), so all scores for
/// one u form a contiguous range.
class FSimScores {
 public:
  FSimScores() = default;
  FSimScores(std::vector<uint64_t> keys, std::vector<double> values,
             FlatPairMap index, FSimStats stats);

  /// FSimχ(u, v); 0 for pairs outside the maintained candidate set.
  double Score(NodeId u, NodeId v) const {
    uint32_t idx = index_.Find(PairKey(u, v));
    return idx == FlatPairMap::kNotFound ? 0.0 : values_[idx];
  }

  /// True if (u,v) was maintained (score 0 is then a real score, not a
  /// missing pair).
  bool Contains(NodeId u, NodeId v) const {
    return index_.Find(PairKey(u, v)) != FlatPairMap::kNotFound;
  }

  size_t NumPairs() const { return keys_.size(); }

  /// The k highest-scoring v for a fixed u, descending (ties by node id).
  /// This is the paper's future-work top-k similarity query, answerable
  /// directly from the container. Bounded-heap selection: O(row log k) time
  /// and O(k) extra space, so serving-path calls never materialize a row.
  std::vector<std::pair<NodeId, double>> TopK(NodeId u, size_t k) const;

  /// TopK appending into a caller-owned buffer (no per-call allocation once
  /// out has capacity >= k); returns the number of entries appended. The
  /// snapshot top-k cache builder (serve/snapshot.h) calls this per row.
  size_t TopKInto(NodeId u, size_t k,
                  std::vector<std::pair<NodeId, double>>* out) const;

  /// All (v, score) for one u (unsorted by score; ascending v).
  std::vector<std::pair<NodeId, double>> Row(NodeId u) const;

  const std::vector<uint64_t>& keys() const { return keys_; }
  const std::vector<double>& values() const { return values_; }
  const FSimStats& stats() const { return stats_; }

 private:
  /// [first, last) range of indices whose key has high word u.
  std::pair<size_t, size_t> RangeOf(NodeId u) const;

  std::vector<uint64_t> keys_;
  std::vector<double> values_;
  FlatPairMap index_;
  FSimStats stats_;
};

/// A frozen, shareable score container. Snapshot-based consumers (the
/// serving layer) hold one of these per version; copies are refcount bumps.
using SharedFSimScores = std::shared_ptr<const FSimScores>;

/// Freezes a score container into shared ownership without copying the
/// score table (the moved-from object is left empty).
inline SharedFSimScores FreezeScores(FSimScores&& scores) {
  return std::make_shared<const FSimScores>(std::move(scores));
}

}  // namespace fsim

#endif  // FSIM_CORE_FSIM_SCORES_H_
