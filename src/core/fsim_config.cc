#include "core/fsim_config.h"

#include <algorithm>
#include <cmath>

namespace fsim {

uint32_t FSimIterationBound(const FSimConfig& config) {
  if (config.max_iterations > 0) return config.max_iterations;
  const double w = config.w_out + config.w_in;
  if (w <= 0.0) return 1;  // scores are fixed by the label term alone
  double bound = std::ceil(std::log(config.epsilon) / std::log(w));
  return static_cast<uint32_t>(std::max(1.0, bound));
}

OperatorConfig OperatorsForVariant(SimVariant variant) {
  switch (variant) {
    case SimVariant::kSimple:
      return {MappingKind::kMaxPerRow, OmegaKind::kSizeS1};
    case SimVariant::kDegreePreserving:
      return {MappingKind::kInjectiveRow, OmegaKind::kSizeS1};
    case SimVariant::kBi:
      return {MappingKind::kMaxBothSides, OmegaKind::kSumSizes};
    case SimVariant::kBijective:
      return {MappingKind::kInjectiveSym, OmegaKind::kGeoMean};
  }
  return {};
}

FSimConfig SimRankFSimConfig(double c) {
  FSimConfig config;
  config.w_out = 0.0;
  config.w_in = c;
  config.label_term = LabelTermKind::kZero;
  config.init = InitKind::kIndicatorDiagonal;
  config.operator_override = OperatorConfig{MappingKind::kProduct,
                                            OmegaKind::kProduct};
  config.pin_diagonal = true;
  config.theta = 0.0;
  return config;
}

FSimConfig RoleSimFSimConfig(double beta) {
  FSimConfig config;
  config.w_out = 1.0 - beta;
  config.w_in = 0.0;
  config.label_term = LabelTermKind::kOne;
  config.init = InitKind::kDegreeRatio;
  config.operator_override = OperatorConfig{MappingKind::kInjectiveSym,
                                            OmegaKind::kMaxSize};
  config.theta = 0.0;
  return config;
}

}  // namespace fsim
