#include "core/pair_store.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/init_value.h"
#include "core/operators.h"

namespace fsim {

namespace {

/// Groups node ids by label id.
std::vector<std::vector<NodeId>> NodesByLabel(const Graph& g,
                                              size_t dict_size) {
  std::vector<std::vector<NodeId>> groups(dict_size);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    groups[g.Label(u)].push_back(u);
  }
  return groups;
}

}  // namespace

Result<PairStore> PairStore::Build(const Graph& g1, const Graph& g2,
                                   const FSimConfig& config,
                                   const LabelSimilarityCache& lsim,
                                   bool build_neighbor_index,
                                   ThreadPool* pool) {
  PairStore store;
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  // --- Stage 1: θ-constrained candidate enumeration (Remark 2). ---
  if (config.theta <= 0.0) {
    const uint64_t total = static_cast<uint64_t>(n1) * n2;
    if (total > config.pair_limit) {
      return Status::InvalidArgument(StrFormat(
          "candidate pairs %llu exceed pair_limit %llu (theta=0 enumerates "
          "|V1|x|V2|)",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(config.pair_limit)));
    }
    store.keys_.reserve(total);
    for (NodeId u = 0; u < n1; ++u) {
      for (NodeId v = 0; v < n2; ++v) {
        store.keys_.push_back(PairKey(u, v));
      }
    }
  } else {
    const size_t dict_size = g1.dict()->size();
    auto groups1 = NodesByLabel(g1, dict_size);
    auto groups2 = NodesByLabel(g2, dict_size);
    // Count first so the reserve is exact and the limit check is cheap.
    uint64_t total = 0;
    for (LabelId a = 0; a < dict_size; ++a) {
      if (groups1[a].empty()) continue;
      for (LabelId b = 0; b < dict_size; ++b) {
        if (groups2[b].empty()) continue;
        if (lsim.Compatible(a, b, config.theta)) {
          total += static_cast<uint64_t>(groups1[a].size()) *
                   groups2[b].size();
        }
      }
    }
    if (total > config.pair_limit) {
      return Status::InvalidArgument(StrFormat(
          "candidate pairs %llu exceed pair_limit %llu",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(config.pair_limit)));
    }
    store.keys_.reserve(total);
    for (LabelId a = 0; a < dict_size; ++a) {
      if (groups1[a].empty()) continue;
      for (LabelId b = 0; b < dict_size; ++b) {
        if (groups2[b].empty()) continue;
        if (!lsim.Compatible(a, b, config.theta)) continue;
        for (NodeId u : groups1[a]) {
          for (NodeId v : groups2[b]) {
            store.keys_.push_back(PairKey(u, v));
          }
        }
      }
    }
  }
  store.info_.theta_candidates = store.keys_.size();

  // --- Stage 2: upper-bound pruning (Eq. 6). ---
  if (config.upper_bound) {
    const OperatorConfig op = config.operators();
    const double label_weight = 1.0 - config.w_out - config.w_in;
    auto compat = [&](NodeId x, NodeId y) {
      return lsim.Compatible(g1.Label(x), g2.Label(y), config.theta);
    };
    std::vector<uint64_t> kept;
    kept.reserve(store.keys_.size());
    const bool track_pruned = config.alpha > 0.0;
    for (uint64_t key : store.keys_) {
      const NodeId u = PairFirst(key);
      const NodeId v = PairSecond(key);
      double bound =
          config.w_out * DirectionUpperBound(op, g1.OutNeighbors(u),
                                             g2.OutNeighbors(v), compat) +
          config.w_in * DirectionUpperBound(op, g1.InNeighbors(u),
                                            g2.InNeighbors(v), compat) +
          label_weight *
              LabelTermValue(config, lsim, g1.Label(u), g2.Label(v));
      const bool keep = bound > config.beta ||
                        (config.pin_diagonal && u == v);
      if (keep) {
        kept.push_back(key);
      } else if (track_pruned) {
        store.pruned_index_.Insert(key,
                                   static_cast<uint32_t>(store.pruned_ub_.size()));
        store.pruned_ub_.push_back(static_cast<float>(bound));
      }
    }
    store.info_.pruned = store.keys_.size() - kept.size();
    store.keys_ = std::move(kept);
  }
  store.info_.kept = store.keys_.size();

  // --- Stage 3: index + initialization (§3.3). ---
  std::sort(store.keys_.begin(), store.keys_.end());
  store.index_ = FlatPairMap(store.keys_.size());
  store.prev_.resize(store.keys_.size());
  store.curr_.resize(store.keys_.size());
  for (size_t i = 0; i < store.keys_.size(); ++i) {
    store.index_.Insert(store.keys_[i], static_cast<uint32_t>(i));
    store.prev_[i] = InitValue(config, lsim, g1, g2, PairFirst(store.keys_[i]),
                               PairSecond(store.keys_[i]));
  }

  // --- Stage 4: pair-graph CSR neighbor index (budget-gated). ---
  if (build_neighbor_index && config.neighbor_index_budget_bytes > 0) {
    store.BuildNeighborIndex(g1, g2, config, lsim, pool);
#ifdef FSIM_DEBUG_CHECKS
    const Status valid = store.ValidateNeighborIndex();
    FSIM_CHECK(valid.ok()) << valid.ToString();
#endif
  }
  return store;
}

Status PairStore::ValidateNeighborIndex() const {
  ValidatorCounters::Bump("PairStore::ValidateNeighborIndex");
  if (!has_neighbor_index_) return Status::OK();
  const size_t n = keys_.size();
  if (nbr_offsets_.size() != 2 * n + 1) {
    return Status::Internal(StrFormat(
        "neighbor index has %zu offsets for %zu pairs (want %zu)",
        nbr_offsets_.size(), n, 2 * n + 1));
  }
  if (nbr_offsets_.front() != 0) {
    return Status::Internal("neighbor index offsets do not start at 0");
  }
  // Exactly one entry layout may be populated; the offsets must account
  // for exactly its arena (the batch build is tight — any slack means a
  // torn or double-written span).
  const size_t arena_size =
      packed_refs_ ? nbr_refs_packed_.size() : nbr_refs_.size();
  const size_t other_size =
      packed_refs_ ? nbr_refs_.size() : nbr_refs_packed_.size();
  if (other_size != 0) {
    return Status::Internal("both neighbor-ref layouts are populated");
  }
  if (nbr_offsets_.back() != arena_size) {
    return Status::Internal(StrFormat(
        "neighbor index slack: offsets end at %llu but the arena holds %zu "
        "entries",
        static_cast<unsigned long long>(nbr_offsets_.back()), arena_size));
  }
  for (size_t k = 1; k < nbr_offsets_.size(); ++k) {
    if (nbr_offsets_[k] < nbr_offsets_[k - 1]) {
      return Status::Internal(
          StrFormat("neighbor index offsets regress at span %zu", k));
    }
  }
  // Per-entry checks, shared between the two layouts.
  auto check_span = [&](auto refs, size_t span) -> Status {
    uint64_t prev_key = 0;
    bool first = true;
    for (const auto& entry : refs) {
      if (IsPrunedRef(entry.ref)) {
        const uint32_t p = entry.ref & ~kNeighborRefPrunedTag;
        if (p >= pruned_ub_.size()) {
          return Status::Internal(StrFormat(
              "span %zu: tagged ref %u outside the pruned table (%zu bounds)",
              span, p, pruned_ub_.size()));
        }
      } else if (entry.ref >= n) {
        return Status::Internal(StrFormat(
            "span %zu: ref %u outside the maintained pairs (%zu)", span,
            entry.ref, n));
      }
      const uint64_t key = (static_cast<uint64_t>(entry.row) << 32) |
                           static_cast<uint64_t>(entry.col);
      if (!first && key <= prev_key) {
        return Status::Internal(StrFormat(
            "span %zu: entries not strictly (row, col)-sorted", span));
      }
      prev_key = key;
      first = false;
    }
    return Status::OK();
  };
  for (size_t i = 0; i < n; ++i) {
    for (int dir = 0; dir < 2; ++dir) {
      const size_t span = 2 * i + static_cast<size_t>(dir);
      Status st = packed_refs_
                      ? check_span(dir == 0 ? OutRefsPacked(i) : InRefsPacked(i),
                                   span)
                      : check_span(dir == 0 ? OutRefs(i) : InRefs(i), span);
      if (!st.ok()) return st;
    }
  }
  return Status::OK();
}

void PairStore::BuildNeighborIndex(const Graph& g1, const Graph& g2,
                                   const FSimConfig& config,
                                   const LabelSimilarityCache& lsim,
                                   ThreadPool* pool) {
  const size_t n = keys_.size();
  // The pruned-ref tag bit halves the addressable range of a ref.
  if (n >= kNeighborRefPrunedTag || pruned_ub_.size() >= kNeighborRefPrunedTag) {
    return;
  }

  // With the active set engaged, a direction's span is also materialized
  // when only the *opposite* weight is nonzero (it is then never evaluated
  // but serves as the reverse-dependency list for frontier marking), and
  // pinned diagonal spans are kept so their first-sweep init -> 1 snap can
  // notify dependents. See the OutRefs comment in the header.
  struct SpanPlan {
    bool use_out;
    bool use_in;
    bool skip_diagonal;
  };
  auto plan_for = [&](bool active_spans) {
    return SpanPlan{
        config.w_out > 0.0 || (active_spans && config.w_in > 0.0),
        config.w_in > 0.0 || (active_spans && config.w_out > 0.0),
        config.pin_diagonal && !active_spans};
  };
  // Entry layout: the packed 8-byte NeighborRef when every row/col fits in
  // 16 bits; positions inside a neighbor list run 0..deg-1, so a direction
  // packs while its max degree is <= 65536. The 12-byte layout otherwise.
  constexpr size_t kPackedDegreeLimit = 0x10000;
  auto packed_for = [&](const SpanPlan& p) {
    return config.use_packed_neighbor_refs &&
           (!p.use_out || (g1.MaxOutDegree() <= kPackedDegreeLimit &&
                           g2.MaxOutDegree() <= kPackedDegreeLimit)) &&
           (!p.use_in || (g1.MaxInDegree() <= kPackedDegreeLimit &&
                          g2.MaxInDegree() <= kPackedDegreeLimit));
  };
  // The pre-filter upper bound Σ |N±(u)|·|N±(v)| (compatibility filtering
  // only shrinks it, so fitting the bound guarantees fitting the index).
  auto max_entries_for = [&](const SpanPlan& p) {
    uint64_t max_entries = 0;
    for (uint64_t key : keys_) {
      const NodeId u = PairFirst(key);
      const NodeId v = PairSecond(key);
      if (p.skip_diagonal && u == v) continue;
      if (p.use_out) {
        max_entries +=
            static_cast<uint64_t>(g1.OutDegree(u)) * g2.OutDegree(v);
      }
      if (p.use_in) {
        max_entries += static_cast<uint64_t>(g1.InDegree(u)) * g2.InDegree(v);
      }
    }
    return max_entries;
  };
  const uint64_t offsets_bytes = (2 * n + 1) * sizeof(uint64_t);
  auto entry_bytes_for = [&](const SpanPlan& p) {
    return packed_for(p) ? sizeof(PackedNeighborRef) : sizeof(NeighborRef);
  };
  auto fits = [&](const SpanPlan& p, uint64_t max_entries) {
    return max_entries * entry_bytes_for(p) + offsets_bytes <=
           config.neighbor_index_budget_bytes;
  };

  // Prefer the widened layout the active set needs; if only the widening
  // blows the budget (single-direction configs double their entry count),
  // fall back to the evaluation-only index — the driver then runs full
  // sweeps (reverse_spans() false), which still beats losing the index.
  bool active_spans = config.active_set != ActiveSetMode::kOff;
  SpanPlan plan = plan_for(active_spans);
  uint64_t max_entries = max_entries_for(plan);
  if (active_spans && !fits(plan, max_entries)) {
    active_spans = false;
    plan = plan_for(false);
    max_entries = max_entries_for(plan);
  }
  if (!fits(plan, max_entries)) return;
  // The one-pass build transiently stages the classified entries once
  // more, so its peak usage can reach twice the final footprint; when the
  // doubled bound would blow the budget but the index itself fits, the
  // bounded count-then-fill build caps peak memory at the final footprint.
  const bool packed = packed_for(plan);
  const uint64_t entry_bytes = entry_bytes_for(plan);
  const bool bounded = 2 * max_entries * entry_bytes + offsets_bytes >
                       config.neighbor_index_budget_bytes;

  if (packed) {
    FillNeighborRefs(g1, g2, config, lsim, pool, bounded, active_spans,
                     &nbr_refs_packed_);
  } else {
    FillNeighborRefs(g1, g2, config, lsim, pool, bounded, active_spans,
                     &nbr_refs_);
  }
  info_.bounded_staging_build = bounded;
  packed_refs_ = packed;
  reverse_spans_ = active_spans;
  has_neighbor_index_ = true;
}

template <typename Ref>
void PairStore::FillNeighborRefs(const Graph& g1, const Graph& g2,
                                 const FSimConfig& config,
                                 const LabelSimilarityCache& lsim,
                                 ThreadPool* pool, bool bounded_staging,
                                 bool active_spans, std::vector<Ref>* refs) {
  const size_t n = keys_.size();
  const bool use_out =
      config.w_out > 0.0 || (active_spans && config.w_in > 0.0);
  const bool use_in =
      config.w_in > 0.0 || (active_spans && config.w_out > 0.0);
  const bool skip_diagonal = config.pin_diagonal && !active_spans;
  const double theta = config.theta;
  const bool need_compat = theta > 0.0;
  const double alpha = config.upper_bound ? config.alpha : 0.0;

  // Score source of candidate pair (x, y): the maintained-pair index, or a
  // tagged pruned-bound index whose lookup value is α * bound. Pairs that
  // are label-incompatible, or whose fallback lookup would return 0 (pruned
  // and untracked), are omitted — zero never contributes to any operator.
  auto classify = [&](NodeId x, NodeId y, uint32_t* ref) -> bool {
    if (need_compat && !lsim.Compatible(g1.Label(x), g2.Label(y), theta)) {
      return false;
    }
    const uint32_t idx = index_.Find(PairKey(x, y));
    if (idx != FlatPairMap::kNotFound) {
      *ref = idx;
      return true;
    }
    if (alpha > 0.0) {
      const uint32_t p = pruned_index_.Find(PairKey(x, y));
      if (p != FlatPairMap::kNotFound) {
        *ref = kNeighborRefPrunedTag | p;
        return true;
      }
    }
    return false;
  };

  nbr_offsets_.assign(2 * n + 1, 0);
  ThreadPool serial_pool(1);
  if (pool == nullptr) pool = &serial_pool;
  constexpr size_t kBuildGrain = 256;
  const size_t num_chunks = (n + kBuildGrain - 1) / kBuildGrain;
  using PosT = decltype(Ref::row);

  if (bounded_staging) {
    // Bounded count-then-fill: a counting classification records every
    // span's size, then — after the prefix sum fixes the layout — a second
    // classification writes entries straight into their final slots.
    // Classifies twice, but peak build memory is the final index footprint
    // (no staging), which is what the budget admitted.
    auto count_direction = [&](std::span<const NodeId> s1,
                               std::span<const NodeId> s2) -> uint64_t {
      uint64_t count = 0;
      uint32_t ref;
      for (uint32_t r = 0; r < s1.size(); ++r) {
        for (uint32_t c = 0; c < s2.size(); ++c) {
          if (classify(s1[r], s2[c], &ref)) ++count;
        }
      }
      return count;
    };
    pool->ParallelForChunked(n, kBuildGrain,
                            [&](int /*worker*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const NodeId u = PairFirst(keys_[i]);
        const NodeId v = PairSecond(keys_[i]);
        if (skip_diagonal && u == v) continue;
        if (use_out) {
          nbr_offsets_[2 * i + 1] =
              count_direction(g1.OutNeighbors(u), g2.OutNeighbors(v));
        }
        if (use_in) {
          nbr_offsets_[2 * i + 2] =
              count_direction(g1.InNeighbors(u), g2.InNeighbors(v));
        }
      }
    });
    for (size_t k = 1; k < nbr_offsets_.size(); ++k) {
      nbr_offsets_[k] += nbr_offsets_[k - 1];
    }
    refs->resize(nbr_offsets_.back());
    auto fill_direction = [&](std::span<const NodeId> s1,
                              std::span<const NodeId> s2, uint64_t cursor) {
      for (uint32_t r = 0; r < s1.size(); ++r) {
        for (uint32_t c = 0; c < s2.size(); ++c) {
          uint32_t ref;
          if (classify(s1[r], s2[c], &ref)) {
            // The packed layout was selected on a degree bound; a position
            // overflowing PosT would wrap silently and corrupt the span.
            FSIM_DCHECK(r <= std::numeric_limits<PosT>::max());
            FSIM_DCHECK(c <= std::numeric_limits<PosT>::max());
            (*refs)[cursor++] =
                Ref{static_cast<PosT>(r), static_cast<PosT>(c), ref};
          }
        }
      }
      return cursor;
    };
    pool->ParallelForChunked(n, kBuildGrain,
                            [&](int /*worker*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const NodeId u = PairFirst(keys_[i]);
        const NodeId v = PairSecond(keys_[i]);
        if (skip_diagonal && u == v) continue;
        if (use_out) {
          const uint64_t filled = fill_direction(
              g1.OutNeighbors(u), g2.OutNeighbors(v), nbr_offsets_[2 * i]);
          FSIM_DCHECK(filled == nbr_offsets_[2 * i + 1]);
        }
        if (use_in) {
          const uint64_t filled = fill_direction(
              g1.InNeighbors(u), g2.InNeighbors(v), nbr_offsets_[2 * i + 1]);
          FSIM_DCHECK(filled == nbr_offsets_[2 * i + 2]);
        }
      }
    });
    return;
  }

  // One classification pass over N±(u) x N±(v) per pair — roughly the
  // lookup work of a single fallback iteration, repaid after the first
  // indexed iteration. Chunks classify into per-chunk staging buffers
  // while recording per-span counts; after the offsets prefix sum, each
  // chunk's staged entries are contiguous in the final layout (chunks
  // cover contiguous pair ranges), so placement is one bulk copy per
  // chunk, not a second classification.
  std::vector<std::vector<Ref>> staged(num_chunks);

  auto stage_direction = [&](std::span<const NodeId> s1,
                             std::span<const NodeId> s2,
                             std::vector<Ref>* buf) -> uint64_t {
    const size_t before = buf->size();
    for (uint32_t r = 0; r < s1.size(); ++r) {
      for (uint32_t c = 0; c < s2.size(); ++c) {
        uint32_t ref;
        if (classify(s1[r], s2[c], &ref)) {
          FSIM_DCHECK(r <= std::numeric_limits<PosT>::max());
          FSIM_DCHECK(c <= std::numeric_limits<PosT>::max());
          buf->push_back(
              Ref{static_cast<PosT>(r), static_cast<PosT>(c), ref});
        }
      }
    }
    return buf->size() - before;
  };
  pool->ParallelForChunked(n, kBuildGrain,
                          [&](int /*worker*/, size_t begin, size_t end) {
    // ParallelForChunked hands out grain-aligned begins (the inline
    // single-chunk path starts at 0), so begin / kBuildGrain identifies
    // the staging buffer.
    std::vector<Ref>& buf = staged[begin / kBuildGrain];
    for (size_t i = begin; i < end; ++i) {
      const NodeId u = PairFirst(keys_[i]);
      const NodeId v = PairSecond(keys_[i]);
      if (skip_diagonal && u == v) continue;
      if (use_out) {
        nbr_offsets_[2 * i + 1] =
            stage_direction(g1.OutNeighbors(u), g2.OutNeighbors(v), &buf);
      }
      if (use_in) {
        nbr_offsets_[2 * i + 2] =
            stage_direction(g1.InNeighbors(u), g2.InNeighbors(v), &buf);
      }
    }
  });
  // Every staging buffer is alive here, so this is the build's transient
  // peak on top of the final index allocation.
  for (const std::vector<Ref>& buf : staged) {
    info_.peak_staging_bytes += buf.capacity() * sizeof(Ref);
  }
  // In-place prefix sum: nbr_offsets_[k] currently holds the count of
  // span k-1.
  for (size_t k = 1; k < nbr_offsets_.size(); ++k) {
    nbr_offsets_[k] += nbr_offsets_[k - 1];
  }

  refs->resize(nbr_offsets_.back());
  pool->ParallelForChunked(num_chunks, 1,
                          [&](int /*worker*/, size_t begin, size_t end) {
    for (size_t chunk = begin; chunk < end; ++chunk) {
      // The chunk's entries start at its first pair's first span.
      const uint64_t dst = nbr_offsets_[2 * (chunk * kBuildGrain)];
      std::copy(staged[chunk].begin(), staged[chunk].end(),
                refs->data() + dst);
      // A non-empty buffer ends at the next chunk's start — or at the
      // array end when it absorbed the tail (last chunk, or the pool's
      // inline single-chunk execution staging everything into buffer 0,
      // which leaves the remaining buffers empty with nothing to check).
      FSIM_DCHECK(staged[chunk].empty() ||
                  dst + staged[chunk].size() == nbr_offsets_.back() ||
                  dst + staged[chunk].size() ==
                      nbr_offsets_[2 * std::min((chunk + 1) * kBuildGrain, n)]);
      staged[chunk] = std::vector<Ref>();  // release while others copy
    }
  });
}

void FrontierTracker::Init(size_t num_pairs, int num_workers,
                           bool tolerance) {
  num_pairs_ = num_pairs;
  tolerance_ = tolerance;
  epoch_ = 0;
  if (tolerance) {
    stamps_.assign(static_cast<size_t>(num_workers),
                   std::vector<uint32_t>(num_pairs, 0));
    influence_.assign(static_cast<size_t>(num_workers),
                      std::vector<float>(num_pairs, 0.0f));
    carry_.assign(num_pairs, 0.0);
  } else {
    // Value-initialized to epoch 0 (< the first BeginIteration's epoch).
    shared_stamps_ =
        std::make_unique<std::atomic<uint32_t>[]>(num_pairs);
  }
}

void FrontierTracker::BuildNext(ThreadPool& pool, double tolerance,
                                bool previous_sweep_was_full,
                                std::vector<uint32_t>* frontier) {
  const size_t n = num_pairs_;
  // 4096-pair scan chunks: coarse enough that the two-pass offsets stay
  // tiny, fine enough to balance across workers.
  constexpr size_t kScanGrain = 4096;
  const size_t num_chunks = (n + kScanGrain - 1) / kScanGrain;
  chunk_offsets_.assign(num_chunks + 1, 0);
  const uint32_t epoch = epoch_;
  const size_t workers = stamps_.size();

  // Pass 1: per-chunk counts. Exact mode reads the one shared stamp
  // array; tolerance mode collapses the per-worker influence sums into
  // the cross-iteration carry_ accumulator so the fill pass reads one
  // array. Chunks partition the pair range, so carry_ writes are
  // race-free.
  pool.ParallelForChunked(n, kScanGrain, [&](int, size_t begin, size_t end) {
    uint32_t count = 0;
    if (!tolerance_) {
      const std::atomic<uint32_t>* stamps = shared_stamps_.get();
      for (size_t j = begin; j < end; ++j) {
        if (stamps[j].load(std::memory_order_relaxed) == epoch) ++count;
      }
    } else {
      for (size_t j = begin; j < end; ++j) {
        double sum = previous_sweep_was_full ? 0.0 : carry_[j];
        for (size_t w = 0; w < workers; ++w) {
          if (stamps_[w][j] == epoch) sum += influence_[w][j];
        }
        carry_[j] = sum;
        if (sum > tolerance) ++count;
      }
    }
    chunk_offsets_[begin / kScanGrain + 1] = count;
  });
  for (size_t c = 1; c <= num_chunks; ++c) {
    chunk_offsets_[c] += chunk_offsets_[c - 1];
  }

  // Pass 2: fill each chunk's slice; evaluated pairs reset their carried
  // influence (their next evaluation starts from a clean slate).
  frontier->resize(num_chunks == 0 ? 0 : chunk_offsets_[num_chunks]);
  pool.ParallelForChunked(n, kScanGrain, [&](int, size_t begin, size_t end) {
    uint32_t pos = chunk_offsets_[begin / kScanGrain];
    if (!tolerance_) {
      const std::atomic<uint32_t>* stamps = shared_stamps_.get();
      for (size_t j = begin; j < end; ++j) {
        if (stamps[j].load(std::memory_order_relaxed) == epoch) {
          (*frontier)[pos++] = static_cast<uint32_t>(j);
        }
      }
    } else {
      for (size_t j = begin; j < end; ++j) {
        if (carry_[j] > tolerance) {
          (*frontier)[pos++] = static_cast<uint32_t>(j);
          carry_[j] = 0.0;
        }
      }
    }
  });
}

}  // namespace fsim
