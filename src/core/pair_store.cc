#include "core/pair_store.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/init_value.h"
#include "core/operators.h"

namespace fsim {

namespace {

/// Groups node ids by label id.
std::vector<std::vector<NodeId>> NodesByLabel(const Graph& g,
                                              size_t dict_size) {
  std::vector<std::vector<NodeId>> groups(dict_size);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    groups[g.Label(u)].push_back(u);
  }
  return groups;
}

}  // namespace

Result<PairStore> PairStore::Build(const Graph& g1, const Graph& g2,
                                   const FSimConfig& config,
                                   const LabelSimilarityCache& lsim,
                                   bool build_neighbor_index,
                                   ThreadPool* pool) {
  PairStore store;
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  // --- Stage 1: θ-constrained candidate enumeration (Remark 2). ---
  if (config.theta <= 0.0) {
    const uint64_t total = static_cast<uint64_t>(n1) * n2;
    if (total > config.pair_limit) {
      return Status::InvalidArgument(StrFormat(
          "candidate pairs %llu exceed pair_limit %llu (theta=0 enumerates "
          "|V1|x|V2|)",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(config.pair_limit)));
    }
    store.keys_.reserve(total);
    for (NodeId u = 0; u < n1; ++u) {
      for (NodeId v = 0; v < n2; ++v) {
        store.keys_.push_back(PairKey(u, v));
      }
    }
  } else {
    const size_t dict_size = g1.dict()->size();
    auto groups1 = NodesByLabel(g1, dict_size);
    auto groups2 = NodesByLabel(g2, dict_size);
    // Count first so the reserve is exact and the limit check is cheap.
    uint64_t total = 0;
    for (LabelId a = 0; a < dict_size; ++a) {
      if (groups1[a].empty()) continue;
      for (LabelId b = 0; b < dict_size; ++b) {
        if (groups2[b].empty()) continue;
        if (lsim.Compatible(a, b, config.theta)) {
          total += static_cast<uint64_t>(groups1[a].size()) *
                   groups2[b].size();
        }
      }
    }
    if (total > config.pair_limit) {
      return Status::InvalidArgument(StrFormat(
          "candidate pairs %llu exceed pair_limit %llu",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(config.pair_limit)));
    }
    store.keys_.reserve(total);
    for (LabelId a = 0; a < dict_size; ++a) {
      if (groups1[a].empty()) continue;
      for (LabelId b = 0; b < dict_size; ++b) {
        if (groups2[b].empty()) continue;
        if (!lsim.Compatible(a, b, config.theta)) continue;
        for (NodeId u : groups1[a]) {
          for (NodeId v : groups2[b]) {
            store.keys_.push_back(PairKey(u, v));
          }
        }
      }
    }
  }
  store.info_.theta_candidates = store.keys_.size();

  // --- Stage 2: upper-bound pruning (Eq. 6). ---
  if (config.upper_bound) {
    const OperatorConfig op = config.operators();
    const double label_weight = 1.0 - config.w_out - config.w_in;
    auto compat = [&](NodeId x, NodeId y) {
      return lsim.Compatible(g1.Label(x), g2.Label(y), config.theta);
    };
    std::vector<uint64_t> kept;
    kept.reserve(store.keys_.size());
    const bool track_pruned = config.alpha > 0.0;
    for (uint64_t key : store.keys_) {
      const NodeId u = PairFirst(key);
      const NodeId v = PairSecond(key);
      double bound =
          config.w_out * DirectionUpperBound(op, g1.OutNeighbors(u),
                                             g2.OutNeighbors(v), compat) +
          config.w_in * DirectionUpperBound(op, g1.InNeighbors(u),
                                            g2.InNeighbors(v), compat) +
          label_weight *
              LabelTermValue(config, lsim, g1.Label(u), g2.Label(v));
      const bool keep = bound > config.beta ||
                        (config.pin_diagonal && u == v);
      if (keep) {
        kept.push_back(key);
      } else if (track_pruned) {
        store.pruned_index_.Insert(key,
                                   static_cast<uint32_t>(store.pruned_ub_.size()));
        store.pruned_ub_.push_back(static_cast<float>(bound));
      }
    }
    store.info_.pruned = store.keys_.size() - kept.size();
    store.keys_ = std::move(kept);
  }
  store.info_.kept = store.keys_.size();

  // --- Stage 3: index + initialization (§3.3). ---
  std::sort(store.keys_.begin(), store.keys_.end());
  store.index_ = FlatPairMap(store.keys_.size());
  store.prev_.resize(store.keys_.size());
  store.curr_.resize(store.keys_.size());
  for (size_t i = 0; i < store.keys_.size(); ++i) {
    store.index_.Insert(store.keys_[i], static_cast<uint32_t>(i));
    store.prev_[i] = InitValue(config, lsim, g1, g2, PairFirst(store.keys_[i]),
                               PairSecond(store.keys_[i]));
  }

  // --- Stage 4: pair-graph CSR neighbor index (budget-gated). ---
  if (build_neighbor_index && config.neighbor_index_budget_bytes > 0) {
    store.BuildNeighborIndex(g1, g2, config, lsim, pool);
  }
  return store;
}

void PairStore::BuildNeighborIndex(const Graph& g1, const Graph& g2,
                                   const FSimConfig& config,
                                   const LabelSimilarityCache& lsim,
                                   ThreadPool* pool) {
  const size_t n = keys_.size();
  // The pruned-ref tag bit halves the addressable range of a ref.
  if (n >= kNeighborRefPrunedTag || pruned_ub_.size() >= kNeighborRefPrunedTag) {
    return;
  }

  const bool use_out = config.w_out > 0.0;
  const bool use_in = config.w_in > 0.0;

  // Entry layout: the packed 8-byte NeighborRef when every row/col fits in
  // 16 bits; positions inside a neighbor list run 0..deg-1, so a direction
  // packs while its max degree is <= 65536. The 12-byte layout otherwise.
  constexpr size_t kPackedDegreeLimit = 0x10000;
  const bool packed = config.use_packed_neighbor_refs &&
                      (!use_out || (g1.MaxOutDegree() <= kPackedDegreeLimit &&
                                    g2.MaxOutDegree() <= kPackedDegreeLimit)) &&
                      (!use_in || (g1.MaxInDegree() <= kPackedDegreeLimit &&
                                   g2.MaxInDegree() <= kPackedDegreeLimit));

  // Budget check against the pre-filter upper bound Σ |N±(u)|·|N±(v)|
  // (compatibility filtering only shrinks it, so fitting the bound
  // guarantees fitting the index). The one-pass build transiently stages
  // the classified entries once more, so its peak usage can reach twice the
  // final footprint; when that doubled bound would blow the budget but the
  // index itself fits, the bounded count-then-fill build is used instead,
  // capping peak build memory at the final footprint.
  uint64_t max_entries = 0;
  for (uint64_t key : keys_) {
    const NodeId u = PairFirst(key);
    const NodeId v = PairSecond(key);
    if (config.pin_diagonal && u == v) continue;
    if (use_out) {
      max_entries += static_cast<uint64_t>(g1.OutDegree(u)) * g2.OutDegree(v);
    }
    if (use_in) {
      max_entries += static_cast<uint64_t>(g1.InDegree(u)) * g2.InDegree(v);
    }
  }
  const uint64_t entry_bytes =
      packed ? sizeof(PackedNeighborRef) : sizeof(NeighborRef);
  const uint64_t offsets_bytes = (2 * n + 1) * sizeof(uint64_t);
  if (max_entries * entry_bytes + offsets_bytes >
      config.neighbor_index_budget_bytes) {
    return;
  }
  const bool bounded = 2 * max_entries * entry_bytes + offsets_bytes >
                       config.neighbor_index_budget_bytes;

  if (packed) {
    FillNeighborRefs(g1, g2, config, lsim, pool, bounded, &nbr_refs_packed_);
  } else {
    FillNeighborRefs(g1, g2, config, lsim, pool, bounded, &nbr_refs_);
  }
  info_.bounded_staging_build = bounded;
  packed_refs_ = packed;
  has_neighbor_index_ = true;
}

template <typename Ref>
void PairStore::FillNeighborRefs(const Graph& g1, const Graph& g2,
                                 const FSimConfig& config,
                                 const LabelSimilarityCache& lsim,
                                 ThreadPool* pool, bool bounded_staging,
                                 std::vector<Ref>* refs) {
  const size_t n = keys_.size();
  const bool use_out = config.w_out > 0.0;
  const bool use_in = config.w_in > 0.0;
  const double theta = config.theta;
  const bool need_compat = theta > 0.0;
  const double alpha = config.upper_bound ? config.alpha : 0.0;

  // Score source of candidate pair (x, y): the maintained-pair index, or a
  // tagged pruned-bound index whose lookup value is α * bound. Pairs that
  // are label-incompatible, or whose fallback lookup would return 0 (pruned
  // and untracked), are omitted — zero never contributes to any operator.
  auto classify = [&](NodeId x, NodeId y, uint32_t* ref) -> bool {
    if (need_compat && !lsim.Compatible(g1.Label(x), g2.Label(y), theta)) {
      return false;
    }
    const uint32_t idx = index_.Find(PairKey(x, y));
    if (idx != FlatPairMap::kNotFound) {
      *ref = idx;
      return true;
    }
    if (alpha > 0.0) {
      const uint32_t p = pruned_index_.Find(PairKey(x, y));
      if (p != FlatPairMap::kNotFound) {
        *ref = kNeighborRefPrunedTag | p;
        return true;
      }
    }
    return false;
  };

  nbr_offsets_.assign(2 * n + 1, 0);
  ThreadPool serial_pool(1);
  if (pool == nullptr) pool = &serial_pool;
  constexpr size_t kBuildGrain = 256;
  const size_t num_chunks = (n + kBuildGrain - 1) / kBuildGrain;
  using PosT = decltype(Ref::row);

  if (bounded_staging) {
    // Bounded count-then-fill: a counting classification records every
    // span's size, then — after the prefix sum fixes the layout — a second
    // classification writes entries straight into their final slots.
    // Classifies twice, but peak build memory is the final index footprint
    // (no staging), which is what the budget admitted.
    auto count_direction = [&](std::span<const NodeId> s1,
                               std::span<const NodeId> s2) -> uint64_t {
      uint64_t count = 0;
      uint32_t ref;
      for (uint32_t r = 0; r < s1.size(); ++r) {
        for (uint32_t c = 0; c < s2.size(); ++c) {
          if (classify(s1[r], s2[c], &ref)) ++count;
        }
      }
      return count;
    };
    pool->ParallelForChunked(n, kBuildGrain,
                            [&](int /*worker*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const NodeId u = PairFirst(keys_[i]);
        const NodeId v = PairSecond(keys_[i]);
        if (config.pin_diagonal && u == v) continue;
        if (use_out) {
          nbr_offsets_[2 * i + 1] =
              count_direction(g1.OutNeighbors(u), g2.OutNeighbors(v));
        }
        if (use_in) {
          nbr_offsets_[2 * i + 2] =
              count_direction(g1.InNeighbors(u), g2.InNeighbors(v));
        }
      }
    });
    for (size_t k = 1; k < nbr_offsets_.size(); ++k) {
      nbr_offsets_[k] += nbr_offsets_[k - 1];
    }
    refs->resize(nbr_offsets_.back());
    auto fill_direction = [&](std::span<const NodeId> s1,
                              std::span<const NodeId> s2, uint64_t cursor) {
      for (uint32_t r = 0; r < s1.size(); ++r) {
        for (uint32_t c = 0; c < s2.size(); ++c) {
          uint32_t ref;
          if (classify(s1[r], s2[c], &ref)) {
            (*refs)[cursor++] =
                Ref{static_cast<PosT>(r), static_cast<PosT>(c), ref};
          }
        }
      }
      return cursor;
    };
    pool->ParallelForChunked(n, kBuildGrain,
                            [&](int /*worker*/, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const NodeId u = PairFirst(keys_[i]);
        const NodeId v = PairSecond(keys_[i]);
        if (config.pin_diagonal && u == v) continue;
        if (use_out) {
          const uint64_t filled = fill_direction(
              g1.OutNeighbors(u), g2.OutNeighbors(v), nbr_offsets_[2 * i]);
          FSIM_DCHECK(filled == nbr_offsets_[2 * i + 1]);
        }
        if (use_in) {
          const uint64_t filled = fill_direction(
              g1.InNeighbors(u), g2.InNeighbors(v), nbr_offsets_[2 * i + 1]);
          FSIM_DCHECK(filled == nbr_offsets_[2 * i + 2]);
        }
      }
    });
    return;
  }

  // One classification pass over N±(u) x N±(v) per pair — roughly the
  // lookup work of a single fallback iteration, repaid after the first
  // indexed iteration. Chunks classify into per-chunk staging buffers
  // while recording per-span counts; after the offsets prefix sum, each
  // chunk's staged entries are contiguous in the final layout (chunks
  // cover contiguous pair ranges), so placement is one bulk copy per
  // chunk, not a second classification.
  std::vector<std::vector<Ref>> staged(num_chunks);

  auto stage_direction = [&](std::span<const NodeId> s1,
                             std::span<const NodeId> s2,
                             std::vector<Ref>* buf) -> uint64_t {
    const size_t before = buf->size();
    for (uint32_t r = 0; r < s1.size(); ++r) {
      for (uint32_t c = 0; c < s2.size(); ++c) {
        uint32_t ref;
        if (classify(s1[r], s2[c], &ref)) {
          buf->push_back(
              Ref{static_cast<PosT>(r), static_cast<PosT>(c), ref});
        }
      }
    }
    return buf->size() - before;
  };
  pool->ParallelForChunked(n, kBuildGrain,
                          [&](int /*worker*/, size_t begin, size_t end) {
    // ParallelForChunked hands out grain-aligned begins (the inline
    // single-chunk path starts at 0), so begin / kBuildGrain identifies
    // the staging buffer.
    std::vector<Ref>& buf = staged[begin / kBuildGrain];
    for (size_t i = begin; i < end; ++i) {
      const NodeId u = PairFirst(keys_[i]);
      const NodeId v = PairSecond(keys_[i]);
      if (config.pin_diagonal && u == v) continue;
      if (use_out) {
        nbr_offsets_[2 * i + 1] =
            stage_direction(g1.OutNeighbors(u), g2.OutNeighbors(v), &buf);
      }
      if (use_in) {
        nbr_offsets_[2 * i + 2] =
            stage_direction(g1.InNeighbors(u), g2.InNeighbors(v), &buf);
      }
    }
  });
  // Every staging buffer is alive here, so this is the build's transient
  // peak on top of the final index allocation.
  for (const std::vector<Ref>& buf : staged) {
    info_.peak_staging_bytes += buf.capacity() * sizeof(Ref);
  }
  // In-place prefix sum: nbr_offsets_[k] currently holds the count of
  // span k-1.
  for (size_t k = 1; k < nbr_offsets_.size(); ++k) {
    nbr_offsets_[k] += nbr_offsets_[k - 1];
  }

  refs->resize(nbr_offsets_.back());
  pool->ParallelForChunked(num_chunks, 1,
                          [&](int /*worker*/, size_t begin, size_t end) {
    for (size_t chunk = begin; chunk < end; ++chunk) {
      // The chunk's entries start at its first pair's first span.
      const uint64_t dst = nbr_offsets_[2 * (chunk * kBuildGrain)];
      std::copy(staged[chunk].begin(), staged[chunk].end(),
                refs->data() + dst);
      // A non-empty buffer ends at the next chunk's start — or at the
      // array end when it absorbed the tail (last chunk, or the pool's
      // inline single-chunk execution staging everything into buffer 0,
      // which leaves the remaining buffers empty with nothing to check).
      FSIM_DCHECK(staged[chunk].empty() ||
                  dst + staged[chunk].size() == nbr_offsets_.back() ||
                  dst + staged[chunk].size() ==
                      nbr_offsets_[2 * std::min((chunk + 1) * kBuildGrain, n)]);
      staged[chunk] = std::vector<Ref>();  // release while others copy
    }
  });
}

}  // namespace fsim
