#include "core/pair_store.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/operators.h"

namespace fsim {

namespace {

/// Groups node ids by label id.
std::vector<std::vector<NodeId>> NodesByLabel(const Graph& g,
                                              size_t dict_size) {
  std::vector<std::vector<NodeId>> groups(dict_size);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    groups[g.Label(u)].push_back(u);
  }
  return groups;
}

double LabelTermValue(const FSimConfig& config,
                      const LabelSimilarityCache& lsim, LabelId a, LabelId b) {
  switch (config.label_term) {
    case LabelTermKind::kLabelSim:
      return lsim.Sim(a, b);
    case LabelTermKind::kZero:
      return 0.0;
    case LabelTermKind::kOne:
      return 1.0;
  }
  return 0.0;
}

double InitValue(const FSimConfig& config, const LabelSimilarityCache& lsim,
                 const Graph& g1, const Graph& g2, NodeId u, NodeId v) {
  switch (config.init) {
    case InitKind::kLabelSim:
      return lsim.Sim(g1.Label(u), g2.Label(v));
    case InitKind::kIndicatorDiagonal:
      return u == v ? 1.0 : 0.0;
    case InitKind::kDegreeRatio: {
      double d1 = static_cast<double>(g1.OutDegree(u));
      double d2 = static_cast<double>(g2.OutDegree(v));
      if (d1 == 0.0 && d2 == 0.0) return 1.0;
      return std::min(d1, d2) / std::max(d1, d2);
    }
    case InitKind::kOnes:
      return 1.0;
  }
  return 0.0;
}

}  // namespace

Result<PairStore> PairStore::Build(const Graph& g1, const Graph& g2,
                                   const FSimConfig& config,
                                   const LabelSimilarityCache& lsim) {
  PairStore store;
  const size_t n1 = g1.NumNodes();
  const size_t n2 = g2.NumNodes();

  // --- Stage 1: θ-constrained candidate enumeration (Remark 2). ---
  if (config.theta <= 0.0) {
    const uint64_t total = static_cast<uint64_t>(n1) * n2;
    if (total > config.pair_limit) {
      return Status::InvalidArgument(StrFormat(
          "candidate pairs %llu exceed pair_limit %llu (theta=0 enumerates "
          "|V1|x|V2|)",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(config.pair_limit)));
    }
    store.keys_.reserve(total);
    for (NodeId u = 0; u < n1; ++u) {
      for (NodeId v = 0; v < n2; ++v) {
        store.keys_.push_back(PairKey(u, v));
      }
    }
  } else {
    const size_t dict_size = g1.dict()->size();
    auto groups1 = NodesByLabel(g1, dict_size);
    auto groups2 = NodesByLabel(g2, dict_size);
    // Count first so the reserve is exact and the limit check is cheap.
    uint64_t total = 0;
    for (LabelId a = 0; a < dict_size; ++a) {
      if (groups1[a].empty()) continue;
      for (LabelId b = 0; b < dict_size; ++b) {
        if (groups2[b].empty()) continue;
        if (lsim.Compatible(a, b, config.theta)) {
          total += static_cast<uint64_t>(groups1[a].size()) *
                   groups2[b].size();
        }
      }
    }
    if (total > config.pair_limit) {
      return Status::InvalidArgument(StrFormat(
          "candidate pairs %llu exceed pair_limit %llu",
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(config.pair_limit)));
    }
    store.keys_.reserve(total);
    for (LabelId a = 0; a < dict_size; ++a) {
      if (groups1[a].empty()) continue;
      for (LabelId b = 0; b < dict_size; ++b) {
        if (groups2[b].empty()) continue;
        if (!lsim.Compatible(a, b, config.theta)) continue;
        for (NodeId u : groups1[a]) {
          for (NodeId v : groups2[b]) {
            store.keys_.push_back(PairKey(u, v));
          }
        }
      }
    }
  }
  store.info_.theta_candidates = store.keys_.size();

  // --- Stage 2: upper-bound pruning (Eq. 6). ---
  if (config.upper_bound) {
    const OperatorConfig op = config.operators();
    const double label_weight = 1.0 - config.w_out - config.w_in;
    auto compat = [&](NodeId x, NodeId y) {
      return lsim.Compatible(g1.Label(x), g2.Label(y), config.theta);
    };
    std::vector<uint64_t> kept;
    kept.reserve(store.keys_.size());
    const bool track_pruned = config.alpha > 0.0;
    for (uint64_t key : store.keys_) {
      const NodeId u = PairFirst(key);
      const NodeId v = PairSecond(key);
      double bound =
          config.w_out * DirectionUpperBound(op, g1.OutNeighbors(u),
                                             g2.OutNeighbors(v), compat) +
          config.w_in * DirectionUpperBound(op, g1.InNeighbors(u),
                                            g2.InNeighbors(v), compat) +
          label_weight *
              LabelTermValue(config, lsim, g1.Label(u), g2.Label(v));
      const bool keep = bound > config.beta ||
                        (config.pin_diagonal && u == v);
      if (keep) {
        kept.push_back(key);
      } else if (track_pruned) {
        store.pruned_index_.Insert(key,
                                   static_cast<uint32_t>(store.pruned_ub_.size()));
        store.pruned_ub_.push_back(static_cast<float>(bound));
      }
    }
    store.info_.pruned = store.keys_.size() - kept.size();
    store.keys_ = std::move(kept);
  }
  store.info_.kept = store.keys_.size();

  // --- Stage 3: index + initialization (§3.3). ---
  std::sort(store.keys_.begin(), store.keys_.end());
  store.index_ = FlatPairMap(store.keys_.size());
  store.prev_.resize(store.keys_.size());
  store.curr_.resize(store.keys_.size());
  for (size_t i = 0; i < store.keys_.size(); ++i) {
    store.index_.Insert(store.keys_[i], static_cast<uint32_t>(i));
    store.prev_[i] = InitValue(config, lsim, g1, g2, PairFirst(store.keys_[i]),
                               PairSecond(store.keys_[i]));
  }
  return store;
}

}  // namespace fsim
