// Certified all-pairs top-k similarity search — the paper's §7 future work
// ("end-users are also interested in the top-k similarity search") for the
// *global* query: the k highest-scoring pairs (u, v) across V1 x V2.
//
// Rather than running Algorithm 1 to full convergence and sorting, the
// search exploits the Theorem 1 contraction: after a sweep with observed
// max-delta Δk, every final score lies within
//
//   r = Δk * w / (1 - w),       w = w+ + w-,
//
// of its current value. As soon as the k-th best current score exceeds the
// (k+1)-th best by more than 2r, the *identity* of the top-k set is certified
// and iteration can stop early — typically well before the ε-convergence the
// full computation needs. Reported scores carry the residual radius r.
//
// Certification is exact under MatchingAlgo::kHungarian (the contraction
// argument needs the true maximum mapping, Theorem 1's C3); under the greedy
// default it is sharp in practice and validated by the property tests.
#ifndef FSIM_CORE_TOPK_ALLPAIRS_H_
#define FSIM_CORE_TOPK_ALLPAIRS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/fsim_config.h"
#include "graph/graph.h"

namespace fsim {

/// Options for the global top-k search.
struct TopKPairsOptions {
  /// How many pairs to return.
  size_t k = 10;

  /// Skip pairs with u == v (useful for self-similarity runs, where the
  /// diagonal trivially dominates).
  bool exclude_diagonal = false;

  /// Keep sweeping past set-certification until ε-convergence, so the
  /// reported *scores* (not just the set) are final.
  bool converge_scores = false;
};

/// One result pair.
struct ScoredPair {
  NodeId u = 0;
  NodeId v = 0;
  double score = 0.0;  // current-iteration score, within `radius` of final
};

/// The outcome of a ComputeTopKPairs run.
struct TopKPairsResult {
  /// Descending by score (ties by (u, v)); size min(k, eligible pairs).
  std::vector<ScoredPair> pairs;

  /// True if the returned *set* provably equals the converged top-k set
  /// (strict 2r separation at the boundary). False when iteration hit the
  /// Corollary 1 cap with the boundary still ambiguous (e.g. exact ties).
  bool certified = false;

  /// Residual bound: every reported score is within this of its converged
  /// value.
  double radius = 0.0;

  uint32_t iterations = 0;

  /// Sweeps saved relative to the Corollary 1 full-convergence bound.
  uint32_t iteration_bound = 0;
};

/// Runs the iterative computation just long enough to certify the global
/// top-k pair set. Honors the full FSimConfig (variant, θ, upper-bound
/// updating — the search is then over the maintained candidate set).
Result<TopKPairsResult> ComputeTopKPairs(const Graph& g1, const Graph& g2,
                                         const FSimConfig& config,
                                         const TopKPairsOptions& options);

}  // namespace fsim

#endif  // FSIM_CORE_TOPK_ALLPAIRS_H_
