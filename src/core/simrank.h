// Standalone SimRank [Jeh & Widom 2002] on a single graph. Serves as the
// reference oracle for the §4.3 claim that FSimχ configured with the product
// operators computes SimRank (verified by an equivalence test).
#ifndef FSIM_CORE_SIMRANK_H_
#define FSIM_CORE_SIMRANK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace fsim {

/// Dense all-pairs SimRank after `iterations` rounds:
///   s(u,u) = 1;
///   s(u,v) = c / (|I(u)||I(v)|) * Σ_{a∈I(u), b∈I(v)} s_{k-1}(a,b),
/// with s(u,v) = 0 when either in-neighborhood is empty. The result is
/// row-major: scores[u * n + v]. Intended for small graphs (O(n^2 d^2)).
std::vector<double> SimRankScores(const Graph& g, double c,
                                  uint32_t iterations);

}  // namespace fsim

#endif  // FSIM_CORE_SIMRANK_H_
